(* The benchmark harness: regenerates every table and figure in the
   paper's evaluation (section 7) from the simulator, side by side with
   the published numbers, plus the DESIGN.md ablations and a Bechamel
   wall-clock microbenchmark of the simulator itself.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table1|table2|table3|table4|fig5|fig6|iot|ablations|micro
*)

module Core_model = Cheriot_uarch.Core_model
module Coremark = Cheriot_workloads.Coremark
module Alloc_bench = Cheriot_workloads.Alloc_bench
module Iot_app = Cheriot_workloads.Iot_app
module Allocator = Cheriot_rtos.Allocator
module Gates = Cheriot_area.Gates

let section title = Format.printf "@.=== %s ===@.@." title

(* --- Table 1 / Fig 2: the permission ontology ------------------------- *)

let table1 () =
  section "Table 1 / Fig. 2 -- permissions and their compressed encoding";
  Format.printf "%-6s %-12s %s@." "bits" "format" "decoded set";
  for bits = 0 to 63 do
    let s = Cheriot_core.Perm.decode bits in
    match Cheriot_core.Perm.format_of s with
    | Some fmt when Cheriot_core.Perm.encode s = Some bits ->
        let fmt_name =
          match fmt with
          | Cheriot_core.Perm.Mem_cap_rw -> "mem-cap-rw"
          | Mem_cap_ro -> "mem-cap-ro"
          | Mem_cap_wo -> "mem-cap-wo"
          | Mem_no_cap -> "mem-no-cap"
          | Executable -> "executable"
          | Sealing -> "sealing"
        in
        Format.printf "0x%02x   %-12s %a@." bits fmt_name
          Cheriot_core.Perm.Set.pp s
    | _ -> ()
  done;
  Format.printf
    "@.(every 6-bit value decodes, no redundant encodings; EX+SD is \
     unrepresentable: W^X in hardware)@."

(* --- Table 2 ----------------------------------------------------------- *)

let paper_table2 =
  [
    ("RV32E", 26988, 1.437);
    ("RV32E + PMP16", 55905, 2.16);
    ("RV32E + capabilities", 58110, 2.58);
    ("  + load filter", 58431, 2.58);
    ("    + background revoker", 61422, 2.73);
  ]

let table2 () =
  section "Table 2 -- area and power of Ibex variants (TSMC 28nm, 300 MHz)";
  Format.printf "%-28s %22s %24s@." "" "gates (paper)" "power mW (paper)";
  List.iter2
    (fun (name, gates, ratio, p, pr) (_, pg, pp_) ->
      Format.printf "%-28s %8d (%6d) %5.2fx   %6.3f (%5.3f) %5.2fx@." name
        gates pg ratio p pp_ pr)
    (Gates.table2 ()) paper_table2;
  Format.printf "@.f_max: %d MHz for all variants@." (Gates.fmax_mhz 0)

(* --- Table 3 ----------------------------------------------------------- *)

let paper_table3 =
  [
    ("Flute RV32E", 2.017, 0.0);
    ("Flute +capabilities", 1.892, 5.73);
    ("Flute +load filter", 1.892, 5.73);
    ("Ibex RV32E", 2.086, 0.0);
    ("Ibex +capabilities", 1.811, 13.18);
    ("Ibex +load filter", 1.624, 21.28);
  ]

let table3 () =
  section "Table 3 -- CoreMark/MHz";
  Coremark.calibrate ();
  let configs =
    [
      Core_model.config ~cheri:false Flute;
      Core_model.config ~cheri:true ~load_filter:false Flute;
      Core_model.config ~cheri:true ~load_filter:true Flute;
      Core_model.config ~cheri:false Ibex;
      Core_model.config ~cheri:true ~load_filter:false Ibex;
      Core_model.config ~cheri:true ~load_filter:true Ibex;
    ]
  in
  let results = List.map Coremark.run configs in
  let base_flute = (List.nth results 0).Coremark.score in
  let base_ibex = (List.nth results 3).Coremark.score in
  Format.printf "%-24s %8s %10s %14s %12s@." "" "score" "overhead"
    "paper score" "paper ovh";
  List.iteri
    (fun i r ->
      let name, pscore, povh = List.nth paper_table3 i in
      let base = if i < 3 then base_flute else base_ibex in
      let ovh = 100.0 *. (base -. r.Coremark.score) /. base in
      Format.printf "%-24s %8.3f %9.2f%% %14.3f %11.2f%%@." name
        r.Coremark.score ovh pscore povh)
    results;
  let c0 = (List.nth results 0).Coremark.checksum in
  assert (List.for_all (fun r -> r.Coremark.checksum = c0) results);
  Format.printf
    "@.(all six configurations compute identical checksums: 0x%x)@." c0

(* --- Table 4 / Figs 5-6 ------------------------------------------------ *)

let alloc_configs hwm =
  [
    (Allocator.Baseline, hwm);
    (Allocator.Metadata, hwm);
    (Allocator.Software, hwm);
    (Allocator.Hardware, hwm);
  ]

let run_alloc_table core =
  List.map
    (fun size ->
      let row =
        List.map
          (fun (temporal, hwm) ->
            Alloc_bench.run { Alloc_bench.core; temporal; hwm } ~size)
          (alloc_configs false @ alloc_configs true)
      in
      (size, row))
    Alloc_bench.paper_sizes

let print_alloc_table core =
  let tbl = run_alloc_table core in
  Format.printf "%-8s %10s %10s %10s %10s %10s %10s %10s %10s@." "size"
    "Baseline" "Metadata" "Software" "Hardware" "Base(S)" "Meta(S)" "Soft(S)"
    "Hard(S)";
  List.iter
    (fun (size, row) ->
      Format.printf "%-8d" size;
      List.iter (fun r -> Format.printf " %10d" r.Alloc_bench.cycles) row;
      Format.printf "@.")
    tbl;
  tbl

let table4 () =
  section "Table 4 -- cycles to allocate 1 MiB of heap at different sizes";
  Format.printf "--- Flute ---@.";
  let f = print_alloc_table Core_model.Flute in
  Format.printf "@.--- Ibex ---@.";
  let i = print_alloc_table Core_model.Ibex in
  (f, i)

let print_overheads tbl =
  Format.printf "%-8s %10s %10s %10s %10s %10s %10s %10s@." "size" "Metadata"
    "Software" "Hardware" "Base(S)" "Meta(S)" "Soft(S)" "Hard(S)";
  List.iter
    (fun (size, row) ->
      match row with
      | base :: rest ->
          Format.printf "%-8d" size;
          List.iter
            (fun r ->
              Format.printf " %9.1f%%"
                (Alloc_bench.overhead_vs_baseline ~baseline:base r))
            rest;
          Format.printf "@."
      | [] -> ())
    tbl

let fig56 core name tbl =
  section
    (Printf.sprintf
       "Fig. %s -- allocator overhead vs baseline (no temporal safety), %s"
       name (Core_model.name core));
  print_overheads tbl

(* --- end-to-end IoT application ---------------------------------------- *)

let iot () =
  section "Section 7.2.3 -- end-to-end IoT application (Ibex @ 20 MHz, 60 s)";
  let r = Iot_app.run ~seconds:60.0 () in
  Format.printf
    "CPU load: %.1f%% (paper: 17.5%%); idle thread: %.1f%% (paper: 82.5%%)@."
    r.Iot_app.cpu_load_percent r.Iot_app.idle_percent;
  Format.printf
    "packets: %d  JS frames: %d  heap allocations: %d  revocation sweeps: \
     %d  context switches: %d@."
    r.Iot_app.packets r.Iot_app.js_ticks r.Iot_app.allocations
    r.Iot_app.sweeps r.Iot_app.context_switches

(* --- ablations (DESIGN.md section 5) ------------------------------------ *)

let ablations () =
  section "Ablation: background revoker pipelining (3.3.3)";
  let sweep pipelined =
    let sram = Cheriot_mem.Sram.create ~base:0x80000 ~size:(256 * 1024) in
    let rev =
      Cheriot_mem.Revbits.create ~heap_base:0x80000 ~heap_size:(256 * 1024) ()
    in
    let r =
      Cheriot_uarch.Revoker.create ~pipelined ~core:Core_model.Flute ~sram
        ~rev ()
    in
    Cheriot_uarch.Revoker.kick r ~start:0x80000 ~stop:(0x80000 + (256 * 1024));
    Cheriot_uarch.Revoker.run_to_completion r
  in
  let one = sweep false and two = sweep true in
  Format.printf
    "256 KiB sweep: 1-stage %d cycles, 2-stage %d cycles (%.2fx speedup)@."
    one two
    (float_of_int one /. float_of_int two);

  section "Ablation: quarantine threshold (sweep frequency vs memory)";
  List.iter
    (fun frac ->
      let threshold = 256 * 1024 / frac in
      let r =
        Alloc_bench.run_with_threshold
          {
            Alloc_bench.core = Core_model.Flute;
            temporal = Allocator.Hardware;
            hwm = true;
          }
          ~size:1024 ~threshold
      in
      Format.printf
        "threshold heap/%-2d (%3d KiB): %9d cycles, %3d sweeps, quarantine \
         peak %d KiB@."
        frac (threshold / 1024) r.Alloc_bench.cycles r.Alloc_bench.sweeps
        (r.Alloc_bench.quarantine_peak / 1024))
    [ 2; 4; 8; 16 ];

  section "Ablation: revocation granule size (3.3.1)";
  List.iter
    (fun granule_log2 ->
      let heap = 256 * 1024 in
      let rev =
        Cheriot_mem.Revbits.create ~granule_log2 ~heap_base:0 ~heap_size:heap
          ()
      in
      let bitmap = Cheriot_mem.Revbits.bitmap_bytes rev in
      Format.printf
        "granule %2d B: bitmap %5d B (%.2f%% of heap), min allocation slack \
         %d B@."
        (1 lsl granule_log2) bitmap
        (100.0 *. float_of_int bitmap /. float_of_int heap)
        ((1 lsl granule_log2) - 8))
    [ 3; 4; 5 ];

  section "Ablation: software revoker batch size (real-time latency, 2.1)";
  List.iter
    (fun batch ->
      let params = Core_model.params_of Core_model.Flute in
      let clock = Cheriot_rtos.Clock.create params in
      let sram = Cheriot_mem.Sram.create ~base:0x80000 ~size:(256 * 1024) in
      let rev =
        Cheriot_mem.Revbits.create ~heap_base:0x80000 ~heap_size:(256 * 1024)
          ()
      in
      let sw =
        Cheriot_rtos.Sw_revoker.create ~batch_granules:batch ~sram ~rev ~clock
          ()
      in
      let batches = ref 0 in
      let worst = ref 0 in
      let last = ref 0 in
      Cheriot_rtos.Sw_revoker.sweep sw
        ~on_batch_end:(fun () ->
          incr batches;
          let now = Cheriot_rtos.Clock.cycles clock in
          worst := max !worst (now - !last);
          last := now)
        ~start:0x80000
        ~stop:(0x80000 + (256 * 1024));
      Format.printf
        "batch %5d granules: %3d preemption points, worst \
         interrupts-disabled window %6d cycles@."
        batch !batches !worst)
    [ 32; 128; 512; 4096 ]

(* --- Bechamel microbenchmarks of the simulator itself ------------------- *)

let micro () =
  section "Bechamel -- wall-clock microbenchmarks of the simulator";
  let open Bechamel in
  let cap = Cheriot_core.Capability.root_mem_rw in
  let word = Cheriot_core.Capability.to_word cap in
  (* one Test.make per table: the dominant simulator primitive behind
     each experiment *)
  let t_decode =
    Test.make ~name:"table1: cap of_word+to_word"
      (Staged.stage (fun () ->
           Cheriot_core.Capability.(to_word (of_word ~tag:true word))))
  in
  let t_gates =
    Test.make ~name:"table2: area/power model"
      (Staged.stage (fun () -> Gates.table2 ()))
  in
  let mk_machine () =
    let bus = Cheriot_mem.Bus.create () in
    let sram = Cheriot_mem.Sram.create ~base:0x10000 ~size:0x1000 in
    Cheriot_mem.Bus.add_sram bus sram;
    let img =
      Cheriot_isa.Asm.assemble ~origin:0x10000
        [
          Cheriot_isa.Asm.Label "loop";
          Cheriot_isa.Asm.I (Cheriot_isa.Insn.Op_imm (Add, 10, 10, 1));
          Cheriot_isa.Asm.J (0, "loop");
        ]
    in
    Cheriot_isa.Asm.load img sram;
    let m = Cheriot_isa.Machine.create bus in
    m.Cheriot_isa.Machine.pcc <-
      Cheriot_core.Capability.(
        set_bounds (with_address root_executable 0x10000) ~length:0x100
          ~exact:false);
    m
  in
  let m = mk_machine () in
  let t_step =
    Test.make ~name:"table3: machine step"
      (Staged.stage (fun () -> ignore (Cheriot_isa.Machine.step m)))
  in
  let t_alloc =
    let params = Core_model.params_of Core_model.Flute in
    let clock = Cheriot_rtos.Clock.create params in
    let sram = Cheriot_mem.Sram.create ~base:0x80000 ~size:0x40000 in
    let rev =
      Cheriot_mem.Revbits.create ~heap_base:0x80000 ~heap_size:0x40000 ()
    in
    let alloc =
      Allocator.create ~temporal:Allocator.Baseline ~sram ~rev ~clock
        ~heap_base:0x80000 ~heap_size:0x40000 ()
    in
    Test.make ~name:"table4: malloc+free pair"
      (Staged.stage (fun () ->
           match Allocator.malloc alloc 64 with
           | Ok c -> ignore (Allocator.free alloc c)
           | Error _ -> ()))
  in
  let t_sweep =
    let sram = Cheriot_mem.Sram.create ~base:0x80000 ~size:0x10000 in
    let rev =
      Cheriot_mem.Revbits.create ~heap_base:0x80000 ~heap_size:0x10000 ()
    in
    let r = Cheriot_uarch.Revoker.create ~core:Core_model.Flute ~sram ~rev () in
    Test.make ~name:"fig5/6: 64 KiB revoker sweep"
      (Staged.stage (fun () ->
           Cheriot_uarch.Revoker.kick r ~start:0x80000 ~stop:0x90000;
           ignore (Cheriot_uarch.Revoker.run_to_completion r)))
  in
  let tests =
    Test.make_grouped ~name:"cheriot-sim"
      [ t_decode; t_gates; t_step; t_alloc; t_sweep ]
  in
  let raw =
    Benchmark.all
      (Benchmark.cfg ~limit:500 ~quota:(Time.second 0.2) ())
      Toolkit.Instance.[ monotonic_clock ]
      tests
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-40s %12.1f ns/op@." name est
      | Some _ | None -> Format.printf "%-40s (no estimate)@." name)
    (List.sort compare rows)

(* --- decode-cache differential benchmark -------------------------------- *)

module Machine = Cheriot_isa.Machine

(* Runs each workload's instruction stream to completion under both
   dispatch paths — the always-decode reference interpreter
   ([Machine.step]) and the decoded-instruction cache
   ([Machine.step_fast]) — asserts that they retire the same number of
   instructions and reach bit-identical architectural state, and reports
   host instructions/sec for each.  Writes BENCH_decode_cache.json. *)

(* Bounded: a divergence bug in the fast path could leave the PC stuck,
   and the CI gate must fail on that, not hang. *)
let decode_run step m =
  let fuel = 50_000_000 in
  let rec go n =
    if n > fuel then failwith "decode_cache: workload ran out of fuel"
    else
      match step m with
      | Machine.Step_ok | Machine.Step_trap _ -> go (n + 1)
      | Machine.Step_halted -> ()
      | Machine.Step_waiting -> failwith "decode_cache: workload hit WFI"
      | Machine.Step_double_fault -> failwith "decode_cache: double fault"
  in
  go 0

type path_timing = {
  pt_insns : int;
  pt_seconds : float;
  pt_ips : float;
  pt_hash : string;
  pt_machine : Machine.t;
}

(* One timed run on a fresh machine, so the cached path pays its
   cold-miss cost every time — no warm-cache flattery. *)
let run_once ~mk ~fast =
  let step = if fast then Machine.step_fast else Machine.step in
  let m = mk () in
  let t0 = Sys.time () in
  decode_run step m;
  (Sys.time () -. t0, m)

(* Both paths are timed in an interleaved reference/cached sequence
   (min of 5 pairs): host timing noise drifts over seconds, and
   interleaving exposes both paths to the same drift instead of charging
   it all to whichever path ran last. *)
let time_paths ~mk =
  let finish best m =
    {
      pt_insns = m.Machine.minstret;
      pt_seconds = best;
      pt_ips = float_of_int m.Machine.minstret /. max 1e-9 best;
      pt_hash = Machine.state_hash m;
      pt_machine = m;
    }
  in
  let best_r = ref infinity and best_c = ref infinity in
  let last_r = ref None and last_c = ref None in
  for _ = 1 to 5 do
    let dt_r, mr = run_once ~mk ~fast:false in
    let dt_c, mc = run_once ~mk ~fast:true in
    if dt_r < !best_r then best_r := dt_r;
    if dt_c < !best_c then best_c := dt_c;
    last_r := Some mr;
    last_c := Some mc
  done;
  (finish !best_r (Option.get !last_r), finish !best_c (Option.get !last_c))

let decode_cache ?(smoke = false) () =
  section
    (if smoke then "decode cache -- smoke (reduced workloads)"
     else "decode cache -- reference vs cached dispatch");
  let workloads =
    [
      ( "coremark",
        fun () ->
          Coremark.setup
            ~iterations:(if smoke then 2 else 40)
            (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
      );
      ( "alloc_bench",
        fun () -> Alloc_bench.isa_setup ~rounds:(if smoke then 5 else 400) ()
      );
      ( "iot_app",
        fun () -> Iot_app.isa_setup ~packets:(if smoke then 10 else 1500) ()
      );
    ]
  in
  Format.printf "%-12s %12s %14s %14s %9s %7s@." "workload" "insns"
    "ref insns/s" "cached insns/s" "speedup" "match";
  let diverged = ref false in
  let rows =
    List.map
      (fun (name, mk) ->
        let r, c = time_paths ~mk in
        let ok = r.pt_insns = c.pt_insns && r.pt_hash = c.pt_hash in
        if not ok then begin
          diverged := true;
          Format.eprintf
            "DIVERGENCE on %s: ref %d insns (hash %s), cached %d insns (hash \
             %s)@."
            name r.pt_insns r.pt_hash c.pt_insns c.pt_hash
        end;
        let speedup = c.pt_ips /. r.pt_ips in
        Format.printf "%-12s %12d %14.0f %14.0f %8.2fx %7s@." name r.pt_insns
          r.pt_ips c.pt_ips speedup
          (if ok then "yes" else "NO");
        (name, r, c, speedup, ok))
      workloads
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"decode_cache\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"workloads\": [\n" smoke);
  List.iteri
    (fun i (name, r, c, speedup, ok) ->
      let st = Machine.decode_stats c.pt_machine in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S,\n\
           \     \"reference\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"cached\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f,\n\
           \                \"decode_hits\": %d, \"decode_misses\": %d, \
            \"decode_invalidations\": %d},\n\
           \     \"speedup\": %.3f, \"state_match\": %b}%s\n"
           name r.pt_insns r.pt_seconds r.pt_ips c.pt_insns c.pt_seconds
           c.pt_ips st.Cheriot_isa.Decode_cache.hits st.misses st.invalidations
           speedup ok
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  (* The smoke run is a CI divergence gate, not a performance claim: keep
     it from clobbering the full-size numbers. *)
  let file =
    if smoke then "BENCH_decode_cache_smoke.json" else "BENCH_decode_cache.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if !diverged then begin
    prerr_endline "decode_cache: dispatch paths diverged";
    exit 1
  end

(* --- basic-block translation benchmark ----------------------------------- *)

(* Three-way differential timing: the reference interpreter, the
   decoded-instruction cache, and the basic-block translation cache with
   its batched run loop.  All three must retire identical instruction
   counts and reach bit-identical architectural state; the block path's
   win over [step_fast] is pure dispatch-overhead savings (no per-step
   interrupt check, no per-step cache probe, prebuilt PCC chain).
   Writes BENCH_block_exec.json. *)

let block_run dispatch m =
  match Machine.run ~fuel:50_000_000 ~dispatch m with
  | Machine.Step_halted, _ -> ()
  | Machine.Step_waiting, _ -> failwith "block_exec: workload hit WFI"
  | Machine.Step_double_fault, _ -> failwith "block_exec: double fault"
  | (Machine.Step_ok | Machine.Step_trap _), _ ->
      failwith "block_exec: workload ran out of fuel"

let block_run_once ~mk dispatch =
  let m = mk () in
  let t0 = Sys.time () in
  block_run dispatch m;
  (Sys.time () -. t0, m)

(* Interleaved min-of-5 triplets on fresh machines, for the same reasons
   as [time_paths]. *)
let time_three ~mk =
  let finish best m =
    {
      pt_insns = m.Machine.minstret;
      pt_seconds = best;
      pt_ips = float_of_int m.Machine.minstret /. max 1e-9 best;
      pt_hash = Machine.state_hash m;
      pt_machine = m;
    }
  in
  let paths =
    [| Machine.Dispatch_ref; Machine.Dispatch_cached; Machine.Dispatch_block |]
  in
  let best = Array.make 3 infinity in
  let last = Array.make 3 None in
  for _ = 1 to 5 do
    Array.iteri
      (fun i d ->
        let dt, m = block_run_once ~mk d in
        if dt < best.(i) then best.(i) <- dt;
        last.(i) <- Some m)
      paths
  done;
  Array.init 3 (fun i -> finish best.(i) (Option.get last.(i)))

let block_exec ?(smoke = false) () =
  section
    (if smoke then "block exec -- smoke (reduced workloads)"
     else "block exec -- reference vs cached vs block dispatch");
  let workloads =
    [
      ( "coremark",
        fun () ->
          Coremark.setup
            ~iterations:(if smoke then 2 else 40)
            (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
      );
      ( "alloc_bench",
        fun () -> Alloc_bench.isa_setup ~rounds:(if smoke then 5 else 400) ()
      );
      ( "iot_app",
        fun () -> Iot_app.isa_setup ~packets:(if smoke then 10 else 1500) ()
      );
    ]
  in
  Format.printf "%-12s %12s %13s %13s %13s %8s %8s %7s@." "workload" "insns"
    "ref i/s" "cached i/s" "block i/s" "vs ref" "vs cach" "match";
  let diverged = ref false in
  let rows =
    List.map
      (fun (name, mk) ->
        let p = time_three ~mk in
        let r = p.(0) and c = p.(1) and b = p.(2) in
        let ok =
          r.pt_insns = c.pt_insns
          && c.pt_insns = b.pt_insns
          && r.pt_hash = c.pt_hash
          && c.pt_hash = b.pt_hash
        in
        if not ok then begin
          diverged := true;
          Format.eprintf
            "DIVERGENCE on %s: ref %d/%s cached %d/%s block %d/%s@." name
            r.pt_insns r.pt_hash c.pt_insns c.pt_hash b.pt_insns b.pt_hash
        end;
        let vs_ref = b.pt_ips /. r.pt_ips in
        let vs_cached = b.pt_ips /. c.pt_ips in
        Format.printf "%-12s %12d %13.0f %13.0f %13.0f %7.2fx %7.2fx %7s@."
          name r.pt_insns r.pt_ips c.pt_ips b.pt_ips vs_ref vs_cached
          (if ok then "yes" else "NO");
        (name, r, c, b, ok))
      workloads
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"block_exec\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"workloads\": [\n" smoke);
  List.iteri
    (fun i (name, r, c, b, ok) ->
      let bs = Machine.block_stats b.pt_machine in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S,\n\
           \     \"reference\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"cached\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"block\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f,\n\
           \               \"block_hits\": %d, \"block_misses\": %d, \
            \"block_invalidations\": %d,\n\
           \               \"block_aborts\": %d, \"blocks_filled\": %d, \
            \"avg_block_len\": %.2f},\n\
           \     \"speedup_vs_reference\": %.3f, \"speedup_vs_cached\": \
            %.3f, \"state_match\": %b}%s\n"
           name r.pt_insns r.pt_seconds r.pt_ips c.pt_insns c.pt_seconds
           c.pt_ips b.pt_insns b.pt_seconds b.pt_ips
           bs.Machine.block_hits bs.Machine.block_misses
           bs.Machine.block_invalidations bs.Machine.block_aborts
           bs.Machine.blocks_filled (Machine.avg_block_len bs)
           (b.pt_ips /. r.pt_ips)
           (b.pt_ips /. c.pt_ips)
           ok
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let file =
    if smoke then "BENCH_block_exec_smoke.json" else "BENCH_block_exec.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if !diverged then begin
    prerr_endline "block_exec: dispatch paths diverged";
    exit 1
  end

(* --- block chaining + superblock benchmark ------------------------------- *)

(* Four-way differential timing adding the chained dispatch path
   ([Dispatch_chain]: direct block-to-block links plus trace-driven
   superblocks) to the [block_exec] trio.  All four must retire
   identical instruction counts and reach bit-identical architectural
   state; the acceptance target is the chain path's win over the PR 2
   block path.  Writes BENCH_chain_exec.json with the chain/superblock
   counters. *)

let chain_dispatches =
  [|
    Machine.Dispatch_ref;
    Machine.Dispatch_cached;
    Machine.Dispatch_block;
    Machine.Dispatch_chain;
  |]

(* Interleaved min-of-5 quadruplets on fresh machines, for the same
   reasons as [time_paths]. *)
let time_four ~mk =
  let finish best m =
    {
      pt_insns = m.Machine.minstret;
      pt_seconds = best;
      pt_ips = float_of_int m.Machine.minstret /. max 1e-9 best;
      pt_hash = Machine.state_hash m;
      pt_machine = m;
    }
  in
  let n = Array.length chain_dispatches in
  let best = Array.make n infinity in
  let last = Array.make n None in
  for _ = 1 to 5 do
    Array.iteri
      (fun i d ->
        let dt, m = block_run_once ~mk d in
        if dt < best.(i) then best.(i) <- dt;
        last.(i) <- Some m)
      chain_dispatches
  done;
  Array.init n (fun i -> finish best.(i) (Option.get last.(i)))

let chain_exec ?(smoke = false) () =
  section
    (if smoke then "chain exec -- smoke (reduced workloads)"
     else "chain exec -- block dispatch vs chained blocks + superblocks");
  let workloads =
    [
      ( "coremark",
        fun () ->
          Coremark.setup
            ~iterations:(if smoke then 2 else 40)
            (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
      );
      ( "alloc_bench",
        fun () -> Alloc_bench.isa_setup ~rounds:(if smoke then 5 else 400) ()
      );
      ( "iot_app",
        fun () -> Iot_app.isa_setup ~packets:(if smoke then 10 else 1500) ()
      );
    ]
  in
  Format.printf "%-12s %12s %13s %13s %8s %8s %7s@." "workload" "insns"
    "block i/s" "chain i/s" "vs blk" "vs ref" "match";
  let diverged = ref false in
  let rows =
    List.map
      (fun (name, mk) ->
        let p = time_four ~mk in
        let r = p.(0) and c = p.(1) and b = p.(2) and ch = p.(3) in
        let ok =
          Array.for_all
            (fun q -> q.pt_insns = r.pt_insns && q.pt_hash = r.pt_hash)
            p
        in
        if not ok then begin
          diverged := true;
          Format.eprintf
            "DIVERGENCE on %s: ref %d/%s cached %d/%s block %d/%s chain %d/%s@."
            name r.pt_insns r.pt_hash c.pt_insns c.pt_hash b.pt_insns b.pt_hash
            ch.pt_insns ch.pt_hash
        end;
        let vs_block = ch.pt_ips /. b.pt_ips in
        let vs_ref = ch.pt_ips /. r.pt_ips in
        Format.printf "%-12s %12d %13.0f %13.0f %7.2fx %7.2fx %7s@." name
          r.pt_insns b.pt_ips ch.pt_ips vs_block vs_ref
          (if ok then "yes" else "NO");
        (name, r, c, b, ch, ok))
      workloads
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"chain_exec\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"workloads\": [\n" smoke);
  List.iteri
    (fun i (name, r, c, b, ch, ok) ->
      let cs = Machine.block_stats ch.pt_machine in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S,\n\
           \     \"reference\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"cached\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"block\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"chain\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f,\n\
           \               \"block_hits\": %d, \"block_misses\": %d, \
            \"block_invalidations\": %d,\n\
           \               \"block_aborts\": %d, \"blocks_filled\": %d, \
            \"avg_block_len\": %.2f,\n\
           \               \"chain_hits\": %d, \"chain_unlinks\": %d, \
            \"superblocks_formed\": %d, \"side_exits\": %d},\n\
           \     \"speedup_vs_block\": %.3f, \"speedup_vs_reference\": %.3f, \
            \"state_match\": %b}%s\n"
           name r.pt_insns r.pt_seconds r.pt_ips c.pt_insns c.pt_seconds
           c.pt_ips b.pt_insns b.pt_seconds b.pt_ips ch.pt_insns ch.pt_seconds
           ch.pt_ips cs.Machine.block_hits cs.Machine.block_misses
           cs.Machine.block_invalidations cs.Machine.block_aborts
           cs.Machine.blocks_filled (Machine.avg_block_len cs)
           cs.Machine.chain_hits cs.Machine.chain_unlinks
           cs.Machine.superblocks_formed cs.Machine.side_exits
           (ch.pt_ips /. b.pt_ips)
           (ch.pt_ips /. r.pt_ips)
           ok
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let file =
    if smoke then "BENCH_chain_exec_smoke.json" else "BENCH_chain_exec.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if !diverged then begin
    prerr_endline "chain_exec: dispatch paths diverged";
    exit 1
  end;
  (* The chained tier only pays off if the trace heuristic actually
     fires: at least one workload must have formed a superblock, or the
     heuristic has regressed into never triggering. *)
  if
    not
      (List.exists
         (fun (_, _, _, _, ch, _) ->
           (Machine.block_stats ch.pt_machine).Machine.superblocks_formed > 0)
         rows)
  then begin
    prerr_endline "chain_exec: no workload formed any superblock";
    exit 1
  end

(* --- trace-jit benchmark -------------------------------------------------- *)

(* Five-way differential timing adding the optimizing jit tier
   ([Dispatch_jit]: chained superblock rounds executing per-block check
   plans from [Ir.optimize]) to the [chain_exec] set.  All five must
   retire identical instruction counts and reach bit-identical
   architectural state; the interesting numbers are the jit tier's win
   over the chain path and the optimizer counters (eliminated / hoisted
   checks, removed bookkeeping, opt side exits).  Writes
   BENCH_jit_exec.json, and fails the run if no workload formed a
   superblock or eliminated a check — the optimizer never engaging is a
   regression, not a neutral result. *)

let jit_dispatches =
  [|
    Machine.Dispatch_ref;
    Machine.Dispatch_cached;
    Machine.Dispatch_block;
    Machine.Dispatch_chain;
    Machine.Dispatch_jit;
  |]

(* Interleaved min-of-5 quintuplets on fresh machines, for the same
   reasons as [time_paths]. *)
let time_five ~mk =
  let finish best m =
    {
      pt_insns = m.Machine.minstret;
      pt_seconds = best;
      pt_ips = float_of_int m.Machine.minstret /. max 1e-9 best;
      pt_hash = Machine.state_hash m;
      pt_machine = m;
    }
  in
  let n = Array.length jit_dispatches in
  let best = Array.make n infinity in
  let last = Array.make n None in
  for _ = 1 to 5 do
    Array.iteri
      (fun i d ->
        let dt, m = block_run_once ~mk d in
        if dt < best.(i) then best.(i) <- dt;
        last.(i) <- Some m)
      jit_dispatches
  done;
  Array.init n (fun i -> finish best.(i) (Option.get last.(i)))

let jit_exec ?(smoke = false) () =
  section
    (if smoke then "jit exec -- smoke (reduced workloads)"
     else "jit exec -- chained blocks vs optimizing trace jit");
  let workloads =
    [
      ( "coremark",
        fun () ->
          Coremark.setup
            ~iterations:(if smoke then 2 else 40)
            (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
      );
      ( "alloc_bench",
        fun () -> Alloc_bench.isa_setup ~rounds:(if smoke then 5 else 400) ()
      );
      ( "iot_app",
        fun () -> Iot_app.isa_setup ~packets:(if smoke then 10 else 1500) ()
      );
    ]
  in
  Format.printf "%-12s %12s %13s %13s %8s %8s %7s@." "workload" "insns"
    "chain i/s" "jit i/s" "vs chn" "vs ref" "match";
  let diverged = ref false in
  let rows =
    List.map
      (fun (name, mk) ->
        let p = time_five ~mk in
        let r = p.(0) and c = p.(1) and b = p.(2) and ch = p.(3) in
        let j = p.(4) in
        let ok =
          Array.for_all
            (fun q -> q.pt_insns = r.pt_insns && q.pt_hash = r.pt_hash)
            p
        in
        if not ok then begin
          diverged := true;
          Format.eprintf
            "DIVERGENCE on %s: ref %d/%s cached %d/%s block %d/%s chain \
             %d/%s jit %d/%s@."
            name r.pt_insns r.pt_hash c.pt_insns c.pt_hash b.pt_insns b.pt_hash
            ch.pt_insns ch.pt_hash j.pt_insns j.pt_hash
        end;
        let vs_chain = j.pt_ips /. ch.pt_ips in
        let vs_ref = j.pt_ips /. r.pt_ips in
        Format.printf "%-12s %12d %13.0f %13.0f %7.2fx %7.2fx %7s@." name
          r.pt_insns ch.pt_ips j.pt_ips vs_chain vs_ref
          (if ok then "yes" else "NO");
        (name, r, c, b, ch, j, ok))
      workloads
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"bench\": \"jit_exec\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"workloads\": [\n" smoke);
  List.iteri
    (fun i (name, r, c, b, ch, j, ok) ->
      let js = Machine.block_stats j.pt_machine in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S,\n\
           \     \"reference\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"cached\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"block\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"chain\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f},\n\
           \     \"jit\": {\"instructions\": %d, \"seconds\": %.6f, \
            \"insns_per_sec\": %.0f,\n\
           \             \"block_hits\": %d, \"block_misses\": %d, \
            \"block_invalidations\": %d,\n\
           \             \"block_aborts\": %d, \"blocks_filled\": %d, \
            \"avg_block_len\": %.2f,\n\
           \             \"chain_hits\": %d, \"chain_unlinks\": %d, \
            \"superblocks_formed\": %d, \"side_exits\": %d,\n\
           \             \"jit_blocks_compiled\": %d, \"checks_eliminated\": \
            %d, \"checks_hoisted\": %d,\n\
           \             \"checks_hoisted_nonentry\": %d, \
            \"dead_bookkeeping_removed\": %d,\n\
           \             \"opt_side_exits\": %d, \"jit_plans_rejected\": \
            %d},\n\
           \     \"speedup_vs_chain\": %.3f, \"speedup_vs_block\": %.3f, \
            \"speedup_vs_reference\": %.3f, \"state_match\": %b}%s\n"
           name r.pt_insns r.pt_seconds r.pt_ips c.pt_insns c.pt_seconds
           c.pt_ips b.pt_insns b.pt_seconds b.pt_ips ch.pt_insns ch.pt_seconds
           ch.pt_ips j.pt_insns j.pt_seconds j.pt_ips js.Machine.block_hits
           js.Machine.block_misses js.Machine.block_invalidations
           js.Machine.block_aborts js.Machine.blocks_filled
           (Machine.avg_block_len js) js.Machine.chain_hits
           js.Machine.chain_unlinks js.Machine.superblocks_formed
           js.Machine.side_exits js.Machine.jit_blocks_compiled
           js.Machine.checks_eliminated js.Machine.checks_hoisted
           js.Machine.checks_hoisted_nonentry
           js.Machine.dead_bookkeeping_removed js.Machine.opt_side_exits
           js.Machine.jit_plans_rejected
           (j.pt_ips /. ch.pt_ips)
           (j.pt_ips /. b.pt_ips)
           (j.pt_ips /. r.pt_ips)
           ok
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let file =
    if smoke then "BENCH_jit_exec_smoke.json" else "BENCH_jit_exec.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if !diverged then begin
    prerr_endline "jit_exec: dispatch paths diverged";
    exit 1
  end;
  let some f =
    List.exists
      (fun (_, _, _, _, _, j, _) ->
        f (Machine.block_stats j.pt_machine) > 0)
      rows
  in
  if not (some (fun s -> s.Machine.superblocks_formed)) then begin
    prerr_endline "jit_exec: no workload formed any superblock";
    exit 1
  end;
  if not (some (fun s -> s.Machine.checks_eliminated)) then begin
    prerr_endline "jit_exec: optimizer eliminated no checks on any workload";
    exit 1
  end

(* --- static auditor timing ------------------------------------------------ *)

(* Times a full Audit.run (CFG recovery + interprocedural fixpoint +
   linkage checks) over each shipped image, so auditor slowdowns show up
   in the perf trajectory alongside the simulator benches.  Doubles as a
   gate: shipped images must stay clean. *)
let audit_bench ?(smoke = false) () =
  section
    (if smoke then "audit -- smoke (static auditor fixpoint timing)"
     else "audit -- static auditor fixpoint timing");
  let runs = if smoke then 2 else 5 in
  Format.printf "%-12s %12s %10s@." "image" "seconds" "findings";
  let rows =
    List.map
      (fun (name, build) ->
        let t = build () in
        let findings = Cheriot_analysis.Audit.run t in
        let best = ref infinity in
        for _ = 1 to runs do
          let t0 = Sys.time () in
          ignore (Cheriot_analysis.Audit.run t);
          let dt = Sys.time () -. t0 in
          if dt < !best then best := dt
        done;
        Format.printf "%-12s %12.6f %10d@." name !best (List.length findings);
        (name, !best, List.length findings))
      Cheriot_workloads.Firmware.shipped
  in
  let total = List.fold_left (fun a (_, s, _) -> a +. s) 0. rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"bench\": \"audit\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"images\": [\n" smoke);
  List.iteri
    (fun i (name, secs, nf) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"seconds\": %.6f, \"findings\": %d}%s\n" name
           secs nf
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"total_seconds\": %.6f\n}\n" total);
  let file = if smoke then "BENCH_audit_smoke.json" else "BENCH_audit.json" in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if List.exists (fun (_, _, nf) -> nf > 0) rows then begin
    prerr_endline "audit: findings on shipped images";
    exit 1
  end

(* --- incremental (summary-cache) audit timing ----------------------------- *)

(* Times a cold audit sweep over a fleet of near-identical images (the
   coremark compartment plus a per-variant sensor compartment,
   Firmware.fleet) against the same sweep through a shared summary
   cache: the expensive coremark fixpoint is re-analyzed once, every
   further image re-analyzes only its one-instruction-different sensor.
   Doubles as a gate: every warm report must be byte-identical to its
   cold counterpart, the cache must actually hit, and (full mode) the
   cached sweep must be at least 2x faster.  Writes
   BENCH_audit_incremental*.json. *)
let audit_incremental_bench ?(smoke = false) () =
  section
    (if smoke then "audit_incremental -- smoke (summary-cache sweep timing)"
     else "audit_incremental -- summary-cache audit sweep timing");
  let grid = if smoke then 3 else 8 in
  let runs = if smoke then 2 else 5 in
  let module Audit = Cheriot_analysis.Audit in
  let module Summary = Cheriot_analysis.Summary in
  let module Rules = Cheriot_analysis.Rules in
  let images =
    List.init grid (fun i ->
        ( Printf.sprintf "fleet-%d" i,
          Cheriot_workloads.Firmware.fleet ~variant:i () ))
  in
  (* correctness before timing: warm ≡ cold, byte for byte, per variant *)
  let cache = Summary.create_cache () in
  let hits = ref 0 and misses = ref 0 in
  let identical =
    List.for_all
      (fun (name, t) ->
        let warm, st = Audit.run_stats ~cache t in
        let cold = Audit.run t in
        hits := !hits + st.Audit.cache_hits;
        misses := !misses + st.Audit.cache_misses;
        String.equal
          (Rules.report_to_json [ (name, Rules.sort_findings warm) ])
          (Rules.report_to_json [ (name, Rules.sort_findings cold) ]))
      images
  in
  let time f =
    let best = ref infinity in
    for _ = 1 to runs do
      let t0 = Sys.time () in
      f ();
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let cold_s =
    time (fun () -> List.iter (fun (_, t) -> ignore (Audit.run t)) images)
  in
  let warm_s =
    time (fun () ->
        let cache = Summary.create_cache () in
        List.iter (fun (_, t) -> ignore (Audit.run_stats ~cache t)) images)
  in
  let speedup = if warm_s > 0. then cold_s /. warm_s else infinity in
  Format.printf "%-6s %12s %12s %8s %6s %8s@." "grid" "cold_s" "warm_s"
    "speedup" "hits" "identical";
  Format.printf "%-6d %12.6f %12.6f %8.2f %6d %8b@." grid cold_s warm_s speedup
    !hits identical;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"bench\": \"audit_incremental\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"smoke\": %b,\n  \"grid\": %d,\n  \"cold_seconds\": %.6f,\n\
       \  \"warm_seconds\": %.6f,\n  \"speedup\": %.2f,\n\
       \  \"cache_hits\": %d,\n  \"cache_misses\": %d,\n\
       \  \"identical\": %b\n}\n"
       smoke grid cold_s warm_s speedup !hits !misses identical);
  let file =
    if smoke then "BENCH_audit_incremental_smoke.json"
    else "BENCH_audit_incremental.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if not identical then begin
    prerr_endline "audit_incremental: warm report diverged from cold";
    exit 1
  end;
  if !hits = 0 then begin
    prerr_endline "audit_incremental: summary cache never hit";
    exit 1
  end;
  if (not smoke) && speedup < 2.0 then begin
    prerr_endline "audit_incremental: cached sweep under 2x over cold";
    exit 1
  end

(* --- plan-soundness verifier timing --------------------------------------- *)

(* Times [Planverify.verify_plan] over every plan the jit tier compiles
   from the shipped images (forced hot so every reachable block
   compiles), so verifier slowdowns show up in the perf trajectory.
   Doubles as a gate: an image compiling zero plans, or any plan proving
   Unsound, fails the run.  Writes BENCH_planverify*.json. *)
let planverify_bench ?(smoke = false) () =
  section
    (if smoke then "planverify -- smoke (plan-soundness verifier timing)"
     else "planverify -- plan-soundness verifier timing");
  let runs = if smoke then 2 else 5 in
  Format.printf "%-12s %8s %12s %10s@." "image" "plans" "seconds" "unsound";
  let rows =
    List.map
      (fun (name, build) ->
        let t = build () in
        let m = t.Cheriot_rtos.Loader.machine in
        m.Machine.hot_threshold <- 2;
        m.Machine.hot_adaptive <- false;
        let plans = Cheriot_analysis.Planverify.collect m in
        let unsound =
          List.length
            (List.filter
               (fun p ->
                 Cheriot_analysis.Planverify.verify_plan p
                 <> Cheriot_analysis.Planverify.Sound)
               plans)
        in
        let best = ref infinity in
        for _ = 1 to runs do
          let t0 = Sys.time () in
          List.iter
            (fun p -> ignore (Cheriot_analysis.Planverify.verify_plan p))
            plans;
          let dt = Sys.time () -. t0 in
          if dt < !best then best := dt
        done;
        Format.printf "%-12s %8d %12.6f %10d@." name (List.length plans) !best
          unsound;
        (name, List.length plans, !best, unsound))
      Cheriot_workloads.Firmware.shipped
  in
  let total = List.fold_left (fun a (_, _, s, _) -> a +. s) 0. rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"bench\": \"planverify\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"images\": [\n" smoke);
  List.iteri
    (fun i (name, n, secs, unsound) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"plans\": %d, \"seconds\": %.6f, \"unsound\": \
            %d}%s\n"
           name n secs unsound
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"total_seconds\": %.6f\n}\n" total);
  let file =
    if smoke then "BENCH_planverify_smoke.json" else "BENCH_planverify.json"
  in
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." file;
  if List.exists (fun (_, n, _, _) -> n = 0) rows then begin
    prerr_endline "planverify: an image compiled no plans";
    exit 1
  end;
  if List.exists (fun (_, _, _, u) -> u > 0) rows then begin
    prerr_endline "planverify: unsound plans on shipped images";
    exit 1
  end

(* --- driver -------------------------------------------------------------- *)

let all () =
  table1 ();
  table2 ();
  table3 ();
  let flute, ibex = table4 () in
  fig56 Core_model.Flute "5" flute;
  fig56 Core_model.Ibex "6" ibex;
  iot ();
  ablations ();
  decode_cache ();
  block_exec ();
  chain_exec ();
  jit_exec ();
  audit_bench ();
  audit_incremental_bench ();
  planverify_bench ();
  micro ()

let () =
  match Sys.argv with
  | [| _ |] -> all ()
  | [| _; "table1" |] -> table1 ()
  | [| _; "table2" |] -> table2 ()
  | [| _; "table3" |] -> table3 ()
  | [| _; "table4" |] -> ignore (table4 ())
  | [| _; "fig5" |] -> fig56 Core_model.Flute "5" (run_alloc_table Core_model.Flute)
  | [| _; "fig6" |] -> fig56 Core_model.Ibex "6" (run_alloc_table Core_model.Ibex)
  | [| _; "iot" |] -> iot ()
  | [| _; "ablations" |] -> ablations ()
  | [| _; "decode_cache" |] -> decode_cache ()
  | [| _; "decode_cache"; "smoke" |] -> decode_cache ~smoke:true ()
  | [| _; "block_exec" |] -> block_exec ()
  | [| _; "block_exec"; "smoke" |] -> block_exec ~smoke:true ()
  | [| _; "chain_exec" |] -> chain_exec ()
  | [| _; "chain_exec"; "smoke" |] -> chain_exec ~smoke:true ()
  | [| _; "jit_exec" |] -> jit_exec ()
  | [| _; "jit_exec"; "smoke" |] -> jit_exec ~smoke:true ()
  | [| _; "audit" |] -> audit_bench ()
  | [| _; "audit"; "smoke" |] -> audit_bench ~smoke:true ()
  | [| _; "audit_incremental" |] -> audit_incremental_bench ()
  | [| _; "audit_incremental"; "smoke" |] ->
      audit_incremental_bench ~smoke:true ()
  | [| _; "planverify" |] -> planverify_bench ()
  | [| _; "planverify"; "smoke" |] -> planverify_bench ~smoke:true ()
  | [| _; "micro" |] -> micro ()
  | _ ->
      prerr_endline
        "usage: main.exe \
         [table1|table2|table3|table4|fig5|fig6|iot|ablations|decode_cache \
         [smoke]|block_exec [smoke]|chain_exec [smoke]|jit_exec \
         [smoke]|audit [smoke]|audit_incremental [smoke]|planverify \
         [smoke]|micro]";
      exit 2
