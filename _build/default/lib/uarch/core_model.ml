type core = Flute | Ibex

type params = {
  base : int;
  mul : int;
  div : int;
  taken_branch_penalty : int;
  jump_penalty : int;
  trap_penalty : int;
  mem_extra : int;
  bus_bytes : int;
  load_filter_extra : int;
}

(* The constants reflect the two design points: Flute hides memory and
   filter latency in its longer pipeline but pays more for redirects;
   Ibex has cheap branches but a narrow bus and a visible filter delay. *)
let params_of = function
  | Flute ->
      {
        base = 1;
        mul = 1;
        div = 17;
        taken_branch_penalty = 3;
        jump_penalty = 3;
        trap_penalty = 5;
        mem_extra = 0;
        bus_bytes = 8;
        load_filter_extra = 0;
      }
  | Ibex ->
      {
        base = 1;
        mul = 3;
        div = 37;
        taken_branch_penalty = 1;
        jump_penalty = 1;
        trap_penalty = 3;
        mem_extra = 1;
        bus_bytes = 4;
        load_filter_extra = 1;
      }

let name = function Flute -> "Flute" | Ibex -> "Ibex"

type config = {
  core : core;
  cheri : bool;
  load_filter : bool;
  hw_revoker : bool;
  stack_hwm : bool;
}

let config ?(cheri = true) ?(load_filter = true) ?(hw_revoker = false)
    ?(stack_hwm = false) core =
  { core; cheri; load_filter; hw_revoker; stack_hwm }

let config_name c =
  Printf.sprintf "%s/%s%s%s%s" (name c.core)
    (if c.cheri then "CHERIoT" else "RV32E")
    (if c.cheri && c.load_filter then "+filter" else "")
    (if c.hw_revoker then "+hwrev" else "")
    (if c.stack_hwm then "+hwm" else "")

(* Bus beats needed for an access of [bytes] on a [bus_bytes]-wide bus. *)
let beats ~bus_bytes bytes = (bytes + bus_bytes - 1) / bus_bytes

let cycles_of_event p ~load_filter (ev : Cheriot_isa.Machine.event) =
  match ev.ev_trap with
  | Some _ -> p.trap_penalty
  | None -> (
      match ev.ev_insn with
      | None -> p.base
      | Some insn -> (
          match Cheriot_isa.Insn.classify insn with
          | K_alu | K_cap_alu -> p.base
          | K_mul -> p.mul
          | K_div -> p.div
          | K_branch ->
              p.base + if ev.ev_taken_branch then p.taken_branch_penalty else 0
          | K_jump -> p.base + p.jump_penalty
          | K_system -> p.base
          | K_load b | K_store b ->
              p.base + p.mem_extra + (beats ~bus_bytes:p.bus_bytes b - 1)
          | K_cap_store ->
              p.base + p.mem_extra + (beats ~bus_bytes:p.bus_bytes 8 - 1)
          | K_cap_load ->
              p.base + p.mem_extra
              + (beats ~bus_bytes:p.bus_bytes 8 - 1)
              + if load_filter then p.load_filter_extra else 0))

let mem_cycles_of_event p (ev : Cheriot_isa.Machine.event) =
  if ev.ev_mem_bytes = 0 then 0
  else beats ~bus_bytes:p.bus_bytes ev.ev_mem_bytes
