open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Mmio = Cheriot_mem.Mmio
module Bus = Cheriot_mem.Bus

type slot = { s_addr : int; s_tag : bool; s_word : int64; mutable dirty : bool }

type t = {
  sram : Sram.t;
  rev : Revbits.t;
  pipelined : bool;
  bus_beats : int;  (** bus beats per 8-byte load (1 on Flute, 2 on Ibex) *)
  mutable start_a : int;
  mutable end_a : int;
  mutable epoch : int;
  mutable sweeping : bool;
  mutable pos : int;
  mutable s1 : slot option;  (** just loaded *)
  mutable s2 : slot option;  (** revocation bit being checked *)
  mutable stall : int;  (** remaining beats of the bus op in progress *)
  mutable n_invalidated : int;
  mutable n_swept : int;
  mutable n_busy : int;
  mutable n_race : int;
}

let create ?(pipelined = true) ~core ~sram ~rev () =
  {
    sram;
    rev;
    pipelined;
    bus_beats = (match (core : Core_model.core) with Flute -> 1 | Ibex -> 2);
    start_a = 0;
    end_a = 0;
    epoch = 0;
    sweeping = false;
    pos = 0;
    s1 = None;
    s2 = None;
    stall = 0;
    n_invalidated = 0;
    n_swept = 0;
    n_busy = 0;
    n_race = 0;
  }

let epoch t = t.epoch
let sweeping t = t.sweeping
let caps_invalidated t = t.n_invalidated
let words_swept t = t.n_swept
let busy_cycles t = t.n_busy
let race_reloads t = t.n_race

let kick t ~start ~stop =
  if not t.sweeping then begin
    t.start_a <- start land lnot 7;
    t.end_a <- stop land lnot 7;
    t.pos <- t.start_a;
    t.s1 <- None;
    t.s2 <- None;
    t.stall <- 0;
    t.sweeping <- true;
    t.epoch <- t.epoch + 1
  end

let snoop_store t addr =
  let hit s =
    match s with
    | Some slot when slot.s_addr = addr ->
        slot.dirty <- true;
        t.n_race <- t.n_race + 1
    | Some _ | None -> ()
  in
  if t.sweeping then begin
    hit t.s1;
    hit t.s2
  end

let load_slot t addr =
  let tag, word = Sram.read_cap t.sram addr in
  { s_addr = addr; s_tag = tag; s_word = word; dirty = false }

let needs_invalidation t slot =
  slot.s_tag
  && Revbits.is_revoked t.rev
       (Capability.base (Capability.of_word ~tag:slot.s_tag slot.s_word))

let finish_if_done t =
  if t.pos >= t.end_a && t.s1 = None && t.s2 = None then begin
    t.sweeping <- false;
    t.epoch <- t.epoch + 1
  end

(* One idle bus cycle granted by the core.  At most one bus beat happens
   per tick; multi-beat operations (the 33-bit Ibex bus) stall via
   [t.stall].  Invalidation uses a single half-word write — clearing one
   micro-tag clears the architectural tag (paper 7.2.2) — so it costs one
   beat even on Ibex. *)
let tick t =
  if t.sweeping then begin
    t.n_busy <- t.n_busy + 1;
    if t.stall > 0 then t.stall <- t.stall - 1
    else
      match t.s2 with
      | Some slot when slot.dirty ->
          (* Race: the main pipeline overwrote an in-flight word; reload
             before deciding anything (3.3.3). *)
          t.s2 <- Some (load_slot t slot.s_addr);
          t.stall <- t.bus_beats - 1
      | Some slot when needs_invalidation t slot ->
          (* Single write clears the micro-tag, invalidating the cap. *)
          Sram.write32 t.sram slot.s_addr
            (Int64.to_int (Int64.logand slot.s_word 0xFFFF_FFFFL));
          t.n_invalidated <- t.n_invalidated + 1;
          t.n_swept <- t.n_swept + 1;
          t.s2 <- t.s1;
          t.s1 <- None;
          finish_if_done t
      | s2 ->
          (* Clean retire (no bus needed for the check itself): advance
             the pipeline and issue the next load. *)
          if s2 <> None then t.n_swept <- t.n_swept + 1;
          t.s2 <- t.s1;
          t.s1 <- None;
          let may_issue =
            t.pos < t.end_a
            && (t.pipelined || (t.s1 = None && t.s2 = None))
          in
          if may_issue then begin
            t.s1 <- Some (load_slot t t.pos);
            t.pos <- t.pos + 8;
            t.stall <- t.bus_beats - 1
          end;
          finish_if_done t
  end

let run_to_completion t =
  let n = ref 0 in
  while t.sweeping do
    tick t;
    incr n
  done;
  !n

let mmio t ~base =
  let read32 off =
    match off with
    | 0 -> t.start_a
    | 4 -> t.end_a
    | 8 -> t.epoch
    | _ -> 0
  in
  let write32 off v =
    match off with
    | 0 -> t.start_a <- v land lnot 7
    | 4 -> t.end_a <- v land lnot 7
    | 12 -> kick t ~start:t.start_a ~stop:t.end_a
    | _ -> ()
  in
  { Mmio.name = "revoker"; dev_base = base; dev_size = 16; read32; write32 }

let attach t bus ~base =
  Bus.add_device bus (mmio t ~base);
  Bus.on_store bus (snoop_store t)
