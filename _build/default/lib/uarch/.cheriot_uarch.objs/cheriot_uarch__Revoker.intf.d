lib/uarch/revoker.mli: Cheriot_mem Core_model
