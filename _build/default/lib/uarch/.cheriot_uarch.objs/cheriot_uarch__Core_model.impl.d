lib/uarch/core_model.ml: Cheriot_isa Printf
