lib/uarch/perf.ml: Cheriot_isa Core_model Format Revoker
