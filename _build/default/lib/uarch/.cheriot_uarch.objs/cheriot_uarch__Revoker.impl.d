lib/uarch/revoker.ml: Capability Cheriot_core Cheriot_mem Core_model Int64
