lib/uarch/core_model.mli: Cheriot_isa
