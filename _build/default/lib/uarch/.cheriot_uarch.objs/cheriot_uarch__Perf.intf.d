lib/uarch/perf.mli: Cheriot_isa Core_model Format Revoker
