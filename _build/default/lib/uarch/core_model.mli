(** Cycle-level core models (paper 4).

    Two design points are modelled:

    - {b Flute}: a five-stage single-issue in-order pipeline with a 65-bit
      (64 + tag) memory bus.  Capability loads/stores take a single bus
      beat, and the load filter's revocation-bit lookup is hidden in the
      MEM→WB stages (Fig. 4), costing no extra cycles.
    - {b Ibex}: a small 2/3-stage core optimized for area with a 33-bit
      data bus: a capability transfer takes two bus beats, and the load
      filter's extra load-to-use delay is visible (paper 7.2.1).

    The model charges cycles per retired instruction from the
    {!Cheriot_isa.Machine.event} the ISA emulator reports.  All costs are
    deterministic — the real-time requirement of 2.1. *)

type core = Flute | Ibex

type params = {
  base : int;  (** cycles for a simple ALU instruction *)
  mul : int;
  div : int;
  taken_branch_penalty : int;  (** extra cycles on a taken branch *)
  jump_penalty : int;
  trap_penalty : int;  (** pipeline flush on trap/interrupt entry *)
  mem_extra : int;  (** extra cycles for a data load/store beyond base *)
  bus_bytes : int;  (** data-bus width: 8 (Flute) or 4 (Ibex) *)
  load_filter_extra : int;
      (** extra load-to-use cycles on a capability load when the load
          filter is enabled (0 on Flute, 1 on Ibex) *)
}

val params_of : core -> params
val name : core -> string

(** A full machine configuration of Table 3 / Table 4. *)
type config = {
  core : core;
  cheri : bool;  (** capability mode vs RV32E baseline *)
  load_filter : bool;
  hw_revoker : bool;
  stack_hwm : bool;  (** stack high-water-mark assist (5.2.1) *)
}

val config : ?cheri:bool -> ?load_filter:bool -> ?hw_revoker:bool ->
  ?stack_hwm:bool -> core -> config
val config_name : config -> string

val cycles_of_event : params -> load_filter:bool ->
  Cheriot_isa.Machine.event -> int
(** Cycles charged for one retired instruction (or trap entry). *)

val mem_cycles_of_event : params -> Cheriot_isa.Machine.event -> int
(** How many of those cycles keep the data bus busy — the remainder are
    the idle slots the background revoker can steal (3.3.3). *)
