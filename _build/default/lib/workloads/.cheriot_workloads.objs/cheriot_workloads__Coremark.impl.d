lib/workloads/coremark.ml: Asm Cheriot_core Cheriot_isa Cheriot_mem Cheriot_uarch Insn List Machine
