lib/workloads/alloc_bench.ml: Cheriot_mem Cheriot_rtos Cheriot_uarch Fmt Printf
