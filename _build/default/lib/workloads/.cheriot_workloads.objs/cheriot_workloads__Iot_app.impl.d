lib/workloads/iot_app.ml: Cheriot_mem Cheriot_rtos Cheriot_uarch Fmt List
