(** Block-level area and power model for the CHERIoT-Ibex variants
    (paper 7.1, Table 2).

    The paper synthesizes five Ibex variants on TSMC 28 nm HPC+ at
    300 MHz and reports gate-equivalents and estimated power running
    CoreMark.  We reproduce the table with a component inventory: each
    variant is a sum of blocks, so the {e structure} of the deltas (what
    each feature adds) is explicit and the ablations of DESIGN.md §5 can
    reuse the blocks.  Block sizes are calibrated to the published totals;
    power uses an activity-weighted model over the same blocks, reflecting
    the paper's caveat that the pre-silicon estimate over-weights raw gate
    count (the PMP's comparators switch on every access, while most CHERI
    logic is idle outside capability operations). *)

type block = { b_name : string; gates : int; activity : float }
(** [activity] is the average fraction of cycles the block switches while
    running CoreMark — the weight used by the power model. *)

type variant = {
  v_name : string;
  blocks : block list;
}

(* The RV32E Ibex baseline: 26 988 GE total. *)
let rv32e_blocks =
  [
    { b_name = "ifetch + prefetch"; gates = 4100; activity = 0.9 };
    { b_name = "decoder"; gates = 3300; activity = 0.8 };
    { b_name = "ALU"; gates = 3900; activity = 0.8 };
    { b_name = "multiplier/divider"; gates = 4800; activity = 0.15 };
    { b_name = "register file (16 x 32)"; gates = 6088; activity = 0.5 };
    { b_name = "LSU"; gates = 2300; activity = 0.35 };
    { b_name = "CSRs + debug"; gates = 2500; activity = 0.2 };
  ]

(* A 16-entry RISC-V PMP: per-entry address registers and comparators,
   engaged on every load/store/fetch. *)
let pmp16_blocks =
  [
    { b_name = "PMP CSRs (16 x addr+cfg)"; gates = 14200; activity = 0.08 };
    { b_name = "PMP comparators (16-way)"; gates = 12400; activity = 0.45 };
    { b_name = "PMP grant logic"; gates = 2317; activity = 0.25 };
  ]

(* The CHERIoT extension: 64-bit register file, bounds decode/check,
   permission logic, sealing, representability check. *)
let cheriot_blocks =
  [
    { b_name = "register file widening (16 x 64 + tags)"; gates = 6100; activity = 0.5 };
    { b_name = "bounds decode (E/B/T + corrections)"; gates = 7900; activity = 0.40 };
    { b_name = "bounds/representability check"; gates = 6200; activity = 0.40 };
    { b_name = "permission decode + checks"; gates = 3400; activity = 0.40 };
    { b_name = "sealing/otype + sentry logic"; gates = 2600; activity = 0.08 };
    { b_name = "cap ALU (setbounds/andperm/seal datapath)"; gates = 4922; activity = 0.26 };
  ]

(* The load filter: a revocation-bit port and a tag-strip mux in WB. *)
let load_filter_blocks =
  [ { b_name = "load filter (revbit lookup + strip)"; gates = 321; activity = 0.03 } ]

(* The 2-stage background revoker engine: address registers, two in-flight
   slots, snoop comparators, MMIO. *)
let revoker_blocks =
  [
    { b_name = "revoker state machine + slots (clocked)"; gates = 1870; activity = 0.40 };
    { b_name = "revoker snoop comparators (every store)"; gates = 680; activity = 0.90 };
    { b_name = "revoker MMIO regs"; gates = 441; activity = 0.35 };
  ]

let variants =
  [
    { v_name = "RV32E"; blocks = rv32e_blocks };
    { v_name = "RV32E + PMP16"; blocks = rv32e_blocks @ pmp16_blocks };
    { v_name = "RV32E + capabilities"; blocks = rv32e_blocks @ cheriot_blocks };
    {
      v_name = "  + load filter";
      blocks = rv32e_blocks @ cheriot_blocks @ load_filter_blocks;
    };
    {
      v_name = "    + background revoker";
      blocks =
        rv32e_blocks @ cheriot_blocks @ load_filter_blocks @ revoker_blocks;
    };
  ]

let total_gates v = List.fold_left (fun a b -> a + b.gates) 0 v.blocks

(* Power in mW at 300 MHz, 28 nm: dynamic power proportional to
   activity-weighted gates plus leakage proportional to total gates.
   The two coefficients are calibrated on the RV32E row (1.437 mW). *)
let dynamic_coeff = 9.897e-5
let leakage_coeff = 0.0 (* leakage is negligible at these sizes on HPC+ *)

let power_mw v =
  let dyn =
    List.fold_left
      (fun a b -> a +. (float_of_int b.gates *. b.activity))
      0.0 v.blocks
    *. dynamic_coeff
  in
  let leak = float_of_int (total_gates v) *. leakage_coeff in
  dyn +. leak

let baseline = List.hd variants

let table2 () =
  List.map
    (fun v ->
      ( v.v_name,
        total_gates v,
        float_of_int (total_gates v) /. float_of_int (total_gates baseline),
        power_mw v,
        power_mw v /. power_mw baseline ))
    variants

(** f_max: all variants close timing at 330 MHz (7.1) — the load filter
    and revoker are off the critical path (Fig. 4). *)
let fmax_mhz _ = 330
