lib/area/gates.ml: List
