(** The static linker and boot loader (paper 2.6).

    Compartments — possibly provided by mutually distrusting parties —
    are statically linked into a single system image; imports of exports
    are resolved at this time.  The loader is early-boot software: it
    starts from the three reset roots (3.1.1), derives every capability
    in the system from them, seals the export descriptors with the
    switcher's otype, writes the resolved imports into each compartment's
    globals, and hands the boot thread its (attenuated) initial register
    file.  After boot no root capability remains reachable.

    Memory map (single SRAM bank):

    {v base+0x0000  switcher code          base+0x0800  trap stub
       base+0x1000  compartment code...    then globals, descriptors,
       switcher data, stacks, and an optional revocation-covered heap. v}
*)

open Cheriot_core
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits
open Cheriot_isa

type built = {
  bc : Compartment.t;
  code_cap : Capability.t;  (** unsealed, bounded, no SR *)
  globals_cap : Capability.t;  (** bounded, no SL *)
  globals_base : int;
  image : Asm.image;
  mutable descriptors : (string * Capability.t) list;
      (** export name -> sealed descriptor *)
}

type t = {
  machine : Machine.t;
  bus : Bus.t;
  sram : Sram.t;
  compartments : (string * built) list;
  heap_base : int;
  heap_size : int;
  rev : Revbits.t;
  stack_base : int;
  stack_size : int;
}

let align_up v a = (v + a - 1) land lnot (a - 1)

let find t name =
  match List.assoc_opt name t.compartments with
  | Some b -> b
  | None -> invalid_arg ("Loader: unknown compartment " ^ name)

let export_descriptor b name =
  match List.assoc_opt name b.descriptors with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "Loader: %s does not export %s" b.bc.Compartment.name
           name)

let sentry_of_posture = function
  | Compartment.Interrupts_enabled -> Otype.Sentry_enable
  | Compartment.Interrupts_disabled -> Otype.Sentry_disable
  | Compartment.Interrupts_inherited -> Otype.Sentry_inherit

let seal_or_fail c kind =
  match Capability.seal_sentry c kind with
  | Ok s -> s
  | Error e -> failwith ("Loader: " ^ e)

(** [link compartments ~boot] builds the system image and leaves the
    machine about to execute [boot = (compartment, export)] with a fresh
    stack.  [stack_size] defaults to 1 KiB; a [heap_size] heap covered by
    revocation bits is always present for the allocator examples. *)
let link ?(base = 0x1_0000) ?(stack_size = 1024) ?(heap_size = 64 * 1024)
    ?(load_filter = true) compartments ~boot =
  let bus = Bus.create () in
  (* --- lay out code ---------------------------------------------------- *)
  let switcher_origin = base in
  let switcher_img = Asm.assemble ~origin:switcher_origin Switcher_asm.code in
  let trap_origin = base + 0x800 in
  let trap_img = Asm.assemble ~origin:trap_origin [ Asm.I Insn.Ebreak ] in
  let next = ref (base + 0x1000) in
  let images =
    List.map
      (fun (c : Compartment.t) ->
        let img = Asm.assemble ~origin:!next c.code in
        next := align_up (!next + Asm.bytes_size img) 64;
        (c, img))
      compartments
  in
  (* --- lay out data ----------------------------------------------------- *)
  let code_end = align_up !next 64 in
  let gpos = ref code_end in
  let globals =
    List.map
      (fun ((c : Compartment.t), _) ->
        let g = !gpos in
        gpos := align_up (!gpos + max 16 c.Compartment.globals_size) 16;
        g)
      images
  in
  let globals_end = !gpos in
  let n_exports =
    List.fold_left
      (fun a (c, _) -> a + List.length c.Compartment.exports)
      0 images
  in
  let desc_base = align_up globals_end 16 in
  let swdata_base = align_up (desc_base + (16 * n_exports)) 16 in
  let swdata_size = 24 + (32 * 16) (* 16 trusted-stack frames *) in
  let stack_base = align_up (swdata_base + swdata_size) 16 in
  (* the heap must start on a boundary at which a [heap_size]-long
     capability is exactly representable (3.2.3) *)
  let heap_align =
    max 64 ((lnot (Bounds.cram heap_size) land 0xFFFF_FFFF) + 1)
  in
  let heap_base = align_up (stack_base + stack_size) heap_align in
  let total = align_up (heap_base + heap_size - base) 8 in
  let sram = Sram.create ~base ~size:total in
  Bus.add_sram bus sram;
  let rev = Revbits.create ~heap_base ~heap_size () in
  Bus.set_revbits bus rev;
  let machine = Machine.create ~mode:Machine.Cheriot ~load_filter bus in
  (* --- load code --------------------------------------------------------- *)
  Asm.load switcher_img sram;
  Asm.load trap_img sram;
  List.iter (fun (_, img) -> Asm.load img sram) images;
  (* --- derive capabilities ----------------------------------------------- *)
  let exec_cap ?(sr = false) origin len =
    let c = Capability.with_address Capability.root_executable origin in
    let c = Capability.set_bounds c ~length:len ~exact:false in
    if sr then c else Capability.clear_perms c [ SR ]
  in
  let mem_cap ?(local = false) ?(sl = false) b len =
    let c = Capability.with_address Capability.root_mem_rw b in
    let c = Capability.set_bounds c ~length:len ~exact:false in
    let c = if sl then c else Capability.clear_perms c [ SL ] in
    if local then Capability.clear_perms c [ GL ] else c
  in
  let switcher_code =
    exec_cap ~sr:true switcher_origin (Asm.bytes_size switcher_img)
  in
  let built =
    List.map2
      (fun (c, img) gbase ->
        ( c.Compartment.name,
          {
            bc = c;
            code_cap = exec_cap img.Asm.origin (Asm.bytes_size img);
            globals_cap =
              mem_cap gbase (max 16 c.Compartment.globals_size);
            globals_base = gbase;
            image = img;
            descriptors = [];
          } ))
      images globals
  in
  (* --- switcher data ------------------------------------------------------ *)
  let swdata = mem_cap ~sl:true swdata_base swdata_size in
  let unseal_key =
    Capability.with_address Capability.root_sealing Switcher_asm.export_otype
  in
  Sram.write_cap sram swdata_base (true, Capability.to_word unseal_key);
  let cross_return =
    seal_or_fail
      (Capability.with_address switcher_code
         (Asm.label switcher_img "switcher_cross_return"))
      Otype.Sentry_disable
  in
  Sram.write_cap sram (swdata_base + 8) (true, Capability.to_word cross_return);
  Sram.write32 sram (swdata_base + 16) 0;
  (* --- export descriptors -------------------------------------------------- *)
  let desc_pos = ref desc_base in
  List.iter
    (fun (_, b) ->
      List.iter
        (fun (e : Compartment.export) ->
          let entry = Asm.label b.image e.Compartment.exp_label in
          let sentry =
            seal_or_fail
              (Capability.with_address b.code_cap entry)
              (sentry_of_posture e.Compartment.exp_posture)
          in
          Sram.write_cap sram !desc_pos (true, Capability.to_word sentry);
          Sram.write_cap sram (!desc_pos + 8)
            (true, Capability.to_word b.globals_cap);
          (* the descriptor handle: read-only, sealed with the switcher
             otype *)
          let handle =
            Capability.clear_perms (mem_cap !desc_pos 16) [ SD ]
          in
          let sealed =
            match
              Capability.seal handle
                ~key:
                  (Capability.with_address Capability.root_sealing
                     Switcher_asm.export_otype)
            with
            | Ok s -> s
            | Error m -> failwith ("Loader: sealing export: " ^ m)
          in
          b.descriptors <-
            (e.Compartment.exp_label, sealed) :: b.descriptors;
          desc_pos := !desc_pos + 16)
        b.bc.Compartment.exports)
    built;
  (* --- resolve imports + switcher sentry into globals ----------------------- *)
  let cross_call_sentry =
    seal_or_fail
      (Capability.with_address switcher_code
         (Asm.label switcher_img "switcher_cross_call"))
      Otype.Sentry_disable
  in
  let t =
    {
      machine;
      bus;
      sram;
      compartments = built;
      heap_base;
      heap_size;
      rev;
      stack_base;
      stack_size;
    }
  in
  List.iter
    (fun (_, b) ->
      Sram.write_cap sram
        (b.globals_base + Compartment.switcher_slot)
        (true, Capability.to_word cross_call_sentry);
      List.iter
        (fun (i : Compartment.import) ->
          let target = find t i.Compartment.imp_compartment in
          let d = export_descriptor target i.Compartment.imp_export in
          Sram.write_cap sram
            (b.globals_base + i.Compartment.imp_slot)
            (true, Capability.to_word d))
        b.bc.Compartment.imports)
    built;
  (* --- boot thread ----------------------------------------------------------- *)
  let boot_comp, boot_export = boot in
  let b = find t boot_comp in
  let entry =
    match
      List.find_opt
        (fun (e : Compartment.export) -> e.Compartment.exp_label = boot_export)
        b.bc.Compartment.exports
    with
    | Some e -> Asm.label b.image e.Compartment.exp_label
    | None -> Asm.label b.image boot_export
  in
  machine.Machine.pcc <- Capability.with_address b.code_cap entry;
  Machine.set_reg machine Insn.reg_gp b.globals_cap;
  let stack = mem_cap ~local:true ~sl:true stack_base stack_size in
  Machine.set_reg machine Insn.reg_sp
    (Capability.incr_address stack stack_size);
  machine.Machine.mscratchc <- swdata;
  machine.Machine.mshwmb <- stack_base;
  machine.Machine.mshwm <- stack_base + stack_size;
  machine.Machine.mtcc <-
    exec_cap ~sr:true trap_origin (Asm.bytes_size trap_img);
  t

(** A heap capability covering the revocation-covered heap region —
    what the allocator compartment would own. *)
let heap_cap t =
  Capability.clear_perms
    (Capability.set_bounds
       (Capability.with_address Capability.root_mem_rw t.heap_base)
       ~length:t.heap_size ~exact:true)
    [ SL ]

let run ?(fuel = 1_000_000) t = Machine.run ~fuel t.machine
