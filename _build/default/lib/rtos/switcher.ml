(** The compartment switcher (paper 2.6, 5.2).

    The switcher is the trusted routine (a little over 300 hand-written
    instructions in the real RTOS) that implements cross-compartment
    calls and returns: it validates the export, saves and clears the
    caller's registers, chops off the unused part of the caller's stack
    for the callee (CSetBounds on the stack pointer), zeroes the stack it
    hands over — destroying any local (non-global) capabilities and
    leaked secrets — and reverses it all on return.

    Without hardware help it cannot know how much of the stack was used
    before the call, so it must zero the {e entire} unused portion both
    on entry and on return.  With the stack high-water mark (5.2.1) it
    zeroes only [\[hwm, sp)] on entry (usually nothing) and exactly the
    callee's usage on return.

    This module is the cost-and-state model used by the allocation
    benchmark and the IoT application; the machine-code switcher for the
    ISA-level examples lives in {!Switcher_asm}. *)

module Sram = Cheriot_mem.Sram

type stack = {
  stk_base : int;
  stk_size : int;
  mutable sp : int;  (** grows downward from [stk_base + stk_size] *)
  mutable hwm : int;  (** lowest address stored to (mshwm) *)
}

let make_stack ~base ~size = { stk_base = base; stk_size = size; sp = base + size; hwm = base + size }

type t = {
  clock : Clock.t;
  sram : Sram.t option;  (** when present, stack zeroing really writes *)
  hwm_enabled : bool;
  (* switch costs: register save/restore, export validation, sealing *)
  entry_overhead : int;
  return_overhead : int;
  mutable cross_calls : int;
  mutable bytes_zeroed : int;
}

let create ?(hwm_enabled = false) ?sram clock =
  {
    clock;
    sram;
    hwm_enabled;
    entry_overhead = 340;
    return_overhead = 300;
    cross_calls = 0;
    bytes_zeroed = 0;
  }

let cross_calls t = t.cross_calls
let bytes_zeroed t = t.bytes_zeroed

let zero t stack ~from ~until =
  let bytes = max 0 (until - from) in
  if bytes > 0 then begin
    (match t.sram with
    | Some sram when Sram.in_range sram ~addr:from ~size:bytes ->
        Sram.fill sram ~addr:from ~len:bytes '\000'
    | Some _ | None -> ());
    Clock.charge_zero t.clock bytes;
    t.bytes_zeroed <- t.bytes_zeroed + bytes
  end;
  ignore stack

(** [cross_call t stack ~callee_frame ~callee_stack_use f] performs a
    cross-compartment call around [f].  [callee_frame] is the callee's
    own frame (subtracted from the stack for the duration);
    [callee_stack_use] is how deep the callee actually dirties the stack
    (bounded by the remaining stack). *)
let cross_call t stack ~callee_frame ~callee_stack_use f =
  t.cross_calls <- t.cross_calls + 1;
  Clock.compute t.clock t.entry_overhead;
  if t.hwm_enabled then Clock.compute t.clock 4;
  let sp_at_call = stack.sp in
  (* Entry zeroing: the region handed to the callee. *)
  if t.hwm_enabled then
    (* Only [hwm, sp) can hold stale caller data below the chop point. *)
    zero t stack ~from:stack.hwm ~until:sp_at_call
  else
    (* No HWM: the whole unused portion must be assumed dirty. *)
    zero t stack ~from:stack.stk_base ~until:sp_at_call;
  stack.hwm <- sp_at_call;
  stack.sp <- sp_at_call - callee_frame;
  (* The callee runs on the chopped stack and dirties some of it. *)
  let use = min callee_stack_use (stack.sp - stack.stk_base) in
  let callee_low = stack.sp - use in
  if callee_low < stack.hwm then stack.hwm <- callee_low;
  let result = f () in
  (* Return: destroy everything the callee touched. *)
  Clock.compute t.clock t.return_overhead;
  if t.hwm_enabled then begin
    Clock.compute t.clock 4;
    zero t stack ~from:stack.hwm ~until:sp_at_call;
    stack.hwm <- sp_at_call
  end
  else zero t stack ~from:stack.stk_base ~until:sp_at_call;
  stack.sp <- sp_at_call;
  result
