(** Compartment definitions for the machine-level RTOS (paper 2.2, 2.6).

    A compartment is a contiguous region of code and global data.  Its
    exports are entry points, each with an interrupt posture (the sentry
    type used to seal the entry, 3.1.2); its imports name other
    compartments' exports and are resolved by the static linker
    ({!Loader}) when the compartments are linked into a single image.

    At run time a compartment's code is reachable only through its PCC
    (bounded to the code region, no SR permission) and its data through
    the globals register CGP (bounded, no Store-Local).  Cross-compartment
    calls go through the switcher ({!Switcher_asm}). *)

(** Interrupt posture of an exported entry point: which sentry type the
    loader seals the entry with (3.1.2). *)
type posture =
  | Interrupts_enabled
  | Interrupts_disabled
  | Interrupts_inherited

type export = {
  exp_label : string;  (** assembler label of the entry point *)
  exp_posture : posture;
}

type import = {
  imp_compartment : string;
  imp_export : string;
  imp_slot : int;
      (** globals offset (in bytes) where the loader writes the sealed
          export capability; slot 0 of every compartment is reserved for
          the switcher's cross-call sentry *)
}

type t = {
  name : string;
  code : Cheriot_isa.Asm.item list;
  globals_size : int;
  exports : export list;
  imports : import list;
}

let v ?(exports = []) ?(imports = []) ~name ~globals_size code =
  { name; code; globals_size; exports; imports }

(** Reserved globals slots: offset 0 holds the switcher's cross-call
    sentry in every compartment. *)
let switcher_slot = 0

let first_free_slot = 8
