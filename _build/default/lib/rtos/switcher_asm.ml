(** The compartment switcher, in machine code (paper 2.6, 5.2).

    This is the trusted routine — a little over a hundred hand-written
    instructions here, "a little over 300" with scheduling in the real
    RTOS — that all cross-compartment control flow passes through.  It
    runs from a sentry that disables interrupts and with a PCC that has
    the SR permission (no compartment's PCC does), and it is the only
    code holding the export unsealing key.

    Call path ([cross_call]; caller puts the sealed export in ct1 and
    jumps to the switcher sentry found at globals slot 0):

    + unseal the export descriptor (traps on a forged/mis-sealed value),
    + push caller SP/CGP/return-sentry and the stack high-water mark
      onto the trusted stack (switcher-private memory via MScratchC),
    + chop the stack: the callee's CSP covers only [stack_base, SP),
      so the caller's frames above SP are out of bounds (5.2),
    + zero [mshwm, SP) — the freshly delegated region — and reset the
      high-water mark (5.2.1),
    + load the callee's PCC (a sentry carrying the export's interrupt
      posture) and CGP from the descriptor, clear every register the
      callee should not see, and jump.

    Return path ([cross_return]; the callee's RA is a switcher return
    sentry): zero exactly the stack the callee dirtied ([mshwm, SP)),
    pop and restore the caller's state, and jump through the caller's
    return sentry, which restores its interrupt posture.

    Switcher data layout (via MScratchC, which has SL so the trusted
    stack may hold the callers' local stack capabilities):

    {v off 0:  export unseal key        off 8:  cross_return sentry
       off 16: trusted-stack index      off 24: frames (32 B each)    v}

    Descriptor layout (sealed with the switcher otype, built by the
    loader): [entry sentry at +0 | callee CGP at +8]. *)

open Cheriot_isa

let ra = Insn.reg_ra
let sp = Insn.reg_sp
let gp = Insn.reg_gp
let tp = Insn.reg_tp
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let s0 = Insn.reg_s0
let s1 = Insn.reg_s1
let a2 = Insn.reg_a2
let a3 = Insn.reg_a3
let a4 = Insn.reg_a4
let a5 = Insn.reg_a5

(** The otype (data namespace) sealing export descriptors. *)
let export_otype = 1

let code : Asm.item list =
  [
    (* ------------------------------------------------ cross_call --- *)
    Asm.Label "switcher_cross_call";
    (* ct0 := switcher data (SR-protected special register) *)
    Asm.I (Insn.Cspecialrw (t0, MScratchC, 0));
    (* unseal the export descriptor; a forged value traps here *)
    Asm.I (Insn.Clc (s0, t0, 0));
    Asm.I (Insn.Cunseal (t1, t1, s0));
    (* trusted-stack frame base: ct2 = data + 24 + index *)
    Asm.I (Insn.Load { signed = true; width = W; rd = s1; rs1 = t0; off = 16 });
    Asm.I (Insn.Cincaddrimm (t2, t0, 24));
    Asm.I (Insn.Cincaddr (t2, t2, s1));
    (* push caller state *)
    Asm.I (Insn.Csc (sp, t2, 0));
    Asm.I (Insn.Csc (gp, t2, 8));
    Asm.I (Insn.Csc (ra, t2, 16));
    Asm.I (Insn.Csr (Csrrs, a5, 0, Csr.mshwm));
    Asm.I (Insn.Store { width = W; rs2 = a5; rs1 = t2; off = 24 });
    Asm.I (Insn.Op_imm (Add, s1, s1, 32));
    Asm.I (Insn.Store { width = W; rs2 = s1; rs1 = t0; off = 16 });
    (* chop the stack: CSP := [base, sp) with address back at sp *)
    Asm.I (Insn.Cget (Base, t2, sp));
    Asm.I (Insn.Cget (Addr, s1, sp));
    Asm.I (Insn.Op (Sub, s1, s1, t2));
    Asm.I (Insn.Csetaddr (sp, sp, t2));
    Asm.I (Insn.Csetbounds (sp, sp, s1));
    Asm.I (Insn.Cincaddr (sp, sp, s1));
    (* zero the delegated region [mshwm, sp) *)
    Asm.I (Insn.Csr (Csrrs, t2, 0, Csr.mshwm));
    Asm.I (Insn.Cget (Addr, s1, sp));
    Asm.Label "swc_zero_entry";
    Asm.B (Insn.Geu, t2, s1, "swc_zero_done");
    Asm.I (Insn.Csetaddr (a5, sp, t2));
    Asm.I (Insn.Csc (0, a5, 0));
    Asm.I (Insn.Op_imm (Add, t2, t2, 8));
    Asm.J (0, "swc_zero_entry");
    Asm.Label "swc_zero_done";
    (* reset the high-water mark to the chop point *)
    Asm.I (Insn.Csr (Csrrw, 0, s1, Csr.mshwm));
    (* callee CGP and entry sentry from the descriptor *)
    Asm.I (Insn.Clc (gp, t1, 8));
    Asm.I (Insn.Clc (t1, t1, 0));
    (* the callee returns through the switcher *)
    Asm.I (Insn.Clc (ra, t0, 8));
    (* scrub everything the callee must not see *)
    Asm.I (Insn.Cmove (t0, 0));
    Asm.I (Insn.Cmove (t2, 0));
    Asm.I (Insn.Cmove (s0, 0));
    Asm.I (Insn.Cmove (s1, 0));
    Asm.I (Insn.Cmove (tp, 0));
    Asm.I (Insn.Cmove (a2, 0));
    Asm.I (Insn.Cmove (a3, 0));
    Asm.I (Insn.Cmove (a4, 0));
    Asm.I (Insn.Cmove (a5, 0));
    (* enter the callee; the entry sentry applies the export's posture *)
    Asm.I (Insn.Jalr (0, t1, 0));
    (* ---------------------------------------------- cross_return --- *)
    Asm.Label "switcher_cross_return";
    Asm.I (Insn.Cspecialrw (t0, MScratchC, 0));
    (* zero exactly what the callee used: [mshwm, sp) *)
    Asm.I (Insn.Csr (Csrrs, t2, 0, Csr.mshwm));
    Asm.I (Insn.Cget (Addr, s1, sp));
    Asm.Label "swr_zero";
    Asm.B (Insn.Geu, t2, s1, "swr_zero_done");
    Asm.I (Insn.Csetaddr (a5, sp, t2));
    Asm.I (Insn.Csc (0, a5, 0));
    Asm.I (Insn.Op_imm (Add, t2, t2, 8));
    Asm.J (0, "swr_zero");
    Asm.Label "swr_zero_done";
    (* pop the trusted stack *)
    Asm.I (Insn.Load { signed = true; width = W; rd = s1; rs1 = t0; off = 16 });
    Asm.I (Insn.Op_imm (Add, s1, s1, -32));
    Asm.I (Insn.Store { width = W; rs2 = s1; rs1 = t0; off = 16 });
    Asm.I (Insn.Cincaddrimm (t2, t0, 24));
    Asm.I (Insn.Cincaddr (t2, t2, s1));
    (* restore the caller *)
    Asm.I (Insn.Clc (sp, t2, 0));
    Asm.I (Insn.Clc (gp, t2, 8));
    Asm.I (Insn.Clc (ra, t2, 16));
    Asm.I (Insn.Load { signed = true; width = W; rd = a5; rs1 = t2; off = 24 });
    Asm.I (Insn.Csr (Csrrw, 0, a5, Csr.mshwm));
    (* scrub switcher state *)
    Asm.I (Insn.Cmove (t0, 0));
    Asm.I (Insn.Cmove (t1, 0));
    Asm.I (Insn.Cmove (t2, 0));
    Asm.I (Insn.Cmove (s0, 0));
    Asm.I (Insn.Cmove (s1, 0));
    Asm.I (Insn.Cmove (a5, 0));
    (* back to the caller; its return sentry restores its posture *)
    Asm.I (Insn.Jalr (0, ra, 0));
  ]
