(** The virtualized sealing service (paper 3.2.2, footnote 5).

    CHERIoT's otype field is only three bits, yet fine-grained
    compartmentalization wants many opaque types.  "The RTOS is able to
    bootstrap a virtualized sealing mechanism that, while not identical
    to CHERI's architectural seals, suffices in all cases we have
    encountered so far."  This is that mechanism, in the style of the
    CHERIoT RTOS token library:

    - the allocator compartment reserves one hardware data otype for
      itself and mints {e software sealing keys}: capabilities to unique
      slots of a key space, unforgeable like any capability;
    - a {e sealed object} is a heap allocation whose header records the
      key's identity; the holder gets (a) an opaque handle — sealed with
      the hardware otype, so nothing outside the allocator can touch its
      contents or forge one — and (b) nothing else;
    - [unseal] checks the handle's hardware otype and the header against
      the presented key and only then returns the payload capability.

    Because sealed objects are ordinary heap chunks, temporal safety
    covers them too: destroying one quarantines it and the revoker kills
    every outstanding handle. *)

open Cheriot_core
module Sram = Cheriot_mem.Sram

type t = {
  alloc : Allocator.t;
  sram : Sram.t;
  hw_key : Capability.t;  (** the reserved hardware-otype sealing root *)
  key_space : Capability.t;  (** private region backing software keys *)
  mutable next_key : int;
  max_keys : int;
}

(** The hardware data otype the allocator reserves for virtualized
    sealing (the RTOS allocates four data otypes for core components). *)
let allocator_otype = 2

type error =
  | Wrong_key
  | Not_a_sealed_object
  | Key_space_exhausted
  | Alloc_error of Allocator.error

let pp_error fmt = function
  | Wrong_key -> Format.pp_print_string fmt "wrong key"
  | Not_a_sealed_object -> Format.pp_print_string fmt "not a sealed object"
  | Key_space_exhausted -> Format.pp_print_string fmt "key space exhausted"
  | Alloc_error e -> Allocator.pp_error fmt e

let create ~alloc ~sram ~key_space_base ~max_keys =
  {
    alloc;
    sram;
    hw_key = Capability.with_address Capability.root_sealing allocator_otype;
    key_space =
      Capability.set_bounds
        (Capability.with_address Capability.root_mem_rw key_space_base)
        ~length:(8 * max_keys) ~exact:false;
    next_key = 0;
    max_keys;
  }

(** Mint a fresh software sealing key: an unforgeable capability over a
    unique 8-byte slot of the service's private key space, stripped to
    carry no useful memory rights. *)
let new_key t =
  if t.next_key >= t.max_keys then Error Key_space_exhausted
  else begin
    let id = t.next_key in
    t.next_key <- id + 1;
    let k = Capability.incr_address t.key_space (8 * id) in
    let k = Capability.set_bounds k ~length:8 ~exact:true in
    (* key holders may compare and present the key but not write through
       it; keep LD so the key can name itself *)
    Ok (Capability.clear_perms k [ SD; SL; LM ])
  end

let key_id t key = (Capability.base key - Capability.base t.key_space) / 8

let valid_key t key =
  key.Capability.tag
  && (not (Capability.is_sealed key))
  && Capability.base key >= Capability.base t.key_space
  && Capability.top key <= Capability.top t.key_space
  && Capability.length key = 8

(** Allocate a [size]-byte object sealed with [key].  Returns the opaque
    handle (give this away) and the payload capability (keep private). *)
let seal_alloc t ~key size =
  if not (valid_key t key) then Error Wrong_key
  else
    match Allocator.malloc t.alloc (8 + size) with
    | Error e -> Error (Alloc_error e)
    | Ok obj ->
        let base = Capability.base obj in
        Sram.write32 t.sram base (key_id t key);
        Sram.write32 t.sram (base + 4) 0x5EA1;
        let payload =
          Capability.set_bounds (Capability.incr_address obj 8) ~length:size
            ~exact:true
        in
        let handle =
          match Capability.seal obj ~key:t.hw_key with
          | Ok h -> h
          | Error m -> failwith ("Sealing_service: " ^ m)
        in
        Ok (handle, payload)

let check_handle _t handle =
  handle.Capability.tag
  && Otype.equal (Capability.otype handle) (Otype.v Data allocator_otype)

(** Unseal a handle with its key: the only way back to the payload. *)
let unseal t ~key handle =
  if not (valid_key t key) then Error Wrong_key
  else if not (check_handle t handle) then Error Not_a_sealed_object
  else
    match Capability.unseal handle ~key:t.hw_key with
    | Error _ -> Error Not_a_sealed_object
    | Ok obj ->
        let base = Capability.base obj in
        if
          Sram.read32 t.sram (base + 4) <> 0x5EA1
          || Sram.read32 t.sram base <> key_id t key
        then Error Wrong_key
        else
          Ok
            (Capability.set_bounds
               (Capability.incr_address obj 8)
               ~length:(Capability.length obj - 8)
               ~exact:true)

(** Destroy a sealed object: unseal-check, then free through the
    allocator — quarantine and revocation apply, so stale handles and
    payload capabilities die like any other heap pointer. *)
let destroy t ~key handle =
  if not (valid_key t key) then Error Wrong_key
  else if not (check_handle t handle) then Error Not_a_sealed_object
  else
    match Capability.unseal handle ~key:t.hw_key with
    | Error _ -> Error Not_a_sealed_object
    | Ok obj ->
        if Sram.read32 t.sram (Capability.base obj) <> key_id t key then
          Error Wrong_key
        else
          (match Allocator.free t.alloc obj with
          | Ok () -> Ok ()
          | Error e -> Error (Alloc_error e))
