(** The shared heap allocator (paper 5.1).

    A boundary-tagged, in-band-metadata allocator in the dlmalloc
    tradition — the right point for embedded devices, which lack the
    memory for size-class allocators and the need for multi-threaded
    throughput.  Spatial safety comes from setting exact bounds on the
    capability returned by [malloc] (padding to the representable length
    of 3.2.3 where needed); temporal safety from painting revocation bits
    and epoch-tagged {e quarantine lists} on [free], with memory reused
    only after a full revocation sweep has invalidated all stale
    capabilities.

    The allocator lives in its own compartment: it is the only code with
    access to the memory-mapped revocation bitmap, and all guarantees
    about heap objects hold for every other compartment (2.3). *)

(** The four Table 4 configurations. *)
type temporal =
  | Baseline  (** no temporal safety: free goes straight to the bins *)
  | Metadata  (** revocation bits painted/cleared, but no sweeps *)
  | Software  (** quarantine + software sweep loop *)
  | Hardware  (** quarantine + background revoker engine *)

type error =
  | Out_of_memory
  | Invalid_free of string  (** untagged / misaligned / not a heap pointer *)
  | Double_free

val pp_error : Format.formatter -> error -> unit

type stats = {
  mallocs : int;
  frees : int;
  sweeps : int;
  sweep_cycles : int;  (** cycles spent in (or waiting on) revocation *)
  quarantine_peak : int;
  live_bytes : int;
}

type t

val create :
  ?temporal:temporal ->
  ?quarantine_threshold:int ->
  ?flute_poll_quirk:bool ->
  sram:Cheriot_mem.Sram.t ->
  rev:Cheriot_mem.Revbits.t ->
  clock:Clock.t ->
  heap_base:int ->
  heap_size:int ->
  unit ->
  t
(** [quarantine_threshold] (bytes of quarantined memory that trigger a
    revocation pass) defaults to a quarter of the heap.
    [flute_poll_quirk] models the prototype Flute core's lack of a
    revoker-completion interrupt: the waiting thread's periodic polling
    causes memory-access flurries that slow the engine (7.2.2). *)

val attach_hw_revoker : t -> Cheriot_uarch.Revoker.t -> unit
val set_sw_revoker : t -> Sw_revoker.t -> unit

val malloc : t -> int -> (Cheriot_core.Capability.t, error) result
(** Allocate; the returned capability has exact bounds over the object,
    no Store-Local permission beyond the heap's, and is Global. *)

val free : t -> Cheriot_core.Capability.t -> (unit, error) result
(** Validate the pointer (tag, base = start of a live chunk, revocation
    bit clear — catching double- and partial-object frees), paint the
    revocation bits, zero the memory and quarantine the chunk. *)

val revoke_now : t -> unit
(** Force a revocation pass (software or hardware per configuration) and
    release eligible quarantine — what the RTOS idle task may do (3.3.2). *)

val epoch : t -> int
val stats : t -> stats
val heap_words : t -> int

val live_chunks : t -> (int * int) list
(** [(data_base, data_len)] of every in-use chunk — for invariant checks. *)

val check_invariants : t -> (unit, string) result
(** Walk the heap: chunk chain covers the heap exactly, free/live/
    quarantined states are consistent with bins and revocation bits. *)

val set_wait_ctx_pair : t -> int -> unit
(** Cycles charged (per recheck) for the context-switch pair of a thread
    blocked on the hardware revoker — set by the scheduler layer; +4
    cycles when the stack-HWM CSRs must be saved/restored too (7.2.2). *)
