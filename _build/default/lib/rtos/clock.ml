(** The RTOS cycle ledger.

    The RTOS layer (allocator, switcher, scheduler) is modelled as
    privileged code operating on the simulated SRAM; its operations are
    charged cycles according to the core model, and every cycle in which
    the main pipeline does not use the data bus is granted to the
    background revoker engine (paper 3.3.3). *)

type t = {
  params : Cheriot_uarch.Core_model.params;
  mutable cycles : int;
  mutable hw_revoker : Cheriot_uarch.Revoker.t option;
  mutable revoker_enabled : bool;
      (** set false to model phases whose memory traffic starves the
          engine (the Flute polling quirk of 7.2.2) *)
}

let create params =
  { params; cycles = 0; hw_revoker = None; revoker_enabled = true }

let cycles t = t.cycles

let attach_revoker t r = t.hw_revoker <- Some r

(** [advance t n ~mem_busy] passes [n] cycles of which [mem_busy] keep the
    data bus occupied; the rest feed the revoker. *)
let advance ?(mem_busy = 0) t n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    match t.hw_revoker with
    | Some r when t.revoker_enabled ->
        for _ = 1 to n - mem_busy do
          Cheriot_uarch.Revoker.tick r
        done
    | Some _ | None -> ()
  end

(** Charge an ALU/bookkeeping cost (no bus). *)
let compute t n = advance t n

(** Charge [n] word-sized (32-bit) data accesses. *)
let word_ops t n =
  let c = n * (t.params.base + t.params.mem_extra) in
  advance t c ~mem_busy:n

(** Charge [n] capability-sized (64-bit) accesses. *)
let cap_ops t n =
  let beats = 8 / t.params.bus_bytes in
  let c = n * (t.params.base + t.params.mem_extra + beats - 1) in
  advance t c ~mem_busy:(n * beats)

(** Cycles to zero [bytes] of memory with a store loop (the switcher's
    stack clearing, the allocator's free-time zeroing).  One
    capability-width store per 8 bytes plus loop overhead. *)
let zero_cost t bytes =
  let granules = (bytes + 7) / 8 in
  let beats = 8 / t.params.bus_bytes in
  (granules * beats) + (granules / 4)

let charge_zero t bytes =
  let granules = (bytes + 7) / 8 in
  let beats = 8 / t.params.bus_bytes in
  advance t (zero_cost t bytes) ~mem_busy:(granules * beats)
