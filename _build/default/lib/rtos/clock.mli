(** The RTOS cycle ledger: charges deterministic cycle costs for
    RTOS-level operations (allocator, switcher, scheduler) according to
    the core model, and grants every cycle the main pipeline leaves the
    data bus idle to the background revoker engine (paper 3.3.3). *)

type t = {
  params : Cheriot_uarch.Core_model.params;
  mutable cycles : int;
  mutable hw_revoker : Cheriot_uarch.Revoker.t option;
  mutable revoker_enabled : bool;
      (** set false to model phases whose memory traffic starves the
          engine (the Flute polling quirk of paper 7.2.2) *)
}

val create : Cheriot_uarch.Core_model.params -> t
val cycles : t -> int
val attach_revoker : t -> Cheriot_uarch.Revoker.t -> unit

val advance : ?mem_busy:int -> t -> int -> unit
(** [advance t n ~mem_busy] passes [n] cycles, of which [mem_busy] keep
    the data bus occupied; the remainder feed the revoker. *)

val compute : t -> int -> unit
(** Charge ALU/bookkeeping cycles (bus idle throughout). *)

val word_ops : t -> int -> unit
(** Charge [n] 32-bit data accesses. *)

val cap_ops : t -> int -> unit
(** Charge [n] capability-sized (64-bit) accesses; two bus beats each on
    the 33-bit Ibex bus. *)

val zero_cost : t -> int -> int
(** Cycles a store loop needs to zero [bytes] of memory. *)

val charge_zero : t -> int -> unit
(** Charge {!zero_cost} for [bytes] (the switcher's stack clearing and
    the allocator's free-time zeroing). *)
