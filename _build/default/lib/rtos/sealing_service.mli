(** The virtualized sealing service (paper 3.2.2, footnote 5): unbounded
    software otypes bootstrapped from a single reserved hardware data
    otype, in the style of the CHERIoT RTOS token library.  See the
    implementation header for the design discussion. *)

type t

val allocator_otype : int
(** The hardware data otype the allocator compartment reserves for
    virtualized sealing. *)

type error =
  | Wrong_key
  | Not_a_sealed_object
  | Key_space_exhausted
  | Alloc_error of Allocator.error

val pp_error : Format.formatter -> error -> unit

val create :
  alloc:Allocator.t ->
  sram:Cheriot_mem.Sram.t ->
  key_space_base:int ->
  max_keys:int ->
  t
(** [create ~alloc ~sram ~key_space_base ~max_keys]: the service mints
    keys over the private region [[key_space_base,
    key_space_base + 8*max_keys)]. *)

val new_key : t -> (Cheriot_core.Capability.t, error) result
(** Mint a fresh software sealing key: an unforgeable capability over a
    unique slot of the key space, with no store rights. *)

val seal_alloc :
  t ->
  key:Cheriot_core.Capability.t ->
  int ->
  (Cheriot_core.Capability.t * Cheriot_core.Capability.t, error) result
(** [seal_alloc t ~key size] allocates a [size]-byte object sealed with
    [key] and returns [(opaque_handle, payload)]: the handle may be given
    away freely; only presenting it together with [key] recovers the
    payload. *)

val unseal :
  t ->
  key:Cheriot_core.Capability.t ->
  Cheriot_core.Capability.t ->
  (Cheriot_core.Capability.t, error) result
(** Recover the payload capability from a handle; fails on a wrong or
    forged key, a tampered (untagged) handle, or a non-handle. *)

val destroy :
  t ->
  key:Cheriot_core.Capability.t ->
  Cheriot_core.Capability.t ->
  (unit, error) result
(** Free the sealed object through the allocator: it is quarantined and
    revocation invalidates every outstanding handle and payload
    capability, like any other heap pointer. *)
