lib/rtos/sched.ml: Clock List Switcher
