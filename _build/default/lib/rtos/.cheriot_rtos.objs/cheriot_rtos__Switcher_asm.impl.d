lib/rtos/switcher_asm.ml: Asm Cheriot_isa Csr Insn
