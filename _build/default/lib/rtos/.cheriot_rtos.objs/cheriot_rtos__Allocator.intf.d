lib/rtos/allocator.mli: Cheriot_core Cheriot_mem Cheriot_uarch Clock Format Sw_revoker
