lib/rtos/sealing_service.mli: Allocator Cheriot_core Cheriot_mem Format
