lib/rtos/compartment.ml: Cheriot_isa
