lib/rtos/switcher.ml: Cheriot_mem Clock
