lib/rtos/sw_revoker.ml: Cheriot_core Cheriot_mem Cheriot_uarch Clock
