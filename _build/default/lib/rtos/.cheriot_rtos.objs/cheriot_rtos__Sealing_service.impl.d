lib/rtos/sealing_service.ml: Allocator Capability Cheriot_core Cheriot_mem Format Otype
