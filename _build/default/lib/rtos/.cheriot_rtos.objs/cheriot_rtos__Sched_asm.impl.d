lib/rtos/sched_asm.ml: Asm Cheriot_core Cheriot_isa Cheriot_mem Csr Insn List
