lib/rtos/allocator.ml: Array Bounds Capability Cheriot_core Cheriot_mem Cheriot_uarch Clock Format List Option Printf Sw_revoker
