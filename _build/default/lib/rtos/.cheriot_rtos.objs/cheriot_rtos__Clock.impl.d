lib/rtos/clock.ml: Cheriot_uarch
