lib/rtos/clock.mli: Cheriot_uarch
