lib/rtos/loader.ml: Asm Bounds Capability Cheriot_core Cheriot_isa Cheriot_mem Compartment Insn List Machine Otype Printf Switcher_asm
