(** The software revoker (paper 3.3.2).

    Sweeping revocation in software is a simple loop that loads each
    capability word and stores it back: the load filter strips tags of
    capabilities whose base lies in freed memory, so the store-back
    completes the invalidation.  The loop body must be atomic with respect
    to capability loads elsewhere, so the revoker disables interrupts for
    each batch; the sweep as a whole is preemptable between batches,
    keeping the system real-time (2.1).

    The loop is unrolled by two to hide the one-cycle load-to-use delay.
    On Ibex every capability word costs four bus accesses (7.2.2). *)

module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits

type t = {
  sram : Sram.t;
  rev : Revbits.t;
  clock : Clock.t;
  batch_granules : int;  (** granules swept per interrupts-disabled batch *)
  mutable epoch : int;
  mutable invalidated : int;
  mutable sweeps : int;
}

let create ?(batch_granules = 128) ~sram ~rev ~clock () =
  { sram; rev; clock; batch_granules; epoch = 0; invalidated = 0; sweeps = 0 }

let epoch t = t.epoch
let invalidated t = t.invalidated
let sweeps t = t.sweeps

(* Cost of sweeping one pair of capability words (the unrolled loop
   body): two loads and two stores plus loop bookkeeping. *)
let pair_cost params =
  let open Cheriot_uarch.Core_model in
  let beats = 8 / params.bus_bytes in
  let access = params.base + params.mem_extra + beats - 1 in
  (4 * access) + 1

let sweep_granule t addr =
  let tag, word = Sram.read_cap t.sram addr in
  if tag then begin
    let c = Cheriot_core.Capability.of_word ~tag word in
    if Revbits.is_revoked t.rev (Cheriot_core.Capability.base c) then begin
      (* The store-back writes the tag-stripped value. *)
      Sram.write_cap t.sram addr (false, word);
      t.invalidated <- t.invalidated + 1
    end
  end

(** Sweep [\[start, stop)], batched; [on_batch_end] runs between batches
    with interrupts conceptually re-enabled (the scheduler may preempt
    there). *)
let sweep ?(on_batch_end = fun () -> ()) t ~start ~stop =
  t.epoch <- t.epoch + 1;
  t.sweeps <- t.sweeps + 1;
  let cost = pair_cost t.clock.Clock.params in
  let pos = ref (start land lnot 7) in
  while !pos < stop do
    let batch_end = min stop (!pos + (t.batch_granules * 8)) in
    let granules = (batch_end - !pos) / 8 in
    while !pos < batch_end do
      sweep_granule t !pos;
      pos := !pos + 8
    done;
    (* Two granules per unrolled iteration. *)
    Clock.advance t.clock
      (((granules + 1) / 2) * cost)
      ~mem_busy:(granules * 2 * (8 / t.clock.Clock.params.bus_bytes));
    on_batch_end ()
  done;
  t.epoch <- t.epoch + 1
