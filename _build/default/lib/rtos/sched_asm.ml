(** Preemptive multitasking in machine code (paper 2.6).

    "Multitasking scheduling facilities allow the core to change
    threads" — this module is the timer-interrupt service routine that
    does it, plus the boot-time construction of thread control blocks.

    The ISR runs from MTCC (which has SR; no compartment's PCC does) with
    interrupts disabled.  It faces the classic problem of having {e no}
    free register — every register is live user state — solved with the
    [cspecialrw] swap idiom: exchanging ct0 with MTDC yields a pointer to
    the current thread's control block while parking the user's ct0 in
    the special register.

    Thread control block (144 bytes, in scheduler-private SRAM reachable
    only through MTDC):

    {v +0    saved PCC            +8*r   saved c_r (r = 1..15)
       +128  saved mshwm          +132   saved mshwmb
       +136  capability to the next thread's block (round robin) v}

    On a machine timer interrupt the ISR saves the full register file,
    the interrupted PCC (from MEPCC) and the stack high-water-mark CSRs
    — the two extra CSRs whose save/restore cost is visible in the
    paper's Table 4 at 128 KiB — re-arms the timer, follows the
    round-robin link, restores the next thread's state and [mret]s into
    it.  Any non-timer trap falls through to [ebreak] (the system's
    fault stop). *)

open Cheriot_isa

let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2

(* Block field offsets. *)
let off_pcc = 0
let off_reg r = 8 * r
let off_mshwm = 128
let off_mshwmb = 132
let off_next = 136
let block_size = 144

(** [isr ~quantum] is the timer ISR; assemble it at the MTCC target. *)
let isr ~quantum : Asm.item list =
  let save_regs =
    (* save c1..c15 except t0 (parked in MTDC) and t1 (saved after we
       reclaim it below) — actually t1 is still live here, so save it
       with the others; only t0 needs the special path *)
    List.concat_map
      (fun r ->
        if r = t0 then []
        else [ Asm.I (Insn.Csc (r, t0, off_reg r)) ])
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
  in
  let restore_regs =
    (* restore from ct1: everything except t0 (done just before) and t1
       (done last, overwriting the base register in one instruction) *)
    List.concat_map
      (fun r ->
        if r = t0 || r = t1 then []
        else [ Asm.I (Insn.Clc (r, t1, off_reg r)) ])
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
  in
  List.concat
    [
      [
        Asm.Label "isr";
        (* ct0 <-> MTDC: ct0 = current thread block, user ct0 parked *)
        Asm.I (Insn.Cspecialrw (t0, MTDC, t0));
      ];
      (* save the whole register file before touching anything else *)
      save_regs;
      [
        (* the user's t0 (read back out of MTDC without writing it) *)
        Asm.I (Insn.Cspecialrw (t1, MTDC, 0));
        Asm.I (Insn.Csc (t1, t0, off_reg t0));
        (* non-timer traps are fatal: check mcause = machine timer *)
        Asm.I (Insn.Csr (Csrrs, t1, 0, Csr.mcause));
      ];
      (* mcause for the timer = 0x80000007 *)
      [ Asm.Li (t2, 0x8000_0007) ];
      [ Asm.B (Insn.Ne, t1, t2, "isr_fatal") ];
      [
        (* interrupted PCC *)
        Asm.I (Insn.Cspecialrw (t1, MEPCC, 0));
        Asm.I (Insn.Csc (t1, t0, off_pcc));
        (* stack high-water-mark CSR pair (5.2.1) *)
        Asm.I (Insn.Csr (Csrrs, t1, 0, Csr.mshwm));
        Asm.I (Insn.Store { width = W; rs2 = t1; rs1 = t0; off = off_mshwm });
        Asm.I (Insn.Csr (Csrrs, t1, 0, Csr.mshwmb));
        Asm.I (Insn.Store { width = W; rs2 = t1; rs1 = t0; off = off_mshwmb });
        (* re-arm the timer: mtimecmp = mcycle + quantum *)
        Asm.I (Insn.Csr (Csrrs, t1, 0, Csr.mcycle));
      ];
      [ Asm.Li (t2, quantum) ];
      [
        Asm.I (Insn.Op (Add, t1, t1, t2));
        Asm.I (Insn.Csr (Csrrw, 0, t1, Csr.mtimecmp));
        (* round robin: ct1 = next block; it becomes MTDC *)
        Asm.I (Insn.Clc (t1, t0, off_next));
        Asm.I (Insn.Cspecialrw (0, MTDC, t1));
        (* restore the next thread *)
        Asm.I (Insn.Clc (t2, t1, off_pcc));
        Asm.I (Insn.Cspecialrw (0, MEPCC, t2));
        Asm.I (Insn.Load { signed = true; width = W; rd = t2; rs1 = t1; off = off_mshwm });
        Asm.I (Insn.Csr (Csrrw, 0, t2, Csr.mshwm));
        Asm.I (Insn.Load { signed = true; width = W; rd = t2; rs1 = t1; off = off_mshwmb });
        Asm.I (Insn.Csr (Csrrw, 0, t2, Csr.mshwmb));
      ];
      restore_regs;
      [
        Asm.I (Insn.Clc (t0, t1, off_reg t0));
        (* t1 last: the load overwrites its own base register *)
        Asm.I (Insn.Clc (t1, t1, off_reg t1));
        (* mret re-enables interrupts via MPIE and jumps to MEPCC *)
        Asm.I Insn.Mret;
        Asm.Label "isr_fatal";
        Asm.I Insn.Ebreak;
      ];
    ]

(** Initialize a thread control block in SRAM.  [regs] lists initial
    register values (others are NULL); [next] is the address of the
    block that follows in the round robin. *)
let write_block sram ~block ~pcc ~regs ~mshwm ~mshwmb ~next =
  let module Sram = Cheriot_mem.Sram in
  let module Capability = Cheriot_core.Capability in
  Sram.write_cap sram (block + off_pcc)
    (pcc.Capability.tag, Capability.to_word pcc);
  for r = 1 to 15 do
    Sram.write_cap sram (block + off_reg r) (false, 0L)
  done;
  List.iter
    (fun (r, c) ->
      Sram.write_cap sram (block + off_reg r)
        (c.Capability.tag, Capability.to_word c))
    regs;
  Sram.write32 sram (block + off_mshwm) mshwm;
  Sram.write32 sram (block + off_mshwmb) mshwmb;
  let next_cap =
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw next)
      ~length:block_size ~exact:true
  in
  Sram.write_cap sram (block + off_next)
    (next_cap.Capability.tag, Capability.to_word next_cap)
