(** The multitasking scheduler (paper 2.6).

    Threads and compartments are orthogonal: at any time the core runs
    one thread inside one compartment.  This scheduler provides
    priority-based preemptive scheduling with a deterministic
    context-switch cost: saving and restoring the sixteen capability
    registers, the PCC and the machine CSRs — plus the two extra stack
    high-water-mark CSRs when that assist is enabled, a cost visible in
    the paper's Table 4 at 128 KiB (7.2.2). *)

type state = Ready | Running | Blocked | Sleeping of int  (** wake cycle *)

type thread = {
  tid : int;
  tname : string;
  priority : int;  (** higher runs first *)
  stack : Switcher.stack;
  mutable tstate : state;
  mutable run_cycles : int;  (** cycles attributed to this thread *)
}

type t = {
  clock : Clock.t;
  hwm_enabled : bool;
  mutable threads : thread list;
  mutable current : thread option;
  mutable context_switches : int;
  mutable idle_cycles : int;
}

let create ?(hwm_enabled = false) clock =
  {
    clock;
    hwm_enabled;
    threads = [];
    current = None;
    context_switches = 0;
    idle_cycles = 0;
  }

let ctx_switch_cost t =
  (* 15 capability registers + PCC out and in, plus CSRs. *)
  let caps = 2 * 16 in
  let csrs = 2 * (4 + if t.hwm_enabled then 2 else 0) in
  let beats = 8 / t.clock.Clock.params.bus_bytes in
  (caps * beats) + csrs + 12

let spawn t ~name ~priority ~stack =
  let th =
    {
      tid = List.length t.threads + 1;
      tname = name;
      priority;
      stack;
      tstate = Ready;
      run_cycles = 0;
    }
  in
  t.threads <- t.threads @ [ th ];
  th

let context_switches t = t.context_switches
let idle_cycles t = t.idle_cycles

let switch_to t th =
  if t.current != Some th then begin
    t.context_switches <- t.context_switches + 1;
    let c = ctx_switch_cost t in
    Clock.advance t.clock c ~mem_busy:(c / 2);
    (match t.current with
    | Some cur when cur.tstate = Running -> cur.tstate <- Ready
    | Some _ | None -> ());
    th.tstate <- Running;
    t.current <- Some th
  end

let wake_ready t now =
  List.iter
    (fun th ->
      match th.tstate with
      | Sleeping at when at <= now -> th.tstate <- Ready
      | Sleeping _ | Ready | Running | Blocked -> ())
    t.threads

let pick t =
  let ready =
    List.filter (fun th -> th.tstate = Ready || th.tstate = Running) t.threads
  in
  match ready with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun best th -> if th.priority > best.priority then th else best)
           (List.hd ready) (List.tl ready))

(** Run [th]'s work for [cycles] (already charged by the caller through
    the clock); just attributes time. *)
let account t th cycles = th.run_cycles <- th.run_cycles + cycles; ignore t

(** Advance to the next interesting time: if a thread is ready, the
    caller should run it; otherwise burn idle cycles (granted to the
    background revoker) until the next sleeper wakes. *)
let idle_to_next_wake t =
  let now = Clock.cycles t.clock in
  let next =
    List.fold_left
      (fun acc th ->
        match th.tstate with
        | Sleeping at -> ( match acc with None -> Some at | Some a -> Some (min a at))
        | Ready | Running | Blocked -> acc)
      None t.threads
  in
  match next with
  | Some at when at > now ->
      let n = at - now in
      Clock.advance t.clock n;
      t.idle_cycles <- t.idle_cycles + n;
      wake_ready t at;
      true
  | Some _ ->
      wake_ready t now;
      true
  | None -> false

let sleep_until th at = th.tstate <- Sleeping at
let block th = th.tstate <- Blocked
let unblock th = if th.tstate = Blocked then th.tstate <- Ready
