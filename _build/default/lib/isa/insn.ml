(** The CHERIoT instruction set: the RV32EM base integer instructions plus
    the CHERIoT capability extension (paper 3).

    Registers are the sixteen RV32E capability registers [c0]–[c15];
    [c0] is the NULL capability / hard-wired zero.  In baseline (non-CHERI)
    mode the same instructions operate on the address field only and
    memory accesses are authorized by an implicit full-authority default
    data capability, which is how the Table 3 RV32E baseline runs on the
    same machine. *)

type reg = int
(** Register number, 0..15. *)

(** ABI names used by the assembler and the RTOS (RV32E subset). *)
let reg_zero = 0

let reg_ra = 1
let reg_sp = 2
let reg_gp = 3
let reg_tp = 4
let reg_t0 = 5
let reg_t1 = 6
let reg_t2 = 7
let reg_s0 = 8
let reg_s1 = 9
let reg_a0 = 10
let reg_a1 = 11
let reg_a2 = 12
let reg_a3 = 13
let reg_a4 = 14
let reg_a5 = 15

type branch_cond = Eq | Ne | Lt | Ge | Ltu | Geu

type alu =
  | Add
  | Sub  (** register form only *)
  | Sll
  | Slt
  | Sltu
  | Xor
  | Srl
  | Sra
  | Or
  | And

type muldiv = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type width = B | H | W
(** Memory access width: byte, halfword, word. *)

(** Special capability registers, accessed via [CSpecialRW] with PCC.SR
    permission (paper 3.1.2). *)
type scr = MTCC | MTDC | MScratchC | MEPCC

(** Capability field getters ([CGetAddr] etc.). *)
type getter = Addr | Base | Top | Len | Perm | Type | Tag

type csr_op = Csrrw | Csrrs | Csrrc

type t =
  (* RV32I base *)
  | Lui of reg * int  (** [Lui (rd, imm20)]: rd := imm20 << 12 *)
  | Auipcc of reg * int
      (** AUIPC; in CHERIoT mode derives a PCC-relative capability *)
  | Jal of reg * int  (** CJAL: link is a return sentry (3.1.2) *)
  | Jalr of reg * reg * int  (** CJALR: unseals sentries *)
  | Branch of branch_cond * reg * reg * int
  | Load of { signed : bool; width : width; rd : reg; rs1 : reg; off : int }
  | Store of { width : width; rs2 : reg; rs1 : reg; off : int }
  | Op_imm of alu * reg * reg * int
  | Op of alu * reg * reg * reg
  | Mul_div of muldiv * reg * reg * reg
  | Ecall
  | Ebreak
  | Mret
  | Wfi
  | Csr of csr_op * reg * reg * int  (** [Csr (op, rd, rs1, csr)] *)
  (* CHERIoT capability extension *)
  | Clc of reg * reg * int  (** load capability; subject to the load filter *)
  | Csc of reg * reg * int  (** store capability; SL check *)
  | Cincaddr of reg * reg * reg
  | Cincaddrimm of reg * reg * int
  | Csetaddr of reg * reg * reg
  | Csetbounds of reg * reg * reg
  | Csetboundsexact of reg * reg * reg
  | Csetboundsimm of reg * reg * int  (** unsigned 12-bit length *)
  | Crrl of reg * reg  (** round representable length *)
  | Cram of reg * reg  (** representable alignment mask *)
  | Candperm of reg * reg * reg
  | Ccleartag of reg * reg
  | Cmove of reg * reg
  | Cseal of reg * reg * reg  (** [Cseal (cd, cs1, cs2=key)] *)
  | Cunseal of reg * reg * reg
  | Cget of getter * reg * reg
  | Csub of reg * reg * reg
  | Ctestsubset of reg * reg * reg
  | Csetequalexact of reg * reg * reg
  | Cspecialrw of reg * scr * reg
      (** [Cspecialrw (cd, scr, cs1)]: read SCR into cd, then if cs1 <> c0
          write cs1 to the SCR.  Requires PCC.SR. *)

let reg_name r =
  [|
    "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1";
    "a2"; "a3"; "a4"; "a5";
  |].(r land 15)

let branch_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ge -> "bge"
  | Ltu -> "bltu"
  | Geu -> "bgeu"

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or -> "or"
  | And -> "and"

let muldiv_name = function
  | Mul -> "mul"
  | Mulh -> "mulh"
  | Mulhsu -> "mulhsu"
  | Mulhu -> "mulhu"
  | Div -> "div"
  | Divu -> "divu"
  | Rem -> "rem"
  | Remu -> "remu"

let getter_name = function
  | Addr -> "cgetaddr"
  | Base -> "cgetbase"
  | Top -> "cgettop"
  | Len -> "cgetlen"
  | Perm -> "cgetperm"
  | Type -> "cgettype"
  | Tag -> "cgettag"

let scr_name = function
  | MTCC -> "mtcc"
  | MTDC -> "mtdc"
  | MScratchC -> "mscratchc"
  | MEPCC -> "mepcc"

let width_name signed = function
  | B -> if signed then "lb" else "lbu"
  | H -> if signed then "lh" else "lhu"
  | W -> "lw"

let pp fmt i =
  let r = reg_name in
  match i with
  | Lui (rd, imm) -> Format.fprintf fmt "lui %s, 0x%x" (r rd) imm
  | Auipcc (rd, imm) -> Format.fprintf fmt "auipcc %s, 0x%x" (r rd) imm
  | Jal (rd, off) -> Format.fprintf fmt "cjal %s, %d" (r rd) off
  | Jalr (rd, rs1, off) ->
      Format.fprintf fmt "cjalr %s, %s, %d" (r rd) (r rs1) off
  | Branch (c, rs1, rs2, off) ->
      Format.fprintf fmt "%s %s, %s, %d" (branch_name c) (r rs1) (r rs2) off
  | Load { signed; width; rd; rs1; off } ->
      Format.fprintf fmt "%s %s, %d(%s)" (width_name signed width) (r rd) off
        (r rs1)
  | Store { width; rs2; rs1; off } ->
      let n = match width with B -> "sb" | H -> "sh" | W -> "sw" in
      Format.fprintf fmt "%s %s, %d(%s)" n (r rs2) off (r rs1)
  | Op_imm (op, rd, rs1, imm) ->
      Format.fprintf fmt "%si %s, %s, %d" (alu_name op) (r rd) (r rs1) imm
  | Op (op, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Mul_div (op, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %s, %s, %s" (muldiv_name op) (r rd) (r rs1)
        (r rs2)
  | Ecall -> Format.pp_print_string fmt "ecall"
  | Ebreak -> Format.pp_print_string fmt "ebreak"
  | Mret -> Format.pp_print_string fmt "mret"
  | Wfi -> Format.pp_print_string fmt "wfi"
  | Csr (op, rd, rs1, csr) ->
      let n =
        match op with
        | Csrrw -> "csrrw"
        | Csrrs -> "csrrs"
        | Csrrc -> "csrrc"
      in
      Format.fprintf fmt "%s %s, 0x%x, %s" n (r rd) csr (r rs1)
  | Clc (rd, rs1, off) ->
      Format.fprintf fmt "clc %s, %d(%s)" (r rd) off (r rs1)
  | Csc (rs2, rs1, off) ->
      Format.fprintf fmt "csc %s, %d(%s)" (r rs2) off (r rs1)
  | Cincaddr (cd, cs1, rs2) ->
      Format.fprintf fmt "cincaddr %s, %s, %s" (r cd) (r cs1) (r rs2)
  | Cincaddrimm (cd, cs1, imm) ->
      Format.fprintf fmt "cincaddrimm %s, %s, %d" (r cd) (r cs1) imm
  | Csetaddr (cd, cs1, rs2) ->
      Format.fprintf fmt "csetaddr %s, %s, %s" (r cd) (r cs1) (r rs2)
  | Csetbounds (cd, cs1, rs2) ->
      Format.fprintf fmt "csetbounds %s, %s, %s" (r cd) (r cs1) (r rs2)
  | Csetboundsexact (cd, cs1, rs2) ->
      Format.fprintf fmt "csetboundsexact %s, %s, %s" (r cd) (r cs1) (r rs2)
  | Csetboundsimm (cd, cs1, imm) ->
      Format.fprintf fmt "csetbounds %s, %s, %d" (r cd) (r cs1) imm
  | Crrl (rd, rs1) -> Format.fprintf fmt "crrl %s, %s" (r rd) (r rs1)
  | Cram (rd, rs1) -> Format.fprintf fmt "cram %s, %s" (r rd) (r rs1)
  | Candperm (cd, cs1, rs2) ->
      Format.fprintf fmt "candperm %s, %s, %s" (r cd) (r cs1) (r rs2)
  | Ccleartag (cd, cs1) ->
      Format.fprintf fmt "ccleartag %s, %s" (r cd) (r cs1)
  | Cmove (cd, cs1) -> Format.fprintf fmt "cmove %s, %s" (r cd) (r cs1)
  | Cseal (cd, cs1, cs2) ->
      Format.fprintf fmt "cseal %s, %s, %s" (r cd) (r cs1) (r cs2)
  | Cunseal (cd, cs1, cs2) ->
      Format.fprintf fmt "cunseal %s, %s, %s" (r cd) (r cs1) (r cs2)
  | Cget (g, rd, cs1) ->
      Format.fprintf fmt "%s %s, %s" (getter_name g) (r rd) (r cs1)
  | Csub (rd, cs1, cs2) ->
      Format.fprintf fmt "csub %s, %s, %s" (r rd) (r cs1) (r cs2)
  | Ctestsubset (rd, cs1, cs2) ->
      Format.fprintf fmt "ctestsubset %s, %s, %s" (r rd) (r cs1) (r cs2)
  | Csetequalexact (rd, cs1, cs2) ->
      Format.fprintf fmt "csetequalexact %s, %s, %s" (r rd) (r cs1) (r cs2)
  | Cspecialrw (cd, scr, cs1) ->
      Format.fprintf fmt "cspecialrw %s, %s, %s" (r cd) (scr_name scr) (r cs1)

let to_string = Fmt.to_to_string pp

(** Instruction classification used by the cycle models. *)
type klass =
  | K_alu
  | K_mul
  | K_div
  | K_branch
  | K_jump
  | K_load of int  (** bytes *)
  | K_store of int
  | K_cap_load
  | K_cap_store
  | K_cap_alu  (** capability-field manipulation in the EX stage *)
  | K_system

let classify = function
  | Lui _ | Op_imm _ | Op _ -> K_alu
  | Mul_div ((Mul | Mulh | Mulhsu | Mulhu), _, _, _) -> K_mul
  | Mul_div ((Div | Divu | Rem | Remu), _, _, _) -> K_div
  | Branch _ -> K_branch
  | Jal _ | Jalr _ -> K_jump
  | Load { width; _ } ->
      K_load (match width with B -> 1 | H -> 2 | W -> 4)
  | Store { width; _ } ->
      K_store (match width with B -> 1 | H -> 2 | W -> 4)
  | Clc _ -> K_cap_load
  | Csc _ -> K_cap_store
  | Auipcc _ | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _
  | Csetboundsexact _ | Csetboundsimm _ | Crrl _ | Cram _ | Candperm _
  | Ccleartag _ | Cmove _ | Cseal _ | Cunseal _ | Cget _ | Csub _
  | Ctestsubset _ | Csetequalexact _ ->
      K_cap_alu
  | Ecall | Ebreak | Mret | Wfi | Csr _ | Cspecialrw _ -> K_system
