lib/isa/asm.ml: Array Cheriot_mem Encode Hashtbl Insn List
