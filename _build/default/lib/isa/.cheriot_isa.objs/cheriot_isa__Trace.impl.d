lib/isa/trace.ml: Capability Cheriot_core Format Insn Machine
