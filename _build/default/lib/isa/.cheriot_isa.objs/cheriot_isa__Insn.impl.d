lib/isa/insn.ml: Array Fmt Format
