lib/isa/encode.ml: Insn Option Printf Sys
