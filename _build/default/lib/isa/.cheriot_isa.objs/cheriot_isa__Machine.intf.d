lib/isa/machine.mli: Cheriot_core Cheriot_mem Format Insn
