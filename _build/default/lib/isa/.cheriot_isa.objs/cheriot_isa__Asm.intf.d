lib/isa/asm.mli: Cheriot_mem Insn
