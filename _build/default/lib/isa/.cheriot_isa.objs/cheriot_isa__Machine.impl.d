lib/isa/machine.ml: Array Bounds Capability Cheriot_core Cheriot_mem Csr Encode Format Insn Otype Perm Stdlib
