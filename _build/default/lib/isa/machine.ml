open Cheriot_core
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits

type mode = Cheriot | Rv32

type cheri_cause =
  | Cheri_bounds
  | Cheri_tag
  | Cheri_seal
  | Cheri_permit_execute
  | Cheri_permit_load
  | Cheri_permit_store
  | Cheri_permit_load_cap
  | Cheri_permit_store_cap
  | Cheri_permit_store_local
  | Cheri_permit_access_system_registers

type cause =
  | Illegal_instruction
  | Breakpoint
  | Load_misaligned
  | Store_misaligned
  | Load_access_fault
  | Store_access_fault
  | Ecall_m
  | Cheri_fault of cheri_cause * int
  | Interrupt_timer
  | Interrupt_external

let cheri_cause_code = function
  | Cheri_bounds -> 0x01
  | Cheri_tag -> 0x02
  | Cheri_seal -> 0x03
  | Cheri_permit_execute -> 0x11
  | Cheri_permit_load -> 0x12
  | Cheri_permit_store -> 0x13
  | Cheri_permit_load_cap -> 0x14
  | Cheri_permit_store_cap -> 0x15
  | Cheri_permit_store_local -> 0x16
  | Cheri_permit_access_system_registers -> 0x18

let pp_cheri_cause fmt c =
  Format.pp_print_string fmt
    (match c with
    | Cheri_bounds -> "bounds"
    | Cheri_tag -> "tag"
    | Cheri_seal -> "seal"
    | Cheri_permit_execute -> "permit-execute"
    | Cheri_permit_load -> "permit-load"
    | Cheri_permit_store -> "permit-store"
    | Cheri_permit_load_cap -> "permit-load-cap"
    | Cheri_permit_store_cap -> "permit-store-cap"
    | Cheri_permit_store_local -> "permit-store-local"
    | Cheri_permit_access_system_registers -> "permit-access-system-registers")

let pp_cause fmt = function
  | Illegal_instruction -> Format.pp_print_string fmt "illegal instruction"
  | Breakpoint -> Format.pp_print_string fmt "breakpoint"
  | Load_misaligned -> Format.pp_print_string fmt "load misaligned"
  | Store_misaligned -> Format.pp_print_string fmt "store misaligned"
  | Load_access_fault -> Format.pp_print_string fmt "load access fault"
  | Store_access_fault -> Format.pp_print_string fmt "store access fault"
  | Ecall_m -> Format.pp_print_string fmt "ecall"
  | Cheri_fault (c, r) ->
      Format.fprintf fmt "CHERI fault: %a (reg %d)" pp_cheri_cause c r
  | Interrupt_timer -> Format.pp_print_string fmt "timer interrupt"
  | Interrupt_external -> Format.pp_print_string fmt "external interrupt"

let mcause_of = function
  | Illegal_instruction -> 2
  | Breakpoint -> 3
  | Load_misaligned -> 4
  | Load_access_fault -> 5
  | Store_misaligned -> 6
  | Store_access_fault -> 7
  | Ecall_m -> 11
  | Cheri_fault _ -> 28
  | Interrupt_timer -> 0x8000_0000 lor 7
  | Interrupt_external -> 0x8000_0000 lor 11

type event = {
  ev_insn : Insn.t option;
  ev_taken_branch : bool;
  ev_mem_bytes : int;
  ev_is_cap_mem : bool;
  ev_is_store : bool;
  ev_trap : cause option;
}

let no_event =
  {
    ev_insn = None;
    ev_taken_branch = false;
    ev_mem_bytes = 0;
    ev_is_cap_mem = false;
    ev_is_store = false;
    ev_trap = None;
  }

type result =
  | Step_ok
  | Step_trap of cause
  | Step_waiting
  | Step_halted
  | Step_double_fault

type t = {
  regs : Capability.t array;
  mutable pcc : Capability.t;
  bus : Bus.t;
  mutable mode : mode;
  mutable ddc : Capability.t;
  mutable load_filter : bool;
  mutable mie : bool;
  mutable mpie : bool;
  mutable mcause : int;
  mutable mtval : int;
  mutable mcycle : int;
  mutable minstret : int;
  mutable mshwm : int;
  mutable mshwmb : int;
  mutable mtimecmp : int;
  mutable mtcc : Capability.t;
  mutable mepcc : Capability.t;
  mutable mtdc : Capability.t;
  mutable mscratchc : Capability.t;
  mutable ext_interrupt : bool;
  mutable waiting : bool;
  mutable last_event : event;
}

exception Trap of cause

let create ?(mode = Cheriot) ?(load_filter = true) bus =
  {
    regs = Array.make 16 Capability.null;
    pcc = Capability.root_executable;
    bus;
    mode;
    ddc = (if mode = Rv32 then Capability.root_mem_rw else Capability.null);
    load_filter;
    mie = false;
    mpie = false;
    mcause = 0;
    mtval = 0;
    mcycle = 0;
    minstret = 0;
    mshwm = 0;
    mshwmb = 0;
    mtimecmp = 0;
    mtcc = Capability.null;
    mepcc = Capability.null;
    mtdc = Capability.null;
    mscratchc = Capability.null;
    ext_interrupt = false;
    waiting = false;
    last_event = no_event;
  }

let reg m r = if r land 15 = 0 then Capability.null else m.regs.(r land 15)

let set_reg m r c = if r land 15 <> 0 then m.regs.(r land 15) <- c

let reg_int m r = Capability.address (reg m r)

let mask32 = 0xFFFF_FFFF
let int_cap v = Capability.{ null with addr = v land mask32 }
let set_reg_int m r v = set_reg m r (int_cap v)

let timer_pending m = m.mtimecmp <> 0 && m.mcycle >= m.mtimecmp
let interrupt_pending m = timer_pending m || m.ext_interrupt

let to_signed v = (v lxor 0x8000_0000) - 0x8000_0000

(* --- memory access checks ------------------------------------------- *)

let check_access m ~cap ~ridx ~addr ~size ~store ~is_cap =
  ignore m;
  let fail c = raise (Trap (Cheri_fault (c, ridx))) in
  if not cap.Capability.tag then fail Cheri_tag;
  if Capability.is_sealed cap then fail Cheri_seal;
  if store then begin
    if not (Capability.has_perm cap SD) then fail Cheri_permit_store;
    if is_cap && not (Capability.has_perm cap MC) then
      fail Cheri_permit_store_cap
  end
  else begin
    if not (Capability.has_perm cap LD) then fail Cheri_permit_load;
    if is_cap && not (Capability.has_perm cap MC) then
      fail Cheri_permit_load_cap
  end;
  if not (Capability.in_bounds cap ~size addr) then fail Cheri_bounds;
  if addr land (size - 1) <> 0 then
    raise (Trap (if store then Store_misaligned else Load_misaligned));
  if addr < 0 || addr > mask32 then
    raise (Trap (if store then Store_access_fault else Load_access_fault))

(* Stack high-water-mark tracking (5.2.1): every store whose address lies
   within [mshwmb, mshwm) lowers the mark. *)
let note_store m addr =
  if addr >= m.mshwmb && addr < m.mshwm then m.mshwm <- addr land lnot 7

let mem_authority m ridx off =
  match m.mode with
  | Cheriot ->
      let cap = reg m ridx in
      (cap, (Capability.address cap + off) land mask32)
  | Rv32 -> (m.ddc, (reg_int m ridx + off) land mask32)

let do_load m ~ridx ~rs1 ~off ~width ~signed ~rd =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let cap, addr = mem_authority m rs1 off in
  check_access m ~cap ~ridx ~addr ~size ~store:false ~is_cap:false;
  let v =
    try Bus.read m.bus ~width:size addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let v =
    if signed then
      match width with
      | B -> (v lxor 0x80) - 0x80
      | H -> (v lxor 0x8000) - 0x8000
      | W -> v
    else v
  in
  set_reg_int m rd v;
  size

let do_store m ~ridx ~rs1 ~off ~width ~rs2 =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let cap, addr = mem_authority m rs1 off in
  check_access m ~cap ~ridx ~addr ~size ~store:true ~is_cap:false;
  (try Bus.write m.bus ~width:size addr (reg_int m rs2)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr;
  size

(* The architectural load filter (3.3.2): on every capability load the
   base of the loaded capability indexes the revocation bitmap; a set bit
   means the capability points to freed memory and its tag is stripped
   before register writeback. *)
let load_filter_apply m c =
  if (not m.load_filter) || not c.Capability.tag then c
  else
    match Bus.revbits m.bus with
    | Some rb when Revbits.is_revoked rb (Capability.base c) ->
        Capability.clear_tag c
    | Some _ | None -> c

let do_clc m ~rd ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:false ~is_cap:true;
  let tag, word =
    try Bus.read_cap m.bus addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let loaded = Capability.of_word ~tag word in
  let loaded = Capability.load_attenuate ~authority:cap loaded in
  let loaded = load_filter_apply m loaded in
  set_reg m rd loaded

let do_csc m ~rs2 ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:true ~is_cap:true;
  let value = reg m rs2 in
  if
    value.Capability.tag
    && (not (Capability.is_global value))
    && not (Capability.has_perm cap SL)
  then raise (Trap (Cheri_fault (Cheri_permit_store_local, rs2)));
  (try Bus.write_cap m.bus addr (value.Capability.tag, Capability.to_word value)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr

(* --- CSRs ------------------------------------------------------------ *)

let require_sr m =
  if m.mode = Cheriot && not (Capability.has_perm m.pcc SR) then
    raise (Trap (Cheri_fault (Cheri_permit_access_system_registers, 16)))

let csr_read m n =
  if n = Csr.mstatus then
    ((if m.mie then 1 else 0) lsl Csr.mstatus_mie_bit)
    lor ((if m.mpie then 1 else 0) lsl Csr.mstatus_mpie_bit)
  else if n = Csr.mcause then m.mcause
  else if n = Csr.mtval then m.mtval
  else if n = Csr.mcycle then m.mcycle land mask32
  else if n = Csr.mcycleh then (m.mcycle lsr 32) land mask32
  else if n = Csr.minstret then m.minstret land mask32
  else if n = Csr.mshwm then m.mshwm
  else if n = Csr.mshwmb then m.mshwmb
  else if n = Csr.mtimecmp then m.mtimecmp land mask32
  else raise (Trap Illegal_instruction)

let csr_write m n v =
  let v = v land mask32 in
  if n = Csr.mstatus then begin
    m.mie <- v land (1 lsl Csr.mstatus_mie_bit) <> 0;
    m.mpie <- v land (1 lsl Csr.mstatus_mpie_bit) <> 0
  end
  else if n = Csr.mcause then m.mcause <- v
  else if n = Csr.mtval then m.mtval <- v
  else if n = Csr.mcycle then m.mcycle <- v
  else if n = Csr.minstret then m.minstret <- v
  else if n = Csr.mshwm then m.mshwm <- v
  else if n = Csr.mshwmb then m.mshwmb <- v
  else if n = Csr.mtimecmp then m.mtimecmp <- v
  else raise (Trap Illegal_instruction)

let csr_is_counter n = n = Csr.mcycle || n = Csr.mcycleh || n = Csr.minstret

let do_csr m op rd rs1 n =
  (* Counter reads are unprivileged; everything else needs PCC.SR. *)
  let pure_read = op <> Insn.Csrrw && rs1 = 0 in
  if not (pure_read && csr_is_counter n) then require_sr m;
  let old = csr_read m n in
  (match op with
  | Insn.Csrrw -> csr_write m n (reg_int m rs1)
  | Insn.Csrrs -> if rs1 <> 0 then csr_write m n (old lor reg_int m rs1)
  | Insn.Csrrc ->
      if rs1 <> 0 then csr_write m n (old land lnot (reg_int m rs1)));
  set_reg_int m rd old

let scr_read m = function
  | Insn.MTCC -> m.mtcc
  | MTDC -> m.mtdc
  | MScratchC -> m.mscratchc
  | MEPCC -> m.mepcc

let scr_write m scr c =
  match scr with
  | Insn.MTCC -> m.mtcc <- c
  | MTDC -> m.mtdc <- c
  | MScratchC -> m.mscratchc <- c
  | MEPCC -> m.mepcc <- c

(* --- control flow ----------------------------------------------------- *)

let apply_sentry_posture m = function
  | Otype.Sentry_inherit -> ()
  | Sentry_enable | Sentry_ret_enable -> m.mie <- true
  | Sentry_disable | Sentry_ret_disable -> m.mie <- false

let link_cap m next_addr =
  (* The link register receives a return sentry recording the interrupt
     posture at the call site (3.1.2). *)
  let c = Capability.with_address m.pcc next_addr in
  match
    Capability.seal_sentry c (Otype.return_sentry ~interrupts_enabled:m.mie)
  with
  | Ok sealed -> sealed
  | Error _ -> Capability.clear_tag c

let do_jal m rd off =
  let pc = Capability.address m.pcc in
  let target = (pc + off) land mask32 in
  match m.mode with
  | Rv32 ->
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      if not (Capability.in_bounds m.pcc ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, 16)));
      set_reg m rd (link_cap m (pc + 4));
      m.pcc <- Capability.with_address m.pcc target

let do_jalr m rd rs1 off =
  let pc = Capability.address m.pcc in
  match m.mode with
  | Rv32 ->
      let target = (reg_int m rs1 + off) land mask32 land lnot 1 in
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      let cap = reg m rs1 in
      if not cap.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_tag, rs1)));
      let cap =
        if Capability.is_sealed cap then begin
          match Capability.sentry_kind cap with
          | Some kind when off = 0 ->
              let link = link_cap m (pc + 4) in
              apply_sentry_posture m kind;
              set_reg m rd link;
              Capability.{ cap with otype = Otype.unsealed }
          | Some _ | None -> raise (Trap (Cheri_fault (Cheri_seal, rs1)))
        end
        else begin
          set_reg m rd (link_cap m (pc + 4));
          cap
        end
      in
      if not (Capability.has_perm cap EX) then
        raise (Trap (Cheri_fault (Cheri_permit_execute, rs1)));
      let target = (Capability.address cap + off) land mask32 land lnot 1 in
      if not (Capability.in_bounds cap ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, rs1)));
      m.pcc <- Capability.with_address cap target

let alu_exec op a b =
  let open Insn in
  match op with
  | Add -> (a + b) land mask32
  | Sub -> (a - b) land mask32
  | Sll -> (a lsl (b land 31)) land mask32
  | Slt -> if to_signed a < to_signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0
  | Xor -> a lxor b
  | Srl -> a lsr (b land 31)
  | Sra -> (to_signed a asr (b land 31)) land mask32
  | Or -> a lor b
  | And -> a land b

let muldiv_exec op a b =
  let open Insn in
  let sa = to_signed a and sb = to_signed b in
  match op with
  | Mul -> (a * b) land mask32
  | Mulh -> (sa * sb) asr 32 land mask32
  | Mulhsu -> (sa * b) asr 32 land mask32
  | Mulhu -> (a * b) lsr 32 land mask32
  | Div ->
      if sb = 0 then mask32
      else if sa = -0x8000_0000 && sb = -1 then 0x8000_0000
      else to_signed a / to_signed b land mask32 land mask32
  | Divu -> if b = 0 then mask32 else a / b
  | Rem ->
      if sb = 0 then a
      else if sa = -0x8000_0000 && sb = -1 then 0
      else Stdlib.( mod ) sa sb land mask32
  | Remu -> if b = 0 then a else a mod b

let branch_taken cond a b =
  let open Insn in
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> to_signed a < to_signed b
  | Ge -> to_signed a >= to_signed b
  | Ltu -> a < b
  | Geu -> a >= b

(* --- capability instructions ----------------------------------------- *)

let require_tagged m ridx c =
  ignore m;
  if not c.Capability.tag then raise (Trap (Cheri_fault (Cheri_tag, ridx)))

let require_unsealed m ridx c =
  ignore m;
  if Capability.is_sealed c then raise (Trap (Cheri_fault (Cheri_seal, ridx)))

let exec_cap m (i : Insn.t) =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  match i with
  | Cincaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.incr_address (reg m cs1) (reg_int m rs2))
  | Cincaddrimm (cd, cs1, imm) ->
      set_reg m cd (Capability.incr_address (reg m cs1) imm)
  | Csetaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.with_address (reg m cs1) (reg_int m rs2))
  | Csetbounds (cd, cs1, rs2) | Csetboundsimm (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let length =
        match i with
        | Csetboundsimm _ -> rs2
        | _ -> reg_int m rs2
      in
      let r = Capability.set_bounds c ~length ~exact:false in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Csetboundsexact (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let r = Capability.set_bounds c ~length:(reg_int m rs2) ~exact:true in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Crrl (rd, rs1) -> set_reg_int m rd (Bounds.crrl (reg_int m rs1))
  | Cram (rd, rs1) -> set_reg_int m rd (Bounds.cram (reg_int m rs1))
  | Candperm (cd, cs1, rs2) ->
      let mask = Perm.Set.of_arch_bits (reg_int m rs2) in
      set_reg m cd (Capability.and_perms (reg m cs1) mask)
  | Ccleartag (cd, cs1) -> set_reg m cd (Capability.clear_tag (reg m cs1))
  | Cmove (cd, cs1) -> set_reg m cd (reg m cs1)
  | Cseal (cd, cs1, cs2) -> (
      match Capability.seal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cunseal (cd, cs1, cs2) -> (
      match Capability.unseal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cget (g, rd, cs1) ->
      let c = reg m cs1 in
      let v =
        match g with
        | Addr -> Capability.address c
        | Base -> Capability.base c
        | Top -> min (Capability.top c) mask32
        | Len -> min (Capability.length c) mask32
        | Perm -> Perm.Set.to_arch_bits (Capability.perms c)
        | Type -> Otype.value (Capability.otype c)
        | Tag -> if c.Capability.tag then 1 else 0
      in
      set_reg_int m rd v
  | Csub (rd, cs1, cs2) ->
      set_reg_int m rd (reg_int m cs1 - reg_int m cs2)
  | Ctestsubset (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.is_subset (reg m cs2) ~of_:(reg m cs1) then 1 else 0)
  | Csetequalexact (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.equal (reg m cs1) (reg m cs2) then 1 else 0)
  | Cspecialrw (cd, scr, cs1) ->
      require_sr m;
      let old = scr_read m scr in
      if cs1 <> 0 then scr_write m scr (reg m cs1);
      set_reg m cd old
  | _ -> raise (Trap Illegal_instruction)

(* --- trap entry ------------------------------------------------------- *)

let enter_trap m cause =
  m.mcause <- mcause_of cause;
  (m.mtval <-
     (match cause with
     | Cheri_fault (c, r) -> (cheri_cause_code c lsl 5) lor r
     | _ -> 0));
  m.mepcc <- m.pcc;
  m.mpie <- m.mie;
  m.mie <- false;
  if m.mtcc.Capability.tag then begin
    m.pcc <- m.mtcc;
    Step_trap cause
  end
  else Step_double_fault

(* --- fetch/execute ---------------------------------------------------- *)

let fetch m =
  let pc = Capability.address m.pcc in
  if m.mode = Cheriot then begin
    if not m.pcc.Capability.tag then
      raise (Trap (Cheri_fault (Cheri_tag, 16)));
    if Capability.is_sealed m.pcc then
      raise (Trap (Cheri_fault (Cheri_seal, 16)));
    if not (Capability.has_perm m.pcc EX) then
      raise (Trap (Cheri_fault (Cheri_permit_execute, 16)));
    if not (Capability.in_bounds m.pcc ~size:4 pc) then
      raise (Trap (Cheri_fault (Cheri_bounds, 16)))
  end;
  if pc land 3 <> 0 then raise (Trap Illegal_instruction);
  try Bus.read m.bus ~width:4 pc
  with Bus.Bus_error _ -> raise (Trap Load_access_fault)

let step m =
  if m.waiting then
    if interrupt_pending m then m.waiting <- false else ()
  else ();
  if m.waiting then Step_waiting
  else if m.mie && interrupt_pending m then begin
    let cause =
      if timer_pending m then Interrupt_timer else Interrupt_external
    in
    m.last_event <- { no_event with ev_trap = Some cause };
    enter_trap m cause
  end
  else begin
    let finish ?(taken = false) ?(mem = 0) ?(cap_mem = false) ?(store = false)
        insn =
      m.minstret <- m.minstret + 1;
      m.last_event <-
        {
          ev_insn = Some insn;
          ev_taken_branch = taken;
          ev_mem_bytes = mem;
          ev_is_cap_mem = cap_mem;
          ev_is_store = store;
          ev_trap = None;
        };
      Step_ok
    in
    let advance () = m.pcc <- Capability.with_address m.pcc ((Capability.address m.pcc + 4) land mask32) in
    let advance_rv32 () =
      (* In Rv32 mode the PCC is a plain program counter. *)
      m.pcc <- Capability.{ m.pcc with addr = (m.pcc.addr + 4) land mask32; tag = m.pcc.tag }
    in
    let next () = if m.mode = Cheriot then advance () else advance_rv32 () in
    try
      let word = fetch m in
      match Encode.decode word with
      | None -> raise (Trap Illegal_instruction)
      | Some insn -> (
          match insn with
          | Lui (rd, imm20) ->
              set_reg_int m rd (imm20 lsl 12);
              next ();
              finish insn
          | Auipcc (rd, imm20) ->
              let v = (Capability.address m.pcc + (imm20 lsl 12)) land mask32 in
              (match m.mode with
              | Cheriot -> set_reg m rd (Capability.with_address m.pcc v)
              | Rv32 -> set_reg_int m rd v);
              next ();
              finish insn
          | Jal (rd, off) ->
              do_jal m rd off;
              finish ~taken:true insn
          | Jalr (rd, rs1, off) ->
              do_jalr m rd rs1 off;
              finish ~taken:true insn
          | Branch (cond, rs1, rs2, off) ->
              let taken = branch_taken cond (reg_int m rs1) (reg_int m rs2) in
              if taken then begin
                let pc = Capability.address m.pcc in
                let target = (pc + off) land mask32 in
                if
                  m.mode = Cheriot
                  && not (Capability.in_bounds m.pcc ~size:4 target)
                then raise (Trap (Cheri_fault (Cheri_bounds, 16)));
                m.pcc <-
                  (if m.mode = Cheriot then Capability.with_address m.pcc target
                   else Capability.{ m.pcc with addr = target })
              end
              else next ();
              finish ~taken insn
          | Load { signed; width; rd; rs1; off } ->
              let bytes = do_load m ~ridx:rs1 ~rs1 ~off ~width ~signed ~rd in
              next ();
              finish ~mem:bytes insn
          | Store { width; rs2; rs1; off } ->
              let bytes = do_store m ~ridx:rs1 ~rs1 ~off ~width ~rs2 in
              next ();
              finish ~mem:bytes ~store:true insn
          | Clc (rd, rs1, off) ->
              do_clc m ~rd ~rs1 ~off;
              next ();
              finish ~mem:8 ~cap_mem:true insn
          | Csc (rs2, rs1, off) ->
              do_csc m ~rs2 ~rs1 ~off;
              next ();
              finish ~mem:8 ~cap_mem:true ~store:true insn
          | Op_imm (op, rd, rs1, imm) ->
              set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
              next ();
              finish insn
          | Op (op, rd, rs1, rs2) ->
              set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
              next ();
              finish insn
          | Mul_div (op, rd, rs1, rs2) ->
              set_reg_int m rd
                (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
              next ();
              finish insn
          | Ecall -> raise (Trap Ecall_m)
          | Ebreak ->
              m.last_event <- { no_event with ev_insn = Some insn };
              Step_halted
          | Mret ->
              require_sr m;
              let target = m.mepcc in
              let target =
                match Capability.sentry_kind target with
                | Some kind ->
                    apply_sentry_posture m kind;
                    Capability.{ target with otype = Otype.unsealed }
                | None ->
                    m.mie <- m.mpie;
                    target
              in
              m.mpie <- true;
              m.pcc <- target;
              finish ~taken:true insn
          | Wfi ->
              if not (interrupt_pending m) then m.waiting <- true;
              next ();
              if m.waiting then begin
                m.minstret <- m.minstret + 1;
                m.last_event <- { no_event with ev_insn = Some insn };
                Step_waiting
              end
              else finish insn
          | Csr (op, rd, rs1, n) ->
              do_csr m op rd rs1 n;
              next ();
              finish insn
          | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _
          | Csetboundsexact _ | Csetboundsimm _ | Crrl _ | Cram _
          | Candperm _ | Ccleartag _ | Cmove _ | Cseal _ | Cunseal _
          | Cget _ | Csub _ | Ctestsubset _ | Csetequalexact _
          | Cspecialrw _ ->
              exec_cap m insn;
              next ();
              finish insn)
    with Trap cause ->
      m.last_event <- { no_event with ev_trap = Some cause };
      enter_trap m cause
  end

let run ?(fuel = 10_000_000) m =
  let rec go n =
    if n >= fuel then (Step_ok, n)
    else
      match step m with
      | Step_ok | Step_trap _ -> go (n + 1)
      | (Step_waiting | Step_halted | Step_double_fault) as r -> (r, n + 1)
  in
  go 0
