(** A small two-pass assembler for writing firmware, test programs and the
    CoreMark-shaped benchmark kernels.

    Programs are lists of {!item}s; labels are resolved in a first pass
    (every item has a fixed size, so resolution is exact), then encoded.
    The result is a list of 32-bit words to be blitted into SRAM plus the
    resolved label addresses. *)

type item =
  | Label of string
  | I of Insn.t  (** a concrete instruction *)
  | B of Insn.branch_cond * Insn.reg * Insn.reg * string
      (** conditional branch to a label *)
  | J of Insn.reg * string  (** jump-and-link to a label *)
  | Call of string  (** [J (ra, l)] *)
  | Ret  (** [Jalr (zero, ra, 0)] — unseals the return sentry *)
  | Li of Insn.reg * int  (** load 32-bit constant (always 2 insns) *)
  | La_int of Insn.reg * string
      (** load a label's address as an integer (2 insns); capability-mode
          code then [Csetaddr]s it onto an authorizing capability *)
  | Word of int  (** raw 32-bit data word *)
  | Space of int  (** [n] zero words *)

type image = {
  origin : int;
  words : int array;
  labels : (string * int) list;
}

val size_of : item -> int
(** Size in bytes (fixed per constructor). *)

val assemble : origin:int -> item list -> image
(** Resolve labels and encode.  Raises [Failure] on undefined or duplicate
    labels and on out-of-range branch offsets. *)

val label : image -> string -> int
(** Resolved address of a label.  Raises [Not_found]. *)

val load : image -> Cheriot_mem.Sram.t -> unit
(** Blit the image into SRAM at its origin. *)

val bytes_size : image -> int
