(** CSR numbers.

    Standard machine-mode CSRs plus the two custom CSRs added for the
    stack high-water-mark mechanism (paper 5.2.1), which are protected by
    the PCC SR permission and accessible only to the switcher. *)

let mstatus = 0x300
let mcause = 0x342
let mtval = 0x343
let mcycle = 0xB00
let minstret = 0xB02
let mcycleh = 0xB80

(* Custom CHERIoT CSRs. *)
let mshwm = 0x7C1
(** Stack high water mark: lowest stack address stored to. *)

let mshwmb = 0x7C2
(** Stack base: lower limit of the current thread's stack. *)

let mtimecmp = 0x7D0
(** Timer compare; a machine timer interrupt is pending while
    [mcycle >= mtimecmp] and [mtimecmp <> 0].  (Modelled as a CSR rather
    than MMIO to keep the preemption path deterministic and simple.) *)

(* mstatus bits *)
let mstatus_mie_bit = 3
let mstatus_mpie_bit = 7

let name n =
  if n = mstatus then "mstatus"
  else if n = mcause then "mcause"
  else if n = mtval then "mtval"
  else if n = mcycle then "mcycle"
  else if n = minstret then "minstret"
  else if n = mcycleh then "mcycleh"
  else if n = mshwm then "mshwm"
  else if n = mshwmb then "mshwmb"
  else if n = mtimecmp then "mtimecmp"
  else Printf.sprintf "csr_0x%x" n
