type item =
  | Label of string
  | I of Insn.t
  | B of Insn.branch_cond * Insn.reg * Insn.reg * string
  | J of Insn.reg * string
  | Call of string
  | Ret
  | Li of Insn.reg * int
  | La_int of Insn.reg * string
  | Word of int
  | Space of int

type image = { origin : int; words : int array; labels : (string * int) list }

let size_of = function
  | Label _ -> 0
  | I _ | B _ | J _ | Call _ | Ret | Word _ -> 4
  | Li _ | La_int _ -> 8
  | Space n -> 4 * n

(* lui+addi pair computing a 32-bit constant. *)
let li_pair rd v =
  let v = v land 0xFFFF_FFFF in
  let lo = ((v land 0xfff) lxor 0x800) - 0x800 in
  let hi = (v - lo) land 0xFFFF_FFFF in
  [ Insn.Lui (rd, (hi lsr 12) land 0xfffff); Insn.Op_imm (Add, rd, rd, lo) ]

let assemble ~origin items =
  let labels = Hashtbl.create 16 in
  let pc = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label l ->
          if Hashtbl.mem labels l then failwith ("duplicate label " ^ l);
          Hashtbl.add labels l !pc
      | _ -> ());
      pc := !pc + size_of item)
    items;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> failwith ("undefined label " ^ l)
  in
  let words = ref [] in
  let emit w = words := (w land 0xFFFF_FFFF) :: !words in
  let emit_insn i = emit (Encode.encode i) in
  let pc = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label _ -> ()
      | I i -> emit_insn i
      | B (cond, rs1, rs2, l) ->
          emit_insn (Insn.Branch (cond, rs1, rs2, resolve l - !pc))
      | J (rd, l) -> emit_insn (Insn.Jal (rd, resolve l - !pc))
      | Call l -> emit_insn (Insn.Jal (Insn.reg_ra, resolve l - !pc))
      | Ret -> emit_insn (Insn.Jalr (Insn.reg_zero, Insn.reg_ra, 0))
      | Li (rd, v) -> List.iter emit_insn (li_pair rd v)
      | La_int (rd, l) -> List.iter emit_insn (li_pair rd (resolve l))
      | Word w -> emit w
      | Space n ->
          for _ = 1 to n do
            emit 0
          done);
      pc := !pc + size_of item)
    items;
  {
    origin;
    words = Array.of_list (List.rev !words);
    labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [];
  }

let label img l =
  match List.assoc_opt l img.labels with
  | Some a -> a
  | None -> raise Not_found

let load img sram =
  Array.iteri
    (fun i w -> Cheriot_mem.Sram.write32 sram (img.origin + (4 * i)) w)
    img.words

let bytes_size img = 4 * Array.length img.words
