(** Binary instruction encoding.

    The RV32EM base uses the standard RISC-V encodings.  The CHERIoT
    capability extension lives in major opcode [0x5B] (the CHERI opcode
    space); the paper does not specify encodings, so the funct7/funct3
    assignments below are this implementation's (documented, stable, and
    round-trip tested):

    - funct3=0, R-type, funct7 selects the three-register operation;
      funct7=0x7f is the one-operand group with the selector in rs2.
    - funct3=1: [Cincaddrimm] (signed 12-bit immediate).
    - funct3=2: [Csetboundsimm] (unsigned 12-bit immediate).
    - [Clc]/[Csc] use the LOAD/STORE major opcodes with funct3=3 (the
      RV64 ld/sd slots, free on RV32).

    All encoders raise [Invalid_argument] when an immediate does not fit;
    the assembler is responsible for range-legal code. *)

let mask n v = v land ((1 lsl n) - 1)

let check_signed name bits v =
  if v < -(1 lsl (bits - 1)) || v >= 1 lsl (bits - 1) then
    invalid_arg (Printf.sprintf "%s: immediate %d out of %d-bit range" name v bits)

let check_unsigned name bits v =
  if v < 0 || v >= 1 lsl bits then
    invalid_arg (Printf.sprintf "%s: immediate %d out of %d-bit range" name v bits)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (mask 5 rs2 lsl 20) lor (mask 5 rs1 lsl 15)
  lor (funct3 lsl 12) lor (mask 5 rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  (mask 12 imm lsl 20) lor (mask 5 rs1 lsl 15) lor (funct3 lsl 12)
  lor (mask 5 rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  (mask 7 (imm asr 5) lsl 25)
  lor (mask 5 rs2 lsl 20) lor (mask 5 rs1 lsl 15) lor (funct3 lsl 12)
  lor (mask 5 imm lsl 7) lor opcode

let b_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  (mask 1 (imm asr 12) lsl 31)
  lor (mask 6 (imm asr 5) lsl 25)
  lor (mask 5 rs2 lsl 20) lor (mask 5 rs1 lsl 15) lor (funct3 lsl 12)
  lor (mask 4 (imm asr 1) lsl 8)
  lor (mask 1 (imm asr 11) lsl 7)
  lor opcode

let u_type ~imm20 ~rd ~opcode = (mask 20 imm20 lsl 12) lor (mask 5 rd lsl 7) lor opcode

let j_type ~imm ~rd ~opcode =
  (mask 1 (imm asr 20) lsl 31)
  lor (mask 10 (imm asr 1) lsl 21)
  lor (mask 1 (imm asr 11) lsl 20)
  lor (mask 8 (imm asr 12) lsl 12)
  lor (mask 5 rd lsl 7) lor opcode

let op_lui = 0x37
let op_auipc = 0x17
let op_jal = 0x6F
let op_jalr = 0x67
let op_branch = 0x63
let op_load = 0x03
let op_store = 0x23
let op_imm = 0x13
let op_op = 0x33
let op_system = 0x73
let op_cheri = 0x5B

let branch_funct3 : Insn.branch_cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 4
  | Ge -> 5
  | Ltu -> 6
  | Geu -> 7

let alu_funct3 : Insn.alu -> int = function
  | Add | Sub -> 0
  | Sll -> 1
  | Slt -> 2
  | Sltu -> 3
  | Xor -> 4
  | Srl | Sra -> 5
  | Or -> 6
  | And -> 7

let muldiv_funct3 : Insn.muldiv -> int = function
  | Mul -> 0
  | Mulh -> 1
  | Mulhsu -> 2
  | Mulhu -> 3
  | Div -> 4
  | Divu -> 5
  | Rem -> 6
  | Remu -> 7

let scr_index : Insn.scr -> int = function
  | MTCC -> 1
  | MTDC -> 2
  | MScratchC -> 3
  | MEPCC -> 4

let scr_of_index = function
  | 1 -> Some Insn.MTCC
  | 2 -> Some Insn.MTDC
  | 3 -> Some Insn.MScratchC
  | 4 -> Some Insn.MEPCC
  | _ -> None

let getter_index : Insn.getter -> int = function
  | Perm -> 0
  | Type -> 1
  | Base -> 2
  | Len -> 3
  | Tag -> 4
  | Top -> 5
  | Addr -> 6

let getter_of_index = function
  | 0 -> Some Insn.Perm
  | 1 -> Some Insn.Type
  | 2 -> Some Insn.Base
  | 3 -> Some Insn.Len
  | 4 -> Some Insn.Tag
  | 5 -> Some Insn.Top
  | 6 -> Some Insn.Addr
  | _ -> None

(* funct7 assignments for the three-register CHERI group. *)
let f7_cspecialrw = 0x01
let f7_csetbounds = 0x08
let f7_csetboundsexact = 0x09
let f7_cseal = 0x0b
let f7_cunseal = 0x0c
let f7_candperm = 0x0d
let f7_csetaddr = 0x10
let f7_cincaddr = 0x11
let f7_csub = 0x14
let f7_ctestsubset = 0x20
let f7_csetequalexact = 0x21
let f7_one_operand = 0x7f

(* rs2 selectors within the one-operand group, above the getters. *)
let sel_crrl = 8
let sel_cram = 9
let sel_cmove = 10
let sel_ccleartag = 11

let encode (i : Insn.t) =
  match i with
  | Lui (rd, imm20) ->
      check_unsigned "lui" 20 imm20;
      u_type ~imm20 ~rd ~opcode:op_lui
  | Auipcc (rd, imm20) ->
      check_unsigned "auipcc" 20 imm20;
      u_type ~imm20 ~rd ~opcode:op_auipc
  | Jal (rd, off) ->
      check_signed "jal" 21 off;
      if off land 1 <> 0 then invalid_arg "jal: misaligned offset";
      j_type ~imm:off ~rd ~opcode:op_jal
  | Jalr (rd, rs1, off) ->
      check_signed "jalr" 12 off;
      i_type ~imm:off ~rs1 ~funct3:0 ~rd ~opcode:op_jalr
  | Branch (c, rs1, rs2, off) ->
      check_signed "branch" 13 off;
      if off land 1 <> 0 then invalid_arg "branch: misaligned offset";
      b_type ~imm:off ~rs2 ~rs1 ~funct3:(branch_funct3 c) ~opcode:op_branch
  | Load { signed; width; rd; rs1; off } ->
      check_signed "load" 12 off;
      let funct3 =
        match (width, signed) with
        | B, true -> 0
        | H, true -> 1
        | W, _ -> 2
        | B, false -> 4
        | H, false -> 5
      in
      i_type ~imm:off ~rs1 ~funct3 ~rd ~opcode:op_load
  | Store { width; rs2; rs1; off } ->
      check_signed "store" 12 off;
      let funct3 = match width with B -> 0 | H -> 1 | W -> 2 in
      s_type ~imm:off ~rs2 ~rs1 ~funct3 ~opcode:op_store
  | Clc (rd, rs1, off) ->
      check_signed "clc" 12 off;
      i_type ~imm:off ~rs1 ~funct3:3 ~rd ~opcode:op_load
  | Csc (rs2, rs1, off) ->
      check_signed "csc" 12 off;
      s_type ~imm:off ~rs2 ~rs1 ~funct3:3 ~opcode:op_store
  | Op_imm (op, rd, rs1, imm) -> (
      match op with
      | Sub -> invalid_arg "subi does not exist"
      | Sll ->
          check_unsigned "slli" 5 imm;
          i_type ~imm ~rs1 ~funct3:1 ~rd ~opcode:op_imm
      | Srl ->
          check_unsigned "srli" 5 imm;
          i_type ~imm ~rs1 ~funct3:5 ~rd ~opcode:op_imm
      | Sra ->
          check_unsigned "srai" 5 imm;
          i_type ~imm:(imm lor 0x400) ~rs1 ~funct3:5 ~rd ~opcode:op_imm
      | Add | Slt | Sltu | Xor | Or | And ->
          check_signed "op-imm" 12 imm;
          i_type ~imm ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:op_imm)
  | Op (op, rd, rs1, rs2) ->
      let funct7 = match op with Sub | Sra -> 0x20 | _ -> 0 in
      r_type ~funct7 ~rs2 ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:op_op
  | Mul_div (op, rd, rs1, rs2) ->
      r_type ~funct7:1 ~rs2 ~rs1 ~funct3:(muldiv_funct3 op) ~rd ~opcode:op_op
  | Ecall -> i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Ebreak -> i_type ~imm:1 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Mret -> i_type ~imm:0x302 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Wfi -> i_type ~imm:0x105 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Csr (op, rd, rs1, csr) ->
      check_unsigned "csr" 12 csr;
      let funct3 =
        match op with Csrrw -> 1 | Csrrs -> 2 | Csrrc -> 3
      in
      i_type ~imm:csr ~rs1 ~funct3 ~rd ~opcode:op_system
  | Cincaddrimm (cd, cs1, imm) ->
      check_signed "cincaddrimm" 12 imm;
      i_type ~imm ~rs1:cs1 ~funct3:1 ~rd:cd ~opcode:op_cheri
  | Csetboundsimm (cd, cs1, imm) ->
      check_unsigned "csetboundsimm" 12 imm;
      i_type ~imm ~rs1:cs1 ~funct3:2 ~rd:cd ~opcode:op_cheri
  | Cspecialrw (cd, scr, cs1) ->
      r_type ~funct7:f7_cspecialrw ~rs2:(scr_index scr) ~rs1:cs1 ~funct3:0
        ~rd:cd ~opcode:op_cheri
  | Csetbounds (cd, cs1, rs2) ->
      r_type ~funct7:f7_csetbounds ~rs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Csetboundsexact (cd, cs1, rs2) ->
      r_type ~funct7:f7_csetboundsexact ~rs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Cseal (cd, cs1, cs2) ->
      r_type ~funct7:f7_cseal ~rs2:cs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Cunseal (cd, cs1, cs2) ->
      r_type ~funct7:f7_cunseal ~rs2:cs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Candperm (cd, cs1, rs2) ->
      r_type ~funct7:f7_candperm ~rs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Csetaddr (cd, cs1, rs2) ->
      r_type ~funct7:f7_csetaddr ~rs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Cincaddr (cd, cs1, rs2) ->
      r_type ~funct7:f7_cincaddr ~rs2 ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Csub (rd, cs1, cs2) ->
      r_type ~funct7:f7_csub ~rs2:cs2 ~rs1:cs1 ~funct3:0 ~rd ~opcode:op_cheri
  | Ctestsubset (rd, cs1, cs2) ->
      r_type ~funct7:f7_ctestsubset ~rs2:cs2 ~rs1:cs1 ~funct3:0 ~rd
        ~opcode:op_cheri
  | Csetequalexact (rd, cs1, cs2) ->
      r_type ~funct7:f7_csetequalexact ~rs2:cs2 ~rs1:cs1 ~funct3:0 ~rd
        ~opcode:op_cheri
  | Cget (g, rd, cs1) ->
      r_type ~funct7:f7_one_operand ~rs2:(getter_index g) ~rs1:cs1 ~funct3:0
        ~rd ~opcode:op_cheri
  | Crrl (rd, rs1) ->
      r_type ~funct7:f7_one_operand ~rs2:sel_crrl ~rs1 ~funct3:0 ~rd
        ~opcode:op_cheri
  | Cram (rd, rs1) ->
      r_type ~funct7:f7_one_operand ~rs2:sel_cram ~rs1 ~funct3:0 ~rd
        ~opcode:op_cheri
  | Cmove (cd, cs1) ->
      r_type ~funct7:f7_one_operand ~rs2:sel_cmove ~rs1:cs1 ~funct3:0 ~rd:cd
        ~opcode:op_cheri
  | Ccleartag (cd, cs1) ->
      r_type ~funct7:f7_one_operand ~rs2:sel_ccleartag ~rs1:cs1 ~funct3:0
        ~rd:cd ~opcode:op_cheri

(* Field extraction for decode. *)
let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let dec_rd w = (w lsr 7) land 0x1f
let dec_rs1 w = (w lsr 15) land 0x1f
let dec_rs2 w = (w lsr 20) land 0x1f
let dec_funct3 w = (w lsr 12) land 0x7
let dec_funct7 w = (w lsr 25) land 0x7f
let dec_i_imm w = sign_extend 12 ((w lsr 20) land 0xfff)

let dec_s_imm w =
  sign_extend 12 ((((w lsr 25) land 0x7f) lsl 5) lor ((w lsr 7) land 0x1f))

let dec_b_imm w =
  sign_extend 13
    ((((w lsr 31) land 1) lsl 12)
    lor (((w lsr 7) land 1) lsl 11)
    lor (((w lsr 25) land 0x3f) lsl 5)
    lor (((w lsr 8) land 0xf) lsl 1))

let dec_j_imm w =
  sign_extend 21
    ((((w lsr 31) land 1) lsl 20)
    lor (((w lsr 12) land 0xff) lsl 12)
    lor (((w lsr 20) land 1) lsl 11)
    lor (((w lsr 21) land 0x3ff) lsl 1))

let alu_of_funct3_i funct3 imm =
  match funct3 with
  | 0 -> Some (Insn.Add, imm)
  | 1 when imm land lnot 0x1f = 0 -> Some (Sll, imm land 0x1f)
  | 2 -> Some (Slt, imm)
  | 3 -> Some (Sltu, imm)
  | 4 -> Some (Xor, imm)
  | 5 when imm land lnot 0x1f = 0 -> Some (Srl, imm land 0x1f)
  | 5 when (imm land lnot 0x1f) land 0xfff = 0x400 -> Some (Sra, imm land 0x1f)
  | 6 -> Some (Or, imm)
  | 7 -> Some (And, imm)
  | _ -> None

let decode w : Insn.t option =
  let opcode = w land 0x7f in
  let rd = dec_rd w and rs1 = dec_rs1 w and rs2 = dec_rs2 w in
  let funct3 = dec_funct3 w and funct7 = dec_funct7 w in
  match opcode with
  | o when o = op_lui -> Some (Lui (rd, (w lsr 12) land 0xfffff))
  | o when o = op_auipc -> Some (Auipcc (rd, (w lsr 12) land 0xfffff))
  | o when o = op_jal -> Some (Jal (rd, dec_j_imm w))
  | o when o = op_jalr && funct3 = 0 -> Some (Jalr (rd, rs1, dec_i_imm w))
  | o when o = op_branch -> (
      let off = dec_b_imm w in
      match funct3 with
      | 0 -> Some (Branch (Eq, rs1, rs2, off))
      | 1 -> Some (Branch (Ne, rs1, rs2, off))
      | 4 -> Some (Branch (Lt, rs1, rs2, off))
      | 5 -> Some (Branch (Ge, rs1, rs2, off))
      | 6 -> Some (Branch (Ltu, rs1, rs2, off))
      | 7 -> Some (Branch (Geu, rs1, rs2, off))
      | _ -> None)
  | o when o = op_load -> (
      let off = dec_i_imm w in
      match funct3 with
      | 0 -> Some (Load { signed = true; width = B; rd; rs1; off })
      | 1 -> Some (Load { signed = true; width = H; rd; rs1; off })
      | 2 -> Some (Load { signed = true; width = W; rd; rs1; off })
      | 3 -> Some (Clc (rd, rs1, off))
      | 4 -> Some (Load { signed = false; width = B; rd; rs1; off })
      | 5 -> Some (Load { signed = false; width = H; rd; rs1; off })
      | _ -> None)
  | o when o = op_store -> (
      let off = dec_s_imm w in
      match funct3 with
      | 0 -> Some (Store { width = B; rs2; rs1; off })
      | 1 -> Some (Store { width = H; rs2; rs1; off })
      | 2 -> Some (Store { width = W; rs2; rs1; off })
      | 3 -> Some (Csc (rs2, rs1, off))
      | _ -> None)
  | o when o = op_imm -> (
      let raw = (w lsr 20) land 0xfff in
      match funct3 with
      | 1 when funct7 = 0 -> Some (Op_imm (Sll, rd, rs1, rs2))
      | 5 when funct7 = 0 -> Some (Op_imm (Srl, rd, rs1, rs2))
      | 5 when funct7 = 0x20 -> Some (Op_imm (Sra, rd, rs1, rs2))
      | 1 | 5 -> None
      | _ -> (
          match alu_of_funct3_i funct3 raw with
          | Some (op, _) -> Some (Op_imm (op, rd, rs1, dec_i_imm w))
          | None -> None))
  | o when o = op_op -> (
      if funct7 = 1 then
        let md : Insn.muldiv =
          match funct3 with
          | 0 -> Mul
          | 1 -> Mulh
          | 2 -> Mulhsu
          | 3 -> Mulhu
          | 4 -> Div
          | 5 -> Divu
          | 6 -> Rem
          | _ -> Remu
        in
        Some (Mul_div (md, rd, rs1, rs2))
      else
        match (funct3, funct7) with
        | 0, 0 -> Some (Op (Add, rd, rs1, rs2))
        | 0, 0x20 -> Some (Op (Sub, rd, rs1, rs2))
        | 1, 0 -> Some (Op (Sll, rd, rs1, rs2))
        | 2, 0 -> Some (Op (Slt, rd, rs1, rs2))
        | 3, 0 -> Some (Op (Sltu, rd, rs1, rs2))
        | 4, 0 -> Some (Op (Xor, rd, rs1, rs2))
        | 5, 0 -> Some (Op (Srl, rd, rs1, rs2))
        | 5, 0x20 -> Some (Op (Sra, rd, rs1, rs2))
        | 6, 0 -> Some (Op (Or, rd, rs1, rs2))
        | 7, 0 -> Some (Op (And, rd, rs1, rs2))
        | _ -> None)
  | o when o = op_system -> (
      let imm12 = (w lsr 20) land 0xfff in
      match funct3 with
      | 0 when rd = 0 && rs1 = 0 -> (
          match imm12 with
          | 0 -> Some Ecall
          | 1 -> Some Ebreak
          | 0x302 -> Some Mret
          | 0x105 -> Some Wfi
          | _ -> None)
      | 1 -> Some (Csr (Csrrw, rd, rs1, imm12))
      | 2 -> Some (Csr (Csrrs, rd, rs1, imm12))
      | 3 -> Some (Csr (Csrrc, rd, rs1, imm12))
      | _ -> None)
  | o when o = op_cheri -> (
      match funct3 with
      | 1 -> Some (Cincaddrimm (rd, rs1, dec_i_imm w))
      | 2 -> Some (Csetboundsimm (rd, rs1, (w lsr 20) land 0xfff))
      | 0 -> (
          match funct7 with
          | f when f = f7_cspecialrw ->
              Option.map (fun scr -> Insn.Cspecialrw (rd, scr, rs1))
                (scr_of_index rs2)
          | f when f = f7_csetbounds -> Some (Csetbounds (rd, rs1, rs2))
          | f when f = f7_csetboundsexact ->
              Some (Csetboundsexact (rd, rs1, rs2))
          | f when f = f7_cseal -> Some (Cseal (rd, rs1, rs2))
          | f when f = f7_cunseal -> Some (Cunseal (rd, rs1, rs2))
          | f when f = f7_candperm -> Some (Candperm (rd, rs1, rs2))
          | f when f = f7_csetaddr -> Some (Csetaddr (rd, rs1, rs2))
          | f when f = f7_cincaddr -> Some (Cincaddr (rd, rs1, rs2))
          | f when f = f7_csub -> Some (Csub (rd, rs1, rs2))
          | f when f = f7_ctestsubset -> Some (Ctestsubset (rd, rs1, rs2))
          | f when f = f7_csetequalexact ->
              Some (Csetequalexact (rd, rs1, rs2))
          | f when f = f7_one_operand -> (
              match rs2 with
              | s when s = sel_crrl -> Some (Crrl (rd, rs1))
              | s when s = sel_cram -> Some (Cram (rd, rs1))
              | s when s = sel_cmove -> Some (Cmove (rd, rs1))
              | s when s = sel_ccleartag -> Some (Ccleartag (rd, rs1))
              | s -> Option.map (fun g -> Insn.Cget (g, rd, rs1)) (getter_of_index s))
          | _ -> None)
      | _ -> None)
  | _ -> None
