type device = {
  name : string;
  dev_base : int;
  dev_size : int;
  read32 : int -> int;
  write32 : int -> int -> unit;
}

let ram_backed ~name ~base ~size =
  let backing = Bytes.make size '\000' in
  let read32 off =
    Int32.to_int (Bytes.get_int32_le backing off) land 0xFFFF_FFFF
  in
  let write32 off v = Bytes.set_int32_le backing off (Int32.of_int v) in
  ({ name; dev_base = base; dev_size = size; read32; write32 }, backing)

let const ~name ~base ~size v =
  {
    name;
    dev_base = base;
    dev_size = size;
    read32 = (fun _ -> v);
    write32 = (fun _ _ -> ());
  }
