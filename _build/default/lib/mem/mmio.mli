(** Memory-mapped I/O devices.

    The CHERIoT SoC model exposes the revocation bitmap, the background
    revoker (paper 3.3.3), a timer and a console as MMIO devices.  Devices
    see 32-bit register accesses at offsets within their window. *)

type device = {
  name : string;
  dev_base : int;
  dev_size : int;
  read32 : int -> int;  (** [read32 offset] *)
  write32 : int -> int -> unit;  (** [write32 offset value] *)
}

val ram_backed : name:string -> base:int -> size:int -> device * Bytes.t
(** A device that behaves like plain word-addressed RAM — used for the
    memory-mapped revocation-bit window visible to the allocator. *)

val const : name:string -> base:int -> size:int -> int -> device
(** A read-only device returning a constant (writes ignored). *)
