(** The revocation bitmap (paper 3.3.1).

    Each heap allocation granule (8 bytes, matching capability alignment)
    has a corresponding revocation bit indicating that the granule belongs
    to a freed memory chunk and must not be referenced.  The bitmap covers
    only the heap region — the SRAM overhead is 1/(8*8) ≈ 1.56 % of heap,
    and zero for statically allocated memory.  The bitmap area is
    memory-mapped; the RTOS loader grants access only to the allocator
    compartment. *)

type t

val create : ?granule_log2:int -> heap_base:int -> heap_size:int -> unit -> t
(** [create ~heap_base ~heap_size ()] covers [[heap_base, heap_base+size)].
    [granule_log2] defaults to 3 (8-byte granules); the granule-size
    ablation (DESIGN.md §5) uses 4 or 5. *)

val granule_size : t -> int
val covers : t -> int -> bool
(** Is the address within the region associated with revocation bits? *)

val is_revoked : t -> int -> bool
(** [is_revoked t addr]: the revocation bit of [addr]'s granule.
    Addresses outside the covered region are never revoked (code, globals
    and stacks have no revocation bits). *)

val paint : t -> addr:int -> len:int -> unit
(** Set the revocation bits of every granule in [[addr, addr+len)] — the
    allocator does this in [free] before quarantining. *)

val clear : t -> addr:int -> len:int -> unit
(** Reset the bits when quarantined memory is released for reuse. *)

val bitmap_bytes : t -> int
(** SRAM cost of the bitmap in bytes, for the overhead accounting. *)

val painted_granules : t -> int
(** Number of currently-set bits (diagnostics). *)
