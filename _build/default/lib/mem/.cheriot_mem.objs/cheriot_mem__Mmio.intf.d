lib/mem/mmio.mli: Bytes
