lib/mem/sram.ml: Bytes Char Int32 Printf String
