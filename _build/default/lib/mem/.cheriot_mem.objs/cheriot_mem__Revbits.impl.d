lib/mem/revbits.ml: Bytes Char
