lib/mem/bus.ml: List Mmio Revbits Sram
