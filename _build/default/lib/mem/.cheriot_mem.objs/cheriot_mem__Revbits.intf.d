lib/mem/revbits.mli:
