lib/mem/mmio.ml: Bytes Int32
