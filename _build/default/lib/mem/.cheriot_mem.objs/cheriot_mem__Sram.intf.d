lib/mem/sram.mli:
