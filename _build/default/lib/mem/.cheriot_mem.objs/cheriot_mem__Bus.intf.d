lib/mem/bus.mli: Mmio Revbits Sram
