type t = {
  heap_base : int;
  heap_size : int;
  granule_log2 : int;
  bits : Bytes.t;
  mutable painted : int;
}

let create ?(granule_log2 = 3) ~heap_base ~heap_size () =
  if granule_log2 < 3 then
    invalid_arg "Revbits.create: granule must be >= 8 bytes";
  let granules = (heap_size + (1 lsl granule_log2) - 1) lsr granule_log2 in
  {
    heap_base;
    heap_size;
    granule_log2;
    bits = Bytes.make ((granules + 7) / 8) '\000';
    painted = 0;
  }

let granule_size t = 1 lsl t.granule_log2
let covers t addr = addr >= t.heap_base && addr < t.heap_base + t.heap_size
let index t addr = (addr - t.heap_base) lsr t.granule_log2

let get t i =
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i v =
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let old = byte land mask <> 0 in
  if old <> v then begin
    t.painted <- (t.painted + if v then 1 else -1);
    let byte = if v then byte lor mask else byte land lnot mask in
    Bytes.set t.bits (i lsr 3) (Char.chr byte)
  end

let is_revoked t addr = covers t addr && get t (index t addr)

let iter_granules t ~addr ~len f =
  if len > 0 then begin
    let first = index t (max addr t.heap_base) in
    let last_addr = min (addr + len - 1) (t.heap_base + t.heap_size - 1) in
    if last_addr >= max addr t.heap_base then
      for i = first to index t last_addr do
        f i
      done
  end

let paint t ~addr ~len = iter_granules t ~addr ~len (fun i -> set t i true)
let clear t ~addr ~len = iter_granules t ~addr ~len (fun i -> set t i false)
let bitmap_bytes t = Bytes.length t.bits
let painted_granules t = t.painted
