type space = Exec | Data
type t = Unsealed | Sealed of space * int

let unsealed = Unsealed

let v space n =
  if n < 1 || n > 7 then invalid_arg "Otype.v: value must be in 1..7";
  Sealed (space, n)

let is_unsealed = function Unsealed -> true | Sealed _ -> false
let space = function Unsealed -> None | Sealed (sp, _) -> Some sp
let value = function Unsealed -> 0 | Sealed (_, n) -> n
let of_bits space bits =
  match bits land 7 with 0 -> Unsealed | n -> Sealed (space, n)

let equal a b =
  match (a, b) with
  | Unsealed, Unsealed -> true
  | Sealed (sa, na), Sealed (sb, nb) -> sa = sb && na = nb
  | Unsealed, Sealed _ | Sealed _, Unsealed -> false

let pp fmt = function
  | Unsealed -> Format.pp_print_string fmt "unsealed"
  | Sealed (Exec, n) -> Format.fprintf fmt "exec:%d" n
  | Sealed (Data, n) -> Format.fprintf fmt "data:%d" n

type sentry =
  | Sentry_inherit
  | Sentry_enable
  | Sentry_disable
  | Sentry_ret_enable
  | Sentry_ret_disable

let sentry_otype = function
  | Sentry_inherit -> Sealed (Exec, 1)
  | Sentry_enable -> Sealed (Exec, 2)
  | Sentry_disable -> Sealed (Exec, 3)
  | Sentry_ret_enable -> Sealed (Exec, 4)
  | Sentry_ret_disable -> Sealed (Exec, 5)

let sentry_of_otype = function
  | Sealed (Exec, 1) -> Some Sentry_inherit
  | Sealed (Exec, 2) -> Some Sentry_enable
  | Sealed (Exec, 3) -> Some Sentry_disable
  | Sealed (Exec, 4) -> Some Sentry_ret_enable
  | Sealed (Exec, 5) -> Some Sentry_ret_disable
  | Unsealed | Sealed _ -> None

let return_sentry ~interrupts_enabled =
  if interrupts_enabled then Sentry_ret_enable else Sentry_ret_disable

let first_sw_exec = 6
let first_sw_data = 1
