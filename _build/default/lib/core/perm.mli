(** Capability permissions (paper Table 1) and their 6-bit compressed
    encoding (paper Fig. 2).

    CHERIoT revises the CHERI permission ontology down to twelve
    architectural permissions and compresses them into six bits using six
    encoding {e formats}, each of which implies some permissions and
    encodes the optional ones that make sense given the implied set.
    Useless combinations (e.g. execute + store, violating W^X) are not
    representable at all. *)

(** The twelve architectural permissions. *)
type t =
  | GL  (** Global: may be stored via capabilities lacking SL. *)
  | LD  (** Load data through this capability. *)
  | SD  (** Store data through this capability. *)
  | MC  (** Memory capability: loads/stores of capabilities (with LD/SD). *)
  | SL  (** Store local: stores of non-global capabilities. *)
  | LG  (** Load global: loaded caps keep GL; cleared recursively. *)
  | LM  (** Load mutable: loaded caps keep SD/LM; cleared recursively. *)
  | EX  (** Execute: instruction fetch. *)
  | SR  (** System registers: access to special capability registers. *)
  | SE  (** Seal with otypes in bounds. *)
  | US  (** Unseal with otypes in bounds. *)
  | U0  (** User permission 0: software-defined. *)

val all : t list
(** All twelve permissions, in architectural bit order. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Sets of permissions, used as the [perms] field of a capability. *)
module Set : sig
  type perm := t

  type t
  (** An immutable set of permissions. *)

  val empty : t
  val of_list : perm list -> t
  val to_list : t -> perm list
  val mem : perm -> t -> bool
  val add : perm -> t -> t
  val remove : perm -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val cardinal : t -> int
  val pp : Format.formatter -> t -> unit

  val to_arch_bits : t -> int
  (** 12-bit uncompressed architectural view, with the permissions most
      commonly cleared (GL, LG, LM, SD) in the lowest bits so that masks
      for clearing them fit a single compressed RISC-V instruction
      (paper 3.2.1). *)

  val of_arch_bits : int -> t
end

(** {1 Encoding formats} *)

(** The six compressed-permission formats of Fig. 2. *)
type format =
  | Mem_cap_rw  (** implies LD, MC, SD; optional SL, LM, LG *)
  | Mem_cap_ro  (** implies LD, MC; optional LM, LG *)
  | Mem_cap_wo  (** implies SD, MC *)
  | Mem_no_cap  (** optional LD, SD (not both absent) *)
  | Executable  (** implies EX, LD, MC; optional SR, LM, LG *)
  | Sealing  (** optional U0, SE, US *)

val format_of : Set.t -> format option
(** [format_of s] is the format that represents exactly [s], if any. *)

val decode : int -> Set.t
(** [decode bits] decompresses a 6-bit field. Total on [0, 63]. *)

val encode : Set.t -> int option
(** [encode s] is the 6-bit compressed field representing exactly [s],
    or [None] if [s] is not a representable combination. *)

val legalize : Set.t -> Set.t
(** [legalize s] is the largest representable subset of [s]: the result of
    clearing permissions via [CAndPerm], which must always yield an
    encodable set. [legalize] is idempotent and [legalize s] ⊆ [s]. *)

val encode_exn : Set.t -> int
(** [encode_exn s] = [encode (legalize s)] forced; never raises because
    legalized sets are representable. *)
