(** Object types ("otypes") and sealed-entry ("sentry") capabilities
    (paper 3.1.2 and 3.2.2).

    CHERIoT reduces the otype field to three bits and splits it into two
    disjoint namespaces of seven values each (0 denotes unsealed), selected
    by the execute permission of the sealed capability.  Five executable
    otypes are consumed by (or reserved for) sentries — sealed capabilities
    that are unsealed automatically when used as a jump target and that
    carry an interrupt-posture change — leaving two for software.  None of
    the seven data otypes has hardware significance. *)

type space = Exec | Data  (** The namespace an otype value lives in. *)

type t
(** An otype: either [unsealed] or a (space, value ∈ 1..7) pair. *)

val unsealed : t
val v : space -> int -> t
(** [v space n] is the otype [n] in [space].  Raises [Invalid_argument]
    unless [1 <= n <= 7]. *)

val is_unsealed : t -> bool
val space : t -> space option
(** [space o] is [None] for [unsealed]. *)

val value : t -> int
(** The raw 3-bit field value (0 for unsealed). *)

val of_bits : space -> int -> t
(** [of_bits space bits] decodes a raw 3-bit field. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Sentries}

    The five reserved executable otypes. *)

type sentry =
  | Sentry_inherit  (** jump target; no change to interrupt posture *)
  | Sentry_enable  (** jump target; enables interrupts *)
  | Sentry_disable  (** jump target; disables interrupts *)
  | Sentry_ret_enable  (** return sentry; restores interrupts-enabled *)
  | Sentry_ret_disable  (** return sentry; restores interrupts-disabled *)

val sentry_otype : sentry -> t
val sentry_of_otype : t -> sentry option
(** [sentry_of_otype o] is the sentry kind encoded by [o], if [o] is one
    of the five reserved executable otypes. *)

val return_sentry : interrupts_enabled:bool -> sentry
(** The return sentry that restores the given posture — what a
    jump-and-link writes to the link register (3.1.2). *)

(** First executable otype value available to software (two are free). *)
val first_sw_exec : int

(** First data otype value; all seven are free for software, of which the
    RTOS allocates four for core components. *)
val first_sw_data : int
