lib/core/bounds.ml: Format
