lib/core/capability.ml: Bounds Format Int64 Option Otype Perm
