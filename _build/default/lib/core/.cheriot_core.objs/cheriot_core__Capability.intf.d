lib/core/capability.mli: Bounds Format Otype Perm
