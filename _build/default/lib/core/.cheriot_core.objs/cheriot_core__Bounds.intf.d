lib/core/bounds.mli: Format
