lib/core/otype.ml: Format
