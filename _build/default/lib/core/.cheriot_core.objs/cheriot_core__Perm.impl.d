lib/core/perm.ml: Format Int List
