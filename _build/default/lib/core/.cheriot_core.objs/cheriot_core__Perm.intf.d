lib/core/perm.mli: Format
