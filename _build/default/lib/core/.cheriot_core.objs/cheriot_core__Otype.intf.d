lib/core/otype.mli: Format
