(** CHERIoT capabilities (paper 3.2, Fig. 1).

    A capability is a 64-bit value — a 32-bit address plus a 32-bit
    metadata word laid out as

    {v 31  30..25  24..22  21..18  17..9  8..0
        R    p'6     o'3     E'4    B'9    T'9   v}

    — together with an out-of-band validity {e tag}.  All manipulation is
    {e guarded}: bounds may be narrowed but never widened nor displaced,
    permissions shed but never regained, and tags cleared but never set
    (except by deriving from a tagged capability).  The three hardware
    roots (memory-rw, executable, sealing) are the only initially tagged
    values. *)

type t = {
  tag : bool;
  perms : Perm.Set.t;  (** always a representable (legalized) set *)
  otype : Otype.t;
  bounds : Bounds.t;
  addr : int;  (** 32-bit address *)
  reserved : bool;  (** the R bit of Fig. 1; unused, preserved *)
}

(** {1 Construction} *)

val null : t
(** The untagged all-zeros capability (the [cnull] register value). *)

val root_mem_rw : t
(** Memory read-write root: whole address space, GL LD SD MC SL LM LG. *)

val root_executable : t
(** Executable root: whole address space, GL EX LD MC SR LM LG. *)

val root_sealing : t
(** Sealing root: otype space [0,8), GL U0 SE US. *)

val roots : t list
(** The three roots present in registers at CPU reset (3.1.1). *)

(** {1 Accessors} *)

val address : t -> int
val base : t -> int
val top : t -> int
(** Decoded top; a 33-bit value, possibly 2{^ 32}. *)

val length : t -> int
(** [max 0 (top - base)]. *)

val perms : t -> Perm.Set.t
val has_perm : t -> Perm.t -> bool
val otype : t -> Otype.t
val is_sealed : t -> bool
val is_sentry : t -> bool
val sentry_kind : t -> Otype.sentry option

val is_global : t -> bool
(** Has the GL permission — may be stored through non-SL capabilities. *)

val in_bounds : t -> ?size:int -> int -> bool
(** [in_bounds c ~size a]: is the access [[a, a+size)] within bounds?
    [size] defaults to 1. *)

(** {1 Guarded manipulation}

    These functions implement the value-level semantics of the
    capability-manipulation instructions.  They never widen authority:
    when a requested change would, the result's tag is cleared (matching
    the ISA behaviour for non-trapping violations; trapping checks live in
    the ISA layer). *)

val with_address : t -> int -> t
(** [CSetAddr]: change the address.  Clears the tag if the capability is
    sealed or if the new address is not representable (3.2.3). *)

val incr_address : t -> int -> t
(** [CIncAddr]: add an offset to the address; same tag-clearing rules. *)

val set_bounds : t -> length:int -> exact:bool -> t
(** [CSetBounds[Exact]]: narrow bounds to [[addr, addr+length)] (rounded
    outward unless [exact]).  Clears the tag if the capability is sealed,
    the requested region is not within current bounds, or ([exact]) the
    region is not exactly representable. *)

val and_perms : t -> Perm.Set.t -> t
(** [CAndPerm]: intersect permissions with a mask, then legalize to the
    largest representable subset (3.2.1).  Clears the tag if sealed and
    the mask would change the permissions. *)

val clear_tag : t -> t

val clear_perms : t -> Perm.t list -> t
(** Convenience: [and_perms] with the complement of the given list. *)

val seal : t -> key:t -> (t, string) result
(** [CSeal]: seal [t] with the otype named by [key]'s address.  Requires
    [key] tagged, unsealed, with SE, address in bounds and a valid otype
    value (1–7); the otype namespace is chosen by [t]'s EX permission. *)

val unseal : t -> key:t -> (t, string) result
(** [CUnseal]: requires [key] tagged, unsealed, with US, address in bounds
    and equal to [t]'s otype value in the matching namespace.  The result
    keeps GL only if [key] has GL. *)

val seal_sentry : t -> Otype.sentry -> (t, string) result
(** Seal an executable capability as a sentry (no key: performed by the
    jump-and-link datapath and by the loader). *)

val load_attenuate : authority:t -> t -> t
(** The load-side recursive attenuation of 3.1.1: a capability loaded via
    an authority lacking LG has GL and LG cleared; via an authority
    lacking LM (if unsealed) has LM and SD cleared. *)

val is_subset : t -> of_:t -> bool
(** [CTestSubset]: tag equal, bounds nested and permissions included. *)

(** {1 Encoding} *)

val to_word : t -> int64
(** Pack to the 64-bit memory representation: metadata word (Fig. 1) in
    bits 63–32, address in bits 31–0.  The tag travels out of band. *)

val of_word : tag:bool -> int64 -> t
(** Decode a 64-bit memory word.  Total: every bit pattern decodes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
