examples/iot_device.ml: Array Cheriot_rtos Cheriot_workloads Format Sys
