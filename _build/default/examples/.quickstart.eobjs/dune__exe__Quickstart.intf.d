examples/quickstart.mli:
