examples/heap_temporal_safety.ml: Capability Cheriot_core Cheriot_mem Cheriot_rtos Cheriot_uarch Fmt Format
