examples/compartment_isolation.mli:
