examples/compartment_isolation.ml: Asm Capability Cheriot_core Cheriot_isa Cheriot_mem Cheriot_rtos Format Insn List Machine
