examples/iot_device.mli:
