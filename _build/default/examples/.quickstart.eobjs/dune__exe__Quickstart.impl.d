examples/quickstart.ml: Asm Bounds Capability Cheriot_core Cheriot_isa Cheriot_mem Format Insn List Machine
