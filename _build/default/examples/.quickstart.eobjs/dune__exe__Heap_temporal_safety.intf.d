examples/heap_temporal_safety.mli:
