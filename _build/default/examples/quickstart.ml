(* Quickstart: the CHERIoT capability model in five minutes.

   Builds capabilities from the reset roots, derives attenuated views,
   shows the 64-bit encoding, seals an object, and runs a small program
   on the ISA emulator that trips a bounds check.

   Run with:  dune exec examples/quickstart.exe *)

open Cheriot_core
open Cheriot_isa

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== 1. The three reset roots (paper 3.1.1) ==";
  List.iter (fun c -> say "  %a" Capability.pp c) Capability.roots;

  say "";
  say "== 2. Guarded manipulation: narrow, never widen ==";
  let obj = Capability.with_address Capability.root_mem_rw 0x2000_0000 in
  let obj = Capability.set_bounds obj ~length:64 ~exact:true in
  say "  a 64-byte object:        %a" Capability.pp obj;
  let ro = Capability.clear_perms obj [ SD; SL; LM ] in
  say "  read-only view:          %a" Capability.pp ro;
  let widened = Capability.set_bounds ro ~length:4096 ~exact:false in
  say "  widening attempt:        %a   <- tag cleared!" Capability.pp widened;

  say "";
  say "== 3. The 64-bit encoding (Fig. 1): metadata | address ==";
  say "  %a" Capability.pp obj;
  say "  encodes to 0x%Lx (tag travels out of band)" (Capability.to_word obj);
  let back = Capability.of_word ~tag:true (Capability.to_word obj) in
  say "  decodes back identically: %b" (Capability.equal obj back);

  say "";
  say "== 4. Large objects round to representable bounds (3.2.3) ==";
  List.iter
    (fun len ->
      say "  request %7d -> CRRL %7d bytes, alignment mask 0x%08x" len
        (Bounds.crrl len) (Bounds.cram len))
    [ 100; 511; 512; 5000; 1 lsl 20 ];

  say "";
  say "== 5. Sealing: opaque references (2.4) ==";
  let key = Capability.with_address Capability.root_sealing 3 in
  (match Capability.seal obj ~key with
  | Ok sealed ->
      say "  sealed with otype 3:      %a" Capability.pp sealed;
      let poked = Capability.incr_address sealed 8 in
      say "  tamper attempt:           %a   <- tag cleared!" Capability.pp
        poked;
      (match Capability.unseal sealed ~key with
      | Ok c -> say "  unsealed with the key:    %a" Capability.pp c
      | Error e -> say "  unseal failed: %s" e)
  | Error e -> say "  seal failed: %s" e);

  say "";
  say "== 6. A program on the emulator: bounds checks in hardware ==";
  let bus = Cheriot_mem.Bus.create () in
  let sram = Cheriot_mem.Sram.create ~base:0x1_0000 ~size:0x1000 in
  Cheriot_mem.Bus.add_sram bus sram;
  let program =
    [
      (* c4 (set up below) points at a 16-byte buffer; walk off its end *)
      Asm.I (Insn.Op_imm (Add, Insn.reg_t0, 0, 0));
      Asm.Label "loop";
      Asm.I
        (Insn.Store
           { width = W; rs2 = Insn.reg_t0; rs1 = 4; off = 0 });
      Asm.I (Insn.Cincaddrimm (4, 4, 4));
      Asm.I (Insn.Op_imm (Add, Insn.reg_t0, Insn.reg_t0, 1));
      Asm.J (0, "loop");
    ]
  in
  let img = Asm.assemble ~origin:0x1_0000 program in
  Asm.load img sram;
  let m = Machine.create bus in
  m.Machine.pcc <-
    Capability.(
      set_bounds (with_address root_executable 0x1_0000) ~length:0x100
        ~exact:false);
  Machine.set_reg m 4
    Capability.(
      set_bounds (with_address root_mem_rw 0x1_0800) ~length:16 ~exact:true);
  (match Machine.run ~fuel:1000 m with
  | Machine.Step_double_fault, steps ->
      say "  after %d instructions (4 stores OK), the 5th store trapped:"
        steps;
      say "  mcause=%d (CHERI fault), cause code 0x%02x = bounds violation"
        m.Machine.mcause
        (m.Machine.mtval lsr 5);
      say "  t0 reached %d -- exactly the buffer's 4 words, never a byte more"
        (Machine.reg_int m Insn.reg_t0)
  | _ -> say "  unexpected result");
  say "";
  say "Next: examples/heap_temporal_safety.exe and \
       examples/compartment_isolation.exe"
