(* The end-to-end IoT device of paper 7.2.3.

   A compartmentalized network stack (TCP/IP, TLS, MQTT), a JavaScript
   interpreter animating LEDs every 10 ms, every packet and JS object a
   temporally-safe heap allocation, on CHERIoT-Ibex at 20 MHz.

   Run with:  dune exec examples/iot_device.exe [seconds]        *)

module Iot_app = Cheriot_workloads.Iot_app
module Allocator = Cheriot_rtos.Allocator

let () =
  let seconds =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 10.0
  in
  Format.printf "Booting the IoT device (Ibex @ 20 MHz)...@.";
  Format.printf
    "  compartments: tcpip | tls | mqtt | microvium | allocator@.";
  Format.printf "  TLS session establishment + JS bytecode fetch, then %.0fs \
                 of steady state@."
    seconds;
  let r = Iot_app.run ~seconds () in
  Format.printf "@.--- after %.1f simulated seconds ---@." r.Iot_app.seconds;
  Format.printf "  CPU load        : %5.1f %%   (paper, over 60s: 17.5%%)@."
    r.Iot_app.cpu_load_percent;
  Format.printf "  idle thread     : %5.1f %%   (paper: 82.5%%)@."
    r.Iot_app.idle_percent;
  Format.printf "  JS frames       : %d (every 10 ms)@." r.Iot_app.js_ticks;
  Format.printf "  network packets : %d (each its own quarantined heap \
                 allocation)@."
    r.Iot_app.packets;
  Format.printf "  heap allocations: %d@." r.Iot_app.allocations;
  Format.printf "  revocation sweeps by the background engine: %d@."
    r.Iot_app.sweeps;
  Format.printf "  context switches: %d@." r.Iot_app.context_switches;
  Format.printf "@.With the software revoker instead:@.";
  let sw = Iot_app.run ~seconds ~temporal:Allocator.Software () in
  Format.printf "  CPU load        : %5.1f %% (sweeps on the CPU: %d)@."
    sw.Iot_app.cpu_load_percent sw.Iot_app.sweeps;
  Format.printf
    "@.Even the area-optimized core at 20 MHz runs this workload with \
     plenty of headroom -- full memory safety included (7.2.3).@."
