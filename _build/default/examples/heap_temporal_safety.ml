(* Heap temporal safety, end to end (paper 3.3, 5.1).

   A use-after-free attack against the quarantining allocator, with the
   hardware load filter and the background revoker: the stale pointer is
   dead before the memory can ever be reused.  The same attack is then
   replayed against the Baseline configuration to show what the paper's
   mechanisms are eliminating.

   Run with:  dune exec examples/heap_temporal_safety.exe *)

open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Core_model = Cheriot_uarch.Core_model
module Revoker = Cheriot_uarch.Revoker
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator

let say fmt = Format.printf (fmt ^^ "@.")
let heap_base = 0x8_0000
let heap_size = 64 * 1024

let make temporal =
  let clock = Clock.create (Core_model.params_of Core_model.Ibex) in
  let sram = Sram.create ~base:heap_base ~size:heap_size in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc =
    Allocator.create ~temporal ~sram ~rev ~clock ~heap_base ~heap_size ()
  in
  (match temporal with
  | Allocator.Hardware ->
      let hw = Revoker.create ~core:Core_model.Ibex ~sram ~rev () in
      Clock.attach_revoker clock hw;
      Allocator.attach_hw_revoker alloc hw
  | _ -> ());
  (alloc, sram, rev)

let ok = function
  | Ok v -> v
  | Error e -> Fmt.failwith "%a" Allocator.pp_error e

let () =
  say "== A use-after-free attack vs CHERIoT (Hardware revoker) ==";
  let alloc, sram, rev = make Allocator.Hardware in
  let session = ok (Allocator.malloc alloc 48) in
  say "  victim allocates a session object:  %a" Capability.pp session;
  Sram.write32 sram (Capability.base session) 0xC0FFEE;
  (* The attacker keeps a copy of the pointer in long-lived heap memory. *)
  let stash = ok (Allocator.malloc alloc 16) in
  Sram.write_cap sram (Capability.base stash)
    (session.Capability.tag, Capability.to_word session);
  say "  attacker stashes a copy of the pointer in the heap";
  ok (Allocator.free alloc session);
  say "  victim frees the object:";
  say "    - revocation bit painted: %b"
    (Revbits.is_revoked rev (Capability.base session));
  say "    - memory zeroed, chunk quarantined (not on the free lists)";
  (* Even before any sweep, the load filter kills the stale copy at load
     time: the revocation bit of its base is set (3.3.2). *)
  let tag, word = Sram.read_cap sram (Capability.base stash) in
  let reloaded = Capability.of_word ~tag word in
  let filtered =
    if Revbits.is_revoked rev (Capability.base reloaded) then
      Capability.clear_tag reloaded
    else reloaded
  in
  say "  attacker reloads the stashed pointer through the load filter:";
  say "    %a   <- tag stripped at load, before writeback" Capability.pp
    filtered;
  (* And the sweep invalidates every copy still in memory. *)
  Allocator.revoke_now alloc;
  say "  background revoker sweep completes (epoch %d):"
    (Allocator.epoch alloc);
  say "    stashed copy in memory now untagged: %b"
    (not (Sram.tag_at sram (Capability.base stash)));
  let fresh = ok (Allocator.malloc alloc 48) in
  say "  only now can the memory be reissued:  %a" Capability.pp fresh;
  say "  => UAF is impossible from the moment free() returns (5.1)";

  say "";
  say "== Double free and partial free are caught by the bitmap ==";
  (match Allocator.free alloc fresh with
  | Ok () -> (
      match Allocator.free alloc fresh with
      | Error e -> say "  second free of the same pointer: %a" Allocator.pp_error e
      | Ok () -> say "  BUG: double free accepted")
  | Error e -> say "  unexpected: %a" Allocator.pp_error e);
  let obj = ok (Allocator.malloc alloc 64) in
  let interior =
    Capability.set_bounds (Capability.incr_address obj 16) ~length:8
      ~exact:true
  in
  (match Allocator.free alloc interior with
  | Error e -> say "  free of an interior pointer:     %a" Allocator.pp_error e
  | Ok () -> say "  BUG: partial free accepted");

  say "";
  say "== The same attack vs the Baseline (no temporal safety) ==";
  let alloc, sram, _rev = make Allocator.Baseline in
  let session = ok (Allocator.malloc alloc 48) in
  let victim_base = Capability.base session in
  Sram.write32 sram victim_base 0xC0FFEE;
  ok (Allocator.free alloc session);
  let recycled = ok (Allocator.malloc alloc 48) in
  say "  freed and reallocated: old base 0x%x, new base 0x%x (same: %b)"
    victim_base (Capability.base recycled)
    (victim_base = Capability.base recycled);
  Sram.write32 sram (Capability.base recycled) 0x5EC2E7;
  say "  stale pointer still tagged: %b -- the attacker reads the new \
       owner's 0x%x"
    session.Capability.tag
    (Sram.read32 sram (Capability.base session));
  say "  => the classic heap UAF the paper's mechanisms deterministically \
       eliminate"
