(* Tests for the cycle models and the background revoker engine
   (paper 3.3.3, 4). *)

open Cheriot_core
open Cheriot_uarch
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Bus = Cheriot_mem.Bus

let heap_base = 0x40000
let heap_size = 0x10000

let make () =
  let sram = Sram.create ~base:heap_base ~size:heap_size in
  let rev = Revbits.create ~heap_base ~heap_size () in
  (sram, rev)

let cap_at addr len =
  Capability.(
    set_bounds (with_address root_mem_rw addr) ~length:len ~exact:true)

let store_cap sram addr c =
  Sram.write_cap sram addr (c.Capability.tag, Capability.to_word c)

let test_sweep_invalidates_stale () =
  let sram, rev = make () in
  (* Two caps in memory: one to a freed object, one to a live object. *)
  let freed = cap_at (heap_base + 0x100) 64 in
  let live = cap_at (heap_base + 0x200) 64 in
  store_cap sram (heap_base + 0x1000) freed;
  store_cap sram (heap_base + 0x1008) live;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r ~start:heap_base ~stop:(heap_base + heap_size);
  Alcotest.(check bool) "epoch odd while sweeping" true
    (Revoker.epoch r mod 2 = 1);
  let cycles = Revoker.run_to_completion r in
  Alcotest.(check bool) "epoch even after" true (Revoker.epoch r mod 2 = 0);
  Alcotest.(check int) "one cap invalidated" 1 (Revoker.caps_invalidated r);
  Alcotest.(check bool) "stale tag cleared" false
    (Sram.tag_at sram (heap_base + 0x1000));
  Alcotest.(check bool) "live tag kept" true
    (Sram.tag_at sram (heap_base + 0x1008));
  (* Pipelined 2-stage engine: ~1 word/cycle over the whole heap. *)
  let words = heap_size / 8 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ~1 word/cycle (%d cycles for %d words)"
       cycles words)
    true
    (cycles < words + 16)

let test_pipelining_ablation () =
  (* The single-stage engine needs ~2 cycles per word (3.3.3). *)
  let sram, rev = make () in
  let r1 = Revoker.create ~pipelined:false ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r1 ~start:heap_base ~stop:(heap_base + heap_size);
  let slow = Revoker.run_to_completion r1 in
  let r2 = Revoker.create ~pipelined:true ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r2 ~start:heap_base ~stop:(heap_base + heap_size);
  let fast = Revoker.run_to_completion r2 in
  Alcotest.(check bool)
    (Printf.sprintf "2-stage ~2x faster (%d vs %d)" fast slow)
    true
    (float_of_int slow /. float_of_int fast > 1.8)

let test_ibex_bus_slower () =
  let sram, rev = make () in
  let rf = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick rf ~start:heap_base ~stop:(heap_base + heap_size);
  let flute = Revoker.run_to_completion rf in
  let ri = Revoker.create ~core:Core_model.Ibex ~sram ~rev () in
  Revoker.kick ri ~start:heap_base ~stop:(heap_base + heap_size);
  let ibex = Revoker.run_to_completion ri in
  Alcotest.(check bool)
    (Printf.sprintf "Ibex 33-bit bus ~2x slower (%d vs %d)" ibex flute)
    true
    (float_of_int ibex /. float_of_int flute > 1.8)

let test_race_snoop () =
  (* Paper 3.3.3's race: revoker loads A, app stores to A, stale word must
     not be written back.  We interleave ticks with a store to the word
     the engine has in flight. *)
  let sram, rev = make () in
  let freed = cap_at (heap_base + 0x100) 64 in
  let slot = heap_base + 0x40 in
  store_cap sram slot freed;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r ~start:heap_base ~stop:(heap_base + 0x80);
  (* Tick until the engine has loaded the slot (9th word: 8 ticks in). *)
  for _ = 1 to 9 do
    Revoker.tick r
  done;
  (* Main pipeline overwrites the word with fresh integer data. *)
  Sram.write32 sram slot 0xdeadbeef;
  Sram.write32 sram (slot + 4) 0x12345678;
  Revoker.snoop_store r slot;
  ignore (Revoker.run_to_completion r);
  (* The fresh data must survive: the engine reloaded and found an
     untagged word, so wrote nothing back. *)
  Alcotest.(check int) "fresh low word intact" 0xdeadbeef
    (Sram.read32 sram slot);
  Alcotest.(check int) "fresh high word intact" 0x12345678
    (Sram.read32 sram (slot + 4));
  Alcotest.(check bool) "at least one reload" true (Revoker.race_reloads r >= 1)

let test_mmio_interface () =
  let sram, rev = make () in
  let freed = cap_at (heap_base + 0x100) 64 in
  store_cap sram (heap_base + 0x800) freed;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  let bus = Bus.create () in
  Bus.add_sram bus sram;
  Revoker.attach r bus ~base:0x1000_0000;
  let reg n = 0x1000_0000 + n in
  Bus.write bus ~width:4 (reg 0) heap_base;
  Bus.write bus ~width:4 (reg 4) (heap_base + 0x1000);
  let epoch0 = Bus.read bus ~width:4 (reg 8) in
  Bus.write bus ~width:4 (reg 12) 1;
  Alcotest.(check int) "epoch bumped by kick" (epoch0 + 1)
    (Bus.read bus ~width:4 (reg 8));
  (* kick while sweeping: no effect *)
  Bus.write bus ~width:4 (reg 12) 1;
  Alcotest.(check int) "double kick ignored" (epoch0 + 1)
    (Bus.read bus ~width:4 (reg 8));
  ignore (Revoker.run_to_completion r);
  Alcotest.(check int) "epoch completed" (epoch0 + 2)
    (Bus.read bus ~width:4 (reg 8));
  Alcotest.(check bool) "stale invalidated" false
    (Sram.tag_at sram (heap_base + 0x800))

let test_bus_snoop_wired () =
  (* Stores through the Bus must reach the engine's snoop. *)
  let sram, rev = make () in
  let bus = Bus.create () in
  Bus.add_sram bus sram;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.attach r bus ~base:0x1000_0000;
  Revoker.kick r ~start:heap_base ~stop:(heap_base + 0x100);
  Revoker.tick r;
  Revoker.tick r;
  (* The engine now has words in flight at heap_base and heap_base+8. *)
  Bus.write bus ~width:4 heap_base 42;
  Alcotest.(check bool) "snoop saw the store" true (Revoker.race_reloads r >= 1)

(* --- core model ------------------------------------------------------- *)

let ev insn =
  {
    Cheriot_isa.Machine.ev_insn = Some insn;
    ev_taken_branch = false;
    ev_mem_bytes = 0;
    ev_is_cap_mem = false;
    ev_is_store = false;
    ev_trap = None;
  }

let test_core_model_costs () =
  let flute = Core_model.params_of Flute in
  let ibex = Core_model.params_of Ibex in
  let clc = Cheriot_isa.Insn.Clc (10, 2, 0) in
  let lw =
    Cheriot_isa.Insn.Load { signed = true; width = W; rd = 10; rs1 = 2; off = 0 }
  in
  (* Flute: 64-bit bus, filter free.  Ibex: two beats + visible filter. *)
  let c_flute_off = Core_model.cycles_of_event flute ~load_filter:false (ev clc) in
  let c_flute_on = Core_model.cycles_of_event flute ~load_filter:true (ev clc) in
  Alcotest.(check int) "Flute filter is free" c_flute_off c_flute_on;
  let c_ibex_off = Core_model.cycles_of_event ibex ~load_filter:false (ev clc) in
  let c_ibex_on = Core_model.cycles_of_event ibex ~load_filter:true (ev clc) in
  Alcotest.(check int) "Ibex filter costs one cycle" (c_ibex_off + 1) c_ibex_on;
  let w_ibex = Core_model.cycles_of_event ibex ~load_filter:true (ev lw) in
  Alcotest.(check bool) "Ibex cap load dearer than word load" true
    (c_ibex_on > w_ibex);
  let w_flute = Core_model.cycles_of_event flute ~load_filter:true (ev lw) in
  Alcotest.(check int) "Flute cap load same as word load" w_flute c_flute_on

let suite =
  [
    Alcotest.test_case "sweep invalidates stale caps" `Quick
      test_sweep_invalidates_stale;
    Alcotest.test_case "pipelining ablation (1 vs 2 stage)" `Quick
      test_pipelining_ablation;
    Alcotest.test_case "Ibex narrow bus halves sweep rate" `Quick
      test_ibex_bus_slower;
    Alcotest.test_case "store race: snoop forces reload" `Quick
      test_race_snoop;
    Alcotest.test_case "MMIO start/end/epoch/kick" `Quick test_mmio_interface;
    Alcotest.test_case "bus store snoop wired" `Quick test_bus_snoop_wired;
    Alcotest.test_case "core model costs" `Quick test_core_model_costs;
  ]
