(* Cross-layer integration: the OCaml-level allocator manages the heap
   region of a loader-built machine image, and machine code dereferences
   the capabilities it issues.  Freeing an object kills the machine-level
   access path through the architectural load filter — the full temporal
   safety story of paper 3.3 + 5.1 in one test. *)

open Cheriot_core
open Cheriot_isa
module Compartment = Cheriot_rtos.Compartment
module Loader = Cheriot_rtos.Loader
module Sram = Cheriot_mem.Sram
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator
module Sw_revoker = Cheriot_rtos.Sw_revoker
module Core_model = Cheriot_uarch.Core_model

let a0 = Insn.reg_a0
let t0 = Insn.reg_t0
let gp = Insn.reg_gp

(* The compartment loads a heap capability from its globals (slot 16,
   planted by the test) and reads through it. *)
let consumer =
  Compartment.v ~name:"consumer" ~globals_size:64
    ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
    [
      Asm.Label "main";
      Asm.I (Insn.Clc (t0, gp, 16));
      (* report the loaded tag in a1 and, if tagged, the pointee in a0 *)
      Asm.I (Insn.Cget (Tag, Insn.reg_a1, t0));
      Asm.B (Insn.Eq, Insn.reg_a1, 0, "dead");
      Asm.I (Insn.Load { signed = true; width = W; rd = a0; rs1 = t0; off = 0 });
      Asm.I Insn.Ebreak;
      Asm.Label "dead";
      Asm.Li (a0, -1);
      Asm.I Insn.Ebreak;
    ]

let setup () =
  let t = Loader.link [ consumer ] ~boot:("consumer", "main") in
  let clock = Clock.create (Core_model.params_of Core_model.Ibex) in
  let alloc =
    Allocator.create ~temporal:Allocator.Software ~sram:t.Loader.sram
      ~rev:t.Loader.rev ~clock ~heap_base:t.Loader.heap_base
      ~heap_size:t.Loader.heap_size ()
  in
  Allocator.set_sw_revoker alloc
    (Sw_revoker.create ~sram:t.Loader.sram ~rev:t.Loader.rev ~clock ());
  (t, alloc)

let plant t cap =
  let b = Loader.find t "consumer" in
  Sram.write_cap t.Loader.sram
    (b.Loader.globals_base + 16)
    (cap.Capability.tag, Capability.to_word cap)

let run_consumer t =
  (* restart the boot thread at its entry *)
  let b = Loader.find t "consumer" in
  let m = t.Loader.machine in
  m.Machine.pcc <- Capability.with_address b.Loader.code_cap
      (Asm.label b.Loader.image "main");
  Machine.set_reg m gp b.Loader.globals_cap;
  match Machine.run ~fuel:10_000 m with
  | Machine.Step_halted, _ ->
      (Machine.reg_int m a0, Machine.reg_int m Insn.reg_a1)
  | _ -> Alcotest.fail "consumer did not halt"

let test_live_then_freed () =
  let t, alloc = setup () in
  let obj =
    match Allocator.malloc alloc 32 with
    | Ok c -> c
    | Error e -> Alcotest.failf "malloc: %a" Allocator.pp_error e
  in
  Sram.write32 t.Loader.sram (Capability.base obj) 0xbeef;
  plant t obj;
  let v, tag = run_consumer t in
  Alcotest.(check int) "live object readable from machine code" 0xbeef v;
  Alcotest.(check int) "tag present" 1 tag;
  (* free it: the planted capability's granule is painted, so the very
     next machine-level clc strips the tag -- before any sweep runs *)
  (match Allocator.free alloc obj with
  | Ok () -> ()
  | Error e -> Alcotest.failf "free: %a" Allocator.pp_error e);
  let v2, tag2 = run_consumer t in
  Alcotest.(check int) "load filter killed the stale cap" 0 tag2;
  Alcotest.(check int) "dead path taken" 0xFFFFFFFF v2

let test_filter_off_ablation () =
  (* With the load filter disabled (the hardware ablation), the stale
     capability would still load -- quantifying what the filter buys. *)
  let t, alloc = setup () in
  t.Loader.machine.Machine.load_filter <- false;
  let obj =
    match Allocator.malloc alloc 32 with
    | Ok c -> c
    | Error e -> Alcotest.failf "malloc: %a" Allocator.pp_error e
  in
  plant t obj;
  (match Allocator.free alloc obj with Ok () -> () | Error _ -> ());
  let _, tag = run_consumer t in
  Alcotest.(check int) "without the filter the stale cap survives" 1 tag

let test_heap_cap_covers_heap () =
  let t, _ = setup () in
  let h = Loader.heap_cap t in
  Alcotest.(check bool) "tagged" true h.Capability.tag;
  Alcotest.(check int) "base" t.Loader.heap_base (Capability.base h);
  Alcotest.(check int) "len" t.Loader.heap_size (Capability.length h);
  Alcotest.(check bool) "no SL" false (Capability.has_perm h SL)

let test_trace_records () =
  let t, _ = setup () in
  let entries = ref 0 in
  let result, steps =
    Trace.run t.Loader.machine ~fuel:1000 ~f:(fun e ->
        incr entries;
        (* every entry renders *)
        ignore (Fmt.str "%a" Trace.pp_entry e))
  in
  Alcotest.(check bool) "halted" true (result = Machine.Step_halted);
  Alcotest.(check int) "one entry per step" steps !entries

let suite =
  [
    Alcotest.test_case "allocator caps usable from machine code; free kills"
      `Quick test_live_then_freed;
    Alcotest.test_case "load-filter-off ablation" `Quick
      test_filter_off_ablation;
    Alcotest.test_case "loader heap capability" `Quick
      test_heap_cap_covers_heap;
    Alcotest.test_case "tracer records every step" `Quick test_trace_records;
  ]
