(* Tests for the virtualized sealing service (paper 3.2.2 footnote 5):
   unbounded software otypes bootstrapped from one hardware otype, with
   temporal safety covering sealed objects. *)

open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Core_model = Cheriot_uarch.Core_model
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator
module Sw_revoker = Cheriot_rtos.Sw_revoker
module Seal = Cheriot_rtos.Sealing_service

let heap_base = 0x8_0000
let heap_size = 32 * 1024
let keys_base = 0x7_0000

let make () =
  let clock = Clock.create (Core_model.params_of Core_model.Flute) in
  let sram = Sram.create ~base:keys_base ~size:(heap_base + heap_size - keys_base) in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc =
    Allocator.create ~temporal:Allocator.Software ~sram ~rev ~clock ~heap_base
      ~heap_size ()
  in
  Allocator.set_sw_revoker alloc (Sw_revoker.create ~sram ~rev ~clock ());
  let svc = Seal.create ~alloc ~sram ~key_space_base:keys_base ~max_keys:64 in
  (svc, sram, rev, alloc)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sealing: %a" Seal.pp_error e

let test_roundtrip () =
  let svc, sram, _, _ = make () in
  let key = ok (Seal.new_key svc) in
  let handle, payload = ok (Seal.seal_alloc svc ~key 32) in
  Alcotest.(check bool) "handle sealed" true (Capability.is_sealed handle);
  Alcotest.(check int) "payload size" 32 (Capability.length payload);
  Sram.write32 sram (Capability.base payload) 0xfeed;
  let got = ok (Seal.unseal svc ~key handle) in
  Alcotest.(check int) "same object" (Capability.base payload)
    (Capability.base got);
  Alcotest.(check int) "contents reachable" 0xfeed
    (Sram.read32 sram (Capability.base got))

let test_keys_are_distinct () =
  let svc, _, _, _ = make () in
  let k1 = ok (Seal.new_key svc) in
  let k2 = ok (Seal.new_key svc) in
  let handle, _ = ok (Seal.seal_alloc svc ~key:k1 16) in
  (match Seal.unseal svc ~key:k2 handle with
  | Error Seal.Wrong_key -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Seal.pp_error e
  | Ok _ -> Alcotest.fail "unsealed with the wrong key");
  (* the right key still works *)
  ignore (ok (Seal.unseal svc ~key:k1 handle))

let test_forged_key_rejected () =
  let svc, _, _, _ = make () in
  let key = ok (Seal.new_key svc) in
  let handle, _ = ok (Seal.seal_alloc svc ~key 16) in
  (* an attacker-made "key": right shape, wrong provenance *)
  let fake =
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw 0x1000)
      ~length:8 ~exact:true
  in
  (match Seal.unseal svc ~key:fake handle with
  | Error Seal.Wrong_key -> ()
  | _ -> Alcotest.fail "forged key accepted");
  (* an untagged copy of the real key *)
  (match Seal.unseal svc ~key:(Capability.clear_tag key) handle with
  | Error Seal.Wrong_key -> ()
  | _ -> Alcotest.fail "untagged key accepted")

let test_handle_is_opaque () =
  let svc, _, _, _ = make () in
  let key = ok (Seal.new_key svc) in
  let handle, _ = ok (Seal.seal_alloc svc ~key 16) in
  (* tampering clears the tag (2.3 guarantee 8) *)
  let moved = Capability.incr_address handle 4 in
  Alcotest.(check bool) "tamper kills tag" false moved.Capability.tag;
  (match Seal.unseal svc ~key moved with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered handle accepted");
  (* a plain (unsealed) cap is not a handle *)
  let plain =
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw heap_base)
      ~length:24 ~exact:true
  in
  match Seal.unseal svc ~key plain with
  | Error Seal.Not_a_sealed_object -> ()
  | _ -> Alcotest.fail "plain cap accepted as handle"

let test_destroy_and_revocation () =
  let svc, _, rev, alloc = make () in
  let key = ok (Seal.new_key svc) in
  let handle, payload = ok (Seal.seal_alloc svc ~key 24) in
  (match Seal.destroy svc ~key handle with
  | Ok () -> ()
  | Error e -> Alcotest.failf "destroy: %a" Seal.pp_error e);
  (* the object is quarantined and painted: the payload is dead memory *)
  Alcotest.(check bool) "payload revoked" true
    (Revbits.is_revoked rev (Capability.base payload));
  Allocator.revoke_now alloc;
  (* destroying again must fail (handle's referent is gone) *)
  (match Seal.unseal svc ~key handle with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unseal after destroy succeeded");
  match Allocator.check_invariants alloc with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_many_software_otypes () =
  (* far more distinct opaque types than the 3-bit hardware field *)
  let svc, _, _, _ = make () in
  let keys = List.init 48 (fun _ -> ok (Seal.new_key svc)) in
  let objs = List.map (fun k -> (k, ok (Seal.seal_alloc svc ~key:k 8))) keys in
  List.iteri
    (fun i (k, (h, _)) ->
      ignore (ok (Seal.unseal svc ~key:k h));
      (* every other key fails on this handle *)
      List.iteri
        (fun j k' ->
          if i <> j then
            match Seal.unseal svc ~key:k' h with
            | Error Seal.Wrong_key -> ()
            | _ -> Alcotest.fail "cross-key unseal")
        keys)
    objs

let suite =
  [
    Alcotest.test_case "seal/unseal roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "keys are distinct" `Quick test_keys_are_distinct;
    Alcotest.test_case "forged/untagged keys rejected" `Quick
      test_forged_key_rejected;
    Alcotest.test_case "handles are opaque" `Quick test_handle_is_opaque;
    Alcotest.test_case "destroy quarantines; revocation applies" `Quick
      test_destroy_and_revocation;
    Alcotest.test_case "48 software otypes from one hw otype" `Quick
      test_many_software_otypes;
  ]
