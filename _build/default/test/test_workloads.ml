(* Tests for the evaluation workloads: the CoreMark-shaped suite
   (Table 3), the allocation microbenchmark (Table 4 / Figs 5-6) and the
   IoT application (7.2.3).  These check the qualitative claims of the
   paper's evaluation — who wins, and in which direction each mechanism
   moves the numbers — not absolute values. *)

module Core_model = Cheriot_uarch.Core_model
module Coremark = Cheriot_workloads.Coremark
module Alloc_bench = Cheriot_workloads.Alloc_bench
module Iot_app = Cheriot_workloads.Iot_app
module Allocator = Cheriot_rtos.Allocator

let cm ?(iterations = 3) core ~cheri ~filter =
  Coremark.run ~iterations (Core_model.config ~cheri ~load_filter:filter core)

let test_coremark_checksums_agree () =
  (* The capability build must compute exactly what the baseline does:
     source-level compatibility (paper 1). *)
  let rs =
    [
      cm Flute ~cheri:false ~filter:false;
      cm Flute ~cheri:true ~filter:false;
      cm Flute ~cheri:true ~filter:true;
      cm Ibex ~cheri:false ~filter:false;
      cm Ibex ~cheri:true ~filter:true;
    ]
  in
  match rs with
  | r0 :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int) "checksum" r0.Coremark.checksum
            r.Coremark.checksum)
        rest
  | [] -> assert false

let test_coremark_table3_shape () =
  let f_base = cm Flute ~cheri:false ~filter:false in
  let f_caps = cm Flute ~cheri:true ~filter:false in
  let f_filt = cm Flute ~cheri:true ~filter:true in
  let i_base = cm Ibex ~cheri:false ~filter:false in
  let i_caps = cm Ibex ~cheri:true ~filter:false in
  let i_filt = cm Ibex ~cheri:true ~filter:true in
  (* capabilities cost cycles on both cores *)
  Alcotest.(check bool) "Flute caps slower" true
    (f_caps.Coremark.cycles > f_base.Coremark.cycles);
  Alcotest.(check bool) "Ibex caps slower" true
    (i_caps.Coremark.cycles > i_base.Coremark.cycles);
  (* the load filter is free on Flute (hidden in the pipeline, Fig. 4) *)
  Alcotest.(check int) "Flute filter free" f_caps.Coremark.cycles
    f_filt.Coremark.cycles;
  (* ... and visible on Ibex (extra load-to-use on clc) *)
  Alcotest.(check bool) "Ibex filter costs" true
    (i_filt.Coremark.cycles > i_caps.Coremark.cycles);
  (* Ibex pays proportionally more for capabilities (narrow bus) *)
  let ovh c b =
    float_of_int (c.Coremark.cycles - b.Coremark.cycles)
    /. float_of_int b.Coremark.cycles
  in
  Alcotest.(check bool) "Ibex caps overhead > Flute's" true
    (ovh i_caps i_base > ovh f_caps f_base);
  (* instruction counts: same binary shape per ISA across cores *)
  Alcotest.(check int) "insns core-independent"
    f_caps.Coremark.instructions i_caps.Coremark.instructions

let test_coremark_deterministic () =
  let a = cm Flute ~cheri:true ~filter:true in
  let b = cm Flute ~cheri:true ~filter:true in
  Alcotest.(check int) "cycles deterministic" a.Coremark.cycles
    b.Coremark.cycles

(* Smaller total so the property tests stay fast; the shapes hold at any
   churn volume. *)
let ab ?(total = 128 * 1024) core temporal hwm ~size =
  Alloc_bench.run ~total { Alloc_bench.core; temporal; hwm } ~size

let test_alloc_bench_ordering () =
  List.iter
    (fun size ->
      let base = ab Core_model.Flute Allocator.Baseline false ~size in
      let meta = ab Core_model.Flute Allocator.Metadata false ~size in
      let sw = ab Core_model.Flute Allocator.Software false ~size in
      let hw = ab Core_model.Flute Allocator.Hardware false ~size in
      Alcotest.(check bool)
        (Printf.sprintf "size %d: metadata costs more than baseline" size)
        true
        (meta.Alloc_bench.cycles >= base.Alloc_bench.cycles);
      Alcotest.(check bool)
        (Printf.sprintf "size %d: software >= metadata" size)
        true
        (sw.Alloc_bench.cycles >= meta.Alloc_bench.cycles);
      Alcotest.(check bool)
        (Printf.sprintf "size %d: hardware revoker beats software" size)
        true
        (hw.Alloc_bench.cycles <= sw.Alloc_bench.cycles))
    [ 64; 1024; 16384 ]

let test_alloc_bench_hwm_helps_small () =
  let base = ab Core_model.Flute Allocator.Baseline false ~size:32 in
  let hwm = ab Core_model.Flute Allocator.Baseline true ~size:32 in
  let saving =
    float_of_int (base.Alloc_bench.cycles - hwm.Alloc_bench.cycles)
    /. float_of_int base.Alloc_bench.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "HWM saves ~10%% at 32B (got %.1f%%)" (100. *. saving))
    true
    (saving > 0.04 && saving < 0.2)

let test_alloc_bench_revocation_dominates_large () =
  let sw = ab Core_model.Flute Allocator.Software false ~size:65536 ~total:(256 * 1024) in
  Alcotest.(check bool) "sweeps happen" true (sw.Alloc_bench.sweeps > 0);
  Alcotest.(check bool) "revocation dominates at 64KiB" true
    (float_of_int sw.Alloc_bench.sweep_cycles
    > 0.5 *. float_of_int sw.Alloc_bench.cycles)

let test_alloc_bench_ibex_hwm_anomaly () =
  (* Paper 7.2.2: at 128 KiB on Ibex, Hardware+HWM is slower than
     Hardware alone — the two extra CSRs on every wait context switch. *)
  let hw = ab Core_model.Ibex Allocator.Hardware false ~size:131072 ~total:(1 lsl 20) in
  let hwm = ab Core_model.Ibex Allocator.Hardware true ~size:131072 ~total:(1 lsl 20) in
  Alcotest.(check bool)
    (Printf.sprintf "HWM slower with hw revoker at 128KiB (%d vs %d)"
       hwm.Alloc_bench.cycles hw.Alloc_bench.cycles)
    true
    (hwm.Alloc_bench.cycles > hw.Alloc_bench.cycles)

let test_alloc_bench_deterministic () =
  let a = ab Core_model.Ibex Allocator.Hardware true ~size:4096 in
  let b = ab Core_model.Ibex Allocator.Hardware true ~size:4096 in
  Alcotest.(check int) "deterministic" a.Alloc_bench.cycles b.Alloc_bench.cycles

let test_iot_app () =
  let r = Iot_app.run ~seconds:3.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "CPU load plausible (%.1f%%)" r.Iot_app.cpu_load_percent)
    true
    (r.Iot_app.cpu_load_percent > 8.0 && r.Iot_app.cpu_load_percent < 30.0);
  Alcotest.(check bool) "mostly idle" true (r.Iot_app.idle_percent > 70.0);
  Alcotest.(check bool) "js ticks ~100/s" true
    (abs (r.Iot_app.js_ticks - 300) < 30);
  Alcotest.(check bool) "packets flowed" true (r.Iot_app.packets > 10);
  let r2 = Iot_app.run ~seconds:3.0 () in
  Alcotest.(check (float 0.001)) "deterministic" r.Iot_app.cpu_load_percent
    r2.Iot_app.cpu_load_percent

let test_iot_app_software_revoker_variant () =
  (* The optional/ablation variant: same app with the software revoker
     still fits the real-time budget, just with more CPU load. *)
  let hw = Iot_app.run ~seconds:2.0 ~temporal:Allocator.Hardware () in
  let sw = Iot_app.run ~seconds:2.0 ~temporal:Allocator.Software () in
  Alcotest.(check bool) "software revoker costs more CPU" true
    (sw.Iot_app.cpu_load_percent >= hw.Iot_app.cpu_load_percent);
  Alcotest.(check bool) "still far from saturation" true
    (sw.Iot_app.cpu_load_percent < 50.0)

let suite =
  [
    Alcotest.test_case "coremark checksums agree across builds" `Quick
      test_coremark_checksums_agree;
    Alcotest.test_case "coremark Table 3 shape" `Quick
      test_coremark_table3_shape;
    Alcotest.test_case "coremark deterministic" `Quick
      test_coremark_deterministic;
    Alcotest.test_case "alloc bench config ordering" `Slow
      test_alloc_bench_ordering;
    Alcotest.test_case "HWM saves ~10% at small sizes" `Quick
      test_alloc_bench_hwm_helps_small;
    Alcotest.test_case "revocation dominates large sizes" `Quick
      test_alloc_bench_revocation_dominates_large;
    Alcotest.test_case "Ibex 128KiB HWM anomaly" `Slow
      test_alloc_bench_ibex_hwm_anomaly;
    Alcotest.test_case "alloc bench deterministic" `Quick
      test_alloc_bench_deterministic;
    Alcotest.test_case "IoT app ~17.5% CPU" `Quick test_iot_app;
    Alcotest.test_case "IoT app software-revoker variant" `Quick
      test_iot_app_software_revoker_variant;
  ]
