(* Preemptive multitasking at machine level (paper 2.6): two threads and
   the timer ISR of Sched_asm, running on the emulator under the cycle
   model.  Nobody yields voluntarily; the timer does all the work. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Sched_asm = Cheriot_rtos.Sched_asm
module Core_model = Cheriot_uarch.Core_model
module Perf = Cheriot_uarch.Perf

let code_base = 0x1_0000
let isr_base = 0x1_4000
let data_base = 0x1_8000
let blocks_base = 0x1_9000
let quantum = 400

let t0 = Insn.reg_t0
let t1 = Insn.reg_t1

(* A thread that increments its counter word forever.  c4 = counter cap. *)
let spinner = function
  | `Halt_at limit ->
      [
        Asm.Label "spin";
        Asm.I (Insn.Load { signed = true; width = W; rd = t0; rs1 = 4; off = 0 });
        Asm.I (Insn.Op_imm (Add, t0, t0, 1));
        Asm.I (Insn.Store { width = W; rs2 = t0; rs1 = 4; off = 0 });
        Asm.Li (t1, limit);
        Asm.B (Insn.Lt, t0, t1, "spin");
        Asm.I Insn.Ebreak;
      ]
  | `Forever ->
      [
        Asm.Label "spin2";
        Asm.I (Insn.Load { signed = true; width = W; rd = t0; rs1 = 4; off = 0 });
        Asm.I (Insn.Op_imm (Add, t0, t0, 1));
        Asm.I (Insn.Store { width = W; rs2 = t0; rs1 = 4; off = 0 });
        Asm.J (0, "spin2");
      ]

let make () =
  let bus = Bus.create () in
  let sram = Sram.create ~base:code_base ~size:0xA000 in
  Bus.add_sram bus sram;
  let m = Machine.create bus in
  (* thread 0 halts the system once its counter reaches the limit;
     thread 1 spins forever and relies on preemption *)
  let img0 = Asm.assemble ~origin:code_base (spinner (`Halt_at 400)) in
  let img1 = Asm.assemble ~origin:(code_base + 0x1000) (spinner `Forever) in
  let isr_img = Asm.assemble ~origin:isr_base (Sched_asm.isr ~quantum) in
  Asm.load img0 sram;
  Asm.load img1 sram;
  Asm.load isr_img sram;
  let exec base len =
    Capability.set_bounds
      (Capability.with_address Capability.root_executable base)
      ~length:len ~exact:false
  in
  let mem base len =
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw base)
      ~length:len ~exact:false
  in
  (* counters *)
  let ctr0 = mem data_base 8 and ctr1 = mem (data_base + 8) 8 in
  (* thread control blocks, round-robin linked *)
  let b0 = blocks_base and b1 = blocks_base + 256 in
  Sched_asm.write_block sram ~block:b0
    ~pcc:(exec code_base 0x100)
    ~regs:[ (4, ctr0) ] ~mshwm:0 ~mshwmb:0 ~next:b1;
  Sched_asm.write_block sram ~block:b1
    ~pcc:(exec (code_base + 0x1000) 0x100)
    ~regs:[ (4, ctr1) ] ~mshwm:0 ~mshwmb:0 ~next:b0;
  (* boot thread 0 directly *)
  m.Machine.pcc <- exec code_base 0x100;
  Machine.set_reg m 4 ctr0;
  m.Machine.mtdc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw b0)
      ~length:Sched_asm.block_size ~exact:true;
  m.Machine.mtcc <- exec isr_base 0x200;
  m.Machine.mtimecmp <- quantum;
  m.Machine.mie <- true;
  (m, sram)

let test_preemptive_interleaving () =
  let m, sram = make () in
  let perf = Perf.create ~params:(Core_model.params_of Core_model.Ibex) m in
  (match Perf.run ~fuel:2_000_000 perf with
  | Machine.Step_halted -> ()
  | Machine.Step_double_fault ->
      Alcotest.failf "double fault mtval=0x%x mcause=%d" m.Machine.mtval
        m.Machine.mcause
  | _ -> Alcotest.fail "did not halt");
  let c0 = Sram.read32 sram data_base in
  let c1 = Sram.read32 sram (data_base + 8) in
  (* thread 0 ran to its limit... *)
  Alcotest.(check int) "thread 0 finished" 400 c0;
  (* ...and thread 1 made comparable progress purely via preemption *)
  Alcotest.(check bool)
    (Printf.sprintf "thread 1 progressed (%d)" c1)
    true
    (c1 > 100);
  let ratio = float_of_int c1 /. float_of_int c0 in
  Alcotest.(check bool)
    (Printf.sprintf "round robin roughly fair (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_state_isolation_across_switches () =
  (* Each thread's registers must survive arbitrary preemption points:
     thread 0's c4 (counter cap) and t0 are fully restored every time,
     or the counters would diverge from pure increment-by-one.  Run
     twice and check determinism too. *)
  let run () =
    let m, sram = make () in
    let perf = Perf.create ~params:(Core_model.params_of Core_model.Flute) m in
    ignore (Perf.run ~fuel:2_000_000 perf);
    (Sram.read32 sram data_base, Sram.read32 sram (data_base + 8))
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "deterministic schedule" a b;
  Alcotest.(check int) "no lost increments" 400 (fst a)

let test_fatal_trap_in_isr_system () =
  (* A CHERI fault with the ISR installed reaches the isr_fatal path:
     the system stops instead of silently continuing. *)
  let m, _sram = make () in
  (* corrupt thread 0's counter cap: drop SD so its store traps *)
  Machine.set_reg m 4
    (Capability.clear_perms (Machine.reg m 4) [ SD ]);
  let perf = Perf.create ~params:(Core_model.params_of Core_model.Ibex) m in
  (match Perf.run ~fuel:100_000 perf with
  | Machine.Step_halted -> ()
  | _ -> Alcotest.fail "expected halt at isr_fatal");
  Alcotest.(check int) "mcause = CHERI fault" 28 m.Machine.mcause

let suite =
  [
    Alcotest.test_case "timer preemption interleaves threads" `Quick
      test_preemptive_interleaving;
    Alcotest.test_case "register state isolated across switches" `Quick
      test_state_isolation_across_switches;
    Alcotest.test_case "non-timer trap stops the system" `Quick
      test_fatal_trap_in_isr_system;
  ]
