(* Tests for the Table 2 area/power model. *)

module Gates = Cheriot_area.Gates

let paper =
  [
    ("RV32E", 26988, 1.437);
    ("RV32E + PMP16", 55905, 2.16);
    ("RV32E + capabilities", 58110, 2.58);
    ("  + load filter", 58431, 2.58);
    ("    + background revoker", 61422, 2.73);
  ]

let test_gate_totals () =
  List.iter2
    (fun (name, gates, _, _, _) (pname, pgates, _) ->
      Alcotest.(check string) "row order" pname name;
      Alcotest.(check int) (name ^ " gates") pgates gates)
    (Gates.table2 ()) paper

let test_power_close () =
  List.iter2
    (fun (name, _, _, power, _) (_, _, ppower) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s power %.3f ~ %.3f" name power ppower)
        true
        (abs_float (power -. ppower) < 0.02))
    (Gates.table2 ()) paper

let test_paper_ratios () =
  (* The textual claims of 7.1. *)
  let rows = Gates.table2 () in
  let gates i = match List.nth rows i with _, g, _, _, _ -> g in
  let pmp = gates 1 and caps = gates 2 and filt = gates 3 and rev = gates 4 in
  (* "CHERIoT with its load filter requires an additional 4.5% gate
     overhead relative to the PMP" *)
  let filter_vs_pmp = 100.0 *. float_of_int (filt - pmp) /. float_of_int pmp in
  Alcotest.(check bool)
    (Printf.sprintf "filter vs PMP +%.1f%% ~ 4.5%%" filter_vs_pmp)
    true
    (abs_float (filter_vs_pmp -. 4.5) < 0.5);
  (* "adding the optimized background revoker takes the area overhead
     relative to the 16-element PMP baseline up to a little under 10%" *)
  let rev_vs_pmp = 100.0 *. float_of_int (rev - pmp) /. float_of_int pmp in
  Alcotest.(check bool)
    (Printf.sprintf "revoker vs PMP +%.1f%% < 10%%" rev_vs_pmp)
    true
    (rev_vs_pmp > 8.0 && rev_vs_pmp < 10.0);
  (* both PMP and CHERIoT more than double the tiny baseline *)
  Alcotest.(check bool) "PMP doubles Ibex" true (pmp > 2 * gates 0);
  Alcotest.(check bool) "caps double Ibex" true (caps > 2 * gates 0)

let test_monotone_variants () =
  let rec mono = function
    | (_, g1, _, p1, _) :: ((_, g2, _, p2, _) :: _ as rest) ->
        Alcotest.(check bool) "gates grow within CHERI rows" true (g2 > g1 || g1 = 55905);
        Alcotest.(check bool) "power nondecreasing within CHERI rows" true
          (p2 >= p1 -. 0.45);
        mono rest
    | _ -> ()
  in
  mono (Gates.table2 ())

let suite =
  [
    Alcotest.test_case "gate totals match Table 2" `Quick test_gate_totals;
    Alcotest.test_case "power within 0.02 mW of Table 2" `Quick
      test_power_close;
    Alcotest.test_case "7.1 textual ratios" `Quick test_paper_ratios;
    Alcotest.test_case "variants monotone" `Quick test_monotone_variants;
  ]
