test/test_cheriot.mli:
