test/test_perm.ml: Alcotest Cheriot_core Fmt Option Perm Printf QCheck QCheck_alcotest Set
