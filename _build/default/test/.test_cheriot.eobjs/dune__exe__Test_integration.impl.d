test/test_integration.ml: Alcotest Asm Capability Cheriot_core Cheriot_isa Cheriot_mem Cheriot_rtos Cheriot_uarch Fmt Insn Machine Trace
