test/test_workloads.ml: Alcotest Cheriot_rtos Cheriot_uarch Cheriot_workloads List Printf
