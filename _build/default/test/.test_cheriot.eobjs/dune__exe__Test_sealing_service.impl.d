test/test_sealing_service.ml: Alcotest Capability Cheriot_core Cheriot_mem Cheriot_rtos Cheriot_uarch List
