test/test_area.ml: Alcotest Cheriot_area List Printf
