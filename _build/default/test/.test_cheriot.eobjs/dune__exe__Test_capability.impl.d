test/test_capability.ml: Alcotest Capability Cheriot_core Fmt Int64 List Otype Perm QCheck QCheck_alcotest
