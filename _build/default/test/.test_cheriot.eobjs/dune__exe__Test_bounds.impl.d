test/test_bounds.ml: Alcotest Bounds Cheriot_core List Option Printf QCheck QCheck_alcotest
