test/test_compartments.ml: Alcotest Asm Capability Cheriot_core Cheriot_isa Cheriot_mem Cheriot_rtos Csr Insn List Machine
