test/test_uarch.ml: Alcotest Capability Cheriot_core Cheriot_isa Cheriot_mem Cheriot_uarch Core_model Printf Revoker
