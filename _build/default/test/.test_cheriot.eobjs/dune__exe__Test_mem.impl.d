test/test_mem.ml: Alcotest Array Bus Bytes Char Cheriot_mem Int32 Mmio QCheck QCheck_alcotest Revbits Sram
