test/test_rtos.ml: Alcotest Bounds Capability Cheriot_core Cheriot_mem Cheriot_rtos Cheriot_uarch Gen List Printf QCheck QCheck_alcotest String
