test/test_preemption.ml: Alcotest Asm Capability Cheriot_core Cheriot_isa Cheriot_mem Cheriot_rtos Cheriot_uarch Insn Machine Printf
