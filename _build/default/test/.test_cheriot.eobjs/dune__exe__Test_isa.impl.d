test/test_isa.ml: Alcotest Asm Capability Cheriot_core Cheriot_isa Cheriot_mem Csr Encode Insn Machine Otype Perm QCheck QCheck_alcotest
