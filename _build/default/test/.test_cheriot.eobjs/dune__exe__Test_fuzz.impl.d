test/test_fuzz.ml: Array Capability Cheriot_core Cheriot_isa Cheriot_mem Encode Fmt Insn List Machine Perm Printf QCheck QCheck_alcotest String
