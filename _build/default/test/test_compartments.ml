(* Machine-level compartmentalization tests: real compartments linked by
   the loader, crossing through the machine-code switcher, on the ISA
   emulator.  These demonstrate the paper's section 2.3 guarantees as
   executable facts. *)

open Cheriot_core
open Cheriot_isa
module Compartment = Cheriot_rtos.Compartment
module Loader = Cheriot_rtos.Loader
module Sram = Cheriot_mem.Sram

let a0 = Insn.reg_a0
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let sp = Insn.reg_sp
let gp = Insn.reg_gp
let ra = Insn.reg_ra

let sw rs2 rs1 off = Asm.I (Insn.Store { width = W; rs2; rs1; off })
let lw rd rs1 off = Asm.I (Insn.Load { signed = true; width = W; rd; rs1; off })

(* call the export whose sealed descriptor sits at globals slot 8 *)
let call_import =
  [
    Asm.I (Insn.Clc (t1, gp, 8));
    Asm.I (Insn.Clc (t2, gp, Compartment.switcher_slot));
    Asm.I (Insn.Jalr (ra, t2, 0));
  ]

let secret = 0x5ec2e7

let alice_main ~check =
  Compartment.v ~name:"alice" ~globals_size:64
    ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
    ~imports:
      [ { imp_compartment = "bob"; imp_export = "service"; imp_slot = 8 } ]
    (List.concat
       [
         [
           Asm.Label "main";
           (* a frame with a secret, live across the call *)
           Asm.I (Insn.Cincaddrimm (sp, sp, -16));
           Asm.Li (t0, secret);
           sw t0 sp 0;
           Asm.Li (a0, 21);
         ];
         call_import;
         check;
         [ Asm.I Insn.Ebreak ];
       ])

let link ?(bob_body = []) ?(check = []) ?(bob_posture = Compartment.Interrupts_enabled) () =
  let bob =
    Compartment.v ~name:"bob" ~globals_size:64
      ~exports:[ { exp_label = "service"; exp_posture = bob_posture } ]
      (List.concat
         [
           [ Asm.Label "service" ];
           bob_body;
           [ Asm.Ret ];
         ])
  in
  Loader.link [ alice_main ~check; bob ] ~boot:("alice", "main")

let expect_halt t =
  match Loader.run t with
  | Machine.Step_halted, _ -> ()
  | Machine.Step_double_fault, _ ->
      Alcotest.failf "double fault: mcause=%d mtval=0x%x"
        t.Loader.machine.Machine.mcause t.Loader.machine.Machine.mtval
  | _ -> Alcotest.fail "did not halt"

(* Did we halt at the trap stub (i.e. a CHERI fault was taken) or at the
   program's own ebreak? *)
let halted_in_trap_stub t =
  Capability.address t.Loader.machine.Machine.pcc < 0x1_1000

let test_cross_call_roundtrip () =
  let bob_body =
    [
      (* use some stack, double the argument *)
      Asm.I (Insn.Cincaddrimm (sp, sp, -16));
      sw a0 sp 0;
      lw a0 sp 0;
      Asm.I (Insn.Op_imm (Sll, a0, a0, 1));
      Asm.I (Insn.Cincaddrimm (sp, sp, 16));
    ]
  in
  let check =
    [
      (* secret still in place? result correct? encode both in a0 *)
      lw t0 sp 0;
      Asm.Li (t1, secret);
      Asm.B (Insn.Ne, t0, t1, "fail");
      Asm.Li (t1, 42);
      Asm.B (Insn.Ne, a0, t1, "fail");
      Asm.Li (a0, 1);
      Asm.I Insn.Ebreak;
      Asm.Label "fail";
      Asm.Li (a0, 0);
    ]
  in
  let t = link ~bob_body ~check () in
  expect_halt t;
  Alcotest.(check bool) "halted normally" false (halted_in_trap_stub t);
  Alcotest.(check int) "result + secret intact" 1
    (Machine.reg_int t.Loader.machine a0)

let test_callee_cannot_read_caller_frame () =
  (* Bob's stack capability is chopped at Alice's SP: reading above it —
     where the secret lives — must trap on bounds (2.3 guarantee 2). *)
  let bob_body =
    [
      Asm.I (Insn.Cget (Top, t0, sp));
      Asm.I (Insn.Csetaddr (t1, sp, t0));
      lw a0 t1 0;
    ]
  in
  let t = link ~bob_body () in
  expect_halt t;
  Alcotest.(check bool) "trapped" true (halted_in_trap_stub t);
  Alcotest.(check int) "CHERI cause" 28 t.Loader.machine.Machine.mcause;
  Alcotest.(check int) "bounds violation" 0x01
    (t.Loader.machine.Machine.mtval lsr 5)

let test_stale_stack_zeroed () =
  (* Alice dirties stack below her SP (a dead frame), restores SP, then
     calls.  Bob scans his whole stack for the secret: the switcher must
     have zeroed the delegated region (5.2). *)
  let alice =
    Compartment.v ~name:"alice" ~globals_size:64
      ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
      ~imports:
        [ { imp_compartment = "bob"; imp_export = "service"; imp_slot = 8 } ]
      (List.concat
         [
           [
             Asm.Label "main";
             (* dead frame full of secrets *)
             Asm.I (Insn.Cincaddrimm (sp, sp, -64));
             Asm.Li (t0, secret);
             sw t0 sp 0;
             sw t0 sp 8;
             sw t0 sp 56;
             Asm.I (Insn.Cincaddrimm (sp, sp, 64));
           ];
           call_import;
           [ Asm.I Insn.Ebreak ];
         ])
  in
  let bob =
    Compartment.v ~name:"bob" ~globals_size:64
      ~exports:[ { exp_label = "service"; exp_posture = Interrupts_enabled } ]
      [
        (* scan [stack_base, sp) for any nonzero word; a0 = hits *)
        Asm.Label "service";
        Asm.Li (a0, 0);
        Asm.I (Insn.Cget (Base, t0, sp));
        Asm.I (Insn.Cget (Addr, t2, sp));
        Asm.Label "scan";
        Asm.B (Insn.Geu, t0, t2, "done");
        Asm.I (Insn.Csetaddr (t1, sp, t0));
        lw t1 t1 0;
        Asm.B (Insn.Eq, t1, 0, "next");
        Asm.I (Insn.Op_imm (Add, a0, a0, 1));
        Asm.Label "next";
        Asm.I (Insn.Op_imm (Add, t0, t0, 4));
        Asm.J (0, "scan");
        Asm.Label "done";
        Asm.Ret;
      ]
  in
  let t = Loader.link [ alice; bob ] ~boot:("alice", "main") in
  expect_halt t;
  Alcotest.(check bool) "no trap" false (halted_in_trap_stub t);
  Alcotest.(check int) "no secrets visible" 0
    (Machine.reg_int t.Loader.machine a0)

let test_stack_cap_cannot_be_captured () =
  (* Bob tries to stash the (local) stack capability in his globals for
     use after the call: permit-store-local traps (2.6, 5.2). *)
  let bob_body = [ Asm.I (Insn.Csc (sp, gp, 16)) ] in
  let t = link ~bob_body () in
  expect_halt t;
  Alcotest.(check bool) "trapped" true (halted_in_trap_stub t);
  Alcotest.(check int) "store-local violation" 0x16
    (t.Loader.machine.Machine.mtval lsr 5)

let test_forged_export_rejected () =
  (* Alice calls the switcher with an unsealed (forged) "descriptor":
     the switcher's cunseal traps.  No way to reach bob's code without a
     genuine export (2.2). *)
  let alice =
    Compartment.v ~name:"alice" ~globals_size:64
      ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
      [
        Asm.Label "main";
        Asm.I (Insn.Cmove (t1, gp));
        Asm.I (Insn.Clc (t2, gp, Compartment.switcher_slot));
        Asm.I (Insn.Jalr (ra, t2, 0));
        Asm.I Insn.Ebreak;
      ]
  in
  let bob =
    Compartment.v ~name:"bob" ~globals_size:64
      ~exports:[ { exp_label = "service"; exp_posture = Interrupts_enabled } ]
      [ Asm.Label "service"; Asm.Ret ]
  in
  let t = Loader.link [ alice; bob ] ~boot:("alice", "main") in
  expect_halt t;
  Alcotest.(check bool) "trapped in switcher" true (halted_in_trap_stub t);
  Alcotest.(check int) "seal violation" 0x03
    (t.Loader.machine.Machine.mtval lsr 5)

let test_compartment_pcc_has_no_sr () =
  (* Compartments cannot reach system registers: CSR access traps (so
     only the switcher controls the HWM and trap vectors). *)
  let alice =
    Compartment.v ~name:"alice" ~globals_size:64
      ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
      [
        Asm.Label "main";
        Asm.I (Insn.Csr (Csrrw, 0, t0, Csr.mshwm));
        Asm.I Insn.Ebreak;
      ]
  in
  let t = Loader.link [ alice ] ~boot:("alice", "main") in
  expect_halt t;
  Alcotest.(check bool) "trapped" true (halted_in_trap_stub t);
  Alcotest.(check int) "access-system-registers" 0x18
    (t.Loader.machine.Machine.mtval lsr 5)

let test_nested_calls () =
  (* alice -> bob -> carol: the trusted stack nests and unwinds. *)
  let alice =
    Compartment.v ~name:"alice" ~globals_size:64
      ~exports:[ { exp_label = "main"; exp_posture = Interrupts_enabled } ]
      ~imports:
        [ { imp_compartment = "bob"; imp_export = "add10"; imp_slot = 8 } ]
      (List.concat
         [
           [ Asm.Label "main"; Asm.Li (a0, 1) ];
           call_import;
           [ Asm.I Insn.Ebreak ];
         ])
  in
  let bob =
    Compartment.v ~name:"bob" ~globals_size:64
      ~exports:[ { exp_label = "add10"; exp_posture = Interrupts_enabled } ]
      ~imports:
        [ { imp_compartment = "carol"; imp_export = "add100"; imp_slot = 8 } ]
      (List.concat
         [
           [
             Asm.Label "add10";
             (* non-leaf: save the return sentry across the call *)
             Asm.I (Insn.Cincaddrimm (sp, sp, -16));
             Asm.I (Insn.Csc (ra, sp, 0));
             Asm.I (Insn.Op_imm (Add, a0, a0, 10));
           ];
           call_import;
           [
             Asm.I (Insn.Clc (ra, sp, 0));
             Asm.I (Insn.Cincaddrimm (sp, sp, 16));
             Asm.Ret;
           ];
         ])
  in
  let carol =
    Compartment.v ~name:"carol" ~globals_size:64
      ~exports:[ { exp_label = "add100"; exp_posture = Interrupts_enabled } ]
      [
        Asm.Label "add100";
        Asm.I (Insn.Op_imm (Add, a0, a0, 100));
        Asm.Ret;
      ]
  in
  let t = Loader.link [ alice; bob; carol ] ~boot:("alice", "main") in
  expect_halt t;
  Alcotest.(check bool) "no trap" false (halted_in_trap_stub t);
  Alcotest.(check int) "1+10+100" 111 (Machine.reg_int t.Loader.machine a0)

let test_interrupt_posture_of_export () =
  (* An Interrupts_disabled export really runs with MIE clear, without
     granting bob any right to toggle interrupts himself (3.1.2). *)
  let seen = ref None in
  let bob_body = [ Asm.I (Insn.Op_imm (Add, t0, 0, 0)) ] in
  (* the machine boots with interrupts disabled; an Interrupts_enabled
     export must run with MIE set, and the caller's (disabled) posture
     must come back on return *)
  let t = link ~bob_body ~bob_posture:Compartment.Interrupts_enabled () in
  (* single-step so we can observe MIE while bob runs *)
  let m = t.Loader.machine in
  let bob_code =
    (Loader.find t "bob").Loader.code_cap
  in
  let lo = Capability.base bob_code and hi = Capability.top bob_code in
  let rec go n =
    if n > 100000 then Alcotest.fail "no halt"
    else
      match Machine.step m with
      | Machine.Step_halted -> ()
      | Machine.Step_double_fault -> Alcotest.fail "double fault"
      | _ ->
          let pc = Capability.address m.Machine.pcc in
          if pc >= lo && pc < hi && !seen = None then
            seen := Some m.Machine.mie;
          go (n + 1)
  in
  go 0;
  Alcotest.(check (option bool)) "MIE on inside bob" (Some true) !seen;
  Alcotest.(check bool) "caller posture (off) restored" false m.Machine.mie

let suite =
  [
    Alcotest.test_case "cross-call roundtrip + caller state" `Quick
      test_cross_call_roundtrip;
    Alcotest.test_case "callee cannot read caller frame" `Quick
      test_callee_cannot_read_caller_frame;
    Alcotest.test_case "stale stack zeroed before delegation" `Quick
      test_stale_stack_zeroed;
    Alcotest.test_case "stack capability cannot be captured" `Quick
      test_stack_cap_cannot_be_captured;
    Alcotest.test_case "forged export rejected" `Quick
      test_forged_export_rejected;
    Alcotest.test_case "compartments lack SR" `Quick
      test_compartment_pcc_has_no_sr;
    Alcotest.test_case "nested cross-compartment calls" `Quick
      test_nested_calls;
    Alcotest.test_case "per-export interrupt posture" `Quick
      test_interrupt_posture_of_export;
  ]
