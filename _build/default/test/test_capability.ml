(* Tests for the capability type: unforgeability, monotonicity, sealing,
   word encoding (paper 2.4, 3.1, 5.3). *)

open Cheriot_core

let cap = Alcotest.testable Capability.pp Capability.equal

(* A generator of valid derived capabilities: start from a root and apply
   random guarded manipulations.  Everything it produces must remain
   encodable and monotone. *)
let gen_derived =
  let open QCheck.Gen in
  let* root =
    oneofl
      Capability.[ root_mem_rw; root_executable; root_mem_rw; root_mem_rw ]
  in
  let* steps = int_bound 6 in
  let step c =
    let* choice = int_bound 3 in
    match choice with
    | 0 ->
        let* a = int_bound 0xFFFF_FFFF in
        return (Capability.with_address c a)
    | 1 ->
        let* len = int_bound 0xFFFF in
        return (Capability.set_bounds c ~length:len ~exact:false)
    | 2 ->
        let* bits = int_bound 0xfff in
        return (Capability.and_perms c (Perm.Set.of_arch_bits bits))
    | _ ->
        let* off = int_bound 4096 in
        return (Capability.incr_address c (off - 2048))
  in
  let rec go c n = if n = 0 then return c else go c 0 >>= fun _ -> step c >>= fun c' -> go c' (n - 1) in
  go root steps

let arb_derived =
  QCheck.make ~print:(Fmt.to_to_string Capability.pp) gen_derived

let prop_word_roundtrip =
  QCheck.Test.make ~name:"to_word/of_word roundtrip" ~count:3000 arb_derived
    (fun c ->
      let c' = Capability.of_word ~tag:c.Capability.tag (Capability.to_word c) in
      Capability.equal c c')

let prop_any_word_decodes =
  QCheck.Test.make ~name:"of_word total and re-encodable" ~count:3000
    QCheck.(map Int64.of_int int)
    (fun w ->
      let c = Capability.of_word ~tag:false w in
      (* Whatever the bit pattern, the decoded perms must re-encode. *)
      ignore (Capability.to_word c);
      true)

let prop_monotonic_bounds =
  QCheck.Test.make ~name:"derived caps stay within root bounds" ~count:3000
    arb_derived (fun c ->
      (not c.Capability.tag)
      || Capability.base c >= 0
         && Capability.top c <= 0x1_0000_0000
         && Capability.base c <= Capability.top c)

let prop_monotonic_perms =
  QCheck.Test.make ~name:"and_perms never adds permissions" ~count:3000
    QCheck.(pair arb_derived (int_bound 0xfff))
    (fun (c, bits) ->
      let mask = Perm.Set.of_arch_bits bits in
      let c' = Capability.and_perms c mask in
      Perm.Set.subset (Capability.perms c') (Capability.perms c))

let prop_set_bounds_monotonic =
  QCheck.Test.make ~name:"set_bounds never widens" ~count:3000
    QCheck.(pair arb_derived (int_bound 0xFFFFF))
    (fun (c, len) ->
      let c' = Capability.set_bounds c ~length:len ~exact:false in
      (not c'.Capability.tag)
      || Capability.base c' >= Capability.base c
         && Capability.top c' <= Capability.top c)

let test_null () =
  let n = Capability.null in
  Alcotest.(check bool) "untagged" false n.Capability.tag;
  Alcotest.(check int) "addr" 0 (Capability.address n);
  Alcotest.check cap "word roundtrip" n
    (Capability.of_word ~tag:false (Capability.to_word n));
  Alcotest.(check int64) "encodes to zero" 0L (Capability.to_word n)

let test_roots () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "tagged" true c.Capability.tag;
      Alcotest.(check bool) "unsealed" false (Capability.is_sealed c))
    Capability.roots;
  Alcotest.(check int) "rw covers all" 0x1_0000_0000
    (Capability.top Capability.root_mem_rw);
  Alcotest.(check bool) "no root has EX+SD" true
    (not
       Capability.(
         has_perm root_mem_rw EX || has_perm root_executable SD))

let test_narrow_then_oob () =
  (* Paper 2.3 case 2: given a valid pointer, access outside the bounds is
     impossible. *)
  let c = Capability.with_address Capability.root_mem_rw 0x2000 in
  let c = Capability.set_bounds c ~length:256 ~exact:true in
  Alcotest.(check bool) "tagged" true c.Capability.tag;
  Alcotest.(check bool) "in" true (Capability.in_bounds c 0x20ff);
  Alcotest.(check bool) "out" false (Capability.in_bounds c 0x2100);
  Alcotest.(check bool) "before" false (Capability.in_bounds c 0x1fff);
  (* Widening attempt: set bounds bigger than current -> tag cleared. *)
  let widened = Capability.set_bounds c ~length:512 ~exact:false in
  Alcotest.(check bool) "widening clears tag" false widened.Capability.tag

let test_perm_shed_not_regained () =
  let c = Capability.with_address Capability.root_mem_rw 0x1000 in
  let ro = Capability.clear_perms c [ SD; SL ] in
  Alcotest.(check bool) "tag kept" true ro.Capability.tag;
  Alcotest.(check bool) "SD gone" false (Capability.has_perm ro SD);
  let rw_again =
    Capability.and_perms ro (Capability.perms Capability.root_mem_rw)
  in
  Alcotest.(check bool) "SD not regained" false (Capability.has_perm rw_again SD)

let test_seal_unseal () =
  let key = Capability.with_address Capability.root_sealing 3 in
  let c = Capability.with_address Capability.root_mem_rw 0x4000 in
  let c = Capability.set_bounds c ~length:64 ~exact:true in
  match Capability.seal c ~key with
  | Error e -> Alcotest.fail e
  | Ok sealed -> (
      Alcotest.(check bool) "sealed" true (Capability.is_sealed sealed);
      Alcotest.(check bool)
        "data otype" true
        (Otype.equal (Capability.otype sealed) (Otype.v Data 3));
      (* Sealed caps are immutable: address change clears tag. *)
      let moved = Capability.with_address sealed 0x4004 in
      Alcotest.(check bool) "sealed immutable" false moved.Capability.tag;
      (* Unseal with wrong otype fails. *)
      let wrong_key = Capability.with_address Capability.root_sealing 4 in
      (match Capability.unseal sealed ~key:wrong_key with
      | Ok _ -> Alcotest.fail "unseal with wrong key succeeded"
      | Error _ -> ());
      match Capability.unseal sealed ~key with
      | Error e -> Alcotest.fail e
      | Ok unsealed ->
          Alcotest.(check bool) "unsealed" false (Capability.is_sealed unsealed);
          Alcotest.(check int) "addr preserved" 0x4000
            (Capability.address unsealed))

let test_seal_requires_perm () =
  let no_se = Capability.clear_perms Capability.root_sealing [ SE ] in
  let key = Capability.with_address no_se 2 in
  let c = Capability.root_mem_rw in
  match Capability.seal c ~key with
  | Ok _ -> Alcotest.fail "seal without SE succeeded"
  | Error _ -> ()

let test_sentries () =
  let code = Capability.with_address Capability.root_executable 0x100 in
  match Capability.seal_sentry code Otype.Sentry_disable with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check bool) "is sentry" true (Capability.is_sentry s);
      Alcotest.(check bool)
        "kind" true
        (Capability.sentry_kind s = Some Otype.Sentry_disable);
      (* Data caps cannot become sentries. *)
      let d = Capability.root_mem_rw in
      (match Capability.seal_sentry d Otype.Sentry_enable with
      | Ok _ -> Alcotest.fail "data sentry"
      | Error _ -> ())

let test_load_attenuation () =
  (* Paper 3.1.1: loading via a cap without LG clears GL+LG; without LM
     clears LM+SD on unsealed caps. *)
  let auth_no_lg = Capability.clear_perms Capability.root_mem_rw [ LG ] in
  let auth_no_lm = Capability.clear_perms Capability.root_mem_rw [ LM ] in
  let victim = Capability.with_address Capability.root_mem_rw 0x8000 in
  let a = Capability.load_attenuate ~authority:auth_no_lg victim in
  Alcotest.(check bool) "GL cleared" false (Capability.has_perm a GL);
  Alcotest.(check bool) "LG cleared" false (Capability.has_perm a LG);
  Alcotest.(check bool) "SD kept" true (Capability.has_perm a SD);
  let b = Capability.load_attenuate ~authority:auth_no_lm victim in
  Alcotest.(check bool) "SD cleared" false (Capability.has_perm b SD);
  Alcotest.(check bool) "LM cleared" false (Capability.has_perm b LM);
  Alcotest.(check bool) "GL kept" true (Capability.has_perm b GL);
  Alcotest.(check bool) "tag kept" true b.Capability.tag;
  (* Full authority: no attenuation. *)
  let c = Capability.load_attenuate ~authority:Capability.root_mem_rw victim in
  Alcotest.check cap "unattenuated" victim c

let test_unrepresentable_clears_tag () =
  (* Move the address of a tightly-bounded large object far outside: the
     CHERIoT encoding has no guaranteed representable range beyond the
     bounds, so the tag must clear rather than bounds change. *)
  let c = Capability.with_address Capability.root_mem_rw 0x10000 in
  let c = Capability.set_bounds c ~length:(0x1ff lsl 4) ~exact:false in
  Alcotest.(check bool) "tagged" true c.Capability.tag;
  let bounds_before = Capability.(base c, top c) in
  let moved = Capability.incr_address c (1 lsl 20) in
  if moved.Capability.tag then
    Alcotest.(check (pair int int))
      "bounds unchanged" bounds_before
      Capability.(base moved, top moved)
  else Alcotest.(check bool) "tag cleared" false moved.Capability.tag

let test_subset () =
  let parent = Capability.with_address Capability.root_mem_rw 0x1000 in
  let parent = Capability.set_bounds parent ~length:4096 ~exact:true in
  let child = Capability.with_address parent 0x1100 in
  let child = Capability.set_bounds child ~length:16 ~exact:true in
  let child = Capability.clear_perms child [ SD ] in
  Alcotest.(check bool) "subset" true (Capability.is_subset child ~of_:parent);
  Alcotest.(check bool)
    "not superset" false
    (Capability.is_subset parent ~of_:child)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "null capability" `Quick test_null;
    Alcotest.test_case "reset roots" `Quick test_roots;
    Alcotest.test_case "narrow then out-of-bounds" `Quick test_narrow_then_oob;
    Alcotest.test_case "permissions shed not regained" `Quick
      test_perm_shed_not_regained;
    Alcotest.test_case "seal/unseal" `Quick test_seal_unseal;
    Alcotest.test_case "seal requires SE" `Quick test_seal_requires_perm;
    Alcotest.test_case "sentries" `Quick test_sentries;
    Alcotest.test_case "load attenuation (LG/LM)" `Quick test_load_attenuation;
    Alcotest.test_case "unrepresentable move clears tag" `Quick
      test_unrepresentable_clears_tag;
    Alcotest.test_case "CTestSubset" `Quick test_subset;
    q prop_word_roundtrip;
    q prop_any_word_decodes;
    q prop_monotonic_bounds;
    q prop_monotonic_perms;
    q prop_set_bounds_monotonic;
  ]
