(* Architectural fuzzing: the global monotonicity property.

   "The program's total authority is completely captured by [the register
   file] and those that can be (transitively) loaded through them"
   (paper 2.5), and guarded manipulation can only shrink it.  We boot a
   machine whose entire authority is three known capabilities (code,
   data, stack), execute random instruction streams, and assert after
   every step that every tagged capability anywhere — registers, special
   registers, memory — still lies within the initial authority.  Any
   emulator bug that let authority grow (widened bounds, regained
   permissions, forged tags) fails this test. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus

let code_base = 0x1_0000
let code_size = 0x800
let data_base = 0x2_0000
let data_size = 0x1000
let stack_base = 0x3_0000
let stack_size = 0x800

(* The initial authority: anything reachable must stay inside these. *)
let mem_perms = Capability.perms Capability.root_mem_rw
let exec_perms = Capability.perms Capability.root_executable

let seal_perms = Capability.perms Capability.root_sealing

let within_authority c =
  if not c.Capability.tag then true
  else
    let b = Capability.base c and t = Capability.top c in
    let inside lo sz = b >= lo && t <= lo + sz in
    let p = Capability.perms c in
    (* a tagged cap is fine iff it is a (bounds, perms) shrink of one of
       the three granted capabilities *)
    (inside code_base code_size && Perm.Set.subset p exec_perms)
    || ((inside data_base data_size || inside stack_base stack_size)
       && Perm.Set.subset p mem_perms)
    || (inside 0 8 && Perm.Set.subset p seal_perms)

let check_machine m srams =
  let bad = ref [] in
  let chk what c =
    if not (within_authority c) then
      bad := Fmt.str "%s=%a" what Capability.pp c :: !bad
  in
  for r = 1 to 15 do
    chk (Printf.sprintf "c%d" r) m.Machine.regs.(r)
  done;
  chk "pcc" m.Machine.pcc;
  chk "mepcc" m.Machine.mepcc;
  chk "mtdc" m.Machine.mtdc;
  chk "mscratchc" m.Machine.mscratchc;
  List.iter
    (fun (base, size, sram) ->
      let a = ref base in
      while !a < base + size do
        if Sram.tag_at sram !a then begin
          let tag, w = Sram.read_cap sram !a in
          chk (Printf.sprintf "mem@0x%x" !a) (Capability.of_word ~tag w)
        end;
        a := !a + 8
      done)
    srams;
  !bad

(* A generator biased toward well-formed instructions so runs get past
   the first step, plus raw random words for decoder robustness. *)
let gen_word : int QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let insn =
    oneof
      [
        (let* a = reg and* b = reg and* c = reg in
         oneofl
           Insn.
             [
               Cincaddr (a, b, c);
               Csetaddr (a, b, c);
               Csetbounds (a, b, c);
               Candperm (a, b, c);
               Cseal (a, b, c);
               Cunseal (a, b, c);
               Csub (a, b, c);
               Ctestsubset (a, b, c);
               Op (Add, a, b, c);
               Op (Xor, a, b, c);
             ]);
        (let* a = reg and* b = reg and* i = int_bound 255 in
         oneofl
           Insn.
             [
               Cincaddrimm (a, b, i * 8);
               Csetboundsimm (a, b, i);
               Op_imm (Add, a, b, i);
               Clc (a, b, (i land 63) * 8);
               Csc (a, b, (i land 63) * 8);
               Load { signed = true; width = W; rd = a; rs1 = b; off = i * 4 };
               Store { width = W; rs2 = a; rs1 = b; off = i * 4 };
               Cmove (a, b);
               Ccleartag (a, b);
               Cget (Base, a, b);
               Cget (Perm, a, b);
             ]);
      ]
  in
  frequency
    [ (8, map Encode.encode insn); (2, map (fun w -> w land 0xFFFFFFFF) int) ]

let gen_program = QCheck.Gen.(list_size (return 64) gen_word)

let run_one words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  let data = Sram.create ~base:data_base ~size:data_size in
  let stack = Sram.create ~base:stack_base ~size:stack_size in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  Bus.add_sram bus stack;
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  Machine.set_reg m 3
    (Capability.set_bounds
       (Capability.with_address Capability.root_mem_rw data_base)
       ~length:data_size ~exact:false);
  Machine.set_reg m 2
    (Capability.clear_perms
       (Capability.incr_address
          (Capability.set_bounds
             (Capability.with_address Capability.root_mem_rw stack_base)
             ~length:stack_size ~exact:false)
          stack_size)
       [ GL ]);
  (* a sealing key too: otype authority must not leak memory authority *)
  Machine.set_reg m 9 (Capability.with_address Capability.root_sealing 3);
  let srams =
    [
      (code_base, code_size, code);
      (data_base, data_size, data);
      (stack_base, stack_size, stack);
    ]
  in
  let rec go n =
    if n > 256 then true
    else
      match Machine.step m with
      | Machine.Step_ok -> (
          match check_machine m srams with
          | [] -> go (n + 1)
          | bad ->
              QCheck.Test.fail_reportf "authority amplified at step %d: %s" n
                (String.concat "," bad))
      | Machine.Step_trap _ | Machine.Step_waiting | Machine.Step_halted
      | Machine.Step_double_fault ->
          check_machine m srams = []
  in
  go 0

let prop_authority_monotone =
  QCheck.Test.make ~name:"no instruction stream amplifies authority"
    ~count:300
    (QCheck.make
       ~print:(fun ws ->
         String.concat "\n"
           (List.map
              (fun w ->
                match Encode.decode w with
                | Some i -> Printf.sprintf "%08x  %s" w (Insn.to_string i)
                | None -> Printf.sprintf "%08x  ???" w)
              ws))
       gen_program)
    run_one

(* A sealed-capability fuzz: sealing then unsealing through random
   manipulation must never produce a tagged cap with a changed body. *)
let prop_seal_integrity =
  QCheck.Test.make ~name:"seal/unseal preserves capability body" ~count:2000
    QCheck.(pair (int_bound 0xFFF) (int_bound 6))
    (fun (addr_off, otype) ->
      let key =
        Capability.with_address Capability.root_sealing (1 + otype)
      in
      let c =
        Capability.set_bounds
          (Capability.with_address Capability.root_mem_rw
             (data_base + (addr_off * 2)))
          ~length:32 ~exact:false
      in
      match Capability.seal c ~key with
      | Error _ -> true
      | Ok sealed -> (
          match Capability.unseal sealed ~key with
          | Error _ -> false
          | Ok c' ->
              Capability.base c' = Capability.base c
              && Capability.top c' = Capability.top c
              && Capability.address c' = Capability.address c
              && Perm.Set.subset (Capability.perms c') (Capability.perms c)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [ q prop_authority_monotone; q prop_seal_integrity ]
