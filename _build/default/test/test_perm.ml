(* Tests for the 6-bit compressed permission encoding (paper Fig. 2). *)

open Cheriot_core

let set = Alcotest.testable Perm.Set.pp Perm.Set.equal

let qcheck_set =
  QCheck.make
    ~print:(Fmt.to_to_string Perm.Set.pp)
    QCheck.Gen.(map Perm.Set.of_arch_bits (int_bound 0xfff))

let test_decode_total () =
  for bits = 0 to 63 do
    ignore (Perm.decode bits)
  done

let test_encode_decode_roundtrip () =
  (* Every decoded 6-bit value must re-encode to itself: the encoding has
     no redundant representations. *)
  for bits = 0 to 63 do
    let s = Perm.decode bits in
    match Perm.encode s with
    | None ->
        Alcotest.failf "decode %d = %a not re-encodable" bits Perm.Set.pp s
    | Some bits' ->
        Alcotest.(check int) (Printf.sprintf "bits %d" bits) bits bits'
  done

let test_wx () =
  (* W^X: no decodable permission set grants both EX and SD (3.1.1). *)
  for bits = 0 to 63 do
    let s = Perm.decode bits in
    if Perm.Set.mem EX s && Perm.Set.mem SD s then
      Alcotest.failf "W^X violated by bits %d: %a" bits Perm.Set.pp s
  done

let test_seal_mem_separation () =
  (* Sealing permissions never co-occur with memory permissions. *)
  for bits = 0 to 63 do
    let s = Perm.decode bits in
    let sealing = Perm.Set.(mem SE s || mem US s || mem U0 s) in
    let memory = Perm.Set.(mem LD s || mem SD s || mem MC s || mem EX s) in
    if sealing && memory then
      Alcotest.failf "seal/mem mixed in bits %d: %a" bits Perm.Set.pp s
  done

let test_formats () =
  let open Perm in
  let fmt_of l = format_of (Set.of_list l) in
  Alcotest.(check bool)
    "rw" true
    (fmt_of [ LD; SD; MC; GL; SL; LM; LG ] = Some Mem_cap_rw);
  Alcotest.(check bool) "ro" true (fmt_of [ LD; MC; LG ] = Some Mem_cap_ro);
  Alcotest.(check bool) "wo" true (fmt_of [ SD; MC ] = Some Mem_cap_wo);
  Alcotest.(check bool) "nocap" true (fmt_of [ LD; SD ] = Some Mem_no_cap);
  Alcotest.(check bool)
    "exec" true
    (fmt_of [ EX; LD; MC; SR ] = Some Executable);
  Alcotest.(check bool) "sealing" true (fmt_of [ SE; US ] = Some Sealing);
  Alcotest.(check bool) "GL alone is sealing-format" true
    (fmt_of [ GL ] = Some Sealing);
  (* EX with SD is not representable in any format. *)
  Alcotest.(check bool) "no exec+store" true (fmt_of [ EX; SD; LD; MC ] = None)

let test_legalize_examples () =
  let open Perm in
  let lg l = Set.to_list (legalize (Set.of_list l)) in
  (* Dropping SD from an rw cap leaves a ro cap; SL becomes useless and
     is dropped by the format. *)
  Alcotest.(check (list (Alcotest.testable Perm.pp ( = ))))
    "rw minus SD -> ro" [ LG; LM; LD; MC ]
    (lg [ LD; MC; SL; LM; LG ]);
  (* MC alone is meaningless: collapses to nothing. *)
  Alcotest.(check (list (Alcotest.testable Perm.pp ( = )))) "MC alone" [] (lg [ MC ])

let prop_legalize_subset =
  QCheck.Test.make ~name:"legalize yields a subset" ~count:2000 qcheck_set
    (fun s -> Perm.Set.subset (Perm.legalize s) s)

let prop_legalize_idempotent =
  QCheck.Test.make ~name:"legalize idempotent" ~count:2000 qcheck_set (fun s ->
      let l = Perm.legalize s in
      Perm.Set.equal l (Perm.legalize l))

let prop_legalize_representable =
  QCheck.Test.make ~name:"legalize representable" ~count:2000 qcheck_set
    (fun s -> Option.is_some (Perm.encode (Perm.legalize s)))

let prop_representable_fixed =
  QCheck.Test.make ~name:"legalize fixes representable sets" ~count:500
    QCheck.(int_bound 63)
    (fun bits ->
      let s = Perm.decode bits in
      Perm.Set.equal s (Perm.legalize s))

let prop_arch_bits_roundtrip =
  QCheck.Test.make ~name:"arch bits roundtrip" ~count:2000 qcheck_set (fun s ->
      Perm.Set.equal s (Perm.Set.of_arch_bits (Perm.Set.to_arch_bits s)))

let test_arch_bit_order () =
  (* GL, LG, LM, SD must be the lowest architectural bits (3.2.1). *)
  let low4 = Perm.Set.of_arch_bits 0xf in
  Alcotest.check set "low bits"
    (Perm.Set.of_list [ GL; LG; LM; SD ])
    low4

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "decode total" `Quick test_decode_total;
    Alcotest.test_case "encode/decode roundtrip (all 64)" `Quick
      test_encode_decode_roundtrip;
    Alcotest.test_case "W^X in hardware" `Quick test_wx;
    Alcotest.test_case "sealing/memory separation" `Quick
      test_seal_mem_separation;
    Alcotest.test_case "format classification" `Quick test_formats;
    Alcotest.test_case "legalize examples" `Quick test_legalize_examples;
    Alcotest.test_case "arch bit order" `Quick test_arch_bit_order;
    q prop_legalize_subset;
    q prop_legalize_idempotent;
    q prop_legalize_representable;
    q prop_representable_fixed;
    q prop_arch_bits_roundtrip;
  ]
