(* Compartment isolation on the ISA emulator (paper 2.2, 2.6, 5.2).

   Three compartments from mutually distrusting vendors are statically
   linked into one image:

     app      -- the application; imports crypto.sign
     crypto   -- holds a signing key in its private globals
     mallory  -- a malicious "driver" the app also calls

   The image definitions live in {!Cheriot_workloads.Firmware} (the
   static auditor links the same ones); this example substitutes attack
   bodies for the driver compartment and runs them on the real
   (simulated) CPU: the cross-compartment calls go through the
   machine-code switcher, and mallory's attacks are defeated by the
   architecture, not by code review.

   Run with:  dune exec examples/compartment_isolation.exe *)

open Cheriot_core
open Cheriot_isa
module Compartment = Cheriot_rtos.Compartment
module Loader = Cheriot_rtos.Loader
module Firmware = Cheriot_workloads.Firmware

let say fmt = Format.printf (fmt ^^ "@.")
let a0 = Insn.reg_a0
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let sp = Insn.reg_sp
let gp = Insn.reg_gp
let ra = Insn.reg_ra
let lw rd rs1 off = Asm.I (Insn.Load { signed = true; width = W; rd; rs1; off })
let key = 0x1337c0de

let run_scenario name mallory_body =
  let t = Firmware.isolation ~driver:mallory_body () in
  Firmware.patch_key t key;
  let m = t.Loader.machine in
  (match Loader.run t with
  | Machine.Step_halted, _ when Capability.address m.Machine.pcc < 0x1_1000 ->
      say "  [%s] TRAPPED: mcause=%d, CHERI cause 0x%02x -- attack stopped \
           by hardware"
        name m.Machine.mcause
        (m.Machine.mtval lsr 5)
  | Machine.Step_halted, _ ->
      say "  [%s] returned; app's signature register: 0x%x (expected 0x%x)"
        name (Machine.reg_int m a0) (0x42 lxor key)
  | Machine.Step_double_fault, _ ->
      say "  [%s] double fault mtval=0x%x" name m.Machine.mtval
  | _ -> say "  [%s] did not finish" name);
  t

let () =
  say "== Scenario: app + crypto + mallory, statically linked ==";
  say "   (crypto's key: 0x%x, lives in crypto's private globals)" key;
  say "";

  say "1. A well-behaved driver: everything just works.";
  ignore (run_scenario "benign" Firmware.benign_driver);
  say "";

  say "2. Mallory tries to READ crypto's key by address.  She knows exactly";
  say "   where it is -- but has no capability to it (2.3 guarantee 1).";
  ignore
    (run_scenario "read key"
       [
         Asm.Label "driver";
         (* her own cgp, moved to the key's address *)
         Asm.Li (t0, 0x1_0000);
         Asm.Label "probe";
         Asm.I (Insn.Csetaddr (t1, gp, t0));
         lw a0 t1 0;
         Asm.Ret;
       ]);
  say "";

  say "3. Mallory walks off the end of her own globals toward her";
  say "   neighbour's (2.3 guarantee 2).";
  ignore
    (run_scenario "overflow globals"
       [
         Asm.Label "driver";
         Asm.I (Insn.Cget (Len, t0, gp));
         Asm.I (Insn.Cincaddr (t1, gp, t0));
         lw a0 t1 0;
         Asm.Ret;
       ]);
  say "";

  say "4. Mallory scans the stack the app delegated to her for leftover";
  say "   secrets: the switcher zeroed it (5.2).";
  ignore
    (run_scenario "scan stack"
       [
         Asm.Label "driver";
         Asm.Li (a0, 0);
         Asm.I (Insn.Cget (Base, t0, sp));
         Asm.I (Insn.Cget (Addr, t2, sp));
         Asm.Label "scan";
         Asm.B (Insn.Geu, t0, t2, "done");
         Asm.I (Insn.Csetaddr (t1, sp, t0));
         lw t1 t1 0;
         Asm.B (Insn.Eq, t1, 0, "skip");
         Asm.I (Insn.Op_imm (Add, a0, a0, 1));
         Asm.Label "skip";
         Asm.I (Insn.Op_imm (Add, t0, t0, 4));
         Asm.J (0, "scan");
         Asm.Label "done";
         Asm.Ret;
       ]);
  say "   (mallory returned without finding a single nonzero word, and the";
  say "    app's signature -- stored above the chop point -- survived)";
  say "";

  say "5. Mallory tries to smuggle the stack capability out for later";
  say "   (store-local, 2.6).";
  ignore
    (run_scenario "capture stack"
       [ Asm.Label "driver"; Asm.I (Insn.Csc (sp, gp, 24)); Asm.Ret ]);
  say "";

  say "6. Mallory forges an 'export' to jump into crypto's code directly";
  say "   (unforgeability, 2.4).";
  ignore
    (run_scenario "forge export"
       [
         Asm.Label "driver";
         Asm.I (Insn.Cmove (t1, gp));
         Asm.I (Insn.Clc (t2, gp, Compartment.switcher_slot));
         Asm.I (Insn.Jalr (ra, t2, 0));
         Asm.Ret;
       ]);
  say "";
  say "Every attack is stopped by a per-instruction architectural check --";
  say "no probabilistic defence, no code audit of mallory required (6)."
