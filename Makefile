# Entry points for local use and CI.
#
# `make ci` is the gate: build, lint (warnings-as-errors), the full
# test suite (including the differential oracle between the reference,
# cached, block, chain and jit dispatch paths), the dispatch-parity
# gate (the differential suite in isolation — it fails printing the
# qcheck fuzz seed and shrunk program on any state-hash mismatch), the
# static firmware audit (`cheriot_audit all`: shipped images audit
# clean, the bad-image corpus is fully detected), the plan-soundness
# gate (`cheriot_audit plans`: every jit check plan on the shipped
# images proves equivalent to the all-full plan, every seeded optimizer
# mutant is refuted), the incremental-audit gate (`cheriot_audit
# incremental`: a one-compartment patch re-analyzes only that
# compartment and the warm report is byte-identical to a cold audit),
# and reduced-workload
# runs of the decode-cache, block-exec, chain-exec and jit-exec
# benchmarks, which exit non-zero if any dispatch path diverges on any
# workload (jit_exec additionally fails if the optimizer never
# engages).  The smoke benches write BENCH_*_smoke.json; they are
# divergence gates, not performance claims — use `make bench` for real
# numbers.

.PHONY: all build lint test parity prop-long audit verify-plans audit-incremental bench bench-smoke ci clean

all: build

build:
	dune build

# Warnings-as-errors pass over the whole tree (the `lint` env profile in
# the root `dune` file promotes every enabled warning to an error).
lint:
	dune build --profile lint @check

test: build
	dune runtest

# Static firmware audit: every shipped image must audit clean, and every
# deliberately-bad corpus image must trip exactly its expected rule
# (no false negatives, no false positives).  Prints the JSON findings
# report for the shipped images.
audit: build
	dune exec bin/cheriot_audit.exe -- all

# Plan-soundness gate: run every shipped image under the jit tier
# (forced hot), statically prove every compiled check plan equivalent
# to the all-full plan, and refute every seeded optimizer mutant with
# exactly its expected plan-* rule.  Prints the JSON report.
verify-plans: build
	dune exec bin/cheriot_audit.exe -- plans

# Incremental-audit gate: for each shipped image, prime the summary
# cache, patch one instruction in one compartment and re-audit warm;
# fails unless only the patched compartment was re-analyzed and the
# warm report is byte-identical to a from-scratch audit.
audit-incremental: build
	dune exec bin/cheriot_audit.exe -- incremental

# Dispatch parity: every dispatch path (ref / cached / block / chain /
# jit) must be observationally identical on random streams, on generated
# multi-compartment scenarios (switcher cross-calls, allocator churn,
# revocation sweeps, code patches), under interrupt injection, and on
# coremark.  Alcotest prints the failing qcheck seed and the shrunk
# program listing on a mismatch.
parity: build
	dune exec test/test_cheriot.exe -- test differential
	dune exec test/test_cheriot.exe -- test proptest
	dune exec bin/cheriot_audit.exe -- plans

# The same property family with 20x the iteration counts (PROP_ITERS
# multiplies every qcheck ~count in lib/proptest and the harness-scaled
# unit suites).  Not part of `make ci`; run before cutting a release or
# after touching the dispatch paths.
prop-long: build
	PROP_ITERS=20 dune exec test/test_cheriot.exe -- test proptest
	PROP_ITERS=20 dune exec test/test_cheriot.exe -- test differential
	PROP_ITERS=20 dune exec test/test_cheriot.exe -- test fuzz

bench: build
	dune exec bench/main.exe -- decode_cache
	dune exec bench/main.exe -- block_exec
	dune exec bench/main.exe -- chain_exec
	dune exec bench/main.exe -- jit_exec
	dune exec bench/main.exe -- audit
	dune exec bench/main.exe -- audit_incremental
	dune exec bench/main.exe -- planverify

bench-smoke: build
	dune exec bench/main.exe -- decode_cache smoke
	dune exec bench/main.exe -- block_exec smoke
	dune exec bench/main.exe -- chain_exec smoke
	dune exec bench/main.exe -- jit_exec smoke
	dune exec bench/main.exe -- audit smoke
	dune exec bench/main.exe -- audit_incremental smoke
	dune exec bench/main.exe -- planverify smoke

ci: build lint test parity audit verify-plans audit-incremental bench-smoke

clean:
	dune clean
