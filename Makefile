# Entry points for local use and CI.
#
# `make ci` is the gate: build, the full test suite (including the
# differential oracle between the reference, cached and block dispatch
# paths), and reduced-workload runs of the decode-cache and block-exec
# benchmarks, which exit non-zero if any dispatch path diverges on any
# workload.  The smoke benches write BENCH_*_smoke.json; they are
# divergence gates, not performance claims — use `make bench` for real
# numbers.

.PHONY: all build test bench bench-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe -- decode_cache
	dune exec bench/main.exe -- block_exec

bench-smoke: build
	dune exec bench/main.exe -- decode_cache smoke
	dune exec bench/main.exe -- block_exec smoke

ci: build test bench-smoke

clean:
	dune clean
