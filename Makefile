# Entry points for local use and CI.
#
# `make ci` is the gate: build, the full test suite (including the
# differential oracle between the reference, cached, block and chain
# dispatch paths), the dispatch-parity gate (the differential suite in
# isolation — it fails printing the qcheck fuzz seed and shrunk program
# on any state-hash mismatch), and reduced-workload runs of the
# decode-cache, block-exec and chain-exec benchmarks, which exit
# non-zero if any dispatch path diverges on any workload.  The smoke
# benches write BENCH_*_smoke.json; they are divergence gates, not
# performance claims — use `make bench` for real numbers.

.PHONY: all build test parity bench bench-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Dispatch parity: every dispatch path (ref / cached / block / chain)
# must be observationally identical on random streams, under interrupt
# injection, and on coremark.  Alcotest prints the failing qcheck seed
# and the shrunk instruction stream on a mismatch.
parity: build
	dune exec test/test_cheriot.exe -- test differential

bench: build
	dune exec bench/main.exe -- decode_cache
	dune exec bench/main.exe -- block_exec
	dune exec bench/main.exe -- chain_exec

bench-smoke: build
	dune exec bench/main.exe -- decode_cache smoke
	dune exec bench/main.exe -- block_exec smoke
	dune exec bench/main.exe -- chain_exec smoke

ci: build test parity bench-smoke

clean:
	dune clean
