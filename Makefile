# Entry points for local use and CI.
#
# `make ci` is the gate: build, the full test suite (including the
# differential oracle between Machine.step and Machine.step_fast), and
# a reduced-workload run of the decode-cache benchmark, which exits
# non-zero if the two dispatch paths diverge on any workload.  The
# smoke bench writes BENCH_decode_cache_smoke.json; it is a divergence
# gate, not a performance claim — use `make bench` for real numbers.

.PHONY: all build test bench bench-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe -- decode_cache

bench-smoke: build
	dune exec bench/main.exe -- decode_cache smoke

ci: build test bench-smoke

clean:
	dune clean
