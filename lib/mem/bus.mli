(** The memory bus: routes CPU accesses to SRAM regions or MMIO devices,
    and carries the store-snoop signal that the background revoker uses to
    resolve its race with the main pipeline (paper 3.3.3). *)

type t

exception Bus_error of int
(** Raised on access to an unmapped address — surfaces as a trap. *)

val create : unit -> t
val add_sram : t -> Sram.t -> unit
val add_device : t -> Mmio.device -> unit

val set_revbits : t -> Revbits.t -> unit
(** Attach the revocation bitmap consulted by the load filter. *)

val revbits : t -> Revbits.t option

val sram_at : t -> int -> Sram.t option
(** The SRAM region containing an address, if any. *)

val srams : t -> Sram.t list
(** All SRAM regions on the bus, ordered by base address. *)

(** {1 Access} *)

val read : t -> width:int -> int -> int
(** [read t ~width addr] with [width] ∈ {1,2,4}.  MMIO accepts width 4
    only. *)

val write : t -> width:int -> int -> int -> unit
val read_cap : t -> int -> bool * int64
val write_cap : t -> int -> bool * int64 -> unit

(** {1 Store snooping} *)

val on_store : t -> (int -> unit) -> unit
(** Register a callback invoked with the (granule-aligned) address of
    every store; the background revoker uses it to re-load in-flight
    words that the main pipeline overwrote. *)

(** {1 Accounting} *)

val data_accesses : t -> int
(** Total data-side accesses since creation (bus beats are accounted by
    the core model, which knows its bus width). *)
