(** The memory bus: routes CPU accesses to SRAM regions or MMIO devices,
    and carries the store-snoop signal that the background revoker uses to
    resolve its race with the main pipeline (paper 3.3.3). *)

type t

exception Bus_error of int
(** Raised on access to an unmapped address — surfaces as a trap. *)

val create : unit -> t
val add_sram : t -> Sram.t -> unit
val add_device : t -> Mmio.device -> unit

val set_revbits : t -> Revbits.t -> unit
(** Attach the revocation bitmap consulted by the load filter. *)

val revbits : t -> Revbits.t option

val sram_at : t -> size:int -> int -> Sram.t option
(** The SRAM region containing the full [size]-byte access starting at
    an address, if any.  An access that begins inside an SRAM but runs
    off its end matches nothing — it must fault, not be clipped. *)

val srams : t -> Sram.t list
(** All SRAM regions on the bus, ordered by base address. *)

(** {1 Access} *)

val read : t -> width:int -> int -> int
(** [read t ~width addr] with [width] ∈ {1,2,4}.  MMIO accepts width 4
    only. *)

val write : t -> width:int -> int -> int -> unit
val read_cap : t -> int -> bool * int64
val write_cap : t -> int -> bool * int64 -> unit

(** {1 Store snooping} *)

val on_store : t -> (int -> unit) -> unit
(** Register a callback invoked with the (granule-aligned) address of
    every SRAM store; the background revoker uses it to re-load
    in-flight words that the main pipeline overwrote, and the
    decode/block caches use it to drop stale translations.  MMIO device
    writes do not fire snoops — device state is never cached. *)

(** {1 Window fast path}

    The machine resolves an SRAM once ({!sram_at}), keeps the region's
    bounds in mutable fields, and performs subsequent in-window accesses
    directly on the SRAM — no list walk, no option, no allocation.  The
    two hooks below keep that path observationally identical to
    {!read}/{!write}: the access counter still advances and SRAM stores
    still snoop. *)

val note_access : t -> unit
(** Count one data-side access made outside {!read}/{!write}. *)

val snoop_store : t -> int -> unit
(** Fire the store snoops for an SRAM store performed outside
    {!write}/{!write_cap} (granule-aligns the address itself). *)

(** {1 Accounting} *)

val data_accesses : t -> int
(** Total data-side accesses since creation (bus beats are accounted by
    the core model, which knows its bus width). *)
