type t = {
  base : int;
  size : int;
  data : Bytes.t;
  (* Two micro-tag bits per 8-byte granule: bit 2k = low half, bit 2k+1 =
     high half.  Packed 4 granules per byte. *)
  microtags : Bytes.t;
}

let create ~base ~size =
  if size <= 0 || size mod 8 <> 0 then
    invalid_arg "Sram.create: size must be a positive multiple of 8";
  {
    base;
    size;
    data = Bytes.make size '\000';
    microtags = Bytes.make (((size / 8 * 2) + 7) / 8) '\000';
  }

let base t = t.base
let size t = t.size
let in_range t ~addr ~size = addr >= t.base && addr + size <= t.base + t.size

let check t addr size align =
  if not (in_range t ~addr ~size) then
    invalid_arg (Printf.sprintf "Sram: 0x%x out of range" addr);
  if addr land (align - 1) <> 0 then
    invalid_arg (Printf.sprintf "Sram: 0x%x misaligned (%d)" addr align)

let microtag_get t bit =
  Char.code (Bytes.get t.microtags (bit lsr 3)) land (1 lsl (bit land 7)) <> 0

let microtag_set t bit v =
  let byte = Char.code (Bytes.get t.microtags (bit lsr 3)) in
  let mask = 1 lsl (bit land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.microtags (bit lsr 3) (Char.chr byte)

(* granule index and half (0 = low word, 1 = high word) of an address *)
let granule t addr = (addr - t.base) lsr 3
let half addr = (addr lsr 2) land 1

let clear_microtags_for_write t addr len =
  (* Any data write clears the micro-tag of each 32-bit half it touches. *)
  let first = (addr - t.base) lsr 2 in
  let last = (addr + len - 1 - t.base) lsr 2 in
  for half_idx = first to last do
    microtag_set t half_idx false
  done

(* Unchecked variants for the machine's resolved-window fast path: the
   caller has already proved the access in range and aligned (the window
   containment test subsumes [check]), so these go straight to the byte
   buffer.  Writes still clear micro-tags — that part is architectural,
   not a check. *)

let read8_u t addr = Char.code (Bytes.unsafe_get t.data (addr - t.base))
let read16_u t addr = Bytes.get_uint16_le t.data (addr - t.base)

let read32_u t addr =
  Int32.to_int (Bytes.get_int32_le t.data (addr - t.base)) land 0xFFFF_FFFF

let write8_u t addr v =
  Bytes.unsafe_set t.data (addr - t.base) (Char.unsafe_chr (v land 0xff));
  clear_microtags_for_write t addr 1

let write16_u t addr v =
  Bytes.set_uint16_le t.data (addr - t.base) (v land 0xffff);
  clear_microtags_for_write t addr 2

let write32_u t addr v =
  Bytes.set_int32_le t.data (addr - t.base) (Int32.of_int v);
  clear_microtags_for_write t addr 4

let read8 t addr =
  check t addr 1 1;
  Char.code (Bytes.get t.data (addr - t.base))

let read16 t addr =
  check t addr 2 2;
  Bytes.get_uint16_le t.data (addr - t.base)

let read32 t addr =
  check t addr 4 4;
  Int32.to_int (Bytes.get_int32_le t.data (addr - t.base)) land 0xFFFF_FFFF

let write8 t addr v =
  check t addr 1 1;
  Bytes.set t.data (addr - t.base) (Char.chr (v land 0xff));
  clear_microtags_for_write t addr 1

let write16 t addr v =
  check t addr 2 2;
  Bytes.set_uint16_le t.data (addr - t.base) (v land 0xffff);
  clear_microtags_for_write t addr 2

let write32 t addr v =
  check t addr 4 4;
  Bytes.set_int32_le t.data (addr - t.base) (Int32.of_int v);
  clear_microtags_for_write t addr 4

let read_cap t addr =
  check t addr 8 8;
  let g = granule t addr in
  let tag = microtag_get t (2 * g) && microtag_get t ((2 * g) + 1) in
  (tag, Bytes.get_int64_le t.data (addr - t.base))

let write_cap t addr (tag, word) =
  check t addr 8 8;
  Bytes.set_int64_le t.data (addr - t.base) word;
  let g = granule t addr in
  microtag_set t (2 * g) tag;
  microtag_set t ((2 * g) + 1) tag

let read_microtags t addr =
  let g = granule t (addr land lnot 7) in
  (microtag_get t (2 * g), microtag_get t ((2 * g) + 1))

let clear_tag_at t addr =
  let g = granule t (addr land lnot 7) in
  microtag_set t (2 * g) false;
  microtag_set t ((2 * g) + 1) false

let tag_at t addr =
  let lo, hi = read_microtags t addr in
  lo && hi

let _ = half

let fill t ~addr ~len c =
  if len > 0 then begin
    check t addr len 1;
    Bytes.fill t.data (addr - t.base) len c;
    clear_microtags_for_write t addr len
  end

let digest t =
  Digest.string
    (Printf.sprintf "%x:%x:" t.base t.size
    ^ Digest.bytes t.data ^ Digest.bytes t.microtags)

let blit_string t ~addr s =
  let len = String.length s in
  if len > 0 then begin
    check t addr len 1;
    Bytes.blit_string s 0 t.data (addr - t.base) len;
    clear_microtags_for_write t addr len
  end
