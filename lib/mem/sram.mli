(** Tagged SRAM.

    Embedded memory tightly coupled to the CPU (paper 3.3.2).  Each
    8-byte, capability-aligned granule carries tag state.  Following the
    CHERIoT-Ibex design (paper 4), the tag is stored as {e two} micro-tag
    bits, one per 32-bit half; the architectural tag is their AND.  A
    32-bit data write clears only its half's micro-tag — which suffices to
    clear the architectural tag — so a 33-bit data bus never needs to
    update the other half.  Capability (64-bit) writes set or clear both
    halves.  The Flute core's 65-bit bus writes both halves at once; the
    behaviour is identical architecturally. *)

type t

val create : base:int -> size:int -> t
(** [create ~base ~size] is zeroed SRAM covering [[base, base+size)].
    [size] must be a positive multiple of 8. *)

val base : t -> int
val size : t -> int
val in_range : t -> addr:int -> size:int -> bool

(** {1 Data access}

    Addresses are absolute; alignment is the caller's (the core's)
    responsibility — these raise [Invalid_argument] on out-of-range or
    misaligned access, conditions the ISA layer must have excluded. *)

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int

(** {2 Unchecked window access}

    For callers that already hold a resolved window over this SRAM and
    have proved the access in range and aligned (the emulator's
    within-block memory fast path): no range or alignment check, no
    allocation.  Out-of-window use is undefined (may read garbage or
    corrupt neighbouring bytes) — never call these on an address you
    have not window-tested.  Writes still clear the micro-tags of the
    granule halves they touch, exactly like the checked variants. *)

val read8_u : t -> int -> int
val read16_u : t -> int -> int
val read32_u : t -> int -> int
val write8_u : t -> int -> int -> unit
val write16_u : t -> int -> int -> unit
val write32_u : t -> int -> int -> unit
val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit
(** Data writes clear the micro-tag(s) of the granule halves they touch. *)

(** {1 Capability access} *)

val read_cap : t -> int -> bool * int64
(** [read_cap t addr] (8-byte aligned) is [(tag, word)] where [tag] is the
    AND of the two micro-tags. *)

val write_cap : t -> int -> bool * int64 -> unit
(** Write a capability word, setting both micro-tags to the tag value. *)

val read_microtags : t -> int -> bool * bool
(** The two per-half micro-tags of the granule containing the address —
    the hardware revoker uses the low half's bit to skip the second bus
    beat (paper 7.2.2). *)

val clear_tag_at : t -> int -> unit
(** Clear both micro-tags of the granule containing the address (the
    revoker's single-write invalidation touches memory too; this is the
    tag-only part used by tests). *)

val tag_at : t -> int -> bool
(** Architectural tag of the granule containing the address. *)

val digest : t -> string
(** MD5 of base, size, contents and micro-tags — the memory part of a
    machine state hash. *)

val fill : t -> addr:int -> len:int -> char -> unit
(** Fill a byte range (clearing affected micro-tags), e.g. stack zeroing. *)

val blit_string : t -> addr:int -> string -> unit
(** Copy raw bytes in (clearing affected micro-tags), e.g. program load. *)
