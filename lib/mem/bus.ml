exception Bus_error of int

type t = {
  mutable srams : Sram.t list;
  mutable devices : Mmio.device list;
  mutable revbits : Revbits.t option;
  mutable store_snoops : (int -> unit) list;
  mutable accesses : int;
  mutable mru_sram : Sram.t option;
      (* most-recently-hit SRAM: accesses cluster heavily, so this skips
         the list walk on nearly every read/write *)
}

let create () =
  {
    srams = [];
    devices = [];
    revbits = None;
    store_snoops = [];
    accesses = 0;
    mru_sram = None;
  }

let add_sram t s =
  t.srams <- s :: t.srams;
  t.mru_sram <- None
let add_device t d = t.devices <- d :: t.devices
let set_revbits t r = t.revbits <- Some r
let revbits t = t.revbits

let srams t =
  List.sort (fun a b -> compare (Sram.base a) (Sram.base b)) t.srams

(* The full access width matters: a multi-byte access starting on the
   last byte(s) of an SRAM must not be routed to it (it would straddle
   the region's end) — it falls through to the device match / bus
   error, exactly as unbacked addresses do. *)
let sram_at t ~size addr =
  match t.mru_sram with
  | Some s when Sram.in_range s ~addr ~size -> t.mru_sram
  | _ ->
      let r = List.find_opt (fun s -> Sram.in_range s ~addr ~size) t.srams in
      (match r with Some _ -> t.mru_sram <- r | None -> ());
      r

let device_at t addr =
  List.find_opt
    (fun d -> addr >= d.Mmio.dev_base && addr < d.Mmio.dev_base + d.dev_size)
    t.devices

(* Snoops watch SRAM granules only (revoker store-race, decode- and
   block-cache invalidation); MMIO device state is never cached, so
   device writes must not fire them. *)
let snoop_store t addr = List.iter (fun f -> f (addr land lnot 7)) t.store_snoops

let note_access t = t.accesses <- t.accesses + 1

let read t ~width addr =
  t.accesses <- t.accesses + 1;
  match sram_at t ~size:width addr with
  | Some s -> (
      match width with
      | 1 -> Sram.read8 s addr
      | 2 -> Sram.read16 s addr
      | 4 -> Sram.read32 s addr
      | _ -> invalid_arg "Bus.read: width")
  | None -> (
      match device_at t addr with
      | Some d when width = 4 -> d.Mmio.read32 (addr - d.Mmio.dev_base)
      | Some _ | None -> raise (Bus_error addr))

let write t ~width addr v =
  t.accesses <- t.accesses + 1;
  match sram_at t ~size:width addr with
  | Some s ->
      (match width with
      | 1 -> Sram.write8 s addr v
      | 2 -> Sram.write16 s addr v
      | 4 -> Sram.write32 s addr v
      | _ -> invalid_arg "Bus.write: width");
      snoop_store t addr
  | None -> (
      match device_at t addr with
      | Some d when width = 4 -> d.Mmio.write32 (addr - d.Mmio.dev_base) v
      | Some _ | None -> raise (Bus_error addr))

let read_cap t addr =
  t.accesses <- t.accesses + 1;
  match sram_at t ~size:8 addr with
  | Some s -> Sram.read_cap s addr
  | None -> raise (Bus_error addr)

let write_cap t addr v =
  t.accesses <- t.accesses + 1;
  (match sram_at t ~size:8 addr with
  | Some s -> Sram.write_cap s addr v
  | None -> raise (Bus_error addr));
  snoop_store t addr

let on_store t f = t.store_snoops <- f :: t.store_snoops
let data_accesses t = t.accesses
