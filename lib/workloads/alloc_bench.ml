(** The allocation microbenchmark (paper 7.2.2, Table 4, Figs. 5 & 6).

    Allocates and frees a total of 1 MiB of heap memory at a fixed
    allocation size (32 B … 128 KiB), through cross-compartment calls to
    the allocator compartment, under the four temporal-safety
    configurations (Baseline / Metadata / Software / Hardware), each with
    and without the stack high-water mark. *)

module Core_model = Cheriot_uarch.Core_model
module Revoker = Cheriot_uarch.Revoker
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator
module Sw_revoker = Cheriot_rtos.Sw_revoker
module Switcher = Cheriot_rtos.Switcher
module Sched = Cheriot_rtos.Sched

type config = {
  core : Core_model.core;
  temporal : Allocator.temporal;
  hwm : bool;
}

let config_name c =
  Printf.sprintf "%s/%s%s"
    (Core_model.name c.core)
    (match c.temporal with
    | Allocator.Baseline -> "Baseline"
    | Metadata -> "Metadata"
    | Software -> "Software"
    | Hardware -> "Hardware")
    (if c.hwm then "(S)" else "")

type result = {
  cycles : int;
  iterations : int;
  sweeps : int;
  sweep_cycles : int;
  bytes_zeroed : int;
  quarantine_peak : int;
}

let heap_base = 0x8_0000
let heap_size = 256 * 1024
let stack_base = 0x4_0000
let stack_size = 1024

let paper_sizes =
  [ 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536;
    131072 ]

(* How deep the allocator dirties its stack per call: free-list
   manipulation and header writes touch a few hundred bytes of frame. *)
let allocator_stack_use = 208

let run ?(total = 1 lsl 20) ?threshold config ~size =
  let params = Core_model.params_of config.core in
  let clock = Clock.create params in
  let sram = Sram.create ~base:stack_base ~size:(heap_base + heap_size - stack_base) in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc =
    Allocator.create ~temporal:config.temporal ?quarantine_threshold:threshold
      ~flute_poll_quirk:(config.core = Core_model.Flute)
      ~sram ~rev ~clock ~heap_base ~heap_size ()
  in
  (match config.temporal with
  | Allocator.Hardware ->
      let hw = Revoker.create ~core:config.core ~sram ~rev () in
      Clock.attach_revoker clock hw;
      Allocator.attach_hw_revoker alloc hw
  | Allocator.Software ->
      Allocator.set_sw_revoker alloc (Sw_revoker.create ~sram ~rev ~clock ())
  | Allocator.Baseline | Allocator.Metadata -> ());
  let switcher = Switcher.create ~hwm_enabled:config.hwm ~sram clock in
  let sched = Sched.create ~hwm_enabled:config.hwm clock in
  let stack = Switcher.make_stack ~base:stack_base ~size:stack_size in
  (* The benchmark thread enters the allocator calls with most of its
     1 KiB stack already occupied by its own frames: the switcher hands
     (and must clear) only the portion below the current SP. *)
  stack.Switcher.sp <- stack_base + 384;
  stack.Switcher.hwm <- stack_base + 384;
  let app = Sched.spawn sched ~name:"bench" ~priority:1 ~stack in
  let idle = Sched.spawn sched ~name:"idle" ~priority:0 ~stack in
  Sched.switch_to sched app;
  (* A thread blocked on the hardware revoker is context-switched out and
     periodically back in to recheck the epoch. *)
  Allocator.set_wait_ctx_pair alloc (2 * Sched.ctx_switch_cost sched);
  let iterations = total / size in
  for _ = 1 to iterations do
    (* the application's own work between allocator calls *)
    Clock.compute clock 20;
    let ptr =
      Switcher.cross_call switcher stack ~callee_frame:96
        ~callee_stack_use:allocator_stack_use (fun () ->
          match Allocator.malloc alloc size with
          | Ok c -> c
          | Error e -> Fmt.failwith "malloc(%d): %a" size Allocator.pp_error e)
    in
    Clock.compute clock 20;
    Switcher.cross_call switcher stack ~callee_frame:96
      ~callee_stack_use:allocator_stack_use (fun () ->
        match Allocator.free alloc ptr with
        | Ok () -> ()
        | Error e -> Fmt.failwith "free(%d): %a" size Allocator.pp_error e);
  done;
  ignore idle;
  let st = Allocator.stats alloc in
  {
    cycles = Clock.cycles clock;
    iterations;
    sweeps = st.Allocator.sweeps;
    sweep_cycles = st.Allocator.sweep_cycles;
    bytes_zeroed = Switcher.bytes_zeroed switcher;
    quarantine_peak = st.Allocator.quarantine_peak;
  }

let run_with_threshold config ~size ~threshold = run ~threshold config ~size

(* --- instruction-level variant for the decode-cache bench -------------- *)

module Machine = Cheriot_isa.Machine
module Asm = Cheriot_isa.Asm
module Insn = Cheriot_isa.Insn
module Bus = Cheriot_mem.Bus

(** The allocator's memory-access pattern as a real instruction stream on
    the emulator (the cycle-ledger benchmark above never executes
    instructions): each round carves 64 bounded 32-byte objects out of a
    bump region ([csetbounds] + header stores), parks their capabilities
    in a slot array ([csc]), then walks the slots back ([clc]), sums the
    headers and retires each capability untagged — the malloc/free shape
    that dominates Table 4.  Runs to [Ebreak]; the checksum lands in
    [a0]. *)
let isa_setup ?(rounds = 100) () =
  let code_base = 0x1_0000 and data_base = 0x2_0000 in
  let a0 = Insn.reg_a0 and a4 = Insn.reg_a4 and a5 = Insn.reg_a5 in
  let t0 = Insn.reg_t0 and t1 = Insn.reg_t1 and t2 = Insn.reg_t2 in
  let s0 = Insn.reg_s0 and s1 = Insn.reg_s1 and gp = Insn.reg_gp in
  let slots = 64 and obj_size = 32 in
  let program =
    [
      Asm.Li (a0, 0);
      Asm.Li (s1, rounds);
      Asm.Label "outer";
      (* bump pointer over the object area, above the slot array *)
      Asm.Li (t2, 0x1000);
      Asm.I (Insn.Cincaddr (s0, gp, t2));
      Asm.Li (t0, slots);
      Asm.Label "alloc";
      Asm.I (Insn.Csetboundsimm (a5, s0, obj_size));
      Asm.Li (t1, obj_size);
      Asm.I (Insn.Store { width = W; rs2 = t1; rs1 = a5; off = 0 });
      Asm.I (Insn.Store { width = W; rs2 = t0; rs1 = a5; off = 4 });
      Asm.I (Insn.Op_imm (Add, t2, t0, -1));
      Asm.I (Insn.Op_imm (Sll, t2, t2, 3));
      Asm.I (Insn.Cincaddr (a4, gp, t2));
      Asm.I (Insn.Csc (a5, a4, 0));
      Asm.I (Insn.Cincaddrimm (s0, s0, obj_size));
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "alloc");
      Asm.Li (t0, slots);
      Asm.Label "free";
      Asm.I (Insn.Op_imm (Add, t2, t0, -1));
      Asm.I (Insn.Op_imm (Sll, t2, t2, 3));
      Asm.I (Insn.Cincaddr (a4, gp, t2));
      Asm.I (Insn.Clc (a5, a4, 0));
      Asm.I (Insn.Load { signed = true; width = W; rd = t1; rs1 = a5; off = 0 });
      Asm.I (Insn.Op (Add, a0, a0, t1));
      Asm.I (Insn.Ccleartag (a5, a5));
      Asm.I (Insn.Csc (a5, a4, 0));
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "free");
      Asm.I (Insn.Op_imm (Add, s1, s1, -1));
      Asm.B (Insn.Ne, s1, 0, "outer");
      Asm.I Insn.Ebreak;
    ]
  in
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:0x1000 in
  let data = Sram.create ~base:data_base ~size:0x4000 in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  let img = Asm.assemble ~origin:code_base program in
  Asm.load img code;
  let m = Machine.create bus in
  m.Machine.pcc <-
    Cheriot_core.Capability.(
      set_bounds (with_address root_executable code_base) ~length:0x1000
        ~exact:true);
  Machine.set_reg m gp
    Cheriot_core.Capability.(
      set_bounds (with_address root_mem_rw data_base) ~length:0x4000
        ~exact:true);
  m

let overhead_vs_baseline ~baseline r =
  100.0
  *. (float_of_int r.cycles -. float_of_int baseline.cycles)
  /. float_of_int baseline.cycles
