(** The end-to-end IoT application (paper 7.2.3).

    The paper's demo runs a compartmentalized network stack — the
    FreeRTOS TCP/IP stack, mBedTLS and the FreeRTOS MQTT library, each in
    its own compartment — connecting to an IoT hub, fetching JavaScript
    bytecode and running it under the Microvium interpreter (another
    compartment) every 10 ms to animate LEDs, on CHERIoT-Ibex at 20 MHz.
    Every network packet sent or received is a separate heap allocation
    protected by temporal safety, as are the chunks of the JavaScript
    heap.  The reported result: 17.5 % CPU load averaged over a minute,
    including TLS session establishment.

    We reproduce it as a discrete-event simulation over the RTOS model:
    the same compartment-crossing structure, every packet and JS object a
    real allocation through the quarantining allocator, the hardware
    revoker sweeping in the background, and the idle thread absorbing the
    rest — the CPU load is computed from the scheduler's idle
    accounting. *)

module Core_model = Cheriot_uarch.Core_model
module Revoker = Cheriot_uarch.Revoker
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator
module Switcher = Cheriot_rtos.Switcher
module Sched = Cheriot_rtos.Sched

let clock_hz = 20_000_000
let js_tick_ms = 10

type result = {
  seconds : float;
  cpu_load_percent : float;
  idle_percent : float;
  packets : int;
  js_ticks : int;
  allocations : int;
  sweeps : int;
  context_switches : int;
}

(* Per-event busy costs in cycles, at the fidelity of the paper's
   description: interpreting a few hundred bytecodes per animation frame,
   AES/SHA software crypto per TLS record, header processing per layer.
   Each layer crossing is a real cross-compartment call. *)
let js_interpreter_cycles = 33_500 (* one animation frame in Microvium *)
let tcpip_rx_cycles = 3_500
let tls_record_cycles = 9_000 (* AES-GCM in software for one record *)
let mqtt_cycles = 1_800
let tls_handshake_crypto = 2_600_000 (* ECDHE + cert chain, once *)

let heap_base = 0x8_0000
let heap_size = 128 * 1024

let run ?(seconds = 60.0) ?(temporal = Allocator.Hardware) () =
  let core = Core_model.Ibex in
  let params = Core_model.params_of core in
  let clock = Clock.create params in
  let sram = Sram.create ~base:0x4_0000 ~size:(heap_base + heap_size - 0x4_0000) in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc =
    Allocator.create ~temporal ~sram ~rev ~clock ~heap_base ~heap_size ()
  in
  (match temporal with
  | Allocator.Hardware ->
      let hw = Revoker.create ~core ~sram ~rev () in
      Clock.attach_revoker clock hw;
      Allocator.attach_hw_revoker alloc hw
  | Allocator.Software ->
      Allocator.set_sw_revoker alloc
        (Cheriot_rtos.Sw_revoker.create ~sram ~rev ~clock ())
  | Allocator.Baseline | Allocator.Metadata -> ());
  let switcher = Switcher.create ~hwm_enabled:true ~sram clock in
  let sched = Sched.create ~hwm_enabled:true clock in
  let mk name prio base =
    Sched.spawn sched ~name ~priority:prio
      ~stack:(Switcher.make_stack ~base ~size:1024)
  in
  let net = mk "tcpip" 3 0x4_0000 in
  let js = mk "microvium" 2 0x4_0800 in
  let packets = ref 0 and js_ticks = ref 0 and allocations = ref 0 in
  let cross stack f = Switcher.cross_call switcher stack ~callee_frame:96 ~callee_stack_use:160 f in
  let with_packet stack size f =
    incr packets;
    incr allocations;
    let p =
      cross stack (fun () ->
          match Allocator.malloc alloc size with
          | Ok c -> c
          | Error e -> Fmt.failwith "packet alloc: %a" Allocator.pp_error e)
    in
    f p;
    cross stack (fun () ->
        match Allocator.free alloc p with
        | Ok () -> ()
        | Error e -> Fmt.failwith "packet free: %a" Allocator.pp_error e)
  in
  (* One inbound or outbound record: TCP/IP <-> TLS <-> MQTT, one
     compartment crossing per layer, the packet buffer passed by
     capability. *)
  let record stack size =
    Sched.switch_to sched net;
    with_packet stack size (fun _p ->
        Clock.compute clock tcpip_rx_cycles;
        cross stack (fun () -> Clock.compute clock tls_record_cycles);
        cross stack (fun () -> Clock.compute clock mqtt_cycles))
  in
  (* --- TLS session establishment (counted in the minute) ------------- *)
  Sched.switch_to sched net;
  Clock.compute clock tls_handshake_crypto;
  for _ = 1 to 6 do
    record net.Sched.stack 640
  done;
  (* fetch the JavaScript bytecode: 4 MQTT messages of 1 KiB *)
  for _ = 1 to 4 do
    record net.Sched.stack 1024
  done;
  (* --- steady state ---------------------------------------------------- *)
  let total_cycles = int_of_float (seconds *. float_of_int clock_hz) in
  let tick_cycles = clock_hz / 1000 * js_tick_ms in
  let next_keepalive = ref (Clock.cycles clock + clock_hz) in
  while Clock.cycles clock < total_cycles do
    let tick_start = Clock.cycles clock in
    (* JS animation frame: the interpreter allocates a few short-lived
       objects per frame (Microvium does not reuse memory between GC
       passes, so temporal safety covers JS objects too). *)
    Sched.switch_to sched js;
    incr js_ticks;
    Clock.compute clock js_interpreter_cycles;
    let objs =
      List.filter_map
        (fun size ->
          incr allocations;
          match Allocator.malloc alloc size with
          | Ok c -> Some c
          | Error _ -> None)
        [ 48; 64; 32; 96 ]
    in
    List.iter (fun c -> ignore (Allocator.free alloc c)) objs;
    (* MQTT keepalive once a second *)
    if Clock.cycles clock >= !next_keepalive then begin
      next_keepalive := !next_keepalive + clock_hz;
      record net.Sched.stack 128;
      record net.Sched.stack 128
    end;
    (* idle until the next 10 ms timer tick *)
    let next_tick = tick_start + tick_cycles in
    if Clock.cycles clock < next_tick then begin
      Sched.sleep_until js next_tick;
      Sched.sleep_until net next_tick;
      ignore (Sched.idle_to_next_wake sched)
    end
  done;
  let total = Clock.cycles clock in
  let idle = Sched.idle_cycles sched in
  let st = Allocator.stats alloc in
  {
    seconds = float_of_int total /. float_of_int clock_hz;
    cpu_load_percent = 100.0 *. float_of_int (total - idle) /. float_of_int total;
    idle_percent = 100.0 *. float_of_int idle /. float_of_int total;
    packets = !packets;
    js_ticks = !js_ticks;
    allocations = !allocations;
    sweeps = st.Allocator.sweeps;
    context_switches = Sched.context_switches sched;
  }

(* --- instruction-level variant for the decode-cache bench -------------- *)

module Machine = Cheriot_isa.Machine
module Asm = Cheriot_isa.Asm
module Insn = Cheriot_isa.Insn
module Bus = Cheriot_mem.Bus

(** The packet-processing inner loop as a real instruction stream on the
    emulator (the simulation above is discrete-event and never executes
    instructions): per packet, derive a bounded 64-byte buffer capability
    from the pool, fill it byte-by-byte, checksum it back with a second
    byte-wise pass, and every fourth packet run a short multiply-heavy
    "JS tick".  Runs to [Ebreak]; the running checksum lands in [a0]. *)
let isa_setup ?(packets = 200) () =
  let code_base = 0x1_0000 and data_base = 0x2_0000 in
  let a0 = Insn.reg_a0 and a1 = Insn.reg_a1 and a2 = Insn.reg_a2 in
  let a4 = Insn.reg_a4 in
  let t0 = Insn.reg_t0 and t1 = Insn.reg_t1 and t2 = Insn.reg_t2 in
  let s0 = Insn.reg_s0 and s1 = Insn.reg_s1 and gp = Insn.reg_gp in
  let buf_size = 64 in
  let program =
    [
      Asm.Li (a0, 0);
      Asm.Li (s1, packets);
      Asm.Label "pkt";
      (* one of eight pool buffers, chosen by packet number *)
      Asm.I (Insn.Op_imm (And, t2, s1, 7));
      Asm.I (Insn.Op_imm (Sll, t2, t2, 6));
      Asm.I (Insn.Cincaddr (s0, gp, t2));
      Asm.I (Insn.Csetboundsimm (s0, s0, buf_size));
      Asm.Li (t0, buf_size);
      Asm.Label "fill";
      Asm.I (Insn.Op_imm (Add, t2, t0, -1));
      Asm.I (Insn.Cincaddr (a4, s0, t2));
      Asm.I (Insn.Op (Xor, t1, t0, s1));
      Asm.I (Insn.Store { width = B; rs2 = t1; rs1 = a4; off = 0 });
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "fill");
      Asm.Li (t0, buf_size);
      Asm.Li (a1, 0);
      Asm.Label "cksum";
      Asm.I (Insn.Op_imm (Add, t2, t0, -1));
      Asm.I (Insn.Cincaddr (a4, s0, t2));
      Asm.I (Insn.Load { signed = false; width = B; rd = t1; rs1 = a4; off = 0 });
      Asm.I (Insn.Op (Xor, a1, a1, t1));
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "cksum");
      Asm.I (Insn.Op (Add, a0, a0, a1));
      (* every fourth packet: the Microvium interpreter tick *)
      Asm.I (Insn.Op_imm (And, t2, s1, 3));
      Asm.B (Insn.Ne, t2, 0, "nojs");
      Asm.Li (t0, 50);
      Asm.Li (a2, 7);
      Asm.Label "js";
      Asm.I (Insn.Mul_div (Mul, a2, a2, a2));
      Asm.I (Insn.Op_imm (Add, a2, a2, 13));
      Asm.I (Insn.Op (Add, a0, a0, a2));
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "js");
      Asm.Label "nojs";
      Asm.I (Insn.Op_imm (Add, s1, s1, -1));
      Asm.B (Insn.Ne, s1, 0, "pkt");
      Asm.I Insn.Ebreak;
    ]
  in
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:0x1000 in
  let data = Sram.create ~base:data_base ~size:0x1000 in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  let img = Asm.assemble ~origin:code_base program in
  Asm.load img code;
  let m = Machine.create bus in
  m.Machine.pcc <-
    Cheriot_core.Capability.(
      set_bounds (with_address root_executable code_base) ~length:0x1000
        ~exact:true);
  Machine.set_reg m gp
    Cheriot_core.Capability.(
      set_bounds (with_address root_mem_rw data_base) ~length:0x1000
        ~exact:true);
  m
