(** The firmware images this repository ships, as linkable definitions.

    The compartment sources for the examples, the simulator demo and the
    CoreMark-as-a-compartment benchmark used to live inline next to the
    code that ran them; the static auditor needs to link (not run) every
    shipped image, so they are collected here.  {!shipped} is the
    catalogue the [cheriot_audit] CI gate iterates over. *)

open Cheriot_isa
module Compartment = Cheriot_rtos.Compartment
module Loader = Cheriot_rtos.Loader
module Sram = Cheriot_mem.Sram

let a0 = Insn.reg_a0
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let sp = Insn.reg_sp
let gp = Insn.reg_gp
let ra = Insn.reg_ra
let sw rs2 rs1 off = Asm.I (Insn.Store { width = W; rs2; rs1; off })
let lw rd rs1 off = Asm.I (Insn.Load { signed = true; width = W; rd; rs1; off })

let export l = { Compartment.exp_label = l; exp_posture = Interrupts_enabled }

(** Cross-compartment call through the switcher: the sealed export in
    [slot], jumped to via the cross-call sentry in slot 0. *)
let call_slot slot =
  [
    Asm.I (Insn.Clc (t1, gp, slot));
    Asm.I (Insn.Clc (t2, gp, Compartment.switcher_slot));
    Asm.I (Insn.Jalr (ra, t2, 0));
  ]

(* --- the compartment-isolation image (examples, paper 2.2/2.6/5.2) ------ *)

(** Globals offset of crypto's signing key. *)
let key_slot = 16

(** crypto: sign(a0) = a0 xor key, key private in its globals. *)
let crypto =
  Compartment.v ~name:"crypto" ~globals_size:64 ~exports:[ export "sign" ]
    [
      Asm.Label "sign";
      lw t0 gp key_slot;
      Asm.I (Insn.Op (Xor, a0, a0, t0));
      Asm.Ret;
    ]

(** A well-behaved driver: returns 0, touches nothing. *)
let benign_driver = [ Asm.Label "driver"; Asm.Li (a0, 0); Asm.Ret ]

(** [isolation ~driver ()] links the three-compartment image: app imports
    crypto.sign (slot 8) and a driver (slot 16) whose body is [driver] —
    the examples substitute malicious bodies for it. *)
let isolation ?(driver = benign_driver) () =
  let app =
    Compartment.v ~name:"app" ~globals_size:64 ~exports:[ export "main" ]
      ~imports:
        [
          { imp_compartment = "crypto"; imp_export = "sign"; imp_slot = 8 };
          { imp_compartment = "mallory"; imp_export = "driver"; imp_slot = 16 };
        ]
      (List.concat
         [
           [
             Asm.Label "main";
             Asm.I (Insn.Cincaddrimm (sp, sp, -16));
             Asm.I (Insn.Csc (ra, sp, 0));
             (* 1: ask crypto to sign a message *)
             Asm.Li (a0, 0x42);
           ];
           call_slot 8;
           [ sw a0 sp 8 (* the signature, kept in our frame *) ];
           (* 2: call the driver *)
           call_slot 16;
           [
             (* 3: our signature must be intact *)
             lw a0 sp 8;
             Asm.I (Insn.Clc (ra, sp, 0));
             Asm.I Insn.Ebreak;
           ];
         ])
  in
  let mallory =
    Compartment.v ~name:"mallory" ~globals_size:64 ~exports:[ export "driver" ]
      driver
  in
  Loader.link [ app; crypto; mallory ] ~boot:("app", "main")

(** Poke the signing key into crypto's globals (the loader does not place
    initialized data). *)
let patch_key t key =
  let crypto_b = Loader.find t "crypto" in
  Sram.write32 t.Loader.sram (crypto_b.Loader.globals_base + key_slot) key

(* --- the simulator demo -------------------------------------------------- *)

(** Two compartments: app calls svc.double(21) through the switcher. *)
let demo () =
  let app =
    Compartment.v ~name:"app" ~globals_size:64 ~exports:[ export "main" ]
      ~imports:[ { imp_compartment = "svc"; imp_export = "double"; imp_slot = 8 } ]
      (List.concat
         [
           [ Asm.Label "main"; Asm.Li (a0, 21) ];
           call_slot 8;
           [ Asm.I Insn.Ebreak ];
         ])
  in
  let svc =
    Compartment.v ~name:"svc" ~globals_size:64 ~exports:[ export "double" ]
      [ Asm.Label "double"; Asm.I (Insn.Op (Add, a0, a0, a0)); Asm.Ret ]
  in
  Loader.link [ app; svc ] ~boot:("app", "main")

(* --- CoreMark as a compartment ------------------------------------------- *)

(** The capability-mode CoreMark kernels linked as a single compartment:
    all data accesses run against the compartment's own globals, so the
    image exercises the auditor's loops/bounds machinery. *)
let coremark ?(iterations = 1) () =
  let bench =
    Compartment.v ~name:"bench" ~globals_size:0x1000 ~exports:[ export "bench" ]
      (Asm.Label "bench" :: Coremark.program Coremark.Cheriot_caps ~iterations)
  in
  Loader.link [ bench ] ~boot:("bench", "bench")

(* --- the audit-incremental bench grid ------------------------------------- *)

(** [fleet ~variant ()] is the coremark compartment plus a tiny "sensor"
    compartment calling into it.  [bench] is linked first, so its code
    and globals layout — and therefore its audit summary hash — is
    identical across variants; only the sensor's code (which embeds
    [variant]) differs.  A summary cache shared across the fleet thus
    re-analyzes the expensive coremark fixpoint exactly once, which is
    what [bench audit_incremental] measures. *)
let fleet ?(iterations = 1) ~variant () =
  let bench =
    Compartment.v ~name:"bench" ~globals_size:0x1000 ~exports:[ export "bench" ]
      (Asm.Label "bench" :: Coremark.program Coremark.Cheriot_caps ~iterations)
  in
  let sensor =
    Compartment.v ~name:"sensor" ~globals_size:64 ~exports:[ export "main" ]
      ~imports:[ { imp_compartment = "bench"; imp_export = "bench"; imp_slot = 8 } ]
      (List.concat
         [
           [ Asm.Label "main"; Asm.Li (a0, variant land 0x7FF) ];
           call_slot 8;
           [ Asm.I Insn.Ebreak ];
         ])
  in
  Loader.link [ bench; sensor ] ~boot:("sensor", "main")

(* --- the catalogue -------------------------------------------------------- *)

(** Every image the repository ships, by name — the audit gate runs over
    all of them and requires zero findings. *)
let shipped : (string * (unit -> Loader.t)) list =
  [
    ("isolation", fun () -> isolation ());
    ("demo", demo);
    ("coremark", fun () -> coremark ());
  ]
