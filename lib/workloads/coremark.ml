(** A CoreMark-shaped benchmark (paper 7.2.1, Table 3).

    CoreMark's three kernels — linked-list processing, matrix multiply,
    and a CRC/state machine — are emitted by this module as assembly for
    the simulated cores, in two code-generation modes:

    - [Rv32e]: the baseline; pointers are 32-bit integers, memory is
      reached through the implicit full-authority DDC.
    - [Cheriot_caps]: pointers are 64-bit capabilities ([clc]/[csc],
      subject to the load filter), derived pointers get bounds set, and
      the two documented CHERIoT-LLVM bugs are reproduced: (1) address
      arithmetic on capability bases is not folded into load offsets in
      array-of-struct loops, costing an extra [cincaddr] per access, and
      (2) accesses to globals redundantly re-apply bounds even when
      provably in range.

    Function calls model the [-Oz] RV32E reality that drives the Ibex
    numbers: prologues spill the return pointer and a saved register —
    which in capability mode are 8-byte [csc]/[clc] pairs, two bus beats
    each on the 33-bit Ibex bus and subject to the load filter's extra
    load-to-use cycle (7.2.1).

    Both modes compute identical checksums, which the tests verify.
    The score is iterations per million cycles — CoreMark/MHz — scaled
    by one global constant calibrated on the Flute RV32E baseline. *)

open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits
module Core_model = Cheriot_uarch.Core_model
module Perf = Cheriot_uarch.Perf

type mode = Rv32e | Cheriot_caps

let code_base = 0x10000
let data_base = 0x20000
let stack_top = 0x3f000

let a0 = Insn.reg_a0
let a1 = Insn.reg_a1
let a2 = Insn.reg_a2
let a3 = Insn.reg_a3
let a4 = Insn.reg_a4
let a5 = Insn.reg_a5
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let s0 = Insn.reg_s0
let s1 = Insn.reg_s1
let gp = Insn.reg_gp
let sp = Insn.reg_sp
let ra = Insn.reg_ra

let n_nodes = 24
let list_walks = 6
let mat_n = 6
let crc_bytes = 48

let node_stride = function Rv32e -> 8 | Cheriot_caps -> 16
let list_area = 0
let mat_a = 0x400
let mat_b = 0x500
let mat_c = 0x600
let crc_area = 0x700

let padd mode dst src off =
  match mode with
  | Rv32e -> [ Asm.I (Insn.Op_imm (Add, dst, src, off)) ]
  | Cheriot_caps -> [ Asm.I (Insn.Cincaddrimm (dst, src, off)) ]

let pmove mode dst src =
  match mode with
  | Rv32e -> [ Asm.I (Insn.Op_imm (Add, dst, src, 0)) ]
  | Cheriot_caps -> [ Asm.I (Insn.Cmove (dst, src)) ]

let load_ptr mode rd rs off =
  match mode with
  | Rv32e -> [ Asm.I (Insn.Load { signed = true; width = W; rd; rs1 = rs; off }) ]
  | Cheriot_caps -> [ Asm.I (Insn.Clc (rd, rs, off)) ]

let store_ptr mode rs2 rs1 off =
  match mode with
  | Rv32e -> [ Asm.I (Insn.Store { width = W; rs2; rs1; off }) ]
  | Cheriot_caps -> [ Asm.I (Insn.Csc (rs2, rs1, off)) ]

(* Loop while the pointer in [r] is non-null (baseline) / tagged (caps). *)
let branch_ptr_nonnull mode r label =
  match mode with
  | Rv32e -> [ Asm.B (Insn.Ne, r, 0, label) ]
  | Cheriot_caps ->
      [ Asm.I (Insn.Cget (Tag, t2, r)); Asm.B (Insn.Ne, t2, 0, label) ]

(* A pointer to the global at [data_base + off]; capability code re-derives
   and re-bounds it (compiler bug 2). *)
let global_ptr mode rd off ~len =
  match mode with
  | Rv32e -> [ Asm.Li (rd, data_base + off) ]
  | Cheriot_caps ->
      [
        Asm.I (Insn.Cincaddrimm (rd, gp, off));
        Asm.I (Insn.Csetboundsimm (rd, rd, min len 4095));
      ]

let lw rd rs off = Asm.I (Insn.Load { signed = true; width = W; rd; rs1 = rs; off })
let lbu rd rs off = Asm.I (Insn.Load { signed = false; width = B; rd; rs1 = rs; off })
let sw rs2 rs1 off = Asm.I (Insn.Store { width = W; rs2; rs1; off })
let sb rs2 rs1 off = Asm.I (Insn.Store { width = B; rs2; rs1; off })
let addi rd rs v = Asm.I (Insn.Op_imm (Add, rd, rs, v))
let add rd x y = Asm.I (Insn.Op (Add, rd, x, y))
let mul rd x y = Asm.I (Insn.Mul_div (Mul, rd, x, y))

(* --- kernel 1: linked list -------------------------------------------- *)

let list_reverse mode ~label ~start_off =
  List.concat
    [
      global_ptr mode s0 (list_area + start_off)
        ~len:(node_stride mode * n_nodes);
      pmove mode a4 0 (* prev = null *);
      [ Asm.Label label ];
      load_ptr mode a5 s0 0;
      store_ptr mode a4 s0 0;
      pmove mode a4 s0;
      pmove mode s0 a5;
      branch_ptr_nonnull mode s0 label;
    ]

let list_kernel mode =
  let stride = node_stride mode in
  let valoff = match mode with Rv32e -> 4 | Cheriot_caps -> 8 in
  let area_len = n_nodes * stride in
  List.concat
    [
      (* build *)
      global_ptr mode s0 list_area ~len:area_len;
      [ Asm.Li (t1, n_nodes - 1); Asm.Label "list_init" ];
      padd mode t2 s0 stride;
      store_ptr mode t2 s0 0;
      [ sw t1 s0 valoff ];
      padd mode s0 s0 stride;
      [ addi t1 t1 (-1); Asm.B (Insn.Ne, t1, 0, "list_init") ];
      store_ptr mode 0 s0 0;
      [ Asm.Li (t1, 99); sw t1 s0 valoff ];
      (* find/sum walks: pointer chasing with a per-node call to the
         comparator function, as core_list_find does *)
      [ Asm.Li (a3, list_walks); Asm.Label "list_walks" ];
      global_ptr mode s0 list_area ~len:area_len;
      [ Asm.Label "list_walk" ];
      [ Asm.Call "list_val"; add a0 a0 t2 ];
      load_ptr mode s0 s0 0;
      branch_ptr_nonnull mode s0 "list_walk";
      [ addi a3 a3 (-1); Asm.B (Insn.Ne, a3, 0, "list_walks") ];
      (* two reversals (pointer rewrites), restoring the order *)
      list_reverse mode ~label:"list_rev_a" ~start_off:0;
      list_reverse mode ~label:"list_rev_b" ~start_off:((n_nodes - 1) * stride);
      (* modify pass *)
      global_ptr mode s0 list_area ~len:area_len;
      [ Asm.Li (t1, n_nodes); Asm.Label "list_mod" ];
      [ lw t2 s0 valoff; addi t2 t2 3; sw t2 s0 valoff; add a0 a0 t2 ];
      padd mode s0 s0 stride;
      [ addi t1 t1 (-1); Asm.B (Insn.Ne, t1, 0, "list_mod") ];
    ]

(* --- kernel 2: matrix multiply ----------------------------------------- *)

let matrix_kernel mode =
  let row_shift = 5 (* row stride 32 bytes: mat_n=6 padded rows of 8 *) in
  List.concat
    [
      (* init A and B *)
      global_ptr mode s0 mat_a ~len:0x100;
      global_ptr mode a1 mat_b ~len:0x100;
      [ Asm.Li (t0, 0); Asm.Label "mat_init_i"; Asm.Li (t1, 0);
        Asm.Label "mat_init_j" ];
      [
        add t2 t0 t1;
        Asm.I (Insn.Op_imm (Sll, a4, t0, row_shift));
        Asm.I (Insn.Op_imm (Sll, a5, t1, 2));
        add a4 a4 a5;
      ];
      (match mode with
      | Rv32e -> [ add a5 s0 a4; sw t2 a5 0; add a5 a1 a4 ]
      | Cheriot_caps ->
          [
            Asm.I (Insn.Cincaddr (a5, s0, a4));
            sw t2 a5 0;
            Asm.I (Insn.Cincaddr (a5, a1, a4));
          ]);
      [
        Asm.I (Insn.Op (Xor, t2, t0, t1));
        sw t2 a5 0;
        addi t1 t1 1;
        Asm.Li (a5, mat_n);
        Asm.B (Insn.Lt, t1, a5, "mat_init_j");
        addi t0 t0 1;
        Asm.B (Insn.Lt, t0, a5, "mat_init_i");
      ];
      (* C = A*B; B base hoisted into ra-equivalent... ra holds the B
         pointer for the whole kernel (restored before any call). *)
      global_ptr mode ra mat_b ~len:0x100;
      [ Asm.Li (t0, 0); Asm.Label "mm_i" ];
      global_ptr mode s0 mat_a ~len:0x100;
      [ Asm.I (Insn.Op_imm (Sll, a4, t0, row_shift)) ];
      (match mode with
      | Rv32e -> [ add s0 s0 a4 ]
      | Cheriot_caps -> [ Asm.I (Insn.Cincaddr (s0, s0, a4)) ]);
      [ Asm.Li (t1, 0); Asm.Label "mm_j"; Asm.Li (a1, 0); Asm.Li (t2, 0);
        Asm.Label "mm_k" ];
      [ Asm.I (Insn.Op_imm (Sll, a4, t2, 2)) ];
      (match mode with
      | Rv32e -> [ add a5 s0 a4; lw a2 a5 0 ]
      | Cheriot_caps -> [ Asm.I (Insn.Cincaddr (a5, s0, a4)); lw a2 a5 0 ]);
      [
        Asm.I (Insn.Op_imm (Sll, a4, t2, row_shift));
        Asm.I (Insn.Op_imm (Sll, a5, t1, 2));
        add a4 a4 a5;
      ];
      (match mode with
      | Rv32e -> [ add a5 ra a4; lw a3 a5 0 ]
      | Cheriot_caps ->
          [
            Asm.I (Insn.Cincaddr (a5, ra, a4));
            Asm.I (Insn.Csetboundsimm (a5, a5, 4));
            lw a3 a5 0;
          ]);
      [
        mul a2 a2 a3;
        add a1 a1 a2;
        addi t2 t2 1;
        Asm.Li (a5, mat_n);
        Asm.B (Insn.Lt, t2, a5, "mm_k");
      ];
      global_ptr mode a3 mat_c ~len:0x100;
      [
        Asm.I (Insn.Op_imm (Sll, a4, t0, row_shift));
        Asm.I (Insn.Op_imm (Sll, a5, t1, 2));
        add a4 a4 a5;
      ];
      (match mode with
      | Rv32e -> [ add a3 a3 a4 ]
      | Cheriot_caps -> [ Asm.I (Insn.Cincaddr (a3, a3, a4)) ]);
      [
        sw a1 a3 0;
        add a0 a0 a1;
        addi t1 t1 1;
        Asm.Li (a5, mat_n);
        Asm.B (Insn.Lt, t1, a5, "mm_j");
        addi t0 t0 1;
        Asm.B (Insn.Lt, t0, a5, "mm_i");
      ];
    ]

(* --- kernel 3: CRC / state machine -------------------------------------- *)

(* crcu8: a real function with an -Oz prologue spilling the return
   pointer and one callee-saved register.  In capability mode those are
   csc/clc of 8-byte capabilities — the Ibex-visible cost. *)
(* list_val: the list comparator/accessor called once per visited node.
   The -Oz prologue spills the return pointer and one saved register; in
   capability mode the value load also pays the un-folded address
   derivation of compiler bug 1. *)
let list_val_function mode =
  let valoff = match mode with Rv32e -> 4 | Cheriot_caps -> 8 in
  List.concat
    [
      [ Asm.Label "list_val" ];
      (match mode with
      | Rv32e -> [ addi sp sp (-8); sw ra sp 0; sw s0 sp 4 ]
      | Cheriot_caps ->
          List.concat
            [
              [
                Asm.I (Insn.Cincaddrimm (sp, sp, -16));
                (* -Oz sets bounds on the stack frame allocation *)
                Asm.I (Insn.Csetboundsimm (a4, sp, 16));
              ];
              store_ptr mode ra a4 0;
              store_ptr mode s0 a4 8;
            ]);
      (match mode with
      | Rv32e -> [ lw t2 s0 valoff ]
      | Cheriot_caps ->
          [ Asm.I (Insn.Cincaddrimm (a2, s0, valoff)); lw t2 a2 0 ]);
      [ addi t2 t2 1 ];
      (match mode with
      | Rv32e -> [ lw ra sp 0; lw s0 sp 4; addi sp sp 8 ]
      | Cheriot_caps ->
          List.concat
            [
              load_ptr mode ra sp 0;
              load_ptr mode s0 sp 8;
              [ Asm.I (Insn.Cincaddrimm (sp, sp, 16)) ];
            ]);
      [ Asm.Ret ];
    ]

let crcu8_function mode =
  List.concat
    [
      [ Asm.Label "crcu8" ];
      (match mode with
      | Rv32e ->
          [ addi sp sp (-8); sw ra sp 0; sw s0 sp 4 ]
      | Cheriot_caps ->
          List.concat
            [
              [
                Asm.I (Insn.Cincaddrimm (sp, sp, -16));
                (* -Oz sets bounds on the stack frame allocation *)
                Asm.I (Insn.Csetboundsimm (a4, sp, 16));
              ];
              store_ptr mode ra a4 0;
              store_ptr mode s0 a4 8;
            ]);
      [
        Asm.I (Insn.Op (Xor, a1, a1, a2));
        Asm.Li (t1, 8);
        Asm.Label "crc_bit";
        Asm.I (Insn.Op_imm (And, a2, a1, 1));
        Asm.I (Insn.Op_imm (Srl, a1, a1, 1));
        Asm.B (Insn.Eq, a2, 0, "crc_skip");
        Asm.Li (a3, 0xa001);
        Asm.I (Insn.Op (Xor, a1, a1, a3));
        Asm.Label "crc_skip";
        addi t1 t1 (-1);
        Asm.B (Insn.Ne, t1, 0, "crc_bit");
      ];
      (match mode with
      | Rv32e ->
          [ lw ra sp 0; lw s0 sp 4; addi sp sp 8 ]
      | Cheriot_caps ->
          List.concat
            [
              load_ptr mode ra sp 0;
              load_ptr mode s0 sp 8;
              [ Asm.I (Insn.Cincaddrimm (sp, sp, 16)) ];
            ]);
      [ Asm.Ret ];
    ]

let crc_kernel mode =
  List.concat
    [
      (* init buffer *)
      global_ptr mode s0 crc_area ~len:crc_bytes;
      [ Asm.Li (t0, 0); Asm.Label "crc_init" ];
      [ Asm.Li (t1, 31); mul t2 t0 t1; addi t2 t2 7; sb t2 s0 0 ];
      padd mode s0 s0 1;
      [
        addi t0 t0 1;
        Asm.Li (t1, crc_bytes);
        Asm.B (Insn.Lt, t0, t1, "crc_init");
      ];
      (* crc16 via calls to crcu8 *)
      global_ptr mode s0 crc_area ~len:crc_bytes;
      [ Asm.Li (a1, 0xffff); Asm.Li (t0, 0); Asm.Label "crc_byte" ];
      [ lbu a2 s0 0 ];
      padd mode s0 s0 1;
      [ Asm.Call "crcu8" ];
      [
        addi t0 t0 1;
        Asm.Li (t1, crc_bytes);
        Asm.B (Insn.Lt, t0, t1, "crc_byte");
        add a0 a0 a1;
      ];
    ]

let program mode ~iterations =
  List.concat
    [
      [ Asm.Li (a0, 0); Asm.Li (s1, iterations); Asm.Label "iter" ];
      [ Asm.I (Insn.Op_imm (Add, Insn.reg_tp, s1, 0)) ];
      list_kernel mode;
      matrix_kernel mode;
      crc_kernel mode;
      [
        Asm.I (Insn.Op_imm (Add, s1, Insn.reg_tp, 0));
        addi s1 s1 (-1);
        Asm.B (Insn.Ne, s1, 0, "iter");
        Asm.I Insn.Ebreak;
      ];
      crcu8_function mode;
      list_val_function mode;
    ]

type result = {
  checksum : int;
  cycles : int;
  instructions : int;
  score : float;
}

(* One global constant calibrated so the Flute RV32E baseline lands at
   2.017 CoreMark/MHz; every configuration uses the same constant, so
   relative results are honest. *)
let score_scale = ref 1.0

(** Build a machine with the CoreMark image loaded and registers set up,
    ready to run to [Ebreak] — shared by {!run} and the decode-cache
    bench, which drives [Machine.step]/[step_fast] directly. *)
let setup ?(iterations = 10) (config : Core_model.config) =
  let bus = Bus.create () in
  let sram = Sram.create ~base:code_base ~size:0x30000 in
  Bus.add_sram bus sram;
  let rev = Revbits.create ~heap_base:data_base ~heap_size:0x1000 () in
  Bus.set_revbits bus rev;
  let mode = if config.Core_model.cheri then Cheriot_caps else Rv32e in
  let img = Asm.assemble ~origin:code_base (program mode ~iterations) in
  Asm.load img sram;
  let machine_mode = if config.cheri then Machine.Cheriot else Machine.Rv32 in
  let m =
    Machine.create ~mode:machine_mode ~load_filter:config.load_filter bus
  in
  (match machine_mode with
  | Machine.Cheriot ->
      m.Machine.pcc <-
        Cheriot_core.Capability.(
          set_bounds
            (with_address root_executable code_base)
            ~length:0x10000 ~exact:false);
      Machine.set_reg m gp
        Cheriot_core.Capability.(
          set_bounds
            (with_address root_mem_rw data_base)
            ~length:0x4000 ~exact:true);
      Machine.set_reg m sp
        Cheriot_core.Capability.(
          incr_address
            (set_bounds
               (with_address root_mem_rw (stack_top - 0x1000))
               ~length:0x1000 ~exact:true)
            0x1000)
  | Machine.Rv32 ->
      m.Machine.pcc <-
        Cheriot_core.Capability.{ root_executable with addr = code_base };
      Machine.set_reg_int m sp stack_top);
  m

let run ?(iterations = 10) ?(dispatch = Perf.Reference)
    (config : Core_model.config) =
  let m = setup ~iterations config in
  let perf =
    Perf.create ~dispatch ~params:(Core_model.params_of config.core) m
  in
  (match Perf.run ~fuel:20_000_000 perf with
  | Machine.Step_halted -> ()
  | _ -> failwith "coremark: did not halt");
  let st = perf.Perf.stats in
  {
    checksum = Machine.reg_int m a0;
    cycles = st.Perf.cycles;
    instructions = st.Perf.instructions;
    score =
      !score_scale *. float_of_int iterations *. 1_000_000.0
      /. float_of_int st.Perf.cycles;
  }

(** Calibrate {!score_scale} so the Flute RV32E baseline scores 2.017 —
    the paper's absolute anchor. *)
let calibrate () =
  score_scale := 1.0;
  let r = run (Core_model.config ~cheri:false Flute) in
  score_scale := 2.017 /. r.score *. !score_scale
