(** Shared machine-boot scaffolding for the property harness.

    Every differential/fuzz property used to carry its own copy of this:
    build a bus, add SRAMs, blit the program, flush the decode cache
    (the blit bypasses the bus's store snoop, exactly as a loader does),
    and install the initial authority — a bounded executable PCC over
    the code region, a data capability in c3, a stack capability (local,
    address at the top) in c2, and a sealing key in c9.  The flat boot
    here is the single copy; [test_fuzz], [test_differential] and
    [test_block_cache] are thin property lists over it. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Mmio = Cheriot_mem.Mmio

(* The flat memory map shared by the raw-stream properties. *)
let code_base = 0x1_0000
let code_size = 0x800
let data_base = 0x2_0000
let data_size = 0x1000
let stack_base = 0x3_0000
let stack_size = 0x800

type flat = {
  m : Machine.t;
  code : Sram.t;
  data : Sram.t;
  stack : Sram.t;
}

(** The [(base, size, sram)] triples of a flat machine — what the
    authority scan walks. *)
let flat_srams f =
  [
    (code_base, code_size, f.code);
    (data_base, data_size, f.data);
    (stack_base, stack_size, f.stack);
  ]

(** Boot a flat machine around [words].

    [writable_code] additionally grants c4 a read/write capability over
    the code region, so generated stores can patch instructions through
    the bus — real self-modifying streams that exercise the store snoop,
    block invalidation and chain unlinking on every dispatch path. *)
let flat ?(writable_code = false) words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  let data = Sram.create ~base:data_base ~size:data_size in
  let stack = Sram.create ~base:stack_base ~size:stack_size in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  Bus.add_sram bus stack;
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  (* the program was blitted straight into SRAM, behind the bus's store
     snoop: flush, as a loader must *)
  Machine.flush_decode_cache m;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  Machine.set_reg m 3
    (Capability.set_bounds
       (Capability.with_address Capability.root_mem_rw data_base)
       ~length:data_size ~exact:false);
  Machine.set_reg m 2
    (Capability.clear_perms
       (Capability.incr_address
          (Capability.set_bounds
             (Capability.with_address Capability.root_mem_rw stack_base)
             ~length:stack_size ~exact:false)
          stack_size)
       [ GL ]);
  (* a sealing key too: otype authority must not leak memory authority *)
  Machine.set_reg m 9 (Capability.with_address Capability.root_sealing 3);
  if writable_code then
    Machine.set_reg m 4
      (Capability.set_bounds
         (Capability.with_address Capability.root_mem_rw code_base)
         ~length:code_size ~exact:false);
  { m; code; data; stack }

(* --- the flat machine's authority envelope ------------------------------ *)

let mem_perms = Capability.perms Capability.root_mem_rw
let exec_perms = Capability.perms Capability.root_executable
let seal_perms = Capability.perms Capability.root_sealing

(** The monotonicity predicate over the flat boot's grants: a tagged
    capability is within authority iff it is a (bounds, perms) shrink of
    one of the booted capabilities.  With [writable_code] the code
    region is additionally reachable with memory permissions (the c4
    grant). *)
let flat_within_authority ?(writable_code = false) c =
  if not c.Capability.tag then true
  else
    let b = Capability.base c and t = Capability.top c in
    let inside lo sz = b >= lo && t <= lo + sz in
    let p = Capability.perms c in
    (inside code_base code_size && Perm.Set.subset p exec_perms)
    || ((inside data_base data_size || inside stack_base stack_size)
       && Perm.Set.subset p mem_perms)
    || (writable_code && inside code_base code_size
       && Perm.Set.subset p mem_perms)
    || (inside 0 8 && Perm.Set.subset p seal_perms)

(** Scan a machine's registers, special registers and [srams] for tagged
    capabilities outside [within]; returns the offenders rendered. *)
let authority_violations ~within m srams =
  let bad = ref [] in
  let chk what c =
    if not (within c) then bad := Fmt.str "%s=%a" what Capability.pp c :: !bad
  in
  for r = 1 to 15 do
    chk (Printf.sprintf "c%d" r) m.Machine.regs.(r)
  done;
  chk "pcc" m.Machine.pcc;
  chk "mepcc" m.Machine.mepcc;
  chk "mtdc" m.Machine.mtdc;
  chk "mscratchc" m.Machine.mscratchc;
  List.iter
    (fun (base, size, sram) ->
      let a = ref base in
      while !a < base + size do
        if Sram.tag_at sram !a then begin
          let tag, w = Sram.read_cap sram !a in
          chk (Printf.sprintf "mem@0x%x" !a) (Capability.of_word ~tag w)
        end;
        a := !a + 8
      done)
    srams;
  !bad

(* --- the single-SRAM boot used by the block-cache regressions ------------ *)

(** Boot a machine with one code SRAM at [code_base] of [code_size]
    bytes (default 0x400) and, with [device], a RAM-backed MMIO window
    at 0x9000 (for the no-snoop rules).  Returns the machine and the
    code SRAM. *)
let code_only ?(code_size = 0x400) ?(device = false) words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  Bus.add_sram bus code;
  if device then
    Bus.add_device bus (fst (Mmio.ram_backed ~name:"dev" ~base:0x9000 ~size:16));
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  Machine.flush_decode_cache m;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  (m, code)

(* --- program rendering --------------------------------------------------- *)

(** Render a raw word stream as a disassembly listing — the shape every
    shrunk counterexample is printed in. *)
let print_words ws =
  String.concat "\n"
    (List.map
       (fun w ->
         match Encode.decode w with
         | Some i -> Printf.sprintf "%08x  %s" w (Insn.to_string i)
         | None -> Printf.sprintf "%08x  ???" w)
       ws)
