(** The iteration-count knob shared by every property in the harness.

    [PROP_ITERS] is a global multiplier on the per-property default
    counts: unset (or [1]) is the small CI budget used by `make ci`;
    `make prop-long` exports a large value for nightly-style deep runs.
    A multiplier — rather than an absolute count — keeps the relative
    weighting of cheap and expensive properties intact at every depth. *)

let factor =
  match Sys.getenv_opt "PROP_ITERS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          Printf.eprintf "PROP_ITERS=%s is not a positive integer; using 1\n" s;
          1)

(** [count ~default] is the qcheck [~count] for a property whose CI
    budget is [default] cases. *)
let count ~default = default * factor
