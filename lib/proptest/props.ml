(** The observational-equivalence property family (DESIGN.md §12).

    One generator of programs — flat random instruction streams
    ({!Flatgen}) and well-formed multi-compartment scenarios
    ({!Scenario}) — and one family of properties over it:

    + {b state-trace equivalence} of all five dispatch modes
      (ref / cached / block / chain / jit), per retired instruction and
      under interrupt injection, with a tiny [hot_threshold] so
      superblock formation, side exits and the optimizer's check plans
      are constantly crossed;
    + {b cycle-model agreement}: the {!Perf} harness charges identical
      cycles and instructions on every dispatch variant, on both core
      models (Ibex and Flute);
    + {b authority monotonicity}: no scenario execution amplifies the
      boot-time capability envelope (the paper-2.5 invariant,
      generalized from the flat fuzz boot to linked images);
    + {b codec/engine invariants}: the E'4/B'9/T'9 bounds round-trip
      properties (in [test_bounds], over {!Flatgen.gen_region}) and
      [Revoker.tick_n] ≡ tick-loop equivalence under random grant and
      snoop schedules;
    + {b auditor precision}: every generated {e clean} scenario audits
      with zero findings — the zero-false-positive claim pinned under
      generated, not hand-written, inputs.

    Every property prints, on failure, the qcheck seed plus the shrunk
    program (disassembly listing and reference trace), so a failure
    reproduces in one command. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits
module Core_model = Cheriot_uarch.Core_model
module Perf = Cheriot_uarch.Perf
module Revoker = Cheriot_uarch.Revoker
module Loader = Cheriot_rtos.Loader
module Allocator = Cheriot_rtos.Allocator
module Audit = Cheriot_analysis.Audit
module Rules = Cheriot_analysis.Rules
module Planverify = Cheriot_analysis.Planverify

(* A small deterministic LCG over a generated seed: the shrinker can
   minimise interesting injection schedules along with the program. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFF_FFFF;
    !state mod bound

(* --- flat-stream lockstep (the PR-1..3 oracle, now harness-owned) -------- *)

(** Drive the same stream on five identically-booted machines in
    lockstep — one per dispatch path, block/chain/jit with [fuel:1] so
    every mid-block state is exposed — comparing the full architectural
    state after every single step and the state hashes at the end. *)
let flat_lockstep ?(writable_code = false) words =
  let mk () = (Boot.flat ~writable_code words).Boot.m in
  let ref_m = mk () and fast_m = mk () and blk_m = mk () and chn_m = mk () in
  let jit_m = mk () in
  (* a tiny hotness threshold makes superblock formation reachable
     within short fuzz streams (adaptation off so it stays pinned) *)
  chn_m.Machine.hot_threshold <- 2;
  chn_m.Machine.hot_adaptive <- false;
  jit_m.Machine.hot_threshold <- 2;
  jit_m.Machine.hot_adaptive <- false;
  let rec go n =
    if n > 256 then ()
    else begin
      let r_ref = Machine.step ref_m in
      let r_fast = Machine.step_fast fast_m in
      (* [run ~fuel:1] executes exactly one instruction (or interrupt /
         idle round) of the block path; when fuel expires after a trap
         step it reports [Step_ok], exactly as the per-step [run] loop
         would, so map the reference result accordingly. *)
      let r_blk, n_blk =
        Machine.run ~fuel:1 ~dispatch:Machine.Dispatch_block blk_m
      in
      let r_chn, n_chn =
        Machine.run ~fuel:1 ~dispatch:Machine.Dispatch_chain chn_m
      in
      let r_jit, n_jit =
        Machine.run ~fuel:1 ~dispatch:Machine.Dispatch_jit jit_m
      in
      if r_ref <> r_fast then
        QCheck.Test.fail_reportf "ref/cached results diverged at step %d" n;
      let expect_blk =
        match r_ref with
        | Machine.Step_ok | Machine.Step_trap _ -> Machine.Step_ok
        | r -> r
      in
      if (r_blk, n_blk) <> (expect_blk, 1) then
        QCheck.Test.fail_reportf "ref/block results diverged at step %d" n;
      if (r_chn, n_chn) <> (expect_blk, 1) then
        QCheck.Test.fail_reportf "ref/chain results diverged at step %d" n;
      if (r_jit, n_jit) <> (expect_blk, 1) then
        QCheck.Test.fail_reportf "ref/jit results diverged at step %d" n;
      Obs.compare_states ~what:"ref/cached" n ref_m fast_m;
      Obs.compare_states ~what:"ref/block" n ref_m blk_m;
      Obs.compare_states ~what:"ref/chain" n ref_m chn_m;
      Obs.compare_states ~what:"ref/jit" n ref_m jit_m;
      match r_ref with
      | Machine.Step_ok | Machine.Step_trap _ -> go (n + 1)
      | Machine.Step_waiting | Machine.Step_halted | Machine.Step_double_fault
        ->
          ()
    end
  in
  go 0;
  Obs.require_hashes_equal ~what:"flat lockstep" 256 ref_m
    [ fast_m; blk_m; chn_m; jit_m ];
  true

(** Interrupt-injection equivalence (the heart of the block-dispatch
    soundness argument): drive the five paths in random-length fuel
    batches, toggling the external interrupt line and rewriting the
    timer comparator / cycle counter identically on all five between
    batches.  Batched block execution checks for interrupts only at
    block boundaries; that must deliver every interrupt at exactly the
    same retired-instruction boundary as the per-step loops. *)
let flat_interrupt_lockstep ?(writable_code = false) (words, seed) =
  let handler_cap =
    Capability.set_bounds
      (Capability.with_address Capability.root_executable Boot.code_base)
      ~length:Boot.code_size ~exact:false
  in
  let mk () =
    let m = (Boot.flat ~writable_code words).Boot.m in
    (* vector traps back into the program text so interrupts take the
       real trap-entry path instead of double-faulting *)
    m.Machine.mtcc <- handler_cap;
    m.Machine.mie <- true;
    m
  in
  let ref_m = mk () and fast_m = mk () and blk_m = mk () and chn_m = mk () in
  let jit_m = mk () in
  (* chain/jit with a tiny hotness threshold: batches cross the
     superblock formation point mid-stream, so interrupt delivery is
     checked against freshly re-translated superblocks too *)
  chn_m.Machine.hot_threshold <- 2;
  chn_m.Machine.hot_adaptive <- false;
  jit_m.Machine.hot_threshold <- 2;
  jit_m.Machine.hot_adaptive <- false;
  let machines = [ ref_m; fast_m; blk_m; chn_m; jit_m ] in
  let rand = lcg seed in
  let total = ref 0 in
  (try
     while !total < 256 do
       let fuel = 1 + rand 32 in
       let toggle = rand 4 = 0 in
       let retime = rand 4 = 0 in
       let cmp = rand 8 and cyc = rand 8 in
       List.iter
         (fun (m : Machine.t) ->
           if toggle then m.Machine.ext_interrupt <- not m.Machine.ext_interrupt;
           if retime then begin
             m.Machine.mtimecmp <- cmp;
             m.Machine.mcycle <- cyc
           end)
         machines;
       let r_ref, n_ref =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_ref ref_m
       in
       let r_fast, n_fast =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_cached fast_m
       in
       let r_blk, n_blk =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_block blk_m
       in
       let r_chn, n_chn =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_chain chn_m
       in
       let r_jit, n_jit =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_jit jit_m
       in
       if (r_ref, n_ref) <> (r_fast, n_fast) then
         QCheck.Test.fail_reportf
           "ref/cached batch diverged after %d insns (fuel %d)" !total fuel;
       if (r_ref, n_ref) <> (r_blk, n_blk) then
         QCheck.Test.fail_reportf
           "ref/block batch diverged after %d insns (fuel %d): ref retired \
            %d, block retired %d"
           !total fuel n_ref n_blk;
       if (r_ref, n_ref) <> (r_chn, n_chn) then
         QCheck.Test.fail_reportf
           "ref/chain batch diverged after %d insns (fuel %d): ref retired \
            %d, chain retired %d"
           !total fuel n_ref n_chn;
       if (r_ref, n_ref) <> (r_jit, n_jit) then
         QCheck.Test.fail_reportf
           "ref/jit batch diverged after %d insns (fuel %d): ref retired \
            %d, jit retired %d"
           !total fuel n_ref n_jit;
       Obs.compare_states ~what:"interrupt batch" !total ref_m fast_m;
       Obs.compare_states ~what:"interrupt batch" !total ref_m blk_m;
       Obs.compare_states ~what:"interrupt batch" !total ref_m chn_m;
       Obs.compare_states ~what:"interrupt batch" !total ref_m jit_m;
       Obs.require_hashes_equal ~what:"interrupt batch" !total ref_m
         [ fast_m; blk_m; chn_m; jit_m ];
       total := !total + n_ref;
       match r_ref with
       | Machine.Step_halted | Machine.Step_double_fault -> raise Exit
       | _ -> ()
     done
   with Exit -> ());
  true

(* --- flat authority monotonicity ----------------------------------------- *)

(** Paper 2.5 on the flat boot: execute the stream on the reference
    interpreter and assert after every step that every tagged capability
    anywhere still lies within the initial authority. *)
let flat_authority ?(writable_code = false) words =
  let f = Boot.flat ~writable_code words in
  let m = f.Boot.m in
  let srams = Boot.flat_srams f in
  let within = Boot.flat_within_authority ~writable_code in
  let rec go n =
    if n > 256 then true
    else
      match Machine.step m with
      | Machine.Step_ok -> (
          match Boot.authority_violations ~within m srams with
          | [] -> go (n + 1)
          | bad ->
              QCheck.Test.fail_reportf "authority amplified at step %d: %s" n
                (String.concat "," bad))
      | Machine.Step_trap _ | Machine.Step_waiting | Machine.Step_halted
      | Machine.Step_double_fault ->
          Boot.authority_violations ~within m srams = []
  in
  go 0

(* --- scenario lockstep ---------------------------------------------------- *)

let scenario_fuel = 4096
let scenario_batches = 96

(** One injection round, applied identically to every machine in the
    lockstep group: interrupt-line and timer writes on the machine, and
    allocator churn / revocation sweeps / host ("DMA") code patches on
    the image. *)
let inject rand (links : Scenario.linked list) =
  let ms = List.map (fun l -> l.Scenario.t.Loader.machine) links in
  (* external interrupt: raise rarely, lower quickly — the ISR cannot
     ack the line, so a high line re-fires on every Mret *)
  (match ms with
  | m0 :: _ ->
      if m0.Machine.ext_interrupt then begin
        if rand 4 < 3 then
          List.iter (fun m -> m.Machine.ext_interrupt <- false) ms
      end
      else if rand 4 = 0 then
        List.iter (fun m -> m.Machine.ext_interrupt <- true) ms
  | [] -> ());
  if rand 4 = 0 then begin
    let cmp = rand 8 and cyc = rand 8 in
    List.iter
      (fun (m : Machine.t) ->
        m.Machine.mtimecmp <- cmp;
        m.Machine.mcycle <- cyc)
      ms
  end;
  (* allocator churn: malloc / free / revoke, same call on every image *)
  if rand 8 = 0 then begin
    let size = 8 + (8 * rand 4) in
    List.iter
      (fun l ->
        match l.Scenario.alloc with
        | Some a -> (
            match Allocator.malloc a size with
            | Ok c -> l.Scenario.handles <- l.Scenario.handles @ [ c ]
            | Error _ -> ())
        | None -> ())
      links
  end;
  if rand 8 = 0 then
    List.iter
      (fun l ->
        match (l.Scenario.alloc, l.Scenario.handles) with
        | Some a, c :: rest ->
            ignore (Allocator.free a c);
            l.Scenario.handles <- rest
        | _ -> ())
      links;
  if rand 8 = 0 then
    List.iter
      (fun l ->
        match l.Scenario.alloc with
        | Some a -> Allocator.revoke_now a
        | None -> ())
      links;
  (* a host-driven code patch through the bus — the cached blocks and
     chained links covering the word must die on every machine *)
  if rand 8 = 0 then begin
    match links with
    | l0 :: _ ->
        let comp = rand l0.Scenario.n in
        let word = Encode.encode Scenario.patch_insn_after in
        List.iter
          (fun l ->
            let b = Loader.find l.Scenario.t (Scenario.comp_name comp) in
            let addr = b.Loader.image.Asm.origin + Scenario.patch_offset in
            Bus.write l.Scenario.t.Loader.bus ~width:4 addr word)
          links
    | [] -> ()
  end

(** State-trace equivalence of all five dispatch modes on a linked
    multi-compartment image, under interrupt injection, allocator churn,
    revocation sweeps and code patches, with the chain and jit machines
    forming superblocks at [hot_threshold = 2]. *)
let scenario_lockstep (sc : Scenario.t) =
  let mk () = Scenario.link ~instrument:true sc in
  let l_ref = mk () and l_fast = mk () and l_blk = mk () and l_chn = mk () in
  let l_jit = mk () in
  let links = [ l_ref; l_fast; l_blk; l_chn; l_jit ] in
  let m_of l = l.Scenario.t.Loader.machine in
  let ref_m = m_of l_ref
  and fast_m = m_of l_fast
  and blk_m = m_of l_blk
  and chn_m = m_of l_chn
  and jit_m = m_of l_jit in
  chn_m.Machine.hot_threshold <- 2;
  chn_m.Machine.hot_adaptive <- false;
  jit_m.Machine.hot_threshold <- 2;
  jit_m.Machine.hot_adaptive <- false;
  let rand = lcg sc.Scenario.seed in
  let total = ref 0 in
  let batches = ref 0 in
  (try
     while !total < scenario_fuel && !batches < scenario_batches do
       incr batches;
       inject rand links;
       let fuel = 1 + rand 64 in
       let r_ref, n_ref =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_ref ref_m
       in
       let r_fast, n_fast =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_cached fast_m
       in
       let r_blk, n_blk =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_block blk_m
       in
       let r_chn, n_chn =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_chain chn_m
       in
       let r_jit, n_jit =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_jit jit_m
       in
       if (r_ref, n_ref) <> (r_fast, n_fast) then
         QCheck.Test.fail_reportf
           "scenario ref/cached diverged after %d insns (fuel %d)" !total fuel;
       if (r_ref, n_ref) <> (r_blk, n_blk) then
         QCheck.Test.fail_reportf
           "scenario ref/block diverged after %d insns (fuel %d): ref %d, \
            block %d"
           !total fuel n_ref n_blk;
       if (r_ref, n_ref) <> (r_chn, n_chn) then
         QCheck.Test.fail_reportf
           "scenario ref/chain diverged after %d insns (fuel %d): ref %d, \
            chain %d"
           !total fuel n_ref n_chn;
       if (r_ref, n_ref) <> (r_jit, n_jit) then
         QCheck.Test.fail_reportf
           "scenario ref/jit diverged after %d insns (fuel %d): ref %d, \
            jit %d"
           !total fuel n_ref n_jit;
       Obs.compare_states ~what:"scenario ref/cached" !total ref_m fast_m;
       Obs.compare_states ~what:"scenario ref/block" !total ref_m blk_m;
       Obs.compare_states ~what:"scenario ref/chain" !total ref_m chn_m;
       Obs.compare_states ~what:"scenario ref/jit" !total ref_m jit_m;
       Obs.require_hashes_equal ~what:"scenario batch" !total ref_m
         [ fast_m; blk_m; chn_m; jit_m ];
       total := !total + n_ref;
       match r_ref with
       | Machine.Step_halted | Machine.Step_double_fault -> raise Exit
       | _ -> ()
     done
   with Exit -> ());
  true

(* --- cycle-model agreement ------------------------------------------------ *)

(** The {!Perf} harness must charge identical cycles and instructions on
    every dispatch variant, for both core models, with identical final
    architectural state. *)
let scenario_perf_agreement (sc : Scenario.t) =
  List.iter
    (fun core ->
      let run dispatch =
        let l = Scenario.link ~instrument:true sc in
        let m = l.Scenario.t.Loader.machine in
        let p =
          Perf.create ~dispatch ~params:(Core_model.params_of core) m
        in
        let r = Perf.run ~fuel:scenario_fuel p in
        (r, p.Perf.stats.Perf.cycles, p.Perf.stats.Perf.instructions,
         Machine.state_hash m)
      in
      let (r0, c0, i0, h0) = run Perf.Reference in
      List.iter
        (fun (name, d) ->
          let (r, c, i, h) = run d in
          if (r, c, i, h) <> (r0, c0, i0, h0) then
            QCheck.Test.fail_reportf
              "%s/%s cycle model disagrees: ref (cycles %d, insns %d) vs \
               (cycles %d, insns %d)%s"
              (Core_model.config_name
                 (Core_model.config ~cheri:true ~load_filter:true core))
              name c0 i0 c i
              (if h <> h0 then ", state hashes differ" else ""))
        [ ("cached", Perf.Cached); ("block", Perf.Block);
          ("chain", Perf.Chain); ("jit", Perf.Jit) ])
    [ Core_model.Ibex; Core_model.Flute ];
  true

(* --- scenario authority monotonicity -------------------------------------- *)

(** Collect the boot-time authority envelope of a linked image: the
    (base, top, perms) of every tagged capability reachable at boot —
    registers, PCC, SCRs, and every granule of the image SRAM. *)
let boot_envelope (l : Scenario.linked) =
  let m = l.Scenario.t.Loader.machine in
  let sram = l.Scenario.t.Loader.sram in
  let caps = ref [] in
  let add c =
    if c.Capability.tag then
      caps :=
        (Capability.base c, Capability.top c, Capability.perms c) :: !caps
  in
  for r = 1 to 15 do
    add m.Machine.regs.(r)
  done;
  add m.Machine.pcc;
  add m.Machine.mtcc;
  add m.Machine.mepcc;
  add m.Machine.mtdc;
  add m.Machine.mscratchc;
  let base = Sram.base sram and size = Sram.size sram in
  let a = ref base in
  while !a < base + size do
    if Sram.tag_at sram !a then begin
      let tag, w = Sram.read_cap sram !a in
      add (Capability.of_word ~tag w)
    end;
    a := !a + 8
  done;
  !caps

let within_envelope env c =
  (not c.Capability.tag)
  || begin
       let b = Capability.base c
       and t = Capability.top c
       and p = Capability.perms c in
       List.exists
         (fun (eb, et, ep) -> b >= eb && t <= et && Perm.Set.subset p ep)
         env
     end

(** Authority monotonicity generalized to multi-compartment programs:
    run the scenario on the reference interpreter and assert,
    periodically and at termination, that every tagged capability in
    the register file, SCRs and the whole image SRAM still lies within
    the boot envelope — the switcher, loader-built descriptors, sealed
    sentries, heap allocations and code-patch windows included. *)
let scenario_authority (sc : Scenario.t) =
  let l = Scenario.link ~instrument:true sc in
  let m = l.Scenario.t.Loader.machine in
  let sram = l.Scenario.t.Loader.sram in
  let env = boot_envelope l in
  let srams = [ (Sram.base sram, Sram.size sram, sram) ] in
  let check step =
    match
      Boot.authority_violations ~within:(within_envelope env) m srams
    with
    | [] -> ()
    | bad ->
        QCheck.Test.fail_reportf "scenario authority amplified at step %d: %s"
          step (String.concat "," bad)
  in
  let rec go n =
    if n > 2048 then ()
    else
      match Machine.step m with
      | Machine.Step_ok ->
          if n mod 64 = 0 then check n;
          go (n + 1)
      | Machine.Step_trap _ ->
          check n;
          go (n + 1)
      | Machine.Step_waiting | Machine.Step_halted | Machine.Step_double_fault
        ->
          check n
  in
  go 0;
  true

(* --- auditor precision ---------------------------------------------------- *)

(** Every generated clean scenario must audit with zero findings: the
    auditor's zero-false-positive contract, pinned under generated
    multi-compartment inputs rather than the hand-written corpus. *)
let scenario_audits_clean (sc : Scenario.t) =
  let l = Scenario.link ~instrument:false sc in
  match Audit.run ~call_summaries:true ~field_sensitive:true l.Scenario.t with
  | [] -> true
  | findings ->
      QCheck.Test.fail_reportf "clean scenario has %d finding(s): %s"
        (List.length findings)
        (String.concat "; "
           (List.map (Format.asprintf "%a" Rules.pp_finding) findings))

(* --- plan soundness (DESIGN.md §14) ---------------------------------------- *)

(** Translation validation under generated inputs: every check plan the
    jit tier compiles from a random multi-compartment scenario at
    [hot_threshold = 2] must be provable sound by {!Planverify} —
    including plans whose guards group accesses through derived
    (non-entry) register versions, which the scenario stack prologue and
    epilogue exercise on every cross-compartment call. *)
let scenario_plans_sound (sc : Scenario.t) =
  let l = Scenario.link ~instrument:true sc in
  let m = l.Scenario.t.Loader.machine in
  m.Machine.hot_threshold <- 2;
  m.Machine.hot_adaptive <- false;
  let plans = Planverify.collect ~fuel:scenario_fuel m in
  List.iter
    (fun (p : Planverify.plan) ->
      match Planverify.verify_plan p with
      | Planverify.Sound -> ()
      | Planverify.Unsound cx ->
          QCheck.Test.fail_reportf "unsound plan at 0x%x op %d: %s: %s"
            p.Planverify.p_block.Machine.b_start cx.Planverify.cx_index
            cx.Planverify.cx_rule cx.Planverify.cx_detail)
    plans;
  true

(** Compile-time validation is observationally free: a jit machine with
    {!Planverify.install}ed validation retires exactly the states of a
    bare one, and never rejects a plan the optimizer actually emits. *)
let scenario_validated_jit_agrees (sc : Scenario.t) =
  let mk () =
    let l = Scenario.link ~instrument:true sc in
    let m = l.Scenario.t.Loader.machine in
    m.Machine.hot_threshold <- 2;
    m.Machine.hot_adaptive <- false;
    m
  in
  let plain = mk () and validated = mk () in
  Planverify.install validated;
  let r_p =
    Machine.run ~fuel:scenario_fuel ~dispatch:Machine.Dispatch_jit plain
  in
  let r_v =
    Machine.run ~fuel:scenario_fuel ~dispatch:Machine.Dispatch_jit validated
  in
  if r_p <> r_v then
    QCheck.Test.fail_reportf "validated jit run result diverged";
  Obs.compare_states ~what:"plain/validated jit" scenario_fuel plain validated;
  Obs.require_hashes_equal ~what:"validated jit" scenario_fuel plain
    [ validated ];
  if validated.Machine.jit_plans_rejected <> 0 then
    QCheck.Test.fail_reportf
      "validator rejected %d plan(s) the optimizer emitted"
      validated.Machine.jit_plans_rejected;
  true

(* --- Revoker.tick_n ≡ tick loop ------------------------------------------- *)

type revoker_case = {
  rc_core : Core_model.core;
  rc_pipelined : bool;
  rc_caps : (int * int * bool) list;
      (** (granule index, target granule index, freed?) capabilities to
          place before the sweep *)
  rc_grants : int list;  (** cycle-grant batch sizes *)
  rc_snoops : int list;  (** grant indices after which a store lands *)
}

let revoker_heap_base = 0x40000
let revoker_heap_size = 0x2000

(** [tick_n k] must be bit-identical to [k] successive [tick]s — sweep
    results, statistics, epoch transitions and final memory — under
    random capability layouts, grant schedules and mid-sweep snoops. *)
let revoker_tick_n_agrees (rc : revoker_case) =
  let granules = revoker_heap_size / 8 in
  let mk () =
    let sram = Sram.create ~base:revoker_heap_base ~size:revoker_heap_size in
    let rev =
      Revbits.create ~heap_base:revoker_heap_base
        ~heap_size:revoker_heap_size ()
    in
    List.iter
      (fun (at, target, freed) ->
        let at = revoker_heap_base + (8 * (at mod granules)) in
        let target = revoker_heap_base + (8 * (target mod granules)) in
        let c =
          Capability.set_bounds
            (Capability.with_address Capability.root_mem_rw target)
            ~length:8 ~exact:true
        in
        Sram.write_cap sram at (true, Capability.to_word c);
        if freed then Revbits.paint rev ~addr:target ~len:8)
      rc.rc_caps;
    let r =
      Revoker.create ~pipelined:rc.rc_pipelined ~core:rc.rc_core ~sram ~rev ()
    in
    Revoker.kick r ~start:revoker_heap_base
      ~stop:(revoker_heap_base + revoker_heap_size);
    (sram, r)
  in
  let sram_a, a = mk () and sram_b, b = mk () in
  List.iteri
    (fun gi k ->
      for _ = 1 to k do
        Revoker.tick a
      done;
      Revoker.tick_n b k;
      if List.mem gi rc.rc_snoops then begin
        let addr = revoker_heap_base + (8 * (gi mod granules)) in
        Sram.write32 sram_a addr 0xdeadbeef;
        Sram.write32 sram_b addr 0xdeadbeef;
        Revoker.snoop_store a addr;
        Revoker.snoop_store b addr
      end;
      if
        Revoker.sweeping a <> Revoker.sweeping b
        || Revoker.words_swept a <> Revoker.words_swept b
        || Revoker.busy_cycles a <> Revoker.busy_cycles b
      then
        QCheck.Test.fail_reportf
          "tick/tick_n diverged at grant %d (swept %d vs %d, busy %d vs %d)"
          gi (Revoker.words_swept a) (Revoker.words_swept b)
          (Revoker.busy_cycles a) (Revoker.busy_cycles b))
    rc.rc_grants;
  ignore (Revoker.run_to_completion a);
  Revoker.tick_n b 10_000_000;
  if
    Revoker.epoch a <> Revoker.epoch b
    || Revoker.caps_invalidated a <> Revoker.caps_invalidated b
    || Revoker.race_reloads a <> Revoker.race_reloads b
  then
    QCheck.Test.fail_reportf
      "tick/tick_n end state differs (epoch %d vs %d, invalidated %d vs %d)"
      (Revoker.epoch a) (Revoker.epoch b)
      (Revoker.caps_invalidated a)
      (Revoker.caps_invalidated b);
  let a = ref revoker_heap_base in
  while !a < revoker_heap_base + revoker_heap_size do
    if
      Sram.read32 sram_a !a <> Sram.read32 sram_b !a
      || Sram.tag_at sram_a !a <> Sram.tag_at sram_b !a
    then QCheck.Test.fail_reportf "tick/tick_n memory differs at 0x%x" !a;
    a := !a + 8
  done;
  true

let gen_revoker_case : revoker_case QCheck.Gen.t =
  let open QCheck.Gen in
  let* core = oneofl [ Core_model.Ibex; Core_model.Flute ] in
  let* pipelined = bool in
  let* caps =
    list_size (1 -- 12)
      (let* at = int_bound 1023 and* target = int_bound 1023 and* freed = bool in
       return (at, target, freed))
  in
  let* grants = list_size (1 -- 12) (1 -- 600) in
  let* snoops = list_size (0 -- 3) (int_bound 12) in
  return
    { rc_core = core; rc_pipelined = pipelined; rc_caps = caps;
      rc_grants = grants; rc_snoops = snoops }

let arb_revoker_case =
  QCheck.make
    ~print:(fun rc ->
      Printf.sprintf "%s pipelined=%b caps=%d grants=[%s] snoops=[%s]"
        (match rc.rc_core with Core_model.Ibex -> "ibex" | _ -> "flute")
        rc.rc_pipelined (List.length rc.rc_caps)
        (String.concat ";" (List.map string_of_int rc.rc_grants))
        (String.concat ";" (List.map string_of_int rc.rc_snoops)))
    gen_revoker_case

(* --- the assembled test family -------------------------------------------- *)

let arb_flat = Flatgen.arb_program Flatgen.gen_program
let arb_flat_smc = Flatgen.arb_program Flatgen.gen_program_smc

let arb_flat_seeded gen =
  QCheck.make
    ~print:(fun (ws, seed) ->
      Printf.sprintf "seed %d\n%s" seed (Boot.print_words ws))
    QCheck.Gen.(pair gen (int_bound 0x3FFF_FFFF))

let tests =
  [
    QCheck.Test.make
      ~name:
        "ref, cached, block, chain and jit dispatch agree on random streams"
      ~count:(Iters.count ~default:1000) arb_flat flat_lockstep;
    QCheck.Test.make
      ~name:"self-modifying streams agree on all five dispatch paths"
      ~count:(Iters.count ~default:400) arb_flat_smc
      (flat_lockstep ~writable_code:true);
    QCheck.Test.make
      ~name:"interrupt injection: all five paths deliver identically"
      ~count:(Iters.count ~default:200)
      (arb_flat_seeded Flatgen.gen_program)
      flat_interrupt_lockstep;
    QCheck.Test.make
      ~name:"interrupt injection over self-modifying streams"
      ~count:(Iters.count ~default:100)
      (arb_flat_seeded Flatgen.gen_program_smc)
      (flat_interrupt_lockstep ~writable_code:true);
  ]

let fuzz_tests =
  [
    QCheck.Test.make ~name:"no instruction stream amplifies authority"
      ~count:(Iters.count ~default:300) arb_flat flat_authority;
    QCheck.Test.make
      ~name:"no self-modifying stream amplifies authority"
      ~count:(Iters.count ~default:150) arb_flat_smc
      (flat_authority ~writable_code:true);
  ]

let scenario_tests =
  [
    QCheck.Test.make
      ~name:
        "multi-compartment scenarios: five dispatch paths agree under \
         interrupts, churn and patches"
      ~count:(Iters.count ~default:60)
      (Scenario.arb ())
      scenario_lockstep;
    QCheck.Test.make
      ~name:"multi-compartment scenarios: cycle models agree on every \
             dispatch variant"
      ~count:(Iters.count ~default:15)
      (Scenario.arb ())
      scenario_perf_agreement;
    QCheck.Test.make
      ~name:"multi-compartment scenarios: no execution amplifies the boot \
             authority envelope"
      ~count:(Iters.count ~default:40)
      (Scenario.arb ())
      scenario_authority;
    QCheck.Test.make
      ~name:"clean generated scenarios audit with zero findings"
      ~count:(Iters.count ~default:60)
      (Scenario.arb ~clean:true ())
      scenario_audits_clean;
    QCheck.Test.make
      ~name:"every jit check plan from a generated scenario verifies sound"
      ~count:(Iters.count ~default:40)
      (Scenario.arb ())
      scenario_plans_sound;
    QCheck.Test.make
      ~name:"compile-time plan validation is observationally free"
      ~count:(Iters.count ~default:25)
      (Scenario.arb ())
      scenario_validated_jit_agrees;
    QCheck.Test.make
      ~name:"Revoker.tick_n is bit-identical to the tick loop"
      ~count:(Iters.count ~default:100) arb_revoker_case
      revoker_tick_n_agrees;
  ]
