(** Observational equality of machines — the equivalence the whole
    property family is phrased in.

    Two dispatch paths are observationally identical when, after every
    retired instruction (or delivered interrupt), the full architectural
    state agrees: step result, PCC, all registers, special capability
    registers, CSRs, interrupt/wait state, and the retired-event record
    the cycle models consume.  Memory divergence is caught by
    {!Machine.state_hash} (which also covers tag bits); per step it
    could only arise via a store, which the event compare pins to the
    same step. *)

open Cheriot_core
open Cheriot_isa

let cap_eq a b =
  a.Capability.tag = b.Capability.tag
  && a.Capability.addr = b.Capability.addr
  && Perm.Set.equal (Capability.perms a) (Capability.perms b)
  && Otype.equal (Capability.otype a) (Capability.otype b)
  && Bounds.raw_fields a.Capability.bounds = Bounds.raw_fields b.Capability.bounds
  && a.Capability.reserved = b.Capability.reserved

let event_eq (a : Machine.event) (b : Machine.event) =
  a.ev_insn = b.ev_insn
  && a.ev_taken_branch = b.ev_taken_branch
  && a.ev_mem_bytes = b.ev_mem_bytes
  && a.ev_is_cap_mem = b.ev_is_cap_mem
  && a.ev_is_store = b.ev_is_store
  && a.ev_trap = b.ev_trap

(** [compare_states ~what step (ref_m, other)] fails (via
    [QCheck.Test.fail_reportf], so qcheck shrinks and reports the seed)
    naming the first diverging component.  [what] labels the compared
    path in the failure message. *)
let compare_states ?(what = "paths") step_no (ref_m : Machine.t)
    (fast_m : Machine.t) =
  let fail component =
    QCheck.Test.fail_reportf "%s diverged at step %d: %s" what step_no
      component
  in
  if not (cap_eq ref_m.pcc fast_m.pcc) then fail "pcc";
  for r = 1 to 15 do
    if not (cap_eq ref_m.regs.(r) fast_m.regs.(r)) then
      fail (Printf.sprintf "c%d" r)
  done;
  List.iter
    (fun (name, a, b) -> if not (cap_eq a b) then fail name)
    [
      ("mtcc", ref_m.mtcc, fast_m.mtcc);
      ("mepcc", ref_m.mepcc, fast_m.mepcc);
      ("mtdc", ref_m.mtdc, fast_m.mtdc);
      ("mscratchc", ref_m.mscratchc, fast_m.mscratchc);
    ];
  List.iter
    (fun (name, a, b) -> if a <> b then fail name)
    [
      ("mcause", ref_m.mcause, fast_m.mcause);
      ("mtval", ref_m.mtval, fast_m.mtval);
      ("minstret", ref_m.minstret, fast_m.minstret);
      ("mshwm", ref_m.mshwm, fast_m.mshwm);
      ("mshwmb", ref_m.mshwmb, fast_m.mshwmb);
    ];
  if ref_m.mie <> fast_m.mie then fail "mie";
  if ref_m.mpie <> fast_m.mpie then fail "mpie";
  if ref_m.waiting <> fast_m.waiting then fail "waiting";
  if not (event_eq ref_m.last_event fast_m.last_event) then fail "event"

(** Check all machines in [others] against [ref_m] and require equal
    state hashes — the end-of-batch memory check. *)
let require_hashes_equal ?(what = "paths") step_no ref_m others =
  let h = Machine.state_hash ref_m in
  List.iter
    (fun m ->
      if Machine.state_hash m <> h then
        QCheck.Test.fail_reportf "%s: state hashes diverged after %d insns"
          what step_no)
    others
