(** Generators for flat (single-region) random instruction streams.

    A generator biased toward well-formed capability/memory/ALU
    instructions so runs get past the first step, plus raw random words
    for decoder robustness.  The [smc] variant mixes in stores through
    the c4 code-window capability granted by
    [Boot.flat ~writable_code:true] — self-modifying streams whose
    patches go through the bus, driving the store snoop, block
    invalidation and chain unlinking on every dispatch path. *)

open Cheriot_isa

let stream_len = 64

let gen_word ?(smc = false) () : int QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let insn =
    oneof
      [
        (let* a = reg and* b = reg and* c = reg in
         oneofl
           Insn.
             [
               Cincaddr (a, b, c);
               Csetaddr (a, b, c);
               Csetbounds (a, b, c);
               Candperm (a, b, c);
               Cseal (a, b, c);
               Cunseal (a, b, c);
               Csub (a, b, c);
               Ctestsubset (a, b, c);
               Op (Add, a, b, c);
               Op (Xor, a, b, c);
             ]);
        (let* a = reg and* b = reg and* i = int_bound 255 in
         oneofl
           Insn.
             [
               Cincaddrimm (a, b, i * 8);
               Csetboundsimm (a, b, i);
               Op_imm (Add, a, b, i);
               Clc (a, b, (i land 63) * 8);
               Csc (a, b, (i land 63) * 8);
               Load { signed = true; width = W; rd = a; rs1 = b; off = i * 4 };
               Store { width = W; rs2 = a; rs1 = b; off = i * 4 };
               Cmove (a, b);
               Ccleartag (a, b);
               Cget (Base, a, b);
               Cget (Perm, a, b);
             ]);
      ]
  in
  let self_patch =
    (* a store through the code window: patches the word [i] slots ahead
       of the stream start — often inside an already-translated block *)
    let* a = reg and* i = int_bound (stream_len - 1) in
    return (Insn.Store { width = W; rs2 = a; rs1 = 4; off = i * 4 })
  in
  let cases =
    [ (8, map Encode.encode insn); (2, map (fun w -> w land 0xFFFFFFFF) int) ]
  in
  let cases =
    if smc then (3, map Encode.encode self_patch) :: cases else cases
  in
  frequency cases

let gen_program = QCheck.Gen.(list_size (return stream_len) (gen_word ()))

let gen_program_smc =
  QCheck.Gen.(list_size (return stream_len) (gen_word ~smc:true ()))

let arb_program gen = QCheck.make ~print:Boot.print_words gen

(* --- regions for the bounds-codec properties ----------------------------- *)

(** Regions biased toward the E'4/B'9/T'9 codec's interesting sizes:
    small, around 511, around power-of-two boundaries, and huge. *)
let gen_region =
  let open QCheck.Gen in
  let size =
    oneof
      [
        int_bound 511;
        map (fun n -> 512 + n) (int_bound 4096);
        oneofl [ 0; 1; 511; 512; 1 lsl 12; (1 lsl 12) + 1; 1 lsl 20; 1 lsl 24 ];
        int_bound ((1 lsl 28) - 1);
      ]
  in
  let addr = oneof [ int_bound 0xFFFF; int_bound 0xFFFF_FFFF ] in
  pair addr size

let arb_region =
  QCheck.make
    ~print:(fun (b, l) -> Printf.sprintf "base=0x%x len=0x%x" b l)
    gen_region
