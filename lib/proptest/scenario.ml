(** A qcheck generator of well-formed multi-compartment programs.

    A scenario is a list of compartment bodies drawn from a small op
    vocabulary, plus a seed for the injection schedule the properties
    drive between run batches.  [compile] lowers it to real
    {!Compartment.t}s — every cross-compartment call goes through the
    machine-code switcher via a sealed sentry, exactly like the shipped
    firmware images — and [link] produces a booted {!Loader.t}.

    Well-formedness is by construction: the call graph is a DAG
    (compartment [i] only calls compartments [j > i], so the switcher's
    16-frame trusted stack cannot overflow), loops are counted, and
    every body ends in [Ret] (or [Ebreak] for the boot compartment), so
    un-trapped scenarios terminate.

    The full vocabulary additionally includes definite traps, WFI,
    heap access through harness-allocated capabilities (so allocator
    churn and revocation sweeps are observable from guest code), and
    self-/cross-compartment code patching through a granted write
    capability — stores that go through the bus and hit translated
    blocks, the store-snoop cases of DESIGN.md §9–10.  [clean] restricts
    to the rule-abiding subset the auditor must accept with zero
    findings. *)

open Cheriot_core
open Cheriot_isa
module Compartment = Cheriot_rtos.Compartment
module Loader = Cheriot_rtos.Loader
module Allocator = Cheriot_rtos.Allocator
module Sw_revoker = Cheriot_rtos.Sw_revoker
module Clock = Cheriot_rtos.Clock
module Sram = Cheriot_mem.Sram
module Core_model = Cheriot_uarch.Core_model

type op =
  | Arith of int  (** a0 := a0 + k *)
  | Global_rw of int  (** store a0 to own-globals scratch slot, load back *)
  | Call of int  (** cross-compartment call; target derived, DAG-safe *)
  | Loop of int  (** counted loop whose backedge is the taken direction *)
  | Fall_loop of int
      (** fall-through-dominated counted loop: its exit branch is a rare
          side exit, the shape that grows superblocks under a small
          [hot_threshold] *)
  | Heap_rw of int  (** store/load through the harness-allocated heap cap *)
  | Patch of int
      (** store a new instruction word over a compartment's patchable
          slot through the granted code-window capability *)
  | Trap_null  (** load through c0: a definite tag fault *)
  | Wfi_op

type t = {
  bodies : op list list;  (** compartment [i]'s body, in call-DAG order *)
  seed : int;  (** drives the injection schedule (LCG) *)
}

(* --- registers and globals layout ---------------------------------------- *)

let a0 = Insn.reg_a0
let a2 = Insn.reg_a2
let a3 = Insn.reg_a3
let a4 = Insn.reg_a4
let a5 = Insn.reg_a5
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let sp = Insn.reg_sp
let gp = Insn.reg_gp
let ra = Insn.reg_ra

let comp_name i = Printf.sprintf "c%d" i

(* Globals layout of compartment [i] in an [n]-compartment scenario:
   slot 0 the switcher sentry (reserved), one import slot per possible
   callee, then the harness-poked heap and patch-capability slots, then
   a scratch window for the data ops. *)
let slot_import j = 8 * (j + 1)
let slot_heap n = 8 * (n + 1)
let slot_patch n j = 8 * (n + 2 + j)
let scratch_base n = 8 * ((2 * n) + 3)
let globals_size n = scratch_base n + 64

(** The byte offset, within every compartment's code region, of its
    patchable instruction (right after the 2-word prologue). *)
let patch_offset = 8

let patch_insn_before = Insn.Op_imm (Add, a3, a3, 0)
let patch_insn_after = Insn.Op_imm (Add, a3, a3, 1)

(* --- compilation ---------------------------------------------------------- *)

let call_target ~n ~comp k =
  if comp >= n - 1 then None else Some (comp + 1 + (k mod (n - 1 - comp)))

let compile_op ~n ~comp op =
  match op with
  | Arith k -> [ Asm.I (Insn.Op_imm (Add, a0, a0, k land 0xFF)) ]
  | Global_rw k ->
      let off = scratch_base n + (4 * (k land 7)) in
      [
        Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = gp; off });
        Asm.I (Insn.Load { signed = true; width = W; rd = a2; rs1 = gp; off });
      ]
  | Call k -> (
      match call_target ~n ~comp k with
      | None -> [ Asm.I (Insn.Op_imm (Add, a0, a0, 1)) ]
      | Some j ->
          [
            Asm.I (Insn.Clc (t1, gp, slot_import j));
            Asm.I (Insn.Clc (t2, gp, Compartment.switcher_slot));
            Asm.I (Insn.Jalr (ra, t2, 0));
          ])
  | Loop k ->
      let k = 1 + (k land 7) in
      [
        Asm.Li (t0, k);
        Asm.I (Insn.Op_imm (Add, t0, t0, -1));
        Asm.I (Insn.Branch (Ne, t0, 0, -4));
      ]
  | Fall_loop k ->
      let k = 2 + (k land 7) in
      [
        Asm.Li (t0, k);
        Asm.Li (a2, 0);
        (* head: *)
        Asm.I (Insn.Op_imm (Add, a2, a2, 1));
        Asm.I (Insn.Branch (Eq, a2, t0, 12));
        (* rarely-taken exit: the fall edge dominates *)
        Asm.I (Insn.Op_imm (Add, a0, a0, 1));
        Asm.I (Insn.Jal (0, -12));
        (* out: *)
      ]
  | Heap_rw k ->
      let off = 4 * (k land 7) in
      [
        Asm.I (Insn.Clc (a4, gp, slot_heap n));
        Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = a4; off });
        Asm.I (Insn.Load { signed = true; width = W; rd = a5; rs1 = a4; off });
      ]
  | Patch k ->
      let j = k mod n in
      [
        Asm.I (Insn.Clc (a4, gp, slot_patch n j));
        Asm.Li (a5, Encode.encode patch_insn_after);
        Asm.I (Insn.Store { width = W; rs2 = a5; rs1 = a4; off = 0 });
      ]
  | Trap_null -> [ Asm.I (Insn.Clc (t0, 0, 0)) ]
  | Wfi_op -> [ Asm.I Insn.Wfi ]

let compile_body ~n ~comp ops =
  let prologue =
    [
      Asm.Label "e";
      Asm.I (Insn.Cincaddrimm (sp, sp, -16));
      Asm.I (Insn.Csc (ra, sp, 0));
      Asm.I patch_insn_before;
    ]
  in
  let epilogue =
    if comp = 0 then [ Asm.I Insn.Ebreak ]
    else
      [
        Asm.I (Insn.Clc (ra, sp, 0));
        Asm.I (Insn.Cincaddrimm (sp, sp, 16));
        Asm.Ret;
      ]
  in
  List.concat
    [ prologue; List.concat_map (compile_op ~n ~comp) ops; epilogue ]

let normalize bodies = if bodies = [] then [ [] ] else bodies

(** Lower the scenario to linkable compartments. *)
let compile sc =
  let bodies = normalize sc.bodies in
  let n = List.length bodies in
  List.mapi
    (fun comp ops ->
      let imports =
        List.sort_uniq compare
          (List.filter_map
             (function
               | Call k -> call_target ~n ~comp k
               | _ -> None)
             ops)
      in
      Compartment.v ~name:(comp_name comp) ~globals_size:(globals_size n)
        ~exports:
          [ { Compartment.exp_label = "e"; exp_posture = Interrupts_enabled } ]
        ~imports:
          (List.map
             (fun j ->
               {
                 Compartment.imp_compartment = comp_name j;
                 imp_export = "e";
                 imp_slot = slot_import j;
               })
             imports)
        (compile_body ~n ~comp ops))
    bodies

(* --- the interrupt service routine ---------------------------------------

   The loader's trap stub is a bare [Ebreak]: any trap halts the
   simulation, which is the right default for the deterministic tests
   but would make interrupt injection meaningless.  The harness installs
   a minimal ISR in the free space of the trap area instead: interrupts
   (mcause bit 31, negative as a signed word) disarm the timer and
   [Mret] back; synchronous traps still halt via [Ebreak].  The
   interrupted thread's t0 is preserved through MTDC, so the ISR is
   architecturally transparent up to the (identical on every machine)
   MTDC copy. *)

let isr_code =
  [
    Asm.Label "isr";
    (* save t0 (t0 <-> mtdc swap), then t0 := mcause *)
    Asm.I (Insn.Cspecialrw (t0, MTDC, t0));
    Asm.I (Insn.Csr (Csrrs, t0, 0, Csr.mcause));
    Asm.B (Insn.Lt, t0, 0, "isr_irq");
    Asm.I Insn.Ebreak;
    Asm.Label "isr_irq";
    (* disarm the timer so a static comparator cannot re-fire forever *)
    Asm.I (Insn.Csr (Csrrw, 0, 0, Csr.mtimecmp));
    (* restore t0 (mtdc keeps the copy; identical on every machine) *)
    Asm.I (Insn.Cspecialrw (t0, MTDC, 0));
    Asm.I Insn.Mret;
  ]

(* --- linking and instrumentation ------------------------------------------ *)

type linked = {
  t : Loader.t;
  n : int;
  alloc : Allocator.t option;
  mutable handles : Capability.t list;
      (** live harness-held heap allocations, oldest first *)
}

let heap_size = 8192

(** Link the compiled image.  [instrument] (default true) additionally:
    installs the ISR and points MTCC at it with interrupts enabled,
    creates a software-temporal allocator over the image heap, pokes one
    32-byte allocation into every compartment's heap slot, and pokes a
    write capability over every compartment's patchable instruction into
    every compartment's patch slots.  The auditor-precision property
    links with [instrument:false]: a clean image exactly as the loader
    built it. *)
let link ?(instrument = true) sc =
  let bodies = normalize sc.bodies in
  let n = List.length bodies in
  let t =
    Loader.link (compile { sc with bodies }) ~boot:(comp_name 0, "e")
      ~heap_size
  in
  if not instrument then { t; n; alloc = None; handles = [] }
  else begin
    let m = t.Loader.machine in
    let sram = t.Loader.sram in
    (* ISR into the free tail of the trap area (the stub itself is one
       word at base+0x800; compartment code starts at base+0x1000) *)
    let isr_origin = Sram.base sram + 0x880 in
    let isr_img = Asm.assemble ~origin:isr_origin isr_code in
    Asm.load isr_img sram;
    Machine.flush_decode_cache m;
    m.Machine.mtcc <-
      Capability.set_bounds
        (Capability.with_address Capability.root_executable isr_origin)
        ~length:(Asm.bytes_size isr_img) ~exact:false;
    m.Machine.mie <- true;
    (* allocator over the image heap, software temporal safety *)
    let clock = Clock.create (Core_model.params_of Core_model.Ibex) in
    let alloc =
      Allocator.create ~temporal:Allocator.Software ~sram
        ~rev:t.Loader.rev ~clock ~heap_base:t.Loader.heap_base
        ~heap_size:t.Loader.heap_size ()
    in
    Allocator.set_sw_revoker alloc
      (Sw_revoker.create ~sram ~rev:t.Loader.rev ~clock ());
    let handles = ref [] in
    let comps = List.mapi (fun i _ -> Loader.find t (comp_name i)) bodies in
    List.iter
      (fun (b : Loader.built) ->
        (match Allocator.malloc alloc 32 with
        | Ok c ->
            handles := !handles @ [ c ];
            Sram.write_cap sram
              (b.Loader.globals_base + slot_heap n)
              (true, Capability.to_word c)
        | Error _ -> ());
        (* write capabilities over every compartment's patchable word *)
        List.iteri
          (fun j (v : Loader.built) ->
            let addr = v.Loader.image.Asm.origin + patch_offset in
            let c =
              Capability.set_bounds
                (Capability.with_address Capability.root_mem_rw addr)
                ~length:4 ~exact:false
            in
            Sram.write_cap sram
              (b.Loader.globals_base + slot_patch n j)
              (true, Capability.to_word c))
          comps)
      comps;
    { t; n; alloc = Some alloc; handles = !handles }
  end

(* --- generation ----------------------------------------------------------- *)

let gen_op ~clean : op QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    [
      (3, map (fun k -> Arith k) (int_bound 255));
      (2, map (fun k -> Global_rw k) (int_bound 7));
      (3, map (fun k -> Call k) (int_bound 7));
      (2, map (fun k -> Loop k) (int_bound 7));
      (2, map (fun k -> Fall_loop k) (int_bound 7));
    ]
  in
  let dirty =
    [
      (2, map (fun k -> Heap_rw k) (int_bound 7));
      (2, map (fun k -> Patch k) (int_bound 7));
      (1, return Trap_null);
      (1, return Wfi_op);
    ]
  in
  frequency (if clean then base else base @ dirty)

let gen ?(clean = false) () : t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = 1 -- 4 in
  let* bodies =
    list_size (return n) (list_size (1 -- 6) (gen_op ~clean))
  in
  let* seed = int_bound 0x3FFF_FFFF in
  return { bodies; seed }

(* --- shrinking ------------------------------------------------------------ *)

let shrink_op op =
  let open QCheck.Iter in
  match op with
  | Arith k -> map (fun k -> Arith k) (QCheck.Shrink.int k)
  | Global_rw k -> map (fun k -> Global_rw k) (QCheck.Shrink.int k)
  | Call k -> return (Arith 1) <+> map (fun k -> Call k) (QCheck.Shrink.int k)
  | Loop k -> return (Arith 1) <+> map (fun k -> Loop k) (QCheck.Shrink.int k)
  | Fall_loop k ->
      return (Loop k) <+> map (fun k -> Fall_loop k) (QCheck.Shrink.int k)
  | Heap_rw k ->
      return (Arith 1) <+> map (fun k -> Heap_rw k) (QCheck.Shrink.int k)
  | Patch k ->
      return (Arith 1) <+> map (fun k -> Patch k) (QCheck.Shrink.int k)
  | Trap_null | Wfi_op -> empty

let shrink sc =
  let open QCheck.Iter in
  let bodies_it =
    QCheck.Shrink.list ~shrink:(QCheck.Shrink.list ~shrink:shrink_op)
      sc.bodies
  in
  map (fun bodies -> { sc with bodies }) bodies_it
  <+> map (fun seed -> { sc with seed }) (QCheck.Shrink.int sc.seed)

(* --- printing ------------------------------------------------------------- *)

let op_name = function
  | Arith k -> Printf.sprintf "arith %d" k
  | Global_rw k -> Printf.sprintf "global_rw %d" k
  | Call k -> Printf.sprintf "call %d" k
  | Loop k -> Printf.sprintf "loop %d" k
  | Fall_loop k -> Printf.sprintf "fall_loop %d" k
  | Heap_rw k -> Printf.sprintf "heap_rw %d" k
  | Patch k -> Printf.sprintf "patch %d" k
  | Trap_null -> "trap_null"
  | Wfi_op -> "wfi"

(** Shrunk-counterexample printer: the op-level scenario, the assembled
    per-compartment listings, and the head of a reference-path execution
    trace (via {!Trace}) of the instrumented image — everything needed
    to reproduce and eyeball a failure from the qcheck seed alone. *)
let print sc =
  let b = Buffer.create 1024 in
  let bodies = normalize sc.bodies in
  Buffer.add_string b
    (Printf.sprintf "scenario: %d compartment(s), injection seed %d\n"
       (List.length bodies) sc.seed);
  List.iteri
    (fun i ops ->
      Buffer.add_string b
        (Printf.sprintf "  %s: [%s]\n" (comp_name i)
           (String.concat "; " (List.map op_name ops))))
    bodies;
  (try
     let { t; _ } = link ~instrument:true sc in
     List.iteri
       (fun i _ ->
         let bt = Loader.find t (comp_name i) in
         let img = bt.Loader.image in
         Buffer.add_string b (Printf.sprintf "%s @ 0x%x:\n" (comp_name i)
           img.Asm.origin);
         Array.iteri
           (fun w word ->
             let pc = img.Asm.origin + (4 * w) in
             match Encode.decode word with
             | Some insn ->
                 Buffer.add_string b
                   (Printf.sprintf "  0x%06x  %08x  %s\n" pc word
                      (Insn.to_string insn))
             | None ->
                 Buffer.add_string b
                   (Printf.sprintf "  0x%06x  %08x  ???\n" pc word))
           img.Asm.words)
       bodies;
     Buffer.add_string b "reference trace (head):\n";
     let count = ref 0 in
     ignore
       (Trace.run t.Loader.machine ~fuel:48 ~dispatch:Machine.Dispatch_ref
          ~f:(fun e ->
            incr count;
            Buffer.add_string b (Fmt.str "%a\n" Trace.pp_entry e)))
   with e ->
     Buffer.add_string b
       (Printf.sprintf "<listing unavailable: %s>\n" (Printexc.to_string e)));
  Buffer.contents b

let arb ?(clean = false) () = QCheck.make ~print ~shrink (gen ~clean ())
