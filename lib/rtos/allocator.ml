open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Revoker = Cheriot_uarch.Revoker

type temporal = Baseline | Metadata | Software | Hardware

type error = Out_of_memory | Invalid_free of string | Double_free

let pp_error fmt = function
  | Out_of_memory -> Format.pp_print_string fmt "out of memory"
  | Invalid_free s -> Format.fprintf fmt "invalid free: %s" s
  | Double_free -> Format.pp_print_string fmt "double free"

type stats = {
  mallocs : int;
  frees : int;
  sweeps : int;
  sweep_cycles : int;
  quarantine_peak : int;
  live_bytes : int;
}

type qlist = { q_epoch : int; mutable q_chunks : int list; mutable q_bytes : int }

type t = {
  sram : Sram.t;
  rev : Revbits.t;
  clock : Clock.t;
  heap_base : int;
  heap_size : int;
  heap_root : Capability.t;
  temporal : temporal;
  quarantine_threshold : int;
  flute_poll_quirk : bool;
  (* Free lists: exact small bins for chunk sizes 16..512, then a single
     address-ordered large list (first fit). *)
  small : int list array;
  mutable large : int list;
  mutable quarantine : qlist list;  (** newest first; bounded by the epoch rule *)
  mutable quarantine_bytes : int;
  mutable hw : Revoker.t option;
  mutable sw : Sw_revoker.t option;
  mutable st : stats;
  mutable in_revoke : bool;
  mutable wait_ctx_pair : int;
      (* cycles of a context-switch pair charged while a thread blocks on
         the hardware revoker and is periodically re-scheduled to recheck
         the epoch; set by the scheduler layer (+4 cycles with the HWM
         CSRs — the 128 KiB anomaly of 7.2.2) *)
}

(* --- chunk header helpers --------------------------------------------- *)
(* Chunk layout: [size|flags : u32][bound_len : u32][data ...]
   flags: bit0 = in_use, bit1 = prev_in_use.
   Free chunks additionally carry a footer (last u32 = size) for backward
   coalescing, boundary-tag style. *)

let fl_in_use = 1
let fl_prev_in_use = 2
let min_chunk = 16

let read_head t chunk = Sram.read32 t.sram chunk
let size_of_head head = head land lnot 7
let chunk_size t chunk = size_of_head (read_head t chunk)
let in_use t chunk = read_head t chunk land fl_in_use <> 0
let prev_in_use t chunk = read_head t chunk land fl_prev_in_use <> 0

let write_head t chunk ~size ~used ~prev_used =
  Sram.write32 t.sram chunk
    (size lor (if used then fl_in_use else 0)
    lor (if prev_used then fl_prev_in_use else 0));
  Clock.word_ops t.clock 1

let write_bound_len t chunk v =
  Sram.write32 t.sram (chunk + 4) v;
  Clock.word_ops t.clock 1

let read_bound_len t chunk = Sram.read32 t.sram (chunk + 4)

let write_footer t chunk size =
  Sram.write32 t.sram (chunk + size - 4) size;
  Clock.word_ops t.clock 1

let read_prev_size t chunk = Sram.read32 t.sram (chunk - 4)
let heap_end t = t.heap_base + t.heap_size
let next_chunk t chunk = chunk + chunk_size t chunk

let set_prev_in_use_of_next t chunk v =
  let n = next_chunk t chunk in
  if n < heap_end t then begin
    let head = read_head t n in
    let head = if v then head lor fl_prev_in_use else head land lnot fl_prev_in_use in
    Sram.write32 t.sram n head;
    Clock.word_ops t.clock 1
  end

(* --- bins -------------------------------------------------------------- *)

let bin_index size = if size <= 512 then (size / 8) - 2 else -1

let bin_push t chunk size =
  Clock.compute t.clock 3;
  match bin_index size with
  | -1 -> t.large <- chunk :: t.large
  | i -> t.small.(i) <- chunk :: t.small.(i)

let bin_remove t chunk size =
  Clock.compute t.clock 3;
  match bin_index size with
  | -1 -> t.large <- List.filter (fun c -> c <> chunk) t.large
  | i -> t.small.(i) <- List.filter (fun c -> c <> chunk) t.small.(i)

(* --- create ------------------------------------------------------------ *)

let create ?(temporal = Software) ?quarantine_threshold
    ?(flute_poll_quirk = false) ~sram ~rev ~clock ~heap_base ~heap_size () =
  if heap_size land 7 <> 0 then invalid_arg "Allocator: heap_size";
  let heap_root =
    (* Heap memory must not be able to hold local capabilities: only
       stacks carry SL (2.6), so heap pointers are issued without it. *)
    Capability.(
      clear_perms
        (set_bounds (with_address root_mem_rw heap_base) ~length:heap_size
           ~exact:true)
        [ SL ])
  in
  assert heap_root.Capability.tag;
  let t =
    {
      sram;
      rev;
      clock;
      heap_base;
      heap_size;
      heap_root;
      temporal;
      quarantine_threshold =
        (match quarantine_threshold with Some q -> q | None -> heap_size / 2);
      flute_poll_quirk;
      small = Array.make 64 [];
      large = [];
      quarantine = [];
      quarantine_bytes = 0;
      hw = None;
      sw = None;
      wait_ctx_pair = 0;
      st =
        {
          mallocs = 0;
          frees = 0;
          sweeps = 0;
          sweep_cycles = 0;
          quarantine_peak = 0;
          live_bytes = 0;
        };
      in_revoke = false;
    }
  in
  (* One initial free chunk spanning the heap. *)
  write_head t heap_base ~size:heap_size ~used:false ~prev_used:true;
  write_footer t heap_base heap_size;
  bin_push t heap_base heap_size;
  t

let attach_hw_revoker t r = t.hw <- Some r
let set_sw_revoker t r = t.sw <- Some r

let epoch t =
  match t.temporal with
  | Software -> (
      match t.sw with Some s -> Sw_revoker.epoch s | None -> 0)
  | Hardware -> (
      match t.hw with Some h -> Revoker.epoch h | None -> 0)
  | Baseline | Metadata -> 0

let stats t = t.st
let heap_words t = t.heap_size / 8

(* --- free-chunk insertion with coalescing ------------------------------ *)

let insert_free t chunk size =
  let chunk = ref chunk and size = ref size in
  (* Forward coalesce. *)
  let n = !chunk + !size in
  if n < heap_end t && not (in_use t n) then begin
    let nsize = chunk_size t n in
    bin_remove t n nsize;
    size := !size + nsize;
    Clock.word_ops t.clock 2
  end;
  (* Backward coalesce via the boundary tag. *)
  if !chunk > t.heap_base && not (prev_in_use t !chunk) then begin
    let psize = read_prev_size t !chunk in
    Clock.word_ops t.clock 1;
    let p = !chunk - psize in
    bin_remove t p psize;
    chunk := p;
    size := !size + psize
  end;
  write_head t !chunk ~size:!size ~used:false
    ~prev_used:(!chunk = t.heap_base || prev_in_use t !chunk);
  write_footer t !chunk !size;
  set_prev_in_use_of_next t !chunk false;
  bin_push t !chunk !size

(* --- allocation --------------------------------------------------------- *)

let align_up v a = (v + a - 1) land lnot (a - 1)

(* Bounds and alignment the capability encoding demands (3.2.3). *)
let layout_of_request size =
  let size = max 1 size in
  let bound_len = if size <= 511 then size else Bounds.crrl size in
  let mem_len = align_up (max 8 bound_len) 8 in
  let mask = Bounds.cram size in
  let align = max 8 ((lnot mask land 0xFFFF_FFFF) + 1) in
  (bound_len, mem_len, align)

(* Does [chunk] fit a [mem_len]-byte object aligned to [align]?  Returns
   the data address if so. *)
let fits t chunk mem_len align =
  let csize = chunk_size t chunk in
  let data = chunk + 8 in
  let adata = align_up data align in
  (* A nonzero lead must leave room for a minimal free chunk. *)
  let adata = if adata = data || adata - data >= min_chunk then adata
    else align_up (data + min_chunk) align
  in
  if adata + mem_len <= chunk + csize then Some adata else None

let find_fit t mem_len align =
  Clock.compute t.clock 4;
  let try_chunk chunk =
    Clock.compute t.clock 3;
    Option.map (fun adata -> (chunk, adata)) (fits t chunk mem_len align)
  in
  let rec scan_list = function
    | [] -> None
    | c :: rest -> (
        match try_chunk c with Some hit -> Some hit | None -> scan_list rest)
  in
  let rec scan_bins i =
    if i >= 64 then scan_list t.large
    else
      match scan_list t.small.(i) with
      | Some hit -> Some hit
      | None -> scan_bins (i + 1)
  in
  let start = max 0 (bin_index (min 512 (mem_len + 8))) in
  scan_bins start

let carve t chunk adata mem_len bound_len =
  let csize = chunk_size t chunk in
  let cend = chunk + csize in
  bin_remove t chunk csize;
  let achunk = adata - 8 in
  (* Leading remainder becomes a free chunk. *)
  if achunk > chunk then begin
    let lead = achunk - chunk in
    write_head t chunk ~size:lead ~used:false ~prev_used:(prev_in_use t chunk);
    write_footer t chunk lead;
    bin_push t chunk lead
  end;
  let tail = cend - (adata + mem_len) in
  let asize = if tail >= min_chunk then mem_len + 8 else mem_len + 8 + tail in
  (* A carved lead chunk is free, so the allocation's prev_in_use is
     false; otherwise inherit the original chunk's flag. *)
  let aprev =
    if achunk > chunk then false
    else achunk = t.heap_base || prev_in_use t chunk
  in
  write_head t achunk ~size:asize ~used:true ~prev_used:aprev;
  write_bound_len t achunk bound_len;
  (* Trailing remainder. *)
  if tail >= min_chunk then begin
    let tchunk = achunk + asize in
    write_head t tchunk ~size:tail ~used:false ~prev_used:true;
    write_footer t tchunk tail;
    bin_push t tchunk tail
  end
  else set_prev_in_use_of_next t achunk true;
  achunk

(* --- revocation --------------------------------------------------------- *)

let eligible ~current q =
  let age = current - q.q_epoch in
  if q.q_epoch land 1 = 1 then age >= 3 else age >= 2

let release_quarantine t =
  let current = epoch t in
  let ready, waiting = List.partition (eligible ~current) t.quarantine in
  t.quarantine <- waiting;
  List.iter
    (fun q ->
      List.iter
        (fun chunk ->
          let size = chunk_size t chunk in
          (* Reset the revocation bits: memory is reusable again. *)
          Revbits.clear t.rev ~addr:(chunk + 8) ~len:(size - 8);
          Clock.word_ops t.clock (1 + ((size - 8) / 256));
          insert_free t chunk size;
          t.quarantine_bytes <- t.quarantine_bytes - size)
        q.q_chunks)
    ready

let hw_wait t h =
  (* Block until the engine's sweep completes.  The production core
     raises an interrupt; the Flute prototype must be polled, and each
     poll wakes the blocked thread for a flurry of memory accesses that
     preempt the engine's bus slots (7.2.2).  In both cases the blocked
     thread is periodically context-switched out and back in to recheck
     the epoch, which costs more when the HWM CSRs must be saved too. *)
  let guard = ref 0 in
  let iter = ref 0 in
  while Revoker.sweeping h && !guard < 100_000_000 do
    incr iter;
    if t.flute_poll_quirk then begin
      Clock.advance t.clock 400;
      (* poll flurry: scheduler wakes the thread, which re-checks the
         epoch — memory traffic that starves the engine *)
      t.clock.Clock.revoker_enabled <- false;
      Clock.advance t.clock 40 ~mem_busy:24;
      t.clock.Clock.revoker_enabled <- true;
      guard := !guard + 440
    end
    else begin
      Clock.advance t.clock 64;
      guard := !guard + 64
    end;
    if !iter mod 4 = 0 && t.wait_ctx_pair > 0 then begin
      Clock.advance t.clock t.wait_ctx_pair ~mem_busy:(t.wait_ctx_pair / 2);
      guard := !guard + t.wait_ctx_pair
    end
  done

let revoke_now t =
  if not t.in_revoke then begin
    t.in_revoke <- true;
    let c0 = Clock.cycles t.clock in
    (* The sweep must cover every capability-bearing word, not just the
       heap: a dangling pointer to quarantined memory can sit in a
       compartment's globals, a stack frame or a register save area
       (3.3.2 sweeps "all memory" for exactly this reason).  Sweeping
       only [heap_base, heap_end) lets such a copy keep its tag,
       turning the post-revocation reuse of the chunk into a writable
       use-after-free against the allocator's own boundary tags. *)
    let start = Sram.base t.sram in
    let stop = start + Sram.size t.sram in
    (match t.temporal with
    | Baseline | Metadata -> ()
    | Software -> (
        match t.sw with
        | Some s ->
            Sw_revoker.sweep s ~start ~stop;
            t.st <- { t.st with sweeps = t.st.sweeps + 1 }
        | None -> failwith "Allocator: no software revoker attached")
    | Hardware -> (
        match t.hw with
        | Some h ->
            Revoker.kick h ~start ~stop;
            Clock.compute t.clock 20;
            hw_wait t h;
            t.st <- { t.st with sweeps = t.st.sweeps + 1 }
        | None -> failwith "Allocator: no hardware revoker attached"));
    t.st <-
      { t.st with sweep_cycles = t.st.sweep_cycles + Clock.cycles t.clock - c0 };
    release_quarantine t;
    t.in_revoke <- false
  end

(* --- malloc / free ------------------------------------------------------ *)

let make_cap t adata bound_len =
  Clock.compute t.clock 6;
  let c = Capability.with_address t.heap_root adata in
  let c = Capability.set_bounds c ~length:bound_len ~exact:true in
  assert c.Capability.tag;
  c

let rec malloc_inner t size retried =
  let bound_len, mem_len, align = layout_of_request size in
  match find_fit t mem_len align with
  | Some (chunk, adata) ->
      let achunk = carve t chunk adata mem_len bound_len in
      if t.temporal = Metadata then begin
        (* Metadata config reuses immediately; clear stale paint now. *)
        Revbits.clear t.rev ~addr:(achunk + 8) ~len:(chunk_size t achunk - 8);
        Clock.word_ops t.clock (1 + ((chunk_size t achunk - 8) / 256))
      end;
      t.st <-
        {
          t.st with
          mallocs = t.st.mallocs + 1;
          live_bytes = t.st.live_bytes + mem_len;
        };
      Ok (make_cap t (achunk + 8) bound_len)
  | None ->
      if (not retried) && (t.temporal = Software || t.temporal = Hardware)
      then begin
        (* Low on memory: force a pass and retry (5.1). *)
        revoke_now t;
        malloc_inner t size true
      end
      else Error Out_of_memory

let malloc t size =
  Clock.compute t.clock 10;
  malloc_inner t size false

let validate_free t cap =
  if not cap.Capability.tag then Error (Invalid_free "untagged")
  else if Capability.is_sealed cap then Error (Invalid_free "sealed")
  else
    let base = Capability.base cap in
    if base < t.heap_base + 8 || base >= heap_end t then
      Error (Invalid_free "not a heap pointer")
    else if base land 7 <> 0 then Error (Invalid_free "misaligned")
    else if Revbits.is_revoked t.rev base then Error Double_free
    else
      let chunk = base - 8 in
      let head = read_head t chunk in
      Clock.word_ops t.clock 2;
      if head land fl_in_use = 0 then Error Double_free
      else if read_bound_len t chunk <> Capability.length cap then
        Error (Invalid_free "not the start of an allocation")
      else Ok chunk

let quarantine_push t chunk size =
  let e = epoch t in
  (match t.quarantine with
  | q :: _ when q.q_epoch = e ->
      q.q_chunks <- chunk :: q.q_chunks;
      q.q_bytes <- q.q_bytes + size
  | _ ->
      t.quarantine <-
        { q_epoch = e; q_chunks = [ chunk ]; q_bytes = size } :: t.quarantine);
  t.quarantine_bytes <- t.quarantine_bytes + size;
  t.st <-
    {
      t.st with
      quarantine_peak = max t.st.quarantine_peak t.quarantine_bytes;
    }

let free t cap =
  Clock.compute t.clock 8;
  match validate_free t cap with
  | Error e -> Error e
  | Ok chunk ->
      let size = chunk_size t chunk in
      let data = chunk + 8 and dlen = size - 8 in
      t.st <-
        { t.st with frees = t.st.frees + 1; live_bytes = t.st.live_bytes - dlen };
      (* Freed memory is always zeroed — secrets must not leak across the
         next allocation, whatever the temporal-safety configuration. *)
      Sram.fill t.sram ~addr:data ~len:dlen '\000';
      Clock.charge_zero t.clock dlen;
      (match t.temporal with
      | Baseline -> insert_free t chunk size
      | Metadata ->
          (* Paint, then return to the bins: measures the pure
             metadata-maintenance cost, no sweeps (7.2.2). *)
          Revbits.paint t.rev ~addr:data ~len:dlen;
          Clock.word_ops t.clock (1 + (dlen / 256));
          insert_free t chunk size
      | Software | Hardware ->
          Revbits.paint t.rev ~addr:data ~len:dlen;
          Clock.word_ops t.clock (1 + (dlen / 256));
          quarantine_push t chunk size;
          if t.quarantine_bytes >= t.quarantine_threshold then revoke_now t);
      Ok ()

(* --- introspection ------------------------------------------------------ *)

let live_chunks t =
  let rec walk chunk acc =
    if chunk >= heap_end t then List.rev acc
    else
      let size = chunk_size t chunk in
      let acc =
        if in_use t chunk then (chunk + 8, read_bound_len t chunk) :: acc
        else acc
      in
      walk (chunk + size) acc
  in
  walk t.heap_base []

let check_invariants t =
  let quarantined =
    List.concat_map (fun q -> q.q_chunks) t.quarantine
  in
  let in_bins chunk =
    Array.exists (List.mem chunk) t.small || List.mem chunk t.large
  in
  let rec walk chunk prev_used =
    if chunk = heap_end t then Ok ()
    else if chunk > heap_end t then Error "chunk chain overruns heap"
    else
      let size = chunk_size t chunk in
      if size < min_chunk then
        Error (Printf.sprintf "chunk 0x%x undersized (%d)" chunk size)
      else if prev_in_use t chunk <> prev_used then
        Error (Printf.sprintf "chunk 0x%x: stale prev_in_use" chunk)
      else if in_use t chunk then
        if List.mem chunk quarantined then
          (* Quarantined chunks keep the in_use bit (not reusable), so
             the successor still sees prev_in_use. *)
          if Revbits.is_revoked t.rev (chunk + 8) then walk (chunk + size) true
          else Error (Printf.sprintf "quarantined 0x%x not painted" chunk)
        else if
          t.temporal <> Metadata && Revbits.is_revoked t.rev (chunk + 8)
        then Error (Printf.sprintf "live chunk 0x%x painted" chunk)
        else walk (chunk + size) true
      else if not (in_bins chunk) then
        Error (Printf.sprintf "free chunk 0x%x not in bins" chunk)
      else if Sram.read32 t.sram (chunk + size - 4) <> size then
        Error (Printf.sprintf "free chunk 0x%x bad footer" chunk)
      else walk (chunk + size) false
  in
  (* Quarantined chunks carry the in_use bit (they are not reusable), so
     distinguish them from live ones via the quarantine list. *)
  walk t.heap_base true

let set_wait_ctx_pair t n = t.wait_ctx_pair <- n
