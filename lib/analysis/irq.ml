(* Interrupt-posture analysis over a compartment's CFG (DESIGN.md §11).

   CHERIoT encodes each export's interrupt posture in its sentry otype
   (3.4): interrupt-disabled entries defer preemption until the callee
   re-enables or returns, so the scheduler's availability guarantee rests
   on every disabled region being short and acyclic.  This pass makes
   that statically checkable:

     - seed each export entry with its *declared* posture (the linkage
       layer separately checks the descriptor sentry agrees with the
       declaration), Interrupts_inherited with both;
     - propagate postures over direct edges — fall-throughs, branch arms,
       direct calls and call continuations — which all preserve the
       posture (only a sentry jump or return can change it, and those
       restore the caller's posture at the continuation);
     - the subgraph reachable with interrupts provably disabled must be
       acyclic (irq-unbounded-disabled) and its longest instruction path
       must fit the latency budget (irq-over-budget);
     - a direct edge into a declared-posture entry carrying the opposite
       posture is flagged (irq-inconsistent-reentry): the entry's
       declared contract does not hold on internal re-entry.

   Like the flow layer, every finding is must-evidence: postures are
   propagated only along edges that provably preserve them, so "disabled"
   here means "some execution really is here with interrupts off". *)

(* Longest tolerated interrupts-disabled instruction path.  The paper's
   availability argument needs disabled regions to be "short, bounded";
   64 instructions matches the switcher-sized critical sections the RTOS
   itself uses. *)
let default_budget = 64

type posture = { mutable on : bool; mutable off : bool }

(* [entries]: (entry pc, declared posture) — [Some true] enabled,
   [Some false] disabled, [None] inherited. *)
let analyze ~comp ~(cfg : Cfg.t) ?(budget = default_budget) ~entries () :
    Rules.finding list =
  let findings = ref [] in
  let flagged = Hashtbl.create 8 in
  let emit pc rule detail =
    if not (Hashtbl.mem flagged (rule, pc)) then begin
      Hashtbl.replace flagged (rule, pc) ();
      findings := Rules.v ~pc ~compartment:comp rule detail :: !findings
    end
  in
  let postures : (int, posture) Hashtbl.t = Hashtbl.create 32 in
  let posture_of pc =
    match Hashtbl.find_opt postures pc with
    | Some p -> p
    | None ->
        let p = { on = false; off = false } in
        Hashtbl.replace postures pc p;
        p
  in
  let declared pc =
    List.fold_left
      (fun acc (e, d) -> if e = pc then Some d else acc)
      None entries
  in
  let queue = Queue.create () in
  let add ~via_edge pc ~on ~off =
    if Hashtbl.mem cfg.Cfg.blocks pc then begin
      (if via_edge then
         match declared pc with
         | Some (Some true) when off ->
             emit pc Rules.irq_inconsistent_reentry
               "interrupts-enabled export entry reachable with interrupts \
                disabled"
         | Some (Some false) when on ->
             emit pc Rules.irq_inconsistent_reentry
               "interrupts-disabled export entry reachable with interrupts \
                enabled"
         | _ -> ());
      let p = posture_of pc in
      let grew = (on && not p.on) || (off && not p.off) in
      if grew then begin
        p.on <- p.on || on;
        p.off <- p.off || off;
        Queue.push pc queue
      end
    end
  in
  List.iter
    (fun (pc, d) ->
      match d with
      | Some true -> add ~via_edge:false pc ~on:true ~off:false
      | Some false -> add ~via_edge:false pc ~on:false ~off:true
      | None -> add ~via_edge:false pc ~on:true ~off:true)
    entries;
  while not (Queue.is_empty queue) do
    let pc = Queue.pop queue in
    match Hashtbl.find_opt cfg.Cfg.blocks pc with
    | None -> ()
    | Some b ->
        let p = posture_of pc in
        List.iter
          (fun succ -> add ~via_edge:true succ ~on:p.on ~off:p.off)
          (Cfg.block_succs b)
  done;
  (* The interrupts-disabled subgraph. *)
  let off_block pc =
    match Hashtbl.find_opt postures pc with Some p -> p.off | None -> false
  in
  let nodes =
    Hashtbl.fold (fun pc p acc -> if p.off then pc :: acc else acc) postures []
    |> List.sort compare
  in
  let succs pc =
    match Hashtbl.find_opt cfg.Cfg.blocks pc with
    | None -> []
    | Some b -> List.filter off_block (Cfg.block_succs b)
  in
  let weight pc =
    match Hashtbl.find_opt cfg.Cfg.blocks pc with
    | None -> 0
    | Some b -> List.length b.Cfg.body + 1
  in
  (* Kahn's algorithm: peel zero-indegree nodes; a non-empty residue is
     the cyclic core.  The peel order doubles as a topological order for
     the longest-path DP when the subgraph is acyclic. *)
  let indeg = Hashtbl.create 16 in
  List.iter (fun pc -> Hashtbl.replace indeg pc 0) nodes;
  List.iter
    (fun pc ->
      List.iter
        (fun s -> Hashtbl.replace indeg s (1 + Hashtbl.find indeg s))
        (succs pc))
    nodes;
  let ready = Queue.create () in
  List.iter (fun pc -> if Hashtbl.find indeg pc = 0 then Queue.push pc ready)
    nodes;
  let topo = ref [] in
  while not (Queue.is_empty ready) do
    let pc = Queue.pop ready in
    topo := pc :: !topo;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.push s ready)
      (succs pc)
  done;
  let peeled = List.length !topo in
  if peeled < List.length nodes then begin
    let residue =
      List.filter (fun pc -> Hashtbl.find indeg pc > 0) nodes
    in
    let at = List.fold_left min (List.hd residue) residue in
    emit at Rules.irq_unbounded_disabled
      "interrupts-disabled region contains a cycle: IRQ latency is unbounded"
  end
  else begin
    (* [!topo] is reverse-topological: successors already have their DP
       value when a node is processed. *)
    let dp = Hashtbl.create 16 in
    List.iter
      (fun pc ->
        let best =
          List.fold_left (fun m s -> max m (Hashtbl.find dp s)) 0 (succs pc)
        in
        Hashtbl.replace dp pc (weight pc + best))
      !topo;
    let worst, at =
      List.fold_left
        (fun (w, at) pc ->
          let d = Hashtbl.find dp pc in
          if d > w then (d, pc) else (w, at))
        (0, 0) nodes
    in
    if worst > budget then
      emit at Rules.irq_over_budget
        (Printf.sprintf
           "interrupts can stay disabled for %d straight-line instructions \
            (budget %d)"
           worst budget)
  end;
  List.rev !findings
