(* The audit rule catalogue and the findings report.

   Every statically-detectable violation the auditor can report has a
   stable rule id, grouped by the layer that detects it:

     cfg-*    control-flow recovery over a compartment's code region
     flow-*   the abstract capability-flow interpretation (fixpoint)
     irq-*    interrupt-posture analysis over the CFG and export sentries
     tmp-*    temporal safety (heap revocation / dangling ranges)
     link-*   structural checks on the linked image (descriptors,
              imports, reserved otypes, boot register file)
     xflow-*  compositional cross-compartment flow: the {!Linkflow} pass
              propagating per-compartment interface summaries
              ({!Summary}) over the linkage graph to fixpoint
              (DESIGN.md §15)
     plan-*   translation validation of jit check plans (Planverify);
              kept in [plan_catalogue], separate from [catalogue],
              because the audit corpus exactness gate covers the image
              rules while the seeded-mutant suite covers the plan rules

   A finding pins a rule to a compartment and, for code-level rules, a
   PC.  Findings are rendered as JSON by [report_to_json]; the schema is
   documented in the README. *)

type finding = {
  rule : string;
  compartment : string;
  pc : int option;  (** absolute address of the offending instruction *)
  detail : string;
}

(* --- rule ids ---------------------------------------------------------- *)

let cfg_undecodable = "cfg-undecodable"
let cfg_direct_cross = "cfg-direct-cross"
let cfg_fallthrough_exit = "cfg-fallthrough-exit"
let flow_store_local_leak = "flow-store-local-leak"
let flow_oob_access = "flow-oob-access"
let flow_jump_not_executable = "flow-jump-not-executable"
let flow_widening_derivation = "flow-widening-derivation"
let flow_untagged_deref = "flow-untagged-deref"
let flow_missing_perm = "flow-missing-perm"
let flow_launder_local = "flow-launder-local"
let irq_unbounded_disabled = "irq-unbounded-disabled"
let irq_over_budget = "irq-over-budget"
let irq_inconsistent_reentry = "irq-inconsistent-reentry"
let tmp_heap_escape = "tmp-heap-escape"
let tmp_import_dangling = "tmp-import-dangling"
let link_import_unsealed = "link-import-unsealed"
let link_import_wrong_otype = "link-import-wrong-otype"
let link_import_slot_range = "link-import-slot-range"
let link_export_posture = "link-export-posture"
let link_export_entry_escape = "link-export-entry-escape"
let link_globals_cap = "link-globals-cap"
let link_local_leak = "link-local-leak"
let link_reserved_otype = "link-reserved-otype"
let link_sr_leak = "link-sr-leak"
let link_switcher_slot = "link-switcher-slot"
let link_stack_cap = "link-stack-cap"
let link_heap_layout = "link-heap-layout"
let xflow_local_escape = "xflow-local-escape"
let xflow_escalation = "xflow-escalation"
let xflow_sealed_forgery = "xflow-sealed-forgery"
let xflow_import_taint = "xflow-import-taint"

let catalogue =
  [
    (cfg_undecodable, "reachable word does not decode to an instruction");
    (cfg_direct_cross, "direct jump/branch leaves the compartment's code");
    (cfg_fallthrough_exit, "execution can fall off the end of the code region");
    ( flow_store_local_leak,
      "local (non-GL) capability stored through an SL-lacking authority" );
    (flow_oob_access, "memory access provably outside capability bounds");
    ( flow_jump_not_executable,
      "indirect jump through a provably untagged, non-executable or \
       sealed non-sentry capability" );
    ( flow_widening_derivation,
      "bounds derivation provably requests authority outside the source \
       capability" );
    (flow_untagged_deref, "dereference of a provably untagged or sealed capability");
    (flow_missing_perm, "access through a capability provably lacking the permission");
    ( flow_launder_local,
      "memory-laundered local capability re-stored through an SL-lacking \
       authority" );
    ( irq_unbounded_disabled,
      "interrupts-disabled region contains a cycle: unbounded IRQ latency" );
    ( irq_over_budget,
      "interrupts-disabled instruction path exceeds the latency budget" );
    ( irq_inconsistent_reentry,
      "export entry reachable internally with the opposite interrupt posture" );
    ( tmp_heap_escape,
      "heap-derived capability stripped of GL stored to globals, escaping \
       revocation" );
    ( tmp_import_dangling,
      "import slot's range lies in the revocable heap region" );
    (link_import_unsealed, "import slot holds an untagged or unsealed capability");
    ( link_import_wrong_otype,
      "import sealed with an otype other than the switcher's export otype" );
    (link_import_slot_range, "import slot outside the compartment's globals");
    (link_export_posture, "export sentry posture differs from the declared posture");
    (link_export_entry_escape, "export entry points outside the compartment's code");
    (link_globals_cap, "compartment globals capability malformed (SL, bounds, seal)");
    (link_local_leak, "tagged local (non-GL) capability present in globals image");
    ( link_reserved_otype,
      "sealing capability covering the switcher's reserved otype reachable \
       from a compartment" );
    (link_sr_leak, "system-register permission reachable by a compartment");
    (link_switcher_slot, "globals slot 0 does not hold the switcher cross-call sentry");
    (link_stack_cap, "boot stack capability malformed (global, SL-less or unbounded)");
    (link_heap_layout, "heap region overlaps stacks or static data");
    ( xflow_local_escape,
      "store-local (non-GL) capability escapes its compartment through an \
       export return" );
    ( xflow_escalation,
      "compartment transitively obtains authority over a third \
       compartment's globals that none of its own imports grant" );
    ( xflow_sealed_forgery,
      "authority over switcher-private sealing state (the unseal key) \
       reachable through an export chain" );
    ( xflow_import_taint,
      "value received from an import call — provably a tagged capability — \
       stored into the compartment's globals" );
  ]

(* --- plan rules (Planverify, DESIGN.md §14) ----------------------------- *)

let plan_meta_undominated = "plan-meta-undominated"
let plan_bounds_uncovered = "plan-bounds-uncovered"
let plan_align_undischarged = "plan-align-undischarged"
let plan_guard_perms = "plan-guard-perms"
let plan_deferral = "plan-deferral"
let plan_rv32_weakened = "plan-rv32-weakened"

let plan_catalogue =
  [
    ( plan_meta_undominated,
      "check weakened without a dominating tag/seal/permission fact on the \
       same register version" );
    ( plan_bounds_uncovered,
      "bounds check dropped without a covering proven range, guard span or \
       derivation-hop cover" );
    ( plan_align_undischarged,
      "alignment check dropped without an alignment-compatible dominating \
       footprint" );
    ( plan_guard_perms,
      "guard covers an access's footprint but lacks a permission the access \
       requires" );
    ( plan_deferral,
      "bookkeeping deferred for an op whose PCC/minstret/event update is \
       observable at a trap or side exit" );
    ( plan_rv32_weakened,
      "Rv32 plan weakened: DDC-authorized accesses must keep full checks" );
  ]

let v ?pc ~compartment rule detail = { rule; compartment; pc; detail }

(* Deterministic report order: (compartment, pc, rule id, detail).
   [None] pcs (structural findings) sort before code-level ones. *)
let compare_finding a b =
  compare
    (a.compartment, a.pc, a.rule, a.detail)
    (b.compartment, b.pc, b.rule, b.detail)

let sort_findings fs = List.sort compare_finding fs

let pp_finding ppf f =
  match f.pc with
  | Some pc ->
      Format.fprintf ppf "%s: %s @@ 0x%x: %s" f.rule f.compartment pc f.detail
  | None -> Format.fprintf ppf "%s: %s: %s" f.rule f.compartment f.detail

(* --- JSON rendering ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json b f =
  Buffer.add_string b
    (Printf.sprintf "{\"rule\":\"%s\",\"compartment\":\"%s\",%s\"detail\":\"%s\"}"
       (json_escape f.rule)
       (json_escape f.compartment)
       (match f.pc with
       | Some pc -> Printf.sprintf "\"pc\":%d," pc
       | None -> "")
       (json_escape f.detail))

(* [report_to_json images] renders [(image_name, findings)] pairs as the
   report the CI gate consumes. *)
let report_to_json images =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"images\":[";
  List.iteri
    (fun i (name, findings) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"image\":\"%s\",\"findings\":[" (json_escape name));
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_char b ',';
          finding_to_json b f)
        findings;
      Buffer.add_string b "]}")
    images;
  let total =
    List.fold_left (fun a (_, fs) -> a + List.length fs) 0 images
  in
  Buffer.add_string b (Printf.sprintf "],\"total_findings\":%d}" total);
  Buffer.contents b
