(* Control-flow recovery over one compartment's code region.

   Reachability-driven decode: starting from the compartment's entry
   points (its exports, plus the boot PC when it lands here), decode
   forward, splitting at branch/jump targets and fall-throughs.  Data
   words mixed into the region are never decoded unless reachable, so
   [Asm.Word]/[Asm.Space] padding cannot produce bogus findings.

   Three structural rules are enforced during recovery:
     cfg-undecodable       a reachable word fails [Encode.decode]
     cfg-direct-cross      a direct Jal/Branch edge leaves the region (a
                           legal cross-compartment transfer must instead
                           go through a sealed sentry via Jalr)
     cfg-fallthrough-exit  straight-line execution reaches region end

   Flagged edges are not followed, so one bad instruction yields one
   finding rather than a cascade. *)

open Cheriot_isa

type terminator =
  | T_jal of Insn.reg * int  (* link register, resolved absolute target *)
  | T_jalr of Insn.reg * Insn.reg * int
  | T_branch of int  (* resolved absolute target; fall-through implicit *)
  | T_halt  (* Ebreak / Ecall / Mret: no static successor *)
  | T_fall of int  (* block split before another leader *)
  | T_stop  (* recovery stopped here: finding already emitted *)

type block = {
  start : int;
  body : (int * Insn.t) list;  (* straight-line prefix, in order *)
  term_pc : int;  (* pc of the terminating instruction *)
  term : terminator;
}

type t = {
  comp : string;
  lo : int;  (* code region [lo, hi) *)
  hi : int;
  blocks : (int, block) Hashtbl.t;  (* leader pc -> block *)
  entries : int list;
  findings : Rules.finding list;
}

(* Direct static successors of a block, posture- and context-preserving:
   fall-throughs, both branch arms, direct jump/call targets and call
   continuations.  Indirect (`Jalr`) targets are not static; only the
   call continuation is followed. *)
let block_succs (b : block) =
  match b.term with
  | T_fall next -> [ next ]
  | T_branch target -> [ target; b.term_pc + 4 ]
  | T_jal (0, target) -> [ target ]
  | T_jal (_, target) -> [ target; b.term_pc + 4 ]
  | T_jalr (0, _, _) -> []
  | T_jalr (_, _, _) -> [ b.term_pc + 4 ]
  | T_halt | T_stop -> []

(* A return: an unlinked indirect jump through the link register. *)
let is_return (b : block) =
  match b.term with
  | T_jalr (0, rs1, 0) -> rs1 = Insn.reg_ra
  | _ -> false

let is_block_end (i : Insn.t) =
  match i with
  | Jal _ | Jalr _ | Branch _ | Ebreak | Ecall | Mret -> true
  | _ -> false

let build ~comp ~sram ~lo ~hi ~entries =
  let findings = ref [] in
  let flagged = Hashtbl.create 8 in
  let emit pc rule detail =
    if not (Hashtbl.mem flagged (rule, pc)) then begin
      Hashtbl.replace flagged (rule, pc) ();
      findings := Rules.v ~pc ~compartment:comp rule detail :: !findings
    end
  in
  let insns : (int, Insn.t) Hashtbl.t = Hashtbl.create 64 in
  let leaders = Hashtbl.create 16 in
  let worklist = Queue.create () in
  let add_leader pc =
    if not (Hashtbl.mem leaders pc) then begin
      Hashtbl.replace leaders pc ();
      Queue.push pc worklist
    end
  in
  let in_region pc = pc >= lo && pc < hi in
  (* A direct Jal/Branch target must stay in-region and 4-aligned. *)
  let direct_target pc target =
    if not (in_region target) then begin
      emit pc Rules.cfg_direct_cross
        (Printf.sprintf "target 0x%x outside code region [0x%x, 0x%x)" target
           lo hi);
      None
    end
    else if target land 3 <> 0 then begin
      emit pc Rules.cfg_direct_cross
        (Printf.sprintf "misaligned target 0x%x" target);
      None
    end
    else begin
      add_leader target;
      Some target
    end
  in
  List.iter add_leader entries;
  (* Pass 1: reachability-driven linear decode from every leader. *)
  while not (Queue.is_empty worklist) do
    let pc = ref (Queue.pop worklist) in
    let stop = ref false in
    while not !stop do
      if Hashtbl.mem insns !pc then stop := true
      else if not (in_region !pc) then begin
        emit !pc Rules.cfg_fallthrough_exit
          (Printf.sprintf "straight-line execution reaches 0x%x past region \
                           end 0x%x"
             !pc hi);
        stop := true
      end
      else
        match Encode.decode (Cheriot_mem.Sram.read32 sram !pc) with
        | None ->
            emit !pc Rules.cfg_undecodable
              (Printf.sprintf "word 0x%08x does not decode"
                 (Cheriot_mem.Sram.read32 sram !pc));
            stop := true
        | Some i ->
            Hashtbl.replace insns !pc i;
            (match i with
            | Insn.Jal (rd, off) ->
                ignore (direct_target !pc (!pc + off));
                if rd <> 0 then add_leader (!pc + 4);
                stop := true
            | Insn.Branch (_, _, _, off) ->
                ignore (direct_target !pc (!pc + off));
                add_leader (!pc + 4);
                stop := true
            | Insn.Jalr (rd, _, _) ->
                if rd <> 0 then add_leader (!pc + 4);
                stop := true
            | Insn.Ebreak | Insn.Ecall | Insn.Mret -> stop := true
            | _ -> pc := !pc + 4)
    done
  done;
  (* Pass 2: carve blocks at leaders. *)
  let blocks = Hashtbl.create 32 in
  Hashtbl.iter
    (fun leader () ->
      let body = ref [] in
      let rec walk pc =
        match Hashtbl.find_opt insns pc with
        | None ->
            (* recovery stopped at [pc]: undecodable or fell off the
               region; the finding is already recorded *)
            { start = leader; body = List.rev !body; term_pc = pc; term = T_stop }
        | Some i when is_block_end i ->
            let term =
              match i with
              | Insn.Jal (rd, off) -> (
                  let target = pc + off in
                  if target >= lo && target < hi && target land 3 = 0 then
                    T_jal (rd, target)
                  else T_stop (* flagged cross edge: not followed *))
              | Insn.Branch (_, _, _, off) -> (
                  let target = pc + off in
                  if target >= lo && target < hi && target land 3 = 0 then
                    T_branch target
                  else T_stop)
              | Insn.Jalr (rd, rs1, off) -> T_jalr (rd, rs1, off)
              | _ -> T_halt
            in
            { start = leader; body = List.rev !body; term_pc = pc; term }
        | Some i ->
            if pc <> leader && Hashtbl.mem leaders pc then
              { start = leader; body = List.rev !body; term_pc = pc;
                term = T_fall pc }
            else begin
              body := (pc, i) :: !body;
              walk (pc + 4)
            end
      in
      Hashtbl.replace blocks leader (walk leader))
    leaders;
  { comp; lo; hi; blocks; entries; findings = List.rev !findings }
