(* Reusable auditor driver: the logic behind `cheriot_audit`, factored
   out of the binary so the exit-code contract and report determinism
   are unit-testable.

   Exit-code contract (tested in test_audit):
     0  clean (no findings; corpus detected exactly)
     1  findings on shipped images, or a corpus exactness failure
     2  analysis error, unknown image name, or unknown rule id

   Findings are sorted by (compartment, pc, rule id) before JSON
   emission, so reports are byte-stable across runs and refactors of
   emission order. *)

module Loader = Cheriot_rtos.Loader
module Machine = Cheriot_isa.Machine
module Asm = Cheriot_isa.Asm

type images = (string * (unit -> Loader.t)) list

(* `--rule` accepts plan ids too, so `rules` output is uniformly usable
   as filter arguments across subcommands. *)
let known_rule rule =
  List.mem_assoc rule Rules.catalogue || List.mem_assoc rule Rules.plan_catalogue

let filter_rule rule fs =
  match rule with
  | None -> fs
  | Some r -> List.filter (fun (f : Rules.finding) -> f.Rules.rule = r) fs

(* [shipped ~images ?name ?rule ()] audits the shipped catalogue (or the
   single image [name]), prints the JSON report, and returns the exit
   code. *)
let shipped ~(images : images) ?name ?rule () =
  let selected =
    match name with
    | None -> Ok images
    | Some n -> (
        match List.assoc_opt n images with
        | Some build -> Ok [ (n, build) ]
        | None -> Error (Printf.sprintf "unknown image %S" n))
  in
  match (selected, rule) with
  | Error e, _ ->
      Printf.eprintf "shipped: %s\n%!" e;
      2
  | _, Some r when not (known_rule r) ->
      Printf.eprintf "shipped: unknown rule %S\n%!" r;
      2
  | Ok imgs, _ -> (
      match
        List.map
          (fun (n, build) ->
            (n, filter_rule rule (Rules.sort_findings (Audit.run (build ())))))
          imgs
      with
      | report ->
          print_endline (Rules.report_to_json report);
          let total =
            List.fold_left (fun a (_, fs) -> a + List.length fs) 0 report
          in
          if total = 0 then begin
            Printf.eprintf "shipped: %d images clean\n%!" (List.length report);
            0
          end
          else begin
            Printf.eprintf "shipped: %d findings on shipped images\n%!" total;
            1
          end
      | exception e ->
          Printf.eprintf "shipped: analysis error: %s\n%!"
            (Printexc.to_string e);
          2)

(* [corpus ?rule ()] checks every corpus image (or only those expecting
   [rule]) trips exactly its expected rule. *)
let corpus ?rule () =
  match rule with
  | Some r when not (known_rule r) ->
      Printf.eprintf "corpus: unknown rule %S\n%!" r;
      2
  | _ -> (
      let entries =
        match rule with
        | None -> Corpus.entries
        | Some r ->
            List.filter (fun (e : Corpus.entry) -> e.Corpus.rule = r)
              Corpus.entries
      in
      let check failures (e : Corpus.entry) =
        let findings = Audit.run (e.Corpus.build ()) in
        let hit =
          List.exists (fun (f : Rules.finding) -> f.Rules.rule = e.Corpus.rule)
            findings
        in
        let spurious =
          List.filter (fun (f : Rules.finding) -> f.Rules.rule <> e.Corpus.rule)
            findings
        in
        if hit && spurious = [] then begin
          Printf.eprintf "corpus: PASS %-26s -> %s\n%!" e.Corpus.name
            e.Corpus.rule;
          failures
        end
        else begin
          Printf.eprintf "corpus: FAIL %-26s expected %s\n%!" e.Corpus.name
            e.Corpus.rule;
          if not hit then Printf.eprintf "         missed (false negative)\n%!";
          List.iter
            (fun f ->
              Printf.eprintf "         spurious: %s\n%!"
                (Format.asprintf "%a" Rules.pp_finding f))
            spurious;
          failures + 1
        end
      in
      match List.fold_left check 0 entries with
      | 0 ->
          Printf.eprintf "corpus: %d/%d images detected exactly\n%!"
            (List.length entries) (List.length entries);
          0
      | _ -> 1
      | exception e ->
          Printf.eprintf "corpus: analysis error: %s\n%!"
            (Printexc.to_string e);
          2)

(* [all]: shipped + corpus; the worst exit code wins. *)
let all ~images ?rule () =
  let a = shipped ~images ?rule () in
  let b = corpus ?rule () in
  max a b

let rules () =
  List.iter (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc) Rules.catalogue;
  List.iter (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc)
    Rules.plan_catalogue;
  0

(* --- plan-soundness gate (Planverify, DESIGN.md §14) -------------------- *)

(* A counterexample is pinned to the compartment whose code region holds
   the block; switcher/trap-stub blocks report as "system". *)
let plan_compartment (t : Loader.t) (p : Planverify.plan) =
  let pc = p.Planverify.p_block.Machine.b_start in
  match
    List.find_opt
      (fun ((_, b) : string * Loader.built) ->
        let o = b.Loader.image.Asm.origin in
        pc >= o && pc < o + Asm.bytes_size b.Loader.image)
      t.Loader.compartments
  with
  | Some (name, _) -> name
  | None -> "system"

(* [plans ~images ?name ?dispatch ?fuel ()] boots each shipped image,
   runs it under [dispatch] (default the jit tier, forced hot so every
   reachable block compiles), collects every emitted plan and verifies
   it.  Same report shape and exit-code contract as [shipped]. *)
let plans ~(images : images) ?name ?dispatch ?fuel () =
  let selected =
    match name with
    | None -> Ok images
    | Some n -> (
        match List.assoc_opt n images with
        | Some build -> Ok [ (n, build) ]
        | None -> Error (Printf.sprintf "unknown image %S" n))
  in
  match selected with
  | Error e ->
      Printf.eprintf "plans: %s\n%!" e;
      2
  | Ok imgs -> (
      let verified = ref 0 in
      let audit (n, build) =
        let t = build () in
        let m = t.Loader.machine in
        m.Machine.hot_threshold <- 2;
        m.Machine.hot_adaptive <- false;
        let ps = Planverify.collect ?dispatch ?fuel m in
        verified := !verified + List.length ps;
        let findings =
          List.filter_map
            (fun p ->
              match Planverify.verify_plan p with
              | Planverify.Sound -> None
              | Planverify.Unsound cx ->
                  Some
                    (Planverify.finding_of
                       ~compartment:(plan_compartment t p) p cx))
            ps
        in
        (n, Rules.sort_findings findings)
      in
      match List.map audit imgs with
      | report ->
          print_endline (Rules.report_to_json report);
          let total =
            List.fold_left (fun a (_, fs) -> a + List.length fs) 0 report
          in
          if total = 0 then begin
            Printf.eprintf "plans: %d images, %d plans proved sound\n%!"
              (List.length report) !verified;
            0
          end
          else begin
            Printf.eprintf "plans: %d unsound plans on shipped images\n%!"
              total;
            1
          end
      | exception e ->
          Printf.eprintf "plans: analysis error: %s\n%!" (Printexc.to_string e);
          2)

(* [plan_mutants ()]: every seeded optimizer bug must be refuted with
   exactly its expected plan-* rule — the corpus exactness gate for the
   verifier itself. *)
let plan_mutants () =
  let check failures (e : Planmutants.entry) =
    let cheri, insns, chks, guards, defer = e.Planmutants.pm_build () in
    match Planverify.verify ~cheri ?defer insns chks guards with
    | Planverify.Unsound cx when cx.Planverify.cx_rule = e.Planmutants.pm_rule ->
        Printf.eprintf "plan-mutants: PASS %-26s -> %s\n%!"
          e.Planmutants.pm_name cx.Planverify.cx_rule;
        failures
    | Planverify.Unsound cx ->
        Printf.eprintf
          "plan-mutants: FAIL %-26s expected %s, refuted as %s (%s)\n%!"
          e.Planmutants.pm_name e.Planmutants.pm_rule cx.Planverify.cx_rule
          cx.Planverify.cx_detail;
        failures + 1
    | Planverify.Sound ->
        Printf.eprintf
          "plan-mutants: FAIL %-26s expected %s, proved Sound (false \
           negative)\n%!"
          e.Planmutants.pm_name e.Planmutants.pm_rule;
        failures + 1
  in
  match List.fold_left check 0 Planmutants.entries with
  | 0 ->
      Printf.eprintf "plan-mutants: %d/%d mutants refuted exactly\n%!"
        (List.length Planmutants.entries)
        (List.length Planmutants.entries);
      0
  | _ -> 1
  | exception e ->
      Printf.eprintf "plan-mutants: analysis error: %s\n%!"
        (Printexc.to_string e);
      2

(* [plans_all]: shipped plans + mutants; the worst exit code wins. *)
let plans_all ~images ?name ?dispatch ?fuel () =
  let a = plans ~images ?name ?dispatch ?fuel () in
  let b = plan_mutants () in
  max a b
