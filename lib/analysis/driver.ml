(* Reusable auditor driver: the logic behind `cheriot_audit`, factored
   out of the binary so the exit-code contract and report determinism
   are unit-testable.

   Exit-code contract (tested in test_audit):
     0  clean (no findings; corpus detected exactly)
     1  findings on shipped images, or a corpus exactness failure
     2  analysis error, unknown image name, or unknown rule id

   Findings are sorted by (compartment, pc, rule id) before JSON
   emission, so reports are byte-stable across runs and refactors of
   emission order. *)

module Loader = Cheriot_rtos.Loader
module Machine = Cheriot_isa.Machine
module Asm = Cheriot_isa.Asm

type images = (string * (unit -> Loader.t)) list

(* `--rule` accepts plan ids too, so `rules` output is uniformly usable
   as filter arguments across subcommands. *)
let known_rule rule =
  List.mem_assoc rule Rules.catalogue || List.mem_assoc rule Rules.plan_catalogue

let filter_rule rule fs =
  match rule with
  | None -> fs
  | Some r -> List.filter (fun (f : Rules.finding) -> f.Rules.rule = r) fs

(* [shipped ~images ?name ?rule ()] audits the shipped catalogue (or the
   single image [name]), prints the JSON report, and returns the exit
   code. *)
let shipped ~(images : images) ?name ?rule () =
  let selected =
    match name with
    | None -> Ok images
    | Some n -> (
        match List.assoc_opt n images with
        | Some build -> Ok [ (n, build) ]
        | None -> Error (Printf.sprintf "unknown image %S" n))
  in
  match (selected, rule) with
  | Error e, _ ->
      Printf.eprintf "shipped: %s\n%!" e;
      2
  | _, Some r when not (known_rule r) ->
      Printf.eprintf "shipped: unknown rule %S\n%!" r;
      2
  | Ok imgs, _ -> (
      match
        List.map
          (fun (n, build) ->
            (n, filter_rule rule (Rules.sort_findings (Audit.run (build ())))))
          imgs
      with
      | report ->
          print_endline (Rules.report_to_json report);
          let total =
            List.fold_left (fun a (_, fs) -> a + List.length fs) 0 report
          in
          if total = 0 then begin
            Printf.eprintf "shipped: %d images clean\n%!" (List.length report);
            0
          end
          else begin
            Printf.eprintf "shipped: %d findings on shipped images\n%!" total;
            1
          end
      | exception e ->
          Printf.eprintf "shipped: analysis error: %s\n%!"
            (Printexc.to_string e);
          2)

(* [corpus ?rule ()] checks every corpus image (or only those expecting
   [rule]) trips exactly its expected rule. *)
let corpus ?rule () =
  match rule with
  | Some r when not (known_rule r) ->
      Printf.eprintf "corpus: unknown rule %S\n%!" r;
      2
  | _ -> (
      let entries =
        match rule with
        | None -> Corpus.entries
        | Some r ->
            List.filter (fun (e : Corpus.entry) -> e.Corpus.rule = r)
              Corpus.entries
      in
      let check failures (e : Corpus.entry) =
        let findings = Audit.run (e.Corpus.build ()) in
        let hit =
          List.exists (fun (f : Rules.finding) -> f.Rules.rule = e.Corpus.rule)
            findings
        in
        let spurious =
          List.filter (fun (f : Rules.finding) -> f.Rules.rule <> e.Corpus.rule)
            findings
        in
        if hit && spurious = [] then begin
          Printf.eprintf "corpus: PASS %-26s -> %s\n%!" e.Corpus.name
            e.Corpus.rule;
          failures
        end
        else begin
          Printf.eprintf "corpus: FAIL %-26s expected %s\n%!" e.Corpus.name
            e.Corpus.rule;
          if not hit then Printf.eprintf "         missed (false negative)\n%!";
          List.iter
            (fun f ->
              Printf.eprintf "         spurious: %s\n%!"
                (Format.asprintf "%a" Rules.pp_finding f))
            spurious;
          failures + 1
        end
      in
      match List.fold_left check 0 entries with
      | 0 ->
          Printf.eprintf "corpus: %d/%d images detected exactly\n%!"
            (List.length entries) (List.length entries);
          0
      | _ -> 1
      | exception e ->
          Printf.eprintf "corpus: analysis error: %s\n%!"
            (Printexc.to_string e);
          2)

(* [all]: shipped + corpus; the worst exit code wins. *)
let all ~images ?rule () =
  let a = shipped ~images ?rule () in
  let b = corpus ?rule () in
  max a b

let rules () =
  List.iter (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc) Rules.catalogue;
  List.iter (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc)
    Rules.plan_catalogue;
  0

(* --- plan-soundness gate (Planverify, DESIGN.md §14) -------------------- *)

(* A counterexample is pinned to the compartment whose code region holds
   the block; switcher/trap-stub blocks report as "system". *)
let plan_compartment (t : Loader.t) (p : Planverify.plan) =
  let pc = p.Planverify.p_block.Machine.b_start in
  match
    List.find_opt
      (fun ((_, b) : string * Loader.built) ->
        let o = b.Loader.image.Asm.origin in
        pc >= o && pc < o + Asm.bytes_size b.Loader.image)
      t.Loader.compartments
  with
  | Some (name, _) -> name
  | None -> "system"

(* [plans ~images ?name ?dispatch ?fuel ?rule ()] boots each shipped
   image, runs it under [dispatch] (default the jit tier, forced hot so
   every reachable block compiles), collects every emitted plan and
   verifies it.  Same report shape and exit-code contract as
   [shipped]; [rule] filters the report the same way. *)
let plans ~(images : images) ?name ?dispatch ?fuel ?rule () =
  let selected =
    match name with
    | None -> Ok images
    | Some n -> (
        match List.assoc_opt n images with
        | Some build -> Ok [ (n, build) ]
        | None -> Error (Printf.sprintf "unknown image %S" n))
  in
  match (selected, rule) with
  | Error e, _ ->
      Printf.eprintf "plans: %s\n%!" e;
      2
  | _, Some r when not (known_rule r) ->
      Printf.eprintf "plans: unknown rule %S\n%!" r;
      2
  | Ok imgs, _ -> (
      let verified = ref 0 in
      let audit (n, build) =
        let t = build () in
        let m = t.Loader.machine in
        m.Machine.hot_threshold <- 2;
        m.Machine.hot_adaptive <- false;
        let ps = Planverify.collect ?dispatch ?fuel m in
        verified := !verified + List.length ps;
        let findings =
          List.filter_map
            (fun p ->
              match Planverify.verify_plan p with
              | Planverify.Sound -> None
              | Planverify.Unsound cx ->
                  Some
                    (Planverify.finding_of
                       ~compartment:(plan_compartment t p) p cx))
            ps
        in
        (n, filter_rule rule (Rules.sort_findings findings))
      in
      match List.map audit imgs with
      | report ->
          print_endline (Rules.report_to_json report);
          let total =
            List.fold_left (fun a (_, fs) -> a + List.length fs) 0 report
          in
          if total = 0 then begin
            Printf.eprintf "plans: %d images, %d plans proved sound\n%!"
              (List.length report) !verified;
            0
          end
          else begin
            Printf.eprintf "plans: %d unsound plans on shipped images\n%!"
              total;
            1
          end
      | exception e ->
          Printf.eprintf "plans: analysis error: %s\n%!" (Printexc.to_string e);
          2)

(* [plan_mutants ()]: every seeded optimizer bug must be refuted with
   exactly its expected plan-* rule — the corpus exactness gate for the
   verifier itself. *)
let plan_mutants () =
  let check failures (e : Planmutants.entry) =
    let cheri, insns, chks, guards, defer = e.Planmutants.pm_build () in
    match Planverify.verify ~cheri ?defer insns chks guards with
    | Planverify.Unsound cx when cx.Planverify.cx_rule = e.Planmutants.pm_rule ->
        Printf.eprintf "plan-mutants: PASS %-26s -> %s\n%!"
          e.Planmutants.pm_name cx.Planverify.cx_rule;
        failures
    | Planverify.Unsound cx ->
        Printf.eprintf
          "plan-mutants: FAIL %-26s expected %s, refuted as %s (%s)\n%!"
          e.Planmutants.pm_name e.Planmutants.pm_rule cx.Planverify.cx_rule
          cx.Planverify.cx_detail;
        failures + 1
    | Planverify.Sound ->
        Printf.eprintf
          "plan-mutants: FAIL %-26s expected %s, proved Sound (false \
           negative)\n%!"
          e.Planmutants.pm_name e.Planmutants.pm_rule;
        failures + 1
  in
  match List.fold_left check 0 Planmutants.entries with
  | 0 ->
      Printf.eprintf "plan-mutants: %d/%d mutants refuted exactly\n%!"
        (List.length Planmutants.entries)
        (List.length Planmutants.entries);
      0
  | _ -> 1
  | exception e ->
      Printf.eprintf "plan-mutants: analysis error: %s\n%!"
        (Printexc.to_string e);
      2

(* [plans_all]: shipped plans + mutants; the worst exit code wins. *)
let plans_all ~images ?name ?dispatch ?fuel ?rule () =
  let a = plans ~images ?name ?dispatch ?fuel ?rule () in
  let b = plan_mutants () in
  max a b

(* --- incremental re-audit (Summary cache, DESIGN.md §15) ---------------- *)

module Encode = Cheriot_isa.Encode
module Insn = Cheriot_isa.Insn
module Sram = Cheriot_mem.Sram

(* [patch_first_opimm t] simulates a one-compartment recompile: scanning
   compartments in link order, the first code word that decodes to a
   small [Op_imm Add] gets its immediate bumped by one.  Deterministic,
   so patching two fresh builds of the same image yields byte-identical
   SRAM.  Returns the patched compartment's name. *)
let patch_first_opimm (t : Loader.t) =
  let rec scan = function
    | [] -> None
    | ((name, b) : string * Loader.built) :: rest ->
        let o = b.Loader.image.Asm.origin in
        let limit = o + Asm.bytes_size b.Loader.image in
        let rec go a =
          if a >= limit then None
          else
            match Encode.decode (Sram.read32 t.Loader.sram a) with
            | Some (Insn.Op_imm (Insn.Add, rd, rs1, imm))
              when rd <> 0 && imm >= 0 && imm < 2000 ->
                Sram.write32 t.Loader.sram a
                  (Encode.encode (Insn.Op_imm (Insn.Add, rd, rs1, imm + 1)));
                Some name
            | _ -> go (a + 4)
        in
        (match go o with Some n -> Some n | None -> scan rest)
  in
  scan t.Loader.compartments

(* [incremental ~images ?name ()] exercises the summary cache end to
   end, per image: prime the cache on a cold audit, apply the
   one-compartment patch to a fresh build, re-audit warm (reusing every
   summary whose content hash is unchanged) and from scratch, and
   demand (a) the two sorted reports are byte-identical and (b) the
   cache was reused for exactly the untouched compartments.  Exit 0
   only when both hold for every image. *)
let incremental ~(images : images) ?name () =
  let selected =
    match name with
    | None -> Ok images
    | Some n -> (
        match List.assoc_opt n images with
        | Some build -> Ok [ (n, build) ]
        | None -> Error (Printf.sprintf "unknown image %S" n))
  in
  match selected with
  | Error e ->
      Printf.eprintf "incremental: %s\n%!" e;
      2
  | Ok imgs -> (
      let audit (n, build) =
        let cache = Summary.create_cache () in
        ignore (Audit.run_stats ~cache (build ()));
        let patched = build () in
        let pname = patch_first_opimm patched in
        let warm, st = Audit.run_stats ~cache patched in
        let scratch = build () in
        ignore (patch_first_opimm scratch);
        let cold = Audit.run scratch in
        let warm_json =
          Rules.report_to_json [ (n, Rules.sort_findings warm) ]
        in
        let cold_json =
          Rules.report_to_json [ (n, Rules.sort_findings cold) ]
        in
        let identical = String.equal warm_json cold_json in
        let expected_hits =
          st.Audit.compartments - (match pname with Some _ -> 1 | None -> 0)
        in
        let reused = st.Audit.cache_hits = expected_hits in
        Printf.eprintf
          "incremental: %-12s %d compartments, patched %s: %d reused / %d \
           re-analyzed, reports %s\n%!"
          n st.Audit.compartments
          (match pname with Some c -> c | None -> "none")
          st.Audit.cache_hits st.Audit.cache_misses
          (if identical then "identical" else "DIVERGED");
        ( Printf.sprintf
            "{\"image\":\"%s\",\"compartments\":%d,\"patched\":%s,\
             \"cache_hits\":%d,\"cache_misses\":%d,\"identical\":%b}"
            (Rules.json_escape n) st.Audit.compartments
            (match pname with
            | Some c -> Printf.sprintf "\"%s\"" (Rules.json_escape c)
            | None -> "null")
            st.Audit.cache_hits st.Audit.cache_misses identical,
          identical && reused )
      in
      match List.map audit imgs with
      | results ->
          let ok = List.for_all snd results in
          Printf.printf "{\"mode\":\"incremental\",\"images\":[%s],\"ok\":%b}\n"
            (String.concat "," (List.map fst results))
            ok;
          if ok then 0 else 1
      | exception e ->
          Printf.eprintf "incremental: analysis error: %s\n%!"
            (Printexc.to_string e);
          2)
