(** Plan-soundness verifier: translation validation for the jit
    check-plan optimizer (DESIGN.md §14).

    [verify] statically proves one compiled check plan equivalent to
    the all-[Chk_full] plan — dominance of every weakened check, guard
    soundness (including derivation-hop coverage for non-entry register
    versions), and deferral safety — or returns a concrete symbolic
    counterexample under a [plan-*] rule id from
    {!Rules.plan_catalogue}.

    Three wirings: {!collect} + {!verify_plan} power the offline
    [cheriot_audit plans] gate; {!install} turns on compile-time
    validation inside [Dispatch_jit] (reject-to-full, counted in
    [jit_plans_rejected]); and the property suites call {!verify}
    directly on plans compiled from random programs. *)

type counterexample = {
  cx_rule : string;  (** a {!Rules.plan_catalogue} id *)
  cx_index : int;  (** op index within the block (= instruction index) *)
  cx_detail : string;  (** the symbolic witness *)
}

type verdict = Sound | Unsound of counterexample

val observable : Cheriot_isa.Insn.t -> bool
(** Ops whose PCC/minstret/event epilogue is architecturally observable
    before the next sync point — the complement of what the executor
    may defer.  Re-derived independently of [Ir.deferrable] as a
    wildcard-free match, so a new instruction forces an explicit
    decision here even if the optimizer's default quietly covers it. *)

val verify :
  cheri:bool ->
  ?defer:bool array ->
  Cheriot_isa.Insn.t array ->
  Cheriot_isa.Ir.chk array ->
  Cheriot_isa.Ir.guard array ->
  verdict
(** [verify ~cheri insns chks guards] proves the plan sound for the
    block, or refutes it at the first unjustified check.  [defer]
    (default: [Ir.deferrable] per op, the executor's actual classes)
    exists so the seeded-mutant suite can verify mutated deferral
    decisions. *)

val verify_block :
  Cheriot_isa.Machine.bentry ->
  Cheriot_isa.Ir.chk array ->
  Cheriot_isa.Ir.guard array ->
  verdict
(** [verify] applied to a translated machine block (the mode decides
    [cheri]). *)

val machine_validator :
  Cheriot_isa.Machine.bentry ->
  Cheriot_isa.Ir.chk array ->
  Cheriot_isa.Ir.guard array ->
  bool
(** The {!verify_block} verdict as a [Machine.t.jit_validator]. *)

val install : Cheriot_isa.Machine.t -> unit
(** Enable compile-time plan validation on a machine: every plan the
    jit tier compiles from now on is verified before installation;
    unsound plans are replaced by the all-full plan and counted in
    [jit_plans_rejected]. *)

type plan = {
  p_block : Cheriot_isa.Machine.bentry;
  p_chks : Cheriot_isa.Ir.chk array;
  p_guards : Cheriot_isa.Ir.guard array;
}

val collect :
  ?dispatch:Cheriot_isa.Machine.dispatch ->
  ?fuel:int ->
  Cheriot_isa.Machine.t ->
  plan list
(** Run the machine (default [Dispatch_jit], 2M fuel) and return every
    plan compiled along the way — captured at compile time through the
    validator hook, so cache evictions lose nothing — deduplicated by
    (start address, instruction array).  Under a non-jit dispatch,
    blocks left uncompiled by the run are force-compiled from the
    translation cache afterwards.  Restores any previously installed
    validator. *)

val verify_plan : plan -> verdict

val finding_of :
  compartment:string -> plan -> counterexample -> Rules.finding
(** Render a counterexample as an audit finding pinned to the offending
    instruction's address. *)
