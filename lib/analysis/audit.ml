(* The static firmware auditor (DESIGN.md §11).

   [run] audits a linked image ([Loader.link] output) without executing
   it, in three layers:

     1. CFG recovery per compartment ({!Cfg});
     2. abstract capability-flow interpretation to fixpoint over each
        compartment's CFG, in the {!Absdom} domain, flagging flow-* rules
        on must-evidence only;
     3. structural linkage checks over descriptors, import/export tables,
        globals images, reserved otypes and the boot register file.

   The switcher and trap stub are the trusted computing base and are not
   analyzed; the linkage layer instead checks that compartments cannot
   reach switcher-private authority (SR permission, the export otype,
   slot-0 integrity).

   Soundness contract: a flow finding means every concrete execution
   reaching that instruction violates the rule; a cfg or link finding
   means the image is structurally malformed.  There are no false positives
   by construction; incompleteness (missed violations) is the price. *)

open Cheriot_core
module Sram = Cheriot_mem.Sram
open Cheriot_isa
module Loader = Cheriot_rtos.Loader
module Compartment = Cheriot_rtos.Compartment
module Switcher_asm = Cheriot_rtos.Switcher_asm
open Absdom

(* --- findings accumulator (dedupe by rule + compartment + pc) ---------- *)

type acc = {
  mutable findings : Rules.finding list;
  seen : (string * string * int option, unit) Hashtbl.t;
  mutable enabled : bool;  (* flow emission muted during warm-up rounds *)
}

let acc_create () = { findings = []; seen = Hashtbl.create 16; enabled = true }

let emit acc ?pc ~compartment rule detail =
  if acc.enabled && not (Hashtbl.mem acc.seen (rule, compartment, pc)) then begin
    Hashtbl.replace acc.seen (rule, compartment, pc) ();
    acc.findings <- Rules.v ?pc ~compartment rule detail :: acc.findings
  end

(* --- per-compartment analysis context ----------------------------------- *)

type ctx = {
  comp : string;
  sram : Sram.t;
  code_cap : Capability.t;
  code_lo : int;
  code_hi : int;
  gbase : int;
  gsize : int;
  gcap : Capability.t;
  sbase : int;
  ssize : int;
  hbase : int;
  hsize : int;
  field_sensitive : bool;
  mutable soup : v;
      (* join of the initial globals image and every value the
         compartment may have stored — the coarse fallback a weak
         (non-singleton-address) capability load sees *)
  granules : (int, v) Hashtbl.t;
      (* field-sensitive store map: 8-byte globals granule -> monotone
         join of every value possibly stored there (absence = never
         stored through a singleton address).  Data stores join an
         untagged unknown: they clear the granule's tag. *)
  mutable wild : v option;
      (* join of every value stored through a non-singleton or
         non-globals address: may alias any granule *)
  fwd : (int, v) Hashtbl.t;
      (* block-local store-to-load forwarding: granule -> last value
         stored this block through a singleton address.  Strong updates
         are sound within a basic block; reset at every block entry and
         on any possibly-aliasing store. *)
  mutable mem_dirty : bool;  (* memory summary grew during this round *)
  mutable use_summaries : bool;
  summaries : (int, state) Hashtbl.t;
      (* call summaries: callee entry pc -> widened join of its return
         states, grown across warm-up rounds to a joint fixpoint with
         the memory summary *)
  callees : (int, unit) Hashtbl.t;  (* entries already summarised *)
  ret_map : (int, int list) Hashtbl.t;
      (* return-block leader -> entries of the functions it returns from
         (intraprocedural reachability, computed once per callee) *)
  mutable sum_dirty : bool;  (* a summary grew during this round *)
  sw_lo : int;
  sw_hi : int;
      (* switcher code region: a provable sentry jump into it is a
         cross-compartment call through the switcher *)
  mutable xcall_out : v option;
      (* join of the a0 argument at every cross-compartment call site,
         recomputed each round (the final emission round's value feeds
         the interface summary) *)
  mutable xcall_out_pc : int option;
  mutable stored_xcall : int option;
      (* pc of a Csc provably storing an unmodified import-call return
         into this compartment's globals *)
}

let globals_region ctx (a : v) =
  let lo = a.base.Iv.lo and hi = a.top.Iv.hi in
  if lo >= ctx.gbase && hi <= ctx.gbase + ctx.gsize then `Globals
  else if lo >= ctx.sbase && hi <= ctx.sbase + ctx.ssize then `Stack
  else `Other

let read_cap_v sram a =
  let tag, w = Sram.read_cap sram a in
  of_cap (Capability.of_word ~tag w)

(* Join of every granule in the compartment's initial globals image —
   the starting point of the store soup. *)
let initial_soup ctx =
  let acc = ref null_v in
  let a = ref ctx.gbase in
  while !a + 8 <= ctx.gbase + ctx.gsize do
    acc := join !acc (read_cap_v ctx.sram !a);
    a := !a + 8
  done;
  !acc

(* The load-side attenuation of 3.1.1, on abstract values.  Must-side
   stripping is always sound; may-side stripping needs the authority to
   provably lack the load right. *)
let attenuate ~auth v =
  let strip ps = Perm.Set.remove Perm.GL (Perm.Set.remove Perm.LG ps) in
  let strip_m ps = Perm.Set.remove Perm.SD (Perm.Set.remove Perm.LM ps) in
  let v =
    if must_perm auth Perm.LG then v
    else
      weaken_xret
        {
          v with
          pmust = strip v.pmust;
          pmay = (if may_perm auth Perm.LG then v.pmay else strip v.pmay);
        }
  in
  if must_perm auth Perm.LM then v
  else
    weaken_xret
      {
        v with
        pmust = strip_m v.pmust;
        pmay =
          (if may_perm auth Perm.LM || not (must_unsealed v) then v.pmay
           else strip_m v.pmay);
      }

(* --- abstract memory ---------------------------------------------------- *)

(* A globals granule address when the access provably hits exactly one
   8-byte-aligned slot of this compartment's globals. *)
let exact_granule ctx (auth : v) ~size =
  if Iv.is_exact auth.addr then begin
    let a = auth.addr.Iv.lo in
    if
      a land 7 = 0 && size = 8 && a >= ctx.gbase
      && a + 8 <= ctx.gbase + ctx.gsize
    then Some a
    else None
  end
  else None

(* What an exact capability load from granule [a] may observe: the
   initial image joined with everything possibly stored there.  The
   analysis never mutates SRAM, so the initial read stays valid. *)
let granule_view ctx a =
  let v = read_cap_v ctx.sram a in
  let v =
    match Hashtbl.find_opt ctx.granules a with
    | Some s -> join v s
    | None -> v
  in
  match ctx.wild with Some w -> join v w | None -> v

let load_cap ctx (auth : v) =
  let v =
    match globals_region ctx auth with
    | `Stack -> top_v
    | `Other -> top_v
    | `Globals -> (
        if not ctx.field_sensitive then attenuate ~auth ctx.soup
        else
          match exact_granule ctx auth ~size:8 with
          | Some a -> (
              match Hashtbl.find_opt ctx.fwd a with
              | Some f -> attenuate ~auth f
              | None -> attenuate ~auth (granule_view ctx a))
          | None -> attenuate ~auth ctx.soup)
  in
  { v with from_load = true }

(* An int load is exact only when its granule was provably never stored
   through: a store there makes both halves of the word unknown. *)
let load_int ctx (auth : v) =
  match globals_region ctx auth with
  | `Globals
    when ctx.field_sensitive && Iv.is_exact auth.addr
         && auth.addr.Iv.lo land 3 = 0
         && auth.addr.Iv.lo >= ctx.gbase
         && auth.addr.Iv.lo + 4 <= ctx.gbase + ctx.gsize
         && ctx.wild = None
         && not (Hashtbl.mem ctx.granules (auth.addr.Iv.lo land lnot 7)) ->
      { (int_v (Iv.exact (Sram.read32 ctx.sram auth.addr.Iv.lo))) with
        from_load = true }
  | _ -> { int_full with from_load = true }

let join_granule ctx a v =
  let v' =
    match Hashtbl.find_opt ctx.granules a with
    | None -> v
    | Some old -> join old v
  in
  (match Hashtbl.find_opt ctx.granules a with
  | Some old when equal old v' -> ()
  | _ ->
      Hashtbl.replace ctx.granules a v';
      ctx.mem_dirty <- true)

let join_wild ctx v =
  let v' = match ctx.wild with None -> v | Some w -> join w v in
  match ctx.wild with
  | Some w when equal w v' -> ()
  | _ ->
      ctx.wild <- Some v';
      ctx.mem_dirty <- true

(* The abstract value a data store leaves in a granule: untagged, bytes
   unknown (a partial overwrite clears the whole granule's tag). *)
let data_smash = int_full

let store ctx (auth : v) (value : v option) ~size =
  (* [value = None] is a data store: it cannot install a capability but
     can clear a granule's tag. *)
  match globals_region ctx auth with
  | `Stack -> ()
  | (`Globals | `Other) as region ->
      (* coarse fallback summary, always maintained *)
      let soup' =
        match value with
        | Some v -> join ctx.soup v
        | None -> { ctx.soup with tag = Tri.join ctx.soup.tag Tri.False }
      in
      if not (equal soup' ctx.soup) then begin
        ctx.soup <- soup';
        ctx.mem_dirty <- true
      end;
      if ctx.field_sensitive then
        match (region, value) with
        | `Globals, Some v when exact_granule ctx auth ~size:8 <> None ->
            let a = auth.addr.Iv.lo in
            join_granule ctx a v;
            Hashtbl.replace ctx.fwd a v
        | `Globals, None when Iv.is_exact auth.addr ->
            (* data store: smash the granule(s) the access touches *)
            let a = auth.addr.Iv.lo in
            let g0 = a land lnot 7 and g1 = (a + size - 1) land lnot 7 in
            List.iter
              (fun g ->
                if g >= ctx.gbase && g + 8 <= ctx.gbase + ctx.gsize then begin
                  join_granule ctx g data_smash;
                  Hashtbl.replace ctx.fwd g data_smash
                end
                else join_wild ctx data_smash)
              (if g0 = g1 then [ g0 ] else [ g0; g1 ])
        | _ ->
            (* may alias any granule: weaken the wild summary and drop
               all block-local forwarding *)
            join_wild ctx
              (match value with Some v -> v | None -> data_smash);
            Hashtbl.reset ctx.fwd

(* --- flow checks (must-evidence only) ----------------------------------- *)

let check_access acc ctx pc ~auth ~size ~is_store ~is_cap =
  if Tri.must_false auth.tag then
    emit acc ~pc ~compartment:ctx.comp Rules.flow_untagged_deref
      "dereference of a provably untagged value"
  else if must_sealed auth then
    emit acc ~pc ~compartment:ctx.comp Rules.flow_untagged_deref
      "dereference of a provably sealed capability"
  else if Tri.must_true auth.tag then begin
    let need = if is_store then Perm.SD else Perm.LD in
    if not (may_perm auth need) then
      emit acc ~pc ~compartment:ctx.comp Rules.flow_missing_perm
        (Printf.sprintf "access needs %s which the authority provably lacks"
           (Perm.to_string need))
    else if is_cap && not (may_perm auth Perm.MC) then
      emit acc ~pc ~compartment:ctx.comp Rules.flow_missing_perm
        "capability access needs MC which the authority provably lacks"
    else if must_out_of_bounds auth auth.addr ~size then
      emit acc ~pc ~compartment:ctx.comp Rules.flow_oob_access
        (Printf.sprintf "%d-byte access provably outside bounds" size)
  end

(* Every concretization of [value] is a capability bounded within the
   heap region — the shape only a heap allocation (or a shrink of one)
   can have. *)
let must_heap_derived ctx (value : v) =
  ctx.hsize > 0
  && value.base.Iv.lo >= ctx.hbase
  && value.top.Iv.hi <= ctx.hbase + ctx.hsize
  && value.top.Iv.hi > value.base.Iv.lo

let check_store_value acc ctx pc ~auth ~value =
  if Tri.must_true auth.tag && Tri.must_true value.tag then begin
    let non_gl = not (may_perm value Perm.GL) in
    if
      non_gl && must_heap_derived ctx value
      && globals_region ctx auth = `Globals
    then
      (* most specific first: a GL-stripped heap capability parked in
         globals outlives revocation's reach (paper 3.5) *)
      emit acc ~pc ~compartment:ctx.comp Rules.tmp_heap_escape
        "heap-derived capability without GL stored to globals: escapes \
         revocation sweeps"
    else if non_gl && not (may_perm auth Perm.SL) then
      if value.from_load then
        emit acc ~pc ~compartment:ctx.comp Rules.flow_launder_local
          "local (non-GL) capability laundered through memory and re-stored \
           through an SL-lacking authority"
      else
        emit acc ~pc ~compartment:ctx.comp Rules.flow_store_local_leak
          "local (non-GL) capability stored through an SL-lacking authority"
  end

(* Jump checks for Jalr; [`Trap] means provably trapping: no successor. *)
let check_jump acc ctx pc target off =
  if Tri.must_false target.tag then begin
    emit acc ~pc ~compartment:ctx.comp Rules.flow_jump_not_executable
      "jump through a provably untagged value";
    `Trap
  end
  else if Tri.must_true target.tag && not (may_perm target Perm.EX) then begin
    emit acc ~pc ~compartment:ctx.comp Rules.flow_jump_not_executable
      "jump target provably lacks EX";
    `Trap
  end
  else if must_sealed target then
    match sentry_kind_exact target with
    | Some _ when off = 0 -> `Ok
    | Some _ ->
        emit acc ~pc ~compartment:ctx.comp Rules.flow_jump_not_executable
          "sentry jump with a nonzero immediate";
        `Trap
    | None ->
        emit acc ~pc ~compartment:ctx.comp Rules.flow_jump_not_executable
          "jump through a sealed non-sentry capability";
        `Trap
  else `Ok

(* --- transfer function --------------------------------------------------- *)

(* Signed view of an exact interval (register offsets are 32-bit two's
   complement). *)
let signed_exact (iv : Iv.t) =
  if Iv.is_exact iv && iv.Iv.lo < Iv.limit then
    let n = iv.Iv.lo in
    Some (if n >= 1 lsl 31 then n - Iv.limit else n)
  else None

(* Address update shared by Csetaddr / Cincaddr[imm]: keeps bounds and
   perms; the tag survives only if provably unsealed and representable
   (in-bounds implies representable). *)
let with_addr (c : v) (addr : Iv.t) =
  let tag =
    match c.tag with
    | Tri.False -> Tri.False
    | _ ->
        if
          Tri.must_true c.tag && must_unsealed c
          && must_in_bounds c addr ~size:0
        then Tri.True
        else Tri.Any
  in
  weaken_xret { c with addr; tag }

(* [Csetbounds*]: traps (rather than clearing the tag) when the request
   escapes the source authority, so the success path is always tagged. *)
let set_bounds_v acc ctx pc (c : v) (len : Iv.t) ~exact =
  if
    Tri.must_true c.tag
    && (c.addr.Iv.lo + len.Iv.lo > c.top.Iv.hi || c.addr.Iv.hi < c.base.Iv.lo)
  then
    emit acc ~pc ~compartment:ctx.comp Rules.flow_widening_derivation
      "requested bounds provably escape the source capability";
  ignore exact;
  if Iv.is_exact c.addr && Iv.is_exact len && len.Iv.lo <= 511 then
    (* small objects are always exactly representable (3.2.3) *)
    weaken_xret
      {
        c with
        tag = Tri.True;
        ot = Ot_exact Otype.unsealed;
        base = Iv.exact c.addr.Iv.lo;
        top = Iv.exact (c.addr.Iv.lo + len.Iv.lo);
      }
  else
    weaken_xret
      {
        c with
        tag = Tri.True;
        ot = Ot_exact Otype.unsealed;
        base = Iv.v c.base.Iv.lo c.addr.Iv.hi;
        top = Iv.v (Iv.add c.addr len).Iv.lo c.top.Iv.hi;
      }

let step acc ctx (st : state) pc (i : Insn.t) =
  let g = get st and s = set st in
  match i with
  | Insn.Lui (rd, imm) -> s rd (int_v (Iv.exact ((imm lsl 12) land 0xFFFF_FFFF)))
  | Insn.Auipcc (rd, imm) ->
      s rd
        (of_cap
           (Capability.with_address ctx.code_cap
              ((pc + (imm lsl 12)) land 0xFFFF_FFFF)))
  | Insn.Op_imm (Insn.Add, rd, rs1, imm) ->
      s rd (int_v (Iv.add_const (g rs1).addr imm))
  | Insn.Op_imm (_, rd, _, _) -> s rd int_full
  | Insn.Op (Insn.Add, rd, rs1, rs2) ->
      s rd (int_v (Iv.add (g rs1).addr (g rs2).addr))
  | Insn.Op (Insn.Sub, rd, rs1, rs2) ->
      s rd (int_v (Iv.sub (g rs1).addr (g rs2).addr))
  | Insn.Op (_, rd, _, _) -> s rd int_full
  | Insn.Mul_div (_, rd, _, _) -> s rd int_full
  | Insn.Load { width; rd; rs1; off; _ } ->
      let size = match width with Insn.B -> 1 | Insn.H -> 2 | Insn.W -> 4 in
      let auth = with_addr (g rs1) (Iv.add_const (g rs1).addr off) in
      check_access acc ctx pc ~auth ~size ~is_store:false ~is_cap:false;
      s rd (if size = 4 then load_int ctx auth else int_full)
  | Insn.Store { width; rs2 = _; rs1; off } ->
      let size = match width with Insn.B -> 1 | Insn.H -> 2 | Insn.W -> 4 in
      let auth = with_addr (g rs1) (Iv.add_const (g rs1).addr off) in
      check_access acc ctx pc ~auth ~size ~is_store:true ~is_cap:false;
      store ctx auth None ~size
  | Insn.Clc (rd, rs1, off) ->
      let auth = with_addr (g rs1) (Iv.add_const (g rs1).addr off) in
      check_access acc ctx pc ~auth ~size:8 ~is_store:false ~is_cap:true;
      s rd (load_cap ctx auth)
  | Insn.Csc (rs2, rs1, off) ->
      let auth = with_addr (g rs1) (Iv.add_const (g rs1).addr off) in
      check_access acc ctx pc ~auth ~size:8 ~is_store:true ~is_cap:true;
      check_store_value acc ctx pc ~auth ~value:(g rs2);
      store ctx auth (Some (g rs2)) ~size:8;
      if
        Tri.must_true auth.tag && must_xret (g rs2)
        && globals_region ctx auth = `Globals
      then
        ctx.stored_xcall <-
          Some
            (match ctx.stored_xcall with None -> pc | Some p -> min p pc)
  | Insn.Cincaddrimm (rd, rs1, imm) ->
      let c = g rs1 in
      s rd (with_addr c (Iv.add_const c.addr imm))
  | Insn.Cincaddr (rd, rs1, rs2) ->
      let c = g rs1 in
      let addr =
        match signed_exact (g rs2).addr with
        | Some n -> Iv.add_const c.addr n
        | None -> Iv.full
      in
      s rd (with_addr c addr)
  | Insn.Csetaddr (rd, rs1, rs2) -> s rd (with_addr (g rs1) (g rs2).addr)
  | Insn.Csetbounds (rd, rs1, rs2) ->
      s rd (set_bounds_v acc ctx pc (g rs1) (g rs2).addr ~exact:false)
  | Insn.Csetboundsexact (rd, rs1, rs2) ->
      s rd (set_bounds_v acc ctx pc (g rs1) (g rs2).addr ~exact:true)
  | Insn.Csetboundsimm (rd, rs1, imm) ->
      s rd (set_bounds_v acc ctx pc (g rs1) (Iv.exact imm) ~exact:false)
  | Insn.Crrl (rd, _) | Insn.Cram (rd, _) -> s rd int_full
  | Insn.Candperm (rd, rs1, rs2) ->
      let c = g rs1 in
      let c =
        match signed_exact (g rs2).addr with
        | Some bits ->
            let mask = Perm.Set.of_arch_bits (bits land 0xFFF) in
            if Perm.Set.equal c.pmust c.pmay then
              let p = Perm.legalize (Perm.Set.inter c.pmust mask) in
              { c with pmust = p; pmay = p }
            else
              {
                c with
                pmust = Perm.Set.empty;
                pmay = Perm.Set.inter c.pmay mask;
              }
        | None -> { c with pmust = Perm.Set.empty }
      in
      let tag =
        match c.tag with
        | Tri.False -> Tri.False
        | _ -> if must_unsealed c then c.tag else Tri.Any
      in
      s rd (weaken_xret { c with tag })
  | Insn.Ccleartag (rd, rs1) ->
      s rd (weaken_xret { (g rs1) with tag = Tri.False })
  | Insn.Cmove (rd, rs1) -> s rd (g rs1)
  | Insn.Cseal (rd, rs1, _) ->
      (* success path: the operand was tagged and sealable *)
      s rd (weaken_xret { (g rs1) with tag = Tri.True; ot = Ot_any })
  | Insn.Cunseal (rd, rs1, rs2) ->
      let c = g rs1 and key = g rs2 in
      let c = { c with tag = Tri.True; ot = Ot_exact Otype.unsealed } in
      let c =
        if must_perm key Perm.GL then c
        else { c with pmust = Perm.Set.remove Perm.GL c.pmust }
      in
      s rd (weaken_xret c)
  | Insn.Cget (Insn.Tag, rd, _) -> s rd (int_v (Iv.v 0 1))
  | Insn.Cget (Insn.Addr, rd, rs1) -> s rd (int_v (g rs1).addr)
  | Insn.Cget (Insn.Base, rd, rs1) -> s rd (int_v (g rs1).base)
  | Insn.Cget (Insn.Top, rd, rs1) -> s rd (int_v (g rs1).top)
  | Insn.Cget (_, rd, _) -> s rd int_full
  | Insn.Csub (rd, rs1, rs2) ->
      s rd (int_v (Iv.sub (g rs1).addr (g rs2).addr))
  | Insn.Ctestsubset (rd, _, _) | Insn.Csetequalexact (rd, _, _) ->
      s rd (int_v (Iv.v 0 1))
  | Insn.Cspecialrw (rd, _, _) -> s rd top_v
  | Insn.Csr (_, rd, _, _) -> s rd int_full
  | Insn.Wfi | Insn.Ecall | Insn.Ebreak | Insn.Mret -> ()
  | Insn.Jal _ | Insn.Jalr _ | Insn.Branch _ ->
      (* terminators are handled by the successor computation *)
      ()

(* --- entry and call-boundary states -------------------------------------- *)

(* What a callee may assume about its link register: some valid sentry. *)
let sentry_like =
  {
    top_v with
    tag = Tri.True;
    pmust = Perm.Set.of_list [ Perm.GL; Perm.EX ];
  }

let stack_perms =
  Capability.perms (Capability.clear_perms Capability.root_mem_rw [ Perm.GL ])

(* The stack capability shape a compartment entry receives: local, SL,
   bounded within the boot stack; the switcher may have chopped it, so
   the top and address are intervals. *)
let stack_v ctx =
  {
    tag = Tri.True;
    ot = Ot_exact Otype.unsealed;
    pmust = stack_perms;
    pmay = stack_perms;
    base = Iv.exact ctx.sbase;
    top = Iv.v ctx.sbase (ctx.sbase + ctx.ssize);
    addr = Iv.v ctx.sbase (ctx.sbase + ctx.ssize);
    from_load = false;
    xret = Tri.False;
  }

let entry_state ctx : state =
  let st = Array.make 16 top_v in
  st.(0) <- null_v;
  (* the switcher zeroes non-argument registers on entry; arguments are
     unconstrained, so a0-a5 stay top *)
  List.iter (fun r -> st.(r) <- null_v)
    [ Insn.reg_tp; Insn.reg_t0; Insn.reg_t1; Insn.reg_t2; Insn.reg_s0;
      Insn.reg_s1 ];
  st.(Insn.reg_ra) <- sentry_like;
  st.(Insn.reg_sp) <- stack_v ctx;
  st.(Insn.reg_gp) <- of_cap ctx.gcap;
  st

(* Register state after a call returns: sp and gp are preserved (by the
   intra-compartment ABI, or restored by the switcher on cross-calls);
   everything else is clobbered. *)
let clobbered (st : state) : state =
  Array.mapi
    (fun i v ->
      if i = 0 then null_v
      else if i = Insn.reg_sp || i = Insn.reg_gp then v
      else top_v)
    st

(* The abstract a0 after a cross-compartment call: unknown authority,
   but provably *exactly* whatever the callee's export returned — the
   provenance the {!Linkflow} return substitution keys on. *)
let xcall_token = { top_v with xret = Tri.True }

let xcall_return (st : state) : state =
  let c = clobbered st in
  set c Insn.reg_a0 xcall_token;
  c

(* A Jalr operand that provably is the switcher's cross-call sentry: a
   must-tagged interrupt-disabling sentry with an exact address inside
   the switcher's code region.  (Sentry jumps with a nonzero offset
   provably trap in [check_jump], so reaching here implies off = 0.) *)
let is_cross_call ctx (target : v) =
  Tri.must_true target.tag
  && (match sentry_kind_exact target with
     | Some Otype.Sentry_disable -> Iv.is_exact target.addr
     | _ -> false)
  && target.addr.Iv.lo >= ctx.sw_lo
  && target.addr.Iv.lo < ctx.sw_hi

let record_xcall ctx pc (arg : v) =
  ctx.xcall_out <-
    Some (match ctx.xcall_out with None -> arg | Some o -> join o arg);
  ctx.xcall_out_pc <-
    Some (match ctx.xcall_out_pc with None -> pc | Some p -> min p pc)

let link_v ctx addr =
  let c = of_cap (Capability.with_address ctx.code_cap addr) in
  { c with tag = Tri.True; ot = Ot_any }

(* --- call summaries -------------------------------------------------------- *)

(* Register a callee entry: compute its intraprocedural block set (follow
   fall-throughs, branch arms, direct-goto edges and call continuations;
   stop at returns) and record which return blocks belong to it, so exit
   states can be attributed when the fixpoint reaches them. *)
let register_callee ctx (cfg : Cfg.t) entry =
  if not (Hashtbl.mem ctx.callees entry) then begin
    Hashtbl.replace ctx.callees entry ();
    let seen = Hashtbl.create 16 in
    let queue = Queue.create () in
    let push pc =
      if Hashtbl.mem cfg.Cfg.blocks pc && not (Hashtbl.mem seen pc) then begin
        Hashtbl.replace seen pc ();
        Queue.push pc queue
      end
    in
    push entry;
    while not (Queue.is_empty queue) do
      let pc = Queue.pop queue in
      match Hashtbl.find_opt cfg.Cfg.blocks pc with
      | None -> ()
      | Some b ->
          if Cfg.is_return b then
            Hashtbl.replace ctx.ret_map pc
              (entry
               ::
               (match Hashtbl.find_opt ctx.ret_map pc with
               | Some l -> l
               | None -> []))
          else
            List.iter push
              (match b.Cfg.term with
              | Cfg.T_jal (rd, target) when rd <> 0 ->
                  (* a nested call: the callee body is not ours; resume
                     at the continuation *)
                  ignore target;
                  [ b.Cfg.term_pc + 4 ]
              | _ -> Cfg.block_succs b)
    done
  end

(* Record a return block's exit state against every function it can
   return from.  Widening (rather than a plain join) bounds the chains a
   recursive summary could otherwise grow across rounds. *)
let record_return ctx pc (st : state) =
  match Hashtbl.find_opt ctx.ret_map pc with
  | None -> ()
  | Some entries ->
      List.iter
        (fun f ->
          match Hashtbl.find_opt ctx.summaries f with
          | None ->
              Hashtbl.replace ctx.summaries f (copy_state st);
              ctx.sum_dirty <- true
          | Some old ->
              let nw = widen_state old st in
              if not (equal_state old nw) then begin
                Hashtbl.replace ctx.summaries f nw;
                ctx.sum_dirty <- true
              end)
        entries

(* Caller state after a summarised call returns: sp and gp are
   callee-saved by the intra-compartment ABI; everything else is what
   the callee's exit states say. *)
let merge_return (caller : state) (sum : state) : state =
  Array.init 16 (fun i ->
      if i = 0 then null_v
      else if i = Insn.reg_sp || i = Insn.reg_gp then caller.(i)
      else sum.(i))

let call_continuation ctx pc target (st : state) =
  match Hashtbl.find_opt ctx.summaries target with
  | Some s when ctx.use_summaries -> (pc, merge_return st s)
  | _ -> (pc, clobbered st)

(* A Jalr operand that provably is a forward sentry into this
   compartment's own code, at a block the CFG recovered: an
   intra-compartment indirect call the summary machinery can model. *)
let intra_sentry_target ctx (cfg : Cfg.t) (target : v) off =
  if not (ctx.use_summaries && off = 0 && Tri.must_true target.tag) then None
  else
    match sentry_kind_exact target with
    | Some (Otype.Sentry_enable | Otype.Sentry_disable | Otype.Sentry_inherit)
      when Iv.is_exact target.addr ->
        let a = target.addr.Iv.lo in
        if a >= ctx.code_lo && a < ctx.code_hi && Hashtbl.mem cfg.Cfg.blocks a
        then Some a
        else None
    | _ -> None

(* --- the fixpoint --------------------------------------------------------- *)

let successors acc ctx (cfg : Cfg.t) (b : Cfg.block) (st : state) =
  match b.Cfg.term with
  | Cfg.T_fall next -> [ (next, st) ]
  | Cfg.T_stop | Cfg.T_halt -> []
  | Cfg.T_branch target -> [ (target, st); (b.Cfg.term_pc + 4, copy_state st) ]
  | Cfg.T_jal (rd, target) ->
      let callee = copy_state st in
      if rd <> 0 then set callee rd (link_v ctx (b.Cfg.term_pc + 4));
      let succ = [ (target, callee) ] in
      if rd <> 0 then begin
        register_callee ctx cfg target;
        call_continuation ctx (b.Cfg.term_pc + 4) target st :: succ
      end
      else succ
  | Cfg.T_jalr (rd, rs1, off) -> (
      let target = get st rs1 in
      match check_jump acc ctx b.Cfg.term_pc target off with
      | `Trap -> []
      | `Ok -> (
          match intra_sentry_target ctx cfg target off with
          | Some a ->
              register_callee ctx cfg a;
              let callee = copy_state st in
              if rd <> 0 then set callee rd (link_v ctx (b.Cfg.term_pc + 4));
              let succ = [ (a, callee) ] in
              if rd <> 0 then
                call_continuation ctx (b.Cfg.term_pc + 4) a st :: succ
              else succ
          | None ->
              if rd = 0 then []
              else if is_cross_call ctx target then begin
                record_xcall ctx b.Cfg.term_pc (get st Insn.reg_a0);
                [ (b.Cfg.term_pc + 4, xcall_return st) ]
              end
              else [ (b.Cfg.term_pc + 4, clobbered st) ]))

let run_fixpoint acc ctx (cfg : Cfg.t) =
  (* cross-call observations are recomputed from scratch each round; the
     final (emission) round's values feed the interface summary *)
  ctx.xcall_out <- None;
  ctx.xcall_out_pc <- None;
  ctx.stored_xcall <- None;
  let in_states : (int, state) Hashtbl.t = Hashtbl.create 64 in
  let visits : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push pc st =
    if Hashtbl.mem cfg.Cfg.blocks pc then begin
      let changed =
        match Hashtbl.find_opt in_states pc with
        | None ->
            Hashtbl.replace in_states pc (copy_state st);
            true
        | Some old ->
            let n = try Hashtbl.find visits pc with Not_found -> 0 in
            let joined =
              if n > 8 then widen_state old (join_state old st)
              else join_state old st
            in
            if equal_state old joined then false
            else begin
              Hashtbl.replace in_states pc joined;
              true
            end
      in
      if changed && not (Hashtbl.mem queued pc) then begin
        Hashtbl.replace queued pc ();
        Queue.push pc queue
      end
    end
  in
  List.iter (fun e -> push e (entry_state ctx)) cfg.Cfg.entries;
  while not (Queue.is_empty queue) do
    let pc = Queue.pop queue in
    Hashtbl.remove queued pc;
    Hashtbl.replace visits pc
      (1 + (try Hashtbl.find visits pc with Not_found -> 0));
    match Hashtbl.find_opt cfg.Cfg.blocks pc with
    | None -> ()
    | Some b ->
        Hashtbl.reset ctx.fwd;
        let st = copy_state (Hashtbl.find in_states pc) in
        List.iter (fun (ipc, i) -> step acc ctx st ipc i) b.Cfg.body;
        if Cfg.is_return b then record_return ctx pc st;
        List.iter (fun (succ, st') -> push succ st')
          (successors acc ctx cfg b st)
  done

(* --- per-compartment driver ------------------------------------------------ *)

(* Content hash keying a compartment's summary: every input the
   per-compartment analysis reads.  That is exactly the compartment's
   own code region (bytes + tag bits: [load_cap] returns top for any
   address outside the compartment's code and globals, so no other SRAM
   state can influence the fixpoint), its globals image (granule words +
   tags), the layout the abstract domain bakes into entry states and
   region classification, the capability roots it derives from, the
   export table (labels, postures, entry pcs), the boot entry when it
   lands in this compartment, and the analysis flags. *)
let summary_key ~call_summaries ~field_sensitive (t : Loader.t)
    (name, (b : Loader.built)) =
  let sram = t.Loader.sram in
  let code_lo = b.Loader.image.Asm.origin in
  let code_hi = code_lo + Asm.bytes_size b.Loader.image in
  let gbase = b.Loader.globals_base in
  let gsize = max 16 b.Loader.bc.Compartment.globals_size in
  let buf = Buffer.create (4 * (code_hi - code_lo) + 1024) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%s|%b|%b|" name call_summaries field_sensitive;
  addf "%d %d %d %d %d %d %d %d|" code_lo code_hi gbase gsize
    t.Loader.stack_base t.Loader.stack_size t.Loader.heap_base
    t.Loader.heap_size;
  let add_cap (c : Capability.t) =
    addf "%b:%Lx;" c.Capability.tag (Capability.to_word c)
  in
  add_cap b.Loader.code_cap;
  add_cap b.Loader.globals_cap;
  let a = ref code_lo in
  while !a + 4 <= code_hi do
    Buffer.add_int32_le buf (Int32.of_int (Sram.read32 sram !a));
    a := !a + 4
  done;
  let a = ref code_lo in
  while !a + 8 <= code_hi do
    Buffer.add_char buf (if Sram.tag_at sram !a then '1' else '0');
    a := !a + 8
  done;
  let off = ref 0 in
  while !off + 8 <= gsize do
    let tag, w = Sram.read_cap sram (gbase + !off) in
    Buffer.add_char buf (if tag then '1' else '0');
    Buffer.add_int64_le buf w;
    off := !off + 8
  done;
  List.iter
    (fun (e : Compartment.export) ->
      addf "|%s@%d:%s" e.Compartment.exp_label
        (Asm.label b.Loader.image e.Compartment.exp_label)
        (match e.Compartment.exp_posture with
        | Compartment.Interrupts_enabled -> "en"
        | Compartment.Interrupts_disabled -> "dis"
        | Compartment.Interrupts_inherited -> "inh"))
    b.Loader.bc.Compartment.exports;
  let boot = Capability.address t.Loader.machine.Machine.pcc in
  addf "|boot:%d" (if boot >= code_lo && boot < code_hi then boot else -1);
  Summary.digest [ Buffer.contents buf ]

let analyze_compartment ~call_summaries ~field_sensitive ~key (t : Loader.t)
    (name, (b : Loader.built)) : Summary.t =
  let acc = acc_create () in
  let code_lo = b.Loader.image.Asm.origin in
  let code_hi = code_lo + Asm.bytes_size b.Loader.image in
  let ctx =
    {
      comp = name;
      sram = t.Loader.sram;
      code_cap = b.Loader.code_cap;
      code_lo;
      code_hi;
      gbase = b.Loader.globals_base;
      gsize = max 16 b.Loader.bc.Compartment.globals_size;
      gcap = b.Loader.globals_cap;
      sbase = t.Loader.stack_base;
      ssize = t.Loader.stack_size;
      hbase = t.Loader.heap_base;
      hsize = t.Loader.heap_size;
      field_sensitive;
      soup = null_v;
      granules = Hashtbl.create 16;
      wild = None;
      fwd = Hashtbl.create 8;
      mem_dirty = false;
      use_summaries = call_summaries;
      summaries = Hashtbl.create 8;
      callees = Hashtbl.create 8;
      ret_map = Hashtbl.create 8;
      sum_dirty = false;
      sw_lo = Sram.base t.Loader.sram;
      sw_hi = Sram.base t.Loader.sram + 0x800;
      xcall_out = None;
      xcall_out_pc = None;
      stored_xcall = None;
    }
  in
  ctx.soup <- initial_soup ctx;
  let boot = Capability.address t.Loader.machine.Machine.pcc in
  let export_entries =
    List.map
      (fun (e : Compartment.export) ->
        ( Asm.label b.Loader.image e.Compartment.exp_label,
          match e.Compartment.exp_posture with
          | Compartment.Interrupts_enabled -> Some true
          | Compartment.Interrupts_disabled -> Some false
          | Compartment.Interrupts_inherited -> None ))
      b.Loader.bc.Compartment.exports
  in
  let posture_entries =
    if
      boot >= code_lo && boot < code_hi
      && not (List.mem_assoc boot export_entries)
    then (boot, Some true) :: export_entries
    else export_entries
  in
  let entries = List.sort_uniq compare (List.map fst posture_entries) in
  let cfg =
    Cfg.build ~comp:name ~sram:t.Loader.sram ~lo:code_lo ~hi:code_hi ~entries
  in
  List.iter
    (fun (f : Rules.finding) ->
      emit acc ?pc:f.Rules.pc ~compartment:f.Rules.compartment f.Rules.rule
        f.Rules.detail)
    cfg.Cfg.findings;
  (* Register every export entry as a summarised callee up front, so the
     fixpoint attributes return states to it and the interface summary
     can report what each export returns. *)
  List.iter
    (fun e -> if Hashtbl.mem cfg.Cfg.blocks e then register_callee ctx cfg e)
    entries;
  (* Warm-up rounds with flow emission muted, until the memory and call
     summaries reach a joint fixpoint; then one emission round.  This
     keeps findings independent of the order in which stores and calls
     were discovered.  Each round re-runs from scratch against the
     summaries the previous rounds accumulated (both are monotone). *)
  acc.enabled <- false;
  let rec warm round =
    ctx.mem_dirty <- false;
    ctx.sum_dirty <- false;
    run_fixpoint acc ctx cfg;
    if ctx.mem_dirty || ctx.sum_dirty then
      if round >= 8 then begin
        (* give up on memory and call precision rather than iterating
           further: coarse but sound *)
        ctx.soup <- top_v;
        Hashtbl.reset ctx.granules;
        ctx.wild <- Some top_v;
        Hashtbl.reset ctx.summaries;
        ctx.use_summaries <- false;
        ctx.mem_dirty <- false;
        ctx.sum_dirty <- false;
        run_fixpoint acc ctx cfg
      end
      else warm (round + 1)
  in
  warm 0;
  acc.enabled <- true;
  run_fixpoint acc ctx cfg;
  (* interrupt-posture rules over the same CFG *)
  List.iter
    (fun (f : Rules.finding) ->
      emit acc ?pc:f.Rules.pc ~compartment:f.Rules.compartment f.Rules.rule
        f.Rules.detail)
    (Irq.analyze ~comp:name ~cfg ~entries:posture_entries ());
  let exports =
    List.map
      (fun (e : Compartment.export) ->
        let entry = Asm.label b.Loader.image e.Compartment.exp_label in
        {
          Summary.xs_label = e.Compartment.exp_label;
          xs_entry = entry;
          xs_ret =
            (match Hashtbl.find_opt ctx.summaries entry with
            | Some st -> Some (get st Insn.reg_a0)
            | None -> None);
        })
      b.Loader.bc.Compartment.exports
  in
  {
    Summary.sm_comp = name;
    sm_key = key;
    sm_exports = exports;
    sm_xcall_out = ctx.xcall_out;
    sm_xcall_out_pc = ctx.xcall_out_pc;
    sm_stored_xcall_pc = ctx.stored_xcall;
    sm_findings = List.rev acc.findings;
  }

(* --- linkage audit ---------------------------------------------------------- *)

let switcher_export_ot = Otype.v Otype.Data Switcher_asm.export_otype

let audit_linkage acc (t : Loader.t) =
  let sram = t.Loader.sram in
  let read_cap_at a =
    let tag, w = Sram.read_cap sram a in
    Capability.of_word ~tag w
  in
  let switcher_lo = Sram.base sram in
  let switcher_hi = switcher_lo + 0x800 in
  List.iter
    (fun (name, (b : Loader.built)) ->
      let em ?pc rule detail = emit acc ?pc ~compartment:name rule detail in
      let gbase = b.Loader.globals_base in
      let gsize = max 16 b.Loader.bc.Compartment.globals_size in
      let code_lo = b.Loader.image.Asm.origin in
      let code_hi = code_lo + Asm.bytes_size b.Loader.image in
      (* exports: descriptor sentry + globals capability *)
      List.iter
        (fun (e : Compartment.export) ->
          match
            List.assoc_opt e.Compartment.exp_label b.Loader.descriptors
          with
          | None ->
              em Rules.link_export_posture
                (Printf.sprintf "export %s has no descriptor"
                   e.Compartment.exp_label)
          | Some handle ->
              let daddr = Capability.base handle in
              let sentry = read_cap_at daddr in
              let cgp = read_cap_at (daddr + 8) in
              let expected = Loader.sentry_of_posture e.Compartment.exp_posture in
              (if not sentry.Capability.tag then
                 em Rules.link_export_posture
                   (Printf.sprintf "export %s: entry is untagged"
                      e.Compartment.exp_label)
               else
                 match Capability.sentry_kind sentry with
                 | None ->
                     em Rules.link_export_posture
                       (Printf.sprintf "export %s: entry is not a sentry"
                          e.Compartment.exp_label)
                 | Some k when k <> expected ->
                     em Rules.link_export_posture
                       (Printf.sprintf
                          "export %s: sentry posture differs from declared \
                           posture"
                          e.Compartment.exp_label)
                 | Some _ -> ());
              let entry = Capability.address sentry in
              if
                sentry.Capability.tag
                && (entry < code_lo || entry >= code_hi
                   || not (Capability.has_perm sentry Perm.EX))
              then
                em Rules.link_export_entry_escape
                  (Printf.sprintf
                     "export %s: entry 0x%x outside code region [0x%x, 0x%x)"
                     e.Compartment.exp_label entry code_lo code_hi);
              if sentry.Capability.tag && Capability.has_perm sentry Perm.SR
              then
                em Rules.link_sr_leak
                  (Printf.sprintf "export %s: entry sentry carries SR"
                     e.Compartment.exp_label);
              if
                (not cgp.Capability.tag)
                || Capability.is_sealed cgp
                || Capability.has_perm cgp Perm.SL
                || Capability.base cgp < gbase
                || Capability.top cgp > gbase + gsize
              then
                em Rules.link_globals_cap
                  (Printf.sprintf
                     "export %s: globals capability malformed or escapes \
                      [0x%x, 0x%x)"
                     e.Compartment.exp_label gbase (gbase + gsize)))
        b.Loader.bc.Compartment.exports;
      (* imports *)
      List.iter
        (fun (i : Compartment.import) ->
          let slot = i.Compartment.imp_slot in
          if
            slot < Compartment.first_free_slot
            || slot land 7 <> 0
            || slot + 8 > gsize
          then
            em Rules.link_import_slot_range
              (Printf.sprintf "import %s.%s at slot %d outside globals of \
                               size %d"
                 i.Compartment.imp_compartment i.Compartment.imp_export slot
                 gsize)
          else
            let c = read_cap_at (gbase + slot) in
            if (not c.Capability.tag) || not (Capability.is_sealed c) then
              em Rules.link_import_unsealed
                (Printf.sprintf "import slot %d holds an unsealed or untagged \
                                 capability"
                   slot)
            else if
              (* temporal: the slot's range must reference live static
                 memory, not the revocable heap or unmapped space *)
              (let lo = Capability.base c and hi = Capability.top c in
               let heap_lo = t.Loader.heap_base in
               let heap_hi = t.Loader.heap_base + t.Loader.heap_size in
               let sram_lo = Sram.base sram in
               let sram_hi = sram_lo + Sram.size sram in
               (lo < heap_hi && hi > heap_lo) || hi <= sram_lo
               || lo >= sram_hi)
            then
              em Rules.tmp_import_dangling
                (Printf.sprintf
                   "import slot %d references the revocable heap or unmapped \
                    memory"
                   slot)
            else if not (Otype.equal (Capability.otype c) switcher_export_ot)
            then
              em Rules.link_import_wrong_otype
                (Printf.sprintf "import slot %d sealed with the wrong otype"
                   slot)
            else
              let resolved =
                match
                  List.assoc_opt i.Compartment.imp_compartment
                    t.Loader.compartments
                with
                | None -> None
                | Some tgt ->
                    List.assoc_opt i.Compartment.imp_export
                      tgt.Loader.descriptors
              in
              match resolved with
              | Some d when Capability.equal d c -> ()
              | _ ->
                  em Rules.link_import_wrong_otype
                    (Printf.sprintf
                       "import slot %d does not resolve to %s.%s" slot
                       i.Compartment.imp_compartment i.Compartment.imp_export))
        b.Loader.bc.Compartment.imports;
      (* slot 0: the switcher cross-call sentry *)
      let c0 = read_cap_at (gbase + Compartment.switcher_slot) in
      let addr0 = Capability.address c0 in
      if
        (not c0.Capability.tag)
        || Capability.sentry_kind c0 <> Some Otype.Sentry_disable
        || addr0 < switcher_lo || addr0 >= switcher_hi
      then
        em Rules.link_switcher_slot
          "globals slot 0 is not the switcher's cross-call sentry";
      (* globals image scan: no local caps, no reserved-otype sealing caps *)
      let import_slots =
        Compartment.switcher_slot
        :: List.map
             (fun (i : Compartment.import) -> i.Compartment.imp_slot)
             b.Loader.bc.Compartment.imports
      in
      let off = ref 0 in
      while !off + 8 <= gsize do
        (if not (List.mem !off import_slots) then
           let c = read_cap_at (gbase + !off) in
           if c.Capability.tag then
             if not (Capability.is_global c) then
               em Rules.link_local_leak
                 (Printf.sprintf "tagged local capability at globals+%d" !off)
             else if
               (Capability.has_perm c Perm.SE || Capability.has_perm c Perm.US)
               && (not (Capability.is_sealed c))
               && Capability.base c <= Switcher_asm.export_otype
               && Capability.top c > Switcher_asm.export_otype
             then
               em Rules.link_reserved_otype
                 (Printf.sprintf
                    "sealing capability at globals+%d covers the switcher's \
                     export otype"
                    !off));
        off := !off + 8
      done)
    t.Loader.compartments;
  (* boot register file and layout *)
  let em ?pc rule detail = emit acc ?pc ~compartment:"system" rule detail in
  let m = t.Loader.machine in
  if Capability.has_perm m.Machine.pcc Perm.SR then
    em Rules.link_sr_leak "boot PCC carries SR";
  let sp = Machine.reg m Insn.reg_sp in
  if
    (not sp.Capability.tag)
    || Capability.is_sealed sp
    || Capability.is_global sp
    || (not (Capability.has_perm sp Perm.SL))
    || Capability.base sp < t.Loader.stack_base
    || Capability.top sp > t.Loader.stack_base + t.Loader.stack_size
  then
    em Rules.link_stack_cap
      "boot stack capability must be tagged, local, SL and bounded to the \
       stack region";
  if t.Loader.heap_base < t.Loader.stack_base + t.Loader.stack_size then
    em Rules.link_heap_layout
      (Printf.sprintf "heap base 0x%x overlaps stacks/static data ending at \
                       0x%x"
         t.Loader.heap_base
         (t.Loader.stack_base + t.Loader.stack_size))

(* --- entry point -------------------------------------------------------------- *)

type stats = {
  compartments : int;
  cache_hits : int;  (** compartments whose summary was reused by hash *)
  cache_misses : int;  (** compartments analyzed from scratch *)
}

(** [run_stats ?cache t] audits a linked image and reports summary-cache
    reuse.  The linkage audit and the {!Linkflow} pass always run fresh
    (they are cheap and depend on cross-compartment state); only the
    per-compartment fixpoints are cached, keyed by {!summary_key}.  A
    warm re-audit is byte-identical to a cold one because a hash hit
    replays the exact findings and interface the cold analysis of the
    same inputs would recompute.  [call_summaries] and [field_sensitive]
    exist to let tests prove the interprocedural and store-map layers
    catch what the coarse analysis misses; production callers leave them
    on. *)
let run_stats ?(call_summaries = true) ?(field_sensitive = true)
    ?(cache : Summary.cache option) (t : Loader.t) =
  let link_acc = acc_create () in
  audit_linkage link_acc t;
  let hits = ref 0 and misses = ref 0 in
  let sums =
    List.map
      (fun cb ->
        let key = summary_key ~call_summaries ~field_sensitive t cb in
        let fresh () =
          incr misses;
          analyze_compartment ~call_summaries ~field_sensitive ~key t cb
        in
        match cache with
        | None -> fresh ()
        | Some c -> (
            match Summary.find c key with
            | Some s ->
                incr hits;
                s
            | None ->
                let s = fresh () in
                Summary.add c s;
                s))
      t.Loader.compartments
  in
  let findings =
    List.rev link_acc.findings
    @ List.concat_map (fun (s : Summary.t) -> s.Summary.sm_findings) sums
    @ Linkflow.analyze t sums
  in
  ( findings,
    {
      compartments = List.length t.Loader.compartments;
      cache_hits = !hits;
      cache_misses = !misses;
    } )

(** [run t] audits a linked image; returns the findings.  Emission order
    is stable per image; reports sort before rendering. *)
let run ?call_summaries ?field_sensitive ?cache (t : Loader.t) =
  fst (run_stats ?call_summaries ?field_sensitive ?cache t)
