(* The abstract capability domain of the static auditor (DESIGN.md §11).

   Each register holds an abstract value approximating a set of concrete
   machine words — capabilities or plain integers (an integer is a
   capability with a false tag, so one representation covers both).  The
   domain is a join-semilattice; every component carries *must* (lower)
   and *may* (upper) information so that findings can be restricted to
   must-evidence: a rule fires only when every concretization of the
   abstract value violates it.  Joins erode must-information, which makes
   the analysis incomplete but keeps it free of false positives by
   construction.

   Components:
     tag    three-valued: provably tagged / provably untagged / unknown
     ot     otype: exact or unknown (sealedness derives from it)
     pmust  permissions every concretization has
     pmay   permissions some concretization may have (pmust ⊆ pmay)
     base, top, addr   intervals over [0, 2^32]
     from_load  provenance: the value may have travelled through memory
                (set by every abstract load; joins as OR).  Rules use it
                to tell a directly-leaked register value from one
                laundered through a second location.
     xret   three-valued provenance for the compositional link-flow pass
            (DESIGN.md §15): [True] means every concretization is exactly
            the unmodified return value of some cross-compartment import
            call; [False] means provably not; [Any] is unknown.  Only
            [Cmove] and block-local store-to-load forwarding preserve
            [True] — every other derivation weakens it to [Any], so the
            summary substitution in {!Linkflow} stays sound.            *)

open Cheriot_core

module Tri = struct
  type t = True | False | Any

  let of_bool b = if b then True else False
  let join a b = if a = b then a else Any
  let must_true = function True -> true | _ -> false
  let must_false = function False -> true | _ -> false
end

module Iv = struct
  type t = { lo : int; hi : int }  (* inclusive; 0 <= lo <= hi <= 2^32 *)

  let limit = 1 lsl 32
  let full = { lo = 0; hi = limit }
  let exact n = if n < 0 || n > limit then full else { lo = n; hi = n }
  let v lo hi = { lo = max 0 lo; hi = min limit hi }
  let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
  let is_exact a = a.lo = a.hi
  let equal a b = a.lo = b.lo && a.hi = b.hi

  (* Interval sum; anything that could wrap modulo 2^32 collapses to full. *)
  let add a b =
    let lo = a.lo + b.lo and hi = a.hi + b.hi in
    if lo < 0 || hi > limit then full else { lo; hi }

  let add_const a n =
    let lo = a.lo + n and hi = a.hi + n in
    if lo < 0 || hi > limit then full else { lo; hi }

  let sub a b =
    let lo = a.lo - b.hi and hi = a.hi - b.lo in
    if lo < 0 || hi > limit then full else { lo; hi }

  (* Classic widening: any growth jumps straight to full, bounding chain
     length for loop-carried addresses. *)
  let widen old nw = if nw.lo < old.lo || nw.hi > old.hi then full else nw
end

type ot = Ot_exact of Otype.t | Ot_any

type v = {
  tag : Tri.t;
  ot : ot;
  pmust : Perm.Set.t;
  pmay : Perm.Set.t;
  base : Iv.t;
  top : Iv.t;
  addr : Iv.t;
  from_load : bool;
  xret : Tri.t;
}

let all_perms = Perm.Set.of_list Perm.all

let top_v =
  {
    tag = Tri.Any;
    ot = Ot_any;
    pmust = Perm.Set.empty;
    pmay = all_perms;
    base = Iv.full;
    top = Iv.full;
    addr = Iv.full;
    from_load = true;
    xret = Tri.Any;
  }

(* A known integer (or the null capability): untagged, no authority. *)
let int_v iv =
  {
    tag = Tri.False;
    ot = Ot_exact Otype.unsealed;
    pmust = Perm.Set.empty;
    pmay = Perm.Set.empty;
    base = Iv.exact 0;
    top = Iv.exact 0;
    addr = iv;
    from_load = false;
    xret = Tri.False;
  }

let null_v = int_v (Iv.exact 0)
let int_full = int_v Iv.full

(* Exact lift of a concrete capability (tag included in [c]). *)
let of_cap (c : Capability.t) =
  let perms = Capability.perms c in
  {
    tag = Tri.of_bool c.Capability.tag;
    ot = Ot_exact (Capability.otype c);
    pmust = perms;
    pmay = perms;
    base = Iv.exact (Capability.base c);
    top = Iv.exact (Capability.top c);
    addr = Iv.exact (Capability.address c);
    from_load = false;
    xret = Tri.False;
  }

let join_ot a b =
  match (a, b) with
  | Ot_exact x, Ot_exact y when Otype.equal x y -> a
  | _ -> Ot_any

let equal_ot a b =
  match (a, b) with
  | Ot_exact x, Ot_exact y -> Otype.equal x y
  | Ot_any, Ot_any -> true
  | _ -> false

let join a b =
  {
    tag = Tri.join a.tag b.tag;
    ot = join_ot a.ot b.ot;
    pmust = Perm.Set.inter a.pmust b.pmust;
    pmay = Perm.Set.union a.pmay b.pmay;
    base = Iv.join a.base b.base;
    top = Iv.join a.top b.top;
    addr = Iv.join a.addr b.addr;
    from_load = a.from_load || b.from_load;
    xret = Tri.join a.xret b.xret;
  }

(* Join with interval widening relative to [old] — applied at loop heads
   once a block's input has been joined into often enough. *)
let widen old nw =
  {
    tag = Tri.join old.tag nw.tag;
    ot = join_ot old.ot nw.ot;
    pmust = Perm.Set.inter old.pmust nw.pmust;
    pmay = Perm.Set.union old.pmay nw.pmay;
    base = Iv.widen old.base (Iv.join old.base nw.base);
    top = Iv.widen old.top (Iv.join old.top nw.top);
    addr = Iv.widen old.addr (Iv.join old.addr nw.addr);
    from_load = old.from_load || nw.from_load;
    xret = Tri.join old.xret nw.xret;
  }

let equal a b =
  a.tag = b.tag && equal_ot a.ot b.ot
  && Perm.Set.equal a.pmust b.pmust
  && Perm.Set.equal a.pmay b.pmay
  && Iv.equal a.base b.base && Iv.equal a.top b.top && Iv.equal a.addr b.addr
  && a.from_load = b.from_load && a.xret = b.xret

(* Abstract ordering: [leq a b] iff every concretization of [a] is one of
   [b] — i.e. [b] is the more abstract value.  Must-components shrink
   upward, may-components grow. *)
let leq_ot a b =
  match (a, b) with
  | _, Ot_any -> true
  | Ot_exact x, Ot_exact y -> Otype.equal x y
  | Ot_any, Ot_exact _ -> false

let leq_iv (a : Iv.t) (b : Iv.t) = b.Iv.lo <= a.Iv.lo && a.Iv.hi <= b.Iv.hi

let leq a b =
  (a.tag = b.tag || b.tag = Tri.Any)
  && leq_ot a.ot b.ot
  && Perm.Set.subset b.pmust a.pmust
  && Perm.Set.subset a.pmay b.pmay
  && leq_iv a.base b.base && leq_iv a.top b.top && leq_iv a.addr b.addr
  && ((not a.from_load) || b.from_load)
  && (a.xret = b.xret || b.xret = Tri.Any)

(* --- must-queries (the only evidence findings may use) ------------------ *)

let must_unsealed v =
  match v.ot with Ot_exact o -> Otype.is_unsealed o | Ot_any -> false

let must_sealed v =
  match v.ot with Ot_exact o -> not (Otype.is_unsealed o) | Ot_any -> false

let sentry_kind_exact v =
  match v.ot with Ot_exact o -> Otype.sentry_of_otype o | Ot_any -> None

let may_perm v p = Perm.Set.mem p v.pmay
let must_perm v p = Perm.Set.mem p v.pmust

(* Every concretization is exactly the unmodified return value of some
   cross-compartment import call (see [xret] above). *)
let must_xret v = Tri.must_true v.xret

(* Any derivation (bounds, perms, tag or address change) produces a value
   that is no longer the *unmodified* return: [True] decays to [Any]. *)
let weaken_xret v =
  match v.xret with Tri.True -> { v with xret = Tri.Any } | _ -> v

(* Every concretization of [iv] is an in-bounds access of [size] bytes. *)
let must_in_bounds v (iv : Iv.t) ~size =
  iv.Iv.lo >= v.base.Iv.hi && iv.Iv.hi + size <= v.top.Iv.lo

(* Every concretization of [iv] violates bounds for a [size]-byte access. *)
let must_out_of_bounds v (iv : Iv.t) ~size =
  iv.Iv.lo + size > v.top.Iv.hi || iv.Iv.hi < v.base.Iv.lo

(* --- register states ---------------------------------------------------- *)

type state = v array  (* 16 registers; index 0 is pinned to null *)

let get (st : state) r = if r = 0 then null_v else st.(r land 15)

let set (st : state) r x = if r <> 0 then st.(r land 15) <- x

let copy_state (st : state) : state = Array.copy st

let join_state (a : state) (b : state) : state = Array.map2 join a b

let widen_state (a : state) (b : state) : state = Array.map2 widen a b

let equal_state (a : state) (b : state) =
  let ok = ref true in
  Array.iteri (fun i x -> if not (equal x b.(i)) then ok := false) a;
  !ok
