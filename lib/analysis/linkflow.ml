(* Compositional cross-compartment flow analysis (DESIGN.md §15).

   [analyze t sums] propagates the per-compartment interface summaries
   ({!Summary}) over the image's declared linkage graph to fixpoint and
   emits the xflow-* rules.  It never re-runs the intra-compartment
   fixpoint: everything it needs is in the summaries plus the image
   layout, which is what makes the incremental driver's
   one-compartment-re-analysis contract hold.

   The central equation is the *return substitution*: an export whose
   abstract return value carries [xret = True] (every concretization is
   exactly the unmodified return of one of the compartment's own import
   calls) returns, transitively, whatever its own imports can return —
   so [retstar B f] is [reach B], the join of [retstar] over B's
   resolved import edges.  Otherwise the export's own summarised return
   value already over-approximates every concrete return and is used
   directly.  The equations are monotone over the {!Absdom} join
   semilattice; iteration starts from bottom ([None]) and widens after a
   round budget so import cycles terminate.

   Evidence discipline: like the flow-* rules, every xflow-* rule
   combines a may-flow *path* (the declared linkage edges) with *must*
   facts about the abstract values (must-tag, provable bounds, provable
   permission absence), so a finding means the flagged authority
   transfer happens on every concrete return along that edge.  The
   corpus exactness gate and the clean-scenario property keep the
   no-false-positive contract honest. *)

open Cheriot_core
module Machine = Cheriot_isa.Machine
module Loader = Cheriot_rtos.Loader
module Compartment = Cheriot_rtos.Compartment
open Absdom

type comp_info = {
  ci_name : string;
  ci_gbase : int;
  ci_gsize : int;
  ci_imports : string list;  (** declared import target compartments *)
  ci_edges : (string * string) list;
      (** resolved import edges: (target compartment, target export) —
          declared imports whose target compartment and export both
          exist in the image *)
  ci_sum : Summary.t;
}

let info_of (t : Loader.t) (sums : Summary.t list) =
  let sum_of name =
    List.find (fun (s : Summary.t) -> s.Summary.sm_comp = name) sums
  in
  List.map
    (fun ((name, b) : string * Loader.built) ->
      let imports =
        List.map
          (fun (i : Compartment.import) -> i.Compartment.imp_compartment)
          b.Loader.bc.Compartment.imports
      in
      let edges =
        List.filter_map
          (fun (i : Compartment.import) ->
            match List.assoc_opt i.Compartment.imp_compartment
                    t.Loader.compartments
            with
            | None -> None
            | Some (tgt : Loader.built) ->
                if
                  List.exists
                    (fun (e : Compartment.export) ->
                      e.Compartment.exp_label = i.Compartment.imp_export)
                    tgt.Loader.bc.Compartment.exports
                then Some (i.Compartment.imp_compartment,
                           i.Compartment.imp_export)
                else None)
          b.Loader.bc.Compartment.imports
      in
      {
        ci_name = name;
        ci_gbase = b.Loader.globals_base;
        ci_gsize = max 16 b.Loader.bc.Compartment.globals_size;
        ci_imports = imports;
        ci_edges = edges;
        ci_sum = sum_of name;
      })
    t.Loader.compartments

let export_ret (ci : comp_info) label =
  match
    List.find_opt
      (fun (e : Summary.export_summary) -> e.Summary.xs_label = label)
      ci.ci_sum.Summary.sm_exports
  with
  | None -> None
  | Some e -> e.Summary.xs_ret

let export_entry (ci : comp_info) label =
  match
    List.find_opt
      (fun (e : Summary.export_summary) -> e.Summary.xs_label = label)
      ci.ci_sum.Summary.sm_exports
  with
  | None -> None
  | Some e -> Some e.Summary.xs_entry

let joino a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (join x y)

(* --- the linkage-graph fixpoint ----------------------------------------- *)

(* [reach] maps a compartment to the join of everything its resolved
   import edges can return; [retstar] substitutes [reach] for pure
   passthrough returns.  Widening after 8 rounds bounds import cycles. *)
let solve_reach (infos : comp_info list) =
  let reach : (string, v option) Hashtbl.t = Hashtbl.create 8 in
  let get_reach name =
    match Hashtbl.find_opt reach name with Some x -> x | None -> None
  in
  let retstar (b : comp_info) label =
    match export_ret b label with
    | None -> None
    | Some rv -> if must_xret rv then get_reach b.ci_name else Some rv
  in
  let find_ci name =
    List.find (fun ci -> ci.ci_name = name) infos
  in
  let round n =
    List.fold_left
      (fun changed ci ->
        let nv =
          List.fold_left
            (fun acc (bname, label) -> joino acc (retstar (find_ci bname) label))
            None ci.ci_edges
        in
        let old = get_reach ci.ci_name in
        let nv =
          match (old, nv) with
          | Some o, Some x when n > 8 -> Some (widen o x)
          | Some o, Some x -> Some (join o x)
          | _, x -> x
        in
        let same =
          match (old, nv) with
          | None, None -> true
          | Some o, Some x -> equal o x
          | _ -> false
        in
        if same then changed
        else begin
          Hashtbl.replace reach ci.ci_name nv;
          true
        end)
      false infos
  in
  let n = ref 0 in
  while round !n && !n < 64 do
    incr n
  done;
  let retstar_final (bname, label) =
    let b = find_ci bname in
    retstar b label
  in
  (get_reach, retstar_final)

(* --- rule emission -------------------------------------------------------- *)

let analyze (t : Loader.t) (sums : Summary.t list) : Rules.finding list =
  let infos = info_of t sums in
  let get_reach, retstar = solve_reach infos in
  let find_ci name = List.find (fun ci -> ci.ci_name = name) infos in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let emit ?pc ~compartment rule detail =
    if not (Hashtbl.mem seen (rule, compartment, pc)) then begin
      Hashtbl.replace seen (rule, compartment, pc) ();
      findings := Rules.v ?pc ~compartment rule detail :: !findings
    end
  in
  (* switcher-private data region: the unseal key and cross-compartment
     return state the switcher parks behind mscratchc *)
  let swdata = t.Loader.machine.Machine.mscratchc in
  let sw_lo = Capability.base swdata and sw_hi = Capability.top swdata in
  List.iter
    (fun ci ->
      let a = ci.ci_name in
      (* return-direction rules over every resolved import edge *)
      List.iter
        (fun (bname, label) ->
          match retstar (bname, label) with
          | None -> ()
          | Some rv ->
              if Tri.must_true rv.tag then begin
                let bi = find_ci bname in
                (* 1. a store-local capability crossing the boundary *)
                if not (may_perm rv Perm.GL) then
                  emit ?pc:(export_entry bi label) ~compartment:bname
                    Rules.xflow_local_escape
                    (Printf.sprintf
                       "export %s may return a store-local (non-GL) \
                        capability across the compartment boundary to %s"
                       label a);
                (* 2. transitive escalation: authority over a third
                   compartment's globals that A's own imports don't
                   grant *)
                List.iter
                  (fun ci' ->
                    if
                      ci'.ci_name <> a
                      && ci'.ci_name <> bname
                      && (not (List.mem ci'.ci_name ci.ci_imports))
                      && rv.base.Iv.lo >= ci'.ci_gbase
                      && rv.top.Iv.hi <= ci'.ci_gbase + ci'.ci_gsize
                      && rv.base.Iv.hi < rv.top.Iv.lo
                    then
                      emit ~compartment:a Rules.xflow_escalation
                        (Printf.sprintf
                           "obtains authority over %s's globals via %s.%s \
                            without importing from %s"
                           ci'.ci_name bname label ci'.ci_name))
                  infos;
                (* 3. sealed-capability forgery reachability: a readable
                   window provably overlapping switcher-private state *)
                if
                  must_perm rv Perm.LD
                  && rv.base.Iv.hi < sw_hi
                  && rv.top.Iv.lo > sw_lo
                  && rv.base.Iv.hi < rv.top.Iv.lo
                then
                  emit ~compartment:a Rules.xflow_sealed_forgery
                    (Printf.sprintf
                       "readable authority over switcher-private sealing \
                        state [0x%x, 0x%x) reachable via %s.%s"
                       sw_lo sw_hi bname label)
              end)
        ci.ci_edges;
      (* argument direction of rule 1: a store-local capability passed
         out at a cross-compartment call site *)
      (match ci.ci_sum.Summary.sm_xcall_out with
      | Some av
        when ci.ci_edges <> []
             && Tri.must_true av.tag
             && not (may_perm av Perm.GL) ->
          emit ?pc:ci.ci_sum.Summary.sm_xcall_out_pc ~compartment:a
            Rules.xflow_local_escape
            "cross-compartment call passes a store-local (non-GL) \
             capability out of the compartment"
      | _ -> ());
      (* 4. import-tainted authority parked in globals *)
      match ci.ci_sum.Summary.sm_stored_xcall_pc with
      | Some pc -> (
          match get_reach a with
          | Some rv when Tri.must_true rv.tag ->
              emit ~pc ~compartment:a Rules.xflow_import_taint
                "value received from an import call — provably a tagged \
                 capability — stored into the compartment's globals"
          | _ -> ())
      | None -> ())
    infos;
  List.rev !findings
