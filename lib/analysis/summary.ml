(* Per-compartment interface summaries for the compositional link-flow
   analysis (DESIGN.md §15).

   [Audit.analyze_compartment] distills its intra-compartment fixpoint
   into a {!t}: the abstract value each export can return, the join of
   the argument values the compartment passes out at cross-compartment
   call sites, whether it provably parks an import-call return in its
   own globals, and the cfg/flow/irq findings of the compartment itself.
   A summary depends only on inputs covered by its content hash
   ({!digest} over the code region, globals image, layout, export table
   and analysis flags), so {!Linkflow} and the incremental driver can
   reuse a cached summary whenever the hash is unchanged and still
   produce byte-identical reports.

   The abstract values come straight from {!Absdom}; [v_to_json] gives
   the serialized form the incremental report and DESIGN.md document. *)

open Cheriot_core
open Absdom

type export_summary = {
  xs_label : string;  (** export label, the linkage-graph edge key *)
  xs_entry : int;  (** absolute entry pc of the export *)
  xs_ret : v option;
      (** abstract a0 at every return of the export, [None] when the
          export provably never returns (or the fixpoint bailed out of
          call summaries) *)
}

type t = {
  sm_comp : string;
  sm_key : string;  (** content hash (hex digest) the cache is keyed by *)
  sm_exports : export_summary list;
  sm_xcall_out : v option;
      (** join of the a0 argument at every cross-compartment call site *)
  sm_xcall_out_pc : int option;
  sm_stored_xcall_pc : int option;
      (** pc of a [Csc] provably storing an unmodified import-call
          return value into the compartment's own globals *)
  sm_findings : Rules.finding list;
      (** the compartment-local (cfg/flow/irq/tmp) findings, in emission
          order — cached together with the interface so a hash hit
          skips the whole fixpoint *)
}

(* --- hashing ------------------------------------------------------------ *)

(* Stdlib [Digest] (MD5) over NUL-separated parts: no new dependencies,
   and collisions are not an attack surface here (the cache is a pure
   memoization keyed by trusted loader state). *)
let digest parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* --- cache -------------------------------------------------------------- *)

type cache = { tbl : (string, t) Hashtbl.t }

let create_cache () = { tbl = Hashtbl.create 16 }
let find cache key = Hashtbl.find_opt cache.tbl key
let add cache (s : t) = Hashtbl.replace cache.tbl s.sm_key s
let cache_size cache = Hashtbl.length cache.tbl

(* --- serialization ------------------------------------------------------ *)

let tri_to_string = function
  | Tri.True -> "true"
  | Tri.False -> "false"
  | Tri.Any -> "any"

let v_to_json (x : v) =
  let perms ps =
    String.concat ","
      (List.filter_map
         (fun p -> if Perm.Set.mem p ps then Some (Perm.to_string p) else None)
         Perm.all)
  in
  Printf.sprintf
    "{\"tag\":\"%s\",\"sealed\":\"%s\",\"pmust\":\"%s\",\"pmay\":\"%s\",\
     \"base\":[%d,%d],\"top\":[%d,%d],\"addr\":[%d,%d],\"xret\":\"%s\"}"
    (tri_to_string x.tag)
    (if must_sealed x then "true"
     else if must_unsealed x then "false"
     else "any")
    (perms x.pmust) (perms x.pmay) x.base.Iv.lo x.base.Iv.hi x.top.Iv.lo
    x.top.Iv.hi x.addr.Iv.lo x.addr.Iv.hi (tri_to_string x.xret)

let opt_v_to_json = function None -> "null" | Some x -> v_to_json x

let to_json (s : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"compartment\":\"%s\",\"key\":\"%s\",\"exports\":["
       (Rules.json_escape s.sm_comp)
       (Rules.json_escape s.sm_key));
  List.iteri
    (fun i (e : export_summary) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"label\":\"%s\",\"entry\":%d,\"returns\":%s}"
           (Rules.json_escape e.xs_label)
           e.xs_entry (opt_v_to_json e.xs_ret)))
    s.sm_exports;
  Buffer.add_string b
    (Printf.sprintf
       "],\"xcall_out\":%s,\"stored_xcall_pc\":%s,\"findings\":%d}"
       (opt_v_to_json s.sm_xcall_out)
       (match s.sm_stored_xcall_pc with
       | Some pc -> string_of_int pc
       | None -> "null")
       (List.length s.sm_findings));
  Buffer.contents b
