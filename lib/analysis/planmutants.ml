(* Seeded optimizer mutants: the plan-level analogue of the
   deliberately-bad audit corpus.  Each entry takes a plan the real
   optimizer produced for a small program and re-introduces one
   concrete optimizer bug by hand — a narrowed guard, a dropped
   alignment check, dominance across a register redefinition, a
   premature deferral — that {!Planverify} must refute with exactly the
   expected plan-* rule.  `cheriot_audit plans` and test_planverify
   both iterate [entries]; a verifier regression that stops catching
   any of these fails the gate loudly.

   Every mutant is genuinely unsound: for each there is a concrete
   register assignment on which the mutated plan retires an access (or
   replays bookkeeping) where the reference interpreter traps. *)

module Insn = Cheriot_isa.Insn
module Ir = Cheriot_isa.Ir

type entry = {
  pm_name : string;
  pm_rule : string;  (** the {!Rules.plan_catalogue} id it must trip *)
  pm_build :
    unit -> bool * Insn.t array * Ir.chk array * Ir.guard array * bool array option;
      (** (cheri, insns, chks, guards, defer override) *)
}

let a0 = Insn.reg_a0
let a1 = Insn.reg_a1
let t0 = Insn.reg_t0
let t1 = Insn.reg_t1
let t2 = Insn.reg_t2
let lw rd rs1 off = Insn.Load { signed = true; width = W; rd; rs1; off }
let sw rs2 rs1 off = Insn.Store { width = W; rs2; rs1; off }

(* The sound plan the optimizer actually emits for [prog]; mutants
   start from it so each entry re-introduces exactly one bug. *)
let opt ~cheri prog =
  let chks, guards, _ = Ir.optimize ~cheri prog in
  (chks, guards)

let entries =
  [
    {
      pm_name = "narrowed-guard-range";
      pm_rule = Rules.plan_bounds_uncovered;
      pm_build =
        (fun () ->
          (* Two loads hoisted behind one guard; shrink the guard span
             so the second footprint escapes it while its access still
             runs alignment-only. *)
          let prog = [| lw t0 a0 0; lw t1 a0 8 |] in
          let chks, guards = opt ~cheri:true prog in
          guards.(0) <- { (guards.(0)) with Ir.g_hi = 4 };
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "dropped-alignment";
      pm_rule = Rules.plan_align_undischarged;
      pm_build =
        (fun () ->
          (* The word load at offset 2 sits inside the capability
             load's proven [0, 8) footprint, but 8-alignment at 0 does
             not give 4-alignment at 2. *)
          let prog = [| Insn.Clc (t0, a0, 0); lw t1 a0 2 |] in
          let chks, guards = opt ~cheri:true prog in
          chks.(1) <- Ir.Chk_none;
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "cross-version-dominance";
      pm_rule = Rules.plan_meta_undominated;
      pm_build =
        (fun () ->
          (* The second load cites the register *after* Csetbounds
             redefined it; the first load's facts died at the def. *)
          let prog =
            [| lw t0 a0 0; Insn.Csetbounds (a0, a0, t1); lw t2 a0 0 |]
          in
          let chks, guards = opt ~cheri:true prog in
          chks.(2) <- Ir.Chk_bounds;
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "premature-deferral";
      pm_rule = Rules.plan_deferral;
      pm_build =
        (fun () ->
          (* Auipcc reads the current PC: deferring its bookkeeping
             replays a stale PCC at the next trap or side exit. *)
          let prog = [| Insn.Auipcc (t0, 0); lw t1 a0 0 |] in
          let chks, guards = opt ~cheri:true prog in
          (true, prog, chks, guards, Some [| true; true |]));
    };
    {
      pm_name = "guard-missing-perm";
      pm_rule = Rules.plan_guard_perms;
      pm_build =
        (fun () ->
          (* The guard covers the store's footprint but never checked
             SD: a read-only capability passes it, and the store's
             permission trap is lost. *)
          let prog = [| lw t0 a0 0; sw t1 a0 4 |] in
          let chks, guards = opt ~cheri:true prog in
          guards.(0) <- { (guards.(0)) with Ir.g_need_sd = false };
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "uncovered-derivation-hop";
      pm_rule = Rules.plan_meta_undominated;
      pm_build =
        (fun () ->
          (* The guard span is shrunk to the footprints alone, dropping
             the Cincaddrimm hop address: at an unrepresentable hop the
             derived register unteags and the covered access must trap,
             but alignment-only never looks at the tag. *)
          let prog =
            [| Insn.Cincaddrimm (a1, a0, -8); lw t0 a1 8; lw t2 a0 0 |]
          in
          let chks, guards = opt ~cheri:true prog in
          guards.(0) <- { (guards.(0)) with Ir.g_lo = 0 };
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "undominated-first-access";
      pm_rule = Rules.plan_meta_undominated;
      pm_build =
        (fun () ->
          (* Nothing precedes the block's only access: no fact can
             justify skipping its tag/seal/permission checks. *)
          let prog = [| lw t0 a0 0 |] in
          let chks, guards = opt ~cheri:true prog in
          chks.(0) <- Ir.Chk_bounds;
          (true, prog, chks, guards, None));
    };
    {
      pm_name = "rv32-weakened";
      pm_rule = Rules.plan_rv32_weakened;
      pm_build =
        (fun () ->
          (* Rv32 accesses are DDC-authorized; register facts cover
             nothing, so any reduction is unsound by construction. *)
          let prog = [| lw t0 a0 0 |] in
          let chks, guards = opt ~cheri:false prog in
          chks.(0) <- Ir.Chk_bounds;
          (false, prog, chks, guards, None));
    };
  ]
