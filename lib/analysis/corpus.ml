(* Corpus of deliberately-bad images for the auditor, one per rule.

   Each entry links a small system and then (for the link-* rules)
   corrupts the image the way a malicious or buggy toolchain would —
   directly through SRAM or the boot register file, below the level the
   loader's own abstractions enforce.  The contract, enforced by
   [test_audit] and the [cheriot_audit corpus] CI gate, is that auditing
   each image yields findings for exactly its expected rule: no false
   negatives (the rule fires) and no false positives (nothing else
   does). *)

open Cheriot_core
module Sram = Cheriot_mem.Sram
open Cheriot_isa
module Loader = Cheriot_rtos.Loader
module Compartment = Cheriot_rtos.Compartment
module Switcher_asm = Cheriot_rtos.Switcher_asm

let enabled = Compartment.Interrupts_enabled

let export l = { Compartment.exp_label = l; exp_posture = enabled }

let export_p p l = { Compartment.exp_label = l; exp_posture = p }

(* single-compartment harness for the cfg-*, flow-*, irq-* and tmp-*
   rules *)
let victim_exports exports code =
  Loader.link
    [ Compartment.v ~name:"victim" ~globals_size:64 ~exports code ]
    ~boot:("victim", "main")

let victim code = victim_exports [ export "main" ] code

(* two-compartment harness for the link-* rules: "app" calls "lib.double"
   through import slot 8 and the switcher sentry in slot 0 *)
let lib ?(globals_size = 64) () =
  Compartment.v ~name:"lib" ~globals_size ~exports:[ export "double" ]
    [ Asm.Label "double";
      Asm.I (Insn.Op (Insn.Add, Insn.reg_a0, Insn.reg_a0, Insn.reg_a0));
      Asm.Ret ]

let app ?(code = None) ?(slot = 8) () =
  let code =
    match code with
    | Some c -> c
    | None ->
        [ Asm.Label "main";
          Asm.I (Insn.Clc (Insn.reg_t0, Insn.reg_gp, slot));
          Asm.I (Insn.Clc (Insn.reg_t1, Insn.reg_gp, 0));
          Asm.I (Insn.Jalr (Insn.reg_ra, Insn.reg_t1, 0));
          Asm.I Insn.Ebreak ]
  in
  Compartment.v ~name:"app" ~globals_size:64 ~exports:[ export "main" ]
    ~imports:
      [ { Compartment.imp_compartment = "lib"; imp_export = "double";
          imp_slot = slot } ]
    code

let pair () = Loader.link [ app (); lib () ] ~boot:("app", "main")

(* the canonical cross-compartment call sequence: sealed import
   descriptor from [slot] into ct0, switcher sentry from slot 0 into
   ct1, jump through the sentry *)
let call_slot slot =
  [ Asm.I (Insn.Clc (Insn.reg_t0, Insn.reg_gp, slot));
    Asm.I (Insn.Clc (Insn.reg_t1, Insn.reg_gp, 0));
    Asm.I (Insn.Jalr (Insn.reg_ra, Insn.reg_t1, 0)) ]

let import c label slot =
  { Compartment.imp_compartment = c; imp_export = label; imp_slot = slot }

let sentry c k =
  match Capability.seal_sentry c k with
  | Ok s -> s
  | Error e -> failwith ("corpus: " ^ e)

let seal c ~otype =
  match
    Capability.seal c ~key:(Capability.with_address Capability.root_sealing otype)
  with
  | Ok s -> s
  | Error e -> failwith ("corpus: " ^ e)

let write_cap (t : Loader.t) addr c =
  Sram.write_cap t.Loader.sram addr (true, Capability.to_word c)

let mem_window ?(sl = false) base len =
  let c =
    Capability.set_bounds
      (Capability.with_address Capability.root_mem_rw base)
      ~length:len ~exact:false
  in
  if sl then c else Capability.clear_perms c [ SL ]

let import_slot_addr t comp slot =
  (Loader.find t comp).Loader.globals_base + slot

let desc_addr t comp label =
  Capability.base (Loader.export_descriptor (Loader.find t comp) label)

(* --- the corpus ---------------------------------------------------------- *)

type entry = { name : string; rule : string; build : unit -> Loader.t }

let e name rule build = { name; rule; build }

let lw rd rs1 off =
  Asm.I (Insn.Load { signed = true; width = Insn.W; rd; rs1; off })

let sw rs2 rs1 off = Asm.I (Insn.Store { width = Insn.W; rs2; rs1; off })

let entries =
  [
    (* --- cfg-* ----------------------------------------------------------- *)
    e "undecodable-word" Rules.cfg_undecodable (fun () ->
        victim [ Asm.Label "main"; Asm.Word 0xFFFF_FFFF ]);
    e "direct-cross-jal" Rules.cfg_direct_cross (fun () ->
        (* "victim" is laid out first; the next compartment's code begins
           0x40 past its origin, so a direct Jal +0x40 from [main] lands
           in foreign code *)
        Loader.link
          [ Compartment.v ~name:"victim" ~globals_size:64
              ~exports:[ export "main" ]
              [ Asm.Label "main"; Asm.I (Insn.Jal (0, 0x40)); Asm.I Insn.Ebreak ];
            Compartment.v ~name:"other" ~globals_size:16
              [ Asm.Label "foo"; Asm.I Insn.Ebreak ] ]
          ~boot:("victim", "main"));
    e "fallthrough-exit" Rules.cfg_fallthrough_exit (fun () ->
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Op_imm (Insn.Add, Insn.reg_a0, Insn.reg_a0, 1)) ]);
    (* --- flow-* ---------------------------------------------------------- *)
    e "store-local-via-globals" Rules.flow_store_local_leak (fun () ->
        (* sp is local (no GL); cgp lacks SL: storing sp through it must
           trap on real hardware, and is a leak the auditor must flag *)
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Csc (Insn.reg_sp, Insn.reg_gp, 24));
            Asm.I Insn.Ebreak ]);
    e "oob-after-setbounds" Rules.flow_oob_access (fun () ->
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Cincaddrimm (Insn.reg_t0, Insn.reg_gp, 0));
            Asm.I (Insn.Csetboundsimm (Insn.reg_t0, Insn.reg_t0, 16));
            lw Insn.reg_a0 Insn.reg_t0 16;
            Asm.I Insn.Ebreak ]);
    e "jump-through-data-cap" Rules.flow_jump_not_executable (fun () ->
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Jalr (Insn.reg_ra, Insn.reg_gp, 0));
            Asm.I Insn.Ebreak ]);
    e "widening-setbounds" Rules.flow_widening_derivation (fun () ->
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Csetboundsimm (Insn.reg_t0, Insn.reg_gp, 16));
            Asm.I (Insn.Csetboundsimm (Insn.reg_t1, Insn.reg_t0, 64));
            Asm.I Insn.Ebreak ]);
    e "deref-cleared-tag" Rules.flow_untagged_deref (fun () ->
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Ccleartag (Insn.reg_t0, Insn.reg_gp));
            lw Insn.reg_a0 Insn.reg_t0 0;
            Asm.I Insn.Ebreak ]);
    e "store-through-pcc" Rules.flow_missing_perm (fun () ->
        (* the code capability has no SD (W^X): a store through it
           provably lacks the needed permission *)
        victim
          [ Asm.Label "main";
            Asm.I (Insn.Auipcc (Insn.reg_t0, 0));
            sw Insn.reg_a0 Insn.reg_t0 0;
            Asm.I Insn.Ebreak ]);
    (* --- interprocedural / field-sensitive flow --------------------------- *)
    e "helper-call-oob" Rules.flow_oob_access (fun () ->
        (* the out-of-bounds capability is built by a helper function;
           only the call-summary analysis still knows its bounds at the
           caller's load (a clobbering analysis provably misses this —
           regression-tested) *)
        victim
          [ Asm.Label "main";
            Asm.Call "mkcap";
            lw Insn.reg_a1 Insn.reg_a0 16;
            Asm.I Insn.Ebreak;
            Asm.Label "mkcap";
            Asm.I (Insn.Cincaddrimm (Insn.reg_a0, Insn.reg_gp, 0));
            Asm.I (Insn.Csetboundsimm (Insn.reg_a0, Insn.reg_a0, 16));
            Asm.Ret ]);
    e "launder-local-via-slot" Rules.flow_launder_local (fun () ->
        (* sp is parked in a global slot through a forged SL-bearing
           window, reloaded, and re-stored through the SL-lacking cgp;
           only the field-sensitive store map keeps the slot's must-tag
           evidence across the two stores *)
        let t =
          victim
            [ Asm.Label "main";
              Asm.I (Insn.Clc (Insn.reg_t0, Insn.reg_gp, 24));
              Asm.I (Insn.Csc (Insn.reg_sp, Insn.reg_t0, 32));
              Asm.I (Insn.Clc (Insn.reg_t1, Insn.reg_gp, 32));
              Asm.I (Insn.Csc (Insn.reg_t1, Insn.reg_gp, 40));
              Asm.I Insn.Ebreak ]
        in
        let g = (Loader.find t "victim").Loader.globals_base in
        write_cap t (g + 24) (mem_window ~sl:true g 64);
        t);
    (* --- irq-* ------------------------------------------------------------ *)
    e "irq-spin-disabled" Rules.irq_unbounded_disabled (fun () ->
        victim_exports
          [ export_p Compartment.Interrupts_disabled "main" ]
          [ Asm.Label "main"; Asm.I (Insn.Jal (0, 0)) ]);
    e "irq-long-disabled" Rules.irq_over_budget (fun () ->
        victim_exports
          [ export_p Compartment.Interrupts_disabled "main" ]
          (Asm.Label "main"
           :: List.init 68 (fun _ ->
                  Asm.I (Insn.Op_imm (Insn.Add, Insn.reg_t0, Insn.reg_t0, 1)))
          @ [ Asm.I Insn.Ebreak ]));
    e "irq-posture-reentry" Rules.irq_inconsistent_reentry (fun () ->
        (* a direct goto from the interrupts-enabled entry into the
           interrupts-disabled one: the declared posture does not hold on
           internal re-entry *)
        victim_exports
          [ export "main"; export_p Compartment.Interrupts_disabled "crit" ]
          [ Asm.Label "main"; Asm.J (0, "crit");
            Asm.Label "crit"; Asm.I Insn.Ebreak ]);
    (* --- tmp-* ------------------------------------------------------------ *)
    e "heap-cap-escape" Rules.tmp_heap_escape (fun () ->
        (* a heap capability loaded from a slot, stripped of GL and
           parked in another global slot: the revoker can no longer see
           that the allocation is referenced *)
        let drop_gl =
          Perm.Set.to_arch_bits
            (Perm.Set.remove Perm.GL (Perm.Set.of_list Perm.all))
        in
        let t =
          victim
            [ Asm.Label "main";
              Asm.I (Insn.Clc (Insn.reg_t0, Insn.reg_gp, 16));
              Asm.Li (Insn.reg_t1, drop_gl);
              Asm.I (Insn.Candperm (Insn.reg_t0, Insn.reg_t0, Insn.reg_t1));
              Asm.I (Insn.Csc (Insn.reg_t0, Insn.reg_gp, 24));
              Asm.I Insn.Ebreak ]
        in
        let g = (Loader.find t "victim").Loader.globals_base in
        write_cap t (g + 16) (Loader.heap_cap t);
        t);
    e "import-into-heap" Rules.tmp_import_dangling (fun () ->
        (* the import slot is sealed with the right otype but its range
           lies in the revocable heap: a dangling cross-call target *)
        let t = pair () in
        write_cap t
          (import_slot_addr t "app" 8)
          (seal
             (mem_window t.Loader.heap_base 16)
             ~otype:Switcher_asm.export_otype);
        t);
    (* --- link-* ---------------------------------------------------------- *)
    e "import-unsealed" Rules.link_import_unsealed (fun () ->
        let t = pair () in
        write_cap t (import_slot_addr t "app" 8) (Loader.heap_cap t);
        t);
    e "import-wrong-otype" Rules.link_import_wrong_otype (fun () ->
        let t = pair () in
        let daddr = desc_addr t "lib" "double" in
        let raw = Capability.clear_perms (mem_window daddr 16) [ SD ] in
        write_cap t (import_slot_addr t "app" 8) (seal raw ~otype:2);
        t);
    e "import-slot-out-of-range" Rules.link_import_slot_range (fun () ->
        (* slot 128 is past app's 64-byte globals; the stray descriptor
           lands harmlessly inside lib's (enlarged) globals *)
        Loader.link
          [ app ~code:(Some [ Asm.Label "main"; Asm.I Insn.Ebreak ]) ~slot:128 ();
            lib ~globals_size:256 () ]
          ~boot:("app", "main"));
    e "export-posture-mismatch" Rules.link_export_posture (fun () ->
        let t = pair () in
        let b = Loader.find t "lib" in
        let entry = Asm.label b.Loader.image "double" in
        let s =
          sentry
            (Capability.with_address b.Loader.code_cap entry)
            Otype.Sentry_disable (* declared Interrupts_enabled *)
        in
        write_cap t (desc_addr t "lib" "double") s;
        t);
    e "export-entry-escape" Rules.link_export_entry_escape (fun () ->
        let t = pair () in
        let a = Loader.find t "app" in
        let s =
          sentry
            (Capability.with_address a.Loader.code_cap
               (Asm.label a.Loader.image "main"))
            Otype.Sentry_enable
        in
        write_cap t (desc_addr t "lib" "double") s;
        t);
    e "globals-cap-with-sl" Rules.link_globals_cap (fun () ->
        let t = pair () in
        let b = Loader.find t "lib" in
        write_cap t
          (desc_addr t "lib" "double" + 8)
          (mem_window ~sl:true b.Loader.globals_base 64);
        t);
    e "local-cap-in-globals" Rules.link_local_leak (fun () ->
        let t = pair () in
        let b = Loader.find t "lib" in
        let local =
          Capability.clear_perms (mem_window b.Loader.globals_base 64) [ GL ]
        in
        write_cap t (b.Loader.globals_base + 24) local;
        t);
    e "reserved-otype-reachable" Rules.link_reserved_otype (fun () ->
        let t = pair () in
        let b = Loader.find t "lib" in
        write_cap t
          (b.Loader.globals_base + 24)
          (Capability.with_address Capability.root_sealing 1);
        t);
    e "sr-bearing-export" Rules.link_sr_leak (fun () ->
        let t = pair () in
        let b = Loader.find t "lib" in
        let entry = Asm.label b.Loader.image "double" in
        let c =
          Capability.set_bounds
            (Capability.with_address Capability.root_executable
               b.Loader.image.Asm.origin)
            ~length:(Asm.bytes_size b.Loader.image)
            ~exact:false
        in
        (* SR deliberately retained *)
        let s = sentry (Capability.with_address c entry) Otype.Sentry_enable in
        write_cap t (desc_addr t "lib" "double") s;
        t);
    e "switcher-slot-unsealed" Rules.link_switcher_slot (fun () ->
        let t = pair () in
        let c =
          Capability.clear_perms
            (Capability.set_bounds
               (Capability.with_address Capability.root_executable
                  (Sram.base t.Loader.sram))
               ~length:0x800 ~exact:false)
            [ SR ]
        in
        write_cap t (import_slot_addr t "app" 0) c;
        t);
    e "global-stack-cap" Rules.link_stack_cap (fun () ->
        let t = pair () in
        (* GL retained: a global stack capability could be smuggled across
           compartment boundaries *)
        Machine.set_reg t.Loader.machine Insn.reg_sp
          (mem_window ~sl:true t.Loader.stack_base t.Loader.stack_size);
        t);
    e "heap-overlaps-stack" Rules.link_heap_layout (fun () ->
        let t = pair () in
        { t with Loader.heap_base = t.Loader.stack_base });
    (* --- xflow-* (compositional cross-compartment flow) ------------------- *)
    e "local-escape-across-return" Rules.xflow_local_escape (fun () ->
        (* lib's export hands its caller the (store-local) stack
           capability: fine intra-compartment, a leak across the
           boundary only the summary propagation sees *)
        Loader.link
          [ Compartment.v ~name:"app" ~globals_size:64
              ~exports:[ export "main" ]
              ~imports:[ import "lib" "getlocal" 8 ]
              ((Asm.Label "main" :: call_slot 8) @ [ Asm.I Insn.Ebreak ]);
            Compartment.v ~name:"lib" ~globals_size:64
              ~exports:[ export "getlocal" ]
              [ Asm.Label "getlocal";
                Asm.I (Insn.Cmove (Insn.reg_a0, Insn.reg_sp));
                Asm.Ret ] ]
          ~boot:("app", "main"));
    e "two-hop-escalation" Rules.xflow_escalation (fun () ->
        (* owner exposes its globals capability; relay passes the call
           result through untouched; app — which imports only from
           relay — transitively obtains authority over owner's globals *)
        Loader.link
          [ Compartment.v ~name:"app" ~globals_size:64
              ~exports:[ export "main" ]
              ~imports:[ import "relay" "get" 8 ]
              ((Asm.Label "main" :: call_slot 8) @ [ Asm.I Insn.Ebreak ]);
            Compartment.v ~name:"relay" ~globals_size:64
              ~exports:[ export "get" ]
              ~imports:[ import "owner" "expose" 8 ]
              ([ Asm.Label "get";
                 Asm.I (Insn.Cincaddrimm (Insn.reg_sp, Insn.reg_sp, -16));
                 Asm.I (Insn.Csc (Insn.reg_ra, Insn.reg_sp, 0)) ]
              @ call_slot 8
              @ [ Asm.I (Insn.Clc (Insn.reg_ra, Insn.reg_sp, 0));
                  Asm.I (Insn.Cincaddrimm (Insn.reg_sp, Insn.reg_sp, 16));
                  Asm.Ret ]);
            Compartment.v ~name:"owner" ~globals_size:64
              ~exports:[ export "expose" ]
              [ Asm.Label "expose";
                Asm.I (Insn.Cmove (Insn.reg_a0, Insn.reg_gp));
                Asm.Ret ] ]
          ~boot:("app", "main"));
    e "switcher-window-return" Rules.xflow_sealed_forgery (fun () ->
        (* lib's globals hold a readable window over the switcher's
           private data — the unseal key and trusted stack; its export
           returns it, so sealed-capability forgery is reachable from
           app through the export chain *)
        let t =
          Loader.link
            [ Compartment.v ~name:"app" ~globals_size:64
                ~exports:[ export "main" ]
                ~imports:[ import "lib" "peek" 8 ]
                ((Asm.Label "main" :: call_slot 8) @ [ Asm.I Insn.Ebreak ]);
              Compartment.v ~name:"lib" ~globals_size:64
                ~exports:[ export "peek" ]
                [ Asm.Label "peek";
                  Asm.I (Insn.Clc (Insn.reg_a0, Insn.reg_gp, 24));
                  Asm.Ret ] ]
            ~boot:("app", "main")
        in
        let swdata = t.Loader.machine.Machine.mscratchc in
        let lo = Capability.base swdata in
        write_cap t
          ((Loader.find t "lib").Loader.globals_base + 24)
          (mem_window lo (Capability.top swdata - lo));
        t);
    e "import-return-into-globals" Rules.xflow_import_taint (fun () ->
        (* app parks the unmodified return of its import call in its own
           globals; lib provably returns a tagged capability *)
        Loader.link
          [ Compartment.v ~name:"app" ~globals_size:64
              ~exports:[ export "main" ]
              ~imports:[ import "lib" "give" 8 ]
              ((Asm.Label "main" :: call_slot 8)
              @ [ Asm.I (Insn.Csc (Insn.reg_a0, Insn.reg_gp, 24));
                  Asm.I Insn.Ebreak ]);
            Compartment.v ~name:"lib" ~globals_size:64
              ~exports:[ export "give" ]
              [ Asm.Label "give";
                Asm.I (Insn.Cmove (Insn.reg_a0, Insn.reg_gp));
                Asm.Ret ] ]
          ~boot:("app", "main"));
  ]
