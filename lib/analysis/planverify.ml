(* Plan-soundness verifier: translation validation for the jit
   check-plan optimizer (DESIGN.md §14).

   [Ir.optimize] removes and weakens the architectural capability
   checks of a translated block (Chk_full → Chk_bounds / Chk_align /
   Chk_none) and hoists whole groups behind block-entry guards; until
   now its soundness rested on the dynamic parity gates.  This module
   proves each compiled plan check-equivalent to the all-[Chk_full]
   plan *statically*, by a symbolic forward pass over the instruction
   array that re-derives, independently of the optimizer, what each
   residual check is allowed to assume:

   (a) dominance — a dropped or weakened check must be implied by an
       earlier *justified* check on the same register version with a
       covering footprint.  Facts live in per-register pools and die at
       the next def of the register (they transfer across [Cmove],
       whose result is the identical value, and across nothing else —
       in particular not across [Cincaddrimm], which clears the tag at
       an unrepresentable address);

   (b) guard soundness — a passing pass-2 guard proves tag, unsealed,
       the guard's permission set and in-bounds for the whole span
       [g_lo, g_hi) of the *entry* value of [g_rs1]; it extends to an
       access through a derived value [entry + delta] only when the
       access footprint (in entry coordinates) lies inside the span
       *and* every intermediate address of the derivation chain does
       too (in-bounds ⇒ representable is the codec property pinned by
       the bounds tests, so a covered hop preserves the tag).  Guard
       failure deopts the whole block execution to full checks before
       any covered access retires, so all guard-derived facts are
       conditional on "every guard passed" — which is exactly the only
       path on which the reduced plan runs;

   (c) deferral safety — an op whose PCC/minstret/event epilogue the
       executor defers must not be observable at a trap or side exit:
       it must not read the PC, not touch CSRs/SCRs, not transfer
       control and not enter a trap.  The predicate is re-derived here
       as an exhaustive match over [Insn.t] (no wildcard), so a new
       instruction forces an explicit decision in both places.

   The verdict is [Sound], or [Unsound] with a concrete symbolic
   counterexample — which register assignment passes every earlier
   check yet makes the reference plan trap where the optimized plan
   does not — rendered like an audit finding under the plan-* rules of
   {!Rules.plan_catalogue}.

   Monotonicity (the qcheck property in test_planverify) holds by
   construction: strengthening a [chk] only shrinks what the access
   needs justified, while the facts a justified access establishes are
   the same at every level — so strengthening never flips Sound to
   Unsound. *)

module Insn = Cheriot_isa.Insn
module Ir = Cheriot_isa.Ir
module Machine = Cheriot_isa.Machine
module Decode_cache = Cheriot_isa.Decode_cache

type counterexample = {
  cx_rule : string;  (** a {!Rules.plan_catalogue} id *)
  cx_index : int;  (** op index within the block (= instruction index) *)
  cx_detail : string;  (** the symbolic witness *)
}

type verdict = Sound | Unsound of counterexample

(* (c): ops whose bookkeeping epilogue is architecturally observable
   before the next sync point.  Exhaustive on purpose — adding an
   instruction must force a deferral decision here, independently of
   [Ir.deferrable]. *)
let observable (i : Insn.t) =
  match i with
  | Insn.Auipcc _ -> true (* reads the current PC *)
  | Jal _ | Jalr _ | Branch _ -> true (* control transfer reads/writes PCC *)
  | Csr _ | Cspecialrw _ -> true (* CSR/SCR traffic observes minstret/PCC *)
  | Ecall | Ebreak | Mret | Wfi -> true (* trap/system entry observes all *)
  | Lui _ | Op_imm _ | Op _ | Mul_div _ | Load _ | Store _ | Clc _ | Csc _
  | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _ | Csetboundsexact _
  | Csetboundsimm _ | Crrl _ | Cram _ | Candperm _ | Ccleartag _ | Cmove _
  | Cseal _ | Cunseal _ | Cget _ | Csub _ | Ctestsubset _ | Csetequalexact _ ->
      false

(* Facts proven about one register's *current* value.  [f_fp] footprints
   are (offset, size) windows proven both in-bounds and size-aligned —
   every justified access leaves one behind, whatever its residual
   level: either the level itself checked the property at run time, or
   the justification proved it statically. *)
type rfacts = {
  f_meta : bool;  (* tagged and unsealed *)
  f_ld : bool;  (* LD permission (proven by a retired load) *)
  f_sd : bool;  (* SD permission *)
  f_mc : bool;  (* MC permission *)
  f_fp : (int * int) list;
}

let no_facts = { f_meta = false; f_ld = false; f_sd = false; f_mc = false; f_fp = [] }

let chk_name = function
  | Ir.Chk_full -> "full"
  | Ir.Chk_bounds -> "bounds"
  | Ir.Chk_align -> "align"
  | Ir.Chk_none -> "none"

let pp_insn i = Format.asprintf "%a" Insn.pp i

let access_kind (a : Ir.access) =
  match (a.Ir.a_store, a.Ir.a_cap) with
  | false, false -> "load"
  | true, false -> "store"
  | false, true -> "cap-load"
  | true, true -> "cap-store"

exception Refute of counterexample

let refute cx_rule cx_index cx_detail =
  raise (Refute { cx_rule; cx_index; cx_detail })

(* [verify ~cheri ?defer insns chks guards] proves the plan
   [(chks, guards, defer)] check-equivalent to the unoptimized plan
   for the block [insns].  [defer] defaults to the executor's actual
   deferral classes ([Ir.deferrable]); the seeded-mutant suite passes
   mutated arrays. *)
let verify ~cheri ?defer (insns : Insn.t array) (chks : Ir.chk array)
    (guards : Ir.guard array) =
  let n = Array.length insns in
  if Array.length chks <> n then
    invalid_arg "Planverify.verify: chks length mismatch";
  let defer =
    match defer with Some d -> d | None -> Array.map Ir.deferrable insns
  in
  if Array.length defer <> n then
    invalid_arg "Planverify.verify: defer length mismatch";
  try
    (* (c) deferral safety — independent of the checking mode. *)
    for i = 0 to n - 1 do
      if defer.(i) && observable insns.(i) then
        refute Rules.plan_deferral i
          (Printf.sprintf
             "op %d (%s) has its bookkeeping deferred, but its \
              PCC/minstret/event update is observable before the next sync \
              point — a trap or side exit here replays stale state"
             i (pp_insn insns.(i)))
    done;
    if not cheri then begin
      (* Rv32 accesses are authorized by the DDC, not the cited
         register; no register-version fact can stand in for the DDC
         check, so any weakening is wrong by construction. *)
      Array.iteri
        (fun i c ->
          if c <> Ir.Chk_full then
            refute Rules.plan_rv32_weakened i
              (Printf.sprintf
                 "op %d (%s) runs %s checks in an Rv32 block — the access is \
                  authorized by the DDC, which no register fact covers"
                 i (pp_insn insns.(i)) (chk_name c)))
        chks;
      if Array.length guards > 0 then
        refute Rules.plan_rv32_weakened 0
          "Rv32 plan carries register guards — the DDC, not the cited \
           register, authorizes every access";
      Sound
    end
    else begin
      let facts = Array.make 16 no_facts in
      (* Static origin of each register's current value:
         [Some (root, delta, hops)] = provably [entry(root) + delta],
         derived through hops with the listed cumulative deltas.
         Mirrors the value semantics of [Cmove]/[Cincaddrimm]; it is
         *checked* here against the guard span, not trusted from the
         optimizer. *)
      let origin =
        Array.init 16 (fun r -> if r = 0 then None else Some (r, 0, []))
      in
      let guard_list = Array.to_list guards in
      for i = 0 to n - 1 do
        (match Ir.access_of insns.(i) with
        | Some a ->
            let q = a.Ir.a_rs1 in
            let f = facts.(q) in
            let off = a.Ir.a_off and size = a.Ir.a_size in
            (* Guards whose root matches this access's origin and whose
               span covers every derivation hop: these may vouch for
               the *metadata* of the current value (tag survives each
               covered hop). *)
            let applicable =
              match origin.(q) with
              | None -> []
              | Some (root, delta, hops) ->
                  List.filter_map
                    (fun (g : Ir.guard) ->
                      if
                        g.Ir.g_rs1 = root
                        && List.for_all
                             (fun h -> g.Ir.g_lo <= h && h < g.Ir.g_hi)
                             hops
                      then Some (g, delta)
                      else None)
                    guard_list
            in
            let guard_perm_ok (g : Ir.guard) =
              (if a.Ir.a_store then g.Ir.g_need_sd else g.Ir.g_need_ld)
              && ((not a.Ir.a_cap) || g.Ir.g_need_mc)
            in
            let guard_bounds_ok ((g : Ir.guard), delta) =
              g.Ir.g_lo <= delta + off && delta + off + size <= g.Ir.g_hi
            in
            let pool_meta =
              f.f_meta
              && (if a.Ir.a_store then f.f_sd else f.f_ld)
              && ((not a.Ir.a_cap) || f.f_mc)
            in
            let guard_meta =
              List.exists (fun (g, _) -> guard_perm_ok g) applicable
            in
            let meta_ok = pool_meta || guard_meta in
            let pool_bounds =
              List.exists (fun (o, s) -> o <= off && off + size <= o + s) f.f_fp
            in
            let bounds_ok =
              pool_bounds || List.exists guard_bounds_ok applicable
            in
            (* A proven footprint (o, s) has [addr + o] aligned to s;
               sizes are powers of two, so s >= size gives alignment to
               [size] and a step congruent mod [size] preserves it. *)
            let align_ok =
              List.exists
                (fun (o, s) -> s >= size && (off - o) land (size - 1) = 0)
                f.f_fp
            in
            let where =
              match origin.(q) with
              | Some (root, delta, _) when root <> q || delta <> 0 ->
                  Printf.sprintf "c%d = entry(c%d)%+d" q root delta
              | _ -> Printf.sprintf "c%d" q
            in
            let refute_meta () =
              (* Distinguish the guard that covers the footprint but
                 lacks the permission from the plain missing dominator:
                 the counterexamples differ. *)
              if
                (not pool_meta)
                && (not guard_meta)
                && List.exists guard_bounds_ok applicable
              then
                refute Rules.plan_guard_perms i
                  (Printf.sprintf
                     "op %d (%s): %s of [%d, %d) through %s relies on the \
                      guard over c%d, which never checked the %s permission \
                      — witness: entry capability tagged, unsealed, in \
                      bounds, lacking exactly that permission passes the \
                      guard yet the reference plan traps \
                      Cheri_fault(permit) here"
                     i (pp_insn insns.(i)) (access_kind a) off (off + size)
                     where
                     (match applicable with (g, _) :: _ -> g.Ir.g_rs1 | [] -> q)
                     (if a.Ir.a_store then "SD" else "LD"))
              else
                refute Rules.plan_meta_undominated i
                  (Printf.sprintf
                     "op %d (%s): %s checks on a %s of [%d, %d) through %s, \
                      but no dominating access or covering guard established \
                      tag/seal/permissions for this register version — \
                      witness: an untagged (or sealed, or \
                      permission-lacking) value here passes every earlier \
                      check yet the reference plan traps Cheri_fault"
                     i (pp_insn insns.(i)) (chk_name chks.(i)) (access_kind a)
                     off (off + size) where)
            in
            (match chks.(i) with
            | Ir.Chk_full -> ()
            | Ir.Chk_bounds -> if not meta_ok then refute_meta ()
            | Ir.Chk_align ->
                if not meta_ok then refute_meta ()
                else if not bounds_ok then
                  refute Rules.plan_bounds_uncovered i
                    (Printf.sprintf
                       "op %d (%s): bounds dropped on a %s of [%d, %d) \
                        through %s, outside every proven footprint and \
                        guard span — witness: a capability whose bounds end \
                        inside the footprint passes every earlier check and \
                        each guard yet the reference plan traps Cheri_bounds \
                        here"
                       i (pp_insn insns.(i)) (access_kind a) off (off + size)
                       where)
            | Ir.Chk_none ->
                if not meta_ok then refute_meta ()
                else if not bounds_ok then
                  refute Rules.plan_bounds_uncovered i
                    (Printf.sprintf
                       "op %d (%s): all checks dropped on a %s of [%d, %d) \
                        through %s, but the footprint is outside every \
                        proven range and guard span — witness: bounds ending \
                        inside it make the reference plan trap Cheri_bounds"
                       i (pp_insn insns.(i)) (access_kind a) off (off + size)
                       where)
                else if not align_ok then
                  refute Rules.plan_align_undischarged i
                    (Printf.sprintf
                       "op %d (%s): alignment dropped on a %s of [%d, %d) \
                        through %s with no alignment-compatible dominating \
                        footprint — witness: an address aligned for the \
                        dominator but offset by %d mod %d makes the \
                        reference plan trap misaligned"
                       i (pp_insn insns.(i)) (access_kind a) off (off + size)
                       where off size));
            (* Justified: on every path on which the reduced plan runs
               (all guards passed), this access retires having
               established tag/seal, its permission and its checked
               footprint for the current value of [q].  Register 0 is
               included: c0 is the hardwired null, so the dominating
               access always traps and any later access it justifies is
               unreachable — vacuously sound, and exactly what the
               optimizer's version-pool concludes. *)
            facts.(q) <-
              {
                f_meta = true;
                f_ld = f.f_ld || not a.Ir.a_store;
                f_sd = f.f_sd || a.Ir.a_store;
                f_mc = f.f_mc || a.Ir.a_cap;
                f_fp = (off, size) :: f.f_fp;
              }
        | None -> ());
        let d = Ir.def_of insns.(i) in
        (* Defs of register 0 are discarded by [set_reg]: the value
           stays null, so facts persist and the origin must not
           transfer (a guard on the source would otherwise vouch for
           an access through null). *)
        if d > 0 then begin
          (match insns.(i) with
          | Insn.Cmove (_, rs) ->
              (* The result is the identical value; facts transfer. *)
              facts.(d) <- facts.(rs land 15)
          | _ -> facts.(d) <- no_facts);
          origin.(d) <-
            (match insns.(i) with
            | Insn.Cmove (_, rs) -> origin.(rs land 15)
            | Insn.Cincaddrimm (_, rs, imm) -> (
                match origin.(rs land 15) with
                | Some (root, delta, hops) ->
                    Some (root, delta + imm, (delta + imm) :: hops)
                | None -> None)
            | _ -> None)
        end
      done;
      Sound
    end
  with Refute cx -> Unsound cx

(* --- wiring ------------------------------------------------------------- *)

let verify_block (b : Machine.bentry) chks guards =
  verify ~cheri:(b.Machine.b_mode = Machine.Cheriot) b.Machine.b_insns chks
    guards

(* Compile-time validation mode: a {!Machine.t.jit_validator} that
   accepts exactly the plans this module proves sound.  A rejected plan
   makes [compile_jit] install the all-full plan and bump
   [jit_plans_rejected]. *)
let machine_validator (b : Machine.bentry) chks guards =
  match verify_block b chks guards with Sound -> true | Unsound _ -> false

let install m = m.Machine.jit_validator <- Some machine_validator

(* --- plan collection (the offline gate) --------------------------------- *)

type plan = {
  p_block : Machine.bentry;
  p_chks : Ir.chk array;
  p_guards : Ir.guard array;
}

(* Every (b_start, instruction array) pair once: a block invalidated by
   a store snoop and re-translated identically would otherwise be
   verified (and reported) twice. *)
let dedupe plans =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let key = (p.p_block.Machine.b_start, p.p_block.Machine.b_insns) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    plans

(* [collect ?dispatch ?fuel m] runs [m] under [dispatch] and returns
   every plan compiled along the way, deduplicated, in compile order.
   Collection uses the validator hook — the one point every plan passes
   through at compile time — rather than a cache sweep, because the
   direct-mapped block cache evicts: a block compiled early and evicted
   late would be invisible to a post-run sweep.  Under a non-jit
   dispatch no plan is compiled during the run, so a final sweep
   force-compiles every block still in the translation cache. *)
let collect ?(dispatch = Machine.Dispatch_jit) ?(fuel = 2_000_000)
    (m : Machine.t) =
  let acc = ref [] in
  let saved = m.Machine.jit_validator in
  m.Machine.jit_validator <-
    Some
      (fun b chks guards ->
        acc := { p_block = b; p_chks = chks; p_guards = guards } :: !acc;
        true);
  ignore (Machine.run ~fuel ~dispatch m);
  let bc = m.Machine.bcache in
  Array.iteri
    (fun k hi ->
      if hi <> 0 then begin
        let b = bc.Decode_cache.rc.Decode_cache.payloads.(k) in
        if b.Machine.b_jit = None then ignore (Machine.compile_jit m b)
      end)
    bc.Decode_cache.his;
  m.Machine.jit_validator <- saved;
  dedupe (List.rev !acc)

let verify_plan p = verify_block p.p_block p.p_chks p.p_guards

(* Render a counterexample as an audit finding: the pc is the offending
   instruction's address (op index = guest instruction index). *)
let finding_of ~compartment (p : plan) (cx : counterexample) =
  Rules.v
    ~pc:(p.p_block.Machine.b_start + (4 * cx.cx_index))
    ~compartment cx.cx_rule cx.cx_detail
