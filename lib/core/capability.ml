type t = {
  tag : bool;
  perms : Perm.Set.t;
  otype : Otype.t;
  bounds : Bounds.t;
  addr : int;
  reserved : bool;
}

let mask32 = 0xFFFF_FFFF

let null =
  {
    tag = false;
    perms = Perm.Set.empty;
    otype = Otype.unsealed;
    bounds = Bounds.of_raw_fields ~e:0 ~b:0 ~t:0;
    addr = 0;
    reserved = false;
  }

let root_mem_rw =
  {
    tag = true;
    perms = Perm.Set.of_list [ GL; LD; SD; MC; SL; LM; LG ];
    otype = Otype.unsealed;
    bounds = Bounds.whole_address_space;
    addr = 0;
    reserved = false;
  }

let root_executable =
  {
    tag = true;
    perms = Perm.Set.of_list [ GL; EX; LD; MC; SR; LM; LG ];
    otype = Otype.unsealed;
    bounds = Bounds.whole_address_space;
    addr = 0;
    reserved = false;
  }

let root_sealing =
  {
    tag = true;
    perms = Perm.Set.of_list [ GL; U0; SE; US ];
    otype = Otype.unsealed;
    bounds = Bounds.otype_space;
    addr = 0;
    reserved = false;
  }

let roots = [ root_mem_rw; root_executable; root_sealing ]
let address c = c.addr
let base c = Bounds.base_of c.bounds ~addr:c.addr
let top c = Bounds.top_of c.bounds ~addr:c.addr
let length c = max 0 (top c - base c)
let perms c = c.perms
let has_perm c p = Perm.Set.mem p c.perms
let otype c = c.otype
let is_sealed c = not (Otype.is_unsealed c.otype)
let sentry_kind c = Otype.sentry_of_otype c.otype
let is_sentry c = Option.is_some (sentry_kind c)
let is_global c = has_perm c GL

let in_bounds c ?(size = 1) a =
  Bounds.in_bounds c.bounds ~addr:c.addr ~access:a ~size

let clear_tag c = { c with tag = false }

let with_address c addr =
  let addr = addr land mask32 in
  let ok =
    c.tag && (not (is_sealed c))
    && Bounds.representable c.bounds ~cur:c.addr ~addr
  in
  { c with addr; tag = ok }

let incr_address c off = with_address c (c.addr + off)

let set_bounds c ~length ~exact =
  let b = c.addr in
  let fail = { c with tag = false } in
  if (not c.tag) || is_sealed c then
    (* Still narrow the fields so the untagged result carries the request. *)
    match Bounds.set_bounds ~base:b ~length with
    | Some (bounds, _, _) -> { fail with bounds }
    | None -> fail
  else
    match Bounds.set_bounds ~base:b ~length with
    | None -> fail
    | Some (bounds, b', t') ->
        let cur_base = base c and cur_top = top c in
        let monotonic = b' >= cur_base && t' <= cur_top in
        let exact_ok = (not exact) || (b' = b && t' = b + length) in
        (* The requested region must itself be within the old bounds. *)
        let requested_ok = b >= cur_base && b + length <= cur_top in
        { c with bounds; tag = monotonic && exact_ok && requested_ok }

let and_perms c mask =
  let target = Perm.Set.inter c.perms mask in
  let new_perms = Perm.legalize target in
  let changed = not (Perm.Set.equal new_perms c.perms) in
  let tag = c.tag && not (is_sealed c && changed) in
  { c with perms = new_perms; tag }

let clear_perms c ps =
  let mask = Perm.Set.diff c.perms (Perm.Set.of_list ps) in
  and_perms c mask

let seal c ~key =
  if not key.tag then Error "seal: key untagged"
  else if is_sealed key then Error "seal: key sealed"
  else if not (has_perm key SE) then Error "seal: key lacks SE"
  else if not (in_bounds key key.addr) then Error "seal: otype out of bounds"
  else if not c.tag then Error "seal: target untagged"
  else if is_sealed c then Error "seal: target already sealed"
  else if key.addr < 1 || key.addr > 7 then Error "seal: invalid otype value"
  else
    let space = if has_perm c EX then Otype.Exec else Otype.Data in
    Ok { c with otype = Otype.v space key.addr }

let unseal c ~key =
  if not key.tag then Error "unseal: key untagged"
  else if is_sealed key then Error "unseal: key sealed"
  else if not (has_perm key US) then Error "unseal: key lacks US"
  else if not (in_bounds key key.addr) then
    Error "unseal: otype out of bounds"
  else if not c.tag then Error "unseal: target untagged"
  else
    match c.otype with
    | ot when Otype.is_unsealed ot -> Error "unseal: target not sealed"
    | ot ->
        let space = if has_perm c EX then Otype.Exec else Otype.Data in
        if Otype.space ot <> Some space || Otype.value ot <> key.addr then
          Error "unseal: otype mismatch"
        else
          let c = { c with otype = Otype.unsealed } in
          if has_perm key GL then Ok c else Ok (clear_perms c [ GL ])

let seal_sentry c kind =
  if not c.tag then Error "seal_sentry: untagged"
  else if is_sealed c then Error "seal_sentry: already sealed"
  else if not (has_perm c EX) then Error "seal_sentry: not executable"
  else Ok { c with otype = Otype.sentry_otype kind }

let load_attenuate ~authority c =
  if not c.tag then c
  else
    let c =
      if has_perm authority LG then c
      else { (clear_perms c [ GL; LG ]) with tag = c.tag }
    in
    if has_perm authority LM || is_sealed c then c
    else { (clear_perms c [ LM; SD ]) with tag = c.tag }

let is_subset c ~of_:parent =
  c.tag = parent.tag
  && base c >= base parent
  && top c <= top parent
  && Perm.Set.subset c.perms parent.perms

(* Fig. 1 metadata layout. *)
let to_word c =
  let e, b, t = Bounds.raw_fields c.bounds in
  let p = Perm.encode_exn c.perms in
  let o = Otype.value c.otype in
  let meta =
    ((if c.reserved then 1 else 0) lsl 31)
    lor (p lsl 25) lor (o lsl 22) lor (e lsl 18) lor (b lsl 9) lor t
  in
  Int64.logor
    (Int64.shift_left (Int64.of_int meta) 32)
    (Int64.of_int (c.addr land mask32))

let of_word ~tag w =
  let meta = Int64.to_int (Int64.shift_right_logical w 32) land mask32 in
  let addr = Int64.to_int (Int64.logand w 0xFFFF_FFFFL) in
  let reserved = (meta lsr 31) land 1 = 1 in
  let p = (meta lsr 25) land 0x3f in
  let o = (meta lsr 22) land 0x7 in
  let e = (meta lsr 18) land 0xf in
  let b = (meta lsr 9) land 0x1ff in
  let t = meta land 0x1ff in
  let perms = Perm.decode p in
  let space = if Perm.Set.mem EX perms then Otype.Exec else Otype.Data in
  {
    tag;
    perms;
    otype = Otype.of_bits space o;
    bounds = Bounds.of_raw_fields ~e ~b ~t;
    addr;
    reserved;
  }

let equal a b =
  a.tag = b.tag
  && Perm.Set.equal a.perms b.perms
  && Otype.equal a.otype b.otype
  && Bounds.equal a.bounds b.bounds
  && a.addr = b.addr && a.reserved = b.reserved

let pp fmt c =
  Format.fprintf fmt "%s 0x%08x [0x%08x..0x%09x) %a %a"
    (if c.tag then "cap" else "CAP!")
    c.addr (base c) (top c) Perm.Set.pp c.perms Otype.pp c.otype
