(** The CHERIoT compressed bounds encoding (paper 3.2.3 and Fig. 3).

    Bounds are encoded as a 4-bit exponent [E] and two 9-bit fields [B]
    (base) and [T] (top), interpreted relative to the capability's 32-bit
    address.  Writing [e] for the decoded exponent, the decoded base and
    top are formed by substituting [B] (resp. [T]) at bit [e] of the
    address and zeroing the low [e] bits, with ±1 corrections to the bits
    above whenever the address's middle bits and the fields fall in
    different 2{^ 9+e}-aligned regions:

    {v
      a_top = a[31 : e+9]        a_mid = a[e+8 : e]
      base  = (a_top + cb) ++ B ++ 0^e
      top   = (a_top + ct) ++ T ++ 0^e        (33-bit value)

      a_mid < B ?   T < B ?    cb   ct
         no           no        0    0
         no           yes       0    1
         yes          no       -1   -1
         yes          yes      -1    0
    v}

    Objects up to 511 bytes are always represented exactly; larger objects
    require 2{^ e} alignment.  [E = 0xf] denotes [e = 24] so that root
    capabilities span the whole address space; other values map directly
    (so exponents 15–23 are unrepresentable and round up to 24).  Compared
    with CHERI Concentrate the encoding trades representable range for
    precision: an address that moves outside the representable region
    invalidates the capability, and addresses below the base are never
    representable. *)

type t
(** Encoded bounds: the raw (E, B, T) fields. *)

val exponent : t -> int
(** Decoded exponent [e] (0–14 or 24). *)

val raw_fields : t -> int * int * int
(** [(e_field, b_field, t_field)]: the 4-, 9- and 9-bit raw fields. *)

val of_raw_fields : e:int -> b:int -> t:int -> t
(** Reassemble from raw field values (masked to width). *)

val decode : t -> addr:int -> int * int
(** [decode bounds ~addr] is [(base, top)] for a capability at address
    [addr].  [base] is a 32-bit value, [top] a 33-bit value (may be
    2{^ 32}).  Both are returned as OCaml [int]s. *)

val base_of : t -> addr:int -> int
(** [fst (decode t ~addr)] without building the pair. *)

val top_of : t -> addr:int -> int
(** [snd (decode t ~addr)] without building the pair. *)

val in_bounds : t -> addr:int -> access:int -> size:int -> bool
(** [in_bounds b ~addr ~access ~size]: does [[access, access+size)] fall
    within the bounds decoded at [addr]? *)

val representable : t -> cur:int -> addr:int -> bool
(** Would moving the address from [cur] to [addr] preserve the decoded
    bounds?  If not, the ISA clears the tag. *)

val set_bounds : base:int -> length:int -> (t * int * int) option
(** [set_bounds ~base ~length] encodes the tightest representable bounds
    covering [[base, base+length)], returning [(bounds, base', top')] with
    [base' <= base] and [top' >= base + length], or [None] if the region
    does not fit the address space.  This is the [CSetBounds] rounding
    behaviour. *)

val set_bounds_exact : base:int -> length:int -> t option
(** Like {!set_bounds} but yields [None] when any rounding would occur
    ([CSetBoundsExact] semantics). *)

val crrl : int -> int
(** [crrl len]: Capability Round Representable Length — the smallest
    length >= [len] that can be represented exactly given a suitably
    aligned base ([CRRL] instruction). *)

val cram : int -> int
(** [cram len]: Capability Representable Alignment Mask — the mask to
    [AND] with a base address to align it for an exact [crrl len]-sized
    region ([CRAM] instruction). *)

val whole_address_space : t
(** Bounds covering [[0, 2^32)] — used by the root capabilities. *)

val otype_space : t
(** Bounds covering the 3-bit otype namespace [[0, 8)] — used by the
    sealing root. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
