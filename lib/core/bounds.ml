type t = { e_field : int; b_field : int; t_field : int }

let decode_exp e_field = if e_field = 0xf then 24 else e_field
let exponent b = decode_exp b.e_field
let raw_fields { e_field; b_field; t_field } = (e_field, b_field, t_field)

let of_raw_fields ~e ~b ~t =
  { e_field = e land 0xf; b_field = b land 0x1ff; t_field = t land 0x1ff }

let mask32 = 0xFFFF_FFFF
let mask33 = 0x1_FFFF_FFFF

(* Fig. 3: insert B (resp. T) at bit e of the address, zero the low e
   bits, and correct the bits above by cb (resp. ct) when the address
   middle bits or the top field sit in a different 2^(9+e) region. *)
let decode { e_field; b_field; t_field } ~addr =
  let e = decode_exp e_field in
  let a_top = addr lsr (e + 9) in
  let a_mid = (addr lsr e) land 0x1ff in
  let cb = if a_mid < b_field then -1 else 0 in
  let ct = if t_field < b_field then cb + 1 else cb in
  let base = (((a_top + cb) lsl 9) lor b_field) lsl e in
  let top = (((a_top + ct) lsl 9) lor t_field) lsl e in
  (base land mask32, top land mask33)

(* Single-ended [decode] without the result pair, for callers that need
   only one end of the region (capability base/top accessors). *)
let base_of { e_field; b_field; t_field = _ } ~addr =
  let e = decode_exp e_field in
  let a_top = addr lsr (e + 9) in
  let a_mid = (addr lsr e) land 0x1ff in
  let cb = if a_mid < b_field then -1 else 0 in
  (((a_top + cb) lsl 9) lor b_field) lsl e land mask32

let top_of { e_field; b_field; t_field } ~addr =
  let e = decode_exp e_field in
  let a_top = addr lsr (e + 9) in
  let a_mid = (addr lsr e) land 0x1ff in
  let cb = if a_mid < b_field then -1 else 0 in
  let ct = if t_field < b_field then cb + 1 else cb in
  (((a_top + ct) lsl 9) lor t_field) lsl e land mask33

(* [decode] inlined without the tuple: these two run on every fetch,
   memory access and PC increment, so they must not allocate. *)
let in_bounds { e_field; b_field; t_field } ~addr ~access ~size =
  let e = decode_exp e_field in
  let a_top = addr lsr (e + 9) in
  let a_mid = (addr lsr e) land 0x1ff in
  let cb = if a_mid < b_field then -1 else 0 in
  let ct = if t_field < b_field then cb + 1 else cb in
  let base = (((a_top + cb) lsl 9) lor b_field) lsl e land mask32 in
  access >= base
  &&
  let top = (((a_top + ct) lsl 9) lor t_field) lsl e land mask33 in
  access + size <= top

let representable { e_field; b_field; t_field } ~cur ~addr =
  addr land mask32 = addr
  &&
  let e = decode_exp e_field in
  let at1 = cur lsr (e + 9) and at2 = addr lsr (e + 9) in
  let cb1 = if (cur lsr e) land 0x1ff < b_field then -1 else 0 in
  let cb2 = if (addr lsr e) land 0x1ff < b_field then -1 else 0 in
  (* Same 2^(9+e) region and same borrow: decodes are equal without
     computing them — the common case for a PC or pointer increment. *)
  (at1 = at2 && cb1 = cb2)
  ||
  let d = if t_field < b_field then 1 else 0 in
  (((at1 + cb1) lsl 9) lor b_field) lsl e land mask32
  = (((at2 + cb2) lsl 9) lor b_field) lsl e land mask32
  && (((at1 + cb1 + d) lsl 9) lor t_field) lsl e land mask33
     = (((at2 + cb2 + d) lsl 9) lor t_field) lsl e land mask33

(* Exponents 15..23 are not encodable (E = 0xf means 24), so the search
   jumps straight from 14 to 24. *)
let rec find_exponent ~base ~length e =
  if e > 24 then None
  else if e > 14 && e < 24 then find_exponent ~base ~length 24
  else
    let align = 1 lsl e in
    let b' = base land lnot (align - 1) in
    let t' = (base + length + align - 1) land lnot (align - 1) in
    if t' - b' <= 0x1ff lsl e then Some (e, b', t')
    else find_exponent ~base ~length (e + 1)

let set_bounds ~base ~length =
  if base < 0 || length < 0 || base + length > 0x1_0000_0000 then None
  else
    match find_exponent ~base ~length 0 with
    | None -> None
    | Some (e, b', t') ->
        let bounds =
          {
            e_field = (if e = 24 then 0xf else e);
            b_field = (b' lsr e) land 0x1ff;
            t_field = (t' lsr e) land 0x1ff;
          }
        in
        (* Defensive check that the fields decode back to the rounded
           region; this is an invariant of the search above. *)
        let db, dt = decode bounds ~addr:base in
        if db = b' && dt = t' then Some (bounds, b', t') else None

let set_bounds_exact ~base ~length =
  match set_bounds ~base ~length with
  | Some (bounds, b', t') when b' = base && t' = base + length -> Some bounds
  | Some _ | None -> None

let rec crrl_from len e =
  if e > 24 then 0
  else if e > 14 && e < 24 then crrl_from len 24
  else
    let align = 1 lsl e in
    let rounded = (len + align - 1) land lnot (align - 1) in
    if rounded <= 0x1ff lsl e then rounded else crrl_from len (e + 1)

let crrl len = if len <= 511 then len else crrl_from len 0

let rec cram_exp len e =
  if e > 24 then 24
  else if e > 14 && e < 24 then cram_exp len 24
  else
    let align = 1 lsl e in
    let rounded = (len + align - 1) land lnot (align - 1) in
    if rounded <= 0x1ff lsl e then e else cram_exp len (e + 1)

let cram len =
  if len <= 511 then mask32 else lnot ((1 lsl cram_exp len 0) - 1) land mask32

let whole_address_space = { e_field = 0xf; b_field = 0; t_field = 0x100 }
let otype_space = { e_field = 0; b_field = 0; t_field = 8 }

let equal a b =
  a.e_field = b.e_field && a.b_field = b.b_field && a.t_field = b.t_field

let pp fmt b =
  Format.fprintf fmt "E=%d B=0x%x T=0x%x" b.e_field b.b_field b.t_field
