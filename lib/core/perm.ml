type t = GL | LD | SD | MC | SL | LG | LM | EX | SR | SE | US | U0

let all = [ GL; LG; LM; SD; SL; LD; MC; EX; SR; SE; US; U0 ]

let to_string = function
  | GL -> "GL"
  | LD -> "LD"
  | SD -> "SD"
  | MC -> "MC"
  | SL -> "SL"
  | LG -> "LG"
  | LM -> "LM"
  | EX -> "EX"
  | SR -> "SR"
  | SE -> "SE"
  | US -> "US"
  | U0 -> "U0"

let pp fmt p = Format.pp_print_string fmt (to_string p)

(* Architectural bit positions.  GL, LG, LM and SD occupy the lowest bits
   so that single-compressed-instruction masks can clear them (3.2.1). *)
let arch_bit = function
  | GL -> 0
  | LG -> 1
  | LM -> 2
  | SD -> 3
  | SL -> 4
  | LD -> 5
  | MC -> 6
  | EX -> 7
  | SR -> 8
  | SE -> 9
  | US -> 10
  | U0 -> 11

module Set = struct
  type nonrec t = int

  let empty = 0
  let add p s = s lor (1 lsl arch_bit p)
  let mem p s = s land (1 lsl arch_bit p) <> 0
  let remove p s = s land lnot (1 lsl arch_bit p)
  let of_list ps = List.fold_left (fun s p -> add p s) empty ps
  let to_list s = List.filter (fun p -> mem p s) all
  let union = ( lor )
  let inter = ( land )
  let diff a b = a land lnot b
  let subset a b = a land b = a
  let equal = Int.equal
  let cardinal s = List.length (to_list s)

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         pp)
      (to_list s)

  let to_arch_bits s = s
  let of_arch_bits bits = bits land 0xfff
end

type format =
  | Mem_cap_rw
  | Mem_cap_ro
  | Mem_cap_wo
  | Mem_no_cap
  | Executable
  | Sealing

let bit n v = (v lsr n) land 1 = 1

(* Fig. 2, top to bottom.  Bit 5 is always GL. *)
let decode bits =
  let s = if bit 5 bits then Set.of_list [ GL ] else Set.empty in
  if bit 4 bits then
    if bit 3 bits then
      (* GL 1 1 SL LM LG : mem-cap-rw, implies LD MC SD *)
      let s = Set.union s (Set.of_list [ LD; MC; SD ]) in
      let s = if bit 2 bits then Set.add SL s else s in
      let s = if bit 1 bits then Set.add LM s else s in
      if bit 0 bits then Set.add LG s else s
    else if bit 2 bits then
      (* GL 1 0 1 LM LG : mem-cap-ro, implies LD MC *)
      let s = Set.union s (Set.of_list [ LD; MC ]) in
      let s = if bit 1 bits then Set.add LM s else s in
      if bit 0 bits then Set.add LG s else s
    else if (not (bit 1 bits)) && not (bit 0 bits) then
      (* GL 1 0 0 0 0 : mem-cap-wo, implies SD MC *)
      Set.union s (Set.of_list [ SD; MC ])
    else
      (* GL 1 0 0 LD SD : mem-no-cap *)
      let s = if bit 1 bits then Set.add LD s else s in
      if bit 0 bits then Set.add SD s else s
  else if bit 3 bits then
    (* GL 0 1 SR LM LG : executable, implies EX LD MC *)
    let s = Set.union s (Set.of_list [ EX; LD; MC ]) in
    let s = if bit 2 bits then Set.add SR s else s in
    let s = if bit 1 bits then Set.add LM s else s in
    if bit 0 bits then Set.add LG s else s
  else
    (* GL 0 0 U0 SE US : sealing *)
    let s = if bit 2 bits then Set.add U0 s else s in
    let s = if bit 1 bits then Set.add SE s else s in
    if bit 0 bits then Set.add US s else s

(* Per-format description: (implied, optional).  A set s is represented by
   a format iff implied ⊆ s and s ⊆ implied ∪ optional ∪ {GL}. *)
let format_spec = function
  | Mem_cap_rw -> (Set.of_list [ LD; MC; SD ], Set.of_list [ SL; LM; LG ])
  | Mem_cap_ro -> (Set.of_list [ LD; MC ], Set.of_list [ LM; LG ])
  | Mem_cap_wo -> (Set.of_list [ SD; MC ], Set.empty)
  | Mem_no_cap -> (Set.empty, Set.of_list [ LD; SD ])
  | Executable -> (Set.of_list [ EX; LD; MC ], Set.of_list [ SR; LM; LG ])
  | Sealing -> (Set.empty, Set.of_list [ U0; SE; US ])

let formats =
  [ Mem_cap_rw; Mem_cap_ro; Mem_cap_wo; Mem_no_cap; Executable; Sealing ]

let representable_in fmt s =
  let implied, optional = format_spec fmt in
  let expressible = Set.add GL (Set.union implied optional) in
  Set.subset implied s && Set.subset s expressible
  &&
  (* mem-cap-wo is the all-optional-zero point of the mem-no-cap shape;
     mem-no-cap must encode at least one of LD/SD to stay distinct. *)
  match fmt with
  | Mem_no_cap -> Set.mem LD s || Set.mem SD s
  | Mem_cap_rw | Mem_cap_ro | Mem_cap_wo | Executable | Sealing -> true

let format_of s = List.find_opt (fun fmt -> representable_in fmt s) formats

let encode s =
  match format_of s with
  | None -> None
  | Some fmt ->
      let gl = if Set.mem GL s then 1 lsl 5 else 0 in
      let b cond n = if cond then 1 lsl n else 0 in
      let bits =
        match fmt with
        | Mem_cap_rw ->
            (1 lsl 4) lor (1 lsl 3)
            lor b (Set.mem SL s) 2
            lor b (Set.mem LM s) 1
            lor b (Set.mem LG s) 0
        | Mem_cap_ro ->
            (1 lsl 4) lor (1 lsl 2)
            lor b (Set.mem LM s) 1
            lor b (Set.mem LG s) 0
        | Mem_cap_wo -> 1 lsl 4
        | Mem_no_cap ->
            (1 lsl 4) lor b (Set.mem LD s) 1 lor b (Set.mem SD s) 0
        | Executable ->
            (1 lsl 3)
            lor b (Set.mem SR s) 2
            lor b (Set.mem LM s) 1
            lor b (Set.mem LG s) 0
        | Sealing ->
            b (Set.mem U0 s) 2 lor b (Set.mem SE s) 1 lor b (Set.mem US s) 0
      in
      Some (gl lor bits)

(* The largest representable subset of s.  Each candidate format whose
   implied permissions are within s contributes implied ∪ (optional ∩ s);
   we keep the candidate with the most permissions.  Ties are broken by
   format order, which prefers more capable memory formats. *)
let legalize s =
  let candidate fmt =
    let implied, optional = format_spec fmt in
    if not (Set.subset implied s) then None
    else
      let kept = Set.union implied (Set.inter optional s) in
      let kept = if Set.mem GL s then Set.add GL kept else kept in
      if representable_in fmt kept then Some kept else None
  in
  let best acc fmt =
    match candidate fmt with
    | None -> acc
    | Some c -> if Set.cardinal c > Set.cardinal acc then c else acc
  in
  List.fold_left best Set.empty formats

let encode_exn s =
  match encode (legalize s) with
  | Some bits -> bits
  | None -> assert false

(* [encode]/[encode_exn] run on every capability store ([to_word] in the
   emulator's CSC path), and the format search above is a list walk with
   set algebra per candidate.  A set is 12 bits, so memoize both as
   4096-entry tables; results are identical by construction. *)
let encode_slow = encode
let encode_exn_slow = encode_exn

let encode_table =
  Array.init 4096 (fun s -> match encode_slow s with Some b -> b | None -> -1)

let encode_exn_table =
  Array.init 4096 (fun s -> try encode_exn_slow s with Assert_failure _ -> -1)

let encode s =
  let b = encode_table.(s land 0xfff) in
  if b < 0 then None else Some b

let encode_exn s =
  let b = encode_exn_table.(s land 0xfff) in
  if b >= 0 then b else encode_exn_slow s
