(** Decoded-instruction cache for the emulator's fetch/decode hot path.

    Every workload funnels through [Machine.step], which re-reads and
    re-decodes the 32-bit instruction word at the PC on every retired
    instruction.  This module memoizes that work: a direct-mapped cache
    keyed by the {e physical} PC, mapping each instruction address to an
    arbitrary pre-decoded payload (the machine stores the decoded
    [Insn.t]; nothing here depends on the payload type).

    Correctness protocol (kept honest by [test/test_differential.ml]):

    - Entries are keyed by the full PC, so a hit can only ever return the
      payload decoded for exactly that address.
    - Stores must {e snoop}: the machine registers
      {!invalidate_granule} on the bus's store-snoop hook, so any store —
      integer or capability, from the CPU or a loader writing through the
      bus — kills the (at most two) cached words in the written 8-byte
      granule before the next fetch can hit on them.  Self-modifying code
      therefore re-decodes.
    - Writers that bypass the bus (e.g. [Asm.load] blitting straight into
      SRAM) must call {!flush}; [Machine.flush_decode_cache] exposes it.

    The cache is purely a performance structure: it never changes
    architectural behaviour, only skips the bus read and decode. *)

type 'a t = {
  tags : int array;  (** full PC of the cached word per slot; -1 = empty *)
  payloads : 'a array;
  mask : int;
  dummy : 'a;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}
(** The representation is exposed so [Machine]'s per-instruction fetch
    can probe without function-call overhead; use the accessors below
    everywhere else.  Invariant: [Array.length tags = mask + 1] and
    every index produced by [slot] is in range. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** entries killed by store snoops *)
  flushes : int;  (** whole-cache flushes *)
  chain_hits : int;
      (** block transfers that followed a direct chained link, skipping
          the probe and the ticket re-check (ranged caches only) *)
  chain_unlinks : int;
      (** previously linked edges found stale (epoch mismatch) at
          traversal time *)
  superblocks_formed : int;  (** hot-path re-translations installed *)
  side_exits : int;
      (** taken interior branches that exited a superblock back into the
          normal dispatch loop *)
}

val create : ?size_log2:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty cache with [2^size_log2] entries
    (default 11, i.e. 2048 words / 8 KiB of code coverage).  [dummy] is
    stored in empty payload slots and never returned by a hit. *)

val entries : 'a t -> int

(** {1 Hot-path access}

    The lookup is split so the caller holds the slot index across
    probe/fill without recomputing it. *)

val slot : 'a t -> int -> int
(** [slot t pc]: the direct-mapped index of an instruction address. *)

val probe : 'a t -> slot:int -> pc:int -> bool
(** Does the slot hold the decode of [pc]?  Counts a hit or a miss. *)

val payload : 'a t -> int -> 'a
(** The payload at a slot; meaningful only after a successful probe. *)

val fill : 'a t -> slot:int -> pc:int -> 'a -> unit
(** Install the decode of [pc], evicting whatever the slot held. *)

val lookup : 'a t -> int -> 'a option
(** [probe] + [payload] in one call (convenience for tests). *)

(** {1 Invalidation} *)

val invalidate_granule : 'a t -> int -> unit
(** [invalidate_granule t addr] kills any entry for the two instruction
    words in the 8-byte granule containing [addr] — the signature of the
    bus store snoop (which reports granule-aligned addresses). *)

val flush : 'a t -> unit
(** Drop every entry (loader rewrote code behind the bus's back). *)

(** {1 Ranged entries — the basic-block layer}

    A basic block translated at PC [p] covers the byte span of every
    instruction it holds, so a store anywhere in that span must kill it
    — not just a store to the granule of [p].  A [ranged] cache pairs
    each slot with its span and turns the bus store snoop into a
    bounded probe: a store granule can only intersect blocks whose
    start PC lies within [max_span] bytes of it, so {!rkill_store}
    probes those few candidate slots and nothing else.  A monotone window over all
    live spans filters the common case (data-region stores) down to two
    integer compares. *)

type 'a ranged = {
  rc : 'a t;  (** the underlying direct-mapped cache, keyed by start PC *)
  los : int array;  (** per-slot span start (bytes, inclusive) *)
  his : int array;  (** per-slot span end (exclusive); 0 = empty *)
  max_span : int;
  mutable span_lo : int;  (** union window over live spans *)
  mutable span_hi : int;
  mutable chain_epoch : int;
      (** global link-validity epoch: chained block-to-block edges
          record it at link time and are only followed while it still
          matches; {!rkill}, {!rflush} and superblock installation bump
          it, unlinking every edge in O(1) *)
  mutable chain_hits : int;
  mutable chain_unlinks : int;
  mutable superblocks_formed : int;
  mutable side_exits : int;
}
(** Exposed, like {!t}, for the machine's hand-inlined hot-path probe. *)

val chain_epoch : 'a ranged -> int
val bump_chain_epoch : 'a ranged -> unit
(** Invalidate every chained edge in O(1) (used by the machine when a
    translation is replaced wholesale, e.g. superblock installation). *)

val ranged : ?size_log2:int -> max_span:int -> dummy:'a -> unit -> 'a ranged
(** [max_span] is the largest [hi - lo] any entry may cover (a positive
    multiple of 4); it bounds the store-snoop probe count. *)

val rfill : 'a ranged -> slot:int -> pc:int -> lo:int -> hi:int -> 'a -> unit
val rkill : 'a ranged -> int -> unit
(** Kill one slot (counts an invalidation if it was live). *)

val rkill_store : 'a ranged -> int -> unit
(** [rkill_store t addr] kills every entry whose span intersects the
    8-byte granule containing [addr] — the store-snoop hook. *)

val rflush : 'a ranged -> unit

(** {1 Accounting} *)

val stats : 'a t -> stats
(** Plain-cache counters; the chain/superblock fields are always 0. *)

val rstats : 'a ranged -> stats
(** Counters of the underlying cache plus the chain/superblock counters
    kept at the ranged layer. *)

val reset_stats : 'a t -> unit
