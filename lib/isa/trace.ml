(** Execution tracing: single-step a machine and render each retired
    instruction with its disassembly and effects — the simulator's
    equivalent of a waveform viewer, used by [bin/cheriot_sim]. *)

open Cheriot_core

type entry = {
  tr_index : int;
  tr_pc : int;
  tr_insn : Insn.t option;
  tr_result : Machine.result;
  tr_cycles : int;  (** cumulative, if a perf harness drives the clock *)
  tr_mark : int;
      (** control-flow mark ([Machine.mark_chained] /
          [Machine.mark_side_exit]); 0 on non-chained dispatch paths *)
}

let pp_result fmt = function
  | Machine.Step_ok -> ()
  | Machine.Step_trap c -> Format.fprintf fmt "  !! trap: %a" Machine.pp_cause c
  | Machine.Step_waiting -> Format.fprintf fmt "  (wfi)"
  | Machine.Step_halted -> Format.fprintf fmt "  == halted =="
  | Machine.Step_double_fault -> Format.fprintf fmt "  ** double fault **"

(* Chained transfers and superblock side exits render distinctly so a
   chained trace can be eyeballed against a per-step one: the
   instruction stream is identical, only the annotations differ. *)
let pp_mark fmt m =
  if m = Machine.mark_chained then Format.fprintf fmt "  [chain]"
  else if m = Machine.mark_side_exit then Format.fprintf fmt "  [side-exit]"
  else if m = Machine.mark_jit then Format.fprintf fmt "  [jit]"
  else if m = Machine.mark_opt_side_exit then
    Format.fprintf fmt "  [opt-side-exit]"

let pp_entry fmt e =
  (match e.tr_insn with
  | Some i -> Format.fprintf fmt "%8d  %8d  0x%08x  %a" e.tr_index e.tr_cycles e.tr_pc Insn.pp i
  | None -> Format.fprintf fmt "%8d  %8d  0x%08x  <no retire>" e.tr_index e.tr_cycles e.tr_pc);
  pp_mark fmt e.tr_mark;
  pp_result fmt e.tr_result

(** Step [m] up to [fuel] instructions, calling [f] per retired
    instruction with a trace entry.  Returns the final result and step
    count.  [dispatch] picks the execution machinery; the block and
    chain paths emit one entry per instruction of each executed round
    (from the machine's retirement ring), so the rendered trace is the
    same stream the reference path produces — chained transfers and
    superblock side exits carry a [tr_mark]. *)
let run ?(fuel = 1_000_000) ?(dispatch = Machine.Dispatch_ref) m ~f =
  match dispatch with
  | Machine.Dispatch_ref | Machine.Dispatch_cached ->
      let step =
        match dispatch with
        | Machine.Dispatch_cached -> Machine.step_fast
        | _ -> Machine.step
      in
      let rec go i =
        if i >= fuel then (Machine.Step_ok, i)
        else begin
          let pc = Capability.address m.Machine.pcc in
          let r = step m in
          f
            {
              tr_index = i;
              tr_pc = pc;
              tr_insn = m.Machine.last_event.Machine.ev_insn;
              tr_result = r;
              tr_cycles = m.Machine.mcycle;
              tr_mark = 0;
            };
          match r with
          | Machine.Step_ok | Machine.Step_trap _ -> go (i + 1)
          | Machine.Step_waiting | Machine.Step_halted
          | Machine.Step_double_fault ->
              (r, i + 1)
        end
      in
      go 0
  | Machine.Dispatch_block | Machine.Dispatch_chain | Machine.Dispatch_jit ->
      let round =
        match dispatch with
        | Machine.Dispatch_chain -> Machine.step_chain
        | Machine.Dispatch_jit -> Machine.step_jit
        | _ -> Machine.step_block
      in
      let rec go i =
        if i >= fuel then (Machine.Step_ok, i)
        else begin
          let pc = Capability.address m.Machine.pcc in
          let r = round m in
          let n = m.Machine.block_ev_n in
          let i =
            if n = 0 then begin
              (* a round that retired nothing (WFI idle) *)
              f
                {
                  tr_index = i;
                  tr_pc = pc;
                  tr_insn = None;
                  tr_result = r;
                  tr_cycles = m.Machine.mcycle;
                  tr_mark = 0;
                };
              i + 1
            end
            else begin
              for k = 0 to n - 1 do
                f
                  {
                    tr_index = i + k;
                    tr_pc = m.Machine.block_pcs.(k);
                    tr_insn = m.Machine.block_events.(k).Machine.ev_insn;
                    (* intermediate instructions of a round all retired
                       normally; only the round's last entry carries the
                       round result *)
                    tr_result = (if k = n - 1 then r else Machine.Step_ok);
                    tr_cycles = m.Machine.mcycle;
                    tr_mark = m.Machine.block_marks.(k);
                  }
              done;
              i + n
            end
          in
          match r with
          | Machine.Step_ok | Machine.Step_trap _ -> go i
          | Machine.Step_waiting | Machine.Step_halted
          | Machine.Step_double_fault ->
              (r, i)
        end
      in
      go 0
