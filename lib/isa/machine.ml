open Cheriot_core
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits

type mode = Cheriot | Rv32

type cheri_cause =
  | Cheri_bounds
  | Cheri_tag
  | Cheri_seal
  | Cheri_permit_execute
  | Cheri_permit_load
  | Cheri_permit_store
  | Cheri_permit_load_cap
  | Cheri_permit_store_cap
  | Cheri_permit_store_local
  | Cheri_permit_access_system_registers

type cause =
  | Illegal_instruction
  | Breakpoint
  | Load_misaligned
  | Store_misaligned
  | Load_access_fault
  | Store_access_fault
  | Ecall_m
  | Cheri_fault of cheri_cause * int
  | Interrupt_timer
  | Interrupt_external

let cheri_cause_code = function
  | Cheri_bounds -> 0x01
  | Cheri_tag -> 0x02
  | Cheri_seal -> 0x03
  | Cheri_permit_execute -> 0x11
  | Cheri_permit_load -> 0x12
  | Cheri_permit_store -> 0x13
  | Cheri_permit_load_cap -> 0x14
  | Cheri_permit_store_cap -> 0x15
  | Cheri_permit_store_local -> 0x16
  | Cheri_permit_access_system_registers -> 0x18

let pp_cheri_cause fmt c =
  Format.pp_print_string fmt
    (match c with
    | Cheri_bounds -> "bounds"
    | Cheri_tag -> "tag"
    | Cheri_seal -> "seal"
    | Cheri_permit_execute -> "permit-execute"
    | Cheri_permit_load -> "permit-load"
    | Cheri_permit_store -> "permit-store"
    | Cheri_permit_load_cap -> "permit-load-cap"
    | Cheri_permit_store_cap -> "permit-store-cap"
    | Cheri_permit_store_local -> "permit-store-local"
    | Cheri_permit_access_system_registers -> "permit-access-system-registers")

let pp_cause fmt = function
  | Illegal_instruction -> Format.pp_print_string fmt "illegal instruction"
  | Breakpoint -> Format.pp_print_string fmt "breakpoint"
  | Load_misaligned -> Format.pp_print_string fmt "load misaligned"
  | Store_misaligned -> Format.pp_print_string fmt "store misaligned"
  | Load_access_fault -> Format.pp_print_string fmt "load access fault"
  | Store_access_fault -> Format.pp_print_string fmt "store access fault"
  | Ecall_m -> Format.pp_print_string fmt "ecall"
  | Cheri_fault (c, r) ->
      Format.fprintf fmt "CHERI fault: %a (reg %d)" pp_cheri_cause c r
  | Interrupt_timer -> Format.pp_print_string fmt "timer interrupt"
  | Interrupt_external -> Format.pp_print_string fmt "external interrupt"

let mcause_of = function
  | Illegal_instruction -> 2
  | Breakpoint -> 3
  | Load_misaligned -> 4
  | Load_access_fault -> 5
  | Store_misaligned -> 6
  | Store_access_fault -> 7
  | Ecall_m -> 11
  | Cheri_fault _ -> 28
  | Interrupt_timer -> 0x8000_0000 lor 7
  | Interrupt_external -> 0x8000_0000 lor 11

type event = {
  (* mutable so the per-step hot path can update one record in place
     instead of allocating a fresh one every instruction *)
  mutable ev_insn : Insn.t option;
  mutable ev_taken_branch : bool;
  mutable ev_mem_bytes : int;
  mutable ev_is_cap_mem : bool;
  mutable ev_is_store : bool;
  mutable ev_trap : cause option;
}

let no_event =
  {
    ev_insn = None;
    ev_taken_branch = false;
    ev_mem_bytes = 0;
    ev_is_cap_mem = false;
    ev_is_store = false;
    ev_trap = None;
  }

type result =
  | Step_ok
  | Step_trap of cause
  | Step_waiting
  | Step_halted
  | Step_double_fault

type t = {
  regs : Capability.t array;
  mutable pcc : Capability.t;
  bus : Bus.t;
  mutable mode : mode;
  mutable ddc : Capability.t;
  mutable load_filter : bool;
  mutable mie : bool;
  mutable mpie : bool;
  mutable mcause : int;
  mutable mtval : int;
  mutable mcycle : int;
  mutable minstret : int;
  mutable mshwm : int;
  mutable mshwmb : int;
  mutable mtimecmp : int;
  mutable mtcc : Capability.t;
  mutable mepcc : Capability.t;
  mutable mtdc : Capability.t;
  mutable mscratchc : Capability.t;
  mutable ext_interrupt : bool;
  mutable waiting : bool;
  mutable last_event : event;
  dcache : centry Decode_cache.t;
}

(* A decode-cache entry carries a fetch "ticket": the machine mode and
   the exact PCC under which the fetch-side checks passed at fill time.
   The checks are a pure function of (mode, PCC, pc), so a hit whose
   current PCC equals the ticket can skip them wholesale — same result,
   no bounds decode. *)
and centry = {
  c_insn : Insn.t;
  c_opt : Insn.t option;  (* [Some c_insn], built once at fill so the
                             per-step event update allocates nothing *)
  c_mode : mode;
  c_pcc : Capability.t;
  c_next : Capability.t option;
      (* [Some] of the step-advanced PCC ([next_pcc] at fill time).  The
         PC advance is a pure function of the ticket fields, so a hit
         whose PCC matches the ticket can install this record directly:
         no representability check, no allocation.  [None] only in the
         dummy. *)
}

exception Trap of cause

let create ?(mode = Cheriot) ?(load_filter = true) bus =
  let dcache =
    Decode_cache.create
      ~dummy:
        {
          c_insn = Insn.Ebreak;
          c_opt = Some Insn.Ebreak;
          c_mode = mode;
          c_pcc = Capability.null;
          c_next = None;
        }
      ()
  in
  (* Stores must kill stale decodes: self-modifying code and loader
     patches through the bus re-decode on the next fetch. *)
  Bus.on_store bus (Decode_cache.invalidate_granule dcache);
  {
    regs = Array.make 16 Capability.null;
    pcc = Capability.root_executable;
    bus;
    mode;
    ddc = (if mode = Rv32 then Capability.root_mem_rw else Capability.null);
    load_filter;
    mie = false;
    mpie = false;
    mcause = 0;
    mtval = 0;
    mcycle = 0;
    minstret = 0;
    mshwm = 0;
    mshwmb = 0;
    mtimecmp = 0;
    mtcc = Capability.null;
    mepcc = Capability.null;
    mtdc = Capability.null;
    mscratchc = Capability.null;
    ext_interrupt = false;
    waiting = false;
    last_event = { no_event with ev_insn = None };
    dcache;
  }

(* regs.(0) is initialised to null and [set_reg] never writes it, so the
   zero register needs no special-casing on the read side.  The masked
   index is always in [0, 15], so the bounds check is elided. *)
let reg m r = Array.unsafe_get m.regs (r land 15)

let set_reg m r c =
  let r = r land 15 in
  if r <> 0 then Array.unsafe_set m.regs r c

let reg_int m r = (Array.unsafe_get m.regs (r land 15)).Capability.addr

let mask32 = 0xFFFF_FFFF
let[@inline always] int_cap v = Capability.{ null with addr = v land mask32 }
let[@inline always] set_reg_int m r v = set_reg m r (int_cap v)

let timer_pending m = m.mtimecmp <> 0 && m.mcycle >= m.mtimecmp
let interrupt_pending m = timer_pending m || m.ext_interrupt

let to_signed v = (v lxor 0x8000_0000) - 0x8000_0000

(* --- memory access checks ------------------------------------------- *)

(* Top-level (not a local closure capturing [ridx]) so the check below
   allocates nothing on the no-trap path. *)
let access_fail c ridx = raise (Trap (Cheri_fault (c, ridx)))

let check_access m ~cap ~ridx ~addr ~size ~store ~is_cap =
  ignore m;
  if not cap.Capability.tag then access_fail Cheri_tag ridx;
  if Capability.is_sealed cap then access_fail Cheri_seal ridx;
  if store then begin
    if not (Capability.has_perm cap SD) then access_fail Cheri_permit_store ridx;
    if is_cap && not (Capability.has_perm cap MC) then
      access_fail Cheri_permit_store_cap ridx
  end
  else begin
    if not (Capability.has_perm cap LD) then access_fail Cheri_permit_load ridx;
    if is_cap && not (Capability.has_perm cap MC) then
      access_fail Cheri_permit_load_cap ridx
  end;
  if not (Capability.in_bounds cap ~size addr) then access_fail Cheri_bounds ridx;
  if addr land (size - 1) <> 0 then
    raise (Trap (if store then Store_misaligned else Load_misaligned));
  if addr < 0 || addr > mask32 then
    raise (Trap (if store then Store_access_fault else Load_access_fault))

(* Stack high-water-mark tracking (5.2.1): every store whose address lies
   within [mshwmb, mshwm) lowers the mark. *)
let note_store m addr =
  if addr >= m.mshwmb && addr < m.mshwm then m.mshwm <- addr land lnot 7

(* The effective address always comes from [rs1]'s address field; only
   the authorizing capability differs by mode (the register itself, or
   the implicit DDC).  Computed field-by-field at each call site so no
   intermediate pair is built on the per-access hot path. *)

let do_load m ~ridx ~rs1 ~off ~width ~signed ~rd =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
  check_access m ~cap ~ridx ~addr ~size ~store:false ~is_cap:false;
  let v =
    try Bus.read m.bus ~width:size addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let v =
    if signed then
      match width with
      | B -> (v lxor 0x80) - 0x80
      | H -> (v lxor 0x8000) - 0x8000
      | W -> v
    else v
  in
  set_reg_int m rd v;
  size

let do_store m ~ridx ~rs1 ~off ~width ~rs2 =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
  check_access m ~cap ~ridx ~addr ~size ~store:true ~is_cap:false;
  (try Bus.write m.bus ~width:size addr (reg_int m rs2)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr;
  size

(* The architectural load filter (3.3.2): on every capability load the
   base of the loaded capability indexes the revocation bitmap; a set bit
   means the capability points to freed memory and its tag is stripped
   before register writeback. *)
let load_filter_apply m c =
  if (not m.load_filter) || not c.Capability.tag then c
  else
    match Bus.revbits m.bus with
    | Some rb when Revbits.is_revoked rb (Capability.base c) ->
        Capability.clear_tag c
    | Some _ | None -> c

let do_clc m ~rd ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:false ~is_cap:true;
  let tag, word =
    try Bus.read_cap m.bus addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let loaded = Capability.of_word ~tag word in
  let loaded = Capability.load_attenuate ~authority:cap loaded in
  let loaded = load_filter_apply m loaded in
  set_reg m rd loaded

let do_csc m ~rs2 ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:true ~is_cap:true;
  let value = reg m rs2 in
  if
    value.Capability.tag
    && (not (Capability.is_global value))
    && not (Capability.has_perm cap SL)
  then raise (Trap (Cheri_fault (Cheri_permit_store_local, rs2)));
  (try Bus.write_cap m.bus addr (value.Capability.tag, Capability.to_word value)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr

(* --- CSRs ------------------------------------------------------------ *)

let require_sr m =
  if m.mode = Cheriot && not (Capability.has_perm m.pcc SR) then
    raise (Trap (Cheri_fault (Cheri_permit_access_system_registers, 16)))

let csr_read m n =
  if n = Csr.mstatus then
    ((if m.mie then 1 else 0) lsl Csr.mstatus_mie_bit)
    lor ((if m.mpie then 1 else 0) lsl Csr.mstatus_mpie_bit)
  else if n = Csr.mcause then m.mcause
  else if n = Csr.mtval then m.mtval
  else if n = Csr.mcycle then m.mcycle land mask32
  else if n = Csr.mcycleh then (m.mcycle lsr 32) land mask32
  else if n = Csr.minstret then m.minstret land mask32
  else if n = Csr.mshwm then m.mshwm
  else if n = Csr.mshwmb then m.mshwmb
  else if n = Csr.mtimecmp then m.mtimecmp land mask32
  else raise (Trap Illegal_instruction)

let csr_write m n v =
  let v = v land mask32 in
  if n = Csr.mstatus then begin
    m.mie <- v land (1 lsl Csr.mstatus_mie_bit) <> 0;
    m.mpie <- v land (1 lsl Csr.mstatus_mpie_bit) <> 0
  end
  else if n = Csr.mcause then m.mcause <- v
  else if n = Csr.mtval then m.mtval <- v
  else if n = Csr.mcycle then m.mcycle <- v
  else if n = Csr.minstret then m.minstret <- v
  else if n = Csr.mshwm then m.mshwm <- v
  else if n = Csr.mshwmb then m.mshwmb <- v
  else if n = Csr.mtimecmp then m.mtimecmp <- v
  else raise (Trap Illegal_instruction)

let csr_is_counter n = n = Csr.mcycle || n = Csr.mcycleh || n = Csr.minstret

let do_csr m op rd rs1 n =
  (* Counter reads are unprivileged; everything else needs PCC.SR. *)
  let pure_read = op <> Insn.Csrrw && rs1 = 0 in
  if not (pure_read && csr_is_counter n) then require_sr m;
  let old = csr_read m n in
  (match op with
  | Insn.Csrrw -> csr_write m n (reg_int m rs1)
  | Insn.Csrrs -> if rs1 <> 0 then csr_write m n (old lor reg_int m rs1)
  | Insn.Csrrc ->
      if rs1 <> 0 then csr_write m n (old land lnot (reg_int m rs1)));
  set_reg_int m rd old

let scr_read m = function
  | Insn.MTCC -> m.mtcc
  | MTDC -> m.mtdc
  | MScratchC -> m.mscratchc
  | MEPCC -> m.mepcc

let scr_write m scr c =
  match scr with
  | Insn.MTCC -> m.mtcc <- c
  | MTDC -> m.mtdc <- c
  | MScratchC -> m.mscratchc <- c
  | MEPCC -> m.mepcc <- c

(* --- control flow ----------------------------------------------------- *)

let apply_sentry_posture m = function
  | Otype.Sentry_inherit -> ()
  | Sentry_enable | Sentry_ret_enable -> m.mie <- true
  | Sentry_disable | Sentry_ret_disable -> m.mie <- false

let link_cap m next_addr =
  (* The link register receives a return sentry recording the interrupt
     posture at the call site (3.1.2). *)
  let c = Capability.with_address m.pcc next_addr in
  match
    Capability.seal_sentry c (Otype.return_sentry ~interrupts_enabled:m.mie)
  with
  | Ok sealed -> sealed
  | Error _ -> Capability.clear_tag c

let do_jal m rd off =
  let pc = Capability.address m.pcc in
  let target = (pc + off) land mask32 in
  match m.mode with
  | Rv32 ->
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      if not (Capability.in_bounds m.pcc ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, 16)));
      set_reg m rd (link_cap m (pc + 4));
      (* In-bounds addresses are always representable (the concentrate
         encoding's defining invariant, checked exhaustively by
         test_bounds), and the PCC is tagged and unsealed here — so
         [with_address] would always succeed; skip its redundant bounds
         decode. *)
      m.pcc <- { m.pcc with Capability.addr = target }

let do_jalr m rd rs1 off =
  let pc = Capability.address m.pcc in
  match m.mode with
  | Rv32 ->
      let target = (reg_int m rs1 + off) land mask32 land lnot 1 in
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      let cap = reg m rs1 in
      if not cap.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_tag, rs1)));
      let cap =
        if Capability.is_sealed cap then begin
          match Capability.sentry_kind cap with
          | Some kind when off = 0 ->
              let link = link_cap m (pc + 4) in
              apply_sentry_posture m kind;
              set_reg m rd link;
              Capability.{ cap with otype = Otype.unsealed }
          | Some _ | None -> raise (Trap (Cheri_fault (Cheri_seal, rs1)))
        end
        else begin
          set_reg m rd (link_cap m (pc + 4));
          cap
        end
      in
      if not (Capability.has_perm cap EX) then
        raise (Trap (Cheri_fault (Cheri_permit_execute, rs1)));
      let target = (Capability.address cap + off) land mask32 land lnot 1 in
      if not (Capability.in_bounds cap ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, rs1)));
      (* [cap] is tagged, unsealed and in bounds at [target] here, so
         [with_address] would always succeed (in-bounds implies
         representable); skip its redundant bounds decode. *)
      m.pcc <- { cap with Capability.addr = target }

let[@inline always] alu_exec op a b =
  let open Insn in
  match op with
  | Add -> (a + b) land mask32
  | Sub -> (a - b) land mask32
  | Sll -> (a lsl (b land 31)) land mask32
  | Slt -> if to_signed a < to_signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0
  | Xor -> a lxor b
  | Srl -> a lsr (b land 31)
  | Sra -> (to_signed a asr (b land 31)) land mask32
  | Or -> a lor b
  | And -> a land b

let muldiv_exec op a b =
  let open Insn in
  let sa = to_signed a and sb = to_signed b in
  match op with
  | Mul -> (a * b) land mask32
  | Mulh -> (sa * sb) asr 32 land mask32
  | Mulhsu -> (sa * b) asr 32 land mask32
  | Mulhu -> (a * b) lsr 32 land mask32
  | Div ->
      if sb = 0 then mask32
      else if sa = -0x8000_0000 && sb = -1 then 0x8000_0000
      else to_signed a / to_signed b land mask32 land mask32
  | Divu -> if b = 0 then mask32 else a / b
  | Rem ->
      if sb = 0 then a
      else if sa = -0x8000_0000 && sb = -1 then 0
      else Stdlib.( mod ) sa sb land mask32
  | Remu -> if b = 0 then a else a mod b

let[@inline always] branch_taken cond a b =
  let open Insn in
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> to_signed a < to_signed b
  | Ge -> to_signed a >= to_signed b
  | Ltu -> a < b
  | Geu -> a >= b

(* --- capability instructions ----------------------------------------- *)

let require_tagged m ridx c =
  ignore m;
  if not c.Capability.tag then raise (Trap (Cheri_fault (Cheri_tag, ridx)))

let require_unsealed m ridx c =
  ignore m;
  if Capability.is_sealed c then raise (Trap (Cheri_fault (Cheri_seal, ridx)))

let exec_cap m (i : Insn.t) =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  match i with
  | Cincaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.incr_address (reg m cs1) (reg_int m rs2))
  | Cincaddrimm (cd, cs1, imm) ->
      set_reg m cd (Capability.incr_address (reg m cs1) imm)
  | Csetaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.with_address (reg m cs1) (reg_int m rs2))
  | Csetbounds (cd, cs1, rs2) | Csetboundsimm (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let length =
        match i with
        | Csetboundsimm _ -> rs2
        | _ -> reg_int m rs2
      in
      let r = Capability.set_bounds c ~length ~exact:false in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Csetboundsexact (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let r = Capability.set_bounds c ~length:(reg_int m rs2) ~exact:true in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Crrl (rd, rs1) -> set_reg_int m rd (Bounds.crrl (reg_int m rs1))
  | Cram (rd, rs1) -> set_reg_int m rd (Bounds.cram (reg_int m rs1))
  | Candperm (cd, cs1, rs2) ->
      let mask = Perm.Set.of_arch_bits (reg_int m rs2) in
      set_reg m cd (Capability.and_perms (reg m cs1) mask)
  | Ccleartag (cd, cs1) -> set_reg m cd (Capability.clear_tag (reg m cs1))
  | Cmove (cd, cs1) -> set_reg m cd (reg m cs1)
  | Cseal (cd, cs1, cs2) -> (
      match Capability.seal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cunseal (cd, cs1, cs2) -> (
      match Capability.unseal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cget (g, rd, cs1) ->
      let c = reg m cs1 in
      let v =
        match g with
        | Addr -> Capability.address c
        | Base -> Capability.base c
        | Top -> min (Capability.top c) mask32
        | Len -> min (Capability.length c) mask32
        | Perm -> Perm.Set.to_arch_bits (Capability.perms c)
        | Type -> Otype.value (Capability.otype c)
        | Tag -> if c.Capability.tag then 1 else 0
      in
      set_reg_int m rd v
  | Csub (rd, cs1, cs2) ->
      set_reg_int m rd (reg_int m cs1 - reg_int m cs2)
  | Ctestsubset (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.is_subset (reg m cs2) ~of_:(reg m cs1) then 1 else 0)
  | Csetequalexact (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.equal (reg m cs1) (reg m cs2) then 1 else 0)
  | Cspecialrw (cd, scr, cs1) ->
      require_sr m;
      let old = scr_read m scr in
      if cs1 <> 0 then scr_write m scr (reg m cs1);
      set_reg m cd old
  | _ -> raise (Trap Illegal_instruction)

(* --- trap entry ------------------------------------------------------- *)

let enter_trap m cause =
  m.mcause <- mcause_of cause;
  (m.mtval <-
     (match cause with
     | Cheri_fault (c, r) -> (cheri_cause_code c lsl 5) lor r
     | _ -> 0));
  m.mepcc <- m.pcc;
  m.mpie <- m.mie;
  m.mie <- false;
  if m.mtcc.Capability.tag then begin
    m.pcc <- m.mtcc;
    Step_trap cause
  end
  else Step_double_fault

(* --- fetch/execute ---------------------------------------------------- *)

let fetch_check m pc =
  if m.mode = Cheriot then begin
    if not m.pcc.Capability.tag then
      raise (Trap (Cheri_fault (Cheri_tag, 16)));
    if Capability.is_sealed m.pcc then
      raise (Trap (Cheri_fault (Cheri_seal, 16)));
    if not (Capability.has_perm m.pcc EX) then
      raise (Trap (Cheri_fault (Cheri_permit_execute, 16)));
    if not (Capability.in_bounds m.pcc ~size:4 pc) then
      raise (Trap (Cheri_fault (Cheri_bounds, 16)))
  end;
  if pc land 3 <> 0 then raise (Trap Illegal_instruction)

let fetch_word m pc =
  try Bus.read m.bus ~width:4 pc
  with Bus.Bus_error _ -> raise (Trap Load_access_fault)

let fetch m =
  let pc = Capability.address m.pcc in
  fetch_check m pc;
  fetch_word m pc

(* The reference fetch: re-read and re-decode the word at the PC on
   every step.  [step] uses this path unchanged; it is the observational
   oracle the decoded-instruction cache is differentially tested
   against. *)
let fetch_decode m =
  match Encode.decode (fetch m) with
  | None -> raise (Trap Illegal_instruction)
  | Some insn -> insn

(* The cached fetch: identical PCC/alignment checks (traps must be
   bit-for-bit the same), but on a hit the bus read and decode are
   skipped.  Illegal words are never cached — they trap on the slow path
   every time, which keeps the cache total. *)
(* Is the fill-time ticket still good?  In Rv32 mode the only fetch-side
   check is word alignment, which the full-PC tag match already pins (a
   fill only ever happens after the checks passed).  In CHERIoT mode the
   checks also read the PCC, so the ticket must carry an identical one
   and must itself have been issued under CHERIoT checks. *)
let[@inline always] ticket_valid m e =
  match m.mode with
  | Rv32 -> true
  | Cheriot ->
      e.c_mode = Cheriot
      &&
      let tp = e.c_pcc and cp = m.pcc in
      tp == cp
      || (* [with_address] (the per-step PC advance) copies the record
            but shares the bounds block and keeps the immediate fields,
            so along straight-line execution every compare below is a
            word compare.  A re-derived but identical PCC (e.g. after a
            return) fails the physical bounds compare and merely falls
            back to the full fetch checks — conservative, never wrong.

            Only the fields that [fetch_check] and [next_pcc] read are
            compared.  The ticket passed the checks when issued, so: its
            tag is set (the current one is tested directly), equal
            otypes pin "unsealed", equal perms pin EX, and the address
            needs no compare at all — the cache's full-PC tag match
            already proved the current PCC address equals the fill-time
            one.  [reserved] is compared because the prebuilt [c_next]
            carries it verbatim. *)
      (tp.Capability.bounds == cp.Capability.bounds
      && cp.Capability.tag
      && tp.Capability.perms == cp.Capability.perms
      && tp.Capability.otype == cp.Capability.otype
      && tp.Capability.reserved = cp.Capability.reserved)

(* The step-advanced PCC.  A pure function of the current PCC and mode:
   [Capability.with_address p (pc + 4)] inlined for the CHERIoT case
   (the tag/seal tests almost always succeed right after a fetch and the
   fast-pathed representability check dominates); a plain program
   counter in Rv32 mode. *)
let next_pcc m =
  let p = m.pcc in
  let addr = (p.Capability.addr + 4) land mask32 in
  match m.mode with
  | Cheriot ->
      let ok =
        p.Capability.tag
        && p.Capability.otype == Otype.unsealed
        && Bounds.representable p.Capability.bounds ~cur:p.Capability.addr
             ~addr
      in
      { p with Capability.addr; tag = ok }
  | Rv32 -> { p with Capability.addr }

let next m = m.pcc <- next_pcc m

(* Fall-through PC advance.  The cached dispatch passes the fill-time
   [c_next] when the ticket validated — [next_pcc] depends only on the
   ticket-compared fields, so installing the prebuilt record is
   observationally identical to recomputing it (and costs one store). *)
let advance m nextc =
  match nextc with Some c -> m.pcc <- c | None -> next m

(* The plain-arm epilogue ([advance] + flagless [finish]) as one call —
   most instructions end exactly this way. *)
let advance_finish m nextc opt =
  (match nextc with Some c -> m.pcc <- c | None -> next m);
  m.minstret <- m.minstret + 1;
  let ev = m.last_event in
  ev.ev_insn <- opt;
  ev.ev_taken_branch <- false;
  ev.ev_mem_bytes <- 0;
  ev.ev_is_cap_mem <- false;
  ev.ev_is_store <- false;
  ev.ev_trap <- None;
  Step_ok

let fetch_cached_slow m dc s pc =
  fetch_check m pc;
  match Encode.decode (fetch_word m pc) with
  | None -> raise (Trap Illegal_instruction)
  | Some insn ->
      let e =
        {
          c_insn = insn;
          c_opt = Some insn;
          c_mode = m.mode;
          c_pcc = m.pcc;
          c_next = Some (next_pcc m);
        }
      in
      Decode_cache.fill dc ~slot:s ~pc e;
      e

(* The probe is hand-inlined (the representation is exposed for exactly
   this callsite): one masked index, one tag compare, one ticket check
   on a hit. *)
let fetch_cached m =
  let pc = Capability.address m.pcc in
  let dc = m.dcache in
  let s = (pc lsr 2) land dc.Decode_cache.mask in
  if Array.unsafe_get dc.Decode_cache.tags s = pc then begin
    dc.Decode_cache.hits <- dc.Decode_cache.hits + 1;
    let e = Array.unsafe_get dc.Decode_cache.payloads s in
    if ticket_valid m e then e
    else begin
      (* PCC metadata changed since fill (e.g. entry through a different
         executable capability): re-run the checks, reissue the ticket. *)
      fetch_check m pc;
      let e =
        { e with c_mode = m.mode; c_pcc = m.pcc; c_next = Some (next_pcc m) }
      in
      Decode_cache.fill dc ~slot:s ~pc e;
      e
    end
  end
  else begin
    dc.Decode_cache.misses <- dc.Decode_cache.misses + 1;
    fetch_cached_slow m dc s pc
  end

let finish m ?(taken = false) ?(mem = 0) ?(cap_mem = false) ?(store = false)
    opt =
  m.minstret <- m.minstret + 1;
  let ev = m.last_event in
  ev.ev_insn <- opt;
  ev.ev_taken_branch <- taken;
  ev.ev_mem_bytes <- mem;
  ev.ev_is_cap_mem <- cap_mem;
  ev.ev_is_store <- store;
  ev.ev_trap <- None;
  Step_ok


(* One instruction's semantics, shared verbatim by both dispatch paths:
   the reference interpreter and the cached fast path differ only in how
   [insn] was obtained. *)
let exec m insn opt nextc =
  match insn with
  | Insn.Lui (rd, imm20) ->
      set_reg_int m rd (imm20 lsl 12);
      advance_finish m nextc opt
  | Auipcc (rd, imm20) ->
      let v = (Capability.address m.pcc + (imm20 lsl 12)) land mask32 in
      (match m.mode with
      | Cheriot -> set_reg m rd (Capability.with_address m.pcc v)
      | Rv32 -> set_reg_int m rd v);
      advance_finish m nextc opt
  | Jal (rd, off) ->
      do_jal m rd off;
      finish m ~taken:true opt
  | Jalr (rd, rs1, off) ->
      do_jalr m rd rs1 off;
      finish m ~taken:true opt
  | Branch (cond, rs1, rs2, off) ->
      let taken = branch_taken cond (reg_int m rs1) (reg_int m rs2) in
      if taken then begin
        let pc = Capability.address m.pcc in
        let target = (pc + off) land mask32 in
        if m.mode = Cheriot && not (Capability.in_bounds m.pcc ~size:4 target)
        then raise (Trap (Cheri_fault (Cheri_bounds, 16)));
        (* Bounds just checked (Cheriot) or irrelevant (Rv32): in-bounds
           implies representable, so the plain record update matches
           [with_address] exactly. *)
        m.pcc <- { m.pcc with Capability.addr = target }
      end
      else advance m nextc;
      finish m ~taken opt
  | Load { signed; width; rd; rs1; off } ->
      let bytes = do_load m ~ridx:rs1 ~rs1 ~off ~width ~signed ~rd in
      advance m nextc;
      finish m ~mem:bytes opt
  | Store { width; rs2; rs1; off } ->
      let bytes = do_store m ~ridx:rs1 ~rs1 ~off ~width ~rs2 in
      advance m nextc;
      finish m ~mem:bytes ~store:true opt
  | Clc (rd, rs1, off) ->
      do_clc m ~rd ~rs1 ~off;
      advance m nextc;
      finish m ~mem:8 ~cap_mem:true opt
  | Csc (rs2, rs1, off) ->
      do_csc m ~rs2 ~rs1 ~off;
      advance m nextc;
      finish m ~mem:8 ~cap_mem:true ~store:true opt
  | Op_imm (op, rd, rs1, imm) ->
      set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
      advance_finish m nextc opt
  | Op (op, rd, rs1, rs2) ->
      set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
      advance_finish m nextc opt
  | Mul_div (op, rd, rs1, rs2) ->
      set_reg_int m rd (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
      advance_finish m nextc opt
  | Ecall -> raise (Trap Ecall_m)
  | Ebreak ->
      m.last_event <- { no_event with ev_insn = opt };
      Step_halted
  | Mret ->
      require_sr m;
      let target = m.mepcc in
      let target =
        match Capability.sentry_kind target with
        | Some kind ->
            apply_sentry_posture m kind;
            Capability.{ target with otype = Otype.unsealed }
        | None ->
            m.mie <- m.mpie;
            target
      in
      m.mpie <- true;
      m.pcc <- target;
      finish m ~taken:true opt
  | Wfi ->
      if not (interrupt_pending m) then m.waiting <- true;
      advance m nextc;
      if m.waiting then begin
        m.minstret <- m.minstret + 1;
        m.last_event <- { no_event with ev_insn = opt };
        Step_waiting
      end
      else finish m opt
  | Csr (op, rd, rs1, n) ->
      do_csr m op rd rs1 n;
      advance_finish m nextc opt
  | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _
  | Csetboundsexact _ | Csetboundsimm _ | Crrl _ | Cram _
  | Candperm _ | Ccleartag _ | Cmove _ | Cseal _ | Cunseal _
  | Cget _ | Csub _ | Ctestsubset _ | Csetequalexact _
  | Cspecialrw _ ->
      exec_cap m insn;
      advance_finish m nextc opt

let step_gen m ~cached =
  if m.waiting then
    if interrupt_pending m then m.waiting <- false else ()
  else ();
  if m.waiting then Step_waiting
  else if m.mie && interrupt_pending m then begin
    let cause =
      if timer_pending m then Interrupt_timer else Interrupt_external
    in
    m.last_event <- { no_event with ev_trap = Some cause };
    enter_trap m cause
  end
  else
    try
      if cached then
        let e = fetch_cached m in
        (* Rv32 tickets don't field-compare the PCC, so the prebuilt
           next-PCC is only trusted in CHERIoT mode. *)
        let nextc = match m.mode with Cheriot -> e.c_next | Rv32 -> None in
        exec m e.c_insn e.c_opt nextc
      else
        let insn = fetch_decode m in
        exec m insn (Some insn) None
    with Trap cause ->
      m.last_event <- { no_event with ev_trap = Some cause };
      enter_trap m cause

let step m = step_gen m ~cached:false
let step_fast m = step_gen m ~cached:true

let run ?(fuel = 10_000_000) ?(fast = false) m =
  let step = if fast then step_fast else step in
  let rec go n =
    if n >= fuel then (Step_ok, n)
    else
      match step m with
      | Step_ok | Step_trap _ -> go (n + 1)
      | (Step_waiting | Step_halted | Step_double_fault) as r -> (r, n + 1)
  in
  go 0

(* --- decode cache management ------------------------------------------ *)

let decode_stats m = Decode_cache.stats m.dcache

let flush_decode_cache m = Decode_cache.flush m.dcache

(* --- observational state hash ----------------------------------------- *)

(* A digest of every architecturally visible bit: registers (with tags),
   PCC, SCRs, CSR state, and the full contents + tag bits of every SRAM
   on the bus.  Two runs that agree on this hash and on [minstret] are
   observationally identical — the bench uses it to hold the fast
   dispatch path to the reference interpreter. *)
let state_hash m =
  let buf = Buffer.create 512 in
  let add_cap c =
    Buffer.add_string buf
      (Printf.sprintf "%c%Lx;"
         (if c.Capability.tag then 't' else 'u')
         (Capability.to_word c))
  in
  Array.iter add_cap m.regs;
  add_cap m.pcc;
  add_cap m.ddc;
  add_cap m.mtcc;
  add_cap m.mepcc;
  add_cap m.mtdc;
  add_cap m.mscratchc;
  Buffer.add_string buf
    (Printf.sprintf "%B%B%d/%d/%d/%d/%d/%d/%d/%B%B"
       m.mie m.mpie m.mcause m.mtval m.minstret m.mshwm m.mshwmb m.mtimecmp
       m.mcycle m.ext_interrupt m.waiting);
  List.iter
    (fun s -> Buffer.add_string buf (Cheriot_mem.Sram.digest s))
    (Bus.srams m.bus);
  Digest.to_hex (Digest.string (Buffer.contents buf))
