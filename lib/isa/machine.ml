open Cheriot_core
module Bus = Cheriot_mem.Bus
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits

type mode = Cheriot | Rv32

(** Which fetch/decode machinery drives execution. *)
type dispatch =
  | Dispatch_ref
  | Dispatch_cached
  | Dispatch_block
  | Dispatch_chain
  | Dispatch_jit

type cheri_cause =
  | Cheri_bounds
  | Cheri_tag
  | Cheri_seal
  | Cheri_permit_execute
  | Cheri_permit_load
  | Cheri_permit_store
  | Cheri_permit_load_cap
  | Cheri_permit_store_cap
  | Cheri_permit_store_local
  | Cheri_permit_access_system_registers

type cause =
  | Illegal_instruction
  | Breakpoint
  | Load_misaligned
  | Store_misaligned
  | Load_access_fault
  | Store_access_fault
  | Ecall_m
  | Cheri_fault of cheri_cause * int
  | Interrupt_timer
  | Interrupt_external

let cheri_cause_code = function
  | Cheri_bounds -> 0x01
  | Cheri_tag -> 0x02
  | Cheri_seal -> 0x03
  | Cheri_permit_execute -> 0x11
  | Cheri_permit_load -> 0x12
  | Cheri_permit_store -> 0x13
  | Cheri_permit_load_cap -> 0x14
  | Cheri_permit_store_cap -> 0x15
  | Cheri_permit_store_local -> 0x16
  | Cheri_permit_access_system_registers -> 0x18

let pp_cheri_cause fmt c =
  Format.pp_print_string fmt
    (match c with
    | Cheri_bounds -> "bounds"
    | Cheri_tag -> "tag"
    | Cheri_seal -> "seal"
    | Cheri_permit_execute -> "permit-execute"
    | Cheri_permit_load -> "permit-load"
    | Cheri_permit_store -> "permit-store"
    | Cheri_permit_load_cap -> "permit-load-cap"
    | Cheri_permit_store_cap -> "permit-store-cap"
    | Cheri_permit_store_local -> "permit-store-local"
    | Cheri_permit_access_system_registers -> "permit-access-system-registers")

let pp_cause fmt = function
  | Illegal_instruction -> Format.pp_print_string fmt "illegal instruction"
  | Breakpoint -> Format.pp_print_string fmt "breakpoint"
  | Load_misaligned -> Format.pp_print_string fmt "load misaligned"
  | Store_misaligned -> Format.pp_print_string fmt "store misaligned"
  | Load_access_fault -> Format.pp_print_string fmt "load access fault"
  | Store_access_fault -> Format.pp_print_string fmt "store access fault"
  | Ecall_m -> Format.pp_print_string fmt "ecall"
  | Cheri_fault (c, r) ->
      Format.fprintf fmt "CHERI fault: %a (reg %d)" pp_cheri_cause c r
  | Interrupt_timer -> Format.pp_print_string fmt "timer interrupt"
  | Interrupt_external -> Format.pp_print_string fmt "external interrupt"

let mcause_of = function
  | Illegal_instruction -> 2
  | Breakpoint -> 3
  | Load_misaligned -> 4
  | Load_access_fault -> 5
  | Store_misaligned -> 6
  | Store_access_fault -> 7
  | Ecall_m -> 11
  | Cheri_fault _ -> 28
  | Interrupt_timer -> 0x8000_0000 lor 7
  | Interrupt_external -> 0x8000_0000 lor 11

type event = {
  (* mutable so the per-step hot path can update one record in place
     instead of allocating a fresh one every instruction *)
  mutable ev_insn : Insn.t option;
  mutable ev_taken_branch : bool;
  mutable ev_mem_bytes : int;
  mutable ev_is_cap_mem : bool;
  mutable ev_is_store : bool;
  mutable ev_trap : cause option;
}

let no_event =
  {
    ev_insn = None;
    ev_taken_branch = false;
    ev_mem_bytes = 0;
    ev_is_cap_mem = false;
    ev_is_store = false;
    ev_trap = None;
  }

type result =
  | Step_ok
  | Step_trap of cause
  | Step_waiting
  | Step_halted
  | Step_double_fault

type t = {
  regs : Capability.t array;
  mutable pcc : Capability.t;
  bus : Bus.t;
  mutable mode : mode;
  mutable ddc : Capability.t;
  mutable load_filter : bool;
  mutable mie : bool;
  mutable mpie : bool;
  mutable mcause : int;
  mutable mtval : int;
  mutable mcycle : int;
  mutable minstret : int;
  mutable mshwm : int;
  mutable mshwmb : int;
  mutable mtimecmp : int;
  mutable mtcc : Capability.t;
  mutable mepcc : Capability.t;
  mutable mtdc : Capability.t;
  mutable mscratchc : Capability.t;
  mutable ext_interrupt : bool;
  mutable waiting : bool;
  mutable last_event : event;
  dcache : centry Decode_cache.t;
  bcache : bentry Decode_cache.ranged;
  mutable blocks_filled : int;
  mutable insns_translated : int;  (* sum of fill-time block lengths *)
  mutable block_aborts : int;
      (* blocks abandoned mid-execution because one of their own stores
         invalidated the translation (self-modifying code) *)
  (* Resolved-SRAM window for the allocation-free data fast path:
     in-window scalar accesses go straight to the byte array, skipping
     the bus walk and its exception plumbing.  [fm_limit = 0] marks the
     window invalid (no address satisfies [addr >= base && addr + size
     <= 0]). *)
  mutable fm_sram : Sram.t;
  mutable fm_base : int;
  mutable fm_limit : int;
  (* Per-round retirement ring filled by [step_block]/[step_chain] so
     the perf harness and tracer can charge each retired instruction of
     a block individually: parallel arrays of (copied) events, their
     PCs, and a control-flow mark (see [mark_chained]/[mark_side_exit])
     for trace rendering. *)
  block_events : event array;
  block_pcs : int array;
  block_marks : int array;
  mutable block_ev_n : int;
  mutable pending_mark : int;
      (* mark attached to the next recorded event (chained entry) *)
  mutable hot_threshold : int;
      (* edge-traversal count at which a hot fall-through edge triggers
         superblock formation; tests lower it to fuzz the crossing *)
  mutable hot_adaptive : bool;
      (* drive [hot_threshold] from the chain-hit/unlink ratio (see
         [adapt_hot]); tests that pin [hot_threshold] turn this off *)
  mutable ht_resolves : int;  (* edge resolutions since the last adapt *)
  mutable ht_unlinks_mark : int;  (* chain_unlinks at the last adapt *)
  (* Dispatch_jit optimizer counters (cumulative, bumped at compile
     time per translated block, plus [opt_side_exits] at run time). *)
  mutable jit_blocks_compiled : int;
  mutable checks_eliminated : int;
  mutable checks_hoisted : int;
  mutable checks_hoisted_nonentry : int;
  mutable dead_bookkeeping_removed : int;
  mutable opt_side_exits : int;
  (* Compile-time plan validation (translation validation): when set,
     every plan [compile_jit] produces is submitted to the validator
     before installation; a rejected plan is replaced by the all-full
     plan with no guards (always sound) and counted.  The hook also
     serves as a plan collector for the offline `cheriot_audit plans`
     gate.  [None] (the default) installs plans unvalidated. *)
  mutable jit_validator : (bentry -> Ir.chk array -> Ir.guard array -> bool) option;
  mutable jit_plans_rejected : int;
}

(* A decode-cache entry carries a fetch "ticket": the machine mode and
   the exact PCC under which the fetch-side checks passed at fill time.
   The checks are a pure function of (mode, PCC, pc), so a hit whose
   current PCC equals the ticket can skip them wholesale — same result,
   no bounds decode. *)
and centry = {
  c_insn : Insn.t;
  c_opt : Insn.t option;  (* [Some c_insn], built once at fill so the
                             per-step event update allocates nothing *)
  c_mode : mode;
  c_pcc : Capability.t;
  c_next : Capability.t option;
      (* [Some] of the step-advanced PCC ([next_pcc] at fill time).  The
         PC advance is a pure function of the ticket fields, so a hit
         whose PCC matches the ticket can install this record directly:
         no representability check, no allocation.  [None] only in the
         dummy. *)
}

(* A translated basic block: the decoded instructions of one
   straight-line run of code, from a fetch target up to and including
   the first control-flow or interrupt-posture-changing instruction
   (or the length cap).  Like [centry], every per-instruction value the
   hot loop needs — the [Some insn] event payload and the fall-through
   PCC — is prebuilt at fill time, so executing a cached block
   allocates nothing. *)
and bentry = {
  b_insns : Insn.t array;
  b_opts : Insn.t option array;  (* [Some b_insns.(i)], built at fill *)
  b_nexts : Capability.t option array;
      (* fall-through PCC after instruction [i]: the fill-time
         [next_pcc] chain.  Valid whenever the block ticket validates —
         each link is a pure function of the ticket fields. *)
  b_mode : mode;
  b_pcc : Capability.t;  (* fetch ticket: the fill-time block-start PCC *)
  b_start : int;  (* address of b_insns.(0) *)
  b_len : int;
  (* Direct chain slots (Dispatch_chain only): when the block ends in a
     direct [Jal] or a [Branch], the validated successor block of each
     edge is cached here with the cache's chain epoch at link time.  A
     link whose epoch still matches is followed without probing the
     cache or re-checking the successor's ticket: the link was
     validated under a PCC value-equal to the one every later traversal
     of the same edge produces (see [chain_next]).  [b_*_epoch = -1]
     marks an edge never linked.  The counters drive superblock
     formation. *)
  mutable b_taken : bentry option;
  mutable b_taken_epoch : int;
  mutable b_cnt_taken : int;
  mutable b_fall : bentry option;
  mutable b_fall_epoch : int;
  mutable b_cnt_fall : int;
  (* Indirect-target slot ([Jalr]-ended blocks): the block most recently
     reached through this block's indirect exit.  Epoch-validated like
     the direct links, but — unlike them — the successor's ticket is
     re-checked at every traversal: a [Jalr] target comes from a live
     register, so nothing pins it (or the post-jump PCC) between
     traversals. *)
  mutable b_ind : bentry option;
  mutable b_ind_epoch : int;
  (* The block's optimized execution plan, compiled lazily on first
     [Dispatch_jit] entry (see [compile_jit]). *)
  mutable b_jit : jit option;
}

(* A compiled plan for one (super)block: per-instruction check levels
   and block-entry guards from [Ir.optimize], plus compile-time folds
   of the block's static control-flow capabilities.  [Capability.null]
   (physical compare) marks a fold that was not taken. *)
and jit = {
  j_chk : Ir.chk array;  (* per-instruction residual access checks *)
  j_guards : Ir.guard array;  (* block-entry hoisted checks *)
  j_br : Capability.t array;
      (* per-instruction folded taken-target PCC of an in-bounds
         direct [Branch]; [Capability.null] where not folded *)
  j_jal_target : Capability.t;  (* folded final-[Jal] target PCC *)
  j_link_on : Capability.t;  (* its link sentry when [mie] is set... *)
  j_link_off : Capability.t;  (* ...and when it is clear *)
}

exception Trap of cause

(* Blocks are capped at 16 instructions (64 bytes): long enough that
   dispatch overhead amortises away, short enough that the store-snoop
   probe in [Decode_cache.rkill_store] stays a handful of compares. *)
let max_block_len = 16

(* Superblocks — hot paths re-translated across not-taken branches —
   may grow to 64 instructions (256 bytes).  This also sets the ranged
   cache's [max_span] and therefore the store-snoop candidate walk, but
   that walk only runs for stores landing inside the code-span window,
   which data stores never do. *)
let max_superblock_len = 64

(* Fuel ceiling of one recorded dispatch round ([step_chain]): bounds
   the retirement ring.  A chained round ends early when fuel runs out,
   so any cap is exact; this one is big enough that chaining still
   amortises under the perf harness. *)
let round_cap = 128

let create ?(mode = Cheriot) ?(load_filter = true) bus =
  let dcache =
    Decode_cache.create
      ~dummy:
        {
          c_insn = Insn.Ebreak;
          c_opt = Some Insn.Ebreak;
          c_mode = mode;
          c_pcc = Capability.null;
          c_next = None;
        }
      ()
  in
  let bcache =
    Decode_cache.ranged ~max_span:(max_superblock_len * 4)
      ~dummy:
        {
          b_insns = [||];
          b_opts = [||];
          b_nexts = [||];
          b_mode = mode;
          b_pcc = Capability.null;
          b_start = -1;
          b_len = 0;
          b_taken = None;
          b_taken_epoch = -1;
          b_cnt_taken = 0;
          b_fall = None;
          b_fall_epoch = -1;
          b_cnt_fall = 0;
          b_ind = None;
          b_ind_epoch = -1;
          b_jit = None;
        }
      ()
  in
  (* Stores must kill stale decodes: self-modifying code and loader
     patches through the bus re-decode (and re-translate) on the next
     fetch.  The block cache needs the ranged kill — a store anywhere in
     a block's span stales it, not just one to its start granule. *)
  Bus.on_store bus (fun g ->
      Decode_cache.invalidate_granule dcache g;
      Decode_cache.rkill_store bcache g);
  {
    regs = Array.make 16 Capability.null;
    pcc = Capability.root_executable;
    bus;
    mode;
    ddc = (if mode = Rv32 then Capability.root_mem_rw else Capability.null);
    load_filter;
    mie = false;
    mpie = false;
    mcause = 0;
    mtval = 0;
    mcycle = 0;
    minstret = 0;
    mshwm = 0;
    mshwmb = 0;
    mtimecmp = 0;
    mtcc = Capability.null;
    mepcc = Capability.null;
    mtdc = Capability.null;
    mscratchc = Capability.null;
    ext_interrupt = false;
    waiting = false;
    last_event = { no_event with ev_insn = None };
    dcache;
    bcache;
    blocks_filled = 0;
    insns_translated = 0;
    block_aborts = 0;
    fm_sram = Sram.create ~base:0 ~size:8;
    fm_base = 0;
    fm_limit = 0;
    block_events =
      Array.init (round_cap + 1) (fun _ -> { no_event with ev_insn = None });
    block_pcs = Array.make (round_cap + 1) 0;
    block_marks = Array.make (round_cap + 1) 0;
    block_ev_n = 0;
    pending_mark = 0;
    hot_threshold = 32;
    hot_adaptive = true;
    ht_resolves = 0;
    ht_unlinks_mark = 0;
    jit_blocks_compiled = 0;
    checks_eliminated = 0;
    checks_hoisted = 0;
    checks_hoisted_nonentry = 0;
    dead_bookkeeping_removed = 0;
    opt_side_exits = 0;
    jit_validator = None;
    jit_plans_rejected = 0;
  }

(* regs.(0) is initialised to null and [set_reg] never writes it, so the
   zero register needs no special-casing on the read side.  The masked
   index is always in [0, 15], so the bounds check is elided. *)
let reg m r = Array.unsafe_get m.regs (r land 15)

let set_reg m r c =
  let r = r land 15 in
  if r <> 0 then Array.unsafe_set m.regs r c

let reg_int m r = (Array.unsafe_get m.regs (r land 15)).Capability.addr

let mask32 = 0xFFFF_FFFF
let[@inline always] int_cap v = Capability.{ null with addr = v land mask32 }
let[@inline always] set_reg_int m r v = set_reg m r (int_cap v)

let timer_pending m = m.mtimecmp <> 0 && m.mcycle >= m.mtimecmp
let interrupt_pending m = timer_pending m || m.ext_interrupt

let to_signed v = (v lxor 0x8000_0000) - 0x8000_0000

(* --- memory access checks ------------------------------------------- *)

(* Top-level (not a local closure capturing [ridx]) so the check below
   allocates nothing on the no-trap path. *)
let access_fail c ridx = raise (Trap (Cheri_fault (c, ridx)))

let check_access m ~cap ~ridx ~addr ~size ~store ~is_cap =
  ignore m;
  if not cap.Capability.tag then access_fail Cheri_tag ridx;
  if Capability.is_sealed cap then access_fail Cheri_seal ridx;
  if store then begin
    if not (Capability.has_perm cap SD) then access_fail Cheri_permit_store ridx;
    if is_cap && not (Capability.has_perm cap MC) then
      access_fail Cheri_permit_store_cap ridx
  end
  else begin
    if not (Capability.has_perm cap LD) then access_fail Cheri_permit_load ridx;
    if is_cap && not (Capability.has_perm cap MC) then
      access_fail Cheri_permit_load_cap ridx
  end;
  if not (Capability.in_bounds cap ~size addr) then access_fail Cheri_bounds ridx;
  if addr land (size - 1) <> 0 then
    raise (Trap (if store then Store_misaligned else Load_misaligned));
  if addr < 0 || addr > mask32 then
    raise (Trap (if store then Store_access_fault else Load_access_fault))

(* Stack high-water-mark tracking (5.2.1): every store whose address lies
   within [mshwmb, mshwm) lowers the mark. *)
let note_store m addr =
  if addr >= m.mshwmb && addr < m.mshwm then m.mshwm <- addr land lnot 7

(* --- SRAM window fast path -------------------------------------------- *)

(* Scalar data accesses overwhelmingly land in one SRAM region.  The
   machine keeps that region's bounds in immediate fields and, when the
   (already permission/alignment/range-checked) address fits, goes
   straight to the byte array: no bus list walk, no option, no
   exception-handler setup.  Observationally identical to [Bus.read]/
   [Bus.write] — the access counter still advances and SRAM stores
   still fire the snoops — and shared by every dispatch path. *)

let refresh_window m ~size addr =
  match Bus.sram_at m.bus ~size addr with
  | Some s ->
      m.fm_sram <- s;
      m.fm_base <- Sram.base s;
      m.fm_limit <- Sram.base s + Sram.size s;
      true
  | None -> false

let data_read_slow m ~size addr =
  if refresh_window m ~size addr then begin
    Bus.note_access m.bus;
    match size with
    | 1 -> Sram.read8_u m.fm_sram addr
    | 2 -> Sram.read16_u m.fm_sram addr
    | _ -> Sram.read32_u m.fm_sram addr
  end
  else
    try Bus.read m.bus ~width:size addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)

let[@inline] data_read m ~size addr =
  if addr >= m.fm_base && addr + size <= m.fm_limit then begin
    Bus.note_access m.bus;
    match size with
    | 1 -> Sram.read8_u m.fm_sram addr
    | 2 -> Sram.read16_u m.fm_sram addr
    | _ -> Sram.read32_u m.fm_sram addr
  end
  else data_read_slow m ~size addr

let data_write_slow m ~size addr v =
  if refresh_window m ~size addr then begin
    Bus.note_access m.bus;
    (match size with
    | 1 -> Sram.write8_u m.fm_sram addr v
    | 2 -> Sram.write16_u m.fm_sram addr v
    | _ -> Sram.write32_u m.fm_sram addr v);
    Bus.snoop_store m.bus addr
  end
  else
    try Bus.write m.bus ~width:size addr v
    with Bus.Bus_error _ -> raise (Trap Store_access_fault)

let[@inline] data_write m ~size addr v =
  if addr >= m.fm_base && addr + size <= m.fm_limit then begin
    Bus.note_access m.bus;
    (match size with
    | 1 -> Sram.write8_u m.fm_sram addr v
    | 2 -> Sram.write16_u m.fm_sram addr v
    | _ -> Sram.write32_u m.fm_sram addr v);
    Bus.snoop_store m.bus addr
  end
  else data_write_slow m ~size addr v

(* The effective address always comes from [rs1]'s address field; only
   the authorizing capability differs by mode (the register itself, or
   the implicit DDC).  Computed field-by-field at each call site so no
   intermediate pair is built on the per-access hot path. *)

let do_load m ~ridx ~rs1 ~off ~width ~signed ~rd =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
  check_access m ~cap ~ridx ~addr ~size ~store:false ~is_cap:false;
  let v = data_read m ~size addr in
  let v =
    if signed then
      match width with
      | B -> (v lxor 0x80) - 0x80
      | H -> (v lxor 0x8000) - 0x8000
      | W -> v
    else v
  in
  set_reg_int m rd v;
  size

let do_store m ~ridx ~rs1 ~off ~width ~rs2 =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
  check_access m ~cap ~ridx ~addr ~size ~store:true ~is_cap:false;
  data_write m ~size addr (reg_int m rs2);
  note_store m addr;
  size

(* The architectural load filter (3.3.2): on every capability load the
   base of the loaded capability indexes the revocation bitmap; a set bit
   means the capability points to freed memory and its tag is stripped
   before register writeback. *)
let load_filter_apply m c =
  if (not m.load_filter) || not c.Capability.tag then c
  else
    match Bus.revbits m.bus with
    | Some rb when Revbits.is_revoked rb (Capability.base c) ->
        Capability.clear_tag c
    | Some _ | None -> c

let do_clc m ~rd ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:false ~is_cap:true;
  let tag, word =
    try Bus.read_cap m.bus addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let loaded = Capability.of_word ~tag word in
  let loaded = Capability.load_attenuate ~authority:cap loaded in
  let loaded = load_filter_apply m loaded in
  set_reg m rd loaded

let do_csc m ~rs2 ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:true ~is_cap:true;
  let value = reg m rs2 in
  if
    value.Capability.tag
    && (not (Capability.is_global value))
    && not (Capability.has_perm cap SL)
  then raise (Trap (Cheri_fault (Cheri_permit_store_local, rs2)));
  (try Bus.write_cap m.bus addr (value.Capability.tag, Capability.to_word value)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr

(* --- plan-directed memory access (Dispatch_jit) ----------------------- *)

(* The [do_load]/[do_store]/[do_clc]/[do_csc] bodies with the check
   prologue replaced by the residual checks of an [Ir.chk] plan.  The
   reduced arms exist only for CHERIoT-mode blocks (the optimizer emits
   [Chk_full] throughout for Rv32), so the cited register {e is} the
   authorizing capability there.  Check order within each arm mirrors
   [check_access] (bounds before alignment), so the first failing check
   — and therefore the trap cause — is identical to the reference
   path's on every input the plan admits. *)

let jit_load m chk ~rs1 ~off ~width ~signed ~rd =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  (match chk with
  | Ir.Chk_full ->
      let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
      check_access m ~cap ~ridx:rs1 ~addr ~size ~store:false ~is_cap:false
  | Ir.Chk_bounds ->
      if not (Capability.in_bounds r ~size addr) then
        access_fail Cheri_bounds rs1;
      if addr land (size - 1) <> 0 then raise (Trap Load_misaligned)
  | Ir.Chk_align ->
      if addr land (size - 1) <> 0 then raise (Trap Load_misaligned)
  | Ir.Chk_none -> ());
  let v = data_read m ~size addr in
  let v =
    if signed then
      match width with
      | B -> (v lxor 0x80) - 0x80
      | H -> (v lxor 0x8000) - 0x8000
      | W -> v
    else v
  in
  set_reg_int m rd v

let jit_store m chk ~rs1 ~off ~width ~rs2 =
  let size = match width with Insn.B -> 1 | H -> 2 | W -> 4 in
  let r = reg m rs1 in
  let addr = (r.Capability.addr + off) land mask32 in
  (match chk with
  | Ir.Chk_full ->
      let cap = match m.mode with Cheriot -> r | Rv32 -> m.ddc in
      check_access m ~cap ~ridx:rs1 ~addr ~size ~store:true ~is_cap:false
  | Ir.Chk_bounds ->
      if not (Capability.in_bounds r ~size addr) then
        access_fail Cheri_bounds rs1;
      if addr land (size - 1) <> 0 then raise (Trap Store_misaligned)
  | Ir.Chk_align ->
      if addr land (size - 1) <> 0 then raise (Trap Store_misaligned)
  | Ir.Chk_none -> ());
  data_write m ~size addr (reg_int m rs2);
  note_store m addr

let jit_clc m chk ~rd ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  (match chk with
  | Ir.Chk_full ->
      check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:false ~is_cap:true
  | Ir.Chk_bounds ->
      if not (Capability.in_bounds cap ~size:8 addr) then
        access_fail Cheri_bounds rs1;
      if addr land 7 <> 0 then raise (Trap Load_misaligned)
  | Ir.Chk_align -> if addr land 7 <> 0 then raise (Trap Load_misaligned)
  | Ir.Chk_none -> ());
  let tag, word =
    try Bus.read_cap m.bus addr
    with Bus.Bus_error _ -> raise (Trap Load_access_fault)
  in
  let loaded = Capability.of_word ~tag word in
  let loaded = Capability.load_attenuate ~authority:cap loaded in
  let loaded = load_filter_apply m loaded in
  set_reg m rd loaded

let jit_csc m chk ~rs2 ~rs1 ~off =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  let cap = reg m rs1 in
  let addr = (Capability.address cap + off) land mask32 in
  (match chk with
  | Ir.Chk_full ->
      check_access m ~cap ~ridx:rs1 ~addr ~size:8 ~store:true ~is_cap:true
  | Ir.Chk_bounds ->
      if not (Capability.in_bounds cap ~size:8 addr) then
        access_fail Cheri_bounds rs1;
      if addr land 7 <> 0 then raise (Trap Store_misaligned)
  | Ir.Chk_align -> if addr land 7 <> 0 then raise (Trap Store_misaligned)
  | Ir.Chk_none -> ());
  let value = reg m rs2 in
  (* The store-local check depends on the {e stored value}, not on a
     fact any dominating access could establish: never eliminated. *)
  if
    value.Capability.tag
    && (not (Capability.is_global value))
    && not (Capability.has_perm cap SL)
  then raise (Trap (Cheri_fault (Cheri_permit_store_local, rs2)));
  (try Bus.write_cap m.bus addr (value.Capability.tag, Capability.to_word value)
   with Bus.Bus_error _ -> raise (Trap Store_access_fault));
  note_store m addr

(* A block-entry guard (pass 2): tag/seal, the union of the permissions
   the covered accesses need, and one bounds check over the union
   footprint.  Evaluated against the {e entry} value of the register —
   the optimizer only hoists over entry versions.  Failure is not a
   trap: the caller falls back to the fully-checked plan for this block
   execution, so a faulting access (if any) traps at its own
   instruction with its own cause. *)
let jit_guard_ok m (g : Ir.guard) =
  let c = reg m g.Ir.g_rs1 in
  c.Capability.tag
  && (not (Capability.is_sealed c))
  && ((not g.Ir.g_need_ld) || Capability.has_perm c LD)
  && ((not g.Ir.g_need_sd) || Capability.has_perm c SD)
  && ((not g.Ir.g_need_mc) || Capability.has_perm c MC)
  &&
  (* One decode covers every member: if [lo, lo + span) is in bounds
     then each member's masked address lands inside it (all member
     sums collapse consistently under the 32-bit mask exactly when the
     whole span does — a span that straddles the wrap point cannot
     satisfy [access + size <= top <= 2^32] and fails the guard). *)
  let lo = (c.Capability.addr + g.Ir.g_lo) land mask32 in
  Capability.in_bounds c ~size:(g.Ir.g_hi - g.Ir.g_lo) lo

let jit_guards_ok m (gs : Ir.guard array) =
  let ok = ref true in
  for k = 0 to Array.length gs - 1 do
    if not (jit_guard_ok m (Array.unsafe_get gs k)) then ok := false
  done;
  !ok

(* --- CSRs ------------------------------------------------------------ *)

let require_sr m =
  if m.mode = Cheriot && not (Capability.has_perm m.pcc SR) then
    raise (Trap (Cheri_fault (Cheri_permit_access_system_registers, 16)))

let csr_read m n =
  if n = Csr.mstatus then
    ((if m.mie then 1 else 0) lsl Csr.mstatus_mie_bit)
    lor ((if m.mpie then 1 else 0) lsl Csr.mstatus_mpie_bit)
  else if n = Csr.mcause then m.mcause
  else if n = Csr.mtval then m.mtval
  else if n = Csr.mcycle then m.mcycle land mask32
  else if n = Csr.mcycleh then (m.mcycle lsr 32) land mask32
  else if n = Csr.minstret then m.minstret land mask32
  else if n = Csr.mshwm then m.mshwm
  else if n = Csr.mshwmb then m.mshwmb
  else if n = Csr.mtimecmp then m.mtimecmp land mask32
  else raise (Trap Illegal_instruction)

let csr_write m n v =
  let v = v land mask32 in
  if n = Csr.mstatus then begin
    m.mie <- v land (1 lsl Csr.mstatus_mie_bit) <> 0;
    m.mpie <- v land (1 lsl Csr.mstatus_mpie_bit) <> 0
  end
  else if n = Csr.mcause then m.mcause <- v
  else if n = Csr.mtval then m.mtval <- v
  else if n = Csr.mcycle then m.mcycle <- v
  else if n = Csr.minstret then m.minstret <- v
  else if n = Csr.mshwm then m.mshwm <- v
  else if n = Csr.mshwmb then m.mshwmb <- v
  else if n = Csr.mtimecmp then m.mtimecmp <- v
  else raise (Trap Illegal_instruction)

let csr_is_counter n = n = Csr.mcycle || n = Csr.mcycleh || n = Csr.minstret

let do_csr m op rd rs1 n =
  (* Counter reads are unprivileged; everything else needs PCC.SR. *)
  let pure_read = op <> Insn.Csrrw && rs1 = 0 in
  if not (pure_read && csr_is_counter n) then require_sr m;
  let old = csr_read m n in
  (match op with
  | Insn.Csrrw -> csr_write m n (reg_int m rs1)
  | Insn.Csrrs -> if rs1 <> 0 then csr_write m n (old lor reg_int m rs1)
  | Insn.Csrrc ->
      if rs1 <> 0 then csr_write m n (old land lnot (reg_int m rs1)));
  set_reg_int m rd old

let scr_read m = function
  | Insn.MTCC -> m.mtcc
  | MTDC -> m.mtdc
  | MScratchC -> m.mscratchc
  | MEPCC -> m.mepcc

let scr_write m scr c =
  match scr with
  | Insn.MTCC -> m.mtcc <- c
  | MTDC -> m.mtdc <- c
  | MScratchC -> m.mscratchc <- c
  | MEPCC -> m.mepcc <- c

(* --- control flow ----------------------------------------------------- *)

let apply_sentry_posture m = function
  | Otype.Sentry_inherit -> ()
  | Sentry_enable | Sentry_ret_enable -> m.mie <- true
  | Sentry_disable | Sentry_ret_disable -> m.mie <- false

let link_cap m next_addr =
  (* The link register receives a return sentry recording the interrupt
     posture at the call site (3.1.2). *)
  let c = Capability.with_address m.pcc next_addr in
  match
    Capability.seal_sentry c (Otype.return_sentry ~interrupts_enabled:m.mie)
  with
  | Ok sealed -> sealed
  | Error _ -> Capability.clear_tag c

let do_jal m rd off =
  let pc = Capability.address m.pcc in
  let target = (pc + off) land mask32 in
  match m.mode with
  | Rv32 ->
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      if not (Capability.in_bounds m.pcc ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, 16)));
      set_reg m rd (link_cap m (pc + 4));
      (* In-bounds addresses are always representable (the concentrate
         encoding's defining invariant, checked exhaustively by
         test_bounds), and the PCC is tagged and unsealed here — so
         [with_address] would always succeed; skip its redundant bounds
         decode. *)
      m.pcc <- { m.pcc with Capability.addr = target }

let do_jalr m rd rs1 off =
  let pc = Capability.address m.pcc in
  match m.mode with
  | Rv32 ->
      let target = (reg_int m rs1 + off) land mask32 land lnot 1 in
      set_reg_int m rd (pc + 4);
      m.pcc <- Capability.{ root_executable with addr = target }
  | Cheriot ->
      let cap = reg m rs1 in
      if not cap.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_tag, rs1)));
      let cap =
        if Capability.is_sealed cap then begin
          match Capability.sentry_kind cap with
          | Some kind when off = 0 ->
              let link = link_cap m (pc + 4) in
              apply_sentry_posture m kind;
              set_reg m rd link;
              Capability.{ cap with otype = Otype.unsealed }
          | Some _ | None -> raise (Trap (Cheri_fault (Cheri_seal, rs1)))
        end
        else begin
          set_reg m rd (link_cap m (pc + 4));
          cap
        end
      in
      if not (Capability.has_perm cap EX) then
        raise (Trap (Cheri_fault (Cheri_permit_execute, rs1)));
      let target = (Capability.address cap + off) land mask32 land lnot 1 in
      if not (Capability.in_bounds cap ~size:4 target) then
        raise (Trap (Cheri_fault (Cheri_bounds, rs1)));
      (* [cap] is tagged, unsealed and in bounds at [target] here, so
         [with_address] would always succeed (in-bounds implies
         representable); skip its redundant bounds decode. *)
      m.pcc <- { cap with Capability.addr = target }

let[@inline always] alu_exec op a b =
  let open Insn in
  match op with
  | Add -> (a + b) land mask32
  | Sub -> (a - b) land mask32
  | Sll -> (a lsl (b land 31)) land mask32
  | Slt -> if to_signed a < to_signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0
  | Xor -> a lxor b
  | Srl -> a lsr (b land 31)
  | Sra -> (to_signed a asr (b land 31)) land mask32
  | Or -> a lor b
  | And -> a land b

let muldiv_exec op a b =
  let open Insn in
  let sa = to_signed a and sb = to_signed b in
  match op with
  | Mul -> (a * b) land mask32
  | Mulh -> (sa * sb) asr 32 land mask32
  | Mulhsu -> (sa * b) asr 32 land mask32
  | Mulhu -> (a * b) lsr 32 land mask32
  | Div ->
      if sb = 0 then mask32
      else if sa = -0x8000_0000 && sb = -1 then 0x8000_0000
      else to_signed a / to_signed b land mask32 land mask32
  | Divu -> if b = 0 then mask32 else a / b
  | Rem ->
      if sb = 0 then a
      else if sa = -0x8000_0000 && sb = -1 then 0
      else Stdlib.( mod ) sa sb land mask32
  | Remu -> if b = 0 then a else a mod b

let[@inline always] branch_taken cond a b =
  let open Insn in
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> to_signed a < to_signed b
  | Ge -> to_signed a >= to_signed b
  | Ltu -> a < b
  | Geu -> a >= b

(* --- capability instructions ----------------------------------------- *)

let require_tagged m ridx c =
  ignore m;
  if not c.Capability.tag then raise (Trap (Cheri_fault (Cheri_tag, ridx)))

let require_unsealed m ridx c =
  ignore m;
  if Capability.is_sealed c then raise (Trap (Cheri_fault (Cheri_seal, ridx)))

let exec_cap m (i : Insn.t) =
  if m.mode = Rv32 then raise (Trap Illegal_instruction);
  match i with
  | Cincaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.incr_address (reg m cs1) (reg_int m rs2))
  | Cincaddrimm (cd, cs1, imm) ->
      set_reg m cd (Capability.incr_address (reg m cs1) imm)
  | Csetaddr (cd, cs1, rs2) ->
      set_reg m cd (Capability.with_address (reg m cs1) (reg_int m rs2))
  | Csetbounds (cd, cs1, rs2) | Csetboundsimm (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let length =
        match i with
        | Csetboundsimm _ -> rs2
        | _ -> reg_int m rs2
      in
      let r = Capability.set_bounds c ~length ~exact:false in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Csetboundsexact (cd, cs1, rs2) ->
      let c = reg m cs1 in
      require_tagged m cs1 c;
      require_unsealed m cs1 c;
      let r = Capability.set_bounds c ~length:(reg_int m rs2) ~exact:true in
      if not r.Capability.tag then
        raise (Trap (Cheri_fault (Cheri_bounds, cs1)));
      set_reg m cd r
  | Crrl (rd, rs1) -> set_reg_int m rd (Bounds.crrl (reg_int m rs1))
  | Cram (rd, rs1) -> set_reg_int m rd (Bounds.cram (reg_int m rs1))
  | Candperm (cd, cs1, rs2) ->
      let mask = Perm.Set.of_arch_bits (reg_int m rs2) in
      set_reg m cd (Capability.and_perms (reg m cs1) mask)
  | Ccleartag (cd, cs1) -> set_reg m cd (Capability.clear_tag (reg m cs1))
  | Cmove (cd, cs1) -> set_reg m cd (reg m cs1)
  | Cseal (cd, cs1, cs2) -> (
      match Capability.seal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cunseal (cd, cs1, cs2) -> (
      match Capability.unseal (reg m cs1) ~key:(reg m cs2) with
      | Ok c -> set_reg m cd c
      | Error _ -> raise (Trap (Cheri_fault (Cheri_seal, cs2))))
  | Cget (g, rd, cs1) ->
      let c = reg m cs1 in
      let v =
        match g with
        | Addr -> Capability.address c
        | Base -> Capability.base c
        | Top -> min (Capability.top c) mask32
        | Len -> min (Capability.length c) mask32
        | Perm -> Perm.Set.to_arch_bits (Capability.perms c)
        | Type -> Otype.value (Capability.otype c)
        | Tag -> if c.Capability.tag then 1 else 0
      in
      set_reg_int m rd v
  | Csub (rd, cs1, cs2) ->
      set_reg_int m rd (reg_int m cs1 - reg_int m cs2)
  | Ctestsubset (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.is_subset (reg m cs2) ~of_:(reg m cs1) then 1 else 0)
  | Csetequalexact (rd, cs1, cs2) ->
      set_reg_int m rd
        (if Capability.equal (reg m cs1) (reg m cs2) then 1 else 0)
  | Cspecialrw (cd, scr, cs1) ->
      require_sr m;
      let old = scr_read m scr in
      if cs1 <> 0 then scr_write m scr (reg m cs1);
      set_reg m cd old
  | _ -> raise (Trap Illegal_instruction)

(* --- trap entry ------------------------------------------------------- *)

let enter_trap m cause =
  m.mcause <- mcause_of cause;
  (m.mtval <-
     (match cause with
     | Cheri_fault (c, r) -> (cheri_cause_code c lsl 5) lor r
     | _ -> 0));
  m.mepcc <- m.pcc;
  m.mpie <- m.mie;
  m.mie <- false;
  if m.mtcc.Capability.tag then begin
    m.pcc <- m.mtcc;
    Step_trap cause
  end
  else Step_double_fault

(* --- fetch/execute ---------------------------------------------------- *)

(* Pure in (mode, pcc, pc) — the block translator runs it against the
   fill-time PCC chain, not the live machine PCC. *)
let fetch_check_pcc mode pcc pc =
  if mode = Cheriot then begin
    if not pcc.Capability.tag then raise (Trap (Cheri_fault (Cheri_tag, 16)));
    if Capability.is_sealed pcc then
      raise (Trap (Cheri_fault (Cheri_seal, 16)));
    if not (Capability.has_perm pcc EX) then
      raise (Trap (Cheri_fault (Cheri_permit_execute, 16)));
    if not (Capability.in_bounds pcc ~size:4 pc) then
      raise (Trap (Cheri_fault (Cheri_bounds, 16)))
  end;
  if pc land 3 <> 0 then raise (Trap Illegal_instruction)

let fetch_check m pc = fetch_check_pcc m.mode m.pcc pc

let fetch_word m pc =
  try Bus.read m.bus ~width:4 pc
  with Bus.Bus_error _ -> raise (Trap Load_access_fault)

let fetch m =
  let pc = Capability.address m.pcc in
  fetch_check m pc;
  fetch_word m pc

(* The reference fetch: re-read and re-decode the word at the PC on
   every step.  [step] uses this path unchanged; it is the observational
   oracle the decoded-instruction cache is differentially tested
   against. *)
let fetch_decode m =
  match Encode.decode (fetch m) with
  | None -> raise (Trap Illegal_instruction)
  | Some insn -> insn

(* The cached fetch: identical PCC/alignment checks (traps must be
   bit-for-bit the same), but on a hit the bus read and decode are
   skipped.  Illegal words are never cached — they trap on the slow path
   every time, which keeps the cache total. *)
(* Is the fill-time ticket still good?  In Rv32 mode the only fetch-side
   check is word alignment, which the full-PC tag match already pins (a
   fill only ever happens after the checks passed).  In CHERIoT mode the
   checks also read the PCC, so the ticket must carry an identical one
   and must itself have been issued under CHERIoT checks. *)
let[@inline always] ticket_valid m e =
  match m.mode with
  | Rv32 -> true
  | Cheriot ->
      e.c_mode = Cheriot
      &&
      let tp = e.c_pcc and cp = m.pcc in
      tp == cp
      || (* [with_address] (the per-step PC advance) copies the record
            but shares the bounds block and keeps the immediate fields,
            so along straight-line execution every compare below is a
            word compare.  A re-derived but identical PCC (e.g. after a
            return) fails the physical bounds compare and merely falls
            back to the full fetch checks — conservative, never wrong.

            Only the fields that [fetch_check] and [next_pcc] read are
            compared.  The ticket passed the checks when issued, so: its
            tag is set (the current one is tested directly), equal
            otypes pin "unsealed", equal perms pin EX, and the address
            needs no compare at all — the cache's full-PC tag match
            already proved the current PCC address equals the fill-time
            one.  [reserved] is compared because the prebuilt [c_next]
            carries it verbatim. *)
      (tp.Capability.bounds == cp.Capability.bounds
      && cp.Capability.tag
      && tp.Capability.perms == cp.Capability.perms
      && tp.Capability.otype == cp.Capability.otype
      && tp.Capability.reserved = cp.Capability.reserved)

(* The step-advanced PCC.  A pure function of the current PCC and mode:
   [Capability.with_address p (pc + 4)] inlined for the CHERIoT case
   (the tag/seal tests almost always succeed right after a fetch and the
   fast-pathed representability check dominates); a plain program
   counter in Rv32 mode. *)
let next_pcc_of mode p =
  let addr = (p.Capability.addr + 4) land mask32 in
  match mode with
  | Cheriot ->
      let ok =
        p.Capability.tag
        && p.Capability.otype == Otype.unsealed
        && Bounds.representable p.Capability.bounds ~cur:p.Capability.addr
             ~addr
      in
      { p with Capability.addr; tag = ok }
  | Rv32 -> { p with Capability.addr }

let next_pcc m = next_pcc_of m.mode m.pcc

let next m = m.pcc <- next_pcc m

(* Fall-through PC advance.  The cached dispatch passes the fill-time
   [c_next] when the ticket validated — [next_pcc] depends only on the
   ticket-compared fields, so installing the prebuilt record is
   observationally identical to recomputing it (and costs one store). *)
let advance m nextc =
  match nextc with Some c -> m.pcc <- c | None -> next m

(* The plain-arm epilogue ([advance] + flagless [finish]) as one call —
   most instructions end exactly this way. *)
let advance_finish m nextc opt =
  (match nextc with Some c -> m.pcc <- c | None -> next m);
  m.minstret <- m.minstret + 1;
  let ev = m.last_event in
  ev.ev_insn <- opt;
  ev.ev_taken_branch <- false;
  ev.ev_mem_bytes <- 0;
  ev.ev_is_cap_mem <- false;
  ev.ev_is_store <- false;
  ev.ev_trap <- None;
  Step_ok

let fetch_cached_slow m dc s pc =
  fetch_check m pc;
  match Encode.decode (fetch_word m pc) with
  | None -> raise (Trap Illegal_instruction)
  | Some insn ->
      let e =
        {
          c_insn = insn;
          c_opt = Some insn;
          c_mode = m.mode;
          c_pcc = m.pcc;
          c_next = Some (next_pcc m);
        }
      in
      Decode_cache.fill dc ~slot:s ~pc e;
      e

(* The probe is hand-inlined (the representation is exposed for exactly
   this callsite): one masked index, one tag compare, one ticket check
   on a hit. *)
let fetch_cached m =
  let pc = Capability.address m.pcc in
  let dc = m.dcache in
  let s = (pc lsr 2) land dc.Decode_cache.mask in
  if Array.unsafe_get dc.Decode_cache.tags s = pc then begin
    dc.Decode_cache.hits <- dc.Decode_cache.hits + 1;
    let e = Array.unsafe_get dc.Decode_cache.payloads s in
    if ticket_valid m e then e
    else begin
      (* PCC metadata changed since fill (e.g. entry through a different
         executable capability): re-run the checks, reissue the ticket. *)
      fetch_check m pc;
      let e =
        { e with c_mode = m.mode; c_pcc = m.pcc; c_next = Some (next_pcc m) }
      in
      Decode_cache.fill dc ~slot:s ~pc e;
      e
    end
  end
  else begin
    dc.Decode_cache.misses <- dc.Decode_cache.misses + 1;
    fetch_cached_slow m dc s pc
  end

let finish m ?(taken = false) ?(mem = 0) ?(cap_mem = false) ?(store = false)
    opt =
  m.minstret <- m.minstret + 1;
  let ev = m.last_event in
  ev.ev_insn <- opt;
  ev.ev_taken_branch <- taken;
  ev.ev_mem_bytes <- mem;
  ev.ev_is_cap_mem <- cap_mem;
  ev.ev_is_store <- store;
  ev.ev_trap <- None;
  Step_ok


(* One instruction's semantics, shared verbatim by both dispatch paths:
   the reference interpreter and the cached fast path differ only in how
   [insn] was obtained. *)
let exec m insn opt nextc =
  match insn with
  | Insn.Lui (rd, imm20) ->
      set_reg_int m rd (imm20 lsl 12);
      advance_finish m nextc opt
  | Auipcc (rd, imm20) ->
      let v = (Capability.address m.pcc + (imm20 lsl 12)) land mask32 in
      (match m.mode with
      | Cheriot -> set_reg m rd (Capability.with_address m.pcc v)
      | Rv32 -> set_reg_int m rd v);
      advance_finish m nextc opt
  | Jal (rd, off) ->
      do_jal m rd off;
      finish m ~taken:true opt
  | Jalr (rd, rs1, off) ->
      do_jalr m rd rs1 off;
      finish m ~taken:true opt
  | Branch (cond, rs1, rs2, off) ->
      let taken = branch_taken cond (reg_int m rs1) (reg_int m rs2) in
      if taken then begin
        let pc = Capability.address m.pcc in
        let target = (pc + off) land mask32 in
        if m.mode = Cheriot && not (Capability.in_bounds m.pcc ~size:4 target)
        then raise (Trap (Cheri_fault (Cheri_bounds, 16)));
        (* Bounds just checked (Cheriot) or irrelevant (Rv32): in-bounds
           implies representable, so the plain record update matches
           [with_address] exactly. *)
        m.pcc <- { m.pcc with Capability.addr = target }
      end
      else advance m nextc;
      finish m ~taken opt
  | Load { signed; width; rd; rs1; off } ->
      let bytes = do_load m ~ridx:rs1 ~rs1 ~off ~width ~signed ~rd in
      advance m nextc;
      finish m ~mem:bytes opt
  | Store { width; rs2; rs1; off } ->
      let bytes = do_store m ~ridx:rs1 ~rs1 ~off ~width ~rs2 in
      advance m nextc;
      finish m ~mem:bytes ~store:true opt
  | Clc (rd, rs1, off) ->
      do_clc m ~rd ~rs1 ~off;
      advance m nextc;
      finish m ~mem:8 ~cap_mem:true opt
  | Csc (rs2, rs1, off) ->
      do_csc m ~rs2 ~rs1 ~off;
      advance m nextc;
      finish m ~mem:8 ~cap_mem:true ~store:true opt
  | Op_imm (op, rd, rs1, imm) ->
      set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
      advance_finish m nextc opt
  | Op (op, rd, rs1, rs2) ->
      set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
      advance_finish m nextc opt
  | Mul_div (op, rd, rs1, rs2) ->
      set_reg_int m rd (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
      advance_finish m nextc opt
  | Ecall -> raise (Trap Ecall_m)
  | Ebreak ->
      m.last_event <- { no_event with ev_insn = opt };
      Step_halted
  | Mret ->
      require_sr m;
      let target = m.mepcc in
      let target =
        match Capability.sentry_kind target with
        | Some kind ->
            apply_sentry_posture m kind;
            Capability.{ target with otype = Otype.unsealed }
        | None ->
            m.mie <- m.mpie;
            target
      in
      m.mpie <- true;
      m.pcc <- target;
      finish m ~taken:true opt
  | Wfi ->
      if not (interrupt_pending m) then m.waiting <- true;
      advance m nextc;
      if m.waiting then begin
        m.minstret <- m.minstret + 1;
        m.last_event <- { no_event with ev_insn = opt };
        Step_waiting
      end
      else finish m opt
  | Csr (op, rd, rs1, n) ->
      do_csr m op rd rs1 n;
      advance_finish m nextc opt
  | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _
  | Csetboundsexact _ | Csetboundsimm _ | Crrl _ | Cram _
  | Candperm _ | Ccleartag _ | Cmove _ | Cseal _ | Cunseal _
  | Cget _ | Csub _ | Ctestsubset _ | Csetequalexact _
  | Cspecialrw _ ->
      exec_cap m insn;
      advance_finish m nextc opt

let step_gen m ~cached =
  if m.waiting then
    if interrupt_pending m then m.waiting <- false else ()
  else ();
  if m.waiting then Step_waiting
  else if m.mie && interrupt_pending m then begin
    let cause =
      if timer_pending m then Interrupt_timer else Interrupt_external
    in
    m.last_event <- { no_event with ev_trap = Some cause };
    enter_trap m cause
  end
  else
    try
      if cached then
        let e = fetch_cached m in
        (* Rv32 tickets don't field-compare the PCC, so the prebuilt
           next-PCC is only trusted in CHERIoT mode. *)
        let nextc = match m.mode with Cheriot -> e.c_next | Rv32 -> None in
        exec m e.c_insn e.c_opt nextc
      else
        let insn = fetch_decode m in
        exec m insn (Some insn) None
    with Trap cause ->
      m.last_event <- { no_event with ev_trap = Some cause };
      enter_trap m cause

let step m = step_gen m ~cached:false
let step_fast m = step_gen m ~cached:true

(* --- basic-block translation ------------------------------------------ *)

(* A block may contain, as non-final entries, only instructions that
   (when they do not trap — traps are handled at runtime) fall through
   to PC+4 and leave the interrupt-delivery predicate
   ([mie && interrupt_pending], i.e. mie/mtimecmp/mcycle/ext_interrupt/
   waiting) untouched.  Everything below ends a block: the jumps and
   Mret redirect the PCC, sentry Jalr and Mret toggle mie, Csr can
   write mstatus/mtimecmp/mcycle, Wfi sets waiting, Ecall/Ebreak never
   fall through.  Cspecialrw is fenced out of caution (system class).
   With that invariant, checking interrupts only at block boundaries is
   {e exactly} per-step equivalent — there is no reachable machine
   state in which the reference interpreter would deliver an interrupt
   between two instructions of the same block. *)
let block_terminator (i : Insn.t) =
  match i with
  | Insn.Jal _ | Jalr _ | Branch _ | Mret | Ecall | Ebreak | Wfi | Csr _
  | Cspecialrw _ ->
      true
  | _ -> false

(* Superblocks relax exactly one terminator: a [Branch] may sit in the
   interior, because it never touches the interrupt-delivery predicate
   — its only control effect is redirecting the PCC, which the executor
   turns into a side exit when taken.  Everything else that ends a
   block still ends a superblock. *)
let superblock_terminator (i : Insn.t) =
  match i with Insn.Branch _ -> false | _ -> block_terminator i

(* Fill-time fetch+decode under an explicit PCC.  Only SRAM-resident
   words are translated: lookahead past the current PC must not replay
   MMIO read side effects.  [None] means "this word cannot join a
   block" — the caller cuts the block there (or, for the first word,
   falls back to a single per-step step, which reproduces the exact
   trap / MMIO-fetch behaviour of the reference path). *)
let decode_at m pcc pc =
  match fetch_check_pcc m.mode pcc pc with
  | exception Trap _ -> None
  | () -> (
      match Bus.sram_at m.bus ~size:4 pc with
      | None -> None
      | Some s -> (
          Bus.note_access m.bus;
          match Encode.decode (Sram.read32 s pc) with
          | None -> None (* illegal words are never cached *)
          | Some i -> Some i))

(* Translate a run of code starting at [pc0] under [pcc0].  Plain
   blocks ([sb:false]) stop at every [block_terminator]; superblocks
   ([sb:true]) keep translating across not-taken [Branch]es up to
   [cap] instructions (the executor side-exits when one is taken).
   Translation is contiguous either way, so the registered span covers
   every word and the store snoop kills superblocks exactly like
   blocks.  Returns [None] when the first word is untranslatable. *)
let translate m ~pcc0 ~pc0 ~sb ~cap =
  match decode_at m pcc0 pc0 with
  | None -> None
  | Some first ->
      let buf_i = Array.make cap first in
      let buf_o = Array.make cap None in
      let buf_n = Array.make cap None in
      let term = if sb then superblock_terminator else block_terminator in
      let rec grow pcc i len =
        (* invariant: [i] decoded at [pc0 + 4*len] under [pcc], with the
           fetch-side checks passed *)
        buf_i.(len) <- i;
        buf_o.(len) <- Some i;
        let nx = next_pcc_of m.mode pcc in
        buf_n.(len) <- Some nx;
        let len = len + 1 in
        if term i || len >= cap then len
        else
          (* [nx] may be untagged (unrepresentable advance) — then the
             fetch check fails and the block simply ends here; the trap,
             if ever reached, is taken by the per-step machinery. *)
          match decode_at m nx (pc0 + (4 * len)) with
          | Some i' -> grow nx i' len
          | None -> len
      in
      let len = grow pcc0 first 0 in
      Some
        {
          b_insns = Array.sub buf_i 0 len;
          b_opts = Array.sub buf_o 0 len;
          b_nexts = Array.sub buf_n 0 len;
          b_mode = m.mode;
          b_pcc = pcc0;
          b_start = pc0;
          b_len = len;
          b_taken = None;
          b_taken_epoch = -1;
          b_cnt_taken = 0;
          b_fall = None;
          b_fall_epoch = -1;
          b_cnt_fall = 0;
          b_ind = None;
          b_ind_epoch = -1;
          b_jit = None;
        }

let install_block m (b : bentry) =
  m.blocks_filled <- m.blocks_filled + 1;
  m.insns_translated <- m.insns_translated + b.b_len;
  let bc = m.bcache in
  let s = Decode_cache.slot bc.Decode_cache.rc b.b_start in
  Decode_cache.rfill bc ~slot:s ~pc:b.b_start ~lo:b.b_start
    ~hi:(b.b_start + (4 * b.b_len))
    b

(* Translate and install the block at [pc0] (the current PC; the caller
   just missed in the block cache). *)
let fill_block m pc0 =
  match translate m ~pcc0:m.pcc ~pc0 ~sb:false ~cap:max_block_len with
  | None -> None
  | Some b ->
      install_block m b;
      Some b

(* A fall-through edge of [b] crossed the hotness threshold: re-derive
   the joined path from the block's start as one superblock and install
   it over the original entry (same start PC, same slot).  Install only
   if the re-translation actually grew — the environment may refuse to
   extend (e.g. the next word is untranslatable), and replacing an
   entry with an identical one would re-fire forever.  Installation
   bumps the chain epoch: links elsewhere still point at the replaced
   entry, and following them would keep executing the short block and
   never reach the superblock. *)
let form_superblock m (b : bentry) =
  match
    translate m ~pcc0:b.b_pcc ~pc0:b.b_start ~sb:true ~cap:max_superblock_len
  with
  | Some nb when nb.b_len > b.b_len ->
      install_block m nb;
      let bc = m.bcache in
      bc.Decode_cache.superblocks_formed <-
        bc.Decode_cache.superblocks_formed + 1;
      Decode_cache.bump_chain_epoch bc
  | _ -> ()

(* Same ticket discipline as [ticket_valid], with two differences.
   The compare is used in {e both} modes: the prebuilt [b_nexts] chain
   copies the fill-time PCC's metadata fields verbatim, so an Rv32 hit
   must pin them too.  And the bounds compare falls back to {e value}
   equality (three small-int compares): a re-derived but identical PCC
   — e.g. after returning through a link sentry, which rebuilds the
   bounds record — still hits, where a physical-only compare would
   force a full re-translation of every block after every return.
   Observational behaviour depends only on field values, so installing
   the fill-time chain under a value-equal PCC is exact; and since the
   chain {e is} the fill-time records, the very next compare is
   physical again.  ([perms] is an immediate int and an executing PCC's
   [otype] is the immediate [Otype.unsealed], so [==] already is value
   equality for those.)  The cache's full-PC tag match pinned the
   address. *)
let[@inline always] block_ticket_valid m (b : bentry) =
  b.b_mode = m.mode
  &&
  let tp = b.b_pcc and cp = m.pcc in
  tp == cp
  || ((tp.Capability.bounds == cp.Capability.bounds
      || Bounds.equal tp.Capability.bounds cp.Capability.bounds)
     && tp.Capability.tag = cp.Capability.tag
     && tp.Capability.perms == cp.Capability.perms
     && tp.Capability.otype == cp.Capability.otype
     && tp.Capability.reserved = cp.Capability.reserved)

(* Copy the live [last_event] (reused in place every instruction) into
   the retirement ring so the perf harness can charge each instruction
   of the round after it completes. *)
let record_event m pc =
  let n = m.block_ev_n in
  let dst = Array.unsafe_get m.block_events n in
  let src = m.last_event in
  dst.ev_insn <- src.ev_insn;
  dst.ev_taken_branch <- src.ev_taken_branch;
  dst.ev_mem_bytes <- src.ev_mem_bytes;
  dst.ev_is_cap_mem <- src.ev_is_cap_mem;
  dst.ev_is_store <- src.ev_is_store;
  dst.ev_trap <- src.ev_trap;
  m.block_pcs.(n) <- pc;
  m.block_marks.(n) <- m.pending_mark;
  m.pending_mark <- 0;
  m.block_ev_n <- n + 1

(* Control-flow marks attached to ring entries for trace rendering. *)
let mark_chained = 1
let mark_side_exit = 2
let mark_jit = 3
let mark_opt_side_exit = 4

(* Execute (a prefix of) a validated block.  The PCC sits at
   [b.b_start]; the caller has established that no interrupt is
   deliverable, and the body invariant (see [block_terminator]) keeps
   that true across every non-final instruction.  Returns
   [(result, retired)] where [retired] counts fuel units exactly as the
   per-step [run] loop does (a trapping instruction consumes one).

   Stops early when fuel runs out (the next round re-enters at the
   fall-through PC — a new block forms there) or when a store from the
   block invalidates the block itself: the remaining decoded entries
   are stale, so execution abandons them and re-translates from the
   live bytes.  Abandonment at {e block} granularity is conservative —
   the store may have patched an already-executed word — but always
   correct, and self-modifying code is rare. *)
let exec_block m (b : bentry) ~fuel ~record =
  let bc = m.bcache in
  let slot = Decode_cache.slot bc.Decode_cache.rc b.b_start in
  let n = if fuel < b.b_len then fuel else b.b_len in
  let retired = ref 0 in
  let result = ref Step_ok in
  let stop = ref false in
  (try
     while not !stop && !retired < n do
       let i = !retired in
       let r =
         exec m
           (Array.unsafe_get b.b_insns i)
           (Array.unsafe_get b.b_opts i)
           (Array.unsafe_get b.b_nexts i)
       in
       incr retired;
       if record then record_event m (b.b_start + (4 * i));
       match r with
       | Step_ok ->
           if m.last_event.ev_taken_branch && !retired < b.b_len then begin
             (* taken interior branch of a superblock: the PCC left the
                straight-line path, so the remaining entries no longer
                apply — side-exit back into the dispatch loop.  The
                generic [exec] arm already left exact PCC / minstret /
                event state, so stopping {e is} the stub. *)
             bc.Decode_cache.side_exits <- bc.Decode_cache.side_exits + 1;
             if record then m.block_marks.(m.block_ev_n - 1) <- mark_side_exit;
             stop := true
           end
           else if
             m.last_event.ev_is_store
             && Array.unsafe_get bc.Decode_cache.rc.Decode_cache.tags slot
                <> b.b_start
           then begin
             m.block_aborts <- m.block_aborts + 1;
             stop := true
           end
       | (Step_trap _ | Step_waiting | Step_halted | Step_double_fault) as r
         ->
           result := r;
           stop := true
     done
   with Trap cause ->
     m.last_event <- { no_event with ev_trap = Some cause };
     incr retired;
     if record then record_event m (b.b_start + (4 * (!retired - 1)));
     result := enter_trap m cause);
  (!result, !retired)

(* Batched-run variant of [exec_block] (the [record:false] path): same
   semantics, but PCC / minstret / retirement-event bookkeeping is
   deferred across runs of simple instructions.  Two deferral classes:

   - ALU (Lui, Op_imm, Op, Mul_div): only read and write integer
     registers — they never consult [pcc], [minstret] or [last_event],
     cannot trap (the ALU helpers are total — division by zero is
     defined) and always fall through, so they run with the
     architectural PC left stale.

   - Integer Load / Store: can trap, so [sync] runs {e first} — at the
     faulting instruction the architectural state (PCC for [mepcc],
     minstret) is exact.  On success the epilogue (fall-through PCC
     store, minstret bump, event stores) is deferred like an ALU op's.

   Everything else [sync]s and takes the generic [exec] path (it may
   read the PC or inspect CSRs).  [sync] replays the deferred
   bookkeeping in one step: minstret jumps by the run length and the
   PCC installs the prebuilt fall-through of the {e last} deferred
   instruction — bitwise the value the per-step path would have left.
   When the round {e ends} on a deferred run, the final [last_event] is
   materialised from the last instruction (its event is a function of
   the decoded instruction alone for every deferred class), so the
   observable state matches the per-step path exactly. *)
let exec_block_fast m (b : bentry) ~fuel =
  let bc = m.bcache in
  let slot = Decode_cache.slot bc.Decode_cache.rc b.b_start in
  let tags = bc.Decode_cache.rc.Decode_cache.tags in
  let n = if fuel < b.b_len then fuel else b.b_len in
  let insns = b.b_insns and opts = b.b_opts and nexts = b.b_nexts in
  let i = ref 0 in
  let pending = ref 0 in
  let result = ref Step_ok in
  let stop = ref false in
  let sync () =
    if !pending > 0 then begin
      m.minstret <- m.minstret + !pending;
      (match Array.unsafe_get nexts (!i - 1) with
      | Some c -> m.pcc <- c
      | None -> ());
      pending := 0
    end
  in
  (try
     while (not !stop) && !i < n do
       (match Array.unsafe_get insns !i with
       | Insn.Lui (rd, imm20) ->
           set_reg_int m rd (imm20 lsl 12);
           incr pending
       | Insn.Op_imm (op, rd, rs1, imm) ->
           set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
           incr pending
       | Insn.Op (op, rd, rs1, rs2) ->
           set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
           incr pending
       | Insn.Mul_div (op, rd, rs1, rs2) ->
           set_reg_int m rd (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
           incr pending
       | Insn.Load { signed; width; rd; rs1; off } ->
           sync ();
           ignore (do_load m ~ridx:rs1 ~rs1 ~off ~width ~signed ~rd);
           incr pending
       | Insn.Store { width; rs2; rs1; off } ->
           sync ();
           ignore (do_store m ~ridx:rs1 ~rs1 ~off ~width ~rs2);
           incr pending;
           if Array.unsafe_get tags slot <> b.b_start then begin
             m.block_aborts <- m.block_aborts + 1;
             stop := true
           end
       | Insn.Clc (rd, rs1, off) ->
           sync ();
           do_clc m ~rd ~rs1 ~off;
           incr pending
       | Insn.Csc (rs2, rs1, off) ->
           sync ();
           do_csc m ~rs2 ~rs1 ~off;
           incr pending;
           if Array.unsafe_get tags slot <> b.b_start then begin
             m.block_aborts <- m.block_aborts + 1;
             stop := true
           end
       | ( Insn.Cincaddr _ | Insn.Cincaddrimm _ | Insn.Csetaddr _
         | Insn.Csetbounds _ | Insn.Csetboundsexact _ | Insn.Csetboundsimm _
         | Insn.Crrl _ | Insn.Cram _ | Insn.Candperm _ | Insn.Ccleartag _
         | Insn.Cmove _ | Insn.Cseal _ | Insn.Cunseal _ | Insn.Cget _
         | Insn.Csub _ | Insn.Ctestsubset _ | Insn.Csetequalexact _ ) as insn
         ->
           (* register-pure capability arithmetic: may trap (so [sync]
              first) but never reads the PC or CSRs — [Cspecialrw] is
              the one exception and takes the generic arm below *)
           sync ();
           exec_cap m insn;
           incr pending
       | insn -> (
           sync ();
           match
             exec m insn
               (Array.unsafe_get opts !i)
               (Array.unsafe_get nexts !i)
           with
           | Step_ok ->
               if m.last_event.ev_taken_branch && !i < b.b_len - 1 then begin
                 (* superblock side exit, as in [exec_block]; [exec]
                    left the exact post-branch state *)
                 bc.Decode_cache.side_exits <- bc.Decode_cache.side_exits + 1;
                 stop := true
               end
               else if
                 m.last_event.ev_is_store
                 && Array.unsafe_get tags slot <> b.b_start
               then begin
                 m.block_aborts <- m.block_aborts + 1;
                 stop := true
               end
           | (Step_trap _ | Step_waiting | Step_halted | Step_double_fault)
             as r ->
               result := r;
               stop := true));
       incr i
     done;
     if !pending > 0 then begin
       m.minstret <- m.minstret + !pending;
       (match Array.unsafe_get nexts (!i - 1) with
       | Some c -> m.pcc <- c
       | None -> ());
       pending := 0;
       let ev = m.last_event in
       (match Array.unsafe_get insns (!i - 1) with
       | Insn.Load { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false
       | Insn.Store { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- true
       | Insn.Clc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- false
       | Insn.Csc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- true
       | _ ->
           ev.ev_mem_bytes <- 0;
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false);
       ev.ev_insn <- Array.unsafe_get opts (!i - 1);
       ev.ev_taken_branch <- false;
       ev.ev_trap <- None
     end
   with Trap cause ->
     (* only a non-deferred instruction can raise, and [sync] ran just
        before it — the deferred window is always empty here *)
     m.last_event <- { no_event with ev_trap = Some cause };
     incr i;
     result := enter_trap m cause);
  (!result, !i)

(* Adaptive hotness: every 1024 edge resolutions, compare the unlink
   rate against a fixed budget.  Lots of unlinks means translations are
   being invalidated faster than superblocks pay off (code churn,
   patch-heavy phases): back the threshold off so formation work is not
   wasted.  A quiet epoch halves it, down to a floor that still filters
   one-shot paths.  Purely a performance heuristic — the threshold only
   decides {e when} a superblock replaces an equivalent chain of short
   blocks, never what executes. *)
let adapt_hot m =
  if m.hot_adaptive then begin
    m.ht_resolves <- m.ht_resolves + 1;
    if m.ht_resolves >= 1024 then begin
      m.ht_resolves <- 0;
      let unl = m.bcache.Decode_cache.chain_unlinks - m.ht_unlinks_mark in
      m.ht_unlinks_mark <- m.bcache.Decode_cache.chain_unlinks;
      if unl >= 128 then m.hot_threshold <- min 512 (m.hot_threshold * 2)
      else m.hot_threshold <- max 8 (m.hot_threshold / 2)
    end
  end

(* [b] just ran to completion and fell through (edge 0), or its direct
   [Jal]/[Branch] terminator redirected the PCC (edge 1): resolve the
   successor block of the edge that was taken, preferring the chained
   link.

   A valid link is followed {e without} probing the cache or ticket-
   checking the successor — the exactness argument, in two halves:

   - The link was installed at a traversal where the successor passed
     the full probe + [block_ticket_valid] under the then-live PCC.
     Both edge targets are static (Jal offset / branch target /
     fall-through), and [exec] derives the post-edge PCC from the
     pre-edge PCC by changing only the address, so every later
     traversal of the same edge from a ticket-valid [b] produces a PCC
     whose compared fields are {e value-equal} to link time
     ([block_ticket_valid] accepts exactly value equality, so skipping
     the re-compare loses nothing).  The mode is re-checked because it
     is not derived from the PCC.
   - Validity over time is the chain epoch: anything that can stale
     any translation (store-kill, flush, superblock install) bumps it,
     and a link is only followed while its recorded epoch matches.

   On a stale or absent link the successor is re-resolved with the
   full probe + ticket check at the live PC and the link is
   (re)installed under the current epoch; a cache miss (or a
   non-chainable terminator) returns the cache's dummy entry — a
   physical-equality sentinel instead of an [option], so the per-edge
   hot path never allocates — and the caller falls back to the normal
   dispatch path. *)
let chain_edge m (b : bentry) edge =
  begin
    adapt_hot m;
    let bc = m.bcache in
    if edge = 1 then b.b_cnt_taken <- b.b_cnt_taken + 1
    else begin
      b.b_cnt_fall <- b.b_cnt_fall + 1;
      if
        b.b_cnt_fall >= m.hot_threshold
        && b.b_cnt_fall >= b.b_cnt_taken
        && b.b_len < max_superblock_len
      then begin
        (* Hot and at least as fall-biased as taken: extending across a
           branch whose taken direction dominates would turn the hot
           edge into a side exit on most traversals, and the side-exit
           continue makes even the break-even case no worse than
           chaining.  The counter gate keeps re-checking each fall
           traversal past the threshold until it holds, then the
           attempt latches: on success the entry is replaced and [b]
           goes unreachable; on failure (the path would not grow)
           retrying would re-translate on every traversal. *)
        form_superblock m b;
        b.b_cnt_fall <- min_int
      end
    end;
    let epoch = bc.Decode_cache.chain_epoch in
    let link = if edge = 1 then b.b_taken else b.b_fall in
    let lep = if edge = 1 then b.b_taken_epoch else b.b_fall_epoch in
    match link with
    | Some succ when lep = epoch && succ.b_mode = m.mode ->
        bc.Decode_cache.chain_hits <- bc.Decode_cache.chain_hits + 1;
        succ
    | _ ->
        if lep >= 0 && lep <> epoch then
          bc.Decode_cache.chain_unlinks <- bc.Decode_cache.chain_unlinks + 1;
        let pc = Capability.address m.pcc in
        let rc = bc.Decode_cache.rc in
        let s = (pc lsr 2) land rc.Decode_cache.mask in
        if
          Array.unsafe_get rc.Decode_cache.tags s = pc
          && block_ticket_valid m (Array.unsafe_get rc.Decode_cache.payloads s)
        then begin
          rc.Decode_cache.hits <- rc.Decode_cache.hits + 1;
          let succ = Array.unsafe_get rc.Decode_cache.payloads s in
          if edge = 1 then begin
            b.b_taken <- Some succ;
            b.b_taken_epoch <- epoch
          end
          else begin
            b.b_fall <- Some succ;
            b.b_fall_epoch <- epoch
          end;
          succ
        end
        else rc.Decode_cache.dummy
        (* miss: the caller's fill path counts it and fills *)
  end

(* [b]'s terminator was a [Jalr] that completed (edge 2): resolve the
   successor at the live post-jump PC through the 1-entry indirect-
   target slot.  Unlike the direct edges, the prediction must be
   {e verified} on every traversal — the target address comes from a
   register and the post-jump PCC from that register's metadata, so
   nothing links one traversal's validation to the next: the slot only
   saves the cache probe, [block_ticket_valid] always runs.  The epoch
   check mirrors the direct links (a stale slot counts as an unlink); a
   wrong prediction under a live epoch is just re-resolved and
   overwritten, the way a BTB entry is. *)
let chain_edge_ind m (b : bentry) =
  adapt_hot m;
  let bc = m.bcache in
  let epoch = bc.Decode_cache.chain_epoch in
  let pc = Capability.address m.pcc in
  match b.b_ind with
  | Some succ
    when b.b_ind_epoch = epoch && succ.b_start = pc
         && block_ticket_valid m succ ->
      bc.Decode_cache.chain_hits <- bc.Decode_cache.chain_hits + 1;
      succ
  | _ ->
      if b.b_ind_epoch >= 0 && b.b_ind_epoch <> epoch then
        bc.Decode_cache.chain_unlinks <- bc.Decode_cache.chain_unlinks + 1;
      let rc = bc.Decode_cache.rc in
      let s = (pc lsr 2) land rc.Decode_cache.mask in
      if
        Array.unsafe_get rc.Decode_cache.tags s = pc
        && block_ticket_valid m (Array.unsafe_get rc.Decode_cache.payloads s)
      then begin
        rc.Decode_cache.hits <- rc.Decode_cache.hits + 1;
        let succ = Array.unsafe_get rc.Decode_cache.payloads s in
        b.b_ind <- Some succ;
        b.b_ind_epoch <- epoch;
        succ
      end
      else rc.Decode_cache.dummy

(* The recording path's entry point: derive the edge from the
   terminator and the architectural event (the generic [exec] arm set
   [ev_taken_branch]); the merged fast executors call [chain_edge] /
   [chain_edge_ind] directly because they track the branch direction
   themselves.  A [Jalr] may have entered through a sentry that
   enabled interrupts, so its edge chains only when the delivery
   predicate is still false — the same check the next round would run
   first (and [mcycle]/[ext_interrupt] cannot move inside a round, so
   checking it here is exactly per-step equivalent). *)
let chain_next m (b : bentry) =
  let dummy = m.bcache.Decode_cache.rc.Decode_cache.dummy in
  match Array.unsafe_get b.b_insns (b.b_len - 1) with
  | Insn.Jal _ -> chain_edge m b 1
  | Insn.Branch _ ->
      chain_edge m b (if m.last_event.ev_taken_branch then 1 else 0)
  | Insn.Jalr _ ->
      if m.mie && interrupt_pending m then dummy else chain_edge_ind m b
  | i ->
      (* Mret/Csr/…: posture-changing, never chained.  A block that
         ended without a terminator (length cap, or the next word was
         untranslatable) fell through: non-terminators cannot change
         the delivery predicate, so its fall edge chains like a
         not-taken branch's. *)
      if block_terminator i then dummy else chain_edge m b 0

(* Compile [b]'s optimized execution plan: the [Ir] pass results plus
   compile-time folds of the static control-flow capabilities.  A
   direct branch (or the final [Jal]) whose target is in bounds of the
   block's PCC at that instruction can have its whole taken path —
   bounds check, target PCC, and for [Jal] the sealed link sentry —
   computed here once: every runtime traversal starts from a PCC
   value-equal to the ticket (that is what admits the block), so the
   folded records are value-equal to what the per-step path builds,
   and an out-of-bounds target is simply left unfolded (the generic
   path re-derives its trap exactly).  The fold base is rebuilt at the
   {e instruction's} address — [Capability.with_address] decodes
   relative to the current address, so [cur] must match the runtime
   value exactly. *)
let compile_jit m (b : bentry) =
  let cheri = b.b_mode = Cheriot in
  let chks, guards, (st : Ir.stats) = Ir.optimize ~cheri b.b_insns in
  (* Translation validation: an installed validator must accept the
     plan; otherwise install the unoptimized (always sound) plan.  The
     deferred-bookkeeping accounting survives rejection — deferral is a
     structural property of the executor, not of the check plan. *)
  let chks, guards, st =
    match m.jit_validator with
    | Some validate when not (validate b chks guards) ->
        m.jit_plans_rejected <- m.jit_plans_rejected + 1;
        ( Array.make b.b_len Ir.Chk_full,
          [||],
          { st with Ir.eliminated = 0; hoisted = 0; hoisted_nonentry = 0 } )
    | _ -> (chks, guards, st)
  in
  let brs = Array.make b.b_len Capability.null in
  let jal_t = ref Capability.null in
  let link_on = ref Capability.null in
  let link_off = ref Capability.null in
  let folds = ref 0 in
  if cheri then
    for i = 0 to b.b_len - 1 do
      match Array.unsafe_get b.b_insns i with
      | Insn.Branch (_, _, _, off) ->
          let pc = b.b_start + (4 * i) in
          let target = (pc + off) land mask32 in
          let at = { b.b_pcc with Capability.addr = pc } in
          if Capability.in_bounds at ~size:4 target then begin
            brs.(i) <- { at with Capability.addr = target };
            incr folds
          end
      | Insn.Jal (_, off) when i = b.b_len - 1 ->
          let pc = b.b_start + (4 * i) in
          let target = (pc + off) land mask32 in
          let at = { b.b_pcc with Capability.addr = pc } in
          if Capability.in_bounds at ~size:4 target then begin
            jal_t := { at with Capability.addr = target };
            let link = Capability.with_address at (pc + 4) in
            (link_on :=
               match
                 Capability.seal_sentry link
                   (Otype.return_sentry ~interrupts_enabled:true)
               with
               | Ok s -> s
               | Error _ -> Capability.clear_tag link);
            (link_off :=
               match
                 Capability.seal_sentry link
                   (Otype.return_sentry ~interrupts_enabled:false)
               with
               | Ok s -> s
               | Error _ -> Capability.clear_tag link);
            incr folds
          end
      | _ -> ()
    done;
  m.jit_blocks_compiled <- m.jit_blocks_compiled + 1;
  m.checks_eliminated <- m.checks_eliminated + st.Ir.eliminated;
  m.checks_hoisted <- m.checks_hoisted + st.Ir.hoisted;
  m.checks_hoisted_nonentry <-
    m.checks_hoisted_nonentry + st.Ir.hoisted_nonentry;
  m.dead_bookkeeping_removed <-
    m.dead_bookkeeping_removed + st.Ir.dead_bookkeeping + !folds;
  let t =
    {
      j_chk = chks;
      j_guards = guards;
      j_br = brs;
      j_jal_target = !jal_t;
      j_link_on = !link_on;
      j_link_off = !link_off;
    }
  in
  b.b_jit <- Some t;
  t

(* The whole-round chained executor (the [record:false],
   [Dispatch_chain] hot path): [exec_block_fast]'s deferred-bookkeeping
   loop, with block-to-block transfers resolved {e inside} the loop via
   [chain_next].  Keeping one set of loop state alive across every
   block of the round is the point — the per-block costs of the
   composed design (a fresh executor call per block: its refs, its
   [sync] closure, its result tuple) are paid once per {e round}, which
   in a hot loop is once per thousands of instructions.  Instruction
   semantics, store-abort, side-exit and trap behaviour are exactly
   [exec_block_fast]'s, with one further specialization: the edge
   instructions ([Jal], [Branch]) run in dedicated inline arms that
   write their event fields only when the round actually ends on them —
   on a chained transfer the successor's instructions rewrite (or
   re-defer) the event anyway.  A [sync] at the chain point before
   every transfer keeps the PCC and retire counts exact even when the
   edge was a deferred fall-through. *)
let exec_chain_fast m (b0 : bentry) ~fuel =
  let bc = m.bcache in
  let rc = bc.Decode_cache.rc in
  let tags = rc.Decode_cache.tags in
  let dummy = rc.Decode_cache.dummy in
  let b = ref b0 in
  let base = ref 0 in  (* retired in completed earlier blocks *)
  let i = ref 0 in
  let pending = ref 0 in
  let result = ref Step_ok in
  let stop = ref false in
  (* [sync] reads the current block's PCC-advance array through a ref
     so the one closure serves every block of the round *)
  let nexts_r = ref b0.b_nexts in
  let sync () =
    if !pending > 0 then begin
      m.minstret <- m.minstret + !pending;
      (match Array.unsafe_get !nexts_r (!i - 1) with
      | Some c -> m.pcc <- c
      | None -> ());
      pending := 0
    end
  in
  (* direction of the last executed [Branch] (the inline arm bypasses
     [last_event], so the chain point cannot read [ev_taken_branch]) *)
  let br_taken = ref false in
  (* continuation block selected by a side-exit probe ([dummy] = none) *)
  let cont = ref dummy in
  (* materialize the event of an inline-handled edge instruction when
     the round ends on it (on a chained transfer it is skipped: the
     successor's instructions overwrite or re-defer it) — field-for-
     field what [finish ~taken] / the deferred epilogue would write *)
  let edge_event opt taken =
    let ev = m.last_event in
    ev.ev_insn <- opt;
    ev.ev_taken_branch <- taken;
    ev.ev_mem_bytes <- 0;
    ev.ev_is_cap_mem <- false;
    ev.ev_is_store <- false;
    ev.ev_trap <- None
  in
  (* materialize the event of the block's final instruction when the
     round ends at the chain point: [sync] has drained the deferred
     window there, and a cap-ended block's last instruction may be a
     memory access, so the fields are rebuilt by class — field-for-
     field what [finish] / the deferred epilogue would write *)
  let end_event blk taken =
    let last = blk.b_len - 1 in
    let ev = m.last_event in
    (match Array.unsafe_get blk.b_insns last with
    | Insn.Load { width; _ } ->
        ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- false
    | Insn.Store { width; _ } ->
        ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- true
    | Insn.Clc _ ->
        ev.ev_mem_bytes <- 8;
        ev.ev_is_cap_mem <- true;
        ev.ev_is_store <- false
    | Insn.Csc _ ->
        ev.ev_mem_bytes <- 8;
        ev.ev_is_cap_mem <- true;
        ev.ev_is_store <- true
    | _ ->
        ev.ev_mem_bytes <- 0;
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- false);
    ev.ev_insn <- Array.unsafe_get blk.b_opts last;
    ev.ev_taken_branch <- taken;
    ev.ev_trap <- None
  in
  (try
     while not !stop do
       (* per-block: bind the block's arrays as immutables so the inner
          per-instruction loop is register-local, exactly like
          [exec_block_fast] — the merged executor must not pay an extra
          indirection per field access or it gives back the per-block
          savings it exists to collect *)
       let blk = !b in
       let insns = blk.b_insns in
       let opts = blk.b_opts in
       let nexts = blk.b_nexts in
       let b_start = blk.b_start in
       let b_len = blk.b_len in
       let slot = (b_start lsr 2) land rc.Decode_cache.mask in
       let rem = fuel - !base in
       let n = if rem < b_len then rem else b_len in
       nexts_r := nexts;
       i := 0;
       while (not !stop) && !cont == dummy && !i < n do
         (match Array.unsafe_get insns !i with
         | Insn.Lui (rd, imm20) ->
             set_reg_int m rd (imm20 lsl 12);
             incr pending
         | Insn.Op_imm (op, rd, rs1, imm) ->
             set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
             incr pending
         | Insn.Op (op, rd, rs1, rs2) ->
             set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
             incr pending
         | Insn.Mul_div (op, rd, rs1, rs2) ->
             set_reg_int m rd (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
             incr pending
         (* memory and capability-register instructions read neither
            the PCC nor [minstret], so — unlike [exec_block_fast] —
            they run {e inside} the deferred window; the trap handler
            below [sync]s before [enter_trap], which is the only place
            their exact PCC is observable *)
         | Insn.Load { signed; width; rd; rs1; off } ->
             ignore (do_load m ~ridx:rs1 ~rs1 ~off ~width ~signed ~rd);
             incr pending
         | Insn.Store { width; rs2; rs1; off } ->
             ignore (do_store m ~ridx:rs1 ~rs1 ~off ~width ~rs2);
             incr pending;
             if Array.unsafe_get tags slot <> b_start then begin
               m.block_aborts <- m.block_aborts + 1;
               stop := true
             end
         | Insn.Clc (rd, rs1, off) ->
             do_clc m ~rd ~rs1 ~off;
             incr pending
         | Insn.Csc (rs2, rs1, off) ->
             do_csc m ~rs2 ~rs1 ~off;
             incr pending;
             if Array.unsafe_get tags slot <> b_start then begin
               m.block_aborts <- m.block_aborts + 1;
               stop := true
             end
         (* the edge instructions, inline: in chained execution every
            block ends in one, so the generic arm's full re-dispatch
            and unconditional event writes are a per-block tax.  The
            semantics below are verbatim [exec]'s [Jal]/[Branch] arms
            minus [finish] — the event is written only if the round
            actually ends here (side exit, or stop at the chain
            point). *)
         | Insn.Jal (rd, off) ->
             sync ();
             do_jal m rd off;
             m.minstret <- m.minstret + 1
         | Insn.Branch (cond, rs1, rs2, off) ->
             if branch_taken cond (reg_int m rs1) (reg_int m rs2) then begin
               sync ();
               let pc = Capability.address m.pcc in
               let target = (pc + off) land mask32 in
               if
                 m.mode = Cheriot
                 && not (Capability.in_bounds m.pcc ~size:4 target)
               then raise (Trap (Cheri_fault (Cheri_bounds, 16)));
               m.pcc <- { m.pcc with Capability.addr = target };
               m.minstret <- m.minstret + 1;
               br_taken := true;
               if !i < b_len - 1 then begin
                 (* taken interior branch of a superblock: side exit.
                    Probe for a translated block at the live target — a
                    hit continues the round there (the exit is then an
                    ordinary transfer, not a round boundary); on a miss
                    the round ends and the next one fills.  The miss is
                    not counted here — the next round's probe counts
                    it. *)
                 bc.Decode_cache.side_exits <- bc.Decode_cache.side_exits + 1;
                 (if !base + !i + 1 < fuel then begin
                    let pc = Capability.address m.pcc in
                    let s = (pc lsr 2) land rc.Decode_cache.mask in
                    if
                      Array.unsafe_get tags s = pc
                      && block_ticket_valid m
                           (Array.unsafe_get rc.Decode_cache.payloads s)
                    then begin
                      rc.Decode_cache.hits <- rc.Decode_cache.hits + 1;
                      cont := Array.unsafe_get rc.Decode_cache.payloads s
                    end
                  end);
                 if !cont == dummy then begin
                   edge_event (Array.unsafe_get opts !i) true;
                   stop := true
                 end
               end
             end
             else begin
               (* not taken: fully deferred, like any plain insn (the
                  prebuilt [b_nexts] advance is the fall-through) *)
               br_taken := false;
               incr pending
             end
         | ( Insn.Cincaddr _ | Insn.Cincaddrimm _ | Insn.Csetaddr _
           | Insn.Csetbounds _ | Insn.Csetboundsexact _ | Insn.Csetboundsimm _
           | Insn.Crrl _ | Insn.Cram _ | Insn.Candperm _ | Insn.Ccleartag _
           | Insn.Cmove _ | Insn.Cseal _ | Insn.Cunseal _ | Insn.Cget _
           | Insn.Csub _ | Insn.Ctestsubset _ | Insn.Csetequalexact _ ) as insn
           ->
             exec_cap m insn;
             incr pending
         | insn -> (
             sync ();
             match
               exec m insn
                 (Array.unsafe_get opts !i)
                 (Array.unsafe_get nexts !i)
             with
             | Step_ok ->
                 if m.last_event.ev_taken_branch && !i < b_len - 1 then begin
                   bc.Decode_cache.side_exits <-
                     bc.Decode_cache.side_exits + 1;
                   stop := true
                 end
                 else if
                   m.last_event.ev_is_store
                   && Array.unsafe_get tags slot <> b_start
                 then begin
                   m.block_aborts <- m.block_aborts + 1;
                   stop := true
                 end
             | (Step_trap _ | Step_waiting | Step_halted | Step_double_fault)
               as r ->
                 result := r;
                 stop := true));
         incr i
       done;
       if !cont != dummy then begin
         (* side-exit continue: transfer to the probed block *)
         base := !base + !i;
         b := !cont;
         cont := dummy
       end
       else if not !stop then
         if !i = b_len then begin
           let edge =
             match Array.unsafe_get insns (b_len - 1) with
             | Insn.Jal _ -> 1
             | Insn.Branch _ -> if !br_taken then 1 else 0
             | Insn.Jalr _ -> 2
             | ti -> if block_terminator ti then -1 else 0
           in
           if edge < 0 then
             (* posture-changing terminator (Mret/Csr/…): its [exec]
                arm left the event exact *)
             stop := true
           else begin
             (* the fall edge may still be deferred: materialize PCC
                (and retire counts) before the probe below or a stop *)
             sync ();
             if edge = 2 && m.mie && interrupt_pending m then
               (* a sentry [Jalr] re-enabled interrupts with one
                  pending: stop exactly where the per-step loop would
                  deliver; the [exec] arm's event stands *)
               stop := true
             else if !base + !i < fuel then begin
               let succ =
                 if edge = 2 then chain_edge_ind m blk
                 else chain_edge m blk edge
               in
               if succ == dummy then begin
                 if edge <> 2 then end_event blk (edge = 1);
                 stop := true
               end
               else begin
                 base := !base + !i;
                 b := succ
               end
             end
             else begin
               if edge <> 2 then end_event blk (edge = 1);
               stop := true
             end
           end
         end
         else stop := true
     done;
     if !pending > 0 then begin
       m.minstret <- m.minstret + !pending;
       (match Array.unsafe_get (!b).b_nexts (!i - 1) with
       | Some c -> m.pcc <- c
       | None -> ());
       pending := 0;
       let ev = m.last_event in
       (match Array.unsafe_get (!b).b_insns (!i - 1) with
       | Insn.Load { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false
       | Insn.Store { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- true
       | Insn.Clc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- false
       | Insn.Csc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- true
       | _ ->
           ev.ev_mem_bytes <- 0;
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false);
       ev.ev_insn <- Array.unsafe_get (!b).b_opts (!i - 1);
       ev.ev_taken_branch <- false;
       ev.ev_trap <- None
     end
   with Trap cause ->
     (* the raiser may have been inside the deferred window (loads,
        stores, cap ops defer here): materialize first — [pending]
        covers only instructions {e before} the raiser, so [sync]
        leaves the PCC pointing exactly at it for [enter_trap] *)
     sync ();
     m.last_event <- { no_event with ev_trap = Some cause };
     incr i;
     result := enter_trap m cause);
  (!result, !base + !i)

(* The [Dispatch_jit] round executor: [exec_chain_fast] with every
   block run under its compiled plan (compiled lazily on first entry).
   Three specializations, none of which changes what is architecturally
   observable:

   - the memory arms run only the {e residual} checks of the per-
     instruction [Ir.chk] plan — the elided checks are exactly those a
     dominating check or a block-entry guard already proved would pass;
   - the block-entry guards are evaluated once per block execution; if
     any fails, this execution runs with full per-access checks (the
     opt side exit: deoptimization in place — the faulting access, if
     any, traps at its own instruction with its own cause);
   - in-bounds direct branches and the final [Jal] use their folded
     target (and link-sentry) capabilities — value-equal to what the
     per-step path computes, with no per-traversal bounds decode or
     sentry allocation. *)
let exec_jit_fast m (b0 : bentry) ~fuel =
  let bc = m.bcache in
  let rc = bc.Decode_cache.rc in
  let tags = rc.Decode_cache.tags in
  let dummy = rc.Decode_cache.dummy in
  let b = ref b0 in
  let base = ref 0 in
  let i = ref 0 in
  let pending = ref 0 in
  let result = ref Step_ok in
  let stop = ref false in
  let nexts_r = ref b0.b_nexts in
  let sync () =
    if !pending > 0 then begin
      m.minstret <- m.minstret + !pending;
      (match Array.unsafe_get !nexts_r (!i - 1) with
      | Some c -> m.pcc <- c
      | None -> ());
      pending := 0
    end
  in
  let br_taken = ref false in
  let cont = ref dummy in
  let edge_event opt taken =
    let ev = m.last_event in
    ev.ev_insn <- opt;
    ev.ev_taken_branch <- taken;
    ev.ev_mem_bytes <- 0;
    ev.ev_is_cap_mem <- false;
    ev.ev_is_store <- false;
    ev.ev_trap <- None
  in
  let end_event blk taken =
    let last = blk.b_len - 1 in
    let ev = m.last_event in
    (match Array.unsafe_get blk.b_insns last with
    | Insn.Load { width; _ } ->
        ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- false
    | Insn.Store { width; _ } ->
        ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- true
    | Insn.Clc _ ->
        ev.ev_mem_bytes <- 8;
        ev.ev_is_cap_mem <- true;
        ev.ev_is_store <- false
    | Insn.Csc _ ->
        ev.ev_mem_bytes <- 8;
        ev.ev_is_cap_mem <- true;
        ev.ev_is_store <- true
    | _ ->
        ev.ev_mem_bytes <- 0;
        ev.ev_is_cap_mem <- false;
        ev.ev_is_store <- false);
    ev.ev_insn <- Array.unsafe_get blk.b_opts last;
    ev.ev_taken_branch <- taken;
    ev.ev_trap <- None
  in
  (try
     while not !stop do
       let blk = !b in
       let insns = blk.b_insns in
       let opts = blk.b_opts in
       let nexts = blk.b_nexts in
       let b_start = blk.b_start in
       let b_len = blk.b_len in
       let slot = (b_start lsr 2) land rc.Decode_cache.mask in
       let rem = fuel - !base in
       let n = if rem < b_len then rem else b_len in
       let t =
         match blk.b_jit with Some t -> t | None -> compile_jit m blk
       in
       (* Guards run against the entry register values, before any op:
          all pass → the reduced plan is licensed for this execution;
          any failure → deoptimize this execution to full checks. *)
       let full =
         Array.length t.j_guards > 0 && not (jit_guards_ok m t.j_guards)
       in
       if full then m.opt_side_exits <- m.opt_side_exits + 1;
       let chks = t.j_chk in
       let jbr = t.j_br in
       nexts_r := nexts;
       i := 0;
       while (not !stop) && !cont == dummy && !i < n do
         (match Array.unsafe_get insns !i with
         | Insn.Lui (rd, imm20) ->
             set_reg_int m rd (imm20 lsl 12);
             incr pending
         | Insn.Op_imm (op, rd, rs1, imm) ->
             set_reg_int m rd (alu_exec op (reg_int m rs1) (imm land mask32));
             incr pending
         | Insn.Op (op, rd, rs1, rs2) ->
             set_reg_int m rd (alu_exec op (reg_int m rs1) (reg_int m rs2));
             incr pending
         | Insn.Mul_div (op, rd, rs1, rs2) ->
             set_reg_int m rd (muldiv_exec op (reg_int m rs1) (reg_int m rs2));
             incr pending
         | Insn.Load { signed; width; rd; rs1; off } ->
             jit_load m
               (if full then Ir.Chk_full else Array.unsafe_get chks !i)
               ~rs1 ~off ~width ~signed ~rd;
             incr pending
         | Insn.Store { width; rs2; rs1; off } ->
             jit_store m
               (if full then Ir.Chk_full else Array.unsafe_get chks !i)
               ~rs1 ~off ~width ~rs2;
             incr pending;
             if Array.unsafe_get tags slot <> b_start then begin
               m.block_aborts <- m.block_aborts + 1;
               stop := true
             end
         | Insn.Clc (rd, rs1, off) ->
             jit_clc m
               (if full then Ir.Chk_full else Array.unsafe_get chks !i)
               ~rd ~rs1 ~off;
             incr pending
         | Insn.Csc (rs2, rs1, off) ->
             jit_csc m
               (if full then Ir.Chk_full else Array.unsafe_get chks !i)
               ~rs2 ~rs1 ~off;
             incr pending;
             if Array.unsafe_get tags slot <> b_start then begin
               m.block_aborts <- m.block_aborts + 1;
               stop := true
             end
         | Insn.Jal (rd, off) ->
             if t.j_jal_target != Capability.null then begin
               (* folded: the bounds check passed at compile time
                  against the same (cur, target) pair, and the link
                  sentry for either posture is prebuilt *)
               set_reg m rd (if m.mie then t.j_link_on else t.j_link_off);
               m.minstret <- m.minstret + !pending + 1;
               pending := 0;
               m.pcc <- t.j_jal_target
             end
             else begin
               sync ();
               do_jal m rd off;
               m.minstret <- m.minstret + 1
             end
         | Insn.Branch (cond, rs1, rs2, off) ->
             if branch_taken cond (reg_int m rs1) (reg_int m rs2) then begin
               let tgt = Array.unsafe_get jbr !i in
               if tgt != Capability.null then begin
                 (* folded: no bounds decode, no PCC allocation *)
                 m.minstret <- m.minstret + !pending + 1;
                 pending := 0;
                 m.pcc <- tgt
               end
               else begin
                 sync ();
                 let pc = Capability.address m.pcc in
                 let target = (pc + off) land mask32 in
                 if
                   m.mode = Cheriot
                   && not (Capability.in_bounds m.pcc ~size:4 target)
                 then raise (Trap (Cheri_fault (Cheri_bounds, 16)));
                 m.pcc <- { m.pcc with Capability.addr = target };
                 m.minstret <- m.minstret + 1
               end;
               br_taken := true;
               if !i < b_len - 1 then begin
                 bc.Decode_cache.side_exits <- bc.Decode_cache.side_exits + 1;
                 (if !base + !i + 1 < fuel then begin
                    let pc = Capability.address m.pcc in
                    let s = (pc lsr 2) land rc.Decode_cache.mask in
                    if
                      Array.unsafe_get tags s = pc
                      && block_ticket_valid m
                           (Array.unsafe_get rc.Decode_cache.payloads s)
                    then begin
                      rc.Decode_cache.hits <- rc.Decode_cache.hits + 1;
                      cont := Array.unsafe_get rc.Decode_cache.payloads s
                    end
                  end);
                 if !cont == dummy then begin
                   edge_event (Array.unsafe_get opts !i) true;
                   stop := true
                 end
               end
             end
             else begin
               br_taken := false;
               incr pending
             end
         | ( Insn.Cincaddr _ | Insn.Cincaddrimm _ | Insn.Csetaddr _
           | Insn.Csetbounds _ | Insn.Csetboundsexact _ | Insn.Csetboundsimm _
           | Insn.Crrl _ | Insn.Cram _ | Insn.Candperm _ | Insn.Ccleartag _
           | Insn.Cmove _ | Insn.Cseal _ | Insn.Cunseal _ | Insn.Cget _
           | Insn.Csub _ | Insn.Ctestsubset _ | Insn.Csetequalexact _ ) as insn
           ->
             exec_cap m insn;
             incr pending
         | insn -> (
             sync ();
             match
               exec m insn
                 (Array.unsafe_get opts !i)
                 (Array.unsafe_get nexts !i)
             with
             | Step_ok ->
                 if m.last_event.ev_taken_branch && !i < b_len - 1 then begin
                   bc.Decode_cache.side_exits <-
                     bc.Decode_cache.side_exits + 1;
                   stop := true
                 end
                 else if
                   m.last_event.ev_is_store
                   && Array.unsafe_get tags slot <> b_start
                 then begin
                   m.block_aborts <- m.block_aborts + 1;
                   stop := true
                 end
             | (Step_trap _ | Step_waiting | Step_halted | Step_double_fault)
               as r ->
                 result := r;
                 stop := true));
         incr i
       done;
       if !cont != dummy then begin
         base := !base + !i;
         b := !cont;
         cont := dummy
       end
       else if not !stop then
         if !i = b_len then begin
           let edge =
             match Array.unsafe_get insns (b_len - 1) with
             | Insn.Jal _ -> 1
             | Insn.Branch _ -> if !br_taken then 1 else 0
             | Insn.Jalr _ -> 2
             | ti -> if block_terminator ti then -1 else 0
           in
           if edge < 0 then stop := true
           else begin
             sync ();
             if edge = 2 && m.mie && interrupt_pending m then stop := true
             else if !base + !i < fuel then begin
               let succ =
                 if edge = 2 then chain_edge_ind m blk
                 else chain_edge m blk edge
               in
               if succ == dummy then begin
                 if edge <> 2 then end_event blk (edge = 1);
                 stop := true
               end
               else begin
                 base := !base + !i;
                 b := succ
               end
             end
             else begin
               if edge <> 2 then end_event blk (edge = 1);
               stop := true
             end
           end
         end
         else stop := true
     done;
     if !pending > 0 then begin
       m.minstret <- m.minstret + !pending;
       (match Array.unsafe_get (!b).b_nexts (!i - 1) with
       | Some c -> m.pcc <- c
       | None -> ());
       pending := 0;
       let ev = m.last_event in
       (match Array.unsafe_get (!b).b_insns (!i - 1) with
       | Insn.Load { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false
       | Insn.Store { width; _ } ->
           ev.ev_mem_bytes <- (match width with Insn.B -> 1 | H -> 2 | W -> 4);
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- true
       | Insn.Clc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- false
       | Insn.Csc _ ->
           ev.ev_mem_bytes <- 8;
           ev.ev_is_cap_mem <- true;
           ev.ev_is_store <- true
       | _ ->
           ev.ev_mem_bytes <- 0;
           ev.ev_is_cap_mem <- false;
           ev.ev_is_store <- false);
       ev.ev_insn <- Array.unsafe_get (!b).b_opts (!i - 1);
       ev.ev_taken_branch <- false;
       ev.ev_trap <- None
     end
   with Trap cause ->
     sync ();
     m.last_event <- { no_event with ev_trap = Some cause };
     incr i;
     result := enter_trap m cause);
  (!result, !base + !i)

(* One round of the block dispatch path: interrupt/WFI handling exactly
   as [step_gen], then up to [fuel] instructions starting from the
   block at the PC.  With [chain:true] the round keeps going across
   direct [Jal]/[Branch] edges via [chain_next] while fuel remains —
   sound without re-running the boundary interrupt check, because
   neither edge instruction can change the delivery predicate (the
   instructions that can still terminate every translation unit and
   end the chain; the one chained exception, a completed [Jalr],
   re-checks the predicate at its edge).  The hand-inlined probe
   mirrors [fetch_cached].  With [jit:true] the recording walk also
   compiles each block it enters and evaluates its guards, so the
   optimizer counters and the [mark_jit]/[mark_opt_side_exit] trace
   marks reflect what the merged jit executor would do — execution
   itself stays on the fully-checked generic path, which the plans are
   observationally equal to by construction. *)
let block_round m ~fuel ~record ~chain ~jit =
  if m.waiting && interrupt_pending m then m.waiting <- false;
  if m.waiting then (Step_waiting, 1)
  else if m.mie && interrupt_pending m then begin
    let cause =
      if timer_pending m then Interrupt_timer else Interrupt_external
    in
    m.last_event <- { no_event with ev_trap = Some cause };
    let r = enter_trap m cause in
    if record then record_event m (Capability.address m.mepcc);
    (r, 1)
  end
  else begin
    let dummy = m.bcache.Decode_cache.rc.Decode_cache.dummy in
    let rec go b fuel used =
      (if jit then begin
         let t = match b.b_jit with Some t -> t | None -> compile_jit m b in
         if Array.length t.j_guards > 0 && not (jit_guards_ok m t.j_guards)
         then begin
           m.opt_side_exits <- m.opt_side_exits + 1;
           if record then m.pending_mark <- mark_opt_side_exit
         end
       end);
      let r, n =
        if record then exec_block m b ~fuel ~record
        else exec_block_fast m b ~fuel
      in
      let used = used + n in
      match r with
      | Step_ok when chain && n = b.b_len && fuel > n ->
          let succ = chain_next m b in
          if succ != dummy then begin
            if record then
              m.pending_mark <- (if jit then mark_jit else mark_chained);
            go succ (fuel - n) used
          end
          else (r, used)
      | r -> (r, used)
    in
    (* the recording path walks block-by-block (it must mark each ring
       entry); the fast path runs the whole round in one merged
       executor with the transfers inlined *)
    let exec_from b =
      if chain && not record then
        if jit then exec_jit_fast m b ~fuel else exec_chain_fast m b ~fuel
      else go b fuel 0
    in
    let pc = Capability.address m.pcc in
    let rc = m.bcache.Decode_cache.rc in
    let s = (pc lsr 2) land rc.Decode_cache.mask in
    if
      Array.unsafe_get rc.Decode_cache.tags s = pc
      && block_ticket_valid m (Array.unsafe_get rc.Decode_cache.payloads s)
    then begin
      rc.Decode_cache.hits <- rc.Decode_cache.hits + 1;
      exec_from (Array.unsafe_get rc.Decode_cache.payloads s)
    end
    else begin
      rc.Decode_cache.misses <- rc.Decode_cache.misses + 1;
      match fill_block m pc with
      | Some b -> exec_from b
      | None ->
          (* untranslatable first word (MMIO-backed code, illegal word,
             failing fetch checks): one exact per-step step *)
          let r = step_fast m in
          if record then record_event m pc;
          (r, 1)
    end
  end

(* [step_block]: the perf-harness / tracer entry point — one dispatch
   round, with every retired instruction recorded in the ring
   ([block_events]/[block_pcs], [block_ev_n] live entries). *)
let step_block m =
  m.block_ev_n <- 0;
  m.pending_mark <- 0;
  let r, _ =
    block_round m ~fuel:max_block_len ~record:true ~chain:false ~jit:false
  in
  r

(* [step_chain]: like [step_block] but follows chained edges, so one
   round can retire up to [round_cap] instructions across many blocks
   (the ring holds them all). *)
let step_chain m =
  m.block_ev_n <- 0;
  m.pending_mark <- 0;
  let r, _ =
    block_round m ~fuel:round_cap ~record:true ~chain:true ~jit:false
  in
  r

(* [step_jit]: the recording entry point of the jit tier — a chained
   round that also compiles each entered block, bumps the optimizer
   counters, and marks [jit]/[opt-side-exit] transfers in the ring. *)
let step_jit m =
  m.block_ev_n <- 0;
  m.pending_mark <- 0;
  let r, _ =
    block_round m ~fuel:round_cap ~record:true ~chain:true ~jit:true
  in
  r

let run ?(fuel = 10_000_000) ?(fast = false) ?dispatch m =
  let dispatch =
    match dispatch with
    | Some d -> d
    | None -> if fast then Dispatch_cached else Dispatch_ref
  in
  match dispatch with
  | Dispatch_block | Dispatch_chain | Dispatch_jit ->
      (* Batched loop: fuel accounting is identical to the per-step
         loop below — each retired instruction, delivered interrupt, or
         trap consumes one unit, and a block (or chained round) is cut
         when the remaining fuel runs out inside it. *)
      let chain = dispatch <> Dispatch_block in
      let jit = dispatch = Dispatch_jit in
      let rec go n =
        if n >= fuel then (Step_ok, n)
        else
          let r, used =
            block_round m ~fuel:(fuel - n) ~record:false ~chain ~jit
          in
          let n = n + used in
          match r with
          | Step_ok | Step_trap _ -> go n
          | (Step_waiting | Step_halted | Step_double_fault) as r -> (r, n)
      in
      go 0
  | Dispatch_ref | Dispatch_cached ->
      let step = if dispatch = Dispatch_cached then step_fast else step in
      let rec go n =
        if n >= fuel then (Step_ok, n)
        else
          match step m with
          | Step_ok | Step_trap _ -> go (n + 1)
          | (Step_waiting | Step_halted | Step_double_fault) as r -> (r, n + 1)
      in
      go 0

(* --- decode/block cache management ------------------------------------ *)

let decode_stats m = Decode_cache.stats m.dcache

(* Writers that bypass the bus must drop *both* translation layers. *)
let flush_decode_cache m =
  Decode_cache.flush m.dcache;
  Decode_cache.rflush m.bcache

type block_stats = {
  block_hits : int;
  block_misses : int;
  block_invalidations : int;  (* blocks killed by store snoops *)
  block_flushes : int;
  blocks_filled : int;
  insns_translated : int;  (* sum of fill-time block lengths *)
  block_aborts : int;  (* self-modifying mid-block abandonments *)
  chain_hits : int;  (* transfers that followed a chained link *)
  chain_unlinks : int;  (* stale links observed at traversal *)
  superblocks_formed : int;
  side_exits : int;  (* taken interior branches of superblocks *)
  (* Dispatch_jit optimizer counters. *)
  jit_blocks_compiled : int;
  checks_eliminated : int;  (* pass 1: accesses with reduced checks *)
  checks_hoisted : int;  (* pass 2: accesses covered by entry guards *)
  checks_hoisted_nonentry : int;
      (* the subset of [checks_hoisted] reached through derived
         (non-entry) register versions *)
  dead_bookkeeping_removed : int;  (* pass 3 + control-flow folds *)
  opt_side_exits : int;  (* block executions deoptimized by a guard *)
  jit_plans_rejected : int;  (* plans the installed validator refused *)
}

let block_stats m =
  let s = Decode_cache.rstats m.bcache in
  {
    block_hits = s.Decode_cache.hits;
    block_misses = s.Decode_cache.misses;
    block_invalidations = s.Decode_cache.invalidations;
    block_flushes = s.Decode_cache.flushes;
    blocks_filled = m.blocks_filled;
    insns_translated = m.insns_translated;
    block_aborts = m.block_aborts;
    chain_hits = s.Decode_cache.chain_hits;
    chain_unlinks = s.Decode_cache.chain_unlinks;
    superblocks_formed = s.Decode_cache.superblocks_formed;
    side_exits = s.Decode_cache.side_exits;
    jit_blocks_compiled = m.jit_blocks_compiled;
    checks_eliminated = m.checks_eliminated;
    checks_hoisted = m.checks_hoisted;
    checks_hoisted_nonentry = m.checks_hoisted_nonentry;
    dead_bookkeeping_removed = m.dead_bookkeeping_removed;
    opt_side_exits = m.opt_side_exits;
    jit_plans_rejected = m.jit_plans_rejected;
  }

let avg_block_len (s : block_stats) =
  if s.blocks_filled = 0 then 0.0
  else float_of_int s.insns_translated /. float_of_int s.blocks_filled

(* --- observational state hash ----------------------------------------- *)

(* A digest of every architecturally visible bit: registers (with tags),
   PCC, SCRs, CSR state, and the full contents + tag bits of every SRAM
   on the bus.  Two runs that agree on this hash and on [minstret] are
   observationally identical — the bench uses it to hold the fast
   dispatch path to the reference interpreter. *)
let state_hash m =
  let buf = Buffer.create 512 in
  let add_cap c =
    Buffer.add_string buf
      (Printf.sprintf "%c%Lx;"
         (if c.Capability.tag then 't' else 'u')
         (Capability.to_word c))
  in
  Array.iter add_cap m.regs;
  add_cap m.pcc;
  add_cap m.ddc;
  add_cap m.mtcc;
  add_cap m.mepcc;
  add_cap m.mtdc;
  add_cap m.mscratchc;
  Buffer.add_string buf
    (Printf.sprintf "%B%B%d/%d/%d/%d/%d/%d/%d/%B%B"
       m.mie m.mpie m.mcause m.mtval m.minstret m.mshwm m.mshwmb m.mtimecmp
       m.mcycle m.ext_interrupt m.waiting);
  List.iter
    (fun s -> Buffer.add_string buf (Cheriot_mem.Sram.digest s))
    (Bus.srams m.bus);
  Digest.to_hex (Digest.string (Buffer.contents buf))
