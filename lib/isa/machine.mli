(** The CHERIoT machine: architectural state and single-step semantics —
    a Sail-style executable model of the ISA (paper 3).

    The same machine runs in two modes:

    - [Cheriot]: registers hold capabilities, memory accesses are
      authorized by the capability in the cited register, jumps unseal
      sentries, the load filter strips tags from loaded capabilities whose
      base points into freed memory.
    - [Rv32]: the Table 3 baseline.  Registers are used as plain 32-bit
      integers and memory accesses are authorized by an implicit
      full-authority default data capability.  Capability instructions
      trap as illegal. *)

type mode = Cheriot | Rv32

(** Which fetch/decode machinery drives execution: the re-decoding
    reference interpreter, the decoded-instruction cache, the
    basic-block translation cache with its batched run loop, the
    chained variant that additionally links blocks across direct
    [Jal]/[Branch] edges (and fall-throughs and completed [Jalr]s) and
    re-translates hot fall-through paths into superblocks, or the jit
    tier that runs each block under a compiled plan from {!Ir} —
    redundant capability checks eliminated, bounds checks hoisted into
    block-entry guards, static control flow folded.  All five are
    observationally identical per retired instruction (enforced by
    [test/test_differential.ml] and the 5-way lockstep properties). *)
type dispatch =
  | Dispatch_ref
  | Dispatch_cached
  | Dispatch_block
  | Dispatch_chain
  | Dispatch_jit

(** CHERI exception causes (reported via [mcause = 28] with the cause and
    the faulting register index in [mtval], as in CHERI RISC-V). *)
type cheri_cause =
  | Cheri_bounds
  | Cheri_tag
  | Cheri_seal
  | Cheri_permit_execute
  | Cheri_permit_load
  | Cheri_permit_store
  | Cheri_permit_load_cap
  | Cheri_permit_store_cap
  | Cheri_permit_store_local
  | Cheri_permit_access_system_registers

type cause =
  | Illegal_instruction
  | Breakpoint
  | Load_misaligned
  | Store_misaligned
  | Load_access_fault
  | Store_access_fault
  | Ecall_m
  | Cheri_fault of cheri_cause * int  (** cause, faulting register (16 = PCC) *)
  | Interrupt_timer
  | Interrupt_external

val pp_cause : Format.formatter -> cause -> unit
val mcause_of : cause -> int
(** The value written to [mcause] (interrupt bit in bit 31). *)

(** What [step] observed — consumed by the micro-architectural cycle
    models, which charge cycles per event.  The fields are mutable
    because the machine reuses one record across steps on the hot path:
    read [last_event] before stepping again, don't retain it. *)
type event = {
  mutable ev_insn : Insn.t option;  (** None when no instruction retired *)
  mutable ev_taken_branch : bool;
  mutable ev_mem_bytes : int;  (** data bytes moved, 0 if none *)
  mutable ev_is_cap_mem : bool;
  mutable ev_is_store : bool;
  mutable ev_trap : cause option;
}

type result =
  | Step_ok
  | Step_trap of cause  (** trap taken; PCC redirected to MTCC *)
  | Step_waiting  (** WFI with no pending interrupt *)
  | Step_halted  (** EBREAK: simulation terminated *)
  | Step_double_fault  (** trap with an untagged MTCC: unrecoverable *)

type t = {
  regs : Cheriot_core.Capability.t array;  (** c1..c15 at indices 1..15 *)
  mutable pcc : Cheriot_core.Capability.t;
  bus : Cheriot_mem.Bus.t;
  mutable mode : mode;
  mutable ddc : Cheriot_core.Capability.t;  (** Rv32-mode authority *)
  mutable load_filter : bool;
  (* CSR state *)
  mutable mie : bool;
  mutable mpie : bool;
  mutable mcause : int;
  mutable mtval : int;
  mutable mcycle : int;  (** advanced by the perf harness *)
  mutable minstret : int;
  mutable mshwm : int;
  mutable mshwmb : int;
  mutable mtimecmp : int;
  (* Special capability registers *)
  mutable mtcc : Cheriot_core.Capability.t;
  mutable mepcc : Cheriot_core.Capability.t;
  mutable mtdc : Cheriot_core.Capability.t;
  mutable mscratchc : Cheriot_core.Capability.t;
  mutable ext_interrupt : bool;  (** external interrupt line *)
  mutable waiting : bool;  (** inside WFI *)
  mutable last_event : event;
  dcache : centry Decode_cache.t;
      (** decoded-instruction cache backing {!step_fast}; invalidated by
          the bus store snoop *)
  bcache : bentry Decode_cache.ranged;
      (** basic-block translation cache backing the [Dispatch_block]
          path; store snoops kill any block whose span the store hits *)
  mutable blocks_filled : int;
  mutable insns_translated : int;  (** sum of fill-time block lengths *)
  mutable block_aborts : int;
      (** blocks abandoned mid-execution after one of their own stores
          invalidated the translation (self-modifying code) *)
  mutable fm_sram : Cheriot_mem.Sram.t;
      (** resolved-SRAM window for the allocation-free data fast path *)
  mutable fm_base : int;
  mutable fm_limit : int;  (** 0 = window invalid *)
  block_events : event array;
      (** retirement ring filled by {!step_block} / {!step_chain}: one
          copied event per instruction of the last round *)
  block_pcs : int array;  (** PCs parallel to [block_events] *)
  block_marks : int array;
      (** control-flow marks parallel to [block_events]: 0 = plain,
          1 = first instruction after a chained transfer, 2 = taken
          interior branch that side-exited a superblock *)
  mutable block_ev_n : int;  (** live entries in the ring *)
  mutable pending_mark : int;
      (** mark attached to the next recorded ring entry *)
  mutable hot_threshold : int;
      (** fall-through-edge traversal count at which [Dispatch_chain]
          re-translates the joined path as a superblock (default 32;
          tests lower it to fuzz the crossing) *)
  mutable hot_adaptive : bool;
      (** adapt [hot_threshold] to the chain-hit/unlink ratio (default
          [true]; tests that pin [hot_threshold] set it to [false]) *)
  mutable ht_resolves : int;  (** edge resolutions since the last adapt *)
  mutable ht_unlinks_mark : int;
      (** [chain_unlinks] snapshot at the last adapt *)
  mutable jit_blocks_compiled : int;  (** blocks compiled by the jit tier *)
  mutable checks_eliminated : int;
      (** pass-1 count: accesses whose metadata (or full) checks a
          dominating check covers *)
  mutable checks_hoisted : int;
      (** pass-2 count: accesses covered by a block-entry guard *)
  mutable checks_hoisted_nonentry : int;
      (** the subset of [checks_hoisted] reached through derived
          (non-entry) register versions *)
  mutable dead_bookkeeping_removed : int;
      (** pass-3 count: deferred per-op epilogues plus control-flow
          folds *)
  mutable opt_side_exits : int;
      (** block executions deoptimized to full checks by a failed
          guard *)
  mutable jit_validator :
    (bentry -> Ir.chk array -> Ir.guard array -> bool) option;
      (** compile-time plan validation hook: when set, {!compile_jit}
          submits every plan before installing it; a rejected plan is
          replaced by the all-[Chk_full] no-guard plan (always sound)
          and counted in [jit_plans_rejected].  Doubles as the plan
          collector of the offline [cheriot_audit plans] gate. *)
  mutable jit_plans_rejected : int;
      (** plans the installed validator refused *)
}

and centry = {
  c_insn : Insn.t;
  c_opt : Insn.t option;
      (** always [Some c_insn], prebuilt so the per-step event update
          does not allocate *)
  c_mode : mode;
  c_pcc : Cheriot_core.Capability.t;
      (** fetch "ticket": the mode and exact PCC under which the
          fetch-side checks passed when this entry was filled.  A hit
          under an identical PCC skips the checks — they are a pure
          function of (mode, PCC, pc). *)
  c_next : Cheriot_core.Capability.t option;
      (** the step-advanced PCC, precomputed at fill time.  The PC
          advance is a pure function of the ticket fields, so a
          validated hit installs this record directly instead of
          re-running the representability check.  [None] only in the
          cache's dummy entry. *)
}

(** A translated basic block: decoded instructions of one straight-line
    run of code, ending at (and including) the first control-flow or
    interrupt-posture-changing instruction, or at the length cap.  The
    per-instruction event payloads and fall-through PCC chain are
    prebuilt at fill time so a cached block executes without
    allocating. *)
and bentry = {
  b_insns : Insn.t array;
  b_opts : Insn.t option array;  (** [Some b_insns.(i)], built at fill *)
  b_nexts : Cheriot_core.Capability.t option array;
      (** fall-through PCC after instruction [i] *)
  b_mode : mode;
  b_pcc : Cheriot_core.Capability.t;
      (** fetch ticket: the fill-time block-start PCC *)
  b_start : int;  (** address of [b_insns.(0)] *)
  b_len : int;
  mutable b_taken : bentry option;
      (** chained successor of the taken [Jal]/[Branch] edge, valid
          while [b_taken_epoch] equals the cache's chain epoch
          ([Dispatch_chain] only; [-1] = never linked) *)
  mutable b_taken_epoch : int;
  mutable b_cnt_taken : int;  (** taken-edge traversal count *)
  mutable b_fall : bentry option;  (** not-taken-edge successor *)
  mutable b_fall_epoch : int;
  mutable b_cnt_fall : int;
      (** fall-through traversal count; crossing [hot_threshold]
          triggers superblock formation *)
  mutable b_ind : bentry option;
      (** 1-entry indirect-target slot of a [Jalr]-ended block: the
          predicted successor, epoch-validated like the direct links
          but ticket-rechecked on every traversal (the target comes
          from a live register) *)
  mutable b_ind_epoch : int;
  mutable b_jit : jit option;
      (** compiled execution plan, built lazily on first [Dispatch_jit]
          entry *)
}

(** A compiled block plan: the {!Ir} optimization results plus folded
    static control-flow capabilities ([Cheriot_core.Capability.null],
    compared physically, marks a fold not taken). *)
and jit = {
  j_chk : Ir.chk array;  (** per-instruction residual access checks *)
  j_guards : Ir.guard array;  (** block-entry hoisted checks *)
  j_br : Cheriot_core.Capability.t array;
      (** folded taken-target PCC per in-bounds direct [Branch] *)
  j_jal_target : Cheriot_core.Capability.t;  (** folded final-[Jal] target *)
  j_link_on : Cheriot_core.Capability.t;
      (** its link sentry when [mie] is set… *)
  j_link_off : Cheriot_core.Capability.t;  (** …and when it is clear *)
}

val create : ?mode:mode -> ?load_filter:bool -> Cheriot_mem.Bus.t -> t
(** A machine at reset: PCC is the executable root at address 0, all other
    registers NULL.  The harness (bootloader) installs the roots where it
    needs them, as early-boot software does (paper 3.1.1). *)

val reg : t -> int -> Cheriot_core.Capability.t
(** Read a register; c0 always reads as NULL. *)

val set_reg : t -> int -> Cheriot_core.Capability.t -> unit
(** Write a register; writes to c0 are discarded. *)

val reg_int : t -> int -> int
(** The 32-bit address field of a register. *)

val set_reg_int : t -> int -> int -> unit
(** Write an integer result (an untagged capability with that address). *)

val timer_pending : t -> bool
val interrupt_pending : t -> bool

val step : t -> result
(** Execute one instruction (or take a pending interrupt).  Updates
    [last_event] for the cycle models and [minstret].  This is the
    {e reference interpreter}: it re-reads and re-decodes the
    instruction word on every step. *)

val step_fast : t -> result
(** Like {!step}, but fetches through the decoded-instruction cache: on
    a hit the bus read and decode are skipped.  Observationally
    identical to {!step} — same registers, tags, CSRs, traps and events
    after every step (enforced by [test/test_differential.ml]).  Stores
    through the bus invalidate stale entries; code rewritten behind the
    bus's back (direct SRAM writes) requires {!flush_decode_cache}. *)

val step_block : t -> result
(** One round of the basic-block dispatch path: deliver a pending
    interrupt / WFI wake exactly as {!step}, or execute the (cached or
    freshly translated) basic block at the PC — up to {!max_block_len}
    instructions.  Every retired instruction of the round is recorded
    in the [block_events]/[block_pcs] ring ([block_ev_n] live entries)
    so the perf harness can charge each one individually.  Interrupts
    are only checked between rounds; block formation guarantees no
    instruction inside a block can change the delivery predicate, so
    this is exactly per-step equivalent. *)

val step_chain : t -> result
(** Like {!step_block}, but follows chained block-to-block links across
    direct [Jal]/[Branch] edges without re-probing the cache or
    re-checking tickets, and re-translates hot fall-through paths into
    superblocks — so one round retires up to [round_cap] (128)
    instructions across many blocks, all recorded in the ring.  Edge
    instructions cannot change the interrupt-delivery predicate, so
    checking only between rounds stays exactly per-step equivalent
    (a completed [Jalr] may have changed the posture through a sentry,
    so its edge re-checks the predicate before chaining). *)

val step_jit : t -> result
(** Like {!step_chain}, but for the jit tier: each block entered is
    (lazily) compiled through {!Ir.optimize}, its block-entry guards
    are evaluated (a failure counts an opt side exit), and chained
    transfers carry the [mark_jit] / [mark_opt_side_exit] ring marks.
    Execution itself follows the fully-checked generic path — the
    recording walk is the observational twin of the merged jit
    executor used by {!run}. *)

val compile_jit : t -> bentry -> jit
(** Compile (and install) [bentry]'s optimized execution plan: the
    {!Ir.optimize} passes plus the static control-flow folds.  Normally
    called lazily by the jit tier on first block entry; exposed so the
    offline plan-verification gate can compile blocks discovered under
    other dispatch tiers.  Consults [jit_validator] when installed. *)

val max_block_len : int
(** Upper bound on instructions per translated block (16). *)

val max_superblock_len : int
(** Upper bound on instructions per superblock (64). *)

val round_cap : int
(** Fuel ceiling of one recorded chained round (128); bounds the
    retirement ring. *)

val mark_chained : int
(** [block_marks] value on the first instruction after a chained
    transfer. *)

val mark_side_exit : int
(** [block_marks] value on a taken interior branch that side-exited a
    superblock. *)

val mark_jit : int
(** [block_marks] value on the first instruction after a chained
    transfer under the jit tier. *)

val mark_opt_side_exit : int
(** [block_marks] value on the first instruction of a jit block
    execution whose entry guard failed (deoptimized to full checks). *)

val run : ?fuel:int -> ?fast:bool -> ?dispatch:dispatch -> t -> result * int
(** Step until halt/double-fault/waiting or [fuel] (default 10M)
    instructions; returns the final result and instructions retired.
    Traps are not stopping events (the handler runs).  [dispatch]
    selects the execution machinery (default [Dispatch_ref]; the legacy
    [~fast:true] is [Dispatch_cached]).  [Dispatch_block] runs the
    batched block loop ([Dispatch_chain] additionally follows chained
    edges within a round; [Dispatch_jit] also executes each block under
    its compiled plan): fuel accounting is identical — each retired
    instruction, delivered interrupt or trap costs one unit, and a
    block (or chained round) is cut when the remaining fuel runs out
    inside it, so chunked runs resume exactly where a per-step run
    would. *)

val decode_stats : t -> Decode_cache.stats
(** Hit/miss/invalidation counters of the decoded-instruction cache. *)

type block_stats = {
  block_hits : int;
  block_misses : int;
  block_invalidations : int;  (** blocks killed by store snoops *)
  block_flushes : int;
  blocks_filled : int;
  insns_translated : int;  (** sum of fill-time block lengths *)
  block_aborts : int;  (** self-modifying mid-block abandonments *)
  chain_hits : int;
      (** transfers that followed a chained link, skipping the probe
          and ticket re-check *)
  chain_unlinks : int;  (** stale links observed at traversal time *)
  superblocks_formed : int;
  side_exits : int;  (** taken interior branches of superblocks *)
  jit_blocks_compiled : int;
  checks_eliminated : int;
      (** pass 1: accesses with a dominating check, run reduced *)
  checks_hoisted : int;
      (** pass 2: accesses covered by a block-entry guard *)
  checks_hoisted_nonentry : int;
      (** the subset of [checks_hoisted] reached through derived
          (non-entry) register versions *)
  dead_bookkeeping_removed : int;
      (** pass 3: deferred per-op epilogues, plus control-flow folds *)
  opt_side_exits : int;
      (** block executions deoptimized by a failed entry guard *)
  jit_plans_rejected : int;
      (** plans refused by the installed [jit_validator] *)
}

val block_stats : t -> block_stats
val avg_block_len : block_stats -> float
(** Mean fill-time block length ([insns_translated / blocks_filled]). *)

val flush_decode_cache : t -> unit
(** Drop every cached decode and translated block — required after
    rewriting code with direct SRAM writes that bypass the bus store
    snoop (e.g. [Asm.load]). *)

val state_hash : t -> string
(** Hex digest of all architecturally visible state: registers and tags,
    PCC, SCRs, CSRs, and the contents + tag bits of every SRAM on the
    bus.  Equal hashes (plus equal [minstret]) mean two runs are
    observationally identical. *)
