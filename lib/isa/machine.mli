(** The CHERIoT machine: architectural state and single-step semantics —
    a Sail-style executable model of the ISA (paper 3).

    The same machine runs in two modes:

    - [Cheriot]: registers hold capabilities, memory accesses are
      authorized by the capability in the cited register, jumps unseal
      sentries, the load filter strips tags from loaded capabilities whose
      base points into freed memory.
    - [Rv32]: the Table 3 baseline.  Registers are used as plain 32-bit
      integers and memory accesses are authorized by an implicit
      full-authority default data capability.  Capability instructions
      trap as illegal. *)

type mode = Cheriot | Rv32

(** CHERI exception causes (reported via [mcause = 28] with the cause and
    the faulting register index in [mtval], as in CHERI RISC-V). *)
type cheri_cause =
  | Cheri_bounds
  | Cheri_tag
  | Cheri_seal
  | Cheri_permit_execute
  | Cheri_permit_load
  | Cheri_permit_store
  | Cheri_permit_load_cap
  | Cheri_permit_store_cap
  | Cheri_permit_store_local
  | Cheri_permit_access_system_registers

type cause =
  | Illegal_instruction
  | Breakpoint
  | Load_misaligned
  | Store_misaligned
  | Load_access_fault
  | Store_access_fault
  | Ecall_m
  | Cheri_fault of cheri_cause * int  (** cause, faulting register (16 = PCC) *)
  | Interrupt_timer
  | Interrupt_external

val pp_cause : Format.formatter -> cause -> unit
val mcause_of : cause -> int
(** The value written to [mcause] (interrupt bit in bit 31). *)

(** What [step] observed — consumed by the micro-architectural cycle
    models, which charge cycles per event.  The fields are mutable
    because the machine reuses one record across steps on the hot path:
    read [last_event] before stepping again, don't retain it. *)
type event = {
  mutable ev_insn : Insn.t option;  (** None when no instruction retired *)
  mutable ev_taken_branch : bool;
  mutable ev_mem_bytes : int;  (** data bytes moved, 0 if none *)
  mutable ev_is_cap_mem : bool;
  mutable ev_is_store : bool;
  mutable ev_trap : cause option;
}

type result =
  | Step_ok
  | Step_trap of cause  (** trap taken; PCC redirected to MTCC *)
  | Step_waiting  (** WFI with no pending interrupt *)
  | Step_halted  (** EBREAK: simulation terminated *)
  | Step_double_fault  (** trap with an untagged MTCC: unrecoverable *)

type t = {
  regs : Cheriot_core.Capability.t array;  (** c1..c15 at indices 1..15 *)
  mutable pcc : Cheriot_core.Capability.t;
  bus : Cheriot_mem.Bus.t;
  mutable mode : mode;
  mutable ddc : Cheriot_core.Capability.t;  (** Rv32-mode authority *)
  mutable load_filter : bool;
  (* CSR state *)
  mutable mie : bool;
  mutable mpie : bool;
  mutable mcause : int;
  mutable mtval : int;
  mutable mcycle : int;  (** advanced by the perf harness *)
  mutable minstret : int;
  mutable mshwm : int;
  mutable mshwmb : int;
  mutable mtimecmp : int;
  (* Special capability registers *)
  mutable mtcc : Cheriot_core.Capability.t;
  mutable mepcc : Cheriot_core.Capability.t;
  mutable mtdc : Cheriot_core.Capability.t;
  mutable mscratchc : Cheriot_core.Capability.t;
  mutable ext_interrupt : bool;  (** external interrupt line *)
  mutable waiting : bool;  (** inside WFI *)
  mutable last_event : event;
  dcache : centry Decode_cache.t;
      (** decoded-instruction cache backing {!step_fast}; invalidated by
          the bus store snoop *)
}

and centry = {
  c_insn : Insn.t;
  c_opt : Insn.t option;
      (** always [Some c_insn], prebuilt so the per-step event update
          does not allocate *)
  c_mode : mode;
  c_pcc : Cheriot_core.Capability.t;
      (** fetch "ticket": the mode and exact PCC under which the
          fetch-side checks passed when this entry was filled.  A hit
          under an identical PCC skips the checks — they are a pure
          function of (mode, PCC, pc). *)
  c_next : Cheriot_core.Capability.t option;
      (** the step-advanced PCC, precomputed at fill time.  The PC
          advance is a pure function of the ticket fields, so a
          validated hit installs this record directly instead of
          re-running the representability check.  [None] only in the
          cache's dummy entry. *)
}

val create : ?mode:mode -> ?load_filter:bool -> Cheriot_mem.Bus.t -> t
(** A machine at reset: PCC is the executable root at address 0, all other
    registers NULL.  The harness (bootloader) installs the roots where it
    needs them, as early-boot software does (paper 3.1.1). *)

val reg : t -> int -> Cheriot_core.Capability.t
(** Read a register; c0 always reads as NULL. *)

val set_reg : t -> int -> Cheriot_core.Capability.t -> unit
(** Write a register; writes to c0 are discarded. *)

val reg_int : t -> int -> int
(** The 32-bit address field of a register. *)

val set_reg_int : t -> int -> int -> unit
(** Write an integer result (an untagged capability with that address). *)

val timer_pending : t -> bool
val interrupt_pending : t -> bool

val step : t -> result
(** Execute one instruction (or take a pending interrupt).  Updates
    [last_event] for the cycle models and [minstret].  This is the
    {e reference interpreter}: it re-reads and re-decodes the
    instruction word on every step. *)

val step_fast : t -> result
(** Like {!step}, but fetches through the decoded-instruction cache: on
    a hit the bus read and decode are skipped.  Observationally
    identical to {!step} — same registers, tags, CSRs, traps and events
    after every step (enforced by [test/test_differential.ml]).  Stores
    through the bus invalidate stale entries; code rewritten behind the
    bus's back (direct SRAM writes) requires {!flush_decode_cache}. *)

val run : ?fuel:int -> ?fast:bool -> t -> result * int
(** Step until halt/double-fault/waiting or [fuel] (default 10M)
    instructions; returns the final result and instructions retired.
    Traps are not stopping events (the handler runs).  [fast] selects
    {!step_fast} dispatch (default false: reference path). *)

val decode_stats : t -> Decode_cache.stats
(** Hit/miss/invalidation counters of the decoded-instruction cache. *)

val flush_decode_cache : t -> unit
(** Drop every cached decode — required after rewriting code with direct
    SRAM writes that bypass the bus store snoop (e.g. [Asm.load]). *)

val state_hash : t -> string
(** Hex digest of all architecturally visible state: registers and tags,
    PCC, SCRs, CSRs, and the contents + tag bits of every SRAM on the
    bus.  Equal hashes (plus equal [minstret]) mean two runs are
    observationally identical. *)
