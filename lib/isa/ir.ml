(** A block-local IR over translated (super)blocks and the optimizer
    passes behind [Machine.Dispatch_jit] (DESIGN.md §13).

    The IR is deliberately thin: a translated block's instruction array
    {e is} the op stream (one op per guest instruction, so op index =
    guest instruction index — the property the trap-time sync discipline
    depends on), and optimization is expressed as {e per-op check
    plans}: every memory access op carries a [chk] level describing
    which of the architectural capability checks the executor must still
    run, plus a set of block-entry [guard]s that pre-validate whole
    groups of accesses.  The passes only ever {e remove} checks whose
    outcome is implied by a dominating check (or by a guard) over the
    {e same register version} — the SSA-ish core: each register name is
    versioned by the defs that precede the op, and a fact established
    about version [v] of register [r] dies at the next def of [r].

    Nothing here reads machine state.  The module is a pure function of
    the decoded instruction array, which is what makes the passes easy
    to argue about (and to property-test): the executor supplies the
    dynamic half of each argument — "the dominating check actually ran,
    in this block execution, against the same register value".

    The three passes — redundant-check elimination, guard hoisting,
    dead-bookkeeping removal — are specified once, in DESIGN.md §13
    (pass ordering, residual-check semantics, deopt contract); the doc
    comments here only state what each binding contributes.  The
    soundness argument for every plan the optimizer emits is DESIGN.md
    §14, mechanized by [Planverify] in [lib/analysis]. *)

(** How much of the architectural check sequence
    (tag → seal → permissions → bounds → alignment, the order of
    [Machine.check_access]) an access op must still run. *)
type chk =
  | Chk_full  (** everything — the unoptimized plan *)
  | Chk_bounds
      (** bounds + alignment only: a dominating access through the same
          register version already passed tag/seal/permissions *)
  | Chk_align
      (** alignment only: a guard covered tag/seal/permissions and the
          whole bounds footprint *)
  | Chk_none
      (** nothing: a dominating access with the identical offset and
          size passed every check, including alignment *)

(** A block-entry guard hoisted by pass 2: one metadata + range check
    standing for every access it covers.  Offsets are relative to the
    guarded register's (entry-version) address; [g_lo, g_hi) is the
    union of the covered footprints plus, for accesses reached through
    derived register versions, every intermediate address of the
    derivation chain (see [optimize]). *)
type guard = {
  g_rs1 : int;  (** guarded register (its block-entry version) *)
  g_lo : int;  (** least covered offset (footprints and hop points) *)
  g_hi : int;  (** greatest covered offset + size (exclusive) *)
  g_need_ld : bool;  (** some covered access loads *)
  g_need_sd : bool;  (** some covered access stores *)
  g_need_mc : bool;  (** some covered access moves a capability *)
}

type stats = {
  eliminated : int;
      (** accesses whose metadata (or full) checks pass 1 removed *)
  hoisted : int;  (** accesses covered by a pass-2 guard *)
  hoisted_nonentry : int;
      (** the subset of [hoisted] reached through a {e derived} register
          version (a [Cmove]/[Cincaddrimm] chain from the entry value)
          rather than through the entry version itself *)
  dead_bookkeeping : int;
      (** per-op PCC/minstret/event epilogues elided by the deferred
          window (pass 3, accounted at compile time) *)
}

(* --- op classification ------------------------------------------------- *)

(* The memory-access footprint of an op, when it has one. *)
type access = {
  a_rs1 : int;
  a_off : int;
  a_size : int;
  a_store : bool;
  a_cap : bool;
}

(* Encoded register fields are 5 bits but the machine's register file
   aliases them mod 16 ([Machine.reg]); the IR must use the same name
   space or its version tracking splits one architectural register into
   two independent fact streams. *)
let access_of (i : Insn.t) =
  match i with
  | Load { width; rs1; off; _ } ->
      Some
        {
          a_rs1 = rs1 land 15;
          a_off = off;
          a_size = (match width with B -> 1 | H -> 2 | W -> 4);
          a_store = false;
          a_cap = false;
        }
  | Store { width; rs1; off; _ } ->
      Some
        {
          a_rs1 = rs1 land 15;
          a_off = off;
          a_size = (match width with B -> 1 | H -> 2 | W -> 4);
          a_store = true;
          a_cap = false;
        }
  | Clc (_, rs1, off) ->
      Some
        {
          a_rs1 = rs1 land 15;
          a_off = off;
          a_size = 8;
          a_store = false;
          a_cap = true;
        }
  | Csc (_, rs1, off) ->
      Some
        {
          a_rs1 = rs1 land 15;
          a_off = off;
          a_size = 8;
          a_store = true;
          a_cap = true;
        }
  | _ -> None

(* The register an op defines, or -1.  Writes to c0 are discarded by
   the machine, so a c0 def kills nothing. *)
let def_of (i : Insn.t) =
  let d =
    match i with
    | Lui (rd, _)
    | Auipcc (rd, _)
    | Jal (rd, _)
    | Jalr (rd, _, _)
    | Load { rd; _ }
    | Op_imm (_, rd, _, _)
    | Op (_, rd, _, _)
    | Mul_div (_, rd, _, _)
    | Clc (rd, _, _)
    | Cincaddr (rd, _, _)
    | Cincaddrimm (rd, _, _)
    | Csetaddr (rd, _, _)
    | Csetbounds (rd, _, _)
    | Csetboundsexact (rd, _, _)
    | Csetboundsimm (rd, _, _)
    | Crrl (rd, _)
    | Cram (rd, _)
    | Candperm (rd, _, _)
    | Ccleartag (rd, _)
    | Cmove (rd, _)
    | Cseal (rd, _, _)
    | Cunseal (rd, _, _)
    | Cget (_, rd, _)
    | Csub (rd, _, _)
    | Ctestsubset (rd, _, _)
    | Csetequalexact (rd, _, _)
    | Csr (_, rd, _, _)
    | Cspecialrw (rd, _, _) ->
        rd
    | Branch _ | Store _ | Csc _ | Ecall | Ebreak | Mret | Wfi -> -1
  in
  let d = if d < 0 then d else d land 15 in
  if d = 0 then -1 else d

(* Ops whose PCC/minstret/event epilogue the executor defers (pass 3's
   accounting): everything that neither reads the PC/CSRs nor transfers
   control.  Mirrors the deferral classes of [Machine.exec_chain_fast]. *)
let deferrable (i : Insn.t) =
  match i with
  | Lui _ | Op_imm _ | Op _ | Mul_div _ | Load _ | Store _ | Clc _ | Csc _
  | Cincaddr _ | Cincaddrimm _ | Csetaddr _ | Csetbounds _ | Csetboundsexact _
  | Csetboundsimm _ | Crrl _ | Cram _ | Candperm _ | Ccleartag _ | Cmove _
  | Cseal _ | Cunseal _ | Cget _ | Csub _ | Ctestsubset _ | Csetequalexact _ ->
      true
  | _ -> false

(* --- the optimizer ----------------------------------------------------- *)

(* Per-register dataflow facts during the pass-1 scan.  [ver] is the
   SSA version counter; the remaining facts are anchored to the version
   they were established under and die when [ver] moves past it. *)
type rfacts = {
  mutable ver : int;
  mutable meta_ver : int;  (* version with tag/seal verified; -1 none *)
  mutable ld_ok : bool;  (* LD (+ which perms) verified at [meta_ver] *)
  mutable sd_ok : bool;
  mutable mc_ok : bool;
  mutable footprints : (int * int) list;
      (* (off, size) pairs fully checked (incl. bounds + align) at
         [meta_ver] *)
}

let optimize ~cheri (insns : Insn.t array) =
  let n = Array.length insns in
  let chks = Array.make n Chk_full in
  let dead = ref 0 in
  for i = 0 to n - 1 do
    if deferrable insns.(i) then incr dead
  done;
  if not cheri then
    (* Rv32 accesses are authorized by the immutable DDC, not the cited
       register, so register-version reasoning does not apply; the
       baseline keeps full checks (they are two compares anyway). *)
    ( chks,
      [||],
      {
        eliminated = 0;
        hoisted = 0;
        hoisted_nonentry = 0;
        dead_bookkeeping = !dead;
      } )
  else begin
    let facts =
      Array.init 16 (fun _ ->
          {
            ver = 0;
            meta_ver = -1;
            ld_ok = false;
            sd_ok = false;
            mc_ok = false;
            footprints = [];
          })
    in
    let eliminated = ref 0 in
    (* Static-offset origin of each register's current value, for pass
       2: [Some (root, delta, hops)] means the value is provably
       [entry(root) + delta], derived through [Cmove]/[Cincaddrimm]
       steps whose cumulative deltas are [hops] (most recent first).
       A guard on [root] can vouch for such a value only if it also
       proves every hop address in bounds — [Capability.incr_address]
       clears the tag at an unrepresentable intermediate address, and
       in-bounds ⇒ representable is the codec property the test suite
       pins.  Any other def loses the origin. *)
    let origin = Array.init 16 (fun r -> if r = 0 then None else Some (r, 0, [])) in
    (* Per-access use records for pass 2:
       (index, origin-at-access, access). *)
    let uses = ref [] in
    (* --- pass 1: dominating-check elimination --- *)
    for i = 0 to n - 1 do
      (match access_of insns.(i) with
      | Some a ->
          let f = facts.(a.a_rs1) in
          uses := (i, origin.(a.a_rs1), a) :: !uses;
          let meta_covered =
            f.meta_ver = f.ver
            && (if a.a_store then f.sd_ok else f.ld_ok)
            && ((not a.a_cap) || f.mc_ok)
          in
          if meta_covered then begin
            if List.mem (a.a_off, a.a_size) f.footprints then
              chks.(i) <- Chk_none
            else begin
              chks.(i) <- Chk_bounds;
              f.footprints <- (a.a_off, a.a_size) :: f.footprints
            end;
            incr eliminated
          end
          else begin
            (* This access runs the full check; if it retires, every
               later same-version access knows tag/seal plus the perms
               it needed all hold.  Perms are a property of the register
               value, so facts from an earlier partial cover merge. *)
            if f.meta_ver <> f.ver then begin
              f.meta_ver <- f.ver;
              f.ld_ok <- false;
              f.sd_ok <- false;
              f.mc_ok <- false;
              f.footprints <- []
            end;
            if a.a_store then f.sd_ok <- true else f.ld_ok <- true;
            if a.a_cap then f.mc_ok <- true;
            f.footprints <- (a.a_off, a.a_size) :: f.footprints
          end
      | None -> ());
      let d = def_of insns.(i) in
      (* Writes to register 0 are discarded ([set_reg]): c0 stays the
         hardwired null, so a def of 0 changes nothing — facts survive,
         and crucially the origin must NOT transfer, or a pass-2 guard
         on the move's source would vouch for an access through null. *)
      if d > 0 then begin
        facts.(d).ver <- facts.(d).ver + 1;
        origin.(d) <-
          (match insns.(i) with
          | Cmove (_, rs) -> origin.(rs land 15)
          | Cincaddrimm (_, rs, imm) -> (
              match origin.(rs land 15) with
              | Some (root, delta, hops) ->
                  Some (root, delta + imm, (delta + imm) :: hops)
              | None -> None)
          | _ -> None)
      end
    done;
    (* --- pass 2: guard hoisting over origin groups --- *)
    (* Group accesses by the entry register their address provably
       derives from.  The guard is evaluated once at block entry,
       before any op runs, against the entry value of [root]; it can
       therefore vouch for an access through a {e derived} version
       [entry(root) + delta] as long as its range also covers every
       intermediate hop address of the derivation (tag survival, see
       [origin] above).  Footprints are expressed in root coordinates:
       [delta + a_off, delta + a_off + a_size). *)
    let uses = List.rev !uses in
    let guards = ref [] in
    let hoisted = ref 0 in
    let hoisted_nonentry = ref 0 in
    for r = 1 to 15 do
      let group =
        List.filter_map
          (fun (i, org, a) ->
            match org with
            | Some (root, delta, hops) when root = r -> Some (i, delta, hops, a)
            | _ -> None)
          uses
      in
      if List.length group >= 2 then begin
        let lo =
          List.fold_left
            (fun acc (_, delta, hops, a) ->
              List.fold_left min (min acc (delta + a.a_off)) hops)
            max_int group
        in
        let hi =
          List.fold_left
            (fun acc (_, delta, hops, a) ->
              List.fold_left
                (fun acc h -> max acc (h + 1))
                (max acc (delta + a.a_off + a.a_size))
                hops)
            min_int group
        in
        guards :=
          {
            g_rs1 = r;
            g_lo = lo;
            g_hi = hi;
            g_need_ld = List.exists (fun (_, _, _, a) -> not a.a_store) group;
            g_need_sd = List.exists (fun (_, _, _, a) -> a.a_store) group;
            g_need_mc = List.exists (fun (_, _, _, a) -> a.a_cap) group;
          }
          :: !guards;
        List.iter
          (fun (i, delta, hops, _) ->
            (* [Chk_none] facts stay — strictly stronger than the guard
               cover (and themselves guard-backed: on guard failure the
               executor reverts the whole block to full checks). *)
            if chks.(i) <> Chk_none then chks.(i) <- Chk_align;
            incr hoisted;
            if delta <> 0 || hops <> [] then incr hoisted_nonentry)
          group
      end
    done;
    ( chks,
      Array.of_list (List.rev !guards),
      {
        eliminated = !eliminated;
        hoisted = !hoisted;
        hoisted_nonentry = !hoisted_nonentry;
        dead_bookkeeping = !dead;
      } )
  end
