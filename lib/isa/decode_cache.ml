type stats = { hits : int; misses : int; invalidations : int; flushes : int }

type 'a t = {
  tags : int array;  (* full PC of the cached word; -1 = empty *)
  payloads : 'a array;
  mask : int;
  dummy : 'a;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

let create ?(size_log2 = 11) ~dummy () =
  if size_log2 < 1 || size_log2 > 24 then
    invalid_arg "Decode_cache.create: size_log2 out of range";
  let n = 1 lsl size_log2 in
  {
    tags = Array.make n (-1);
    payloads = Array.make n dummy;
    mask = n - 1;
    dummy;
    hits = 0;
    misses = 0;
    invalidations = 0;
    flushes = 0;
  }

let entries t = Array.length t.tags

(* Instructions are word-aligned, so the low two PC bits carry no
   information: index by pc >> 2 for conflict-free coverage of contiguous
   code. *)
let slot t pc = (pc lsr 2) land t.mask

(* [slot] is masked, so every index below is in range by construction and
   the bounds checks are elided — this is the per-instruction hot path. *)
let probe t ~slot ~pc =
  if Array.unsafe_get t.tags slot = pc then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let payload t slot = Array.unsafe_get t.payloads slot

let fill t ~slot ~pc v =
  Array.unsafe_set t.tags slot pc;
  Array.unsafe_set t.payloads slot v

let lookup t pc =
  let s = slot t pc in
  if probe t ~slot:s ~pc then Some t.payloads.(s) else None

let kill t pc =
  let s = slot t pc in
  if t.tags.(s) = pc then begin
    t.tags.(s) <- -1;
    t.payloads.(s) <- t.dummy;
    t.invalidations <- t.invalidations + 1
  end

(* The bus snoop reports 8-byte-granule-aligned store addresses; a
   granule holds two instruction words. *)
let invalidate_granule t addr =
  let g = addr land lnot 7 in
  kill t g;
  kill t (g + 4)

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.payloads 0 (Array.length t.payloads) t.dummy;
  t.flushes <- t.flushes + 1

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    flushes = t.flushes;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0;
  t.flushes <- 0
