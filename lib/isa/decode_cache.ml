type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  flushes : int;
  chain_hits : int;
  chain_unlinks : int;
  superblocks_formed : int;
  side_exits : int;
}

type 'a t = {
  tags : int array;  (* full PC of the cached word; -1 = empty *)
  payloads : 'a array;
  mask : int;
  dummy : 'a;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

let create ?(size_log2 = 11) ~dummy () =
  if size_log2 < 1 || size_log2 > 24 then
    invalid_arg "Decode_cache.create: size_log2 out of range";
  let n = 1 lsl size_log2 in
  {
    tags = Array.make n (-1);
    payloads = Array.make n dummy;
    mask = n - 1;
    dummy;
    hits = 0;
    misses = 0;
    invalidations = 0;
    flushes = 0;
  }

let entries t = Array.length t.tags

(* Instructions are word-aligned, so the low two PC bits carry no
   information: index by pc >> 2 for conflict-free coverage of contiguous
   code. *)
let slot t pc = (pc lsr 2) land t.mask

(* [slot] is masked, so every index below is in range by construction and
   the bounds checks are elided — this is the per-instruction hot path. *)
let probe t ~slot ~pc =
  if Array.unsafe_get t.tags slot = pc then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let payload t slot = Array.unsafe_get t.payloads slot

let fill t ~slot ~pc v =
  Array.unsafe_set t.tags slot pc;
  Array.unsafe_set t.payloads slot v

let lookup t pc =
  let s = slot t pc in
  if probe t ~slot:s ~pc then Some t.payloads.(s) else None

let kill t pc =
  let s = slot t pc in
  if t.tags.(s) = pc then begin
    t.tags.(s) <- -1;
    t.payloads.(s) <- t.dummy;
    t.invalidations <- t.invalidations + 1
  end

(* The bus snoop reports 8-byte-granule-aligned store addresses; a
   granule holds two instruction words. *)
let invalidate_granule t addr =
  let g = addr land lnot 7 in
  kill t g;
  kill t (g + 4)

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.payloads 0 (Array.length t.payloads) t.dummy;
  t.flushes <- t.flushes + 1

(* --- ranged entries: the basic-block layer ---------------------------- *)

type 'a ranged = {
  rc : 'a t;
  (* per-slot byte span [lo, hi) covered by the entry's instructions;
     his.(s) = 0 marks an empty slot *)
  los : int array;
  his : int array;
  max_span : int;
  (* Union of every span ever filled (monotone until flush): the store
     snoop tests against this window first, so data-region stores — the
     overwhelming majority — cost two compares and never probe. *)
  mutable span_lo : int;
  mutable span_hi : int;
  (* Chain epoch: every direct block-to-block link records the epoch at
     link time and is only followed while it still matches.  Any event
     that could stale a translation somewhere — a store-kill, a flush,
     a superblock replacing an entry — bumps the epoch, unlinking every
     edge in the cache in O(1). *)
  mutable chain_epoch : int;
  mutable chain_hits : int;  (* transfers that skipped probe + ticket *)
  mutable chain_unlinks : int;  (* stale links observed at traversal *)
  mutable superblocks_formed : int;
  mutable side_exits : int;  (* taken interior branches of superblocks *)
}

let ranged ?size_log2 ~max_span ~dummy () =
  if max_span <= 0 || max_span land 3 <> 0 then
    invalid_arg "Decode_cache.ranged: max_span must be a positive word multiple";
  let rc = create ?size_log2 ~dummy () in
  {
    rc;
    los = Array.make (Array.length rc.tags) 0;
    his = Array.make (Array.length rc.tags) 0;
    max_span;
    span_lo = max_int;
    span_hi = 0;
    chain_epoch = 0;
    chain_hits = 0;
    chain_unlinks = 0;
    superblocks_formed = 0;
    side_exits = 0;
  }

let chain_epoch t = t.chain_epoch
let bump_chain_epoch t = t.chain_epoch <- t.chain_epoch + 1

let rfill t ~slot ~pc ~lo ~hi v =
  if hi - lo > t.max_span then invalid_arg "Decode_cache.rfill: span too long";
  fill t.rc ~slot ~pc v;
  t.los.(slot) <- lo;
  t.his.(slot) <- hi;
  if lo < t.span_lo then t.span_lo <- lo;
  if hi > t.span_hi then t.span_hi <- hi

let rkill t slot =
  if t.rc.tags.(slot) >= 0 then begin
    t.rc.tags.(slot) <- -1;
    t.rc.payloads.(slot) <- t.rc.dummy;
    t.his.(slot) <- 0;
    t.rc.invalidations <- t.rc.invalidations + 1;
    (* The dead entry may be the target of chained links elsewhere in
       the cache; unlink them all before the next transfer. *)
    t.chain_epoch <- t.chain_epoch + 1
  end

(* A store granule [g, g+8) can only intersect entries whose start PC
   lies in [g + 4 - max_span, g + 4]: an overlapping entry has
   lo < g + 8 (so lo <= g + 4, word-aligned) and lo + max_span >= hi > g
   (so lo >= g + 4 - max_span).  That is at most max_span/4 + 1
   candidate starts, each a masked probe; entries are word-granular, so
   the candidate walk covers every possible overlap. *)
let rkill_store t addr =
  let g = addr land lnot 7 in
  if g + 8 > t.span_lo && g < t.span_hi then begin
    let first = g + 4 - t.max_span and last = g + 4 in
    let pc = ref (if first < 0 then 0 else first) in
    while !pc <= last do
      let s = slot t.rc !pc in
      if
        Array.unsafe_get t.rc.tags s = !pc
        && Array.unsafe_get t.los s < g + 8
        && Array.unsafe_get t.his s > g
      then rkill t s;
      pc := !pc + 4
    done
  end

let rflush t =
  flush t.rc;
  Array.fill t.his 0 (Array.length t.his) 0;
  t.span_lo <- max_int;
  t.span_hi <- 0;
  t.chain_epoch <- t.chain_epoch + 1

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    flushes = t.flushes;
    chain_hits = 0;
    chain_unlinks = 0;
    superblocks_formed = 0;
    side_exits = 0;
  }

(* Ranged-cache stats: the plain counters of the underlying cache plus
   the chain/superblock counters that only exist at this layer. *)
let rstats t : stats =
  {
    (stats t.rc) with
    chain_hits = t.chain_hits;
    chain_unlinks = t.chain_unlinks;
    superblocks_formed = t.superblocks_formed;
    side_exits = t.side_exits;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0;
  t.flushes <- 0
