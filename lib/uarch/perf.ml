module Machine = Cheriot_isa.Machine
module Decode_cache = Cheriot_isa.Decode_cache

type dispatch = Reference | Cached | Block | Chain | Jit

type stats = {
  cycles : int;
  instructions : int;
  mem_busy : int;
  traps : int;
  decode_hits : int;
  decode_misses : int;
  decode_invalidations : int;
  block_hits : int;
  block_misses : int;
  block_invalidations : int;
  avg_block_len : float;
}

let cpi s =
  if s.instructions = 0 then 0.0
  else float_of_int s.cycles /. float_of_int s.instructions

let pp_stats fmt s =
  Format.fprintf fmt "%d cycles, %d insns (CPI %.2f), %d mem-busy, %d traps"
    s.cycles s.instructions (cpi s) s.mem_busy s.traps;
  if s.decode_hits + s.decode_misses > 0 then
    Format.fprintf fmt ", decode$ %d/%d hits (%d inval)" s.decode_hits
      (s.decode_hits + s.decode_misses) s.decode_invalidations;
  if s.block_hits + s.block_misses > 0 then
    Format.fprintf fmt ", block$ %d/%d hits (%d inval, avg len %.1f)"
      s.block_hits
      (s.block_hits + s.block_misses)
      s.block_invalidations s.avg_block_len

type t = {
  machine : Machine.t;
  params : Core_model.params;
  revoker : Revoker.t option;
  dispatch : dispatch;
  mutable stats : stats;
}

let zero_stats =
  {
    cycles = 0;
    instructions = 0;
    mem_busy = 0;
    traps = 0;
    decode_hits = 0;
    decode_misses = 0;
    decode_invalidations = 0;
    block_hits = 0;
    block_misses = 0;
    block_invalidations = 0;
    avg_block_len = 0.0;
  }

let create ?revoker ?(dispatch = Reference) ~params machine =
  { machine; params; revoker; dispatch; stats = zero_stats }

let charge t ev =
  let cycles =
    Core_model.cycles_of_event t.params
      ~load_filter:t.machine.Machine.load_filter ev
  in
  let busy = Core_model.mem_cycles_of_event t.params ev in
  t.machine.Machine.mcycle <- t.machine.Machine.mcycle + cycles;
  (match t.revoker with
  | Some r ->
      (* The background engine steals the load-store unit whenever the
         main pipeline is not using it (3.3.3): grant this
         instruction's idle cycles in one batched call. *)
      Revoker.tick_n r (max 0 (cycles - busy))
  | None -> ());
  let dc = Machine.decode_stats t.machine in
  let bs = Machine.block_stats t.machine in
  t.stats <-
    {
      cycles = t.stats.cycles + cycles;
      instructions =
        (t.stats.instructions + match ev.Machine.ev_insn with Some _ -> 1 | None -> 0);
      mem_busy = t.stats.mem_busy + busy;
      traps =
        (t.stats.traps + match ev.Machine.ev_trap with Some _ -> 1 | None -> 0);
      (* cumulative machine-side counters, not deltas *)
      decode_hits = dc.Decode_cache.hits;
      decode_misses = dc.Decode_cache.misses;
      decode_invalidations = dc.Decode_cache.invalidations;
      block_hits = bs.Machine.block_hits;
      block_misses = bs.Machine.block_misses;
      block_invalidations = bs.Machine.block_invalidations;
      avg_block_len = Machine.avg_block_len bs;
    }

(* WFI idle: one cycle passes, fully available to the revoker. *)
let idle_cycle t =
  t.machine.Machine.mcycle <- t.machine.Machine.mcycle + 1;
  (match t.revoker with Some rv -> Revoker.tick rv | None -> ());
  t.stats <- { t.stats with cycles = t.stats.cycles + 1 }

let step t =
  match t.dispatch with
  | Reference | Cached ->
      let r =
        match t.dispatch with
        | Reference -> Machine.step t.machine
        | _ -> Machine.step_fast t.machine
      in
      (match r with
      | Machine.Step_waiting -> idle_cycle t
      | Machine.Step_ok | Machine.Step_trap _ | Machine.Step_halted
      | Machine.Step_double_fault ->
          charge t t.machine.Machine.last_event);
      r
  | Block | Chain | Jit ->
      let m = t.machine in
      (* Exactness guard: charging advances [mcycle] per instruction,
         so with interrupts enabled and the timer armed a comparator
         crossing could become deliverable {e between} two
         instructions of a block — a boundary the block path does not
         check.  Fall back to exact per-step cached dispatch for those
         (rare, interrupt-heavy) stretches. *)
      if m.Machine.mie && m.Machine.mtimecmp <> 0 then begin
        let r = Machine.step_fast m in
        (match r with
        | Machine.Step_waiting -> idle_cycle t
        | _ -> charge t m.Machine.last_event);
        r
      end
      else begin
        let r =
          match t.dispatch with
          | Jit -> Machine.step_jit m
          | Chain -> Machine.step_chain m
          | _ -> Machine.step_block m
        in
        (* A round ending in [Step_waiting] retired its instructions
           (if any) and then hit WFI: charge the retirements, then one
           idle cycle for the wait itself — exactly what the per-step
           loop does. *)
        let n = m.Machine.block_ev_n in
        let to_charge =
          match r with Machine.Step_waiting -> n - 1 | _ -> n
        in
        for i = 0 to to_charge - 1 do
          charge t m.Machine.block_events.(i)
        done;
        (match r with Machine.Step_waiting -> idle_cycle t | _ -> ());
        r
      end

let run ?(fuel = 50_000_000) t =
  let wake_source () =
    (* A pending or future timer interrupt can end a WFI. *)
    t.machine.Machine.mtimecmp <> 0 || Machine.interrupt_pending t.machine
  in
  let rec go n last =
    if n >= fuel then last
    else
      match step t with
      | (Machine.Step_ok | Machine.Step_trap _) as r -> go (n + 1) r
      | Machine.Step_waiting when wake_source () ->
          go (n + 1) Machine.Step_waiting
      | (Machine.Step_waiting | Machine.Step_halted | Machine.Step_double_fault)
        as r ->
          r
  in
  go 0 Machine.Step_ok

let idle_until t cond =
  let spent = ref 0 in
  while (not (cond ())) && !spent < 100_000_000 do
    incr spent;
    t.machine.Machine.mcycle <- t.machine.Machine.mcycle + 1;
    match t.revoker with Some r -> Revoker.tick r | None -> ()
  done;
  t.stats <- { t.stats with cycles = t.stats.cycles + !spent };
  !spent
