open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Mmio = Cheriot_mem.Mmio
module Bus = Cheriot_mem.Bus

type t = {
  sram : Sram.t;
  rev : Revbits.t;
  pipelined : bool;
  bus_beats : int;  (** bus beats per 8-byte load (1 on Flute, 2 on Ibex) *)
  mutable start_a : int;
  mutable end_a : int;
  mutable epoch : int;
  mutable sweeping : bool;
  mutable pos : int;
  (* Pipeline stages as inline mutable fields — no slot records, no
     boxed int64s — so the sweep itself never allocates: the 64-bit
     capability word travels as two native ints read through the SRAM's
     unchecked window accessors (the same allocation-free window
     discipline as the machine's data fast path; [kick] clamps the
     sweep range into the SRAM, which is what proves the unchecked
     reads in range).  Stage 1 holds the just-loaded word; stage 2 the
     word whose revocation bit is being checked. *)
  mutable s1_live : bool;
  mutable s1_addr : int;
  mutable s1_tag : bool;
  mutable s1_lo : int;
  mutable s1_hi : int;
  mutable s1_dirty : bool;
  mutable s2_live : bool;
  mutable s2_addr : int;
  mutable s2_tag : bool;
  mutable s2_lo : int;
  mutable s2_hi : int;
  mutable s2_dirty : bool;
  mutable stall : int;  (** remaining beats of the bus op in progress *)
  mutable n_invalidated : int;
  mutable n_swept : int;
  mutable n_busy : int;
  mutable n_race : int;
}

let create ?(pipelined = true) ~core ~sram ~rev () =
  {
    sram;
    rev;
    pipelined;
    bus_beats = (match (core : Core_model.core) with Flute -> 1 | Ibex -> 2);
    start_a = 0;
    end_a = 0;
    epoch = 0;
    sweeping = false;
    pos = 0;
    s1_live = false;
    s1_addr = 0;
    s1_tag = false;
    s1_lo = 0;
    s1_hi = 0;
    s1_dirty = false;
    s2_live = false;
    s2_addr = 0;
    s2_tag = false;
    s2_lo = 0;
    s2_hi = 0;
    s2_dirty = false;
    stall = 0;
    n_invalidated = 0;
    n_swept = 0;
    n_busy = 0;
    n_race = 0;
  }

let epoch t = t.epoch
let sweeping t = t.sweeping
let caps_invalidated t = t.n_invalidated
let words_swept t = t.n_swept
let busy_cycles t = t.n_busy
let race_reloads t = t.n_race

let kick t ~start ~stop =
  if not t.sweeping then begin
    t.start_a <- start land lnot 7;
    t.end_a <- stop land lnot 7;
    (* Clamp the scan window into the SRAM: the stage loads below use
       the unchecked accessors, which are only defined in range.  A
       well-formed kick (the allocator's) is unaffected. *)
    let lo = Sram.base t.sram and hi = Sram.base t.sram + Sram.size t.sram in
    if t.start_a < lo then t.start_a <- lo;
    if t.end_a > hi then t.end_a <- hi;
    t.pos <- t.start_a;
    t.s1_live <- false;
    t.s2_live <- false;
    t.stall <- 0;
    t.sweeping <- true;
    t.epoch <- t.epoch + 1
  end

let snoop_store t addr =
  if t.sweeping then begin
    if t.s1_live && t.s1_addr = addr then begin
      t.s1_dirty <- true;
      t.n_race <- t.n_race + 1
    end;
    if t.s2_live && t.s2_addr = addr then begin
      t.s2_dirty <- true;
      t.n_race <- t.n_race + 1
    end
  end

(* Load the granule at [addr] into stage 1 ([kick] proved it in
   range). *)
let load_s1 t addr =
  t.s1_live <- true;
  t.s1_addr <- addr;
  t.s1_tag <- Sram.tag_at t.sram addr;
  t.s1_lo <- Sram.read32_u t.sram addr;
  t.s1_hi <- Sram.read32_u t.sram (addr + 4);
  t.s1_dirty <- false

let reload_s2 t =
  t.s2_tag <- Sram.tag_at t.sram t.s2_addr;
  t.s2_lo <- Sram.read32_u t.sram t.s2_addr;
  t.s2_hi <- Sram.read32_u t.sram (t.s2_addr + 4);
  t.s2_dirty <- false

let shift t =
  t.s2_live <- t.s1_live;
  t.s2_addr <- t.s1_addr;
  t.s2_tag <- t.s1_tag;
  t.s2_lo <- t.s1_lo;
  t.s2_hi <- t.s1_hi;
  t.s2_dirty <- t.s1_dirty;
  t.s1_live <- false

(* Only tagged words pay the capability decode (and its boxing) — the
   bulk of a sweep is untagged data, which this rejects on the inline
   tag bit alone. *)
let s2_needs_invalidation t =
  t.s2_tag
  &&
  let word =
    Int64.logor
      (Int64.shift_left (Int64.of_int t.s2_hi) 32)
      (Int64.of_int t.s2_lo)
  in
  Revbits.is_revoked t.rev
    (Capability.base (Capability.of_word ~tag:t.s2_tag word))

let finish_if_done t =
  if t.pos >= t.end_a && (not t.s1_live) && not t.s2_live then begin
    t.sweeping <- false;
    t.epoch <- t.epoch + 1
  end

(* One idle bus cycle granted by the core.  At most one bus beat happens
   per tick; multi-beat operations (the 33-bit Ibex bus) stall via
   [t.stall].  Invalidation uses a single half-word write — clearing one
   micro-tag clears the architectural tag (paper 7.2.2) — so it costs one
   beat even on Ibex. *)
let tick t =
  if t.sweeping then begin
    t.n_busy <- t.n_busy + 1;
    if t.stall > 0 then t.stall <- t.stall - 1
    else if t.s2_live && t.s2_dirty then begin
      (* Race: the main pipeline overwrote an in-flight word; reload
         before deciding anything (3.3.3). *)
      reload_s2 t;
      t.stall <- t.bus_beats - 1
    end
    else if t.s2_live && s2_needs_invalidation t then begin
      (* Single write clears the micro-tag, invalidating the cap. *)
      Sram.write32 t.sram t.s2_addr t.s2_lo;
      t.n_invalidated <- t.n_invalidated + 1;
      t.n_swept <- t.n_swept + 1;
      shift t;
      finish_if_done t
    end
    else begin
      (* Clean retire (no bus needed for the check itself): advance the
         pipeline and issue the next load. *)
      if t.s2_live then t.n_swept <- t.n_swept + 1;
      shift t;
      let may_issue =
        t.pos < t.end_a && (t.pipelined || ((not t.s1_live) && not t.s2_live))
      in
      if may_issue then begin
        load_s1 t t.pos;
        t.pos <- t.pos + 8;
        t.stall <- t.bus_beats - 1
      end;
      finish_if_done t
    end
  end

(* Grant [k] idle cycles in one call — what the perf harness does when
   an instruction left the bus idle for several cycles, instead of [k]
   word-at-a-time [tick]s.  Equivalent to [k] successive [tick]s by
   construction: stalled beats are consumed in bulk (each would only
   decrement [stall] and charge [n_busy]), and every cycle that does
   real work — retire, reload, invalidate, issue — still runs [tick],
   so sweep results, statistics and epoch transitions are bit-identical.
   A revoker that is not sweeping costs one compare. *)
let tick_n t k =
  let k = ref k in
  while !k > 0 && t.sweeping do
    if t.stall > 0 then begin
      let c = if t.stall < !k then t.stall else !k in
      t.stall <- t.stall - c;
      t.n_busy <- t.n_busy + c;
      k := !k - c
    end
    else begin
      tick t;
      decr k
    end
  done

let run_to_completion t =
  let n = ref 0 in
  while t.sweeping do
    tick t;
    incr n
  done;
  !n

let mmio t ~base =
  let read32 off =
    match off with
    | 0 -> t.start_a
    | 4 -> t.end_a
    | 8 -> t.epoch
    | _ -> 0
  in
  let write32 off v =
    match off with
    | 0 -> t.start_a <- v land lnot 7
    | 4 -> t.end_a <- v land lnot 7
    | 12 -> kick t ~start:t.start_a ~stop:t.end_a
    | _ -> ()
  in
  { Mmio.name = "revoker"; dev_base = base; dev_size = 16; read32; write32 }

let attach t bus ~base =
  Bus.add_device bus (mmio t ~base);
  Bus.on_store bus (snoop_store t)
