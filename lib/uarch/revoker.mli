(** The background pipelined revoker engine (paper 3.3.3).

    A simple state machine that engages the load-store unit whenever the
    main pipeline is not performing memory operations, advancing through
    memory, loading each capability word and invalidating (via the load
    filter's check) those whose base points into freed memory.  A naive
    single-stage implementation wastes the one-cycle revocation-bit
    lookup delay; the two-stage version keeps two capability words in
    flight for full throughput (the DESIGN.md §5 pipelining ablation
    compares both).

    Exposed as an MMIO device with four registers:
    [start], [end], [epoch] (read-only) and [kick] (write-only; starts a
    pass over [[start, end)], no effect if one is underway).

    The race with the main pipeline — revoker loads a word, the
    application overwrites it, the revoker writes back a stale
    invalidated copy — is resolved by snooping stores: a store address
    matching an in-flight word forces a reload (paper 3.3.3). *)

type t

val create : ?pipelined:bool -> core:Core_model.core ->
  sram:Cheriot_mem.Sram.t -> rev:Cheriot_mem.Revbits.t -> unit -> t
(** [pipelined] defaults to [true] (the two-stage engine). *)

val mmio : t -> base:int -> Cheriot_mem.Mmio.device
(** The device window: [start]@+0, [end]@+4, [epoch]@+8, [kick]@+12. *)

val attach : t -> Cheriot_mem.Bus.t -> base:int -> unit
(** Register the MMIO window and the store snoop on a bus. *)

val kick : t -> start:int -> stop:int -> unit
(** Start a sweep directly (what a [kick] register write does). *)

val epoch : t -> int
(** Odd while a sweep is in progress (incremented at start and at
    completion), exactly like the software revoker's epoch (3.3.2). *)

val sweeping : t -> bool

val tick : t -> unit
(** Grant the engine one idle memory cycle. *)

val tick_n : t -> int -> unit
(** [tick_n t k] grants [k] idle cycles in one call — bit-identical in
    sweep results, statistics and epoch transitions to [k] successive
    {!tick}s, but bus stalls are consumed in bulk and a non-sweeping
    engine costs one compare.  The perf harness charges each
    instruction's idle cycles through this instead of a tick loop. *)

val snoop_store : t -> int -> unit
(** Notify the engine of a main-pipeline store (granule-aligned). *)

val run_to_completion : t -> int
(** Grant cycles until the sweep finishes; returns cycles consumed.
    Models a fully idle CPU waiting on revocation. *)

(** {1 Statistics} *)

val caps_invalidated : t -> int
val words_swept : t -> int
val busy_cycles : t -> int
val race_reloads : t -> int
