(** The performance harness: runs the ISA emulator under a cycle model,
    advancing [mcycle], feeding idle memory cycles to the background
    revoker, and collecting statistics. *)

(** Which fetch/decode path drives the machine.  [Reference] re-decodes
    every instruction ([Machine.step]); [Cached] runs from the
    decoded-instruction cache ([Machine.step_fast]); [Block] runs whole
    translated basic blocks ([Machine.step_block]), charging each
    retired instruction from the block's event ring; [Chain]
    additionally follows chained block-to-block links and superblocks
    ([Machine.step_chain]); [Jit] runs chained rounds with each block
    compiled to an optimized check plan ([Machine.step_jit]).  The
    block/chain/jit paths fall back to per-step cached dispatch
    whenever interrupts are enabled with the timer armed, where a
    mid-block [mcycle] comparator crossing could otherwise be
    observable.  All five produce identical architectural traces and
    cycle counts — simulator-speed optimizations, invisible to the
    modelled hardware. *)
type dispatch = Reference | Cached | Block | Chain | Jit

type stats = {
  cycles : int;
  instructions : int;
  mem_busy : int;  (** cycles the data bus was busy with CPU traffic *)
  traps : int;
  decode_hits : int;  (** decoded-instruction cache hits (cumulative) *)
  decode_misses : int;
  decode_invalidations : int;  (** entries killed by store snoops *)
  block_hits : int;  (** block-cache hits (cumulative) *)
  block_misses : int;
  block_invalidations : int;  (** blocks killed by store snoops *)
  avg_block_len : float;  (** mean fill-time block length *)
}

val cpi : stats -> float
val pp_stats : Format.formatter -> stats -> unit

type t = {
  machine : Cheriot_isa.Machine.t;
  params : Core_model.params;
  revoker : Revoker.t option;
  dispatch : dispatch;
  mutable stats : stats;
}

val create : ?revoker:Revoker.t -> ?dispatch:dispatch ->
  params:Core_model.params -> Cheriot_isa.Machine.t -> t
(** [dispatch] defaults to [Reference]. *)

val step : t -> Cheriot_isa.Machine.result
(** One instruction: steps the machine (via the configured dispatch
    path), charges cycles, grants the revoker the idle memory slots of
    those cycles. *)

val run : ?fuel:int -> t -> Cheriot_isa.Machine.result
(** Run until halt / double fault / WFI-with-no-interrupt-source, or
    [fuel] instructions (default 50M). *)

val idle_until : t -> (unit -> bool) -> int
(** Model an idle CPU (e.g. blocked on revocation): burn cycles — all of
    them available to the revoker — until the condition holds; returns
    the cycles spent.  Gives up after 100M cycles. *)
