(* Decode-cache invalidation regressions.

   The decoded-instruction cache must never serve a stale decode: any
   store through the bus — from the running program (self-modifying
   code) or from a loader — invalidates the written granule, and
   writers that bypass the bus must flush.  Each test rewrites code one
   of those ways and checks the re-executed instruction's *new*
   semantics take effect on the cached path, agreeing with the
   reference interpreter. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus

let code_base = 0x1_0000
let code_size = 0x400

let boot words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  Bus.add_sram bus code;
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  Machine.flush_decode_cache m;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  (m, code)

let run ~fast m =
  let step = if fast then Machine.step_fast else Machine.step in
  let rec go n =
    if n > 10_000 then Alcotest.fail "program did not halt"
    else
      match step m with
      | Machine.Step_halted -> ()
      | Machine.Step_ok -> go (n + 1)
      | Machine.Step_trap c -> Alcotest.failf "trapped: %a" Machine.pp_cause c
      | Machine.Step_waiting | Machine.Step_double_fault ->
          Alcotest.fail "unexpected stop"
  in
  go 0

(* The instruction that gets rewritten, in both versions.  Final [c2]
   tells which decode executed: the old one adds 1, the new one 16. *)
let old_insn = Insn.Op_imm (Add, 2, 2, 1)
let new_insn = Insn.Op_imm (Add, 2, 2, 16)

(* Self-modifying code: pass 1 executes (and caches) the old word 0,
   then stores the new encoding over it and branches back; pass 2 must
   see the new semantics.  Expected c2 = 1 + 16. *)
let test_self_modifying () =
  let program =
    Insn.
      [
        old_insn;
        (* word 0: the target *)
        Op_imm (Add, 1, 1, 1);
        (* word 1: pass counter *)
        Store { width = W; rs2 = 5; rs1 = 4; off = 0 };
        (* word 2: patch word 0 *)
        Branch (Ne, 1, 6, -12);
        (* word 3: loop while c1 <> 2 *)
        Ebreak;
      ]
  in
  let check ~fast =
    let m, _ = boot (List.map Encode.encode program) in
    (* c4: store authority over the code region (the program patches
       itself through the bus, so the snoop must catch it). *)
    Machine.set_reg m 4
      (Capability.set_bounds
         (Capability.with_address Capability.root_mem_rw code_base)
         ~length:code_size ~exact:false);
    Machine.set_reg_int m 5 (Encode.encode new_insn);
    Machine.set_reg_int m 6 2;
    run ~fast m;
    Alcotest.(check int)
      (if fast then "cached path sees the patched instruction"
       else "reference path sees the patched instruction")
      17 (Machine.reg_int m 2);
    m
  in
  let _ = check ~fast:false in
  let m = check ~fast:true in
  let stats = Machine.decode_stats m in
  Alcotest.(check bool)
    "the patch store invalidated cached decodes" true
    (stats.Decode_cache.invalidations > 0)

let straight_line = Insn.[ old_insn; Ebreak ]

let reset m =
  m.Machine.pcc <- Capability.with_address m.Machine.pcc code_base;
  Machine.set_reg m 2 Capability.null

(* Loader patch: rewrite an already-cached word through [Bus.write]
   (integer store, as a loader relocating code would), re-run. *)
let test_loader_patch () =
  let m, _ = boot (List.map Encode.encode straight_line) in
  run ~fast:true m;
  Alcotest.(check int) "first run, old semantics" 1 (Machine.reg_int m 2);
  let before = (Machine.decode_stats m).Decode_cache.invalidations in
  Bus.write m.Machine.bus ~width:4 code_base (Encode.encode new_insn);
  let after = (Machine.decode_stats m).Decode_cache.invalidations in
  Alcotest.(check bool) "bus store snooped" true (after > before);
  reset m;
  run ~fast:true m;
  Alcotest.(check int) "patched run, new semantics" 16 (Machine.reg_int m 2)

(* Direct SRAM write: bypasses the bus snoop, so the cache is
   legitimately stale until flushed.  The stale read is asserted too —
   it proves the cache really is serving decodes (the hazard documented
   on [Machine.flush_decode_cache]), so this test would catch the snoop
   silently watching the wrong channel. *)
let test_bypass_needs_flush () =
  let m, code = boot (List.map Encode.encode straight_line) in
  run ~fast:true m;
  Alcotest.(check int) "first run, old semantics" 1 (Machine.reg_int m 2);
  Sram.write32 code code_base (Encode.encode new_insn);
  reset m;
  run ~fast:true m;
  Alcotest.(check int)
    "bypass write unseen: cached decode still served" 1 (Machine.reg_int m 2);
  Machine.flush_decode_cache m;
  reset m;
  run ~fast:true m;
  Alcotest.(check int) "after flush, new semantics" 16 (Machine.reg_int m 2);
  (* The reference interpreter never consults the cache, so it sees the
     bypass write immediately, flush or not. *)
  let m2, code2 = boot (List.map Encode.encode straight_line) in
  Sram.write32 code2 code_base (Encode.encode new_insn);
  run ~fast:false m2;
  Alcotest.(check int) "reference path unaffected" 16 (Machine.reg_int m2 2)

(* Hit/miss accounting on a deterministic loop: 4 iterations of a
   2-word loop plus the final ebreak fetch = 9 fetches over 3 distinct
   words — 3 cold misses, 6 hits, nothing invalidated. *)
let test_stats_accounting () =
  let program =
    Insn.
      [
        Op_imm (Add, 1, 1, 1); Branch (Ne, 1, 6, -4); Ebreak;
      ]
  in
  let m, _ = boot (List.map Encode.encode program) in
  Machine.set_reg_int m 6 4;
  Decode_cache.reset_stats m.Machine.dcache;
  run ~fast:true m;
  let s = Machine.decode_stats m in
  Alcotest.(check int) "misses = distinct words" 3 s.Decode_cache.misses;
  Alcotest.(check int) "hits = refetches" 6 s.Decode_cache.hits;
  Alcotest.(check int) "no invalidations" 0 s.Decode_cache.invalidations;
  (* The reference path must not touch the cache at all. *)
  let m2, _ = boot (List.map Encode.encode program) in
  Machine.set_reg_int m2 6 4;
  Decode_cache.reset_stats m2.Machine.dcache;
  run ~fast:false m2;
  let s2 = Machine.decode_stats m2 in
  Alcotest.(check int) "reference path: no hits" 0 s2.Decode_cache.hits;
  Alcotest.(check int) "reference path: no misses" 0 s2.Decode_cache.misses

let suite =
  [
    Alcotest.test_case "self-modifying code re-decodes" `Quick
      test_self_modifying;
    Alcotest.test_case "loader patch through the bus invalidates" `Quick
      test_loader_patch;
    Alcotest.test_case "bus-bypass writes need an explicit flush" `Quick
      test_bypass_needs_flush;
    Alcotest.test_case "hit/miss/invalidation accounting" `Quick
      test_stats_accounting;
  ]
