(* Tests for the incremental (summary-cache) audit mode (DESIGN.md §15).

   Three layers:
   - warm-cache identity: re-auditing every shipped and corpus image
     through a primed cache reuses every compartment summary and
     reproduces the cold report byte for byte;
   - the qcheck property: over random multi-compartment scenarios, a
     warm re-audit after a single-compartment code patch re-analyzes
     exactly the patched compartment and still matches a from-scratch
     audit byte for byte;
   - the [Driver.incremental] exit-code contract. *)

module Audit = Cheriot_analysis.Audit
module Summary = Cheriot_analysis.Summary
module Rules = Cheriot_analysis.Rules
module Corpus = Cheriot_analysis.Corpus
module Driver = Cheriot_analysis.Driver
module Firmware = Cheriot_workloads.Firmware
module Scenario = Cheriot_proptest.Scenario
module Iters = Cheriot_proptest.Iters
module Encode = Cheriot_isa.Encode
module Asm = Cheriot_isa.Asm
module Loader = Cheriot_rtos.Loader
module Sram = Cheriot_mem.Sram

let report name findings =
  Rules.report_to_json [ (name, Rules.sort_findings findings) ]

let all_images () =
  Firmware.shipped
  @ List.map
      (fun (e : Corpus.entry) -> (e.Corpus.name, e.Corpus.build))
      Corpus.entries

(* Re-auditing an unchanged image through a primed cache must hit for
   every compartment and reproduce the cold report exactly. *)
let test_warm_identity () =
  List.iter
    (fun (name, build) ->
      let cache = Summary.create_cache () in
      let cold, _ = Audit.run_stats ~cache (build ()) in
      let warm, st = Audit.run_stats ~cache (build ()) in
      Alcotest.(check int)
        (name ^ ": warm pass misses nothing")
        0 st.Audit.cache_misses;
      Alcotest.(check int)
        (name ^ ": every summary reused")
        st.Audit.compartments st.Audit.cache_hits;
      Alcotest.(check string)
        (name ^ ": warm report byte-identical")
        (report name cold) (report name warm))
    (all_images ())

(* The scenario compiler places a patchable [Add a3, a3, 0] at a fixed
   offset in every compartment's prologue; bumping its immediate is the
   canonical one-compartment recompile. *)
let patch_comp (t : Loader.t) j =
  let b = Loader.find t (Scenario.comp_name j) in
  Sram.write32 t.Loader.sram
    (b.Loader.image.Asm.origin + Scenario.patch_offset)
    (Encode.encode Scenario.patch_insn_after)

let prop_incremental_equals_scratch (sc, seed) =
  let cache = Summary.create_cache () in
  let l0 = Scenario.link ~instrument:false sc in
  ignore (Audit.run_stats ~cache l0.Scenario.t);
  let j = seed mod l0.Scenario.n in
  let warm_l = Scenario.link ~instrument:false sc in
  patch_comp warm_l.Scenario.t j;
  let warm, st = Audit.run_stats ~cache warm_l.Scenario.t in
  let cold_l = Scenario.link ~instrument:false sc in
  patch_comp cold_l.Scenario.t j;
  let cold = Audit.run cold_l.Scenario.t in
  if st.Audit.cache_misses <> 1 || st.Audit.cache_hits <> l0.Scenario.n - 1
  then
    QCheck.Test.fail_reportf
      "cache stats off: %d compartments, %d hits, %d misses (patched c%d)"
      l0.Scenario.n st.Audit.cache_hits st.Audit.cache_misses j;
  let w = report "sc" warm and c = report "sc" cold in
  if not (String.equal w c) then
    QCheck.Test.fail_reportf "incremental diverged from scratch:@.%s@.vs@.%s"
      w c;
  true

let t_incremental =
  QCheck.Test.make
    ~name:
      "incremental re-audit = from-scratch under single-compartment patches"
    ~count:(Iters.count ~default:25)
    (QCheck.pair (Scenario.arb ()) QCheck.small_nat)
    prop_incremental_equals_scratch

let test_driver_contract () =
  Alcotest.(check int) "incremental: unknown image is exit 2" 2
    (Driver.incremental ~images:Firmware.shipped ~name:"nosuch" ());
  Alcotest.(check int)
    "incremental: shipped images reuse the cache and match cold (exit 0)" 0
    (Driver.incremental ~images:Firmware.shipped ())

let suite =
  [
    Alcotest.test_case "warm-cache re-audit byte-identical on every image"
      `Quick test_warm_identity;
    QCheck_alcotest.to_alcotest t_incremental;
    Alcotest.test_case "Driver.incremental exit codes" `Quick
      test_driver_contract;
  ]
