(* ISA tests: binary encode/decode roundtrip, and executable semantics of
   the CHERIoT extensions (paper 3): sentries, the load filter, the stack
   high-water mark, store-local, attenuating loads. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Revbits = Cheriot_mem.Revbits

(* --- encode/decode roundtrip ---------------------------------------- *)

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let imm12 = map (fun n -> n - 2048) (int_bound 4095) in
  let uimm12 = int_bound 4095 in
  let imm20 = int_bound 0xfffff in
  let boff = map (fun n -> (n - 2048) * 2) (int_bound 4095) in
  let joff = map (fun n -> (n - 262144) * 2) (int_bound 524287) in
  let shamt = int_bound 31 in
  let branch_cond = oneofl Insn.[ Eq; Ne; Lt; Ge; Ltu; Geu ] in
  let alu_i = oneofl Insn.[ Add; Slt; Sltu; Xor; Or; And ] in
  let alu_r = oneofl Insn.[ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let muldiv =
    oneofl Insn.[ Mul; Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu ]
  in
  let width = oneofl Insn.[ B; H; W ] in
  let getter = oneofl Insn.[ Addr; Base; Top; Len; Perm; Type; Tag ] in
  let scr = oneofl Insn.[ MTCC; MTDC; MScratchC; MEPCC ] in
  let csr_num = oneofl [ 0x300; 0x342; 0xB00; 0x7C1; 0x7C2 ] in
  oneof
    [
      map2 (fun rd i -> Insn.Lui (rd, i)) reg imm20;
      map2 (fun rd i -> Insn.Auipcc (rd, i)) reg imm20;
      map2 (fun rd o -> Insn.Jal (rd, o)) reg joff;
      map3 (fun rd rs o -> Insn.Jalr (rd, rs, o)) reg reg imm12;
      (let* c = branch_cond and* a = reg and* b = reg and* o = boff in
       return (Insn.Branch (c, a, b, o)));
      (let* s = bool and* w = width and* rd = reg and* rs1 = reg
       and* off = imm12 in
       let s = if w = Insn.W then true else s in
       return (Insn.Load { signed = s; width = w; rd; rs1; off }));
      (let* w = width and* rs2 = reg and* rs1 = reg and* off = imm12 in
       return (Insn.Store { width = w; rs2; rs1; off }));
      map3 (fun op rd rs1 -> Insn.Op_imm (op, rd, rs1, 7)) alu_i reg reg;
      (let* op = alu_i and* rd = reg and* rs1 = reg and* i = imm12 in
       return (Insn.Op_imm (op, rd, rs1, i)));
      (let* op = oneofl Insn.[ Sll; Srl; Sra ] and* rd = reg and* rs1 = reg
       and* sh = shamt in
       return (Insn.Op_imm (op, rd, rs1, sh)));
      (let* op = alu_r and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Insn.Op (op, rd, rs1, rs2)));
      (let* op = muldiv and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Insn.Mul_div (op, rd, rs1, rs2)));
      oneofl Insn.[ Ecall; Ebreak; Mret; Wfi ];
      (let* op = oneofl Insn.[ Csrrw; Csrrs; Csrrc ] and* rd = reg
       and* rs1 = reg and* n = csr_num in
       return (Insn.Csr (op, rd, rs1, n)));
      map3 (fun rd rs1 off -> Insn.Clc (rd, rs1, off)) reg reg imm12;
      map3 (fun rs2 rs1 off -> Insn.Csc (rs2, rs1, off)) reg reg imm12;
      map3 (fun a b c -> Insn.Cincaddr (a, b, c)) reg reg reg;
      map3 (fun a b i -> Insn.Cincaddrimm (a, b, i)) reg reg imm12;
      map3 (fun a b c -> Insn.Csetaddr (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Csetbounds (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Csetboundsexact (a, b, c)) reg reg reg;
      map3 (fun a b i -> Insn.Csetboundsimm (a, b, i)) reg reg uimm12;
      map2 (fun a b -> Insn.Crrl (a, b)) reg reg;
      map2 (fun a b -> Insn.Cram (a, b)) reg reg;
      map3 (fun a b c -> Insn.Candperm (a, b, c)) reg reg reg;
      map2 (fun a b -> Insn.Ccleartag (a, b)) reg reg;
      map2 (fun a b -> Insn.Cmove (a, b)) reg reg;
      map3 (fun a b c -> Insn.Cseal (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Cunseal (a, b, c)) reg reg reg;
      map3 (fun g a b -> Insn.Cget (g, a, b)) getter reg reg;
      map3 (fun a b c -> Insn.Csub (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Ctestsubset (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Csetequalexact (a, b, c)) reg reg reg;
      map3 (fun a s b -> Insn.Cspecialrw (a, s, b)) reg scr reg;
    ]

let prop_encode_decode =
  QCheck.Test.make ~name:"insn encode/decode roundtrip" ~count:5000
    (QCheck.make ~print:Insn.to_string gen_insn)
    (fun i ->
      match Encode.decode (Encode.encode i) with
      | Some i' -> i = i'
      | None -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:5000
    QCheck.(int_bound 0xFFFFFFF)
    (fun w ->
      ignore (Encode.decode w);
      ignore (Encode.decode (w lor 0x5B));
      true)

(* --- exhaustive encode/decode roundtrip -------------------------------- *)

(* Deterministic companion to the random property above: every
   constructor of [Insn.t], with every register value in every register
   field and boundary values in every immediate field.  ~150k
   instructions; constructor coverage is asserted via [ctor_index], whose
   match the compiler keeps exhaustive against [Insn.t]. *)

let ctor_index : Insn.t -> int = function
  | Lui _ -> 0
  | Auipcc _ -> 1
  | Jal _ -> 2
  | Jalr _ -> 3
  | Branch _ -> 4
  | Load _ -> 5
  | Store _ -> 6
  | Op_imm _ -> 7
  | Op _ -> 8
  | Mul_div _ -> 9
  | Ecall -> 10
  | Ebreak -> 11
  | Mret -> 12
  | Wfi -> 13
  | Csr _ -> 14
  | Clc _ -> 15
  | Csc _ -> 16
  | Cincaddr _ -> 17
  | Cincaddrimm _ -> 18
  | Csetaddr _ -> 19
  | Csetbounds _ -> 20
  | Csetboundsexact _ -> 21
  | Csetboundsimm _ -> 22
  | Crrl _ -> 23
  | Cram _ -> 24
  | Candperm _ -> 25
  | Ccleartag _ -> 26
  | Cmove _ -> 27
  | Cseal _ -> 28
  | Cunseal _ -> 29
  | Cget _ -> 30
  | Csub _ -> 31
  | Ctestsubset _ -> 32
  | Csetequalexact _ -> 33
  | Cspecialrw _ -> 34

let n_ctors = 35

let exhaustive_insns () =
  let acc = ref [] in
  let add i = acc := i :: !acc in
  let regs = List.init 16 (fun r -> r) in
  let iter1 f = List.iter f regs in
  let iter2 f = iter1 (fun a -> iter1 (fun b -> f a b)) in
  let iter3 f = iter2 (fun a b -> iter1 (fun c -> f a b c)) in
  let imm12 = [ -2048; -1; 0; 1; 7; 2047 ] in
  let uimm12 = [ 0; 1; 511; 4095 ] in
  let imm20 = [ 0; 1; 0xABCDE; 0xFFFFF ] in
  let boff = [ -4096; -2; 0; 2; 4094 ] in
  let joff = [ -1048576; -2; 0; 2; 1048574 ] in
  let shamt = [ 0; 1; 31 ] in
  let csrs = [ 0x300; 0x342; 0xB00; 0x7C1; 0x7C2 ] in
  List.iter
    (fun i ->
      iter1 (fun rd ->
          add (Insn.Lui (rd, i));
          add (Insn.Auipcc (rd, i))))
    imm20;
  List.iter (fun o -> iter1 (fun rd -> add (Insn.Jal (rd, o)))) joff;
  List.iter (fun o -> iter2 (fun rd rs -> add (Insn.Jalr (rd, rs, o)))) imm12;
  List.iter
    (fun o ->
      List.iter
        (fun c -> iter2 (fun a b -> add (Insn.Branch (c, a, b, o))))
        Insn.[ Eq; Ne; Lt; Ge; Ltu; Geu ])
    boff;
  List.iter
    (fun off ->
      List.iter
        (fun (signed, width) ->
          iter2 (fun rd rs1 -> add (Insn.Load { signed; width; rd; rs1; off })))
        Insn.[ (true, B); (false, B); (true, H); (false, H); (true, W) ];
      List.iter
        (fun width ->
          iter2 (fun rs2 rs1 -> add (Insn.Store { width; rs2; rs1; off })))
        Insn.[ B; H; W ];
      iter2 (fun rd rs1 ->
          add (Insn.Clc (rd, rs1, off));
          add (Insn.Csc (rd, rs1, off));
          add (Insn.Cincaddrimm (rd, rs1, off)));
      List.iter
        (fun op -> iter2 (fun rd rs1 -> add (Insn.Op_imm (op, rd, rs1, off))))
        Insn.[ Add; Slt; Sltu; Xor; Or; And ])
    imm12;
  List.iter
    (fun sh ->
      List.iter
        (fun op -> iter2 (fun rd rs1 -> add (Insn.Op_imm (op, rd, rs1, sh))))
        Insn.[ Sll; Srl; Sra ])
    shamt;
  List.iter
    (fun op -> iter3 (fun rd rs1 rs2 -> add (Insn.Op (op, rd, rs1, rs2))))
    Insn.[ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ];
  List.iter
    (fun op -> iter3 (fun rd rs1 rs2 -> add (Insn.Mul_div (op, rd, rs1, rs2))))
    Insn.[ Mul; Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu ];
  List.iter add Insn.[ Ecall; Ebreak; Mret; Wfi ];
  List.iter
    (fun n ->
      List.iter
        (fun op -> iter2 (fun rd rs1 -> add (Insn.Csr (op, rd, rs1, n))))
        Insn.[ Csrrw; Csrrs; Csrrc ])
    csrs;
  iter3 (fun a b c ->
      add (Insn.Cincaddr (a, b, c));
      add (Insn.Csetaddr (a, b, c));
      add (Insn.Csetbounds (a, b, c));
      add (Insn.Csetboundsexact (a, b, c));
      add (Insn.Candperm (a, b, c));
      add (Insn.Cseal (a, b, c));
      add (Insn.Cunseal (a, b, c));
      add (Insn.Csub (a, b, c));
      add (Insn.Ctestsubset (a, b, c));
      add (Insn.Csetequalexact (a, b, c)));
  List.iter
    (fun i -> iter2 (fun a b -> add (Insn.Csetboundsimm (a, b, i))))
    uimm12;
  iter2 (fun a b ->
      add (Insn.Crrl (a, b));
      add (Insn.Cram (a, b));
      add (Insn.Ccleartag (a, b));
      add (Insn.Cmove (a, b));
      List.iter
        (fun g -> add (Insn.Cget (g, a, b)))
        Insn.[ Addr; Base; Top; Len; Perm; Type; Tag ];
      List.iter
        (fun s -> add (Insn.Cspecialrw (a, s, b)))
        Insn.[ MTCC; MTDC; MScratchC; MEPCC ]);
  !acc

let test_exhaustive_roundtrip () =
  let insns = exhaustive_insns () in
  let seen = Array.make n_ctors false in
  List.iter
    (fun i ->
      seen.(ctor_index i) <- true;
      match Encode.decode (Encode.encode i) with
      | Some i' when i = i' -> ()
      | Some i' ->
          Alcotest.failf "roundtrip changed %s into %s" (Insn.to_string i)
            (Insn.to_string i')
      | None -> Alcotest.failf "%s does not decode back" (Insn.to_string i))
    insns;
  Array.iteri
    (fun k covered ->
      if not covered then Alcotest.failf "constructor %d not enumerated" k)
    seen;
  Alcotest.(check bool) "enumeration is substantial" true
    (List.length insns > 100_000)

(* --- machine harness -------------------------------------------------- *)

let code_base = 0x10000
let data_base = 0x20000
let stack_base = 0x30000
let stack_size = 0x1000
let heap_base = 0x40000
let heap_size = 0x10000

type sys = { m : Machine.t; sram : Sram.t; rev : Revbits.t }

let make_sys ?(mode = Machine.Cheriot) ?(load_filter = true) () =
  let bus = Bus.create () in
  let sram = Sram.create ~base:code_base ~size:0x48000 in
  Bus.add_sram bus sram;
  let rev = Revbits.create ~heap_base ~heap_size () in
  Bus.set_revbits bus rev;
  let m = Machine.create ~mode ~load_filter bus in
  { m; sram; rev }

(* Standard register setup: c2 = stack cap (with SL, local), c3 = data cap,
   c4 = heap cap. *)
let setup_regs sys =
  let open Capability in
  let m = sys.m in
  m.Machine.pcc <-
    (let c = with_address root_executable code_base in
     set_bounds c ~length:0x8000 ~exact:false);
  let stack =
    let c = with_address root_mem_rw stack_base in
    let c = set_bounds c ~length:stack_size ~exact:true in
    clear_perms c [ GL ]
  in
  Machine.set_reg m 2 stack;
  let data =
    let c = with_address root_mem_rw data_base in
    let c = set_bounds c ~length:0x8000 ~exact:true in
    clear_perms c [ SL ]
  in
  Machine.set_reg m 3 data;
  let heap =
    let c = with_address root_mem_rw heap_base in
    set_bounds c ~length:heap_size ~exact:true
  in
  Machine.set_reg m 4 heap;
  Machine.set_reg m 2 Capability.(incr_address stack stack_size)

let run_items ?(mode = Machine.Cheriot) ?(load_filter = true) ?(fuel = 100000)
    items =
  let sys = make_sys ~mode ~load_filter () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys.sram;
  if mode = Machine.Cheriot then setup_regs sys
  else sys.m.Machine.pcc <- Capability.{ root_executable with addr = code_base };
  let result, steps = Machine.run ~fuel sys.m in
  (sys, result, steps)

let check_halted result =
  match result with
  | Machine.Step_halted -> ()
  | r ->
      Alcotest.failf "expected halt, got %s"
        (match r with
        | Machine.Step_ok -> "ok"
        | Step_trap _ -> "trap"
        | Step_waiting -> "waiting"
        | Step_halted -> "halted"
        | Step_double_fault -> "double fault")

let a0 = Insn.reg_a0
let a1 = Insn.reg_a1
let a2 = Insn.reg_a2
let t0 = Insn.reg_t0
let sp = Insn.reg_sp
let gp = Insn.reg_gp

(* --- semantics tests -------------------------------------------------- *)

let test_alu_loop () =
  (* sum of 1..10 via a branch loop *)
  let items =
    [
      Asm.I (Insn.Op_imm (Add, a0, 0, 0));
      Asm.I (Insn.Op_imm (Add, t0, 0, 10));
      Asm.Label "loop";
      Asm.I (Insn.Op (Add, a0, a0, t0));
      Asm.I (Insn.Op_imm (Add, t0, t0, -1));
      Asm.B (Insn.Ne, t0, 0, "loop");
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "sum" 55 (Machine.reg_int sys.m a0)

let test_muldiv () =
  let items =
    [
      Asm.Li (a0, 1234567);
      Asm.Li (a1, 891);
      Asm.I (Insn.Mul_div (Mul, a2, a0, a1));
      Asm.I (Insn.Mul_div (Div, t0, a0, a1));
      Asm.I (Insn.Mul_div (Rem, a1, a0, a1));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "mul" (1234567 * 891 land 0xFFFFFFFF)
    (Machine.reg_int sys.m a2);
  Alcotest.(check int) "div" (1234567 / 891) (Machine.reg_int sys.m t0);
  Alcotest.(check int) "rem" (1234567 mod 891) (Machine.reg_int sys.m a1)

let test_loads_stores () =
  let items =
    [
      (* Derive a pointer into the data region from cgp. *)
      Asm.I (Insn.Cmove (t0, gp));
      Asm.Li (a0, 0xfedcba98);
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = t0; off = 16 });
      Asm.I (Insn.Load { signed = true; width = W; rd = a1; rs1 = t0; off = 16 });
      Asm.I (Insn.Load { signed = true; width = B; rd = a2; rs1 = t0; off = 19 });
      Asm.I (Insn.Load { signed = false; width = H; rd = a0; rs1 = t0; off = 16 });
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "lw" 0xfedcba98 (Machine.reg_int sys.m a1);
  Alcotest.(check int) "lb sign" 0xFFFFFFFE (Machine.reg_int sys.m a2);
  Alcotest.(check int) "lhu" 0xba98 (Machine.reg_int sys.m a0)

let test_cap_roundtrip_and_tag_clobber () =
  let items =
    [
      (* store csp through the data cap (csp is local: use stack instead) *)
      Asm.I (Insn.Csc (gp, sp, -8));
      Asm.I (Insn.Clc (a0, sp, -8));
      Asm.I (Insn.Cget (Tag, a1, a0));
      (* clobber half the granule with a data write, reload: tag gone *)
      Asm.Li (t0, 0x1234);
      Asm.I (Insn.Store { width = W; rs2 = t0; rs1 = sp; off = -8 });
      Asm.I (Insn.Clc (a2, sp, -8));
      Asm.I (Insn.Cget (Tag, a2, a2));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "tag preserved" 1 (Machine.reg_int sys.m a1);
  Alcotest.(check int) "tag cleared by data write" 0 (Machine.reg_int sys.m a2)

let test_oob_load_traps () =
  (* A load outside the data cap bounds must trap; with no handler
     installed this is a double fault and mcause records the CHERI code. *)
  let items =
    [
      Asm.I (Insn.Cmove (t0, gp));
      Asm.I (Insn.Csetboundsimm (t0, t0, 16));
      Asm.I (Insn.Load { signed = true; width = W; rd = a0; rs1 = t0; off = 16 });
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault (no handler)");
  Alcotest.(check int) "mcause = CHERI" 28 sys.m.Machine.mcause;
  Alcotest.(check int) "cheri cause = bounds" 0x01 (sys.m.Machine.mtval lsr 5)

let test_untagged_deref_traps () =
  let items =
    [
      Asm.Li (t0, data_base);
      Asm.I (Insn.Load { signed = true; width = W; rd = a0; rs1 = t0; off = 0 });
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "cheri cause = tag" 0x02 (sys.m.Machine.mtval lsr 5)

let test_wx_enforcement () =
  (* Storing through the PCC (executable) must fail: permit-store. *)
  let items =
    [
      Asm.I (Insn.Auipcc (t0, 0));
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = t0; off = 0 });
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "cheri cause = permit-store" 0x13
    (sys.m.Machine.mtval lsr 5)

let test_store_local_check () =
  (* csp is local (no GL).  Storing it through the data cap (no SL) must
     trap permit-store-local; storing through the stack cap (has SL) is
     fine — that is the scoped-delegation mechanism of 5.2. *)
  let items =
    [ Asm.I (Insn.Csc (sp, gp, 0)); Asm.I Insn.Ebreak ]
  in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "cheri cause = store-local" 0x16
    (sys.m.Machine.mtval lsr 5);
  let items2 = [ Asm.I (Insn.Csc (sp, sp, -8)); Asm.I Insn.Ebreak ] in
  let _, result2, _ = run_items items2 in
  check_halted result2

let test_load_attenuation_lg () =
  (* Drop LG from the stack cap, store a global cap, reload through the
     attenuated authority: the loaded cap must have lost GL and LG. *)
  let items =
    [
      Asm.I (Insn.Csc (gp, sp, -8));
      (* t0 = csp without LG: perm mask = all minus LG(bit1) *)
      Asm.Li (a0, 0xfff land lnot 0x2);
      Asm.I (Insn.Candperm (t0, sp, a0));
      Asm.I (Insn.Clc (a1, t0, -8));
      Asm.I (Insn.Cget (Perm, a2, a1));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  let perms = Perm.Set.of_arch_bits (Machine.reg_int sys.m a2) in
  Alcotest.(check bool) "GL cleared" false (Perm.Set.mem GL perms);
  Alcotest.(check bool) "LG cleared" false (Perm.Set.mem LG perms);
  Alcotest.(check bool) "LD kept" true (Perm.Set.mem LD perms)

let test_load_filter () =
  (* Paint the revocation bit under a heap object; loading a cap to it
     strips the tag (3.3.2). *)
  let items =
    [
      (* store heap cap (c4, bounded to one object) to stack *)
      Asm.I (Insn.Csetboundsimm (t0, 4, 64));
      Asm.I (Insn.Csc (t0, sp, -8));
      Asm.I (Insn.Clc (a0, sp, -8));
      Asm.I (Insn.Cget (Tag, a0, a0));
      Asm.I Insn.Ebreak;
    ]
  in
  (* First run: not revoked, tag survives. *)
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "tag before revocation" 1 (Machine.reg_int sys.m a0);
  (* Second run: paint the granule first. *)
  let sys2 = make_sys () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys2.sram;
  setup_regs sys2;
  Revbits.paint sys2.rev ~addr:heap_base ~len:64;
  let result2, _ = Machine.run sys2.m in
  check_halted result2;
  Alcotest.(check int) "tag stripped" 0 (Machine.reg_int sys2.m a0);
  (* Third run: filter disabled -> stale cap survives (the ablation). *)
  let sys3 = make_sys ~load_filter:false () in
  Asm.load img sys3.sram;
  setup_regs sys3;
  Revbits.paint sys3.rev ~addr:heap_base ~len:64;
  let result3, _ = Machine.run sys3.m in
  check_halted result3;
  Alcotest.(check int) "no filter: tag survives" 1 (Machine.reg_int sys3.m a0)

let test_sentry_interrupt_control () =
  (* Jump through a disable-interrupts sentry; check MIE drops and the
     link register is a return sentry; returning restores posture. *)
  let items =
    [
      (* enable interrupts via mstatus *)
      Asm.Li (t0, 8);
      Asm.I (Insn.Csr (Csrrs, 0, t0, Csr.mstatus));
      (* build a disabling sentry for "func" by asking the harness: the
         switcher would do this; here we jump to an address-only target
         through a pre-sealed cap in c5 (installed below). *)
      Asm.I (Insn.Jalr (Insn.reg_ra, 9, 0));
      Asm.I Insn.Ebreak;
      Asm.Label "func";
      (* record mstatus inside the callee *)
      Asm.I (Insn.Csr (Csrrs, a0, 0, Csr.mstatus));
      Asm.Ret;
    ]
  in
  let sys = make_sys () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys.sram;
  setup_regs sys;
  let func = Asm.label img "func" in
  let target = Capability.with_address sys.m.Machine.pcc func in
  (match Capability.seal_sentry target Otype.Sentry_disable with
  | Ok s -> Machine.set_reg sys.m 9 s
  | Error e -> Alcotest.fail e);
  let result, _ = Machine.run sys.m in
  check_halted result;
  Alcotest.(check int) "interrupts disabled in callee" 0
    (Machine.reg_int sys.m a0 land 8);
  Alcotest.(check bool) "posture restored on return" true sys.m.Machine.mie

let test_sentry_untagged_jalr_traps () =
  let items = [ Asm.I (Insn.Jalr (Insn.reg_ra, 9, 0)); Asm.I Insn.Ebreak ] in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "cheri cause = tag" 0x02 (sys.m.Machine.mtval lsr 5)

let test_stack_high_water_mark () =
  (* Program the HWM CSRs, do stores at descending addresses, check the
     mark tracks the lowest store (5.2.1). *)
  let items =
    [
      Asm.Li (t0, stack_base);
      Asm.I (Insn.Csr (Csrrw, 0, t0, Csr.mshwmb));
      Asm.Li (t0, stack_base + stack_size);
      Asm.I (Insn.Csr (Csrrw, 0, t0, Csr.mshwm));
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = sp; off = -64 });
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = sp; off = -256 });
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = sp; off = -128 });
      Asm.I (Insn.Csr (Csrrs, a1, 0, Csr.mshwm));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  check_halted result;
  Alcotest.(check int) "hwm = lowest store (8-aligned)"
    ((stack_base + stack_size - 256) land lnot 7)
    (Machine.reg_int sys.m a1)

let test_csr_requires_sr () =
  (* Drop SR from the PCC: CSR writes must trap. *)
  let items =
    [
      Asm.Li (t0, 0xfff land lnot 0x100);
      (* can't candperm the PCC directly; jump through an attenuated cap *)
      Asm.I (Insn.Auipcc (a0, 0));
      Asm.I (Insn.Candperm (a0, a0, t0));
      Asm.I (Insn.Cincaddrimm (a0, a0, 16));
      Asm.I (Insn.Jalr (0, a0, 0));
      Asm.Label "nosr";
      Asm.I (Insn.Csr (Csrrw, 0, t0, Csr.mshwmb));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "cause = access-system-registers" 0x18
    (sys.m.Machine.mtval lsr 5)

let test_seal_unseal_insns () =
  let items =
    [
      (* c5 := sealing key with otype 3 (installed by harness) *)
      Asm.I (Insn.Csetboundsimm (t0, 4, 32));
      Asm.I (Insn.Cseal (a0, t0, 9));
      Asm.I (Insn.Cget (Type, a1, a0));
      (* dereferencing a sealed cap must trap; just unseal and load *)
      Asm.I (Insn.Cunseal (a2, a0, 9));
      Asm.I (Insn.Cget (Type, Insn.reg_a3, a2));
      Asm.I Insn.Ebreak;
    ]
  in
  let sys = make_sys () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys.sram;
  setup_regs sys;
  Machine.set_reg sys.m 9 (Capability.with_address Capability.root_sealing 3);
  let result, _ = Machine.run sys.m in
  check_halted result;
  Alcotest.(check int) "sealed otype" 3 (Machine.reg_int sys.m a1);
  Alcotest.(check int) "unsealed otype" 0 (Machine.reg_int sys.m Insn.reg_a3)

let test_timer_interrupt () =
  (* Install a trap handler that halts; enable timer; spin.  The handler
     must run with interrupts disabled and mepcc pointing at the loop. *)
  let items =
    [
      Asm.Li (t0, 50);
      Asm.I (Insn.Csr (Csrrw, 0, t0, Csr.mtimecmp));
      Asm.Li (t0, 8);
      Asm.I (Insn.Csr (Csrrs, 0, t0, Csr.mstatus));
      Asm.Label "spin";
      Asm.J (0, "spin");
      Asm.Label "handler";
      Asm.I Insn.Ebreak;
    ]
  in
  let sys = make_sys () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys.sram;
  setup_regs sys;
  sys.m.Machine.mtcc <-
    Capability.with_address sys.m.Machine.pcc (Asm.label img "handler");
  (* The timer compares against mcycle, which the perf harness advances;
     here advance it manually per step. *)
  let rec go fuel =
    if fuel = 0 then Alcotest.fail "timer never fired"
    else begin
      sys.m.Machine.mcycle <- sys.m.Machine.mcycle + 1;
      match Machine.step sys.m with
      | Machine.Step_halted -> ()
      | Machine.Step_double_fault -> Alcotest.fail "double fault"
      | _ -> go (fuel - 1)
    end
  in
  go 1000;
  Alcotest.(check bool) "interrupts off in handler" false sys.m.Machine.mie;
  Alcotest.(check int) "mcause = timer" (0x8000_0000 lor 7)
    sys.m.Machine.mcause

let test_rv32_mode () =
  (* The baseline mode runs the same binary encodings with integer
     semantics and an implicit DDC. *)
  let items =
    [
      Asm.Li (t0, data_base);
      Asm.Li (a0, 42);
      Asm.I (Insn.Store { width = W; rs2 = a0; rs1 = t0; off = 0 });
      Asm.I (Insn.Load { signed = true; width = W; rd = a1; rs1 = t0; off = 0 });
      Asm.I Insn.Ebreak;
    ]
  in
  let sys, result, _ = run_items ~mode:Machine.Rv32 items in
  check_halted result;
  Alcotest.(check int) "rv32 load/store" 42 (Machine.reg_int sys.m a1)

let test_rv32_rejects_cap_insns () =
  let items = [ Asm.I (Insn.Cmove (t0, gp)); Asm.I Insn.Ebreak ] in
  let sys, result, _ = run_items ~mode:Machine.Rv32 items in
  (match result with
  | Machine.Step_double_fault -> ()
  | _ -> Alcotest.fail "expected double fault");
  Alcotest.(check int) "illegal instruction" 2 sys.m.Machine.mcause

let test_mret_roundtrip () =
  (* Take an ecall trap, handler mrets back; resumed code runs. *)
  let items =
    [
      Asm.I Insn.Ecall;
      Asm.I (Insn.Op_imm (Add, a0, 0, 7));
      Asm.I Insn.Ebreak;
      Asm.Label "handler";
      (* skip the ecall: mepcc += 4 *)
      Asm.I (Insn.Cspecialrw (t0, MEPCC, 0));
      Asm.I (Insn.Cincaddrimm (t0, t0, 4));
      Asm.I (Insn.Cspecialrw (0, MEPCC, t0));
      Asm.I Insn.Mret;
    ]
  in
  let sys = make_sys () in
  let img = Asm.assemble ~origin:code_base items in
  Asm.load img sys.sram;
  setup_regs sys;
  sys.m.Machine.mtcc <-
    Capability.with_address sys.m.Machine.pcc (Asm.label img "handler");
  let result, _ = Machine.run sys.m in
  check_halted result;
  Alcotest.(check int) "resumed after mret" 7 (Machine.reg_int sys.m a0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    q prop_encode_decode;
    q prop_decode_total;
    Alcotest.test_case "exhaustive encode/decode roundtrip" `Quick
      test_exhaustive_roundtrip;
    Alcotest.test_case "ALU + branch loop" `Quick test_alu_loop;
    Alcotest.test_case "mul/div" `Quick test_muldiv;
    Alcotest.test_case "loads/stores + sign extension" `Quick
      test_loads_stores;
    Alcotest.test_case "cap store/load + tag clobber" `Quick
      test_cap_roundtrip_and_tag_clobber;
    Alcotest.test_case "out-of-bounds load traps" `Quick test_oob_load_traps;
    Alcotest.test_case "untagged dereference traps" `Quick
      test_untagged_deref_traps;
    Alcotest.test_case "W^X: store via PCC traps" `Quick test_wx_enforcement;
    Alcotest.test_case "store-local enforcement" `Quick test_store_local_check;
    Alcotest.test_case "LG load attenuation" `Quick test_load_attenuation_lg;
    Alcotest.test_case "hardware load filter" `Quick test_load_filter;
    Alcotest.test_case "sentry interrupt control" `Quick
      test_sentry_interrupt_control;
    Alcotest.test_case "jalr of untagged cap traps" `Quick
      test_sentry_untagged_jalr_traps;
    Alcotest.test_case "stack high water mark" `Quick
      test_stack_high_water_mark;
    Alcotest.test_case "CSR access requires SR" `Quick test_csr_requires_sr;
    Alcotest.test_case "cseal/cunseal instructions" `Quick
      test_seal_unseal_insns;
    Alcotest.test_case "timer interrupt + handler" `Quick test_timer_interrupt;
    Alcotest.test_case "rv32 baseline mode" `Quick test_rv32_mode;
    Alcotest.test_case "rv32 rejects cap instructions" `Quick
      test_rv32_rejects_cap_insns;
    Alcotest.test_case "ecall trap + mret" `Quick test_mret_roundtrip;
  ]
