(* Tests for the compressed bounds encoding (paper 3.2.3, Fig. 3).  The
   paper checked the encoding with Sail's SMT backend; here we use
   exhaustive small-field checks plus qcheck properties. *)

open Cheriot_core
module Iters = Cheriot_proptest.Iters

(* The biased region generator lives in the property harness
   ([Cheriot_proptest.Flatgen]); counts scale with PROP_ITERS. *)
let gen_region = Cheriot_proptest.Flatgen.gen_region
let arb_region = Cheriot_proptest.Flatgen.arb_region

let prop_set_bounds_covers =
  QCheck.Test.make ~name:"set_bounds covers request"
    ~count:(Iters.count ~default:5000) arb_region
    (fun (base, length) ->
      QCheck.assume (base + length <= 0x1_0000_0000);
      match Bounds.set_bounds ~base ~length with
      | None -> false
      | Some (bounds, b', t') ->
          let db, dt = Bounds.decode bounds ~addr:base in
          b' = db && t' = dt && b' <= base && t' >= base + length)

let prop_small_exact =
  QCheck.Test.make ~name:"lengths <= 511 always exact" ~count:(Iters.count ~default:5000)
    QCheck.(
      make
        ~print:(fun (b, l) -> Printf.sprintf "base=0x%x len=%d" b l)
        QCheck.Gen.(pair (int_bound 0xFFFF_FE00) (int_bound 511)))
    (fun (base, length) ->
      match Bounds.set_bounds ~base ~length with
      | None -> false
      | Some (_, b', t') -> b' = base && t' = base + length)

let prop_exact_matches_rounding =
  QCheck.Test.make ~name:"set_bounds_exact iff no rounding" ~count:(Iters.count ~default:5000)
    arb_region (fun (base, length) ->
      QCheck.assume (base + length <= 0x1_0000_0000);
      let exact = Bounds.set_bounds_exact ~base ~length in
      match Bounds.set_bounds ~base ~length with
      | None -> exact = None
      | Some (_, b', t') ->
          if b' = base && t' = base + length then Option.is_some exact
          else exact = None)

let prop_crrl_cram_consistent =
  QCheck.Test.make ~name:"CRRL/CRAM make CSetBoundsExact succeed" ~count:(Iters.count ~default:5000)
    QCheck.(
      make
        ~print:(fun (b, l) -> Printf.sprintf "base=0x%x len=0x%x" b l)
        gen_region)
    (fun (base, length) ->
      let rlen = Bounds.crrl length in
      let mask = Bounds.cram length in
      let abase = base land mask in
      QCheck.assume (abase + rlen <= 0x1_0000_0000);
      rlen >= length
      && Option.is_some (Bounds.set_bounds_exact ~base:abase ~length:rlen))

let prop_crrl_minimal =
  QCheck.Test.make ~name:"CRRL is minimal for aligned bases" ~count:(Iters.count ~default:2000)
    QCheck.(int_bound 0xFFFFF)
    (fun length ->
      let rlen = Bounds.crrl length in
      (* Any length strictly between length and rlen must not be exactly
         representable at base 0. *)
      rlen = length
      ||
      let mid = length + ((rlen - length) / 2) in
      mid = length || mid = rlen
      || Option.is_none (Bounds.set_bounds_exact ~base:0 ~length:mid)
      || Bounds.crrl mid = mid)

let prop_representability_within =
  QCheck.Test.make ~name:"addresses within bounds are representable"
    ~count:(Iters.count ~default:5000) arb_region (fun (base, length) ->
      QCheck.assume (base + length <= 0x1_0000_0000 && length > 0);
      match Bounds.set_bounds ~base ~length with
      | None -> false
      | Some (bounds, b', t') ->
          (* CHERIoT guarantees representability only inside the decoded
             bounds (3.2.3: "in the worst case the representable range is
             equal to the object bounds"). *)
          let probe = [ b'; b' + ((t' - b') / 2); t' - 1 ] in
          List.for_all
            (fun a -> Bounds.representable bounds ~cur:base ~addr:a)
            probe)

let prop_below_base_invalid =
  QCheck.Test.make ~name:"addresses below base are never representable"
    ~count:(Iters.count ~default:5000) arb_region (fun (base, length) ->
      QCheck.assume (base + length <= 0x1_0000_0000 && base > 0);
      match Bounds.set_bounds ~base ~length with
      | None -> false
      | Some (bounds, b', _) ->
          (* With e = 24 the region 2^(e+9) exceeds the address space, so
             every address is representable (mod 2^32): that is how the
             roots span all of memory.  The below-base guarantee applies
             to ordinary exponents. *)
          Bounds.exponent bounds = 24 || b' = 0
          ||
          let a = b' - 1 in
          (* Either flagged unrepresentable, or decodes to different
             bounds (which the ISA treats identically: tag cleared). *)
          (not (Bounds.representable bounds ~cur:base ~addr:a))
          || Bounds.decode bounds ~addr:a <> Bounds.decode bounds ~addr:base)

let test_fig3_corrections () =
  (* Drive all four rows of the Fig. 3 correction table with a hand-built
     encoding: e = 4, B = 0x100, T = 0x080 (T < B, so the top sits in the
     next 2^13 region). *)
  let b = Bounds.of_raw_fields ~e:4 ~b:0x100 ~t:0x080 in
  (* Address with a_mid >= B: same region as base. *)
  let addr_hi = (0x100 lsl 4) lor 0x7 in
  let base, top = Bounds.decode b ~addr:addr_hi in
  Alcotest.(check int) "base row2" (0x100 lsl 4) base;
  Alcotest.(check int) "top row2 (ct=1)" ((0x080 lsl 4) + (1 lsl 13)) top;
  (* Address with a_mid < B but inside bounds: next region, cb = -1. *)
  let addr_lo = (1 lsl 13) lor (0x020 lsl 4) in
  let base', top' = Bounds.decode b ~addr:addr_lo in
  Alcotest.(check int) "base row4 (cb=-1)" (0x100 lsl 4) base';
  Alcotest.(check int) "top row4 (ct=0)" ((0x080 lsl 4) + (1 lsl 13)) top'

let test_whole_address_space () =
  let b = Bounds.whole_address_space in
  List.iter
    (fun addr ->
      let base, top = Bounds.decode b ~addr in
      Alcotest.(check int) "base" 0 base;
      Alcotest.(check int) "top" 0x1_0000_0000 top)
    [ 0; 1; 0xFFFF; 0x8000_0000; 0xFFFF_FFFF ]

let test_exponent_gap () =
  (* Exponents 15..23 are unencodable; a length needing e=15 jumps to
     e=24 alignment. *)
  let length = 0x1ff lsl 15 in
  match Bounds.set_bounds ~base:0 ~length with
  | None -> Alcotest.fail "should be representable"
  | Some (bounds, _, t') ->
      Alcotest.(check int) "exponent" 24 (Bounds.exponent bounds);
      Alcotest.(check bool) "top covers" true (t' >= length)

let test_fragmentation () =
  (* Paper 3.2.3: 9-bit precision gives average internal fragmentation of
     2^-9 ~ 0.19%; check the worst case for a sweep of sizes. *)
  let worst = ref 0.0 in
  for i = 1 to 4096 do
    let length = i * 97 in
    match Bounds.set_bounds ~base:0 ~length with
    | None -> Alcotest.fail "set_bounds failed"
    | Some (_, b', t') ->
        let waste = float_of_int (t' - b' - length) /. float_of_int length in
        if waste > !worst then worst := waste
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst fragmentation %.4f < 2/512" !worst)
    true
    (!worst < 2.0 /. 512.0)

let test_decode_examples () =
  (* A 64-byte object at 0x1000: e=0, exact. *)
  match Bounds.set_bounds ~base:0x1000 ~length:64 with
  | None -> Alcotest.fail "set_bounds failed"
  | Some (bounds, b', t') ->
      Alcotest.(check int) "base" 0x1000 b';
      Alcotest.(check int) "top" 0x1040 t';
      Alcotest.(check int) "exp" 0 (Bounds.exponent bounds);
      Alcotest.(check bool)
        "in_bounds" true
        (Bounds.in_bounds bounds ~addr:0x1000 ~access:0x103f ~size:1);
      Alcotest.(check bool)
        "off by one" false
        (Bounds.in_bounds bounds ~addr:0x1000 ~access:0x1040 ~size:1)

(* Exhaustive round-trip over the entire E'4/B'9/T'9 field space.

   Every encodable (E, B, T) triple is decoded at its canonical address
   [B << e] (so both Fig. 3 corrections start from cb = 0), and the
   resulting region is fed back through [set_bounds].  The encoding must
   be the identity on its own image: re-encoding a decodable region
   yields exactly that region — never widened (that would amplify
   authority), never narrowed (that would break CSetBounds's contract of
   covering the request).  Triples whose decode leaves the 32-bit
   address space are skipped: they have no canonical in-space region
   (the ISA can still hold them — decode is total — but set_bounds can
   never produce them). *)
let test_roundtrip_exhaustive () =
  let checked = ref 0 in
  for e_field = 0 to 15 do
    let e = if e_field = 15 then 24 else e_field in
    for b = 0 to 511 do
      let base = b lsl e in
      if base <= 0xFFFF_FFFF then
        for t = 0 to 511 do
          let ct = if t < b then 1 else 0 in
          let top = ((ct lsl 9) lor t) lsl e in
          if top <= 0x1_0000_0000 then begin
            incr checked;
            let bounds = Bounds.of_raw_fields ~e:e_field ~b ~t in
            let db, dt = Bounds.decode bounds ~addr:base in
            if db <> base || dt <> top then
              Alcotest.failf
                "decode e=%d B=%#x T=%#x at %#x: got [%#x,%#x), want [%#x,%#x)"
                e_field b t base db dt base top;
            (* the allocation-free single-ended decodes agree *)
            if
              Bounds.base_of bounds ~addr:base <> db
              || Bounds.top_of bounds ~addr:base <> dt
            then
              Alcotest.failf "base_of/top_of disagree with decode at e=%d B=%#x T=%#x"
                e_field b t;
            match Bounds.set_bounds ~base ~length:(top - base) with
            | None ->
                Alcotest.failf
                  "set_bounds rejected its own image [%#x,%#x) (e=%d B=%#x T=%#x)"
                  base top e_field b t
            | Some (bounds', b', t') ->
                if b' <> base || t' <> top then
                  Alcotest.failf
                    "round trip moved [%#x,%#x) to [%#x,%#x) (e=%d B=%#x T=%#x)"
                    base top b' t' e_field b t;
                let db', dt' = Bounds.decode bounds' ~addr:base in
                if db' <> base || dt' <> top then
                  Alcotest.failf "re-encoded fields decode differently at e=%d"
                    e_field
          end
        done
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d field triples checked" !checked)
    true
    (!checked > 3_000_000)

(* The invariant the emulator's fast path depends on: an address inside
   the decoded bounds is always representable, and decodes to the same
   region.  [Machine] installs jump/branch targets with a plain record
   update after an [in_bounds] check — skipping [with_address]'s
   representability test — and the decode cache precomputes the advanced
   PCC on the same grounds.  Exhaustive over the field space, probing
   the edges and middle of every region. *)
let test_in_bounds_implies_representable () =
  let probe bounds ~base ~top a =
    if a >= base && a < top then begin
      if not (Bounds.representable bounds ~cur:base ~addr:a) then
        Alcotest.failf "in-bounds %#x of [%#x,%#x) flagged unrepresentable" a
          base top;
      if
        Bounds.base_of bounds ~addr:a <> base
        || Bounds.top_of bounds ~addr:a <> top
      then
        Alcotest.failf "in-bounds %#x of [%#x,%#x) decodes elsewhere" a base
          top
    end
  in
  for e_field = 0 to 15 do
    let e = if e_field = 15 then 24 else e_field in
    for b = 0 to 511 do
      let base = b lsl e in
      if base <= 0xFFFF_FFFF then
        for t = 0 to 511 do
          let ct = if t < b then 1 else 0 in
          let top = ((ct lsl 9) lor t) lsl e in
          if top <= 0x1_0000_0000 && top > base then begin
            let bounds = Bounds.of_raw_fields ~e:e_field ~b ~t in
            probe bounds ~base ~top base;
            probe bounds ~base ~top (base + 1);
            probe bounds ~base ~top (base + ((top - base) / 2));
            probe bounds ~base ~top (top - 1)
          end
        done
    done
  done

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "Fig.3 correction rows" `Quick test_fig3_corrections;
    Alcotest.test_case "exhaustive E/B/T round trip" `Slow
      test_roundtrip_exhaustive;
    Alcotest.test_case "in-bounds implies representable (exhaustive)" `Slow
      test_in_bounds_implies_representable;
    Alcotest.test_case "whole address space root" `Quick
      test_whole_address_space;
    Alcotest.test_case "exponent 15..23 gap" `Quick test_exponent_gap;
    Alcotest.test_case "fragmentation < 2^-9-ish" `Quick test_fragmentation;
    Alcotest.test_case "decode examples" `Quick test_decode_examples;
    q prop_set_bounds_covers;
    q prop_small_exact;
    q prop_exact_matches_rounding;
    q prop_crrl_cram_consistent;
    q prop_crrl_minimal;
    q prop_representability_within;
    q prop_below_base_invalid;
  ]
