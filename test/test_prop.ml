(* The multi-compartment property family ([Cheriot_proptest.Props]):
   qcheck properties over generated scenarios — dispatch-path
   equivalence under injection, cycle-model agreement, authority
   monotonicity, auditor precision, revoker engine equivalence — plus a
   deterministic coverage self-check and pinned regressions for the
   corners the generator is designed to reach.

   The coverage check matters because an equivalence property over a
   generator that never forms a superblock or crosses a compartment
   boundary would pass vacuously: it generates a fixed batch of
   scenarios and asserts the aggregate execution really did chain
   blocks, form superblocks, take side exits, cross compartments and
   trap. *)

open Cheriot_isa
module Loader = Cheriot_rtos.Loader
module Scenario = Cheriot_proptest.Scenario
module Props = Cheriot_proptest.Props

let run_gen gen st = QCheck.Gen.generate1 ~rand:st gen

(* Generate a fixed batch of full-vocabulary scenarios and drive each
   one on a chain-dispatch machine with the property harness's tiny
   hot threshold; the aggregate block statistics must show every
   mechanism the equivalence properties claim to exercise. *)
let test_generator_coverage () =
  let st = Random.State.make [| 0x5eed |] in
  let stats = Hashtbl.create 8 in
  let bump k v =
    Hashtbl.replace stats k (v + try Hashtbl.find stats k with Not_found -> 0)
  in
  let comps_entered = ref 0 and traps = ref 0 in
  for _ = 1 to 40 do
    let sc = run_gen (Scenario.gen ()) st in
    let l = Scenario.link ~instrument:true sc in
    let m = l.Scenario.t.Loader.machine in
    m.Machine.hot_threshold <- 2;
    let crossed = ref false in
    let trapped = ref false in
    let c1 =
      if l.Scenario.n > 1 then Some (Loader.find l.Scenario.t "c1") else None
    in
    ignore
      (Trace.run m ~fuel:4096 ~dispatch:Machine.Dispatch_chain ~f:(fun e ->
           (match c1 with
           | Some b ->
               let o = b.Loader.image.Asm.origin in
               if
                 e.Trace.tr_pc >= o
                 && e.Trace.tr_pc < o + (4 * Array.length b.Loader.image.Asm.words)
               then crossed := true
           | None -> ());
           match e.Trace.tr_result with
           | Machine.Step_trap _ -> trapped := true
           | _ -> ()));
    if !crossed then incr comps_entered;
    if !trapped then incr traps;
    let s = Machine.block_stats m in
    bump "chain_hits" s.Machine.chain_hits;
    bump "superblocks" s.Machine.superblocks_formed;
    bump "side_exits" s.Machine.side_exits;
    bump "invalidations" s.Machine.block_invalidations
  done;
  let get k = try Hashtbl.find stats k with Not_found -> 0 in
  Alcotest.(check bool) "scenarios chain block transfers" true
    (get "chain_hits" > 0);
  Alcotest.(check bool) "scenarios form superblocks" true
    (get "superblocks" > 0);
  Alcotest.(check bool) "scenarios take superblock side exits" true
    (get "side_exits" > 0);
  Alcotest.(check bool) "scenario stores invalidate translated blocks" true
    (get "invalidations" > 0);
  Alcotest.(check bool) "scenarios cross compartment boundaries" true
    (!comps_entered > 0);
  Alcotest.(check bool) "scenarios trap" true (!traps > 0)

(* Pinned regression: a timer interrupt armed while a superblock is hot
   must be delivered at exactly the same retired-instruction boundary on
   the reference and chain paths — the delivery point is a superblock
   side exit, the corner DESIGN.md §10 argues correct. *)
let test_interrupt_at_superblock_boundary () =
  let sc = { Scenario.bodies = [ [ Fall_loop 7; Fall_loop 3; Arith 1 ] ];
             seed = 0 } in
  let mk () =
    let l = Scenario.link ~instrument:true sc in
    l.Scenario.t.Loader.machine
  in
  let ref_m = mk () and chn_m = mk () in
  chn_m.Machine.hot_threshold <- 2;
  let batch = ref 0 in
  let interrupted = ref false in
  let finished = ref false in
  while not !finished do
    incr batch;
    if !batch = 3 then
      (* arm the timer mid-run: by now the fall loop is hot and the
         chain machine is executing a formed superblock *)
      List.iter
        (fun (m : Machine.t) ->
          m.Machine.mtimecmp <- 1;
          m.Machine.mcycle <- 1)
        [ ref_m; chn_m ];
    let r_ref, n_ref = Machine.run ~fuel:5 ~dispatch:Machine.Dispatch_ref ref_m in
    let r_chn, n_chn =
      Machine.run ~fuel:5 ~dispatch:Machine.Dispatch_chain chn_m
    in
    if ref_m.Machine.mcause land 0x8000_0000 <> 0 then interrupted := true;
    Alcotest.(check bool)
      (Printf.sprintf "batch %d: same result and retired count" !batch)
      true
      ((r_ref, n_ref) = (r_chn, n_chn));
    Alcotest.(check string)
      (Printf.sprintf "batch %d: same state hash" !batch)
      (Machine.state_hash ref_m) (Machine.state_hash chn_m);
    match r_ref with
    | Machine.Step_halted | Machine.Step_double_fault | Machine.Step_waiting ->
        finished := true
    | _ -> if !batch > 200 then finished := true
  done;
  Alcotest.(check bool) "an interrupt was delivered" true !interrupted;
  let s = Machine.block_stats chn_m in
  Alcotest.(check bool) "a superblock had formed" true
    (s.Machine.superblocks_formed >= 1)

(* Pinned regression: a cross-compartment code patch — compartment c1
   storing over c0's patchable instruction through its granted window —
   must invalidate c0's already-translated block on the block/chain
   paths (the store snoop crossing compartment boundaries), with final
   state identical to the reference interpreter. *)
let test_cross_compartment_patch_snoop () =
  let sc =
    { Scenario.bodies = [ [ Call 0; Arith 1 ]; [ Patch 0; Arith 2 ] ];
      seed = 0 }
  in
  let run dispatch =
    let l = Scenario.link ~instrument:true sc in
    let m = l.Scenario.t.Loader.machine in
    let r, n = Machine.run ~fuel:4096 ~dispatch m in
    (r, n, Machine.state_hash m, Machine.block_stats m)
  in
  let r0, n0, h0, _ = run Machine.Dispatch_ref in
  Alcotest.(check bool) "reference halts" true (r0 = Machine.Step_halted);
  List.iter
    (fun (name, d) ->
      let r, n, h, s = run d in
      Alcotest.(check bool) (name ^ ": same result") true (r = r0);
      Alcotest.(check int) (name ^ ": same retired count") n0 n;
      Alcotest.(check string) (name ^ ": same state hash") h0 h;
      Alcotest.(check bool) (name ^ ": the patch store invalidated a block")
        true
        (s.Machine.block_invalidations >= 1))
    [ ("block", Machine.Dispatch_block); ("chain", Machine.Dispatch_chain) ]

(* Pinned regression: the {e recording} executors (what [Trace.run]
   drives) have their own side-exit handling, separate from the fast
   paths the lockstep properties exercise.  A traced chain run over a
   superblock-forming scenario must land on the reference state with the
   reference retired count, and must actually have taken a recorded side
   exit — without this, a stale-entry bug in the record-mode executor is
   invisible to every other equivalence check. *)
let test_traced_superblock_matches_reference () =
  let sc =
    { Scenario.bodies = [ [ Fall_loop 7; Arith 5; Fall_loop 2 ] ]; seed = 0 }
  in
  let mk () =
    let l = Scenario.link ~instrument:true sc in
    l.Scenario.t.Loader.machine
  in
  let ref_m = mk () in
  let _, n_ref = Machine.run ~fuel:4096 ~dispatch:Machine.Dispatch_ref ref_m in
  let m = mk () in
  m.Machine.hot_threshold <- 2;
  let entries = ref 0 in
  ignore
    (Trace.run m ~fuel:4096 ~dispatch:Machine.Dispatch_chain ~f:(fun _ ->
         incr entries));
  Alcotest.(check int) "traced run retires the reference count" n_ref !entries;
  Alcotest.(check string) "traced run lands on the reference state"
    (Machine.state_hash ref_m) (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "the traced run formed a superblock" true
    (s.Machine.superblocks_formed >= 1);
  Alcotest.(check bool) "the traced run took a side exit" true
    (s.Machine.side_exits >= 1)

(* Pinned regression: the generator shook this scenario out of
   [scenario_lockstep].  [Allocator.revoke_now] used to sweep only
   [heap_base, heap_end), so the stale heap capability this program
   leaves in c1's globals survived revocation; after the chunk was
   released and coalesced, the guest's [Heap_rw] store through the
   stale cap zeroed the free chunk's boundary tag and a later backward
   coalesce crashed the allocator.  With the sweep covering the whole
   SRAM the stale copy is untagged, the store traps — identically on
   every dispatch path — and the property must hold. *)
let test_stale_global_cap_scenario () =
  let sc =
    { Scenario.bodies = [ [ Call 0 ]; [ Heap_rw 7; Call 0 ]; []; [] ];
      seed = 582252 }
  in
  Alcotest.(check bool) "lockstep holds on the shaken-out scenario" true
    (Props.scenario_lockstep sc)

let suite =
  List.map QCheck_alcotest.to_alcotest Props.scenario_tests
  @ [
      Alcotest.test_case "generated scenarios reach every claimed mechanism"
        `Quick test_generator_coverage;
      Alcotest.test_case "interrupt delivery at a superblock boundary" `Quick
        test_interrupt_at_superblock_boundary;
      Alcotest.test_case "cross-compartment patch store is snooped" `Quick
        test_cross_compartment_patch_snoop;
      Alcotest.test_case "traced superblock run matches the reference" `Quick
        test_traced_superblock_matches_reference;
      Alcotest.test_case "stale cap in compartment globals is revoked" `Quick
        test_stale_global_cap_scenario;
    ]
