(* Tests for the plan-soundness verifier (lib/analysis/planverify).

   Layers:
     - every plan compiled from the three shipped images proves Sound
       (the `make verify-plans` gate, in-tree so `dune runtest` catches
       verifier or optimizer regressions);
     - every seeded optimizer mutant is refuted with exactly its
       expected plan-* rule, and the mutants jointly cover the whole
       plan catalogue;
     - [observable] really is the complement of [Ir.deferrable];
     - the non-entry guard-grouping pass: the stack prologue/epilogue
       shape groups accesses through a derived register version behind
       one guard whose span covers the derivation hop, the plan proves
       Sound, and a shipped workload reports [checks_hoisted_nonentry]
       > 0 end to end;
     - qcheck: the verdict is invariant under plan-irrelevant adjacent
       ALU permutations, and Sound plans stay Sound under pointwise
       check strengthening (monotonicity);
     - the Driver.plans / plan_mutants exit-code contract. *)

open Cheriot_isa
module Rules = Cheriot_analysis.Rules
module Driver = Cheriot_analysis.Driver
module Planverify = Cheriot_analysis.Planverify
module Planmutants = Cheriot_analysis.Planmutants
module Loader = Cheriot_rtos.Loader
module Firmware = Cheriot_workloads.Firmware

(* --- shipped plans all prove Sound --------------------------------------- *)

let check_shipped_sound name build () =
  let t = build () in
  let m = t.Loader.machine in
  m.Machine.hot_threshold <- 2;
  m.Machine.hot_adaptive <- false;
  let plans = Planverify.collect m in
  Alcotest.(check bool) (name ^ " compiles plans") true (plans <> []);
  List.iter
    (fun (p : Planverify.plan) ->
      match Planverify.verify_plan p with
      | Planverify.Sound -> ()
      | Planverify.Unsound cx ->
          Alcotest.failf "%s: unsound plan at 0x%x op %d: %s: %s" name
            p.Planverify.p_block.Machine.b_start cx.Planverify.cx_index
            cx.Planverify.cx_rule cx.Planverify.cx_detail)
    plans

(* --- seeded mutants ------------------------------------------------------ *)

let check_mutant (e : Planmutants.entry) () =
  let cheri, insns, chks, guards, defer = e.Planmutants.pm_build () in
  match Planverify.verify ~cheri ?defer insns chks guards with
  | Planverify.Unsound cx ->
      Alcotest.(check string)
        (e.Planmutants.pm_name ^ " refuted under the expected rule")
        e.Planmutants.pm_rule cx.Planverify.cx_rule
  | Planverify.Sound ->
      Alcotest.failf "%s: mutant proved Sound (false negative)"
        e.Planmutants.pm_name

let test_mutants_cover_plan_catalogue () =
  let covered =
    List.sort_uniq compare
      (List.map (fun e -> e.Planmutants.pm_rule) Planmutants.entries)
  in
  let all = List.sort_uniq compare (List.map fst Rules.plan_catalogue) in
  Alcotest.(check (list string)) "mutants cover all plan rules" all covered

(* --- observable ≡ not deferrable ----------------------------------------- *)

let test_observable_complements_deferrable () =
  let r = Insn.reg_a0 and r2 = Insn.reg_a1 in
  let samples =
    [
      Insn.Lui (r, 1);
      Insn.Auipcc (r, 1);
      Insn.Jal (r, 8);
      Insn.Jalr (r, r2, 0);
      Insn.Branch (Insn.Eq, r, r2, 8);
      Insn.Load { signed = true; width = W; rd = r; rs1 = r2; off = 0 };
      Insn.Store { width = W; rs2 = r; rs1 = r2; off = 0 };
      Insn.Op_imm (Insn.Add, r, r2, 1);
      Insn.Op (Insn.Add, r, r2, r2);
      Insn.Mul_div (Insn.Mul, r, r2, r2);
      Insn.Ecall;
      Insn.Ebreak;
      Insn.Mret;
      Insn.Wfi;
      Insn.Csr (Insn.Csrrs, r, 0, 0xC00);
      Insn.Clc (r, r2, 0);
      Insn.Csc (r, r2, 0);
      Insn.Cincaddr (r, r2, r2);
      Insn.Cincaddrimm (r, r2, 4);
      Insn.Csetaddr (r, r2, r2);
      Insn.Csetbounds (r, r2, r2);
      Insn.Csetboundsexact (r, r2, r2);
      Insn.Csetboundsimm (r, r2, 8);
      Insn.Crrl (r, r2);
      Insn.Cram (r, r2);
      Insn.Candperm (r, r2, r2);
      Insn.Ccleartag (r, r2);
      Insn.Cmove (r, r2);
      Insn.Cseal (r, r2, r2);
      Insn.Cunseal (r, r2, r2);
      Insn.Cget (Insn.Addr, r, r2);
      Insn.Csub (r, r2, r2);
      Insn.Ctestsubset (r, r2, r2);
      Insn.Csetequalexact (r, r2, r2);
      Insn.Cspecialrw (r, Insn.MTCC, 0);
    ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Format.asprintf "observable(%a) = not deferrable" Insn.pp i)
        (not (Ir.deferrable i))
        (Planverify.observable i))
    samples

(* --- non-entry guard grouping (the ROADMAP headroom item) ---------------- *)

(* The proptest stack prologue/epilogue shape: both capability accesses
   run through the *derived* sp version (entry sp - 16), so the
   version-0-only grouping of earlier PRs could never hoist them. *)
let test_nonentry_group_hoists_and_verifies () =
  let sp = Insn.reg_sp and ra = Insn.reg_ra in
  let prog =
    [|
      Insn.Cincaddrimm (sp, sp, -16);
      Insn.Csc (ra, sp, 0);
      Insn.Clc (ra, sp, 0);
      Insn.Cincaddrimm (sp, sp, 16);
    |]
  in
  let chks, guards, st = Ir.optimize ~cheri:true prog in
  Alcotest.(check int) "one guard formed" 1 (Array.length guards);
  Alcotest.(check bool) "non-entry accesses hoisted" true
    (st.Ir.hoisted_nonentry > 0);
  let g = guards.(0) in
  Alcotest.(check int) "guard register is the entry sp" sp g.Ir.g_rs1;
  Alcotest.(check bool) "guard span covers the derivation hop at -16" true
    (g.Ir.g_lo <= -16 && g.Ir.g_hi >= -8);
  Alcotest.(check bool) "guard demands SD and MC for the Csc" true
    (g.Ir.g_need_sd && g.Ir.g_need_mc);
  match Planverify.verify ~cheri:true prog chks guards with
  | Planverify.Sound -> ()
  | Planverify.Unsound cx ->
      Alcotest.failf "non-entry plan refuted: %s: %s" cx.Planverify.cx_rule
        cx.Planverify.cx_detail

(* End to end: a shipped workload under the jit tier must actually cross
   the new pass (the acceptance criterion `hoisted_nonentry > 0`), with
   compile-time validation installed and rejecting nothing.  Coremark is
   the shipped image whose inner loops walk derived pointers. *)
let test_shipped_hoists_nonentry () =
  let t = Firmware.coremark () in
  let m = t.Loader.machine in
  m.Machine.hot_threshold <- 2;
  m.Machine.hot_adaptive <- false;
  Planverify.install m;
  ignore (Machine.run ~fuel:2_000_000 ~dispatch:Machine.Dispatch_jit m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "coremark hoists checks" true
    (s.Machine.checks_hoisted > 0);
  Alcotest.(check bool) "coremark hoists through non-entry versions" true
    (s.Machine.checks_hoisted_nonentry > 0);
  Alcotest.(check int) "the validator rejects no optimizer plan" 0
    s.Machine.jit_plans_rejected

(* --- qcheck: permutation invariance and monotonicity --------------------- *)

(* Random straight-line block bodies over three base registers (a0-a2,
   never redefined except by tracked derivations) and scratch ALU work
   on t0-t2: enough vocabulary to form guards, derived origins, copies
   and multi-access pools. *)
let gen_block : Insn.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let a0 = Insn.reg_a0 and a1 = Insn.reg_a1 and a2 = Insn.reg_a2 in
  let t0 = Insn.reg_t0 and t1 = Insn.reg_t1 and t2 = Insn.reg_t2 in
  let gen_insn =
    let* k = int_bound 9 in
    let* base = oneofl [ a0; a1; a2 ] in
    let* off4 = int_bound 7 in
    let* t = oneofl [ t0; t1; t2 ] in
    match k with
    | 0 | 1 ->
        return
          (Insn.Load
             { signed = true; width = W; rd = t; rs1 = base; off = 4 * off4 })
    | 2 ->
        return (Insn.Store { width = W; rs2 = t; rs1 = base; off = 4 * off4 })
    | 3 -> return (Insn.Clc (t, base, 8 * (off4 land 3)))
    | 4 -> return (Insn.Csc (t, base, 8 * (off4 land 3)))
    | 5 ->
        (* derive a1 from a0 (or a2 from a1): a tracked non-entry hop *)
        let* d = oneofl [ (a1, a0); (a2, a1) ] in
        let dst, src = d in
        return (Insn.Cincaddrimm (dst, src, 8 * (off4 - 3)))
    | 6 -> return (Insn.Cmove (a2, base))
    | _ ->
        let* imm = int_bound 63 in
        return (Insn.Op_imm (Insn.Add, t, t, imm))
  in
  let* n = 2 -- 12 in
  array_repeat n gen_insn

let print_block b =
  String.concat "; "
    (Array.to_list (Array.map (Format.asprintf "%a" Insn.pp) b))

let arb_block_seeded =
  QCheck.make
    ~print:(fun (b, seed) -> Printf.sprintf "seed %d: %s" seed (print_block b))
    QCheck.Gen.(pair gen_block (int_bound 0x3FFF_FFFF))

let verdicts_agree v1 v2 =
  match (v1, v2) with
  | Planverify.Sound, Planverify.Sound -> true
  | Planverify.Unsound a, Planverify.Unsound b ->
      a.Planverify.cx_rule = b.Planverify.cx_rule
      && a.Planverify.cx_index = b.Planverify.cx_index
  | _ -> false

(* Swapping two adjacent plan-irrelevant ALU ops (no access, no base
   register, no bookkeeping difference) must not change the verdict —
   neither on the optimizer's plan nor on a deliberately weakened one. *)
let prop_permutation_invariant (prog, seed) =
  let is_alu i =
    match prog.(i) with Insn.Op_imm _ -> true | _ -> false
  in
  let pairs = ref [] in
  for i = 0 to Array.length prog - 2 do
    if is_alu i && is_alu (i + 1) then pairs := i :: !pairs
  done;
  match !pairs with
  | [] -> true (* no swappable pair generated: trivially invariant *)
  | pairs ->
      let i = List.nth pairs (seed mod List.length pairs) in
      let prog' = Array.copy prog in
      prog'.(i) <- prog.(i + 1);
      prog'.(i + 1) <- prog.(i);
      let chks, guards, _ = Ir.optimize ~cheri:true prog in
      let swap a =
        let a' = Array.copy a in
        a'.(i) <- a.(i + 1);
        a'.(i + 1) <- a.(i);
        a'
      in
      let check_pair chks =
        let v = Planverify.verify ~cheri:true prog chks guards in
        let v' = Planverify.verify ~cheri:true prog' (swap chks) guards in
        if not (verdicts_agree v v') then
          QCheck.Test.fail_reportf
            "verdict changed under ALU swap at %d (%s)" i (print_block prog)
      in
      check_pair chks;
      (* weaken one access's check so the Unsound side is exercised too *)
      let accesses = ref [] in
      Array.iteri
        (fun j insn ->
          match insn with
          | Insn.Load _ | Insn.Store _ | Insn.Clc _ | Insn.Csc _ ->
              accesses := j :: !accesses
          | _ -> ())
        prog;
      (match !accesses with
      | [] -> ()
      | accs ->
          let j = List.nth accs (seed / 7 mod List.length accs) in
          let weak = Array.copy chks in
          weak.(j) <- Ir.Chk_none;
          check_pair weak);
      true

let strengthen = function
  | Ir.Chk_none -> Ir.Chk_align
  | Ir.Chk_align -> Ir.Chk_bounds
  | Ir.Chk_bounds | Ir.Chk_full -> Ir.Chk_full

(* A Sound plan stays Sound when any check is strengthened: the verifier
   demands strictly less of a stronger plan (monotonicity). *)
let prop_strengthening_monotone (prog, seed) =
  let chks, guards, _ = Ir.optimize ~cheri:true prog in
  match Planverify.verify ~cheri:true prog chks guards with
  | Planverify.Unsound cx ->
      QCheck.Test.fail_reportf "optimizer plan refuted: %s: %s"
        cx.Planverify.cx_rule cx.Planverify.cx_detail
  | Planverify.Sound -> (
      let chks' = Array.copy chks in
      let j = seed mod Array.length chks' in
      chks'.(j) <- strengthen chks'.(j);
      (* and a second, independent strengthening point *)
      let j2 = seed / 11 mod Array.length chks' in
      chks'.(j2) <- strengthen chks'.(j2);
      match Planverify.verify ~cheri:true prog chks' guards with
      | Planverify.Sound -> true
      | Planverify.Unsound cx ->
          QCheck.Test.fail_reportf
            "strengthened plan refuted at op %d: %s: %s (%s)"
            cx.Planverify.cx_index cx.Planverify.cx_rule
            cx.Planverify.cx_detail (print_block prog))

(* --- the Driver exit-code contract --------------------------------------- *)

let test_driver_contract () =
  Alcotest.(check int) "plans: unknown image is exit 2" 2
    (Driver.plans ~images:Firmware.shipped ~name:"nosuch" ());
  Alcotest.(check int) "plans: unknown --rule id is exit 2" 2
    (Driver.plans ~images:Firmware.shipped ~name:"demo" ~rule:"nosuch-rule" ());
  Alcotest.(check int) "plans: known --rule filter stays clean (exit 0)" 0
    (Driver.plans ~images:Firmware.shipped ~name:"demo"
       ~rule:Rules.plan_deferral ());
  Alcotest.(check int) "plans: isolation image proves clean (exit 0)" 0
    (Driver.plans ~images:Firmware.shipped ~name:"isolation" ());
  Alcotest.(check int) "plan-mutants: all refuted exactly (exit 0)" 0
    (Driver.plan_mutants ())

let suite =
  List.map
    (fun (name, build) ->
      Alcotest.test_case
        (name ^ " shipped plans all prove Sound")
        `Quick
        (check_shipped_sound name build))
    Firmware.shipped
  @ List.map
      (fun (e : Planmutants.entry) ->
        Alcotest.test_case
          ("mutant " ^ e.Planmutants.pm_name)
          `Quick (check_mutant e))
      Planmutants.entries
  @ [
      Alcotest.test_case "mutants cover the plan catalogue" `Quick
        test_mutants_cover_plan_catalogue;
      Alcotest.test_case "observable complements Ir.deferrable" `Quick
        test_observable_complements_deferrable;
      Alcotest.test_case "non-entry group hoists, covers the hop, verifies"
        `Quick test_nonentry_group_hoists_and_verifies;
      Alcotest.test_case "coremark hoists non-entry checks under validation"
        `Quick test_shipped_hoists_nonentry;
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:"verdict invariant under plan-irrelevant ALU permutations"
           ~count:300 arb_block_seeded prop_permutation_invariant);
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:"Sound plans stay Sound under check strengthening" ~count:300
           arb_block_seeded prop_strengthening_monotone);
      Alcotest.test_case "Driver.plans / plan_mutants exit codes" `Quick
        test_driver_contract;
    ]
