(* Basic-block translation cache regressions.

   The block dispatch path translates straight-line runs of decoded
   instructions once and replays them with interrupt checks only at
   block boundaries and bookkeeping deferred across simple
   instructions.  These tests pin the parts the differential fuzzers
   are unlikely to hit deterministically: block formation and stats
   accounting, self-modifying-code abandonment mid-block, fuel-exact
   cutting, and the invalidation channel (SRAM stores invalidate,
   device writes and bus-bypass writes do not). *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus
module Boot = Cheriot_proptest.Boot

let code_base = Boot.code_base
let code_size = 0x400

(* the shared single-SRAM boot from the property harness *)
let boot ?device words = Boot.code_only ~code_size ?device words

let result_name = function
  | Machine.Step_ok -> "ok"
  | Machine.Step_trap _ -> "trap"
  | Machine.Step_waiting -> "waiting"
  | Machine.Step_halted -> "halted"
  | Machine.Step_double_fault -> "double fault"

let run_block m =
  match Machine.run ~dispatch:Machine.Dispatch_block m with
  | Machine.Step_halted, n -> n
  | r, _ -> Alcotest.failf "did not halt: %s" (result_name r)

let reset m =
  m.Machine.pcc <- Capability.with_address m.Machine.pcc code_base;
  Machine.set_reg m 1 Capability.null;
  Machine.set_reg m 2 Capability.null

(* A 3-word counting loop (4 iterations) plus the halt: the loop body
   re-executes from the cache, so the block path must show refills only
   for the distinct blocks and hits for every re-entry. *)
let loop_program = Insn.[ Op_imm (Add, 1, 1, 1); Branch (Ne, 1, 6, -4); Ebreak ]

let test_formation_and_stats () =
  let mk () =
    let m, _ = boot (List.map Encode.encode loop_program) in
    Machine.set_reg_int m 6 4;
    m
  in
  let ref_m = mk () in
  let r_ref, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  Alcotest.(check bool) "reference halts" true (r_ref = Machine.Step_halted);
  let m = mk () in
  let n_blk = run_block m in
  Alcotest.(check int) "same retired count" n_ref n_blk;
  Alcotest.(check int) "same minstret" ref_m.Machine.minstret
    m.Machine.minstret;
  Alcotest.(check string) "same state hash" (Machine.state_hash ref_m)
    (Machine.state_hash m);
  let s = Machine.block_stats m in
  (* blocks: [add; bne] at the loop head and [ebreak] after it *)
  Alcotest.(check int) "two distinct blocks" 2 s.Machine.blocks_filled;
  Alcotest.(check int) "cold misses only" 2 s.Machine.block_misses;
  Alcotest.(check int) "re-entries hit" 3 s.Machine.block_hits;
  Alcotest.(check bool) "multi-instruction blocks" true
    (Machine.avg_block_len s > 1.0);
  Alcotest.(check int) "nothing invalidated" 0 s.Machine.block_invalidations;
  (* the reference path must leave the block cache untouched *)
  let s_ref = Machine.block_stats ref_m in
  Alcotest.(check int) "reference path: no block activity" 0
    (s_ref.Machine.block_hits + s_ref.Machine.block_misses
   + s_ref.Machine.blocks_filled)

(* Straight-line code longer than [max_block_len] splits at the length
   cap; a terminator in the middle splits there. *)
let test_block_boundaries () =
  let n_alu = Machine.max_block_len + 4 in
  let program =
    List.init n_alu (fun _ -> Insn.Op_imm (Add, 1, 1, 1)) @ [ Insn.Ebreak ]
  in
  let m, _ = boot (List.map Encode.encode program) in
  let _ = run_block m in
  let s = Machine.block_stats m in
  Alcotest.(check int) "length cap splits the run" 2 s.Machine.blocks_filled;
  Alcotest.(check int) "every word translated once" (n_alu + 1)
    s.Machine.insns_translated

(* Self-modifying code where the store patches a {e later} word of the
   block it is itself part of.  The snoop invalidates the block
   mid-execution; the executor must notice (its remaining decoded
   entries are stale), abandon the rest of the block and re-translate,
   so the patched semantics take effect exactly as on the reference
   path.  Word 2 is patched from `add c2,c2,1` to `add c2,c2,16`
   {e before} it executes: final c2 must be 16, not 1. *)
let test_self_modifying_abandon () =
  let program =
    Insn.
      [
        Store { width = W; rs2 = 5; rs1 = 4; off = 8 };
        (* word 0: patch word 2 *)
        Op_imm (Add, 1, 1, 1);
        (* word 1: filler inside the same block *)
        Op_imm (Add, 2, 2, 1);
        (* word 2: the patch target *)
        Ebreak;
      ]
  in
  let mk () =
    let m, _ = boot (List.map Encode.encode program) in
    Machine.set_reg m 4
      (Capability.set_bounds
         (Capability.with_address Capability.root_mem_rw code_base)
         ~length:code_size ~exact:false);
    Machine.set_reg_int m 5 (Encode.encode (Insn.Op_imm (Add, 2, 2, 16)));
    m
  in
  let ref_m = mk () in
  let _ = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  Alcotest.(check int) "reference sees the patch" 16 (Machine.reg_int ref_m 2);
  let m = mk () in
  let _ = run_block m in
  Alcotest.(check int) "block path sees the patch" 16 (Machine.reg_int m 2);
  Alcotest.(check string) "same state hash" (Machine.state_hash ref_m)
    (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "the block was abandoned mid-execution" true
    (s.Machine.block_aborts >= 1);
  Alcotest.(check bool) "the store invalidated the block" true
    (s.Machine.block_invalidations >= 1)

(* Fuel-exact cutting: driving the block path in fuel chunks of every
   small size must retire exactly the reference count and land in the
   identical final state — blocks are cut mid-execution when fuel runs
   out and resumed at the fall-through PC. *)
let test_fuel_cutting () =
  let mk () =
    let m, _ = boot (List.map Encode.encode loop_program) in
    Machine.set_reg_int m 6 4;
    m
  in
  let ref_m = mk () in
  let _, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  let ref_hash = Machine.state_hash ref_m in
  for fuel = 1 to 7 do
    let m = mk () in
    let total = ref 0 in
    let halted = ref false in
    while not !halted do
      let r, n = Machine.run ~fuel ~dispatch:Machine.Dispatch_block m in
      total := !total + n;
      match r with
      | Machine.Step_halted -> halted := true
      | Machine.Step_ok | Machine.Step_trap _ -> ()
      | r -> Alcotest.failf "fuel %d: unexpected %s" fuel (result_name r)
    done;
    Alcotest.(check int)
      (Printf.sprintf "fuel %d: retired count" fuel)
      n_ref !total;
    Alcotest.(check string)
      (Printf.sprintf "fuel %d: state hash" fuel)
      ref_hash (Machine.state_hash m)
  done

(* Device writes must not invalidate cached blocks (satellite of the
   MMIO no-snoop rule): after a run has populated the cache, a write to
   a device register leaves every block valid — the re-run hits without
   a single refill — while an SRAM code store really does invalidate. *)
let test_device_write_keeps_blocks () =
  let m, _ = boot ~device:true (List.map Encode.encode loop_program) in
  Machine.set_reg_int m 6 4;
  let _ = run_block m in
  let s1 = Machine.block_stats m in
  Bus.write m.Machine.bus ~width:4 0x9004 99;
  let s2 = Machine.block_stats m in
  Alcotest.(check int) "device write invalidates nothing"
    s1.Machine.block_invalidations s2.Machine.block_invalidations;
  reset m;
  Machine.set_reg_int m 6 4;
  let _ = run_block m in
  let s3 = Machine.block_stats m in
  Alcotest.(check int) "re-run refills nothing" s1.Machine.blocks_filled
    s3.Machine.blocks_filled;
  Alcotest.(check bool) "re-run hits the cached blocks" true
    (s3.Machine.block_hits > s1.Machine.block_hits);
  (* control: an SRAM store over the code does invalidate *)
  Bus.write m.Machine.bus ~width:4 code_base 0;
  let s4 = Machine.block_stats m in
  Alcotest.(check bool) "sram code store invalidates" true
    (s4.Machine.block_invalidations > s3.Machine.block_invalidations)

(* Writes that bypass the bus (direct [Sram.write32]) are invisible to
   the snoop: the cached block is legitimately stale until
   [flush_decode_cache], which must drop translated blocks too. *)
let test_bypass_needs_flush () =
  let program = Insn.[ Op_imm (Add, 2, 2, 1); Ebreak ] in
  let m, code = boot (List.map Encode.encode program) in
  let _ = run_block m in
  Alcotest.(check int) "first run, old semantics" 1 (Machine.reg_int m 2);
  Sram.write32 code code_base (Encode.encode (Insn.Op_imm (Add, 2, 2, 16)));
  reset m;
  let _ = run_block m in
  Alcotest.(check int) "bypass write unseen: stale block still served" 1
    (Machine.reg_int m 2);
  Machine.flush_decode_cache m;
  reset m;
  let _ = run_block m in
  Alcotest.(check int) "after flush, new semantics" 16 (Machine.reg_int m 2);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "flush accounted" true (s.Machine.block_flushes >= 1)

(* --- block chaining and superblocks ------------------------------------ *)

let run_chain m =
  match Machine.run ~dispatch:Machine.Dispatch_chain m with
  | Machine.Step_halted, n -> n
  | r, _ -> Alcotest.failf "did not halt: %s" (result_name r)

(* A two-block loop joined by a direct jal — the chain path must follow
   both the jal edge and the backedge without re-probing, and a store
   that kills a chained successor must unlink the edge {e before} the
   next transfer: after the patch, the re-run must execute the patched
   semantics, never the stale linked block. *)
let chained_loop =
  Insn.
    [
      Op_imm (Add, 1, 1, 1);
      (* head: block A *)
      Jal (0, 4);
      (* A -> B, direct *)
      Op_imm (Add, 2, 2, 1);
      (* next: block B (the patch target) *)
      Branch (Ne, 1, 6, -12);
      (* B -> A taken, B -> C fall *)
      Ebreak;
    ]

let test_chain_links_and_unlink () =
  let mk () =
    let m, _ = boot (List.map Encode.encode chained_loop) in
    Machine.set_reg_int m 6 4;
    m
  in
  let ref_m = mk () in
  let _, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  let m = mk () in
  let n = run_chain m in
  Alcotest.(check int) "same retired count" n_ref n;
  Alcotest.(check string) "same state hash" (Machine.state_hash ref_m)
    (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "transfers chained" true (s.Machine.chain_hits > 0);
  Alcotest.(check int) "no stale links yet" 0 s.Machine.chain_unlinks;
  (* the block path must leave the chain counters untouched *)
  let mb = mk () in
  let _ = run_block mb in
  Alcotest.(check int) "block dispatch never chains" 0
    (Machine.block_stats mb).Machine.chain_hits;
  (* patch B's add through the bus: the snoop kills B and bumps the
     chain epoch, so A's link to the dead B must not be followed *)
  Bus.write m.Machine.bus ~width:4 (code_base + 8)
    (Encode.encode (Insn.Op_imm (Add, 2, 2, 16)));
  let s2 = Machine.block_stats m in
  Alcotest.(check bool) "the store invalidated the successor" true
    (s2.Machine.block_invalidations > s.Machine.block_invalidations);
  reset m;
  Machine.set_reg_int m 6 4;
  let _ = run_chain m in
  Alcotest.(check int) "patched semantics, not the stale link" (16 * 4)
    (Machine.reg_int m 2);
  let s3 = Machine.block_stats m in
  Alcotest.(check bool) "stale edge counted as unlink" true
    (s3.Machine.chain_unlinks > 0)

(* [flush_decode_cache] must bump the chain epoch in one step — every
   link installed before the flush is stale, whatever block it lives
   in. *)
let test_chain_epoch_flush () =
  let m, _ = boot (List.map Encode.encode chained_loop) in
  Machine.set_reg_int m 6 4;
  let _ = run_chain m in
  let e1 = Decode_cache.chain_epoch m.Machine.bcache in
  Machine.flush_decode_cache m;
  let e2 = Decode_cache.chain_epoch m.Machine.bcache in
  Alcotest.(check bool) "flush bumps the chain epoch" true (e2 > e1);
  reset m;
  Machine.set_reg_int m 6 4;
  let _ = run_chain m in
  Alcotest.(check int) "re-run after flush still correct" (4 + 4)
    (Machine.reg_int m 1 + Machine.reg_int m 2)

(* A hot fall-dominated branch grows a superblock across its not-taken
   direction; on the iteration where the branch finally fires it is an
   {e interior} taken branch — a side exit that must land at the exact
   architectural point (PC, minstret, registers) the reference path
   reaches. *)
let test_superblock_side_exit () =
  let program =
    Insn.
      [
        Op_imm (Add, 1, 1, 1);
        (* head: counter *)
        Branch (Eq, 1, 6, 12);
        (* exit branch: not taken until r1 = r6 *)
        Op_imm (Add, 2, 2, 1);
        Jal (0, -12);
        (* backedge *)
        Ebreak;
        (* out: *)
      ]
  in
  let mk () =
    let m, _ = boot (List.map Encode.encode program) in
    Machine.set_reg_int m 6 20;
    m
  in
  let ref_m = mk () in
  let _, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  let m = mk () in
  m.Machine.hot_threshold <- 4;
  m.Machine.hot_adaptive <- false;
  let n = run_chain m in
  Alcotest.(check int) "same retired count" n_ref n;
  Alcotest.(check int) "same minstret" ref_m.Machine.minstret
    m.Machine.minstret;
  Alcotest.(check string) "side exit lands on the exact state"
    (Machine.state_hash ref_m) (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "the hot fall edge grew a superblock" true
    (s.Machine.superblocks_formed >= 1);
  Alcotest.(check bool) "the exit took a side exit" true
    (s.Machine.side_exits >= 1)

(* The recording entry point ([Trace.run ~dispatch:Dispatch_chain]) must
   emit the same per-instruction stream as the reference path, with
   chained transfers carrying [Machine.mark_chained] — the mark is how a
   rendered trace distinguishes a linked transfer from a probe. *)
let test_trace_marks_chained_transfers () =
  let collect dispatch =
    let m, _ = boot (List.map Encode.encode chained_loop) in
    Machine.set_reg_int m 6 4;
    let entries = ref [] in
    let _ = Trace.run m ~fuel:10_000 ~dispatch ~f:(fun e -> entries := e :: !entries) in
    (m, List.rev !entries)
  in
  let ref_m, ref_t = collect Machine.Dispatch_ref in
  let chn_m, chn_t = collect Machine.Dispatch_chain in
  Alcotest.(check string) "traced runs agree on state"
    (Machine.state_hash ref_m) (Machine.state_hash chn_m);
  Alcotest.(check int) "same trace length" (List.length ref_t)
    (List.length chn_t);
  List.iter2
    (fun r c ->
      Alcotest.(check int) "same traced pc" r.Trace.tr_pc c.Trace.tr_pc;
      Alcotest.(check int) "reference trace is unmarked" 0 r.Trace.tr_mark)
    ref_t chn_t;
  Alcotest.(check bool) "chained transfers are marked" true
    (List.exists (fun e -> e.Trace.tr_mark = Machine.mark_chained) chn_t)

(* --- the trace-jit tier ------------------------------------------------- *)

let run_jit m =
  match Machine.run ~dispatch:Machine.Dispatch_jit m with
  | Machine.Step_halted, n -> n
  | r, _ -> Alcotest.failf "did not halt: %s" (result_name r)

(* a 16-byte readable/writable window inside the code SRAM, away from
   the program words *)
let data_cap ?(len = 16) () =
  Capability.set_bounds
    (Capability.with_address Capability.root_mem_rw (code_base + 0x200))
    ~length:len ~exact:false

(* Pass-1 regression: a dominating access lets the optimizer eliminate
   the second identical access's checks, but an in-block [Csetbounds]
   redefines the register — the SSA version moves, so the access after
   it must run the full check sequence and trap exactly where the
   reference interpreter traps.  An optimizer that keyed facts to the
   register {e name} instead of the version would serve the stale
   "checked" fact and miss the trap. *)
let test_jit_csetbounds_kills_facts () =
  let program =
    Insn.
      [
        Load { signed = true; width = W; rd = 1; rs1 = 4; off = 0 };
        Load { signed = true; width = W; rd = 2; rs1 = 4; off = 0 };
        (* shrink r4 to 8 bytes: the next access is now out of bounds *)
        Csetboundsimm (4, 4, 8);
        Load { signed = true; width = W; rd = 3; rs1 = 4; off = 64 };
        Ebreak;
      ]
  in
  let mk () =
    let m, _ = boot (List.map Encode.encode program) in
    Machine.set_reg m 4 (data_cap ());
    m
  in
  let ref_m = mk () in
  let r_ref, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  let m = mk () in
  let r_jit, n_jit = Machine.run ~dispatch:Machine.Dispatch_jit m in
  Alcotest.(check string)
    "both runs end the same way" (result_name r_ref) (result_name r_jit);
  Alcotest.(check int) "same retired count" n_ref n_jit;
  Alcotest.(check int) "same minstret" ref_m.Machine.minstret
    m.Machine.minstret;
  Alcotest.(check string) "same state hash" (Machine.state_hash ref_m)
    (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "the duplicate access was eliminated" true
    (s.Machine.checks_eliminated >= 1)

(* Pass-2 regression: a hot loop whose two static-offset loads are
   covered by one hoisted entry guard, patched {e mid-trace} — after the
   superblock and its plan exist, a bus store rewrites one load of the
   loop body.  The snoop must kill the block and its plan together; the
   remaining iterations run the patched semantics, bit-identical to a
   reference machine patched at the same instruction boundary. *)
let test_jit_hoisted_guard_patch_midtrace () =
  let program =
    Insn.
      [
        Load { signed = true; width = W; rd = 1; rs1 = 4; off = 0 };
        Load { signed = true; width = W; rd = 2; rs1 = 4; off = 8 };
        Op_imm (Add, 3, 3, 1);
        Branch (Eq, 3, 6, 8);
        (* fall-dominated exit: the backedge below joins the superblock *)
        Jal (0, -16);
        Ebreak;
      ]
  in
  let mk () =
    let m, _ = boot (List.map Encode.encode program) in
    Machine.set_reg m 4 (data_cap ());
    Machine.set_reg_int m 6 20;
    m
  in
  let ref_m = mk () in
  let m = mk () in
  m.Machine.hot_threshold <- 2;
  m.Machine.hot_adaptive <- false;
  (* run both machines 30 instructions in: the loop is hot, the
     superblock formed and the guarded plan compiled and executing *)
  let r_ref0, n_ref0 = Machine.run ~fuel:30 ~dispatch:Machine.Dispatch_ref ref_m in
  let r_jit0, n_jit0 = Machine.run ~fuel:30 ~dispatch:Machine.Dispatch_jit m in
  Alcotest.(check bool)
    "both mid-trace stops agree" true
    ((r_ref0, n_ref0) = (r_jit0, n_jit0));
  let s_mid = Machine.block_stats m in
  Alcotest.(check bool) "the loads were hoisted behind a guard" true
    (s_mid.Machine.checks_hoisted >= 2);
  Alcotest.(check bool) "the loop grew a superblock" true
    (s_mid.Machine.superblocks_formed >= 1);
  (* patch the second load into an immediate add, identically on both *)
  let patch = Encode.encode (Insn.Op_imm (Add, 2, 2, 16)) in
  Bus.write ref_m.Machine.bus ~width:4 (code_base + 4) patch;
  Bus.write m.Machine.bus ~width:4 (code_base + 4) patch;
  let r_ref, n_ref = Machine.run ~dispatch:Machine.Dispatch_ref ref_m in
  let r_jit, n_jit = Machine.run ~dispatch:Machine.Dispatch_jit m in
  Alcotest.(check bool) "both halt" true
    (r_ref = Machine.Step_halted && r_jit = Machine.Step_halted);
  Alcotest.(check int) "same retired count after the patch" n_ref n_jit;
  Alcotest.(check string) "same state hash after the patch"
    (Machine.state_hash ref_m) (Machine.state_hash m);
  let s = Machine.block_stats m in
  Alcotest.(check bool) "the patch invalidated the planned block" true
    (s.Machine.block_invalidations > 0)

(* Counter accounting parity: the recording rounds ([step_jit], driving
   the traced/perf paths) and the merged executor ([Machine.run]) must
   agree that the optimizer engaged — both compile the same plans. *)
let test_jit_counters_on_both_paths () =
  let mk () =
    let m, _ = boot (List.map Encode.encode chained_loop) in
    Machine.set_reg_int m 6 4;
    m
  in
  let m = mk () in
  let _ = run_jit m in
  let s = Machine.block_stats m in
  Alcotest.(check bool) "merged executor compiled plans" true
    (s.Machine.jit_blocks_compiled > 0);
  Alcotest.(check bool) "bookkeeping removal accounted" true
    (s.Machine.dead_bookkeeping_removed > 0);
  let m2 = mk () in
  let rec drive () =
    match Machine.step_jit m2 with
    | Machine.Step_ok | Machine.Step_trap _ -> drive ()
    | _ -> ()
  in
  drive ();
  let s2 = Machine.block_stats m2 in
  Alcotest.(check bool) "recording rounds compiled plans too" true
    (s2.Machine.jit_blocks_compiled > 0)

(* [Trace.run ~dispatch:Dispatch_jit] renders the reference stream with
   chained transfers marked [jit]; a block whose entry guard fails is
   marked [opt-side-exit] and deoptimizes to full checks, so the
   faulting access (here: a hoisted load past the end of a short
   region) traps at exactly the reference point. *)
let test_trace_marks_jit () =
  let collect ?len dispatch =
    let m, _ = boot (List.map Encode.encode chained_loop) in
    Machine.set_reg_int m 6 4;
    (match len with Some l -> Machine.set_reg m 4 (data_cap ~len:l ()) | None -> ());
    let entries = ref [] in
    let _ =
      Trace.run m ~fuel:10_000 ~dispatch ~f:(fun e -> entries := e :: !entries)
    in
    (m, List.rev !entries)
  in
  let ref_m, ref_t = collect Machine.Dispatch_ref in
  let jit_m, jit_t = collect Machine.Dispatch_jit in
  Alcotest.(check string) "traced runs agree on state"
    (Machine.state_hash ref_m) (Machine.state_hash jit_m);
  Alcotest.(check int) "same trace length" (List.length ref_t)
    (List.length jit_t);
  List.iter2
    (fun r c ->
      Alcotest.(check int) "same traced pc" r.Trace.tr_pc c.Trace.tr_pc)
    ref_t jit_t;
  Alcotest.(check bool) "jit transfers are marked" true
    (List.exists (fun e -> e.Trace.tr_mark = Machine.mark_jit) jit_t);
  (* guard-failure rendering: two guarded loads whose union span
     overruns an 8-byte region — the plan deopts ([opt-side-exit]) and
     the second load traps exactly as on the reference path *)
  let guarded =
    Insn.
      [
        Load { signed = true; width = W; rd = 1; rs1 = 4; off = 0 };
        Load { signed = true; width = W; rd = 2; rs1 = 4; off = 8 };
        Ebreak;
      ]
  in
  let collect_g dispatch =
    let m, _ = boot (List.map Encode.encode guarded) in
    Machine.set_reg m 4 (data_cap ~len:8 ());
    let entries = ref [] in
    let r, _ =
      Trace.run m ~fuel:100 ~dispatch ~f:(fun e -> entries := e :: !entries)
    in
    (m, r, List.rev !entries)
  in
  let grm, gr, _ = collect_g Machine.Dispatch_ref in
  let gjm, gj, gjt = collect_g Machine.Dispatch_jit in
  Alcotest.(check string) "guard failure ends both runs identically"
    (result_name gr) (result_name gj);
  Alcotest.(check string) "guard failure reaches the reference state"
    (Machine.state_hash grm) (Machine.state_hash gjm);
  Alcotest.(check bool) "the deoptimized block is marked" true
    (List.exists (fun e -> e.Trace.tr_mark = Machine.mark_opt_side_exit) gjt)

let suite =
  [
    Alcotest.test_case "block formation and stats accounting" `Quick
      test_formation_and_stats;
    Alcotest.test_case "length cap and terminators bound blocks" `Quick
      test_block_boundaries;
    Alcotest.test_case "self-modifying store abandons its own block" `Quick
      test_self_modifying_abandon;
    Alcotest.test_case "fuel-exact block cutting" `Quick test_fuel_cutting;
    Alcotest.test_case "device writes keep cached blocks valid" `Quick
      test_device_write_keeps_blocks;
    Alcotest.test_case "bus-bypass writes need an explicit flush" `Quick
      test_bypass_needs_flush;
    Alcotest.test_case "chained edges follow and unlink on store" `Quick
      test_chain_links_and_unlink;
    Alcotest.test_case "flush bumps the chain epoch" `Quick
      test_chain_epoch_flush;
    Alcotest.test_case "superblock side exit is architecturally exact" `Quick
      test_superblock_side_exit;
    Alcotest.test_case "traced chain runs mark chained transfers" `Quick
      test_trace_marks_chained_transfers;
    Alcotest.test_case "in-block csetbounds kills eliminated-check facts"
      `Quick test_jit_csetbounds_kills_facts;
    Alcotest.test_case "hoisted guard survives a mid-trace code patch" `Quick
      test_jit_hoisted_guard_patch_midtrace;
    Alcotest.test_case "jit counters account on merged and recording paths"
      `Quick test_jit_counters_on_both_paths;
    Alcotest.test_case "traced jit runs mark transfers and deoptimizations"
      `Quick test_trace_marks_jit;
  ]
