(* Tests for the static firmware auditor (lib/analysis).

   Three layers:
     - every shipped image audits clean (zero findings);
     - every corpus image trips exactly its expected rule — no false
       negatives, no false positives;
     - one named negative test per headline rule (the ISSUE's satellite
       list: leaked store-local capability, wrong-otype sealed entry,
       out-of-bounds import, mismatched sentry posture), asserting on the
       specific rule id so a rule rename breaks loudly. *)

module Rules = Cheriot_analysis.Rules
module Audit = Cheriot_analysis.Audit
module Corpus = Cheriot_analysis.Corpus
module Firmware = Cheriot_workloads.Firmware

let rules_of findings =
  List.sort_uniq compare (List.map (fun f -> f.Rules.rule) findings)

let check_clean name build () =
  let findings = Audit.run (build ()) in
  Alcotest.(check (list string))
    (name ^ " audits clean")
    []
    (List.map (Format.asprintf "%a" Rules.pp_finding) findings)

let check_corpus_entry (e : Corpus.entry) () =
  let findings = Audit.run (e.Corpus.build ()) in
  Alcotest.(check bool)
    (e.Corpus.name ^ " has findings")
    true (findings <> []);
  Alcotest.(check (list string))
    (e.Corpus.name ^ " trips only " ^ e.Corpus.rule)
    [ e.Corpus.rule ] (rules_of findings)

(* The corpus covers every rule in the catalogue. *)
let test_corpus_covers_catalogue () =
  let covered =
    List.sort_uniq compare (List.map (fun e -> e.Corpus.rule) Corpus.entries)
  in
  let all = List.sort_uniq compare (List.map fst Rules.catalogue) in
  Alcotest.(check (list string)) "corpus covers all rules" all covered

(* --- the four named satellite assertions --------------------------------- *)

let corpus_rule name =
  let e = List.find (fun e -> e.Corpus.name = name) Corpus.entries in
  rules_of (Audit.run (e.Corpus.build ()))

let test_leaked_store_local () =
  Alcotest.(check (list string))
    "storing the local stack capability through cgp is flagged"
    [ Rules.flow_store_local_leak ]
    (corpus_rule "store-local-via-globals")

let test_wrong_otype_entry () =
  Alcotest.(check (list string))
    "a sealed entry with a non-switcher otype is flagged"
    [ Rules.link_import_wrong_otype ]
    (corpus_rule "import-wrong-otype")

let test_out_of_bounds_import () =
  Alcotest.(check (list string))
    "an import slot past the compartment's globals is flagged"
    [ Rules.link_import_slot_range ]
    (corpus_rule "import-slot-out-of-range")

let test_mismatched_posture () =
  Alcotest.(check (list string))
    "a sentry whose posture differs from the declared one is flagged"
    [ Rules.link_export_posture ]
    (corpus_rule "export-posture-mismatch")

(* --- findings carry usable positions ------------------------------------- *)

let test_flow_finding_has_pc () =
  let e =
    List.find (fun e -> e.Corpus.name = "oob-after-setbounds") Corpus.entries
  in
  let t = e.Corpus.build () in
  let findings = Audit.run t in
  let f = List.hd findings in
  Alcotest.(check bool) "finding has a pc" true (f.Rules.pc <> None);
  Alcotest.(check string) "in the victim compartment" "victim"
    f.Rules.compartment;
  (* the pc points inside the victim's code region *)
  let b = Cheriot_rtos.Loader.find t "victim" in
  let lo = b.Cheriot_rtos.Loader.image.Cheriot_isa.Asm.origin in
  let hi = lo + Cheriot_isa.Asm.bytes_size b.Cheriot_rtos.Loader.image in
  match f.Rules.pc with
  | Some pc -> Alcotest.(check bool) "pc in code region" true (pc >= lo && pc < hi)
  | None -> Alcotest.fail "no pc"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_report_wellformed () =
  let report =
    [ ("img", Audit.run ((List.hd Corpus.entries).Corpus.build ())) ]
  in
  let s = Rules.report_to_json report in
  Alcotest.(check bool) "names the image" true (contains ~sub:"\"img\"" s);
  Alcotest.(check bool) "mentions the rule id" true
    (contains ~sub:"\"cfg-undecodable\"" s);
  Alcotest.(check bool) "counts the findings" true
    (contains ~sub:"\"total_findings\":1" s)

let suite =
  List.concat
    [
      List.map
        (fun (name, build) ->
          Alcotest.test_case ("clean: " ^ name) `Quick (check_clean name build))
        Firmware.shipped;
      List.map
        (fun (e : Corpus.entry) ->
          Alcotest.test_case ("corpus: " ^ e.Corpus.name) `Quick
            (check_corpus_entry e))
        Corpus.entries;
      [
        Alcotest.test_case "corpus covers catalogue" `Quick
          test_corpus_covers_catalogue;
        Alcotest.test_case "leaked store-local capability" `Quick
          test_leaked_store_local;
        Alcotest.test_case "wrong-otype sealed entry" `Quick
          test_wrong_otype_entry;
        Alcotest.test_case "out-of-bounds import" `Quick
          test_out_of_bounds_import;
        Alcotest.test_case "mismatched sentry posture" `Quick
          test_mismatched_posture;
        Alcotest.test_case "flow findings carry a pc" `Quick
          test_flow_finding_has_pc;
        Alcotest.test_case "json report is well-formed" `Quick
          test_json_report_wellformed;
      ];
    ]
