(* Tests for the static firmware auditor (lib/analysis).

   Layers:
     - every shipped image audits clean (zero findings);
     - every corpus image trips exactly its expected rule — no false
       negatives, no false positives (the corpus-exactness CI gate,
       in-tree so `dune runtest` catches rule regressions);
     - one named negative test per headline rule, asserting on the
       specific rule id so a rule rename breaks loudly;
     - regressions proving the v2 layers see what v1 provably missed:
       the helper-call image is invisible without call summaries, the
       laundering image invisible without the field-sensitive store map;
     - the Driver exit-code contract (0 clean / 1 findings / 2 error)
       and deterministic finding order. *)

module Rules = Cheriot_analysis.Rules
module Audit = Cheriot_analysis.Audit
module Corpus = Cheriot_analysis.Corpus
module Driver = Cheriot_analysis.Driver
module Firmware = Cheriot_workloads.Firmware

let rules_of findings =
  List.sort_uniq compare (List.map (fun f -> f.Rules.rule) findings)

let check_clean name build () =
  let findings = Audit.run (build ()) in
  Alcotest.(check (list string))
    (name ^ " audits clean")
    []
    (List.map (Format.asprintf "%a" Rules.pp_finding) findings)

let check_corpus_entry (e : Corpus.entry) () =
  let findings = Audit.run (e.Corpus.build ()) in
  Alcotest.(check bool)
    (e.Corpus.name ^ " has findings")
    true (findings <> []);
  Alcotest.(check (list string))
    (e.Corpus.name ^ " trips only " ^ e.Corpus.rule)
    [ e.Corpus.rule ] (rules_of findings)

(* The corpus covers every rule in the catalogue. *)
let test_corpus_covers_catalogue () =
  let covered =
    List.sort_uniq compare (List.map (fun e -> e.Corpus.rule) Corpus.entries)
  in
  let all = List.sort_uniq compare (List.map fst Rules.catalogue) in
  Alcotest.(check (list string)) "corpus covers all rules" all covered

(* --- the four named satellite assertions --------------------------------- *)

let corpus_rule name =
  let e = List.find (fun e -> e.Corpus.name = name) Corpus.entries in
  rules_of (Audit.run (e.Corpus.build ()))

let test_leaked_store_local () =
  Alcotest.(check (list string))
    "storing the local stack capability through cgp is flagged"
    [ Rules.flow_store_local_leak ]
    (corpus_rule "store-local-via-globals")

let test_wrong_otype_entry () =
  Alcotest.(check (list string))
    "a sealed entry with a non-switcher otype is flagged"
    [ Rules.link_import_wrong_otype ]
    (corpus_rule "import-wrong-otype")

let test_out_of_bounds_import () =
  Alcotest.(check (list string))
    "an import slot past the compartment's globals is flagged"
    [ Rules.link_import_slot_range ]
    (corpus_rule "import-slot-out-of-range")

let test_mismatched_posture () =
  Alcotest.(check (list string))
    "a sentry whose posture differs from the declared one is flagged"
    [ Rules.link_export_posture ]
    (corpus_rule "export-posture-mismatch")

(* --- findings carry usable positions ------------------------------------- *)

let test_flow_finding_has_pc () =
  let e =
    List.find (fun e -> e.Corpus.name = "oob-after-setbounds") Corpus.entries
  in
  let t = e.Corpus.build () in
  let findings = Audit.run t in
  let f = List.hd findings in
  Alcotest.(check bool) "finding has a pc" true (f.Rules.pc <> None);
  Alcotest.(check string) "in the victim compartment" "victim"
    f.Rules.compartment;
  (* the pc points inside the victim's code region *)
  let b = Cheriot_rtos.Loader.find t "victim" in
  let lo = b.Cheriot_rtos.Loader.image.Cheriot_isa.Asm.origin in
  let hi = lo + Cheriot_isa.Asm.bytes_size b.Cheriot_rtos.Loader.image in
  match f.Rules.pc with
  | Some pc -> Alcotest.(check bool) "pc in code region" true (pc >= lo && pc < hi)
  | None -> Alcotest.fail "no pc"

let test_heap_escape () =
  Alcotest.(check (list string))
    "a GL-stripped heap capability parked in globals is flagged"
    [ Rules.tmp_heap_escape ]
    (corpus_rule "heap-cap-escape")

let test_unbounded_disabled_region () =
  Alcotest.(check (list string))
    "an interrupts-disabled loop is flagged as unbounded"
    [ Rules.irq_unbounded_disabled ]
    (corpus_rule "irq-spin-disabled")

(* --- the v2 layers catch what the v1 analysis provably missed ------------- *)

let corpus_build name =
  (List.find (fun e -> e.Corpus.name = name) Corpus.entries).Corpus.build ()

let test_helper_call_needs_summaries () =
  let t = corpus_build "helper-call-oob" in
  Alcotest.(check (list string))
    "without call summaries the helper-built OOB capability is invisible"
    []
    (rules_of (Audit.run ~call_summaries:false t));
  Alcotest.(check (list string))
    "with call summaries it is caught"
    [ Rules.flow_oob_access ]
    (rules_of (Audit.run t))

let test_launder_needs_field_sensitivity () =
  let t = corpus_build "launder-local-via-slot" in
  Alcotest.(check (list string))
    "without the field-sensitive store map the laundered leak is invisible"
    []
    (rules_of (Audit.run ~field_sensitive:false t));
  Alcotest.(check (list string))
    "with the store map it is caught"
    [ Rules.flow_launder_local ]
    (rules_of (Audit.run t))

(* --- Driver: exit codes and deterministic order ---------------------------- *)

let test_driver_exit_codes () =
  Alcotest.(check int) "clean shipped catalogue exits 0" 0
    (Driver.shipped ~images:Firmware.shipped ());
  Alcotest.(check int) "single-image selection exits 0" 0
    (Driver.shipped ~images:Firmware.shipped ~name:"demo" ());
  Alcotest.(check int) "findings exit 1" 1
    (Driver.shipped
       ~images:[ ("bad", fun () -> corpus_build "heap-cap-escape") ]
       ());
  Alcotest.(check int) "unknown image exits 2" 2
    (Driver.shipped ~images:Firmware.shipped ~name:"nonexistent" ());
  Alcotest.(check int) "unknown rule exits 2" 2
    (Driver.shipped ~images:Firmware.shipped ~rule:"no-such-rule" ());
  Alcotest.(check int) "analysis error exits 2" 2
    (Driver.shipped ~images:[ ("boom", fun () -> failwith "boom") ] ());
  Alcotest.(check int) "corpus detected exactly exits 0" 0 (Driver.corpus ());
  Alcotest.(check int) "corpus with unknown rule exits 2" 2
    (Driver.corpus ~rule:"no-such-rule" ())

let test_sorted_findings () =
  let f rule compartment pc = Rules.v ?pc ~compartment rule "d" in
  let shuffled =
    [
      f "b-rule" "zeta" (Some 8);
      f "a-rule" "zeta" (Some 8);
      f "z-rule" "alpha" (Some 100);
      f "m-rule" "alpha" None;
      f "a-rule" "zeta" (Some 4);
    ]
  in
  let sorted = Rules.sort_findings shuffled in
  let key (x : Rules.finding) = (x.Rules.compartment, x.Rules.pc, x.Rules.rule) in
  Alcotest.(check (list (triple string (option int) string)))
    "sorted by (compartment, pc, rule); None pc first"
    [
      ("alpha", None, "m-rule");
      ("alpha", Some 100, "z-rule");
      ("zeta", Some 4, "a-rule");
      ("zeta", Some 8, "a-rule");
      ("zeta", Some 8, "b-rule");
    ]
    (List.map key sorted);
  (* sorting is stable under re-audit: two runs of the same image agree *)
  let t () = corpus_build "helper-call-oob" in
  let a = Rules.sort_findings (Audit.run (t ())) in
  let b = Rules.sort_findings (Audit.run (t ())) in
  Alcotest.(check (list string))
    "same image, same report"
    (List.map (Format.asprintf "%a" Rules.pp_finding) a)
    (List.map (Format.asprintf "%a" Rules.pp_finding) b)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_report_wellformed () =
  let report =
    [ ("img", Audit.run ((List.hd Corpus.entries).Corpus.build ())) ]
  in
  let s = Rules.report_to_json report in
  Alcotest.(check bool) "names the image" true (contains ~sub:"\"img\"" s);
  Alcotest.(check bool) "mentions the rule id" true
    (contains ~sub:"\"cfg-undecodable\"" s);
  Alcotest.(check bool) "counts the findings" true
    (contains ~sub:"\"total_findings\":1" s)

let suite =
  List.concat
    [
      List.map
        (fun (name, build) ->
          Alcotest.test_case ("clean: " ^ name) `Quick (check_clean name build))
        Firmware.shipped;
      List.map
        (fun (e : Corpus.entry) ->
          Alcotest.test_case ("corpus: " ^ e.Corpus.name) `Quick
            (check_corpus_entry e))
        Corpus.entries;
      [
        Alcotest.test_case "corpus covers catalogue" `Quick
          test_corpus_covers_catalogue;
        Alcotest.test_case "leaked store-local capability" `Quick
          test_leaked_store_local;
        Alcotest.test_case "wrong-otype sealed entry" `Quick
          test_wrong_otype_entry;
        Alcotest.test_case "out-of-bounds import" `Quick
          test_out_of_bounds_import;
        Alcotest.test_case "mismatched sentry posture" `Quick
          test_mismatched_posture;
        Alcotest.test_case "heap capability escape" `Quick test_heap_escape;
        Alcotest.test_case "unbounded interrupts-disabled region" `Quick
          test_unbounded_disabled_region;
        Alcotest.test_case "helper-call OOB needs call summaries" `Quick
          test_helper_call_needs_summaries;
        Alcotest.test_case "laundered leak needs field sensitivity" `Quick
          test_launder_needs_field_sensitivity;
        Alcotest.test_case "driver exit codes" `Quick test_driver_exit_codes;
        Alcotest.test_case "findings sort deterministically" `Quick
          test_sorted_findings;
        Alcotest.test_case "flow findings carry a pc" `Quick
          test_flow_finding_has_pc;
        Alcotest.test_case "json report is well-formed" `Quick
          test_json_report_wellformed;
      ];
    ]
