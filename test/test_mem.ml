(* Tests for the memory substrate: tagged SRAM (incl. the Ibex split
   micro-tag design of paper section 4), the revocation bitmap (3.3.1),
   MMIO and the bus. *)

open Cheriot_mem

let base = 0x1000

let test_rw_widths () =
  let s = Sram.create ~base ~size:256 in
  Sram.write8 s (base + 1) 0xab;
  Sram.write16 s (base + 2) 0xcdef;
  Sram.write32 s (base + 4) 0x12345678;
  Alcotest.(check int) "read8" 0xab (Sram.read8 s (base + 1));
  Alcotest.(check int) "read16" 0xcdef (Sram.read16 s (base + 2));
  Alcotest.(check int) "read32" 0x12345678 (Sram.read32 s (base + 4));
  (* little-endian composition *)
  Alcotest.(check int) "le bytes" 0x78 (Sram.read8 s (base + 4));
  Alcotest.(check int) "le half" 0xab00 (Sram.read16 s base);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Sram.read32 s (base + 256));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "misaligned" true
    (try
       ignore (Sram.read32 s (base + 2));
       false
     with Invalid_argument _ -> true)

let test_cap_tags () =
  let s = Sram.create ~base ~size:256 in
  Sram.write_cap s (base + 8) (true, 0x0123456789abcdefL);
  let tag, w = Sram.read_cap s (base + 8) in
  Alcotest.(check bool) "tag" true tag;
  Alcotest.(check int64) "word" 0x0123456789abcdefL w;
  (* A 32-bit data write to either half clears the architectural tag
     (the Ibex split-tag AND, paper section 4). *)
  Sram.write_cap s (base + 16) (true, 1L);
  Sram.write32 s (base + 20) 0;
  Alcotest.(check bool) "high half write clears" false
    (fst (Sram.read_cap s (base + 16)));
  Sram.write_cap s (base + 16) (true, 1L);
  Sram.write8 s (base + 16) 0;
  Alcotest.(check bool) "byte write clears" false
    (fst (Sram.read_cap s (base + 16)));
  (* micro-tags are per half *)
  Sram.write_cap s (base + 24) (true, 1L);
  Sram.write32 s (base + 24) 0;
  let lo, hi = Sram.read_microtags s (base + 24) in
  Alcotest.(check (pair bool bool)) "low microtag cleared" (false, true)
    (lo, hi)

let test_fill_blit () =
  let s = Sram.create ~base ~size:256 in
  Sram.write_cap s (base + 8) (true, 42L);
  Sram.fill s ~addr:(base + 8) ~len:16 '\000';
  Alcotest.(check bool) "fill clears tags" false (Sram.tag_at s (base + 8));
  Sram.blit_string s ~addr:base "hello";
  Alcotest.(check int) "blit" (Char.code 'e') (Sram.read8 s (base + 1))

let test_revbits () =
  let rev = Revbits.create ~heap_base:0x8000 ~heap_size:0x1000 () in
  Alcotest.(check bool) "initially clear" false (Revbits.is_revoked rev 0x8010);
  Revbits.paint rev ~addr:0x8010 ~len:24;
  Alcotest.(check bool) "painted start" true (Revbits.is_revoked rev 0x8010);
  Alcotest.(check bool) "painted mid" true (Revbits.is_revoked rev 0x8017);
  Alcotest.(check bool) "painted end" true (Revbits.is_revoked rev 0x8020);
  Alcotest.(check bool) "after range clear" false
    (Revbits.is_revoked rev 0x8028);
  Alcotest.(check int) "painted count" 3 (Revbits.painted_granules rev);
  Revbits.clear rev ~addr:0x8010 ~len:24;
  Alcotest.(check int) "cleared" 0 (Revbits.painted_granules rev);
  (* outside the covered region: never revoked (code/stacks have no
     revocation bits, 3.3.1) *)
  Alcotest.(check bool) "outside region" false (Revbits.is_revoked rev 0x100);
  (* SRAM overhead: 1 bit per 8 bytes = 1.56% *)
  Alcotest.(check int) "bitmap bytes" (0x1000 / 64) (Revbits.bitmap_bytes rev)

let test_revbits_granule_ablation () =
  let rev = Revbits.create ~granule_log2:5 ~heap_base:0 ~heap_size:0x1000 () in
  Alcotest.(check int) "32B granule" 32 (Revbits.granule_size rev);
  Revbits.paint rev ~addr:0 ~len:1;
  Alcotest.(check bool) "whole granule revoked" true (Revbits.is_revoked rev 31)

let test_bus_routing () =
  let bus = Bus.create () in
  let s = Sram.create ~base ~size:256 in
  Bus.add_sram bus s;
  let dev, backing = Mmio.ram_backed ~name:"dev" ~base:0x9000 ~size:16 in
  Bus.add_device bus dev;
  Bus.write bus ~width:4 base 7;
  Alcotest.(check int) "sram via bus" 7 (Bus.read bus ~width:4 base);
  Bus.write bus ~width:4 0x9004 99;
  Alcotest.(check int) "mmio via bus" 99 (Bus.read bus ~width:4 0x9004);
  Alcotest.(check int) "mmio backing" 99
    (Int32.to_int (Bytes.get_int32_le backing 4));
  Alcotest.(check bool) "unmapped raises" true
    (try
       ignore (Bus.read bus ~width:4 0xdead0000);
       false
     with Bus.Bus_error _ -> true);
  (* byte access to MMIO is a bus error *)
  Alcotest.(check bool) "mmio width-1 raises" true
    (try
       ignore (Bus.read bus ~width:1 0x9004);
       false
     with Bus.Bus_error _ -> true)

let test_bus_snoop () =
  let bus = Bus.create () in
  let s = Sram.create ~base ~size:256 in
  Bus.add_sram bus s;
  let seen = ref [] in
  Bus.on_store bus (fun a -> seen := a :: !seen);
  Bus.write bus ~width:1 (base + 13) 1;
  Bus.write_cap bus (base + 16) (false, 0L);
  Alcotest.(check (list int)) "granule-aligned snoops"
    [ base + 16; base + 8 ]
    !seen

(* Regression: [Bus.read]/[Bus.write] must range-check the {e full}
   access width.  A 4-byte access whose first byte is the last byte of
   an SRAM used to be routed into the region and crash with
   [Invalid_argument] from the byte-array layer; it must be a clean
   [Bus_error] (which the machine turns into an access fault).  An
   access straddling two {e adjacent} SRAMs is equally unroutable: no
   single region covers it. *)
let test_bus_boundary_straddle () =
  let bus = Bus.create () in
  let s = Sram.create ~base ~size:256 in
  Bus.add_sram bus s;
  let adjacent = Sram.create ~base:(base + 256) ~size:256 in
  Bus.add_sram bus adjacent;
  let faults f =
    try
      f ();
      false
    with
    | Bus.Bus_error _ -> true
    | Invalid_argument _ -> false
  in
  let last = base + 255 in
  Alcotest.(check bool) "4-byte read at last byte faults" true
    (faults (fun () -> ignore (Bus.read bus ~width:4 last)));
  Alcotest.(check bool) "4-byte write at last byte faults" true
    (faults (fun () -> Bus.write bus ~width:4 last 0));
  Alcotest.(check bool) "2-byte read at last byte faults" true
    (faults (fun () -> ignore (Bus.read bus ~width:2 last)));
  Alcotest.(check bool) "2-byte write at last byte faults" true
    (faults (fun () -> Bus.write bus ~width:2 last 0));
  (* straddling into an adjacent SRAM is still unroutable... *)
  Alcotest.(check bool) "read straddling adjacent SRAMs faults" true
    (faults (fun () -> ignore (Bus.read bus ~width:4 (last - 1))));
  (* ...while fully-inside accesses on either side work *)
  Bus.write bus ~width:4 (base + 252) 0xaabbccdd;
  Alcotest.(check int) "last word of first SRAM" 0xaabbccdd
    (Bus.read bus ~width:4 (base + 252));
  Bus.write bus ~width:4 (base + 256) 0x11223344;
  Alcotest.(check int) "first word of second SRAM" 0x11223344
    (Bus.read bus ~width:4 (base + 256))

(* MMIO device writes must not fire the store snoop: the snoop exists
   to invalidate cached translations of SRAM-resident code, and device
   registers can never back translated code (the block translator only
   reads SRAM).  Snooping them would only cause spurious
   invalidations. *)
let test_mmio_write_no_snoop () =
  let bus = Bus.create () in
  let s = Sram.create ~base ~size:256 in
  Bus.add_sram bus s;
  let dev, _backing = Mmio.ram_backed ~name:"dev" ~base:0x9000 ~size:16 in
  Bus.add_device bus dev;
  let seen = ref [] in
  Bus.on_store bus (fun a -> seen := a :: !seen);
  Bus.write bus ~width:4 0x9004 99;
  Alcotest.(check (list int)) "device write fires no snoop" [] !seen;
  Bus.write bus ~width:4 base 7;
  Alcotest.(check (list int)) "sram write still snoops" [ base ] !seen

let prop_sram_bytes =
  QCheck.Test.make ~name:"sram byte write/read" ~count:1000
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (off, v) ->
      let s = Sram.create ~base ~size:256 in
      Sram.write8 s (base + off) v;
      Sram.read8 s (base + off) = v)

let prop_data_write_kills_tag =
  QCheck.Test.make ~name:"any data write into a granule clears its tag"
    ~count:1000
    QCheck.(pair (int_bound 31) (int_bound 2))
    (fun (g, w) ->
      let s = Sram.create ~base ~size:256 in
      let addr = base + (g land lnot 7) in
      QCheck.assume (addr + 8 <= base + 256);
      Sram.write_cap s addr (true, 123L);
      let width = [| 1; 2; 4 |].(w) in
      let off = g land (8 - width) land lnot (width - 1) in
      (match width with
      | 1 -> Sram.write8 s (addr + off) 0
      | 2 -> Sram.write16 s (addr + off) 0
      | _ -> Sram.write32 s (addr + off) 0);
      not (Sram.tag_at s addr))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "read/write widths" `Quick test_rw_widths;
    Alcotest.test_case "capability tags + split micro-tags" `Quick
      test_cap_tags;
    Alcotest.test_case "fill/blit clear tags" `Quick test_fill_blit;
    Alcotest.test_case "revocation bitmap" `Quick test_revbits;
    Alcotest.test_case "revbits granule ablation" `Quick
      test_revbits_granule_ablation;
    Alcotest.test_case "bus routing" `Quick test_bus_routing;
    Alcotest.test_case "bus store snoop" `Quick test_bus_snoop;
    Alcotest.test_case "full-width range checks at region boundaries" `Quick
      test_bus_boundary_straddle;
    Alcotest.test_case "mmio writes bypass the store snoop" `Quick
      test_mmio_write_no_snoop;
    q prop_sram_bytes;
    q prop_data_write_kills_tag;
  ]
