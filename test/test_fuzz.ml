(* Architectural fuzzing: the global monotonicity property.

   "The program's total authority is completely captured by [the register
   file] and those that can be (transitively) loaded through them"
   (paper 2.5), and guarded manipulation can only shrink it.  The boot
   scaffolding, stream generator and authority scan all live in
   [Cheriot_proptest] ({!Boot}, {!Flatgen}, {!Props.flat_authority});
   this file is the property list.  The multi-compartment
   generalization — the same invariant over linked loader images with
   switcher, allocator and sealed sentries in play — runs in the
   [proptest] suite ({!Props.scenario_authority}). *)

open Cheriot_core
module Boot = Cheriot_proptest.Boot
module Props = Cheriot_proptest.Props

(* A sealed-capability fuzz: sealing then unsealing through random
   manipulation must never produce a tagged cap with a changed body. *)
let prop_seal_integrity =
  QCheck.Test.make ~name:"seal/unseal preserves capability body" ~count:2000
    QCheck.(pair (int_bound 0xFFF) (int_bound 6))
    (fun (addr_off, otype) ->
      let key =
        Capability.with_address Capability.root_sealing (1 + otype)
      in
      let c =
        Capability.set_bounds
          (Capability.with_address Capability.root_mem_rw
             (Boot.data_base + (addr_off * 2)))
          ~length:32 ~exact:false
      in
      match Capability.seal c ~key with
      | Error _ -> true
      | Ok sealed -> (
          match Capability.unseal sealed ~key with
          | Error _ -> false
          | Ok c' ->
              Capability.base c' = Capability.base c
              && Capability.top c' = Capability.top c
              && Capability.address c' = Capability.address c
              && Perm.Set.subset (Capability.perms c') (Capability.perms c)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  List.map q Props.fuzz_tests @ [ q prop_seal_integrity ]
