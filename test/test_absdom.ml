(* Property tests for the auditor's abstract domain (lib/analysis/absdom).

   The soundness of every flow-* finding rests on {!Absdom} being a
   join-semilattice with a terminating widening: joins must be
   commutative/associative/idempotent upper bounds (so the fixpoint is
   order-independent), widening must sit above the join (so it only
   loses precision, never soundness), and every ascending chain pushed
   through the auditor's 8-join-budget policy must stabilize (so the
   fixpoint terminates). *)

open Cheriot_core
module A = Cheriot_analysis.Absdom
module Iters = Cheriot_proptest.Iters

(* --- generators ---------------------------------------------------------- *)

let iv_gen =
  let open QCheck.Gen in
  let point =
    oneof
      [
        oneofl [ 0; 1; 8; 64; 512; 0x10000; A.Iv.limit - 1; A.Iv.limit ];
        int_bound A.Iv.limit;
      ]
  in
  frequency
    [
      (1, map A.Iv.exact point);
      (3, map2 (fun a b -> A.Iv.v (min a b) (max a b)) point point);
    ]

let perms_gen =
  QCheck.Gen.map
    (fun bits -> Perm.Set.of_arch_bits (bits land 0xFFF))
    (QCheck.Gen.int_bound 0xFFF)

let tri_gen = QCheck.Gen.oneofl [ A.Tri.True; A.Tri.False; A.Tri.Any ]

let ot_gen =
  QCheck.Gen.oneofl
    [
      A.Ot_any;
      A.Ot_exact Otype.unsealed;
      A.Ot_exact (Otype.v Otype.Data 1);
      A.Ot_exact (Otype.v Otype.Data 5);
      A.Ot_exact (Otype.v Otype.Exec 2);
    ]

let v_gen =
  let open QCheck.Gen in
  tri_gen >>= fun tag ->
  ot_gen >>= fun ot ->
  perms_gen >>= fun p1 ->
  perms_gen >>= fun p2 ->
  iv_gen >>= fun base ->
  iv_gen >>= fun top ->
  iv_gen >>= fun addr ->
  bool >>= fun from_load ->
  tri_gen >>= fun xret ->
  (* maintain the representation invariant pmust ⊆ pmay *)
  return
    {
      A.tag;
      ot;
      pmust = Perm.Set.inter p1 p2;
      pmay = Perm.Set.union p1 p2;
      base;
      top;
      addr;
      from_load;
      xret;
    }

let pp_v (v : A.v) =
  Printf.sprintf
    "{tag=%s; base=[%d,%d]; top=[%d,%d]; addr=[%d,%d]; load=%b; xret=%s}"
    (match v.A.tag with
    | A.Tri.True -> "T"
    | A.Tri.False -> "F"
    | A.Tri.Any -> "?")
    v.A.base.A.Iv.lo v.A.base.A.Iv.hi v.A.top.A.Iv.lo v.A.top.A.Iv.hi
    v.A.addr.A.Iv.lo v.A.addr.A.Iv.hi v.A.from_load
    (match v.A.xret with
    | A.Tri.True -> "T"
    | A.Tri.False -> "F"
    | A.Tri.Any -> "?")

let arb_v = QCheck.make ~print:pp_v v_gen
let arb_vv = QCheck.pair arb_v arb_v
let arb_vvv = QCheck.triple arb_v arb_v arb_v

(* --- lattice laws --------------------------------------------------------- *)

let t_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:(Iters.count ~default:1000) arb_vv (fun (a, b) ->
      A.equal (A.join a b) (A.join b a))

let t_associative =
  QCheck.Test.make ~name:"join associative" ~count:(Iters.count ~default:1000) arb_vvv
    (fun (a, b, c) -> A.equal (A.join a (A.join b c)) (A.join (A.join a b) c))

let t_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:(Iters.count ~default:1000) arb_v (fun a ->
      A.equal (A.join a a) a)

let t_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:(Iters.count ~default:1000) arb_vv
    (fun (a, b) ->
      let j = A.join a b in
      A.leq a j && A.leq b j)

let t_widen_above_join =
  QCheck.Test.make ~name:"widen sits above join" ~count:(Iters.count ~default:1000) arb_vv
    (fun (a, b) -> A.leq (A.join a b) (A.widen a b))

let t_top_absorbs =
  QCheck.Test.make ~name:"top absorbs" ~count:(Iters.count ~default:1000) arb_v (fun a ->
      A.equal (A.join a A.top_v) A.top_v && A.leq a A.top_v)

let t_join_invariant =
  QCheck.Test.make ~name:"join preserves pmust ⊆ pmay" ~count:(Iters.count ~default:1000) arb_vv
    (fun (a, b) ->
      let j = A.join a b in
      Perm.Set.subset j.A.pmust j.A.pmay)

(* --- widening termination -------------------------------------------------- *)

(* Simulate exactly the fixpoint's per-block policy: plain joins for the
   first 8 visits, widened joins afterwards.  The chain must be monotone
   and stabilize: at most 8 pre-widen changes, then each change grows a
   finite component (tag ≤ 2, ot ≤ 1, perms ≤ 24, from_load ≤ 1,
   xret ≤ 2) or widens an interval straight to full (≤ 1 each) — 42
   covers it. *)
let t_widening_terminates =
  QCheck.Test.make ~name:"ascending chains stabilize under the 8-join budget"
    ~count:(Iters.count ~default:200)
    (QCheck.make QCheck.Gen.(list_size (return 100) v_gen))
    (fun vs ->
      match vs with
      | [] -> true
      | first :: rest ->
          let state = ref first in
          let visits = ref 0 in
          let changes = ref 0 in
          let monotone = ref true in
          List.iter
            (fun y ->
              incr visits;
              let next =
                if !visits > 8 then A.widen !state (A.join !state y)
                else A.join !state y
              in
              if not (A.leq !state next) then monotone := false;
              if not (A.equal !state next) then incr changes;
              state := next)
            rest;
          !monotone && !changes <= 42)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      t_commutative;
      t_associative;
      t_idempotent;
      t_upper_bound;
      t_widen_above_join;
      t_top_absorbs;
      t_join_invariant;
      t_widening_terminates;
    ]
