(* Test driver: one Alcotest suite per library/module group. *)
let () =
  Alcotest.run "cheriot"
    [
      ("perm", Test_perm.suite);
      ("bounds", Test_bounds.suite);
      ("capability", Test_capability.suite);
      ("mem", Test_mem.suite);
      ("isa", Test_isa.suite);
      ("uarch", Test_uarch.suite);
      ("rtos", Test_rtos.suite);
      ("compartments", Test_compartments.suite);
      ("preemption", Test_preemption.suite);
      ("sealing-service", Test_sealing_service.suite);
      ("fuzz", Test_fuzz.suite);
      ("differential", Test_differential.suite);
      ("proptest", Test_prop.suite);
      ("decode-cache", Test_decode_cache.suite);
      ("block-cache", Test_block_cache.suite);
      ("integration", Test_integration.suite);
      ("area", Test_area.suite);
      ("workloads", Test_workloads.suite);
      ("absdom", Test_absdom.suite);
      ("audit", Test_audit.suite);
      ("planverify", Test_planverify.suite);
      ("incremental", Test_incremental.suite);
    ]
