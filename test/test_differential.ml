(* Differential oracle for the decoded-instruction cache.

   [Machine.step] is the reference interpreter: it re-reads and
   re-decodes the instruction word at the PC on every step.
   [Machine.step_fast] fetches through the decode cache and, on a
   validated hit, skips the fetch checks and the PC-advance
   representability check by installing precomputed results.  The two
   must be observationally indistinguishable.

   This test runs the same random instruction streams (the [Test_fuzz]
   generator: well-formed capability/memory/ALU instructions plus raw
   random words) on two identically-booted machines in lockstep — one
   stepping through each path — and compares the full architectural
   state after every single step: step result, PCC, all registers,
   special capability registers, CSRs, and the retired-event record the
   cycle models consume.  At the end of each stream the state hashes
   (which also cover memory contents and tag bits) must agree. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus

let code_base = Test_fuzz.code_base
let code_size = Test_fuzz.code_size
let data_base = Test_fuzz.data_base
let data_size = Test_fuzz.data_size
let stack_base = Test_fuzz.stack_base
let stack_size = Test_fuzz.stack_size

(* One machine booted exactly like [Test_fuzz.run_one]'s. *)
let boot words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  let data = Sram.create ~base:data_base ~size:data_size in
  let stack = Sram.create ~base:stack_base ~size:stack_size in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  Bus.add_sram bus stack;
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  (* The program was blitted straight into SRAM, behind the bus's store
     snoop: flush, as a loader must. *)
  Machine.flush_decode_cache m;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  Machine.set_reg m 3
    (Capability.set_bounds
       (Capability.with_address Capability.root_mem_rw data_base)
       ~length:data_size ~exact:false);
  Machine.set_reg m 2
    (Capability.clear_perms
       (Capability.incr_address
          (Capability.set_bounds
             (Capability.with_address Capability.root_mem_rw stack_base)
             ~length:stack_size ~exact:false)
          stack_size)
       [ GL ]);
  Machine.set_reg m 9 (Capability.with_address Capability.root_sealing 3);
  m

let cap_eq a b =
  a.Capability.tag = b.Capability.tag
  && a.Capability.addr = b.Capability.addr
  && Perm.Set.equal (Capability.perms a) (Capability.perms b)
  && Otype.equal (Capability.otype a) (Capability.otype b)
  && Bounds.raw_fields a.Capability.bounds = Bounds.raw_fields b.Capability.bounds
  && a.Capability.reserved = b.Capability.reserved

let event_eq (a : Machine.event) (b : Machine.event) =
  a.ev_insn = b.ev_insn
  && a.ev_taken_branch = b.ev_taken_branch
  && a.ev_mem_bytes = b.ev_mem_bytes
  && a.ev_is_cap_mem = b.ev_is_cap_mem
  && a.ev_is_store = b.ev_is_store
  && a.ev_trap = b.ev_trap

(* Compare everything visible without hashing memory (memory divergence
   is caught by the end-of-stream hash; per-step it could only arise
   via a store, which the event compare pins to the same step). *)
let compare_states step_no (ref_m : Machine.t) (fast_m : Machine.t) =
  let fail what =
    QCheck.Test.fail_reportf "paths diverged at step %d: %s" step_no what
  in
  if not (cap_eq ref_m.pcc fast_m.pcc) then fail "pcc";
  for r = 1 to 15 do
    if not (cap_eq ref_m.regs.(r) fast_m.regs.(r)) then
      fail (Printf.sprintf "c%d" r)
  done;
  List.iter
    (fun (name, a, b) -> if not (cap_eq a b) then fail name)
    [
      ("mtcc", ref_m.mtcc, fast_m.mtcc);
      ("mepcc", ref_m.mepcc, fast_m.mepcc);
      ("mtdc", ref_m.mtdc, fast_m.mtdc);
      ("mscratchc", ref_m.mscratchc, fast_m.mscratchc);
    ];
  List.iter
    (fun (name, a, b) -> if a <> b then fail name)
    [
      ("mcause", ref_m.mcause, fast_m.mcause);
      ("mtval", ref_m.mtval, fast_m.mtval);
      ("minstret", ref_m.minstret, fast_m.minstret);
      ("mshwm", ref_m.mshwm, fast_m.mshwm);
      ("mshwmb", ref_m.mshwmb, fast_m.mshwmb);
    ];
  if ref_m.mie <> fast_m.mie then fail "mie";
  if ref_m.mpie <> fast_m.mpie then fail "mpie";
  if ref_m.waiting <> fast_m.waiting then fail "waiting";
  if not (event_eq ref_m.last_event fast_m.last_event) then fail "event"

let run_stream words =
  let ref_m = boot words and fast_m = boot words in
  let rec go n =
    if n > 256 then ()
    else begin
      let r_ref = Machine.step ref_m in
      let r_fast = Machine.step_fast fast_m in
      if r_ref <> r_fast then
        QCheck.Test.fail_reportf "results diverged at step %d" n;
      compare_states n ref_m fast_m;
      match r_ref with
      | Machine.Step_ok | Machine.Step_trap _ -> go (n + 1)
      | Machine.Step_waiting | Machine.Step_halted | Machine.Step_double_fault
        ->
          ()
    end
  in
  go 0;
  if Machine.state_hash ref_m <> Machine.state_hash fast_m then
    QCheck.Test.fail_reportf "final state hashes differ";
  true

let prop_lockstep =
  QCheck.Test.make
    ~name:"reference and cached dispatch agree on 1000 random streams"
    ~count:1000
    (QCheck.make
       ~print:(fun ws ->
         String.concat "\n"
           (List.map
              (fun w ->
                match Encode.decode w with
                | Some i -> Printf.sprintf "%08x  %s" w (Insn.to_string i)
                | None -> Printf.sprintf "%08x  ???" w)
              ws))
       Test_fuzz.gen_program)
    run_stream

(* The same oracle on a deterministic workload with a long trace:
   coremark's ISA program, reference vs cached, equal retired counts and
   state hashes. *)
let test_coremark_lockstep () =
  let module Coremark = Cheriot_workloads.Coremark in
  let module Core_model = Cheriot_uarch.Core_model in
  let run fast =
    let m =
      Coremark.setup ~iterations:2
        (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
    in
    let _, insns = Machine.run ~fast m in
    (insns, Machine.state_hash m)
  in
  let ref_insns, ref_hash = run false in
  let fast_insns, fast_hash = run true in
  Alcotest.(check int) "retired instructions" ref_insns fast_insns;
  Alcotest.(check string) "state hash" ref_hash fast_hash

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lockstep;
    Alcotest.test_case "coremark trace matches across dispatch paths" `Quick
      test_coremark_lockstep;
  ]
