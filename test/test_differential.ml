(* Differential oracle for the decoded-instruction and basic-block
   translation caches.

   [Machine.step] is the reference interpreter: it re-reads and
   re-decodes the instruction word at the PC on every step.
   [Machine.step_fast] fetches through the decode cache and, on a
   validated hit, skips the fetch checks and the PC-advance
   representability check by installing precomputed results.  The block
   dispatch path ([Machine.run ~dispatch:Dispatch_block]) executes
   whole translated basic blocks with interrupt checks only at block
   boundaries and bookkeeping deferred across simple instructions; the
   chain path ([Dispatch_chain]) additionally follows direct
   block-to-block links and re-translates hot fall-dominated paths
   into superblocks; the jit path ([Dispatch_jit]) runs the chained
   rounds with per-block optimized check plans from [Ir.optimize].
   All five must be observationally indistinguishable.

   The lockstep drivers, interrupt-injection schedules and the
   state-comparison predicate live in [Cheriot_proptest]
   ({!Props.flat_lockstep}, {!Props.flat_interrupt_lockstep},
   {!Obs.compare_states}); this file is the property list, plus the
   deterministic coremark lockstep.  The multi-compartment versions —
   switcher cross-calls, allocator churn, revocation sweeps and code
   patches in the loop — run in the [proptest] suite. *)

open Cheriot_isa
module Props = Cheriot_proptest.Props

(* The same oracle on a deterministic workload with a long trace:
   coremark's ISA program on all five dispatch paths, equal retired
   counts and state hashes. *)
let test_coremark_lockstep () =
  let module Coremark = Cheriot_workloads.Coremark in
  let module Core_model = Cheriot_uarch.Core_model in
  let run ?hot_threshold dispatch =
    let m =
      Coremark.setup ~iterations:2
        (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
    in
    (match hot_threshold with
    | Some t ->
        m.Machine.hot_threshold <- t;
        m.Machine.hot_adaptive <- false
    | None -> ());
    let _, insns = Machine.run ~dispatch m in
    (insns, Machine.state_hash m)
  in
  let ref_insns, ref_hash = run Machine.Dispatch_ref in
  let fast_insns, fast_hash = run Machine.Dispatch_cached in
  let blk_insns, blk_hash = run Machine.Dispatch_block in
  let chn_insns, chn_hash = run Machine.Dispatch_chain in
  let jit_insns, jit_hash = run Machine.Dispatch_jit in
  (* an aggressive threshold forms superblocks all over the hot loops *)
  let sb_insns, sb_hash = run ~hot_threshold:2 Machine.Dispatch_chain in
  let jsb_insns, jsb_hash = run ~hot_threshold:2 Machine.Dispatch_jit in
  Alcotest.(check int) "retired instructions (cached)" ref_insns fast_insns;
  Alcotest.(check string) "state hash (cached)" ref_hash fast_hash;
  Alcotest.(check int) "retired instructions (block)" ref_insns blk_insns;
  Alcotest.(check string) "state hash (block)" ref_hash blk_hash;
  Alcotest.(check int) "retired instructions (chain)" ref_insns chn_insns;
  Alcotest.(check string) "state hash (chain)" ref_hash chn_hash;
  Alcotest.(check int) "retired instructions (jit)" ref_insns jit_insns;
  Alcotest.(check string) "state hash (jit)" ref_hash jit_hash;
  Alcotest.(check int) "retired instructions (superblocks)" ref_insns sb_insns;
  Alcotest.(check string) "state hash (superblocks)" ref_hash sb_hash;
  Alcotest.(check int)
    "retired instructions (jit superblocks)" ref_insns jsb_insns;
  Alcotest.(check string) "state hash (jit superblocks)" ref_hash jsb_hash

let suite =
  List.map QCheck_alcotest.to_alcotest Props.tests
  @ [
      Alcotest.test_case "coremark trace matches across dispatch paths" `Quick
        test_coremark_lockstep;
    ]
