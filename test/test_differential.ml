(* Differential oracle for the decoded-instruction and basic-block
   translation caches.

   [Machine.step] is the reference interpreter: it re-reads and
   re-decodes the instruction word at the PC on every step.
   [Machine.step_fast] fetches through the decode cache and, on a
   validated hit, skips the fetch checks and the PC-advance
   representability check by installing precomputed results.  The block
   dispatch path ([Machine.run ~dispatch:Dispatch_block]) executes
   whole translated basic blocks with interrupt checks only at block
   boundaries and bookkeeping deferred across simple instructions; the
   chain path ([Dispatch_chain]) additionally follows direct
   block-to-block links and re-translates hot fall-dominated paths
   into superblocks.  All four must be observationally
   indistinguishable.

   This test runs the same random instruction streams (the [Test_fuzz]
   generator: well-formed capability/memory/ALU instructions plus raw
   random words) on four identically-booted machines in lockstep — one
   per dispatch path (the block and chain machines are driven with
   [fuel:1], which cuts every block after one instruction, exposing the
   mid-block machine state) — and compares the full architectural state
   after every single step: step result, PCC, all registers, special
   capability registers, CSRs, and the retired-event record the cycle
   models consume.  At the end of each stream the state hashes (which
   also cover memory contents and tag bits) must agree.

   A second property drives the machines in random-length batches while
   injecting external-interrupt toggles and timer writes identically on
   all four, checking that batched (and chained) block execution
   delivers every interrupt at exactly the same instruction boundary as
   the per-step paths; the chain machines run with a tiny hotness
   threshold so the streams constantly cross superblock-formation
   points. *)

open Cheriot_core
open Cheriot_isa
module Sram = Cheriot_mem.Sram
module Bus = Cheriot_mem.Bus

let code_base = Test_fuzz.code_base
let code_size = Test_fuzz.code_size
let data_base = Test_fuzz.data_base
let data_size = Test_fuzz.data_size
let stack_base = Test_fuzz.stack_base
let stack_size = Test_fuzz.stack_size

(* One machine booted exactly like [Test_fuzz.run_one]'s. *)
let boot words =
  let bus = Bus.create () in
  let code = Sram.create ~base:code_base ~size:code_size in
  let data = Sram.create ~base:data_base ~size:data_size in
  let stack = Sram.create ~base:stack_base ~size:stack_size in
  Bus.add_sram bus code;
  Bus.add_sram bus data;
  Bus.add_sram bus stack;
  let m = Machine.create bus in
  List.iteri (fun i w -> Sram.write32 code (code_base + (4 * i)) w) words;
  (* The program was blitted straight into SRAM, behind the bus's store
     snoop: flush, as a loader must. *)
  Machine.flush_decode_cache m;
  m.Machine.pcc <-
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false;
  Machine.set_reg m 3
    (Capability.set_bounds
       (Capability.with_address Capability.root_mem_rw data_base)
       ~length:data_size ~exact:false);
  Machine.set_reg m 2
    (Capability.clear_perms
       (Capability.incr_address
          (Capability.set_bounds
             (Capability.with_address Capability.root_mem_rw stack_base)
             ~length:stack_size ~exact:false)
          stack_size)
       [ GL ]);
  Machine.set_reg m 9 (Capability.with_address Capability.root_sealing 3);
  m

let cap_eq a b =
  a.Capability.tag = b.Capability.tag
  && a.Capability.addr = b.Capability.addr
  && Perm.Set.equal (Capability.perms a) (Capability.perms b)
  && Otype.equal (Capability.otype a) (Capability.otype b)
  && Bounds.raw_fields a.Capability.bounds = Bounds.raw_fields b.Capability.bounds
  && a.Capability.reserved = b.Capability.reserved

let event_eq (a : Machine.event) (b : Machine.event) =
  a.ev_insn = b.ev_insn
  && a.ev_taken_branch = b.ev_taken_branch
  && a.ev_mem_bytes = b.ev_mem_bytes
  && a.ev_is_cap_mem = b.ev_is_cap_mem
  && a.ev_is_store = b.ev_is_store
  && a.ev_trap = b.ev_trap

(* Compare everything visible without hashing memory (memory divergence
   is caught by the end-of-stream hash; per-step it could only arise
   via a store, which the event compare pins to the same step). *)
let compare_states step_no (ref_m : Machine.t) (fast_m : Machine.t) =
  let fail what =
    QCheck.Test.fail_reportf "paths diverged at step %d: %s" step_no what
  in
  if not (cap_eq ref_m.pcc fast_m.pcc) then fail "pcc";
  for r = 1 to 15 do
    if not (cap_eq ref_m.regs.(r) fast_m.regs.(r)) then
      fail (Printf.sprintf "c%d" r)
  done;
  List.iter
    (fun (name, a, b) -> if not (cap_eq a b) then fail name)
    [
      ("mtcc", ref_m.mtcc, fast_m.mtcc);
      ("mepcc", ref_m.mepcc, fast_m.mepcc);
      ("mtdc", ref_m.mtdc, fast_m.mtdc);
      ("mscratchc", ref_m.mscratchc, fast_m.mscratchc);
    ];
  List.iter
    (fun (name, a, b) -> if a <> b then fail name)
    [
      ("mcause", ref_m.mcause, fast_m.mcause);
      ("mtval", ref_m.mtval, fast_m.mtval);
      ("minstret", ref_m.minstret, fast_m.minstret);
      ("mshwm", ref_m.mshwm, fast_m.mshwm);
      ("mshwmb", ref_m.mshwmb, fast_m.mshwmb);
    ];
  if ref_m.mie <> fast_m.mie then fail "mie";
  if ref_m.mpie <> fast_m.mpie then fail "mpie";
  if ref_m.waiting <> fast_m.waiting then fail "waiting";
  if not (event_eq ref_m.last_event fast_m.last_event) then fail "event"

let run_stream words =
  let ref_m = boot words
  and fast_m = boot words
  and blk_m = boot words
  and chn_m = boot words in
  (* a tiny hotness threshold makes superblock formation reachable
     within short fuzz streams *)
  chn_m.Machine.hot_threshold <- 2;
  let rec go n =
    if n > 256 then ()
    else begin
      let r_ref = Machine.step ref_m in
      let r_fast = Machine.step_fast fast_m in
      (* [run ~fuel:1] executes exactly one instruction (or interrupt /
         idle round) of the block path; when fuel expires after a trap
         step it reports [Step_ok], exactly as the per-step [run] loop
         would, so map the reference result accordingly. *)
      let r_blk, n_blk =
        Machine.run ~fuel:1 ~dispatch:Machine.Dispatch_block blk_m
      in
      let r_chn, n_chn =
        Machine.run ~fuel:1 ~dispatch:Machine.Dispatch_chain chn_m
      in
      if r_ref <> r_fast then
        QCheck.Test.fail_reportf "ref/cached results diverged at step %d" n;
      let expect_blk =
        match r_ref with
        | Machine.Step_ok | Machine.Step_trap _ -> Machine.Step_ok
        | r -> r
      in
      if (r_blk, n_blk) <> (expect_blk, 1) then
        QCheck.Test.fail_reportf "ref/block results diverged at step %d" n;
      if (r_chn, n_chn) <> (expect_blk, 1) then
        QCheck.Test.fail_reportf "ref/chain results diverged at step %d" n;
      compare_states n ref_m fast_m;
      compare_states n ref_m blk_m;
      compare_states n ref_m chn_m;
      match r_ref with
      | Machine.Step_ok | Machine.Step_trap _ -> go (n + 1)
      | Machine.Step_waiting | Machine.Step_halted | Machine.Step_double_fault
        ->
          ()
    end
  in
  go 0;
  let h = Machine.state_hash ref_m in
  if
    h <> Machine.state_hash fast_m
    || h <> Machine.state_hash blk_m
    || h <> Machine.state_hash chn_m
  then QCheck.Test.fail_reportf "final state hashes differ";
  true

let prop_lockstep =
  QCheck.Test.make
    ~name:"ref, cached, block and chain dispatch agree on 1000 random streams"
    ~count:1000
    (QCheck.make
       ~print:(fun ws ->
         String.concat "\n"
           (List.map
              (fun w ->
                match Encode.decode w with
                | Some i -> Printf.sprintf "%08x  %s" w (Insn.to_string i)
                | None -> Printf.sprintf "%08x  ???" w)
              ws))
       Test_fuzz.gen_program)
    run_stream

(* Interrupt-injection equivalence (the heart of the block-dispatch
   soundness argument): drive the three paths in random-length fuel
   batches, and between batches toggle the external interrupt line and
   write the timer comparator / cycle counter — identically on all
   three machines.  Batched block execution checks for interrupts only
   at block boundaries; by the body invariant (see
   [Machine.block_terminator]'s comment) that must deliver every
   interrupt at exactly the same retired-instruction boundary as the
   per-step loops, so results, retired counts and full state must stay
   equal after every batch. *)
let run_interrupt_stream (words, seed) =
  let handler_cap =
    Capability.set_bounds
      (Capability.with_address Capability.root_executable code_base)
      ~length:code_size ~exact:false
  in
  let mk () =
    let m = boot words in
    (* vector traps back into the program text so interrupts take the
       real trap-entry path instead of double-faulting *)
    m.Machine.mtcc <- handler_cap;
    m.Machine.mie <- true;
    m
  in
  let ref_m = mk () and fast_m = mk () and blk_m = mk () and chn_m = mk () in
  (* chain with a tiny hotness threshold: batches cross the superblock
     formation point mid-stream, so interrupt delivery is checked
     against freshly re-translated superblocks too *)
  chn_m.Machine.hot_threshold <- 2;
  let machines = [ ref_m; fast_m; blk_m; chn_m ] in
  (* small deterministic LCG over the generated seed: the shrinker can
     minimise interesting injection schedules along with the program *)
  let state = ref seed in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFF_FFFF;
    !state mod bound
  in
  let total = ref 0 in
  (try
     while !total < 256 do
       let fuel = 1 + rand 32 in
       let toggle = rand 4 = 0 in
       let retime = rand 4 = 0 in
       let cmp = rand 8 and cyc = rand 8 in
       List.iter
         (fun (m : Machine.t) ->
           if toggle then m.Machine.ext_interrupt <- not m.Machine.ext_interrupt;
           if retime then begin
             m.Machine.mtimecmp <- cmp;
             m.Machine.mcycle <- cyc
           end)
         machines;
       let r_ref, n_ref =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_ref ref_m
       in
       let r_fast, n_fast =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_cached fast_m
       in
       let r_blk, n_blk =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_block blk_m
       in
       let r_chn, n_chn =
         Machine.run ~fuel ~dispatch:Machine.Dispatch_chain chn_m
       in
       if (r_ref, n_ref) <> (r_fast, n_fast) then
         QCheck.Test.fail_reportf
           "ref/cached batch diverged after %d insns (fuel %d)" !total fuel;
       if (r_ref, n_ref) <> (r_blk, n_blk) then
         QCheck.Test.fail_reportf
           "ref/block batch diverged after %d insns (fuel %d): ref retired \
            %d, block retired %d"
           !total fuel n_ref n_blk;
       if (r_ref, n_ref) <> (r_chn, n_chn) then
         QCheck.Test.fail_reportf
           "ref/chain batch diverged after %d insns (fuel %d): ref retired \
            %d, chain retired %d"
           !total fuel n_ref n_chn;
       compare_states !total ref_m fast_m;
       compare_states !total ref_m blk_m;
       compare_states !total ref_m chn_m;
       let h = Machine.state_hash ref_m in
       if
         h <> Machine.state_hash fast_m
         || h <> Machine.state_hash blk_m
         || h <> Machine.state_hash chn_m
       then
         QCheck.Test.fail_reportf "state hashes diverged after %d insns"
           !total;
       total := !total + n_ref;
       match r_ref with
       | Machine.Step_halted | Machine.Step_double_fault -> raise Exit
       | _ -> ()
     done
   with Exit -> ());
  true

let prop_interrupt_lockstep =
  QCheck.Test.make
    ~name:"interrupt injection: all four paths deliver identically"
    ~count:200
    (QCheck.make
       ~print:(fun (ws, seed) ->
         Printf.sprintf "seed %d\n%s" seed
           (String.concat "\n"
              (List.map
                 (fun w ->
                   match Encode.decode w with
                   | Some i -> Printf.sprintf "%08x  %s" w (Insn.to_string i)
                   | None -> Printf.sprintf "%08x  ???" w)
                 ws)))
       QCheck.Gen.(pair Test_fuzz.gen_program (int_bound 0x3FFF_FFFF)))
    run_interrupt_stream

(* The same oracle on a deterministic workload with a long trace:
   coremark's ISA program on all three dispatch paths, equal retired
   counts and state hashes. *)
let test_coremark_lockstep () =
  let module Coremark = Cheriot_workloads.Coremark in
  let module Core_model = Cheriot_uarch.Core_model in
  let run ?hot_threshold dispatch =
    let m =
      Coremark.setup ~iterations:2
        (Core_model.config ~cheri:true ~load_filter:true Core_model.Ibex)
    in
    (match hot_threshold with
    | Some t -> m.Machine.hot_threshold <- t
    | None -> ());
    let _, insns = Machine.run ~dispatch m in
    (insns, Machine.state_hash m)
  in
  let ref_insns, ref_hash = run Machine.Dispatch_ref in
  let fast_insns, fast_hash = run Machine.Dispatch_cached in
  let blk_insns, blk_hash = run Machine.Dispatch_block in
  let chn_insns, chn_hash = run Machine.Dispatch_chain in
  (* an aggressive threshold forms superblocks all over the hot loops *)
  let sb_insns, sb_hash = run ~hot_threshold:2 Machine.Dispatch_chain in
  Alcotest.(check int) "retired instructions (cached)" ref_insns fast_insns;
  Alcotest.(check string) "state hash (cached)" ref_hash fast_hash;
  Alcotest.(check int) "retired instructions (block)" ref_insns blk_insns;
  Alcotest.(check string) "state hash (block)" ref_hash blk_hash;
  Alcotest.(check int) "retired instructions (chain)" ref_insns chn_insns;
  Alcotest.(check string) "state hash (chain)" ref_hash chn_hash;
  Alcotest.(check int) "retired instructions (superblocks)" ref_insns sb_insns;
  Alcotest.(check string) "state hash (superblocks)" ref_hash sb_hash

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lockstep;
    QCheck_alcotest.to_alcotest prop_interrupt_lockstep;
    Alcotest.test_case "coremark trace matches across dispatch paths" `Quick
      test_coremark_lockstep;
  ]
